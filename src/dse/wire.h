/**
 * @file
 * Wire protocol of the multi-process DSE fan-out: length-prefixed
 * binary frames carrying trace-key groups of design-point requests
 * from the master to worker subprocesses and DsePoint results back.
 *
 * Frame layout (all integers little-endian):
 *
 *     u32 magic   'FDSE' (0x45534446 on the wire)
 *     u8  type    FrameType
 *     u32 length  payload byte count (bounded by kMaxPayload)
 *     u8  payload[length]
 *
 * Payloads are encoded with WireWriter/WireReader (the shared binary
 * codec, support/bytecodec.h -- the persistent artifact cache encodes
 * its entries with the same primitives): fixed-width little-endian
 * integers, doubles as raw IEEE-754 bit patterns (the distributed
 * sweep must be BIT-identical to the in-process one, so no text
 * round-trip is ever allowed), strings and vectors as a u32 count
 * followed by the elements. Decoding is fully bounds-checked:
 * truncated, oversized or corrupted input throws FatalError -- never
 * undefined behavior -- which the fuzz tests (tests/test_wire.cpp)
 * exercise under ASan/UBSan.
 */
#ifndef FINESSE_DSE_WIRE_H_
#define FINESSE_DSE_WIRE_H_

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "dse/explorer.h"
#include "support/bytecodec.h"

namespace finesse {
namespace wire {

constexpr u32 kMagic = 0x45534446u; // "FDSE" little-endian
constexpr size_t kHeaderBytes = 9;  // magic + type + length
/** Upper bound on one payload; larger length fields are rejected. */
constexpr size_t kMaxPayload = 64u << 20;

enum class FrameType : u8 {
    GroupRequest = 1, ///< master -> worker: one trace-key group
    GroupResult = 2,  ///< worker -> master: the group's DsePoints
    WorkerError = 3,  ///< worker -> master: fatal worker-side error
    Hello = 4,        ///< worker -> master: version/catalog handshake
    Ping = 5,         ///< master -> worker: liveness probe
    Pong = 6,         ///< worker -> master: probe reply / heartbeat
};

/**
 * Protocol version carried by Hello. Bump on ANY wire-visible change
 * (frame layout, field order, enum values): the master rejects
 * workers announcing a different version, which is what makes
 * mixed-build pools fail fast instead of corrupting results.
 * Version 2 = version 1 (PR 5 group frames) + handshake/liveness.
 */
constexpr u32 kProtocolVersion = 2;

/** One trace-key group shipped to a worker. */
struct GroupRequest
{
    std::string curve;
    u64 groupId = 0;
    std::vector<DseRequest> requests;
};

/** The evaluated group, points in request order. */
struct GroupResult
{
    u64 groupId = 0;
    std::vector<DsePoint> points;
};

/** Worker-side failure (configuration error, not a crash). */
struct WorkerError
{
    u64 groupId = 0;
    std::string message;
};

/**
 * First frame a worker sends after exec: the master verifies the
 * protocol version and curve-catalog fingerprint before dispatching
 * any work (heterogeneous builds are rejected at spawn, not after a
 * silently-divergent sweep).
 */
struct Hello
{
    u32 version = 0;
    u64 catalogHash = 0;
};

/** Liveness probe; the worker echoes the sequence number in a Pong. */
struct Ping
{
    u64 seq = 0;
};

/**
 * Probe reply or unsolicited heartbeat (seq 0): any Pong -- like any
 * frame bytes at all -- counts as liveness progress for the sender.
 */
struct Pong
{
    u64 seq = 0;
};

// The payload encoder/decoder pair moved to support/bytecodec.h so
// the artifact cache shares one bit-exact codec with the wire; the
// historical wire-local names remain the protocol-facing aliases.
using WireWriter = ByteWriter;
using WireReader = ByteReader;

/** One parsed frame (header validated, payload not yet decoded). */
struct Frame
{
    FrameType type = FrameType::GroupRequest;
    std::vector<u8> payload;
};

/**
 * Incremental frame assembler for a byte stream: append() raw pipe
 * reads, next() pops complete frames. A malformed header (bad magic,
 * unknown type, oversized length) throws FatalError -- the stream is
 * poisoned and the peer must be dropped. The oversized-length check
 * happens at HEADER-decode time, before any payload is buffered or
 * allocated: a garbage length prefix from a remote peer poisons the
 * stream instead of driving a multi-gigabyte allocation.
 */
class FrameBuffer
{
  public:
    void
    append(const u8 *data, size_t n)
    {
        buf_.insert(buf_.end(), data, data + n);
    }

    bool next(Frame &out);

    /**
     * Tighten the per-frame payload cap below kMaxPayload (never
     * above). The distributor caps an unauthenticated peer at a few
     * KB until its Hello is admitted -- version/hash frames are tiny,
     * so anything larger pre-handshake is garbage by definition.
     */
    void
    maxPayload(size_t cap)
    {
        maxPayload_ = std::min(cap, kMaxPayload);
    }

    /** Bytes of a not-yet-complete trailing frame (EOF diagnostics). */
    size_t pendingBytes() const { return buf_.size() - pos_; }

  private:
    std::vector<u8> buf_;
    size_t pos_ = 0;
    size_t maxPayload_ = kMaxPayload;
};

/** Serialize a complete frame (header + payload). */
std::vector<u8> encodeFrame(FrameType type,
                            const std::vector<u8> &payload);

// Shared sub-encoders (also used by the fuzz tests).
void putRequest(WireWriter &w, const DseRequest &req);
DseRequest getRequest(WireReader &r);
void putPoint(WireWriter &w, const DsePoint &p);
DsePoint getPoint(WireReader &r);

std::vector<u8> encodeGroupRequest(const GroupRequest &msg);
std::vector<u8> encodeGroupResult(const GroupResult &msg);
std::vector<u8> encodeWorkerError(const WorkerError &msg);
std::vector<u8> encodeHello(const Hello &msg);
std::vector<u8> encodePing(const Ping &msg);
std::vector<u8> encodePong(const Pong &msg);

/** Payload decoders; throw FatalError on any malformed input. */
GroupRequest decodeGroupRequest(const std::vector<u8> &payload);
GroupResult decodeGroupResult(const std::vector<u8> &payload);
WorkerError decodeWorkerError(const std::vector<u8> &payload);
Hello decodeHello(const std::vector<u8> &payload);
Ping decodePing(const std::vector<u8> &payload);
Pong decodePong(const std::vector<u8> &payload);

} // namespace wire
} // namespace finesse

#endif // FINESSE_DSE_WIRE_H_
