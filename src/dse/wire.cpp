/**
 * @file
 * Wire codec implementation. Every decoder validates as it reads:
 * enum bytes are range-checked, element counts are bounded by the
 * bytes actually present, and payloads must be consumed exactly.
 */
#include "dse/wire.h"

#include "core/artifacts.h"

namespace finesse {
namespace wire {

namespace {

// Conservative lower bounds on one encoded element, used to reject
// element counts the payload cannot possibly hold (a DseRequest
// encodes to >= 75 bytes, a DsePoint to >= 191; claiming less than
// the bound is provably corrupt).
constexpr size_t kMinRequestBytes = 64;
constexpr size_t kMinPointBytes = 128;

MulVariant
mulFromWire(u8 v)
{
    if (v > static_cast<u8>(MulVariant::Karatsuba))
        fatal("wire: bad MulVariant ", static_cast<int>(v));
    return static_cast<MulVariant>(v);
}

SqrVariant
sqrFromWire(u8 v)
{
    if (v > static_cast<u8>(SqrVariant::CHSqr3))
        fatal("wire: bad SqrVariant ", static_cast<int>(v));
    return static_cast<SqrVariant>(v);
}

CoordSystem
coordsFromWire(u8 v)
{
    if (v > static_cast<u8>(CoordSystem::Projective))
        fatal("wire: bad CoordSystem ", static_cast<int>(v));
    return static_cast<CoordSystem>(v);
}

TracePart
partFromWire(u8 v)
{
    if (v > static_cast<u8>(TracePart::FinalExpOnly))
        fatal("wire: bad TracePart ", static_cast<int>(v));
    return static_cast<TracePart>(v);
}

void
putVariants(WireWriter &w, const VariantConfig &cfg)
{
    w.u32v(static_cast<u32>(cfg.levels.size()));
    for (const auto &[degree, lv] : cfg.levels) {
        w.i32v(degree);
        w.u8v(static_cast<u8>(lv.mul));
        w.u8v(static_cast<u8>(lv.sqr));
    }
    w.u8v(static_cast<u8>(cfg.g2Coords));
    w.boolv(cfg.cyclotomicSqr);
}

VariantConfig
getVariants(WireReader &r)
{
    VariantConfig cfg;
    const u32 n = r.count(6); // i32 degree + two enum bytes
    for (u32 i = 0; i < n; ++i) {
        const i32 degree = r.i32v();
        LevelVariants lv;
        lv.mul = mulFromWire(r.u8v());
        lv.sqr = sqrFromWire(r.u8v());
        cfg.levels[degree] = lv;
    }
    cfg.g2Coords = coordsFromWire(r.u8v());
    cfg.cyclotomicSqr = r.boolv();
    return cfg;
}

void
putHw(WireWriter &w, const PipelineModel &hw)
{
    w.i32v(hw.longLat);
    w.i32v(hw.shortLat);
    w.i32v(hw.invLat);
    w.i32v(hw.issueWidth);
    w.i32v(hw.numLinUnits);
    w.i32v(hw.numBanks);
    w.i32v(hw.readsPerBank);
    w.i32v(hw.writesPerBank);
    w.boolv(hw.writebackFifo);
    w.i32v(hw.fifoDepth);
    w.f64v(hw.beta);
}

PipelineModel
getHw(WireReader &r)
{
    PipelineModel hw;
    hw.longLat = r.i32v();
    hw.shortLat = r.i32v();
    hw.invLat = r.i32v();
    hw.issueWidth = r.i32v();
    hw.numLinUnits = r.i32v();
    hw.numBanks = r.i32v();
    hw.readsPerBank = r.i32v();
    hw.writesPerBank = r.i32v();
    hw.writebackFifo = r.boolv();
    hw.fifoDepth = r.i32v();
    hw.beta = r.f64v();
    return hw;
}

// OptStats encoding is shared with the artifact cache: one
// definition (core/artifacts.h putOptStats/getOptStats), so a cached
// point and a wire-shipped point round-trip through identical bytes.
void
putStats(WireWriter &w, const OptStats &s)
{
    putOptStats(w, s);
}

OptStats
getStats(WireReader &r)
{
    return getOptStats(r);
}

} // namespace

void
putRequest(WireWriter &w, const DseRequest &req)
{
    w.str(req.label);
    w.i32v(req.cores);
    const CompileOptions &opt = req.opt;
    putVariants(w, opt.variants);
    putHw(w, opt.hw);
    w.boolv(opt.optimize);
    w.boolv(opt.listSchedule);
    w.u8v(static_cast<u8>(opt.part));
    w.u32v(static_cast<u32>(opt.passes.size()));
    for (const std::string &p : opt.passes)
        w.str(p);
    w.boolv(opt.useTraceCache);
    w.i32v(opt.jobs);
    // dseWorkers is deliberately NOT serialized: a worker must never
    // recursively fan out subprocesses for a shipped group.
}

DseRequest
getRequest(WireReader &r)
{
    DseRequest req;
    req.label = r.str();
    req.cores = r.i32v();
    req.opt.variants = getVariants(r);
    req.opt.hw = getHw(r);
    req.opt.optimize = r.boolv();
    req.opt.listSchedule = r.boolv();
    req.opt.part = partFromWire(r.u8v());
    const u32 n = r.count(4); // u32 length per string
    for (u32 i = 0; i < n; ++i)
        req.opt.passes.push_back(r.str());
    req.opt.useTraceCache = r.boolv();
    req.opt.jobs = r.i32v();
    return req;
}

void
putPoint(WireWriter &w, const DsePoint &p)
{
    w.str(p.label);
    putVariants(w, p.variants);
    putHw(w, p.hw);
    w.i32v(p.cores);
    w.u64v(p.instrs);
    w.u64v(p.mulInstrs);
    w.u64v(p.linInstrs);
    w.i64v(p.cycles);
    w.f64v(p.ipc);
    w.f64v(p.areaMm2);
    w.f64v(p.freqMHz);
    w.f64v(p.criticalPathNs);
    w.f64v(p.latencyUs);
    w.f64v(p.throughputOps);
    w.f64v(p.thptPerArea);
    w.f64v(p.compileSeconds);
    putStats(w, p.opt);
}

DsePoint
getPoint(WireReader &r)
{
    DsePoint p;
    p.label = r.str();
    p.variants = getVariants(r);
    p.hw = getHw(r);
    p.cores = r.i32v();
    p.instrs = r.u64v();
    p.mulInstrs = r.u64v();
    p.linInstrs = r.u64v();
    p.cycles = r.i64v();
    p.ipc = r.f64v();
    p.areaMm2 = r.f64v();
    p.freqMHz = r.f64v();
    p.criticalPathNs = r.f64v();
    p.latencyUs = r.f64v();
    p.throughputOps = r.f64v();
    p.thptPerArea = r.f64v();
    p.compileSeconds = r.f64v();
    p.opt = getStats(r);
    return p;
}

std::vector<u8>
encodeFrame(FrameType type, const std::vector<u8> &payload)
{
    FINESSE_CHECK(payload.size() <= kMaxPayload,
                  "frame payload too large: ", payload.size());
    WireWriter w;
    w.u32v(kMagic);
    w.u8v(static_cast<u8>(type));
    w.u32v(static_cast<u32>(payload.size()));
    std::vector<u8> out = w.take();
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

bool
FrameBuffer::next(Frame &out)
{
    // Compact once the consumed prefix dominates the buffer.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    if (buf_.size() - pos_ < kHeaderBytes)
        return false;
    WireReader header(buf_.data() + pos_, kHeaderBytes);
    const u32 magic = header.u32v();
    if (magic != kMagic)
        fatal("wire: bad frame magic 0x", std::hex, magic);
    const u8 type = header.u8v();
    if (type < static_cast<u8>(FrameType::GroupRequest) ||
        type > static_cast<u8>(FrameType::Pong))
        fatal("wire: unknown frame type ", static_cast<int>(type));
    const u32 length = header.u32v();
    if (length > maxPayload_)
        fatal("wire: oversized frame payload ", length, " (cap ",
              maxPayload_, ")");
    if (buf_.size() - pos_ < kHeaderBytes + length)
        return false;
    out.type = static_cast<FrameType>(type);
    out.payload.assign(
        buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kHeaderBytes),
        buf_.begin() +
            static_cast<std::ptrdiff_t>(pos_ + kHeaderBytes + length));
    pos_ += kHeaderBytes + length;
    return true;
}

std::vector<u8>
encodeGroupRequest(const GroupRequest &msg)
{
    WireWriter w;
    w.str(msg.curve);
    w.u64v(msg.groupId);
    w.u32v(static_cast<u32>(msg.requests.size()));
    for (const DseRequest &req : msg.requests)
        putRequest(w, req);
    return encodeFrame(FrameType::GroupRequest, w.bytes());
}

GroupRequest
decodeGroupRequest(const std::vector<u8> &payload)
{
    WireReader r(payload);
    GroupRequest msg;
    msg.curve = r.str();
    msg.groupId = r.u64v();
    // No reserve from the untrusted count: memory grows only with
    // elements that actually decode (the count bound is a sanity
    // check; a lying count hits a truncation throw long before any
    // large allocation).
    const u32 n = r.count(kMinRequestBytes);
    for (u32 i = 0; i < n; ++i)
        msg.requests.push_back(getRequest(r));
    r.expectEnd();
    return msg;
}

std::vector<u8>
encodeGroupResult(const GroupResult &msg)
{
    WireWriter w;
    w.u64v(msg.groupId);
    w.u32v(static_cast<u32>(msg.points.size()));
    for (const DsePoint &p : msg.points)
        putPoint(w, p);
    return encodeFrame(FrameType::GroupResult, w.bytes());
}

GroupResult
decodeGroupResult(const std::vector<u8> &payload)
{
    WireReader r(payload);
    GroupResult msg;
    msg.groupId = r.u64v();
    const u32 n = r.count(kMinPointBytes);
    for (u32 i = 0; i < n; ++i)
        msg.points.push_back(getPoint(r));
    r.expectEnd();
    return msg;
}

std::vector<u8>
encodeWorkerError(const WorkerError &msg)
{
    WireWriter w;
    w.u64v(msg.groupId);
    w.str(msg.message);
    return encodeFrame(FrameType::WorkerError, w.bytes());
}

WorkerError
decodeWorkerError(const std::vector<u8> &payload)
{
    WireReader r(payload);
    WorkerError msg;
    msg.groupId = r.u64v();
    msg.message = r.str();
    r.expectEnd();
    return msg;
}

std::vector<u8>
encodeHello(const Hello &msg)
{
    WireWriter w;
    w.u32v(msg.version);
    w.u64v(msg.catalogHash);
    return encodeFrame(FrameType::Hello, w.bytes());
}

Hello
decodeHello(const std::vector<u8> &payload)
{
    WireReader r(payload);
    Hello msg;
    msg.version = r.u32v();
    msg.catalogHash = r.u64v();
    r.expectEnd();
    return msg;
}

std::vector<u8>
encodePing(const Ping &msg)
{
    WireWriter w;
    w.u64v(msg.seq);
    return encodeFrame(FrameType::Ping, w.bytes());
}

Ping
decodePing(const std::vector<u8> &payload)
{
    WireReader r(payload);
    Ping msg;
    msg.seq = r.u64v();
    r.expectEnd();
    return msg;
}

std::vector<u8>
encodePong(const Pong &msg)
{
    WireWriter w;
    w.u64v(msg.seq);
    return encodeFrame(FrameType::Pong, w.bytes());
}

Pong
decodePong(const std::vector<u8> &payload)
{
    WireReader r(payload);
    Pong msg;
    msg.seq = r.u64v();
    r.expectEnd();
    return msg;
}

} // namespace wire
} // namespace finesse
