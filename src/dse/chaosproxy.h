/**
 * @file
 * In-process fault-injecting proxy for the distributed sweep's
 * network chaos: a Connection wrapper that pumps bytes between the
 * master and the real transport through a socketpair + forwarder
 * thread, scanning the worker->master stream for frame boundaries
 * and executing network-kind FaultActions in transit --
 *
 *     drop@frame:N        close the connection mid-frame N (reset)
 *     trunc@frame:N       swallow frame N's tail, keep streaming
 *     delay_ms=T@frame:N  hold frame N for T ms (slow network)
 *     garbage@frame:N     inject junk bytes ahead of frame N
 *     refuse@connect      (handled at spawn time by the distributor)
 *
 * The wrapper interposes on ANY transport -- pipes included -- so the
 * chaos matrix exercises the master's reconnect/poison/re-dispatch
 * paths identically for both. Faults the worker itself injects
 * (kill/hang/garbage worker-side) desync the stream mid-scan; the
 * proxy detects the unparseable header and degrades to transparent
 * byte forwarding rather than second-guessing a corrupted stream.
 */
#ifndef FINESSE_DSE_CHAOSPROXY_H_
#define FINESSE_DSE_CHAOSPROXY_H_

#include <atomic>
#include <memory>

#include "dse/distributor.h"
#include "support/connection.h"

namespace finesse {

/**
 * Wrap @p inner so @p plan's network-kind actions fire on the
 * worker->master frame stream. @p faultsFired (master-owned, read
 * after the sweep) counts actions that actually executed. Throws
 * FatalError when the socketpair cannot be created.
 */
std::unique_ptr<Connection>
wrapWithChaosProxy(std::unique_ptr<Connection> inner, FaultPlan plan,
                   std::atomic<int> *faultsFired);

} // namespace finesse

#endif // FINESSE_DSE_CHAOSPROXY_H_
