#include "dse/search.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "core/artifacts.h"
#include "dse/wire.h"
#include "support/diskcache.h"

namespace finesse {

namespace {

std::string
hex16(u64 v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

/** Index of the candidate nearest to @p v (first minimum: stable). */
size_t
nearestIndex(const std::vector<int> &cands, int v)
{
    size_t best = 0;
    for (size_t i = 1; i < cands.size(); ++i) {
        if (std::abs(cands[i] - v) < std::abs(cands[best] - v))
            best = i;
    }
    return best;
}

int
pickCandidate(const std::vector<int> &cands, Rng &rng)
{
    return cands[rng.below(cands.size())];
}

/** Re-pick @p v among candidates within @p radius index steps. */
void
stepDim(int &v, const std::vector<int> &cands, Rng &rng, int radius)
{
    const size_t idx = nearestIndex(cands, v);
    const size_t lo = idx >= static_cast<size_t>(radius)
                          ? idx - static_cast<size_t>(radius)
                          : 0;
    const size_t hi =
        std::min(cands.size() - 1, idx + static_cast<size_t>(radius));
    v = cands[lo + rng.below(hi - lo + 1)];
}

/**
 * Content-addressed key of one evaluated design point. Everything
 * the deterministic result depends on is in the key: the build /
 * catalog fingerprint and both codec versions, the front-end trace
 * key (curve, part, front-end pipeline, variants), the backend stage
 * pipeline and scheduling mode, the full hardware model, and the core
 * count. The point label is NOT keyed -- it is presentation, and the
 * cache hit path restores the requester's label.
 */
std::string
pointArtifactKey(const Framework &fw, const DseRequest &req)
{
    std::ostringstream os;
    os << "point|" << hex16(artifactFingerprint()) << "|w"
       << wire::kProtocolVersion << "|" << fw.traceKey(req.opt) << "|be:";
    for (const std::string &p : req.opt.backendPasses())
        os << p << ",";
    const PipelineModel &m = req.opt.hw;
    u64 betaBits = 0;
    static_assert(sizeof betaBits == sizeof m.beta);
    std::memcpy(&betaBits, &m.beta, sizeof betaBits);
    os << "|hw:" << m.longLat << "." << m.shortLat << "." << m.invLat
       << "." << m.issueWidth << "." << m.numLinUnits << "." << m.numBanks
       << "." << m.readsPerBank << "." << m.writesPerBank << "."
       << (m.writebackFifo ? 1 : 0) << "." << m.fifoDepth << ".b"
       << hex16(betaBits) << "|c" << req.cores << "|s"
       << (req.opt.listSchedule ? 1 : 0);
    return os.str();
}

bool
decodePointArtifact(const std::vector<u8> &bytes, DsePoint &out)
{
    try {
        wire::WireReader r(bytes);
        out = wire::getPoint(r);
        r.expectEnd();
        return true;
    } catch (const FatalError &e) {
        std::fprintf(stderr,
                     "finesse: discarding undecodable point artifact (%s)\n",
                     e.what());
        return false;
    }
}

/**
 * Squaring choices per tower level (field/variants.h): cubic levels
 * have three decompositions, quadratic two. Same cubic rule as
 * Explorer::variantSpace.
 */
std::vector<u8>
defaultSqrOptions(const Explorer &ex, const std::vector<int> &levels)
{
    const int k = ex.framework().info().k;
    std::vector<u8> opts;
    opts.reserve(levels.size());
    for (const int d : levels)
        opts.push_back(d == 6 || (d == 12 && k == 24) ? 3 : 2);
    return opts;
}

} // namespace

// SearchSpace --------------------------------------------------------

SearchSpace
SearchSpace::standard(const Explorer &ex)
{
    SearchSpace s;
    s.longLat = {8, 12, 16, 24, 32, 38, 48, 64};
    s.shortLat = {2, 4, 8};
    s.issueWidth = {1, 2, 3, 5, 7};
    s.numLinUnits = {1, 2, 4, 6};
    s.numBanks = {1, 2, 3, 4, 5, 7, 8};
    s.fifoDepth = {2, 4, 8, 16, 32};
    s.cores = {1, 2, 4, 8};
    s.mulLevels = ex.towerDegrees();
    s.sqrOptions = defaultSqrOptions(ex, s.mulLevels);
    return s;
}

u64
SearchSpace::combinations() const
{
    u64 n = 1;
    n *= longLat.size();
    n *= shortLat.size();
    n *= issueWidth.size();
    n *= numLinUnits.size();
    n *= numBanks.size();
    n *= fifoDepth.size();
    n *= cores.size();
    n *= u64{1} << mulLevels.size();
    for (size_t i = 0; i < mulLevels.size(); ++i)
        n *= i < sqrOptions.size() ? sqrOptions[i] : 2;
    return n;
}

std::string
Genome::key() const
{
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "L%d|S%d|W%d|lin%d|b%d|f%d|c%d|m%02x|q%02x", longLat,
                  shortLat, issueWidth, numLinUnits, numBanks, fifoDepth,
                  cores, mulMask, sqrSel);
    return std::string(buf);
}

// ParetoSearch -------------------------------------------------------

ParetoSearch::ParetoSearch(const Explorer &ex, SearchSpace space,
                           SearchOptions opt)
    : ex_(ex), space_(std::move(space)), opt_(std::move(opt))
{
    FINESSE_REQUIRE(!space_.longLat.empty() && !space_.shortLat.empty() &&
                        !space_.issueWidth.empty() &&
                        !space_.numLinUnits.empty() &&
                        !space_.numBanks.empty() &&
                        !space_.fifoDepth.empty() && !space_.cores.empty(),
                    "search space has an empty dimension");
    if (space_.sqrOptions.size() != space_.mulLevels.size())
        space_.sqrOptions = defaultSqrOptions(ex_, space_.mulLevels);
}

void
ParetoSearch::repair(Genome &g) const
{
    g.longLat = space_.longLat[nearestIndex(space_.longLat, g.longLat)];
    g.shortLat = space_.shortLat[nearestIndex(space_.shortLat, g.shortLat)];
    g.issueWidth =
        space_.issueWidth[nearestIndex(space_.issueWidth, g.issueWidth)];
    g.numLinUnits =
        space_.numLinUnits[nearestIndex(space_.numLinUnits, g.numLinUnits)];
    g.numBanks = space_.numBanks[nearestIndex(space_.numBanks, g.numBanks)];
    g.fifoDepth =
        space_.fifoDepth[nearestIndex(space_.fifoDepth, g.fifoDepth)];
    g.cores = space_.cores[nearestIndex(space_.cores, g.cores)];

    // Structural constraints (PipelineModel::validate): pick the
    // largest short latency below the long latency, and the smallest
    // bank count covering the issue width (candidates are ascending).
    if (g.shortLat >= g.longLat) {
        int v = space_.shortLat.front();
        for (int c : space_.shortLat) {
            if (c < g.longLat)
                v = c;
        }
        g.shortLat = v;
    }
    if (g.numBanks < g.issueWidth) {
        int v = space_.numBanks.back();
        for (auto it = space_.numBanks.rbegin(); it != space_.numBanks.rend();
             ++it) {
            if (*it >= g.issueWidth)
                v = *it;
        }
        g.numBanks = v;
    }
    g.mulMask &= static_cast<u32>((u64{1} << space_.mulLevels.size()) - 1);

    // Canonicalize the squaring selector: one representation per
    // distinct variant config, so genome dedup never re-evaluates an
    // alias. Out-of-range selectors fall back to the fast
    // decomposition.
    u32 sel = 0;
    for (size_t i = 0; i < space_.mulLevels.size(); ++i) {
        u32 v = (g.sqrSel >> (2 * i)) & 3;
        if (v >= space_.sqrOptions[i])
            v = 1;
        sel |= v << (2 * i);
    }
    g.sqrSel = sel;
}

DseRequest
ParetoSearch::materialize(const Genome &g) const
{
    DseRequest req;
    req.opt = opt_.base;
    req.opt.variants = VariantConfig{};
    for (size_t i = 0; i < space_.mulLevels.size(); ++i) {
        const int d = space_.mulLevels[i];
        const bool cubic = space_.sqrOptions[i] == 3;
        const u32 sel = (g.sqrSel >> (2 * i)) & 3;
        LevelVariants lv;
        lv.mul = (g.mulMask >> i) & 1 ? MulVariant::Karatsuba
                                      : MulVariant::Schoolbook;
        if (sel == 0)
            lv.sqr = SqrVariant::Schoolbook;
        else if (cubic)
            lv.sqr = sel == 2 ? SqrVariant::CHSqr2 : SqrVariant::CHSqr3;
        else
            lv.sqr = SqrVariant::Complex;
        req.opt.variants.levels[d] = lv;
    }
    PipelineModel hw;
    hw.longLat = g.longLat;
    hw.shortLat = g.shortLat;
    hw.issueWidth = g.issueWidth;
    hw.numLinUnits = g.numLinUnits;
    hw.numBanks = g.numBanks;
    hw.writebackFifo = g.issueWidth > 1;
    hw.fifoDepth = g.fifoDepth;
    hw.validate();
    req.opt.hw = hw;
    req.cores = g.cores;
    req.label = g.key();
    return req;
}

Genome
ParetoSearch::randomGenome(Rng &rng) const
{
    Genome g;
    g.longLat = pickCandidate(space_.longLat, rng);
    g.shortLat = pickCandidate(space_.shortLat, rng);
    g.issueWidth = pickCandidate(space_.issueWidth, rng);
    g.numLinUnits = pickCandidate(space_.numLinUnits, rng);
    g.numBanks = pickCandidate(space_.numBanks, rng);
    g.fifoDepth = pickCandidate(space_.fifoDepth, rng);
    g.cores = pickCandidate(space_.cores, rng);
    g.mulMask = space_.mulLevels.empty()
                    ? 0
                    : static_cast<u32>(
                          rng.below(u64{1} << space_.mulLevels.size()));
    g.sqrSel = 0;
    for (size_t i = 0; i < space_.mulLevels.size(); ++i)
        g.sqrSel |= static_cast<u32>(rng.below(space_.sqrOptions[i]))
                    << (2 * i);
    repair(g);
    return g;
}

Genome
ParetoSearch::mutate(Genome g, Rng &rng, int radius) const
{
    const u64 nDims = space_.mulLevels.empty() ? 7 : 9;
    const int count = 1 + static_cast<int>(rng.below(2));
    for (int i = 0; i < count; ++i) {
        switch (rng.below(nDims)) {
          case 0:
            stepDim(g.longLat, space_.longLat, rng, radius);
            break;
          case 1:
            stepDim(g.shortLat, space_.shortLat, rng, radius);
            break;
          case 2:
            stepDim(g.issueWidth, space_.issueWidth, rng, radius);
            break;
          case 3:
            stepDim(g.numLinUnits, space_.numLinUnits, rng, radius);
            break;
          case 4:
            stepDim(g.numBanks, space_.numBanks, rng, radius);
            break;
          case 5:
            stepDim(g.fifoDepth, space_.fifoDepth, rng, radius);
            break;
          case 6:
            stepDim(g.cores, space_.cores, rng, radius);
            break;
          case 7:
            g.mulMask ^= u32{1} << rng.below(space_.mulLevels.size());
            break;
          default: {
            const size_t lvl = rng.below(space_.mulLevels.size());
            const u32 v =
                static_cast<u32>(rng.below(space_.sqrOptions[lvl]));
            g.sqrSel = (g.sqrSel & ~(u32{3} << (2 * lvl))) |
                       (v << (2 * lvl));
            break;
          }
        }
    }
    return g;
}

Genome
ParetoSearch::crossover(const Genome &a, const Genome &b, Rng &rng) const
{
    Genome g;
    g.longLat = rng.below(2) ? a.longLat : b.longLat;
    g.shortLat = rng.below(2) ? a.shortLat : b.shortLat;
    g.issueWidth = rng.below(2) ? a.issueWidth : b.issueWidth;
    g.numLinUnits = rng.below(2) ? a.numLinUnits : b.numLinUnits;
    g.numBanks = rng.below(2) ? a.numBanks : b.numBanks;
    g.fifoDepth = rng.below(2) ? a.fifoDepth : b.fifoDepth;
    g.cores = rng.below(2) ? a.cores : b.cores;
    g.mulMask = rng.below(2) ? a.mulMask : b.mulMask;
    g.sqrSel = rng.below(2) ? a.sqrSel : b.sqrSel;
    return g;
}

const ParetoSearch::Evaluated &
ParetoSearch::tournament(Rng &rng) const
{
    const Evaluated &a =
        evaluated_.at(evalOrder_[rng.below(evalOrder_.size())]);
    const Evaluated &b =
        evaluated_.at(evalOrder_[rng.below(evalOrder_.size())]);
    const double sa = Explorer::score(a.point, opt_.objective);
    const double sb = Explorer::score(b.point, opt_.objective);
    if (sa != sb)
        return sa > sb ? a : b;
    return a.genome.key() <= b.genome.key() ? a : b;
}

std::vector<Genome>
ParetoSearch::initialPopulation(Rng &rng) const
{
    std::vector<Genome> pop;
    if (opt_.seedGridCorners) {
        // Every grid point: all mul masks with the grid's fast
        // squaring, plus the all-Schoolbook preset corner (the only
        // grid config off the fast-squaring plane; it has the
        // smallest area of any variant, so the frontier needs it).
        const u32 nMasks = u32{1} << space_.mulLevels.size();
        for (const PipelineModel &m : fig10HardwareModels()) {
            Genome g;
            g.longLat = m.longLat;
            g.shortLat = m.shortLat;
            g.issueWidth = m.issueWidth;
            g.numLinUnits = m.numLinUnits;
            g.numBanks = m.numBanks;
            g.fifoDepth = m.fifoDepth;
            g.cores = 1;
            for (u32 mask = 0; mask < nMasks; ++mask) {
                g.mulMask = mask;
                g.sqrSel = 0x55;
                repair(g); // no-op for grid models; keeps the invariant
                pop.push_back(g);
            }
            g.mulMask = 0;
            g.sqrSel = 0;
            repair(g);
            pop.push_back(g);
        }
    }
    while (pop.size() < static_cast<size_t>(std::max(1, opt_.population)))
        pop.push_back(randomGenome(rng));
    return pop;
}

std::vector<DsePoint>
ParetoSearch::evaluateBatch(const std::vector<Genome> &gs)
{
    std::vector<DseRequest> reqs;
    reqs.reserve(gs.size());
    for (const Genome &g : gs)
        reqs.push_back(materialize(g));

    std::vector<DsePoint> out(gs.size());
    std::vector<size_t> missIdx;
    std::vector<std::string> keys(gs.size());
    DiskCache *dc = artifactCache();
    const Framework &fw = ex_.framework();
    for (size_t i = 0; i < reqs.size(); ++i) {
        if (dc != nullptr) {
            keys[i] = pointArtifactKey(fw, reqs[i]);
            std::vector<u8> payload;
            if (dc->get(keys[i], payload)) {
                DsePoint p;
                if (decodePointArtifact(payload, p)) {
                    p.label = reqs[i].label;
                    out[i] = std::move(p);
                    ++stats_.pointCacheHits;
                    continue;
                }
                dc->remove(keys[i]);
            }
        }
        missIdx.push_back(i);
    }

    if (!missIdx.empty()) {
        std::vector<DseRequest> missReqs;
        missReqs.reserve(missIdx.size());
        for (size_t i : missIdx)
            missReqs.push_back(reqs[i]);
        const std::vector<DsePoint> fresh =
            opt_.base.dseWorkers > 0
                ? ex_.evaluateAllDistributed(missReqs, opt_.base.dseWorkers,
                                             opt_.dopts)
                : ex_.evaluateAll(missReqs, opt_.base.jobs);
        for (size_t j = 0; j < missIdx.size(); ++j) {
            out[missIdx[j]] = fresh[j];
            if (dc != nullptr) {
                wire::WireWriter w;
                wire::putPoint(w, fresh[j]);
                if (dc->put(keys[missIdx[j]], w.bytes()))
                    ++stats_.pointCachePuts;
            }
        }
    }
    return out;
}

void
ParetoSearch::updateArchive(const Genome &g, const DsePoint &p)
{
    for (const Evaluated &m : archive_) {
        if (weaklyDominates(m.point, p))
            return; // covered (or an exact metric duplicate)
    }
    std::vector<Evaluated> next;
    next.reserve(archive_.size() + 1);
    for (Evaluated &m : archive_) {
        if (!weaklyDominates(p, m.point))
            next.push_back(std::move(m));
    }
    next.push_back(Evaluated{g, p});
    archive_ = std::move(next);
}

SearchResult
ParetoSearch::run()
{
    stats_ = SearchStats{};
    stats_.spaceSize = space_.combinations();
    evaluated_.clear();
    evalOrder_.clear();
    archive_.clear();

    Rng rng(opt_.seed);
    const int gens = std::max(1, opt_.generations);
    std::vector<Genome> population = initialPopulation(rng);

    for (int gen = 0; gen < gens; ++gen) {
        // Unique not-yet-evaluated genomes, first-appearance order.
        std::vector<Genome> pending;
        std::set<std::string> planned;
        for (const Genome &g : population) {
            const std::string k = g.key();
            if (evaluated_.count(k) != 0 || !planned.insert(k).second)
                continue;
            pending.push_back(g);
        }

        SearchGeneration sg;
        sg.requested = pending.size();
        const size_t hitsBefore = stats_.pointCacheHits;
        const std::vector<DsePoint> pts = evaluateBatch(pending);
        sg.cachedPoints = stats_.pointCacheHits - hitsBefore;
        for (size_t i = 0; i < pending.size(); ++i) {
            const std::string k = pending[i].key();
            evaluated_.emplace(k, Evaluated{pending[i], pts[i]});
            evalOrder_.push_back(k);
            updateArchive(pending[i], pts[i]);
        }
        sg.archiveSize = archive_.size();
        stats_.generations.push_back(sg);

        if (gen + 1 >= gens)
            break;

        // Breed the next generation: tournament parents, uniform
        // crossover, mutation with a radius annealed 3 -> 1 over the
        // run. A bounded retry loop steers offspring away from
        // already-evaluated genomes; a stale child after 12 attempts
        // is accepted and simply dedups to nothing at evaluation.
        const int radius =
            gens > 2 ? 1 + (2 * (gens - 2 - gen)) / (gens - 2) : 1;
        std::vector<Genome> next;
        std::set<std::string> bred;
        for (int i = 0; i < std::max(1, opt_.population); ++i) {
            Genome child;
            for (int attempt = 0; attempt < 12; ++attempt) {
                const Evaluated &pa = tournament(rng);
                const Evaluated &pb = tournament(rng);
                child = mutate(crossover(pa.genome, pb.genome, rng), rng,
                               std::max(1, radius));
                repair(child);
                const std::string k = child.key();
                if (evaluated_.count(k) == 0 && bred.count(k) == 0)
                    break;
            }
            bred.insert(child.key());
            next.push_back(child);
        }
        population = std::move(next);
    }

    SearchResult res;
    std::vector<Evaluated> front = archive_;
    std::sort(front.begin(), front.end(),
              [](const Evaluated &a, const Evaluated &b) {
                  if (a.point.areaMm2 != b.point.areaMm2)
                      return a.point.areaMm2 < b.point.areaMm2;
                  if (a.point.throughputOps != b.point.throughputOps)
                      return a.point.throughputOps > b.point.throughputOps;
                  return a.genome.key() < b.genome.key();
              });
    for (Evaluated &e : front) {
        res.frontier.push_back(e.point);
        res.frontierGenomes.push_back(e.genome);
    }
    // Scalar winner: stable insertion-ordered reduction, exactly like
    // Explorer::exploreVariants (strictly-greater keeps the earliest).
    bool first = true;
    for (const std::string &k : evalOrder_) {
        const DsePoint &p = evaluated_.at(k).point;
        if (first || Explorer::score(p, opt_.objective) >
                         Explorer::score(res.best, opt_.objective)) {
            res.best = p;
            first = false;
        }
    }
    stats_.evaluatedUnique = evaluated_.size();
    res.stats = stats_;
    return res;
}

// Frontier helpers ---------------------------------------------------

bool
weaklyDominates(const DsePoint &a, const DsePoint &b)
{
    return a.throughputOps >= b.throughputOps && a.areaMm2 <= b.areaMm2;
}

std::vector<DsePoint>
paretoFrontier(std::vector<DsePoint> pts)
{
    std::vector<DsePoint> front;
    for (DsePoint &p : pts) {
        bool covered = false;
        for (const DsePoint &f : front) {
            if (weaklyDominates(f, p)) {
                covered = true;
                break;
            }
        }
        if (covered)
            continue;
        std::vector<DsePoint> next;
        next.reserve(front.size() + 1);
        for (DsePoint &f : front) {
            if (!weaklyDominates(p, f))
                next.push_back(std::move(f));
        }
        next.push_back(std::move(p));
        front = std::move(next);
    }
    std::sort(front.begin(), front.end(),
              [](const DsePoint &a, const DsePoint &b) {
                  if (a.areaMm2 != b.areaMm2)
                      return a.areaMm2 < b.areaMm2;
                  if (a.throughputOps != b.throughputOps)
                      return a.throughputOps > b.throughputOps;
                  return a.label < b.label;
              });
    return front;
}

bool
frontierCovers(const std::vector<DsePoint> &frontier,
               const std::vector<DsePoint> &reference)
{
    for (const DsePoint &r : reference) {
        bool covered = false;
        for (const DsePoint &f : frontier) {
            if (weaklyDominates(f, r)) {
                covered = true;
                break;
            }
        }
        if (!covered)
            return false;
    }
    return true;
}

u64
frontierFingerprint(const std::vector<DsePoint> &frontier)
{
    ByteWriter w;
    w.u32v(static_cast<u32>(frontier.size()));
    for (const DsePoint &p : frontier) {
        w.str(p.label);
        w.str(p.variants.cacheKey());
        const PipelineModel &m = p.hw;
        w.i32v(m.longLat);
        w.i32v(m.shortLat);
        w.i32v(m.invLat);
        w.i32v(m.issueWidth);
        w.i32v(m.numLinUnits);
        w.i32v(m.numBanks);
        w.i32v(m.readsPerBank);
        w.i32v(m.writesPerBank);
        w.boolv(m.writebackFifo);
        w.i32v(m.fifoDepth);
        w.f64v(m.beta);
        w.i32v(p.cores);
        w.u64v(p.instrs);
        w.u64v(p.mulInstrs);
        w.u64v(p.linInstrs);
        w.i64v(p.cycles);
        w.f64v(p.ipc);
        w.f64v(p.areaMm2);
        w.f64v(p.freqMHz);
        w.f64v(p.criticalPathNs);
        w.f64v(p.latencyUs);
        w.f64v(p.throughputOps);
        w.f64v(p.thptPerArea);
    }
    return DiskCache::fnv1a(w.bytes().data(), w.bytes().size());
}

} // namespace finesse
