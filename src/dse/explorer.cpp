/**
 * @file
 * Explorer implementation. evaluate()/evaluateAll() run the batched
 * backend engine: design points are grouped by front-end trace key,
 * each group's cached trace is shared un-cloned (Framework::
 * traceShared) and prepped once (TracePrep), and every worker thread
 * evaluates its points with one reusable BackendScratch. The pre-
 * batching per-point path is kept as evaluateAllUngrouped(), the
 * oracle the grouped engine is identity-tested against.
 */
#include "dse/explorer.h"

#include <optional>
#include <unordered_map>

#include "compiler/backendprep.h"
#include "dse/distributor.h"
#include "support/threadpool.h"

namespace finesse {

namespace {

/**
 * Consumes the CompileResult: callers hand over their (freshly
 * compiled) result so the per-pass stats move instead of copying the
 * whole OptStats vector on the hot sweep path.
 */
void
fillMetrics(DsePoint &p, const Framework &fw, CompileResult &&res,
            int cores)
{
    p.instrs = res.instrs();
    p.mulInstrs = res.prog.module.countUnit(UnitClass::Mul);
    p.linInstrs = res.prog.module.countUnit(UnitClass::Linear);
    p.compileSeconds = res.compileSeconds;
    p.opt = std::move(res.opt);

    const CycleStats sim = simulateCycles(res.prog);
    p.cycles = sim.totalCycles;
    p.ipc = sim.ipc();

    const AreaReport area = fw.area(res, cores);
    p.areaMm2 = area.totalArea;

    TimingModel timing;
    p.criticalPathNs =
        timing.criticalPathNs(fw.info().logP(), res.prog.hw.longLat);
    p.freqMHz =
        timing.frequencyMHz(fw.info().logP(), res.prog.hw.longLat);

    p.latencyUs = static_cast<double>(p.cycles) / p.freqMHz;
    p.throughputOps =
        cores * p.freqMHz * 1e6 / static_cast<double>(p.cycles);
    p.thptPerArea = p.throughputOps / p.areaMm2;
}

/** Per-worker reusable backend buffers (one per thread, never shared). */
BackendScratch &
workerScratch()
{
    static thread_local BackendScratch scratch;
    return scratch;
}

/**
 * One design point on the batched engine: backend artifacts + cycle
 * simulation + area/timing models against the shared immutable
 * (module, prep). Computes exactly the numbers fillMetrics derives
 * from a full CompileResult -- identical by the engine-identity and
 * encoding-layout contracts -- without cloning the module or
 * materializing the binary.
 */
DsePoint
evaluatePoint(const Framework &fw, const Module &m, const TracePrep &prep,
              const CompileOptions &opt, int cores,
              const std::string &label, const OptStats &stats,
              BackendScratch &scratch)
{
    DsePoint p;
    p.label = label;
    p.variants = opt.variants;
    p.hw = opt.hw;
    p.cores = cores;
    p.opt = stats;

    BackendPoint &bp = scratch.point;
    runBackendPoint(m, prep, opt.hw, opt.listSchedule, scratch, bp);
    p.instrs = m.size();
    p.mulInstrs = prep.mulInstrs;
    p.linInstrs = prep.linInstrs;
    p.compileSeconds = bp.seconds;

    // Backend stage rows for --pass-stats, like the PassManager path
    // appends (invocations/wall time; backend stages remove nothing).
    const std::pair<const char *, double> stages[] = {
        {"bankalloc", bp.bankallocSeconds},
        {"packsched", bp.packschedSeconds},
        {"regalloc", bp.regallocSeconds},
        {"encode", bp.encodeSeconds},
    };
    for (const auto &[name, seconds] : stages) {
        PassStats &ps = ensurePassStats(p.opt, name, false);
        ps.invocations += 1;
        ps.seconds += seconds;
        p.opt.seconds += seconds;
    }

    const CycleStats sim = simulateCycles(m, bp.banks, bp.schedule,
                                          opt.hw, 10000, 64, &scratch);
    p.cycles = sim.totalCycles;
    p.ipc = sim.ipc();

    // Same DesignPoint Framework::area builds from a CompileResult.
    DesignPoint dp;
    dp.fpBits = fw.info().logP();
    dp.longDepth = opt.hw.longLat;
    dp.numLinUnits = opt.hw.numLinUnits;
    dp.cores = cores;
    dp.imemBits = bp.imemBits;
    size_t words = 0;
    for (i32 w : bp.regs.maxRegsPerBank)
        words += static_cast<size_t>(w);
    dp.dmemWords = words;
    dp.numBanks = bp.banks.numBanks;
    p.areaMm2 = AreaModel().report(dp).totalArea;

    TimingModel timing;
    p.criticalPathNs =
        timing.criticalPathNs(fw.info().logP(), opt.hw.longLat);
    p.freqMHz = timing.frequencyMHz(fw.info().logP(), opt.hw.longLat);

    p.latencyUs = static_cast<double>(p.cycles) / p.freqMHz;
    p.throughputOps =
        cores * p.freqMHz * 1e6 / static_cast<double>(p.cycles);
    p.thptPerArea = p.throughputOps / p.areaMm2;
    return p;
}

} // namespace

bool
batchableRequest(const CompileOptions &opt)
{
    return opt.useTraceCache && opt.backendPasses() == backendPassNames();
}

GroupedRequests
groupByTraceKey(const std::string &curve,
                const std::vector<DseRequest> &points)
{
    GroupedRequests out;
    std::optional<Framework> fw;
    std::unordered_map<std::string, size_t> keyIndex;
    for (size_t i = 0; i < points.size(); ++i) {
        if (!batchableRequest(points[i].opt)) {
            out.ungrouped.push_back(i);
            continue;
        }
        if (!fw)
            fw.emplace(curve);
        const auto [it, inserted] =
            keyIndex.emplace(fw->traceKey(points[i].opt),
                             out.byKey.size());
        if (inserted)
            out.byKey.emplace_back();
        out.byKey[it->second].push_back(i);
    }
    return out;
}

DsePoint
Explorer::evaluateLegacy(const CompileOptions &opt, int cores,
                         const std::string &label) const
{
    DsePoint p;
    p.label = label;
    p.variants = opt.variants;
    p.hw = opt.hw;
    p.cores = cores;
    fillMetrics(p, fw_, fw_.compile(opt), cores);
    return p;
}

DsePoint
Explorer::evaluate(const CompileOptions &opt, int cores,
                   const std::string &label) const
{
    if (!batchableRequest(opt))
        return evaluateLegacy(opt, cores, label);
    OptStats stats;
    const std::shared_ptr<const Module> trace =
        fw_.traceShared(opt, stats);
    const TracePrep prep = buildTracePrep(*trace);
    return evaluatePoint(fw_, *trace, prep, opt, cores, label, stats,
                         workerScratch());
}

std::vector<DsePoint>
Explorer::evaluateAll(const std::vector<DseRequest> &points,
                      int jobs) const
{
    std::vector<DsePoint> out(points.size());

    // Bucket batchable requests by trace key (the shared grouping
    // definition, groupByTraceKey); everything else goes through the
    // legacy per-point path in phase B.
    struct TraceGroup
    {
        std::shared_ptr<const Module> module;
        TracePrep prep;
        OptStats stats;
    };
    const GroupedRequests grouping = groupByTraceKey(curve_, points);
    std::vector<TraceGroup> groups(grouping.byKey.size());
    constexpr size_t kUngrouped = static_cast<size_t>(-1);
    std::vector<size_t> groupOf(points.size(), kUngrouped);
    for (size_t g = 0; g < grouping.byKey.size(); ++g) {
        for (size_t i : grouping.byKey[g])
            groupOf[i] = g;
    }

    // Phase A: one shared trace + prep per group. Tracing goes
    // through the process-wide cache (concurrent same-key requests
    // from other sweeps still coalesce).
    parallelFor(groups.size(), jobs, [&](size_t g) {
        TraceGroup &grp = groups[g];
        grp.module = fw_.traceShared(points[grouping.byKey[g][0]].opt,
                                     grp.stats);
        grp.prep = buildTracePrep(*grp.module);
    });

    // Phase B: every point against its group's immutable shared state,
    // with per-worker reusable scratch.
    parallelFor(points.size(), jobs, [&](size_t i) {
        if (groupOf[i] == kUngrouped) {
            out[i] = evaluateLegacy(points[i].opt, points[i].cores,
                                    points[i].label);
            return;
        }
        const TraceGroup &grp = groups[groupOf[i]];
        out[i] = evaluatePoint(fw_, *grp.module, grp.prep,
                               points[i].opt, points[i].cores,
                               points[i].label, grp.stats,
                               workerScratch());
    });
    return out;
}

std::vector<DsePoint>
Explorer::evaluateAllDistributed(const std::vector<DseRequest> &points,
                                 int workers) const
{
    return distributeEvaluate(curve_, points, workers);
}

std::vector<DsePoint>
Explorer::evaluateAllDistributed(const std::vector<DseRequest> &points,
                                 int workers,
                                 const DistributorOptions &opts) const
{
    return distributeEvaluate(curve_, points, workers, opts);
}

std::vector<DsePoint>
Explorer::evaluateAllUngrouped(const std::vector<DseRequest> &points,
                               int jobs) const
{
    std::vector<DsePoint> out(points.size());
    parallelFor(points.size(), jobs, [&](size_t i) {
        out[i] = evaluateLegacy(points[i].opt, points[i].cores,
                                points[i].label);
    });
    return out;
}

DsePoint
Explorer::evaluateModule(const Module &m, const PipelineModel &hw,
                         int cores, const std::string &label) const
{
    const TracePrep prep = buildTracePrep(m);
    OptStats stats;
    stats.instrsBefore = stats.instrsAfter = m.size();
    CompileOptions opt;
    opt.hw = hw;
    return evaluatePoint(fw_, m, prep, opt, cores, label, stats,
                         workerScratch());
}

std::vector<int>
Explorer::towerDegrees() const
{
    if (fw_.info().k == 24)
        return {2, 4, 12, 24};
    return {2, 6, 12};
}

std::vector<VariantConfig>
Explorer::variantSpace(bool mulOnly) const
{
    const std::vector<int> degrees = towerDegrees();
    std::vector<VariantConfig> space{VariantConfig{}};
    auto expand = [&](auto fn) {
        std::vector<VariantConfig> next;
        for (const VariantConfig &base : space)
            fn(base, next);
        space = std::move(next);
    };
    for (int d : degrees) {
        const bool cubic = d == 6 || (d == 12 && fw_.info().k == 24);
        expand([&](const VariantConfig &base,
                   std::vector<VariantConfig> &next) {
            for (MulVariant mv :
                 {MulVariant::Schoolbook, MulVariant::Karatsuba}) {
                if (mulOnly) {
                    VariantConfig cfg = base;
                    cfg.levels[d].mul = mv;
                    cfg.levels[d].sqr = cubic ? SqrVariant::CHSqr3
                                              : SqrVariant::Complex;
                    next.push_back(cfg);
                    continue;
                }
                const std::vector<SqrVariant> sqrs =
                    cubic ? std::vector<SqrVariant>{
                                SqrVariant::Schoolbook,
                                SqrVariant::CHSqr2, SqrVariant::CHSqr3}
                          : std::vector<SqrVariant>{
                                SqrVariant::Schoolbook,
                                SqrVariant::Complex};
                for (SqrVariant sv : sqrs) {
                    VariantConfig cfg = base;
                    cfg.levels[d] = {mv, sv};
                    next.push_back(cfg);
                }
            }
        });
    }
    return space;
}

VariantConfig
Explorer::allKaratsuba() const
{
    VariantConfig cfg;
    for (int d : towerDegrees()) {
        const bool cubic = d == 6 || (d == 12 && fw_.info().k == 24);
        cfg.levels[d] = {MulVariant::Karatsuba,
                         cubic ? SqrVariant::CHSqr3 : SqrVariant::Complex};
    }
    return cfg;
}

VariantConfig
Explorer::allSchoolbook() const
{
    VariantConfig cfg;
    for (int d : towerDegrees())
        cfg.levels[d] = {MulVariant::Schoolbook, SqrVariant::Schoolbook};
    return cfg;
}

VariantConfig
Explorer::manualHeuristic() const
{
    // Single-issue heuristic (Sec. 2.2 / Fig. 2): Karatsuba saves Long
    // instructions at high tower levels but its extra linear ops hurt
    // low levels on single-issue pipelines -> Schoolbook below, CH-SQR/
    // Karatsuba above.
    VariantConfig cfg = allKaratsuba();
    for (int d : towerDegrees()) {
        if (d <= 4)
            cfg.levels[d].mul = MulVariant::Schoolbook;
    }
    return cfg;
}

double
Explorer::score(const DsePoint &p, Objective objective)
{
    switch (objective) {
      case Objective::MinCycles:
        return -static_cast<double>(p.cycles);
      case Objective::MaxThroughput:
        return p.throughputOps;
      case Objective::MaxThptPerArea:
        return p.thptPerArea;
      case Objective::MinArea:
        return -p.areaMm2;
    }
    return 0;
}

DsePoint
Explorer::exploreVariants(const PipelineModel &hw, Objective objective,
                          bool mulOnly) const
{
    CompileOptions base;
    base.hw = hw;
    return exploreVariants(base, objective, mulOnly);
}

DsePoint
Explorer::exploreVariants(const CompileOptions &base, Objective objective,
                          bool mulOnly) const
{
    return exploreVariants(base, objective, mulOnly,
                           DistributorOptions{});
}

DsePoint
Explorer::exploreVariants(const CompileOptions &base, Objective objective,
                          bool mulOnly,
                          const DistributorOptions &dopts) const
{
    std::vector<DseRequest> reqs;
    for (const VariantConfig &cfg : variantSpace(mulOnly)) {
        DseRequest req;
        req.opt = base;
        req.opt.variants = cfg;
        req.label = "explored";
        reqs.push_back(std::move(req));
    }
    // base.dseWorkers selects the multi-process fan-out; both engines
    // return bit-identical, index-ordered points, so the reduction
    // below is oblivious to where the evaluation ran.
    const std::vector<DsePoint> points =
        base.dseWorkers > 0
            ? evaluateAllDistributed(reqs, base.dseWorkers, dopts)
            : evaluateAll(reqs, base.jobs);

    // Stable index-ordered reduction: identical to the serial loop
    // for every jobs value (strictly-greater keeps the earliest
    // combination on ties).
    DsePoint best;
    bool first = true;
    for (const DsePoint &p : points) {
        if (first || score(p, objective) > score(best, objective)) {
            best = p;
            first = false;
        }
    }
    best.label = "optimal";
    return best;
}

std::vector<PipelineModel>
fig10HardwareModels()
{
    std::vector<PipelineModel> models;
    {
        PipelineModel deep; // L=38, S=8, single issue
        models.push_back(deep);
    }
    for (int lin : {1, 2, 4, 6}) {
        PipelineModel m;
        m.longLat = 8;
        m.shortLat = 2;
        m.numLinUnits = lin;
        m.issueWidth = lin > 1 ? lin + 1 : 1;
        m.numBanks = std::max(m.issueWidth, 1);
        m.writebackFifo = m.issueWidth > 1;
        models.push_back(m);
    }
    return models;
}

} // namespace finesse
