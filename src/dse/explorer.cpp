/**
 * @file
 * Explorer implementation.
 */
#include "dse/explorer.h"

#include "support/threadpool.h"

namespace finesse {

namespace {

/**
 * Consumes the CompileResult: callers hand over their (freshly
 * compiled) result so the per-pass stats move instead of copying the
 * whole OptStats vector on the hot sweep path.
 */
void
fillMetrics(DsePoint &p, const Framework &fw, CompileResult &&res,
            int cores)
{
    p.instrs = res.instrs();
    p.mulInstrs = res.prog.module.countUnit(UnitClass::Mul);
    p.linInstrs = res.prog.module.countUnit(UnitClass::Linear);
    p.compileSeconds = res.compileSeconds;
    p.opt = std::move(res.opt);

    const CycleStats sim = simulateCycles(res.prog);
    p.cycles = sim.totalCycles;
    p.ipc = sim.ipc();

    const AreaReport area = fw.area(res, cores);
    p.areaMm2 = area.totalArea;

    TimingModel timing;
    p.criticalPathNs =
        timing.criticalPathNs(fw.info().logP(), res.prog.hw.longLat);
    p.freqMHz =
        timing.frequencyMHz(fw.info().logP(), res.prog.hw.longLat);

    p.latencyUs = static_cast<double>(p.cycles) / p.freqMHz;
    p.throughputOps =
        cores * p.freqMHz * 1e6 / static_cast<double>(p.cycles);
    p.thptPerArea = p.throughputOps / p.areaMm2;
}

} // namespace

DsePoint
Explorer::evaluate(const CompileOptions &opt, int cores,
                   const std::string &label) const
{
    DsePoint p;
    p.label = label;
    p.variants = opt.variants;
    p.hw = opt.hw;
    p.cores = cores;
    fillMetrics(p, fw_, fw_.compile(opt), cores);
    return p;
}

std::vector<DsePoint>
Explorer::evaluateAll(const std::vector<DseRequest> &points,
                      int jobs) const
{
    std::vector<DsePoint> out(points.size());
    parallelFor(points.size(), jobs, [&](size_t i) {
        out[i] = evaluate(points[i].opt, points[i].cores,
                          points[i].label);
    });
    return out;
}

DsePoint
Explorer::evaluateModule(const Module &m, const PipelineModel &hw,
                         int cores, const std::string &label) const
{
    DsePoint p;
    p.label = label;
    p.hw = hw;
    p.cores = cores;
    fillMetrics(p, fw_, runBackend(m, hw, true), cores);
    return p;
}

std::vector<int>
Explorer::towerDegrees() const
{
    if (fw_.info().k == 24)
        return {2, 4, 12, 24};
    return {2, 6, 12};
}

std::vector<VariantConfig>
Explorer::variantSpace(bool mulOnly) const
{
    const std::vector<int> degrees = towerDegrees();
    std::vector<VariantConfig> space{VariantConfig{}};
    auto expand = [&](auto fn) {
        std::vector<VariantConfig> next;
        for (const VariantConfig &base : space)
            fn(base, next);
        space = std::move(next);
    };
    for (int d : degrees) {
        const bool cubic = d == 6 || (d == 12 && fw_.info().k == 24);
        expand([&](const VariantConfig &base,
                   std::vector<VariantConfig> &next) {
            for (MulVariant mv :
                 {MulVariant::Schoolbook, MulVariant::Karatsuba}) {
                if (mulOnly) {
                    VariantConfig cfg = base;
                    cfg.levels[d].mul = mv;
                    cfg.levels[d].sqr = cubic ? SqrVariant::CHSqr3
                                              : SqrVariant::Complex;
                    next.push_back(cfg);
                    continue;
                }
                const std::vector<SqrVariant> sqrs =
                    cubic ? std::vector<SqrVariant>{
                                SqrVariant::Schoolbook,
                                SqrVariant::CHSqr2, SqrVariant::CHSqr3}
                          : std::vector<SqrVariant>{
                                SqrVariant::Schoolbook,
                                SqrVariant::Complex};
                for (SqrVariant sv : sqrs) {
                    VariantConfig cfg = base;
                    cfg.levels[d] = {mv, sv};
                    next.push_back(cfg);
                }
            }
        });
    }
    return space;
}

VariantConfig
Explorer::allKaratsuba() const
{
    VariantConfig cfg;
    for (int d : towerDegrees()) {
        const bool cubic = d == 6 || (d == 12 && fw_.info().k == 24);
        cfg.levels[d] = {MulVariant::Karatsuba,
                         cubic ? SqrVariant::CHSqr3 : SqrVariant::Complex};
    }
    return cfg;
}

VariantConfig
Explorer::allSchoolbook() const
{
    VariantConfig cfg;
    for (int d : towerDegrees())
        cfg.levels[d] = {MulVariant::Schoolbook, SqrVariant::Schoolbook};
    return cfg;
}

VariantConfig
Explorer::manualHeuristic() const
{
    // Single-issue heuristic (Sec. 2.2 / Fig. 2): Karatsuba saves Long
    // instructions at high tower levels but its extra linear ops hurt
    // low levels on single-issue pipelines -> Schoolbook below, CH-SQR/
    // Karatsuba above.
    VariantConfig cfg = allKaratsuba();
    for (int d : towerDegrees()) {
        if (d <= 4)
            cfg.levels[d].mul = MulVariant::Schoolbook;
    }
    return cfg;
}

double
Explorer::score(const DsePoint &p, Objective objective)
{
    switch (objective) {
      case Objective::MinCycles:
        return -static_cast<double>(p.cycles);
      case Objective::MaxThroughput:
        return p.throughputOps;
      case Objective::MaxThptPerArea:
        return p.thptPerArea;
      case Objective::MinArea:
        return -p.areaMm2;
    }
    return 0;
}

DsePoint
Explorer::exploreVariants(const PipelineModel &hw, Objective objective,
                          bool mulOnly) const
{
    CompileOptions base;
    base.hw = hw;
    return exploreVariants(base, objective, mulOnly);
}

DsePoint
Explorer::exploreVariants(const CompileOptions &base, Objective objective,
                          bool mulOnly) const
{
    std::vector<DseRequest> reqs;
    for (const VariantConfig &cfg : variantSpace(mulOnly)) {
        DseRequest req;
        req.opt = base;
        req.opt.variants = cfg;
        req.label = "explored";
        reqs.push_back(std::move(req));
    }
    const std::vector<DsePoint> points = evaluateAll(reqs, base.jobs);

    // Stable index-ordered reduction: identical to the serial loop
    // for every jobs value (strictly-greater keeps the earliest
    // combination on ties).
    DsePoint best;
    bool first = true;
    for (const DsePoint &p : points) {
        if (first || score(p, objective) > score(best, objective)) {
            best = p;
            first = false;
        }
    }
    best.label = "optimal";
    return best;
}

std::vector<PipelineModel>
fig10HardwareModels()
{
    std::vector<PipelineModel> models;
    {
        PipelineModel deep; // L=38, S=8, single issue
        models.push_back(deep);
    }
    for (int lin : {1, 2, 4, 6}) {
        PipelineModel m;
        m.longLat = 8;
        m.shortLat = 2;
        m.numLinUnits = lin;
        m.issueWidth = lin > 1 ? lin + 1 : 1;
        m.numBanks = std::max(m.issueWidth, 1);
        m.writebackFifo = m.issueWidth > 1;
        models.push_back(m);
    }
    return models;
}

} // namespace finesse
