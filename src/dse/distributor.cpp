/**
 * @file
 * Master/worker implementation of the distributed sweep.
 *
 * Master: groups requests by front-end trace key (non-batchable
 * requests become singleton groups), spawns worker subprocesses, and
 * runs a poll() loop with one in-flight group per worker. A worker
 * that hits EOF or poisons its stream (bad frame) is declared dead:
 * its in-flight group is re-queued at the FRONT of the pending list
 * (bounded by maxGroupRetries) and handed to the next idle live
 * worker. Results are scattered into the output by original request
 * index, so the merge is the same index-ordered reduction as
 * Explorer::evaluateAll.
 *
 * Worker: a blocking read loop; each GroupRequest is evaluated with
 * Explorer::evaluateAll(requests, jobs=1) -- the batched TracePrep/
 * BackendScratch path -- and answered with one GroupResult frame.
 */
#include "dse/distributor.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <optional>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "dse/wire.h"
#include "support/subprocess.h"

namespace finesse {

namespace {

/** Env var that makes a worker SIGKILL itself on its first group. */
constexpr const char *kKillEnv = "FINESSE_DSE_KILL9";

bool
writeFd(int fd, const std::vector<u8> &bytes)
{
    return writeAllFd(fd, bytes.data(), bytes.size());
}

struct WorkerState
{
    Subprocess proc;
    wire::FrameBuffer frames;
    bool alive = false;
    long inFlight = -1; ///< group id, -1 = idle
};

} // namespace

std::vector<DsePoint>
distributeEvaluate(const std::string &curve,
                   const std::vector<DseRequest> &points, int workers,
                   const DistributorOptions &opts)
{
    FINESSE_REQUIRE(workers >= 1, "dse workers must be >= 1");
    DistributorStats localStats;
    DistributorStats &stats = opts.stats ? *opts.stats : localStats;
    std::vector<DsePoint> out(points.size());
    if (points.empty())
        return out;

    // Group by front-end trace key (groupByTraceKey: the SAME
    // grouping the in-process engine applies) so one dispatch
    // amortizes the worker-side trace + prep across every point that
    // shares it. Requests the batched engine would not group
    // (non-standard backend pipeline, cache disabled) ride as
    // singleton groups; the worker's evaluateAll applies the same
    // split, so the evaluation path per point is identical either
    // way.
    struct Group
    {
        std::vector<size_t> indices;
        int retries = 0;
    };
    std::vector<Group> groups;
    {
        GroupedRequests grouping = groupByTraceKey(curve, points);
        groups.reserve(grouping.byKey.size() +
                       grouping.ungrouped.size());
        for (std::vector<size_t> &indices : grouping.byKey)
            groups.push_back({std::move(indices), 0});
        for (size_t i : grouping.ungrouped)
            groups.push_back({{i}, 0});
    }
    stats.groups = groups.size();

    std::vector<std::string> cmd = opts.workerCommand;
    if (cmd.empty())
        cmd = {selfExePath(), "dse-worker"};

    const int n =
        static_cast<int>(std::min<size_t>(static_cast<size_t>(workers),
                                          groups.size()));
    std::vector<WorkerState> pool(static_cast<size_t>(n));
    for (int w = 0; w < n; ++w) {
        std::vector<std::string> env;
        if (opts.killAllWorkers || w == opts.killWorkerIndex)
            env.push_back(std::string(kKillEnv) + "=1");
        pool[static_cast<size_t>(w)].proc.spawn(cmd, env);
        pool[static_cast<size_t>(w)].alive = true;
        ++stats.workersSpawned;
    }

    std::deque<size_t> pending;
    for (size_t g = 0; g < groups.size(); ++g)
        pending.push_back(g);
    size_t completed = 0;

    auto dispatchTo = [&](WorkerState &ws) -> bool {
        if (pending.empty())
            return true;
        const size_t g = pending.front();
        pending.pop_front();
        ws.inFlight = static_cast<long>(g);
        wire::GroupRequest msg;
        msg.curve = curve;
        msg.groupId = g;
        msg.requests.reserve(groups[g].indices.size());
        for (size_t idx : groups[g].indices)
            msg.requests.push_back(points[idx]);
        const std::vector<u8> frame = encodeGroupRequest(msg);
        return ws.proc.writeAll(frame.data(), frame.size());
    };

    // Declared dead: reap, and re-queue the in-flight group (front of
    // the queue, so a re-dispatched group is never starved by the
    // remaining backlog). Bounded per group; a group that keeps
    // killing workers is an error, not an infinite loop.
    auto declareDead = [&](WorkerState &ws) {
        ws.proc.kill(SIGKILL);
        ws.proc.wait();
        ws.alive = false;
        ++stats.workerDeaths;
        if (ws.inFlight >= 0) {
            const size_t g = static_cast<size_t>(ws.inFlight);
            ws.inFlight = -1;
            if (++groups[g].retries > opts.maxGroupRetries)
                fatal("distributed sweep: group ", g, " failed after ",
                      opts.maxGroupRetries, " re-dispatches");
            pending.push_front(g);
            ++stats.redispatches;
        }
    };

    // Initial dispatch: one group per worker. A write failure here
    // (worker died instantly) is handled like any later death.
    for (WorkerState &ws : pool) {
        if (!dispatchTo(ws))
            declareDead(ws);
    }

    std::vector<u8> chunk(1 << 16);
    while (completed < groups.size()) {
        std::vector<pollfd> fds;
        std::vector<size_t> fdWorker;
        for (size_t w = 0; w < pool.size(); ++w) {
            if (!pool[w].alive)
                continue;
            fds.push_back({pool[w].proc.stdoutFd(), POLLIN, 0});
            fdWorker.push_back(w);
        }
        if (fds.empty())
            fatal("distributed sweep: all ", n, " workers died (",
                  groups.size() - completed, " groups unfinished)");

        int rc;
        do {
            rc = ::poll(fds.data(), fds.size(), -1);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0)
            fatal("distributed sweep: poll: ", std::strerror(errno));

        for (size_t f = 0; f < fds.size(); ++f) {
            if (fds[f].revents == 0)
                continue;
            WorkerState &ws = pool[fdWorker[f]];
            const long r =
                ws.proc.readSome(chunk.data(), chunk.size());
            if (r <= 0) {
                declareDead(ws);
                continue;
            }
            ws.frames.append(chunk.data(), static_cast<size_t>(r));

            // Drain complete frames. The try block only PARSES: a
            // decode failure poisons the stream, nothing more --
            // declareDead (whose retry-exhaustion FatalError must
            // propagate to the caller) runs strictly outside it. A
            // WorkerError frame is a DETERMINISTIC failure a retry
            // cannot fix -> propagate too.
            std::optional<std::string> workerError;
            std::vector<wire::GroupResult> results;
            bool poisoned = false;
            try {
                wire::Frame frame;
                while (ws.frames.next(frame)) {
                    if (frame.type == wire::FrameType::WorkerError) {
                        workerError =
                            wire::decodeWorkerError(frame.payload)
                                .message;
                        break;
                    }
                    if (frame.type != wire::FrameType::GroupRequest) {
                        results.push_back(
                            wire::decodeGroupResult(frame.payload));
                        continue;
                    }
                    poisoned = true; // request echoed back: protocol bug
                    break;
                }
            } catch (const std::exception &) {
                // Any parse failure -- FatalError from the decoders,
                // bad_alloc from a corrupt stream -- poisons the
                // worker; the sweep itself survives via re-dispatch.
                poisoned = true;
            }
            if (workerError)
                fatal("dse worker failed: ", *workerError);

            for (wire::GroupResult &res : results) {
                // A result for the wrong group or with the wrong
                // point count is protocol corruption: drop the
                // worker, let its in-flight group re-dispatch.
                if (ws.inFlight < 0 ||
                    res.groupId != static_cast<u64>(ws.inFlight) ||
                    res.points.size() !=
                        groups[res.groupId].indices.size()) {
                    poisoned = true;
                    break;
                }
                const Group &grp = groups[res.groupId];
                for (size_t k = 0; k < grp.indices.size(); ++k)
                    out[grp.indices[k]] = std::move(res.points[k]);
                ++completed;
                ws.inFlight = -1;
                // A worker already marked poisoned (corrupt bytes
                // after this result) gets no new group: dispatching
                // one would charge that group a retry no worker ever
                // attempted.
                if (!poisoned && !dispatchTo(ws)) {
                    poisoned = true; // write failure == dead worker
                    break;
                }
            }
            if (poisoned)
                declareDead(ws);
        }

        // A death may have re-queued a group while other live workers
        // sit idle (their queue ran dry earlier): hand it over now.
        for (WorkerState &ws : pool) {
            if (pending.empty())
                break;
            if (ws.alive && ws.inFlight < 0) {
                if (!dispatchTo(ws))
                    declareDead(ws);
            }
        }
    }

    for (WorkerState &ws : pool) {
        if (!ws.alive)
            continue;
        ws.proc.closeStdin(); // EOF -> worker exits its read loop
        ws.proc.wait();
        ws.alive = false;
    }
    return out;
}

int
runDseWorker(int inFd, int outFd)
{
    // A master that died mid-sweep must surface as a failed write
    // (-> clean worker exit), not as a fatal SIGPIPE.
    ignoreSigpipe();
    const bool kill9 = std::getenv(kKillEnv) != nullptr;
    wire::FrameBuffer frames;
    std::vector<u8> chunk(1 << 16);
    u64 currentGroup = 0;
    try {
        for (;;) {
            long r;
            do {
                r = ::read(inFd, chunk.data(), chunk.size());
            } while (r < 0 && errno == EINTR);
            if (r == 0)
                return 0; // clean shutdown: master closed our stdin
            if (r < 0)
                fatal("dse worker: read: ", std::strerror(errno));
            frames.append(chunk.data(), static_cast<size_t>(r));

            wire::Frame frame;
            while (frames.next(frame)) {
                if (frame.type != wire::FrameType::GroupRequest)
                    fatal("dse worker: unexpected frame type ",
                          static_cast<int>(frame.type));
                const wire::GroupRequest req =
                    wire::decodeGroupRequest(frame.payload);
                currentGroup = req.groupId;
                if (kill9) {
                    // Fault injection: die like `kill -9` mid-group,
                    // after the master committed the dispatch.
                    ::raise(SIGKILL);
                }
                Explorer ex(req.curve);
                wire::GroupResult res;
                res.groupId = req.groupId;
                // Serial per group: process-level parallelism comes
                // from N workers; identical results either way.
                res.points = ex.evaluateAll(req.requests, 1);
                if (!writeFd(outFd, wire::encodeGroupResult(res)))
                    return 1; // master is gone
            }
        }
    } catch (const FatalError &e) {
        // Deterministic configuration error (unknown curve, bad
        // options): report it so the master aborts instead of
        // burning retries on a group that can never succeed.
        wire::WorkerError err;
        err.groupId = currentGroup;
        err.message = e.what();
        writeFd(outFd, wire::encodeWorkerError(err));
        return 1;
    } catch (const std::exception &e) {
        // Possibly-transient failure (bad_alloc under memory
        // pressure, internal panic): exit WITHOUT a WorkerError
        // frame -- the master sees EOF and re-dispatches the group
        // to a live worker, which may well succeed.
        std::fprintf(stderr, "dse worker: %s\n", e.what());
        return 1;
    }
}

std::optional<int>
maybeRunDseWorkerMain(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "dse-worker") == 0)
        return runDseWorker();
    return std::nullopt;
}

} // namespace finesse
