/**
 * @file
 * Master/worker implementation of the fault-tolerant distributed
 * sweep.
 *
 * Master: groups requests by front-end trace key (non-batchable
 * requests become singleton groups), builds a pool of worker
 * CONNECTIONS -- pipe subprocesses, loopback-TCP subprocesses, or
 * remote `dse-worker --listen` peers named by a host pool -- and runs
 * a poll() loop with finite timeouts. Workers are admitted by a Hello
 * handshake (protocol version + curve-catalog hash) before any
 * dispatch; until the Hello is validated the slot's frame buffer is
 * capped to a few KB, so an unauthenticated peer cannot drive a large
 * allocation with a forged length prefix. One group is in flight per
 * worker. A worker that hits EOF, poisons its stream (bad frame) or
 * misses its liveness/group deadline is terminated (SIGKILL + reap
 * locally; socket close for a remote, whose abandoned result then has
 * nowhere to land -- which is what keeps re-dispatch safe), and its
 * in-flight group is re-queued at the FRONT of the pending list under
 * a per-group retry budget with capped exponential backoff. Remote
 * hosts that fail to connect are quarantined with the same capped
 * backoff and retried on that timer; in the meantime the slot refills
 * with a local worker (remoteDegradeToLocal), so losing every remote
 * degrades to the all-local path. Once the backlog drains,
 * long-running stragglers are hedged: the same group goes to an idle
 * worker and the first result wins (safe -- both compute identical
 * bits). When a group exhausts its retries or the pool empties for
 * good, fallbackLocal evaluates the remainder in-process via
 * Explorer::evaluateAll. Results are scattered into the output by
 * original request index, so the merge is the same index-ordered
 * reduction as Explorer::evaluateAll.
 *
 * Worker: sends Hello, then a blocking read loop. Each GroupRequest
 * is evaluated with Explorer::evaluateAll(requests, jobs=1) -- the
 * batched TracePrep/BackendScratch path -- under a heartbeat thread
 * (unsolicited Pongs every kHeartbeatMs, so a busy-but-healthy worker
 * is never mistaken for a hung one) and answered with one GroupResult
 * frame; Pings are answered with Pongs. A FINESSE_DSE_FAULT plan in
 * the environment injects crashes/hangs/corruption at scripted points
 * (the chaos harness of tests/test_chaos_dse.cpp); its NETWORK-kind
 * actions (drop/trunc/delay/refuse) are instead executed master-side
 * by the chaos proxy (dse/chaosproxy.h).
 */
#include "dse/distributor.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include <poll.h>
#include <unistd.h>

#include "curve/catalog.h"
#include "dse/chaosproxy.h"
#include "support/connection.h"
#include "support/socket.h"
#include "support/subprocess.h"

namespace finesse {

namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

/** Worker heartbeat period; masters time out after many multiples. */
constexpr int kHeartbeatMs = 100;

/** Floor on the handshake deadline: exec under sanitizers is slow. */
constexpr int kHandshakeFloorMs = 5000;

/** Liveness default when neither the option nor the env is set. */
constexpr int kDefaultLivenessMs = 10000;

/**
 * Frame-payload cap for a peer that has not completed its handshake:
 * a Hello is ~20 bytes, so anything beyond a few KB before admission
 * is garbage and poisons the stream instead of allocating.
 */
constexpr size_t kPreHelloPayloadCap = 4096;

int
envMsOr(const char *name, int dflt)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return dflt;
    char *end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || n <= 0)
        return dflt;
    return static_cast<int>(n);
}

i64
msUntil(Clock::time_point t, Clock::time_point now)
{
    return std::chrono::duration_cast<milliseconds>(t - now).count();
}

/** One pending/in-flight trace-key group. */
struct Group
{
    std::vector<size_t> indices;
    int retries = 0;
    int inFlight = 0; ///< live workers currently evaluating it
    bool completed = false;
    bool hedged = false;
    Clock::time_point eligibleAt{}; ///< retry-backoff gate
};

/** One remote endpoint of the worker pool, with quarantine state. */
struct HostState
{
    HostPort addr;
    bool local = false; ///< the "local" pool token: pin a local slot
    int failures = 0;   ///< consecutive connect failures
    Clock::time_point eligibleAt{}; ///< quarantine gate
};

struct WorkerSlot
{
    enum class State {
        Dead,      ///< not running (never spawned / declared dead)
        Handshake, ///< spawned, Hello not yet validated
        Idle,      ///< admitted, no group in flight
        Busy,      ///< evaluating a group
    };

    std::unique_ptr<Connection> conn;
    wire::FrameBuffer frames;
    State state = State::Dead;
    long group = -1; ///< in-flight group id, -1 = none
    Clock::time_point lastProgress{}; ///< last bytes read (any frame)
    Clock::time_point dispatchedAt{}; ///< current group's dispatch time
    Clock::time_point lastPingAt{};
    std::vector<std::string> env; ///< respawns reuse the slot's env

    int hostIdx = -1;    ///< index into the host pool; -1 = local slot
    FaultPlan framePlan; ///< stream-fault template; COPIED per spawn,
                         ///< so a respawned connection replays its
                         ///< faults afresh (like worker-side plans)
    FaultPlan connectPlan;   ///< connect-site actions, persistent so a
                             ///< scripted refusal fires once per slot,
                             ///< not once per respawn
    int connectAttempts = 0; ///< connect-site ordinal
};

} // namespace

std::string
DistributorStats::describe() const
{
    std::ostringstream os;
    os << "groups=" << groups << " dispatched=" << dispatches
       << " retried=" << redispatches << " hedged=" << hedges
       << " stale=" << staleResults << " | workers spawned="
       << workersSpawned << " died=" << workerDeaths << " (signaled="
       << workersSignaled << " exited=" << workersExited
       << " timeout-kills=" << timeoutKills << " handshake-rejects="
       << handshakeFailures << ") respawned=" << respawns
       << " | remote connects=" << remoteConnects << " connect-fails="
       << remoteConnectFailures << " quarantines=" << hostQuarantines
       << " degraded-local=" << remoteDegraded << " net-faults="
       << networkFaultsInjected << " | fallback-local="
       << fallbackGroups << " groups/" << fallbackPoints
       << " points | pings=" << pingsSent << " pongs="
       << pongsReceived;
    return os.str();
}

DseTransport
resolveDseTransport(DseTransport requested)
{
    if (requested != DseTransport::Default)
        return requested;
    const char *v = std::getenv(kTransportEnv);
    if (!v || !*v || std::strcmp(v, "pipe") == 0)
        return DseTransport::Pipe;
    if (std::strcmp(v, "loopback-tcp") == 0 ||
        std::strcmp(v, "tcp") == 0)
        return DseTransport::LoopbackTcp;
    fatal("unknown ", kTransportEnv, " '", v,
          "' (expected pipe | loopback-tcp)");
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    const auto parseIndex = [&](const std::string &text,
                                const std::string &term) {
        char *end = nullptr;
        const long v = std::strtol(text.c_str(), &end, 10);
        if (text.empty() || *end != '\0' || v < 0)
            fatal("fault plan: bad index '", text, "' in '", term, "'");
        return static_cast<int>(v);
    };

    size_t start = 0;
    while (start <= spec.size()) {
        size_t semi = spec.find(';', start);
        if (semi == std::string::npos)
            semi = spec.size();
        const std::string term = spec.substr(start, semi - start);
        start = semi + 1;
        if (term.empty())
            continue;

        const size_t at = term.find('@');
        if (at == std::string::npos)
            fatal("fault plan: missing '@' in '", term, "'");
        const std::string action = term.substr(0, at);
        const std::string site = term.substr(at + 1);

        FaultAction fa;
        if (action == "kill") {
            fa.kind = FaultAction::Kind::Kill;
        } else if (action == "hang") {
            fa.kind = FaultAction::Kind::Hang;
        } else if (action == "garbage") {
            fa.kind = FaultAction::Kind::Garbage;
        } else if (action == "bad_version") {
            fa.kind = FaultAction::Kind::BadHelloVersion;
        } else if (action == "bad_hash") {
            fa.kind = FaultAction::Kind::BadHelloHash;
        } else if (action == "drop") {
            fa.kind = FaultAction::Kind::Drop;
        } else if (action == "trunc") {
            fa.kind = FaultAction::Kind::Truncate;
        } else if (action == "refuse") {
            fa.kind = FaultAction::Kind::Refuse;
        } else if (action.rfind("stall_ms=", 0) == 0) {
            fa.kind = FaultAction::Kind::Stall;
            fa.stallMs = parseIndex(action.substr(9), term);
        } else if (action.rfind("delay_ms=", 0) == 0) {
            fa.kind = FaultAction::Kind::Delay;
            fa.stallMs = parseIndex(action.substr(9), term);
        } else {
            fatal("fault plan: unknown action '", action, "'");
        }

        if (site == "hello") {
            fa.site = FaultAction::Site::Hello;
        } else if (site == "connect") {
            fa.site = FaultAction::Site::Connect;
        } else if (site.rfind("connect:", 0) == 0) {
            fa.site = FaultAction::Site::Connect;
            fa.index = parseIndex(site.substr(8), term);
        } else if (site.rfind("group:", 0) == 0) {
            fa.site = FaultAction::Site::Group;
            fa.index = parseIndex(site.substr(6), term);
        } else if (site.rfind("frame:", 0) == 0) {
            fa.site = FaultAction::Site::Frame;
            fa.index = parseIndex(site.substr(6), term);
        } else {
            fatal("fault plan: unknown site '", site, "'");
        }
        plan.actions.push_back(fa);
    }
    return plan;
}

FaultAction *
FaultPlan::fire(FaultAction::Site site, int index)
{
    for (FaultAction &fa : actions) {
        if (fa.fired || fa.site != site)
            continue;
        if (fa.site != FaultAction::Site::Hello && fa.index != index)
            continue;
        fa.fired = true;
        return &fa;
    }
    return nullptr;
}

FaultPlan
FaultPlan::keep(bool networkKinds) const
{
    FaultPlan out;
    for (const FaultAction &fa : actions) {
        if (fa.isNetworkKind() == networkKinds)
            out.actions.push_back(fa);
    }
    return out;
}

std::string
helloRejectReason(const wire::Hello &hello)
{
    if (hello.version != wire::kProtocolVersion) {
        std::ostringstream os;
        os << "protocol version mismatch: worker v" << hello.version
           << ", master v" << wire::kProtocolVersion;
        return os.str();
    }
    if (hello.catalogHash != catalogHash()) {
        std::ostringstream os;
        os << "curve-catalog hash mismatch: worker 0x" << std::hex
           << hello.catalogHash << ", master 0x" << catalogHash()
           << " (heterogeneous builds cannot share a sweep)";
        return os.str();
    }
    return {};
}

std::vector<DsePoint>
distributeEvaluate(const std::string &curve,
                   const std::vector<DseRequest> &points, int workers,
                   const DistributorOptions &opts)
{
    FINESSE_REQUIRE(workers >= 1, "dse workers must be >= 1");
    DistributorStats localStats;
    DistributorStats &stats = opts.stats ? *opts.stats : localStats;
    std::vector<DsePoint> out(points.size());
    if (points.empty())
        return out;

    // Group by front-end trace key (groupByTraceKey: the SAME
    // grouping the in-process engine applies) so one dispatch
    // amortizes the worker-side trace + prep across every point that
    // shares it. Requests the batched engine would not group ride as
    // singleton groups; the worker's evaluateAll applies the same
    // split, so the evaluation path per point is identical either
    // way.
    std::vector<Group> groups;
    {
        GroupedRequests grouping = groupByTraceKey(curve, points);
        groups.reserve(grouping.byKey.size() +
                       grouping.ungrouped.size());
        for (std::vector<size_t> &indices : grouping.byKey)
            groups.push_back({std::move(indices), 0, 0, false, false,
                              Clock::time_point{}});
        for (size_t i : grouping.ungrouped)
            groups.push_back(
                {{i}, 0, 0, false, false, Clock::time_point{}});
    }
    stats.groups = groups.size();

    std::vector<std::string> cmd = opts.workerCommand;
    if (cmd.empty())
        cmd = {selfExePath(), "dse-worker"};

    const DseTransport transport = resolveDseTransport(opts.transport);

    const int livenessMs =
        opts.livenessTimeoutMs > 0
            ? opts.livenessTimeoutMs
            : envMsOr("FINESSE_DSE_LIVENESS_MS", kDefaultLivenessMs);
    const int handshakeMs = std::max(livenessMs, kHandshakeFloorMs);
    const int connectMs =
        opts.connectTimeoutMs > 0 ? opts.connectTimeoutMs : handshakeMs;

    // Remote pool: explicit option, then the environment, else
    // all-local. parseHostPort is fatal on typos -- a malformed host
    // list must not silently shrink the pool.
    std::vector<HostState> hosts;
    {
        std::vector<std::string> specs = opts.hosts;
        if (specs.empty()) {
            const char *env = std::getenv(kHostsEnv);
            std::string text = env ? env : "";
            size_t from = 0;
            while (from <= text.size() && !text.empty()) {
                size_t comma = text.find(',', from);
                if (comma == std::string::npos)
                    comma = text.size();
                specs.push_back(text.substr(from, comma - from));
                from = comma + 1;
            }
        }
        for (const std::string &spec : specs) {
            if (spec.empty())
                continue;
            HostState h;
            if (spec == "local")
                h.local = true;
            else
                h.addr = parseHostPort(spec);
            hosts.push_back(std::move(h));
        }
    }

    const int n =
        static_cast<int>(std::min<size_t>(static_cast<size_t>(workers),
                                          groups.size()));
    int respawnBudget = opts.maxRespawns >= 0 ? opts.maxRespawns : 2 * n;

    std::atomic<int> netFaultsFired{0};

    // Network fault plans: an explicit per-slot network plan is
    // proxy-side BY DEFINITION -- every action in it runs on the
    // wire, including `garbage` (which doubles as a worker kind when
    // it appears in a worker plan). The shared ambient
    // FINESSE_DSE_FAULT splits by KIND instead: workers run their
    // half, the proxy lifts out only the network-kind terms -- and
    // only when no explicit worker plans pin the slots (a test that
    // pins its workers expects no ambient interference at all).
    const bool explicitWorkerPlans = !opts.workerFaultPlans.empty() ||
                                     opts.killAllWorkers ||
                                     opts.killWorkerIndex >= 0;
    const char *ambientSpec = std::getenv(kFaultPlanEnv);

    std::vector<WorkerSlot> pool(static_cast<size_t>(n));
    for (int w = 0; w < n; ++w) {
        WorkerSlot &ws = pool[static_cast<size_t>(w)];
        ws.env = opts.workerEnv;
        if (!hosts.empty())
            ws.hostIdx = w % static_cast<int>(hosts.size());
        std::string plan;
        bool explicitPlan = false;
        if (!opts.workerFaultPlans.empty()) {
            plan = opts.workerFaultPlans[static_cast<size_t>(w) %
                                         opts.workerFaultPlans.size()];
            explicitPlan = true;
        }
        if (plan.empty() &&
            (opts.killAllWorkers || w == opts.killWorkerIndex)) {
            plan = "kill@group:0";
            explicitPlan = true;
        }
        // An explicit plan (even an empty one) is always exported so
        // it shadows any ambient FINESSE_DSE_FAULT: chaos tests pin
        // exactly which slots fault no matter what CI injects.
        if (explicitPlan)
            ws.env.push_back(std::string(kFaultPlanEnv) + "=" + plan);

        FaultPlan net;
        if (!opts.networkFaultPlans.empty())
            net = FaultPlan::parse(
                opts.networkFaultPlans[static_cast<size_t>(w) %
                                       opts.networkFaultPlans.size()]);
        else if (!explicitWorkerPlans && ambientSpec)
            net = FaultPlan::parse(ambientSpec).keep(true);
        for (const FaultAction &fa : net.actions) {
            if (fa.site == FaultAction::Site::Connect)
                ws.connectPlan.actions.push_back(fa);
            else
                ws.framePlan.actions.push_back(fa);
        }
    }

    const auto quarantineHost = [&](HostState &h,
                                    Clock::time_point now) {
        ++h.failures;
        const int shift = std::min(h.failures - 1, 20);
        const i64 backoff =
            std::min<i64>(opts.retryBackoffCapMs,
                          static_cast<i64>(opts.retryBackoffMs)
                              << shift);
        h.eligibleAt = now + milliseconds(backoff);
        ++stats.hostQuarantines;
    };

    enum class Spawn {
        Ok,       ///< slot is up (remote or local)
        Failed,   ///< attempt made and lost (consumes respawn budget)
        Deferred, ///< host quarantined, no local refill: retry later
    };

    const auto trySpawnSlot = [&](WorkerSlot &ws,
                                  Clock::time_point now) -> Spawn {
        // Scripted connect refusal (chaos): the failure itself is the
        // point -- exercise the master's retry/degrade reaction
        // without needing an actually-unreachable host.
        if (ws.connectPlan.fire(FaultAction::Site::Connect,
                                ws.connectAttempts)) {
            ++ws.connectAttempts;
            ++stats.networkFaultsInjected;
            return Spawn::Failed;
        }
        ++ws.connectAttempts;

        std::unique_ptr<Connection> conn;
        HostState *host =
            ws.hostIdx >= 0 ? &hosts[static_cast<size_t>(ws.hostIdx)]
                            : nullptr;
        bool degraded = false;
        if (host && !host->local) {
            if (msUntil(host->eligibleAt, now) > 0) {
                if (!opts.remoteDegradeToLocal)
                    return Spawn::Deferred;
                degraded = true; // quarantined: refill locally for now
            } else {
                std::string err;
                conn = connectTcpWorker(host->addr, connectMs, &err);
                if (conn) {
                    ++stats.remoteConnects;
                    host->failures = 0;
                } else {
                    ++stats.remoteConnectFailures;
                    std::fprintf(stderr, "distributed sweep: %s\n",
                                 err.c_str());
                    quarantineHost(*host, now);
                    if (!opts.remoteDegradeToLocal)
                        return Spawn::Failed;
                    degraded = true;
                }
            }
        }
        if (!conn) {
            if (degraded)
                ++stats.remoteDegraded;
            if (transport == DseTransport::LoopbackTcp) {
                std::string err;
                conn = spawnLoopbackTcpConnection(cmd, ws.env,
                                                  connectMs, &err);
                if (!conn) {
                    std::fprintf(stderr,
                                 "distributed sweep: loopback worker: "
                                 "%s\n",
                                 err.c_str());
                    return Spawn::Failed;
                }
            } else {
                conn = spawnSubprocessConnection(cmd, ws.env);
            }
        }

        // Stream-level chaos: wrap ANY transport in the fault proxy
        // when frame-site actions are scripted. The slot's template
        // is COPIED per connection, so a respawned slot replays its
        // stream faults afresh (exactly like worker-side plans) --
        // bounded by the respawn budget, then fallbackLocal.
        if (!ws.framePlan.empty())
            conn = wrapWithChaosProxy(std::move(conn), ws.framePlan,
                                      &netFaultsFired);

        ws.conn = std::move(conn);
        ws.frames = wire::FrameBuffer();
        ws.frames.maxPayload(kPreHelloPayloadCap);
        ws.state = WorkerSlot::State::Handshake;
        ws.group = -1;
        ws.lastProgress = Clock::now();
        ws.lastPingAt = ws.lastProgress;
        ++stats.workersSpawned;
        return Spawn::Ok;
    };

    for (WorkerSlot &ws : pool)
        trySpawnSlot(ws, Clock::now()); // failures retry in the loop

    std::deque<size_t> pending;
    for (size_t g = 0; g < groups.size(); ++g)
        pending.push_back(g);
    size_t completed = 0;

    // Graceful degradation: evaluate a group in-process, on the same
    // batched engine a worker would use -- identical bits, no fatal.
    std::optional<Explorer> localEx;
    const auto evaluateLocally = [&](size_t g) {
        if (!localEx)
            localEx.emplace(curve);
        Group &grp = groups[g];
        std::vector<DseRequest> reqs;
        reqs.reserve(grp.indices.size());
        for (size_t idx : grp.indices)
            reqs.push_back(points[idx]);
        std::vector<DsePoint> res = localEx->evaluateAll(reqs, 1);
        for (size_t k = 0; k < grp.indices.size(); ++k)
            out[grp.indices[k]] = std::move(res[k]);
        grp.completed = true;
        ++completed;
        ++stats.fallbackGroups;
        stats.fallbackPoints += grp.indices.size();
    };

    // An orphaned group (its last in-flight worker died) re-enters
    // the queue at the FRONT, gated by capped exponential backoff, so
    // a re-dispatched group is never starved by the backlog. Bounded
    // per group; exhaustion degrades to local evaluation (or fatal
    // when the caller opted out).
    const auto requeueOrFallback = [&](size_t g, Clock::time_point now) {
        Group &grp = groups[g];
        if (grp.completed || grp.inFlight > 0)
            return; // a hedge twin still owns it
        if (grp.retries >= opts.maxGroupRetries) {
            if (!opts.fallbackLocal)
                fatal("distributed sweep: group ", g, " failed after ",
                      opts.maxGroupRetries, " re-dispatches");
            evaluateLocally(g);
            return;
        }
        ++grp.retries;
        ++stats.redispatches;
        const int shift = std::min(grp.retries - 1, 20);
        const i64 backoff =
            std::min<i64>(opts.retryBackoffCapMs,
                          static_cast<i64>(opts.retryBackoffMs)
                              << shift);
        grp.eligibleAt = now + milliseconds(backoff);
        pending.push_front(g);
    };

    // Declared dead: terminate (SIGKILL + immediate reap for a local
    // child -- a long sweep must not accumulate zombies; socket close
    // for a remote) and re-queue any in-flight group.
    const auto declareDead = [&](WorkerSlot &ws, bool timedOut) {
        const bool signaled = ws.conn && ws.conn->terminate();
        ws.conn.reset();
        if (signaled)
            ++stats.workersSignaled;
        else
            ++stats.workersExited;
        ++stats.workerDeaths;
        if (timedOut)
            ++stats.timeoutKills;
        if (ws.state == WorkerSlot::State::Handshake)
            ++stats.handshakeFailures;
        const long g = ws.group;
        ws.state = WorkerSlot::State::Dead;
        ws.group = -1;
        if (g >= 0) {
            --groups[static_cast<size_t>(g)].inFlight;
            requeueOrFallback(static_cast<size_t>(g), Clock::now());
        }
    };

    const auto dispatchTo = [&](WorkerSlot &ws, size_t g,
                                Clock::time_point now,
                                bool hedge) -> bool {
        wire::GroupRequest msg;
        msg.curve = curve;
        msg.groupId = g;
        msg.requests.reserve(groups[g].indices.size());
        for (size_t idx : groups[g].indices)
            msg.requests.push_back(points[idx]);
        const std::vector<u8> frame = encodeGroupRequest(msg);
        if (!ws.conn->writeAll(frame.data(), frame.size()))
            return false; // caller declares the worker dead
        ws.state = WorkerSlot::State::Busy;
        ws.group = static_cast<long>(g);
        ws.dispatchedAt = now;
        ws.lastProgress = now; // liveness clock restarts per dispatch
        ++groups[g].inFlight;
        ++stats.dispatches;
        if (hedge) {
            groups[g].hedged = true;
            ++stats.hedges;
        }
        return true;
    };

    std::vector<u8> chunk(1 << 16);
    u64 pingSeq = 0;

    while (completed < groups.size()) {
        Clock::time_point now = Clock::now();

        // (1) Deadlines: kill workers with no frame progress inside
        // their liveness window (handshakes get the floored window),
        // and -- when a hard per-group deadline is set -- workers
        // whose group has been in flight too long even with
        // heartbeats. Silent-but-live workers get a Ping first.
        for (WorkerSlot &ws : pool) {
            if (ws.state == WorkerSlot::State::Handshake) {
                if (msUntil(ws.lastProgress + milliseconds(handshakeMs),
                            now) <= 0)
                    declareDead(ws, true);
                continue;
            }
            if (ws.state == WorkerSlot::State::Dead)
                continue;
            bool expired =
                msUntil(ws.lastProgress + milliseconds(livenessMs),
                        now) <= 0;
            if (ws.state == WorkerSlot::State::Busy &&
                opts.groupDeadlineMs > 0 &&
                msUntil(ws.dispatchedAt +
                            milliseconds(opts.groupDeadlineMs),
                        now) <= 0)
                expired = true;
            if (expired) {
                declareDead(ws, true);
                continue;
            }
            const Clock::time_point lastTouch =
                std::max(ws.lastProgress, ws.lastPingAt);
            if (msUntil(lastTouch + milliseconds(opts.pingIntervalMs),
                        now) <= 0) {
                wire::Ping ping;
                ping.seq = ++pingSeq;
                const std::vector<u8> probe = wire::encodePing(ping);
                if (!ws.conn->writeAll(probe.data(), probe.size())) {
                    declareDead(ws, false);
                    continue;
                }
                ws.lastPingAt = now;
                ++stats.pingsSent;
            }
        }

        // (2) Elastic respawn: keep the pool at full width while the
        // budget lasts and work remains. A slot whose host is
        // quarantined (and no local refill allowed) defers without
        // consuming budget -- the quarantine timer retries it.
        bool spawnDeferred = false;
        for (WorkerSlot &ws : pool) {
            if (completed >= groups.size() || respawnBudget <= 0)
                break;
            if (ws.state != WorkerSlot::State::Dead)
                continue;
            const Spawn got = trySpawnSlot(ws, now);
            if (got == Spawn::Deferred) {
                spawnDeferred = true;
                continue;
            }
            --respawnBudget;
            if (got == Spawn::Ok)
                ++stats.respawns;
        }

        // (3) Pool empty for good: finish the sweep in-process (or
        // fail, preserving the pre-fallback contract). Deferred
        // spawns keep the sweep alive -- a quarantined host may yet
        // come back before the budget runs out.
        const bool anyAlive = std::any_of(
            pool.begin(), pool.end(), [](const WorkerSlot &ws) {
                return ws.state != WorkerSlot::State::Dead;
            });
        if (!anyAlive && !spawnDeferred) {
            if (!opts.fallbackLocal)
                fatal("distributed sweep: all ", n, " workers died (",
                      groups.size() - completed, " groups unfinished)");
            for (size_t g = 0; g < groups.size(); ++g) {
                if (!groups[g].completed)
                    evaluateLocally(g);
            }
            pending.clear();
            break;
        }

        now = Clock::now();

        // (4) Dispatch: hand each idle worker the next
        // backoff-eligible pending group; once the queue is dry,
        // hedge the oldest straggler instead.
        for (WorkerSlot &ws : pool) {
            if (ws.state != WorkerSlot::State::Idle)
                continue;
            size_t g = groups.size();
            for (auto it = pending.begin(); it != pending.end(); ++it) {
                if (msUntil(groups[*it].eligibleAt, now) <= 0) {
                    g = *it;
                    pending.erase(it);
                    break;
                }
            }
            if (g < groups.size()) {
                if (!dispatchTo(ws, g, now, false)) {
                    pending.push_front(g); // never sent: no retry charge
                    declareDead(ws, false);
                }
                continue;
            }
            if (pending.empty() && opts.hedgeAfterMs > 0) {
                WorkerSlot *straggler = nullptr;
                for (WorkerSlot &other : pool) {
                    if (other.state != WorkerSlot::State::Busy)
                        continue;
                    Group &grp = groups[static_cast<size_t>(other.group)];
                    if (grp.completed || grp.hedged ||
                        grp.inFlight != 1)
                        continue;
                    if (msUntil(other.dispatchedAt +
                                    milliseconds(opts.hedgeAfterMs),
                                now) > 0)
                        continue;
                    if (!straggler ||
                        other.dispatchedAt < straggler->dispatchedAt)
                        straggler = &other;
                }
                if (straggler) {
                    const size_t hg =
                        static_cast<size_t>(straggler->group);
                    if (!dispatchTo(ws, hg, now, true))
                        declareDead(ws, false);
                }
            }
        }

        if (completed >= groups.size())
            break;

        // (5) Finite poll timeout from the next deadline: liveness
        // windows, ping due times, retry-backoff gates, hedge
        // eligibility and host-quarantine expiries all wake the loop
        // exactly when they mature.
        i64 timeoutMs = 1000;
        for (const WorkerSlot &ws : pool) {
            switch (ws.state) {
              case WorkerSlot::State::Dead:
                if (ws.hostIdx >= 0 &&
                    !hosts[static_cast<size_t>(ws.hostIdx)].local)
                    timeoutMs = std::min(
                        timeoutMs,
                        msUntil(hosts[static_cast<size_t>(ws.hostIdx)]
                                    .eligibleAt,
                                now));
                break;
              case WorkerSlot::State::Handshake:
                timeoutMs = std::min(
                    timeoutMs,
                    msUntil(ws.lastProgress + milliseconds(handshakeMs),
                            now));
                break;
              case WorkerSlot::State::Idle:
              case WorkerSlot::State::Busy: {
                timeoutMs = std::min(
                    timeoutMs,
                    msUntil(ws.lastProgress + milliseconds(livenessMs),
                            now));
                if (ws.state == WorkerSlot::State::Busy &&
                    opts.groupDeadlineMs > 0)
                    timeoutMs = std::min(
                        timeoutMs,
                        msUntil(ws.dispatchedAt +
                                    milliseconds(opts.groupDeadlineMs),
                                now));
                if (ws.state == WorkerSlot::State::Busy &&
                    opts.hedgeAfterMs > 0)
                    timeoutMs = std::min(
                        timeoutMs,
                        msUntil(ws.dispatchedAt +
                                    milliseconds(opts.hedgeAfterMs),
                                now));
                const Clock::time_point lastTouch =
                    std::max(ws.lastProgress, ws.lastPingAt);
                timeoutMs = std::min(
                    timeoutMs,
                    msUntil(lastTouch +
                                milliseconds(opts.pingIntervalMs),
                            now));
                break;
              }
            }
        }
        for (const size_t g : pending)
            timeoutMs =
                std::min(timeoutMs, msUntil(groups[g].eligibleAt, now));
        timeoutMs = std::clamp<i64>(timeoutMs, 0, 60000);

        std::vector<pollfd> fds;
        std::vector<size_t> fdWorker;
        for (size_t w = 0; w < pool.size(); ++w) {
            if (pool[w].state == WorkerSlot::State::Dead)
                continue;
            fds.push_back({pool[w].conn->pollFd(), POLLIN, 0});
            fdWorker.push_back(w);
        }
        if (fds.empty()) {
            // Everything is dead but a deferred spawn is pending:
            // sleep to the quarantine expiry instead of spinning.
            std::this_thread::sleep_for(
                milliseconds(std::max<i64>(timeoutMs, 1)));
            continue;
        }

        int rc;
        do {
            rc = ::poll(fds.data(), fds.size(),
                        static_cast<int>(timeoutMs));
        } while (rc < 0 && errno == EINTR);
        if (rc < 0)
            fatal("distributed sweep: poll: ", std::strerror(errno));
        if (rc == 0)
            continue; // a deadline matured; top of loop enforces it

        // (6) Drain readable workers. The try block only PARSES: a
        // decode failure poisons the stream, nothing more --
        // declareDead (whose fallback evaluation or fatal must run
        // outside any frame-parsing context) runs strictly after it.
        // A WorkerError frame is a DETERMINISTIC failure a retry
        // cannot fix -> propagate.
        for (size_t f = 0; f < fds.size(); ++f) {
            if (fds[f].revents == 0)
                continue;
            WorkerSlot &ws = pool[fdWorker[f]];
            if (ws.state == WorkerSlot::State::Dead)
                continue; // killed earlier in this drain pass
            const long r =
                ws.conn->readSome(chunk.data(), chunk.size());
            if (r == kReadAgainFd)
                continue; // spurious wakeup: alive, just no data yet
            if (r <= 0) {
                declareDead(ws, false);
                continue;
            }
            now = Clock::now();
            ws.frames.append(chunk.data(), static_cast<size_t>(r));
            ws.lastProgress = now;

            std::optional<std::string> workerError;
            std::optional<std::string> helloReject;
            bool poisoned = false;
            try {
                wire::Frame frame;
                while (!poisoned && !helloReject &&
                       ws.frames.next(frame)) {
                    switch (frame.type) {
                      case wire::FrameType::Hello: {
                        if (ws.state !=
                            WorkerSlot::State::Handshake) {
                            poisoned = true; // duplicate Hello
                            break;
                        }
                        const wire::Hello hello =
                            wire::decodeHello(frame.payload);
                        const std::string reason =
                            helloRejectReason(hello);
                        if (!reason.empty()) {
                            helloReject = reason;
                        } else {
                            ws.state = WorkerSlot::State::Idle;
                            // Admitted: results may be real payloads.
                            ws.frames.maxPayload(wire::kMaxPayload);
                        }
                        break;
                      }
                      case wire::FrameType::Pong:
                        wire::decodePong(frame.payload);
                        ++stats.pongsReceived;
                        break;
                      case wire::FrameType::WorkerError:
                        workerError =
                            wire::decodeWorkerError(frame.payload)
                                .message;
                        break;
                      case wire::FrameType::GroupResult: {
                        wire::GroupResult res =
                            wire::decodeGroupResult(frame.payload);
                        if (ws.state != WorkerSlot::State::Busy ||
                            res.groupId !=
                                static_cast<u64>(ws.group)) {
                            poisoned = true; // result out of protocol
                            break;
                        }
                        Group &grp = groups[res.groupId];
                        if (grp.completed) {
                            // Hedge loser: the twin already won the
                            // race; identical bits, nothing to merge.
                            ++stats.staleResults;
                        } else if (res.points.size() !=
                                   grp.indices.size()) {
                            poisoned = true; // corrupt point count
                            break;
                        } else {
                            for (size_t k = 0; k < grp.indices.size();
                                 ++k)
                                out[grp.indices[k]] =
                                    std::move(res.points[k]);
                            grp.completed = true;
                            ++completed;
                        }
                        --grp.inFlight;
                        ws.state = WorkerSlot::State::Idle;
                        ws.group = -1;
                        break;
                      }
                      case wire::FrameType::GroupRequest:
                      case wire::FrameType::Ping:
                        poisoned = true; // echoed master frame
                        break;
                    }
                    if (workerError)
                        break;
                }
            } catch (const std::exception &) {
                // Any parse failure -- FatalError from the decoders,
                // bad_alloc from a corrupt stream -- poisons the
                // worker; the sweep itself survives via re-dispatch.
                poisoned = true;
            }
            if (workerError)
                fatal("dse worker failed: ", *workerError);
            if (helloReject) {
                std::fprintf(stderr,
                             "distributed sweep: rejecting worker "
                             "(%s): %s\n",
                             ws.conn->describe().c_str(),
                             helloReject->c_str());
                declareDead(ws, false);
                continue;
            }
            if (poisoned)
                declareDead(ws, false);
        }
    }

    for (WorkerSlot &ws : pool) {
        if (!ws.conn) {
            ws.state = WorkerSlot::State::Dead;
            continue;
        }
        switch (ws.state) {
          case WorkerSlot::State::Dead:
            break;
          case WorkerSlot::State::Busy:
          case WorkerSlot::State::Handshake:
            // A hedge loser still chewing on an already-completed
            // group (its result would back up a stream the master
            // will never drain), or a worker that never finished its
            // handshake (possibly hung before Hello): a graceful EOF
            // wait could deadlock on either. Terminate.
            ws.conn->terminate();
            break;
          case WorkerSlot::State::Idle:
            ws.conn->finish(); // EOF -> worker exits its read loop
            break;
        }
        ws.conn.reset();
        ws.state = WorkerSlot::State::Dead;
    }
    stats.networkFaultsInjected +=
        netFaultsFired.load(std::memory_order_relaxed);
    return out;
}

namespace {

/** Serializes all worker->master writes (read loop + heartbeats). */
class WorkerOutput
{
  public:
    explicit WorkerOutput(int fd) : fd_(fd) {}

    bool
    send(const std::vector<u8> &frame)
    {
        std::lock_guard<std::mutex> lock(mu_);
        return writeAllFd(fd_, frame.data(), frame.size());
    }

  private:
    int fd_;
    std::mutex mu_;
};

/**
 * Scoped heartbeat: unsolicited Pong frames every kHeartbeatMs for as
 * long as the object lives. Wrapped around group evaluation (and
 * injected stalls) so the master can tell busy from hung.
 */
class Heartbeat
{
  public:
    explicit Heartbeat(WorkerOutput &out) : out_(out)
    {
        thread_ = std::thread([this] { run(); });
    }

    ~Heartbeat()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            if (cv_.wait_for(lock, milliseconds(kHeartbeatMs),
                             [this] { return stop_; }))
                return;
            lock.unlock();
            wire::Pong beat; // seq 0 = unsolicited
            // A failed write means the master is gone; the read loop
            // will see EOF/EPIPE and exit -- nothing to do here.
            out_.send(wire::encodePong(beat));
            lock.lock();
        }
    }

    WorkerOutput &out_;
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

[[noreturn]] void
hangForever()
{
    // A hung worker: no heartbeats, no EOF, no progress. Only the
    // master's liveness deadline (SIGKILL) ends this.
    for (;;)
        std::this_thread::sleep_for(std::chrono::hours(1));
}

/** Execute a Kill/Hang/Garbage/Stall action at its trigger point. */
void
runWorkerFault(const FaultAction &fa, WorkerOutput &out)
{
    switch (fa.kind) {
      case FaultAction::Kind::Kill:
        ::raise(SIGKILL);
        break;
      case FaultAction::Kind::Hang:
        hangForever();
      case FaultAction::Kind::Garbage: {
        // Junk that can never parse as a frame header: poisons the
        // master-side stream, which must drop us, not crash.
        const std::vector<u8> junk(32, 0xA5);
        out.send(junk);
        break;
      }
      case FaultAction::Kind::Stall: {
        // A straggler, not a corpse: heartbeats keep flowing, so only
        // a hard group deadline or hedging reacts to this.
        Heartbeat beat(out);
        std::this_thread::sleep_for(milliseconds(fa.stallMs));
        break;
      }
      case FaultAction::Kind::BadHelloVersion:
      case FaultAction::Kind::BadHelloHash:
        break; // hello-site only; meaningless elsewhere
      case FaultAction::Kind::Drop:
      case FaultAction::Kind::Truncate:
      case FaultAction::Kind::Delay:
      case FaultAction::Kind::Refuse:
        break; // network kinds: the master-side proxy runs these
    }
}

} // namespace

int
runDseWorker(int inFd, int outFd)
{
    // A master that died mid-sweep must surface as a failed write
    // (-> clean worker exit), not as a fatal SIGPIPE.
    ignoreSigpipe();
    const char *faultSpec = std::getenv(kFaultPlanEnv);
    // keep(false): network-kind terms in a shared spec belong to the
    // master-side chaos proxy, not to us.
    FaultPlan plan =
        FaultPlan::parse(faultSpec ? faultSpec : "").keep(false);
    WorkerOutput out(outFd);

    // Handshake: always the first frame on the stream.
    {
        wire::Hello hello;
        hello.version = wire::kProtocolVersion;
        hello.catalogHash = catalogHash();
        if (FaultAction *fa = plan.fire(FaultAction::Site::Hello, 0)) {
            if (fa->kind == FaultAction::Kind::BadHelloVersion)
                hello.version += 1000;
            else if (fa->kind == FaultAction::Kind::BadHelloHash)
                hello.catalogHash ^= 0x1;
            else
                runWorkerFault(*fa, out);
        }
        if (!out.send(wire::encodeHello(hello)))
            return 1;
    }

    wire::FrameBuffer frames;
    std::vector<u8> chunk(1 << 16);
    u64 currentGroup = 0;
    int framesSeen = 0;
    int groupsSeen = 0;
    try {
        for (;;) {
            const long r = readSomeFd(inFd, chunk.data(), chunk.size());
            if (r == 0)
                return 0; // clean shutdown: master closed our stream
            if (r == kReadAgainFd) {
                // Nonblocking fd with nothing buffered: wait for
                // data instead of treating the lull as an error.
                pollfd pfd = {inFd, POLLIN, 0};
                (void)::poll(&pfd, 1, -1);
                continue;
            }
            if (r < 0)
                fatal("dse worker: read: ", std::strerror(errno));
            frames.append(chunk.data(), static_cast<size_t>(r));

            wire::Frame frame;
            while (frames.next(frame)) {
                if (FaultAction *fa =
                        plan.fire(FaultAction::Site::Frame, framesSeen))
                    runWorkerFault(*fa, out);
                ++framesSeen;

                if (frame.type == wire::FrameType::Ping) {
                    wire::Pong pong;
                    pong.seq = wire::decodePing(frame.payload).seq;
                    if (!out.send(wire::encodePong(pong)))
                        return 1; // master is gone
                    continue;
                }
                if (frame.type != wire::FrameType::GroupRequest)
                    fatal("dse worker: unexpected frame type ",
                          static_cast<int>(frame.type));
                const wire::GroupRequest req =
                    wire::decodeGroupRequest(frame.payload);
                currentGroup = req.groupId;
                if (FaultAction *fa = plan.fire(
                        FaultAction::Site::Group, groupsSeen)) {
                    ++groupsSeen;
                    runWorkerFault(*fa, out);
                    if (fa->kind == FaultAction::Kind::Garbage)
                        continue; // junk instead of the result
                } else {
                    ++groupsSeen;
                }

                wire::GroupResult res;
                res.groupId = req.groupId;
                {
                    // Heartbeats cover the expensive part (curve
                    // setup + trace + batched evaluation), so a
                    // legitimately slow group never reads as hung.
                    Heartbeat beat(out);
                    Explorer ex(req.curve);
                    // Serial per group: process-level parallelism
                    // comes from N workers; identical results either
                    // way.
                    res.points = ex.evaluateAll(req.requests, 1);
                }
                if (!out.send(wire::encodeGroupResult(res)))
                    return 1; // master is gone
            }
        }
    } catch (const FatalError &e) {
        // Deterministic configuration error (unknown curve, bad
        // options): report it so the master aborts instead of
        // burning retries on a group that can never succeed.
        wire::WorkerError err;
        err.groupId = currentGroup;
        err.message = e.what();
        out.send(wire::encodeWorkerError(err));
        return 1;
    } catch (const std::exception &e) {
        // Possibly-transient failure (bad_alloc under memory
        // pressure, internal panic): exit WITHOUT a WorkerError
        // frame -- the master sees EOF and re-dispatches the group
        // to a live worker, which may well succeed.
        std::fprintf(stderr, "dse worker: %s\n", e.what());
        return 1;
    }
}

int
runDseWorkerListen(const std::string &listenSpec, int maxAccepts)
{
    ignoreSigpipe();
    const HostPort at = parseHostPort(listenSpec);
    std::string err;
    int boundPort = 0;
    // Backlog > 1: a second master can queue while one is served; it
    // waits for this worker's Hello until its handshake window runs
    // out, then quarantines us -- better than a refused connect.
    const int listenFd = tcpListen(at, 4, &err, &boundPort);
    if (listenFd < 0) {
        std::fprintf(stderr, "dse-worker: %s\n", err.c_str());
        return 1;
    }
    HostPort bound = at;
    bound.port = boundPort;
    // The banner is the port-discovery contract: with --listen=H:0
    // the caller learns the ephemeral port from stdout.
    std::printf("dse-worker listening on %s\n",
                bound.describe().c_str());
    std::fflush(stdout);

    for (int served = 0; maxAccepts < 0 || served < maxAccepts;
         ++served) {
        const int fd = tcpAccept(listenFd, -1, &err);
        if (fd < 0) {
            std::fprintf(stderr, "dse-worker: accept: %s\n",
                         err.c_str());
            ::close(listenFd);
            return 1;
        }
        // Serve this master to completion. Its disconnect -- clean
        // EOF or abandonment -- ends runDseWorker (a failed session
        // is not fatal to the server) and we RE-LISTEN for the next
        // master with a fresh fault-plan parse.
        runDseWorker(fd, fd);
        ::close(fd);
    }
    ::close(listenFd);
    return 0;
}

int
runDseWorkerConnect(const std::string &connectSpec)
{
    ignoreSigpipe();
    std::string err;
    const int fd =
        tcpConnect(parseHostPort(connectSpec), kDefaultLivenessMs,
                   &err);
    if (fd < 0) {
        std::fprintf(stderr, "dse-worker: %s\n", err.c_str());
        return 1;
    }
    const int rc = runDseWorker(fd, fd);
    ::close(fd);
    return rc;
}

std::optional<int>
maybeRunDseWorkerMain(int argc, char **argv)
{
    if (argc < 2 || std::strcmp(argv[1], "dse-worker") != 0)
        return std::nullopt;
    std::string listen, connect;
    int maxAccepts = -1;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--listen=", 0) == 0) {
            listen = arg.substr(9);
        } else if (arg.rfind("--connect=", 0) == 0) {
            connect = arg.substr(10);
        } else if (arg.rfind("--max-accepts=", 0) == 0) {
            char *end = nullptr;
            const long v = std::strtol(arg.c_str() + 14, &end, 10);
            if (*end != '\0' || v < 1) {
                std::fprintf(stderr,
                             "dse-worker: bad --max-accepts '%s'\n",
                             arg.c_str() + 14);
                return 2;
            }
            maxAccepts = static_cast<int>(v);
        } else {
            std::fprintf(stderr, "dse-worker: unknown flag '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (!listen.empty() && !connect.empty()) {
        std::fprintf(
            stderr,
            "dse-worker: --listen and --connect are exclusive\n");
        return 2;
    }
    if (!listen.empty())
        return runDseWorkerListen(listen, maxAccepts);
    if (!connect.empty())
        return runDseWorkerConnect(connect);
    return runDseWorker();
}

} // namespace finesse
