/**
 * @file
 * Design-space exploration (Sec. 3.6). The design space is the cross
 * product of operator-variant combinations and hardware pipeline
 * models; the co-design loop evaluates each point with the compiler +
 * cycle simulator (cycle counts) and the area/timing models (silicon
 * feedback), exactly the feedback structure of the paper, with the
 * analytic models substituting for EDA runs.
 */
#ifndef FINESSE_DSE_EXPLORER_H_
#define FINESSE_DSE_EXPLORER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/framework.h"

namespace finesse {

struct DistributorOptions; // dse/distributor.h

/** One evaluated point of the design space. */
struct DsePoint
{
    std::string label;
    VariantConfig variants;
    PipelineModel hw;
    int cores = 1;

    // Compiler/simulator feedback.
    size_t instrs = 0;
    size_t mulInstrs = 0;
    size_t linInstrs = 0;
    i64 cycles = 0;
    double ipc = 0;

    // Area/timing feedback.
    double areaMm2 = 0;
    double freqMHz = 0;
    double criticalPathNs = 0;

    // Derived metrics.
    double latencyUs = 0;
    double throughputOps = 0;  ///< pairings per second (all cores)
    double thptPerArea = 0;    ///< ops / s / mm^2

    double compileSeconds = 0;

    // Per-pass compiler attribution (Table 7 per-optimization rows).
    OptStats opt;
};

/** Objective helpers for exploration. */
enum class Objective { MinCycles, MaxThroughput, MaxThptPerArea, MinArea };

/** One design point to evaluate (input side of evaluateAll). */
struct DseRequest
{
    CompileOptions opt;
    int cores = 1;
    std::string label;
};

/**
 * True when the batched engine can group @p opt by trace key: the
 * standard backend stage pipeline with the trace cache enabled.
 * Anything else (stage ablations, --no-trace-cache) takes the legacy
 * per-point compile path, which honors every option. The ONE
 * definition shared by Explorer::evaluateAll and the multi-process
 * distributor -- master-side grouping must never diverge from
 * worker-side evaluation.
 */
bool batchableRequest(const CompileOptions &opt);

/**
 * Request indices bucketed for batched evaluation: batchable requests
 * grouped by front-end trace key (groups in first-appearance order,
 * indices ascending), non-batchable leftovers listed separately. The
 * ONE grouping definition shared by Explorer::evaluateAll and the
 * multi-process distributor -- a grouping change that reached only
 * one of them would silently break the bit-identity contract. The
 * curve handle is resolved lazily: a request list with no batchable
 * entry never validates the curve (the distributor defers that to
 * its workers).
 */
struct GroupedRequests
{
    std::vector<std::vector<size_t>> byKey;
    std::vector<size_t> ungrouped;
};
GroupedRequests groupByTraceKey(const std::string &curve,
                                const std::vector<DseRequest> &points);

/** Explorer: evaluates and exhaustively searches design points. */
class Explorer
{
  public:
    explicit Explorer(const std::string &curveName)
        : fw_(curveName), curve_(curveName)
    {}

    const Framework &framework() const { return fw_; }

    /**
     * Compile + simulate + model one design point. The front end goes
     * through the process-wide trace cache and the backend runs on the
     * batched engine against the shared (un-cloned) cached trace, so a
     * sweep that varies only the hardware model re-runs just the
     * backend stages and never deep-copies the trace module.
     */
    DsePoint evaluate(const CompileOptions &opt, int cores,
                      const std::string &label) const;

    /**
     * Evaluate many design points concurrently on @p jobs worker
     * threads (0 = hardware concurrency, 1 = serial inline). Requests
     * are grouped by front-end trace key: each group's trace is
     * obtained (cached, shared, un-cloned) and prepped exactly once,
     * then every worker evaluates points against the shared immutable
     * (TracePrep, module) with its own reusable BackendScratch.
     * Results come back index-aligned with @p points, and every point
     * is evaluated by the same deterministic, RNG-free computation as
     * evaluate(), so the output is identical for any jobs value --
     * only wall-clock time changes.
     */
    std::vector<DsePoint> evaluateAll(const std::vector<DseRequest> &points,
                                      int jobs = 0) const;

    /**
     * Evaluate many design points on @p workers worker SUBPROCESSES
     * (the multi-process fan-out, dse/distributor.h): trace-key
     * groups are shipped whole to workers over the wire protocol, so
     * the per-trace prep amortizes remotely exactly as it does on a
     * local worker thread. Bit-identical to evaluateAll on the same
     * requests for any worker count, including when a worker crashes
     * mid-group (the group is re-dispatched to a live worker).
     */
    std::vector<DsePoint>
    evaluateAllDistributed(const std::vector<DseRequest> &points,
                           int workers) const;

    /** As above with explicit distributor knobs (tests/benches). */
    std::vector<DsePoint>
    evaluateAllDistributed(const std::vector<DseRequest> &points,
                           int workers,
                           const DistributorOptions &opts) const;

    /**
     * Reference oracle for the grouped engine: the pre-batching
     * per-point path (every point independently clones the cached
     * trace and runs the full backend PassManager). Deterministic
     * fields must match evaluateAll exactly; tests and benches
     * enforce this.
     */
    std::vector<DsePoint>
    evaluateAllUngrouped(const std::vector<DseRequest> &points,
                         int jobs = 0) const;

    /**
     * Evaluate a hardware model against an already-traced module
     * (reuses the front end across a hardware sweep). Runs the
     * batched backend engine against @p m by const reference -- no
     * module copy.
     */
    DsePoint evaluateModule(const Module &m, const PipelineModel &hw,
                            int cores, const std::string &label) const;

    /**
     * Exhaustive operator-variant space for this curve's tower
     * (Table 5): mul in {Schoolbook, Karatsuba} and the applicable
     * squaring variants per level. @p mulOnly restricts to
     * multiplication variants (squarings fixed at defaults).
     */
    std::vector<VariantConfig> variantSpace(bool mulOnly) const;

    /** All-Karatsuba / all-Schoolbook / manually-tuned presets. */
    VariantConfig allKaratsuba() const;
    VariantConfig allSchoolbook() const;
    /** Heuristic tuned for single-issue pipelines (Fig. 10 "Manual"). */
    VariantConfig manualHeuristic() const;

    /**
     * Exhaustive search over variant combinations for a fixed hardware
     * model; returns the best point under @p objective (co-design
     * inner loop).
     */
    DsePoint exploreVariants(const PipelineModel &hw, Objective objective,
                             bool mulOnly = true) const;

    /**
     * As above, but every evaluated point inherits @p base (pass
     * pipeline, trace-cache flag, part, ...); only the variants are
     * swept. `base.jobs` selects the sweep parallelism; the winner is
     * chosen by a stable index-ordered reduction (ties break toward
     * the earlier variant combination), so the result is identical
     * for every jobs value.
     */
    DsePoint exploreVariants(const CompileOptions &base,
                             Objective objective,
                             bool mulOnly = true) const;

    /**
     * As above with explicit distributor knobs for the
     * `base.dseWorkers > 0` path (retry/liveness/hedging/fallback
     * policy plus a DistributorStats sink -- finesse_cli uses this to
     * print fault-tolerance counters after a distributed sweep).
     * Ignored by the in-process path.
     */
    DsePoint exploreVariants(const CompileOptions &base,
                             Objective objective, bool mulOnly,
                             const DistributorOptions &dopts) const;

    /** Tower extension degrees of this curve (e.g. {2, 6, 12}). */
    std::vector<int> towerDegrees() const;

    static double score(const DsePoint &p, Objective objective);

  private:
    DsePoint evaluateLegacy(const CompileOptions &opt, int cores,
                            const std::string &label) const;

    Framework fw_;
    std::string curve_;
};

/**
 * Standard hardware-model sweep of Fig. 10: single-issue deep pipeline
 * plus progressively wider shallow-pipeline VLIW models.
 */
std::vector<PipelineModel> fig10HardwareModels();

} // namespace finesse

#endif // FINESSE_DSE_EXPLORER_H_
