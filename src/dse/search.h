/**
 * @file
 * Seeded Pareto-frontier search over the hardware/variant design
 * space -- the replacement for exhaustive grid enumeration in the
 * co-design loop (Sec. 3.6 scaled up: the paper's grid is 55 points;
 * the genome space here is several million).
 *
 * The search is a generational genetic/annealing loop. A Genome pins
 * one point of the space: issue ports x memory banks x writeback FIFO
 * depth x pipeline depth (long/short latency) x linear units x core
 * count x the per-tower-level multiplication mask and squaring
 * selector. Each
 * generation materializes its genomes as `DseRequest`s and dispatches
 * ONE batch through the existing choke points --
 * `Explorer::evaluateAll` (threads) or `evaluateAllDistributed`
 * (worker subprocesses) -- so trace-key grouping, the batched backend
 * engine, and the socket fan-out all apply unchanged. Evaluated
 * points feed a 2-D Pareto archive (maximize throughput, minimize
 * area); parent selection is tournament by the scalar objective with
 * an annealed mutation radius.
 *
 * Determinism contract (extends the sweep contract): a fixed
 * SearchOptions::seed yields a BIT-identical frontier for any
 * jobs/dseWorkers count, cold or warm artifact cache. This holds
 * because (a) per-point evaluation is bit-identical across every
 * dispatch path and across cache round trips (raw-bit codecs), and
 * (b) every search decision -- selection, dominance, ordering --
 * reads only deterministic point fields (never wall-clock fields) and
 * breaks ties canonically. `frontierFingerprint` hashes exactly the
 * deterministic fields so tests and benches can assert the contract
 * cheaply.
 *
 * When the process-wide artifact cache (support/diskcache.h) is
 * enabled, per-point backend results are cached content-addressed
 * (key: trace key + hardware model + cores + backend pipeline +
 * build/catalog fingerprint; payload: the wire codec's DsePoint
 * encoding) and a warm re-search skips both the frontend traces and
 * the backend evaluations it has seen before.
 */
#ifndef FINESSE_DSE_SEARCH_H_
#define FINESSE_DSE_SEARCH_H_

#include <map>
#include <string>
#include <vector>

#include "dse/distributor.h"
#include "dse/explorer.h"

namespace finesse {

/** Candidate values per genome dimension (deterministic orderings). */
struct SearchSpace
{
    std::vector<int> longLat;
    std::vector<int> shortLat;
    std::vector<int> issueWidth;
    std::vector<int> numLinUnits;
    std::vector<int> numBanks;
    std::vector<int> fifoDepth;
    std::vector<int> cores;
    std::vector<int> mulLevels; ///< tower degrees with a mul choice

    /**
     * Number of squaring decompositions per mulLevels entry: 3 for
     * cubic levels (Schoolbook/CHSqr3/CHSqr2), 2 for quadratic
     * (Schoolbook/Complex). Backfilled from the curve's tower by the
     * ParetoSearch constructor when left empty.
     */
    std::vector<u8> sqrOptions;

    /**
     * The standard space for @p ex's curve: pipeline bounds around
     * hwmodel/pipeline.h defaults, a superset of the Fig. 10 grid
     * models (every grid point is reachable, so a seeded search can
     * never be dominated by the grid it replaces).
     */
    static SearchSpace standard(const Explorer &ex);

    /** Upper bound on distinct genomes (pre-repair). */
    u64 combinations() const;
};

/** One point of the search space; the unit of evolution. */
struct Genome
{
    int longLat = 38;
    int shortLat = 8;
    int issueWidth = 1;
    int numLinUnits = 1;
    int numBanks = 1;
    int fifoDepth = 8;
    int cores = 1;
    u32 mulMask = 0; ///< bit i: Karatsuba at mulLevels[i]

    /**
     * Squaring selector, 2 bits per mulLevels entry: 0 = Schoolbook,
     * 1 = the fast decomposition (Complex on quadratic levels, CHSqr3
     * on cubic), 2 = CHSqr2 (cubic levels only; repaired to 1
     * elsewhere). Defaults to "fast everywhere", the same choice the
     * exhaustive mul-only grid makes.
     */
    u32 sqrSel = 0x55;

    bool operator==(const Genome &) const = default;

    /** Canonical key; doubles as the DsePoint label. */
    std::string key() const;
};

/** Knobs of one search run. */
struct SearchOptions
{
    u64 seed = 1;
    int generations = 8;
    int population = 32;
    Objective objective = Objective::MaxThptPerArea;

    /**
     * Base compile options for every materialized request (part, pass
     * pipeline, trace-cache flag, jobs, dseWorkers). `variants` and
     * `hw` are overwritten per genome; jobs/dseWorkers pick the
     * dispatch path exactly as they do for Explorer sweeps.
     */
    CompileOptions base;

    /** Distributor knobs for the dseWorkers > 0 path. */
    DistributorOptions dopts;

    /**
     * Seed generation 0 with the full Fig. 10 grid (every variant
     * combination x every grid hardware model): the searched frontier
     * then dominates-or-matches the exhaustive grid frontier by
     * construction after one generation, and the remaining
     * generations explore the 10^4x larger space beyond it.
     */
    bool seedGridCorners = true;
};

/** Per-generation progress counters. */
struct SearchGeneration
{
    size_t requested = 0; ///< new unique genomes this generation
    size_t cachedPoints = 0; ///< served by the artifact cache
    size_t archiveSize = 0;  ///< frontier size after the generation
};

struct SearchStats
{
    size_t evaluatedUnique = 0; ///< distinct design points evaluated
    size_t pointCacheHits = 0;
    size_t pointCachePuts = 0;
    u64 spaceSize = 0;
    std::vector<SearchGeneration> generations;
};

struct SearchResult
{
    /** Pareto frontier, canonical order (area ascending). */
    std::vector<DsePoint> frontier;
    std::vector<Genome> frontierGenomes; ///< parallel to frontier
    DsePoint best; ///< scalar-objective winner over all evaluated
    SearchStats stats;
};

/** The seeded genetic/annealing Pareto search. */
class ParetoSearch
{
  public:
    ParetoSearch(const Explorer &ex, SearchSpace space,
                 SearchOptions opt);

    SearchResult run();

  private:
    struct Evaluated
    {
        Genome genome;
        DsePoint point;
    };

    DseRequest materialize(const Genome &g) const;
    void repair(Genome &g) const;
    Genome randomGenome(Rng &rng) const;
    Genome mutate(Genome g, Rng &rng, int radius) const;
    Genome crossover(const Genome &a, const Genome &b, Rng &rng) const;
    const Evaluated &tournament(Rng &rng) const;
    std::vector<Genome> initialPopulation(Rng &rng) const;
    std::vector<DsePoint> evaluateBatch(const std::vector<Genome> &gs);
    void updateArchive(const Genome &g, const DsePoint &p);

    const Explorer &ex_;
    SearchSpace space_;
    SearchOptions opt_;
    std::map<std::string, Evaluated> evaluated_; ///< by genome key
    std::vector<std::string> evalOrder_; ///< insertion-ordered keys
    std::vector<Evaluated> archive_;     ///< current Pareto set
    SearchStats stats_;
};

// Frontier helpers, shared by the search, benches and tests ----------

/** a weakly dominates b on (throughput up, area down). */
bool weaklyDominates(const DsePoint &a, const DsePoint &b);

/** Pareto frontier of @p pts in canonical order (area ascending). */
std::vector<DsePoint> paretoFrontier(std::vector<DsePoint> pts);

/** Every point of @p reference weakly dominated by some frontier pt. */
bool frontierCovers(const std::vector<DsePoint> &frontier,
                    const std::vector<DsePoint> &reference);

/**
 * FNV-1a over the deterministic fields of every frontier point
 * (label, variants, hardware model, cores, instruction counts,
 * cycles, and the raw IEEE-754 bits of the derived metrics).
 * Wall-clock fields (compileSeconds, pass seconds) are excluded: the
 * bit-identity contract is about results, not about how long they
 * took or which cache served them.
 */
u64 frontierFingerprint(const std::vector<DsePoint> &frontier);

} // namespace finesse

#endif // FINESSE_DSE_SEARCH_H_
