/**
 * @file
 * Multi-process DSE fan-out: a master that ships trace-key groups of
 * design points to worker subprocesses over pipes (Pando-style
 * coordinator/volunteer split) and a worker loop that evaluates the
 * groups on the in-process batched engine.
 *
 * Dispatch unit = one trace-key group (the PR 4 batching contract):
 * a worker receiving a group traces its key once through its own
 * process-wide cache and runs batched backend-only evaluation for
 * every point, so the per-trace prep amortizes remotely exactly as it
 * does on a local worker thread.
 *
 * Determinism contract: results are merged index-ordered into the
 * caller's request order, every point is computed by the same
 * deterministic code path as Explorer::evaluateAll, and all numeric
 * fields cross the wire as raw bit patterns -- the distributed sweep
 * is BIT-identical to the in-process one for any worker count,
 * including under worker crashes (a crashed worker's in-flight group
 * is re-dispatched to a live worker, bounded retries, then error).
 */
#ifndef FINESSE_DSE_DISTRIBUTOR_H_
#define FINESSE_DSE_DISTRIBUTOR_H_

#include <optional>
#include <string>
#include <vector>

#include "dse/explorer.h"

namespace finesse {

/** Observability counters of one distributed sweep (tests assert on
 *  the crash/re-dispatch path through these). */
struct DistributorStats
{
    int workersSpawned = 0;
    int workerDeaths = 0;  ///< EOF/decode failure before group result
    int redispatches = 0;  ///< in-flight groups re-queued after a death
    size_t groups = 0;     ///< trace-key groups dispatched
};

/** Knobs of the distributed sweep (defaults are production behavior). */
struct DistributorOptions
{
    /**
     * Worker command line; empty means re-exec the current binary as
     * `<self> dse-worker` (see maybeRunDseWorkerMain). Override to
     * point at another evaluator binary that speaks the wire protocol.
     */
    std::vector<std::string> workerCommand;

    /** Re-dispatches allowed per group after worker deaths. */
    int maxGroupRetries = 2;

    /** Collects counters when non-null. */
    DistributorStats *stats = nullptr;

    // Fault-injection hooks (tests only): the selected workers are
    // spawned with FINESSE_DSE_KILL9=1 in their environment and
    // SIGKILL themselves on receipt of their first group -- a genuine
    // `kill -9` mid-group, after the master committed the dispatch.
    int killWorkerIndex = -1; ///< -1 = none
    bool killAllWorkers = false;
};

/**
 * Evaluate @p points for @p curve on @p workers subprocesses; the
 * result vector is index-aligned with @p points and bit-identical to
 * Explorer::evaluateAll on the same requests. Throws FatalError when
 * a group exhausts its retries, when every worker is dead, or when a
 * worker reports a deterministic error (which a retry cannot fix).
 */
std::vector<DsePoint>
distributeEvaluate(const std::string &curve,
                   const std::vector<DseRequest> &points, int workers,
                   const DistributorOptions &opts = {});

/**
 * Worker loop: read GroupRequest frames from @p inFd until EOF,
 * evaluate each group via Explorer::evaluateAll (serial: process-level
 * parallelism comes from running N workers), stream GroupResult
 * frames to @p outFd. Returns the process exit code (0 on clean EOF).
 */
int runDseWorker(int inFd = 0, int outFd = 1);

/**
 * Re-exec shim for binaries that act as their own worker pool: call
 * first thing in main(); when argv[1] == "dse-worker" this runs the
 * worker loop and returns its exit code to pass to return/exit,
 * std::nullopt otherwise. finesse_cli, the distributed tests and the
 * fig10 bench all dispatch through this, so the default
 * DistributorOptions::workerCommand (self re-exec) always works.
 */
std::optional<int> maybeRunDseWorkerMain(int argc, char **argv);

} // namespace finesse

#endif // FINESSE_DSE_DISTRIBUTOR_H_
