/**
 * @file
 * Multi-process DSE fan-out: a master that ships trace-key groups of
 * design points to worker subprocesses over pipes (Pando-style
 * coordinator/volunteer split) and a worker loop that evaluates the
 * groups on the in-process batched engine.
 *
 * Dispatch unit = one trace-key group (the PR 4 batching contract):
 * a worker receiving a group traces its key once through its own
 * process-wide cache and runs batched backend-only evaluation for
 * every point, so the per-trace prep amortizes remotely exactly as it
 * does on a local worker thread.
 *
 * Fault tolerance (PR 7): every worker opens with a Hello handshake
 * (protocol version + curve-catalog hash; mismatched builds are
 * rejected before any dispatch), sends heartbeat Pongs while
 * evaluating, and answers master Pings. The master's poll() loop runs
 * on finite timeouts computed from the next liveness/group deadline;
 * a worker with no frame progress by its deadline is SIGKILLed and
 * reaped, its group re-queued under a per-group retry budget with
 * capped exponential backoff. Dead workers are respawned up to a
 * respawn budget; stragglers can be hedged (the same group
 * re-dispatched to an idle worker, first result wins -- safe because
 * results are bit-identical); and when retries or the pool run out,
 * fallbackLocal evaluates the remaining groups in-process instead of
 * failing the sweep.
 *
 * Determinism contract: results are merged index-ordered into the
 * caller's request order, every point is computed by the same
 * deterministic code path as Explorer::evaluateAll, and all numeric
 * fields cross the wire as raw bit patterns -- the distributed sweep
 * is BIT-identical to the in-process one for any worker count and any
 * survivable fault plan (crashes, hangs, stream corruption, handshake
 * rejects), because re-dispatch, hedging and local fallback all rerun
 * the identical computation.
 */
#ifndef FINESSE_DSE_DISTRIBUTOR_H_
#define FINESSE_DSE_DISTRIBUTOR_H_

#include <optional>
#include <string>
#include <vector>

#include "dse/explorer.h"
#include "dse/wire.h"

namespace finesse {

/** Observability counters of one distributed sweep (tests assert on
 *  the crash/timeout/re-dispatch paths through these). */
struct DistributorStats
{
    int workersSpawned = 0; ///< initial spawns + respawns
    int workerDeaths = 0;   ///< EOF / decode failure / deadline kill
    int redispatches = 0;   ///< groups re-queued after a death
    size_t groups = 0;      ///< trace-key groups in the sweep

    int dispatches = 0;         ///< group dispatches (incl. re/hedge)
    int timeoutKills = 0;       ///< deaths caused by a missed deadline
    int handshakeFailures = 0;  ///< workers rejected at/before Hello
    int respawns = 0;           ///< replacement workers spawned
    int hedges = 0;             ///< speculative duplicate dispatches
    int staleResults = 0;       ///< hedge-loser results discarded
    int workersExited = 0;      ///< reaped deaths: normal exit
    int workersSignaled = 0;    ///< reaped deaths: killed by signal
    int fallbackGroups = 0;     ///< groups evaluated in-process
    size_t fallbackPoints = 0;  ///< points evaluated in-process
    int pingsSent = 0;          ///< liveness probes sent
    int pongsReceived = 0;      ///< probe replies + heartbeats

    int remoteConnects = 0;        ///< TCP worker connects that succeeded
    int remoteConnectFailures = 0; ///< refused/timed-out/unreachable
    int hostQuarantines = 0;       ///< hosts benched after a failure
    int remoteDegraded = 0;        ///< remote slots refilled locally
    int networkFaultsInjected = 0; ///< chaos-proxy faults that fired

    /** One-line human-readable rendering (finesse_cli dse). */
    std::string describe() const;
};

/**
 * How master and workers exchange frames. The fault-tolerance layer
 * is transport-agnostic (frames over fds); this only picks which fds.
 */
enum class DseTransport {
    Default,     ///< FINESSE_DSE_TRANSPORT env, falling back to Pipe
    Pipe,        ///< fork/exec children over stdin/stdout pipes
    LoopbackTcp, ///< fork/exec children over a 127.0.0.1 TCP socket
};

/** Resolve Default against FINESSE_DSE_TRANSPORT ("pipe" /
 *  "loopback-tcp"; unset = Pipe, anything else is fatal -- a typo'd
 *  transport must not silently fall back). */
DseTransport resolveDseTransport(DseTransport requested);

/** Env var naming the default transport (see resolveDseTransport). */
constexpr const char *kTransportEnv = "FINESSE_DSE_TRANSPORT";

/** Env var holding the default remote host pool: comma-separated
 *  host:port entries; the token "local" pins a local slot. */
constexpr const char *kHostsEnv = "FINESSE_DSE_HOSTS";

/** Knobs of the distributed sweep (defaults are production behavior). */
struct DistributorOptions
{
    /**
     * Worker command line; empty means re-exec the current binary as
     * `<self> dse-worker` (see maybeRunDseWorkerMain). Override to
     * point at another evaluator binary that speaks the wire protocol.
     */
    std::vector<std::string> workerCommand;

    /** Re-dispatches allowed per group after worker deaths. */
    int maxGroupRetries = 2;

    /** Collects counters when non-null. */
    DistributorStats *stats = nullptr;

    /**
     * Kill a worker with no frame progress (results, heartbeats, ping
     * replies all count) for this long. 0 = read FINESSE_DSE_LIVENESS_MS
     * from the environment, defaulting to 10000. Handshakes get
     * max(this, 5000) so sanitizer-slowed exec never trips it.
     */
    int livenessTimeoutMs = 0;

    /**
     * Hard per-dispatch deadline: kill the worker when one group has
     * been in flight this long even if heartbeats still arrive
     * (catches live-but-stuck workers). 0 = disabled.
     */
    int groupDeadlineMs = 0;

    /** Ping a silent non-dead worker after this long. */
    int pingIntervalMs = 1000;

    /**
     * Straggler hedging: once the pending queue is empty, a group in
     * flight this long is speculatively re-dispatched to an idle
     * worker; the first result wins, the loser is discarded as stale.
     * 0 = disabled.
     */
    int hedgeAfterMs = 5000;

    /** Exponential re-dispatch backoff: base delay, doubling per
     *  retry, capped. */
    int retryBackoffMs = 50;
    int retryBackoffCapMs = 2000;

    /** Replacement workers allowed after deaths; -1 = 2x pool width. */
    int maxRespawns = -1;

    /**
     * Graceful degradation: when a group exhausts its retries or the
     * pool empties with no respawn budget left, evaluate the
     * remaining groups in-process via Explorer::evaluateAll (same
     * bits) instead of failing the sweep. When false those paths
     * throw FatalError as before.
     */
    bool fallbackLocal = true;

    /** Extra "KEY=VALUE" environment entries for every worker. */
    std::vector<std::string> workerEnv;

    /** Transport for locally spawned workers (Default = env / pipe). */
    DseTransport transport = DseTransport::Default;

    /**
     * Remote worker pool: "host:port" entries naming running
     * `dse-worker --listen` peers, or the token "local" pinning a
     * local slot (mixed pools). Empty = FINESSE_DSE_HOSTS env; both
     * empty = all-local pool. Slot w uses hosts[w % size]. A failed
     * connect quarantines its host (capped exponential backoff before
     * the next attempt) and -- with remoteDegradeToLocal -- refills
     * the slot with a local worker, so losing every remote degrades
     * to the all-local path instead of failing the sweep.
     */
    std::vector<std::string> hosts;

    /** Hard deadline per remote connect / loopback accept; 0 = the
     *  handshake window (max(liveness, 5000ms)). */
    int connectTimeoutMs = 0;

    /** Refill a quarantined remote slot with a local worker. False =
     *  the slot stays empty until its host leaves quarantine. */
    bool remoteDegradeToLocal = true;

    /**
     * Chaos injection (tests): per-slot FINESSE_DSE_FAULT plans,
     * assigned round-robin (slot w gets plans[w % size]). When
     * non-empty EVERY slot gets an explicit assignment -- an empty
     * string pins the slot fault-free, shielding it from any ambient
     * FINESSE_DSE_FAULT in the test environment. A respawned slot
     * reuses its slot's plan.
     */
    std::vector<std::string> workerFaultPlans;

    /**
     * Network chaos (tests): per-slot fault plans executed by a
     * MASTER-SIDE proxy thread interposed on the slot's connection
     * (any transport), round-robin like workerFaultPlans. Network
     * actions -- drop | trunc | delay_ms=<N> | garbage at frame:<N>
     * sites (worker->master frame ordinal), refuse at the connect
     * site -- corrupt the stream between healthy endpoints, the
     * failure mode worker-side plans cannot express. When empty, any
     * network-kind actions in the ambient FINESSE_DSE_FAULT are
     * lifted out and applied here (worker-kind actions still go to
     * the workers), so one env var scripts both sides.
     */
    std::vector<std::string> networkFaultPlans;

    // Legacy fault-injection hooks (sugar for workerFaultPlans with
    // "kill@group:0"): the selected workers SIGKILL themselves on
    // receipt of their first group -- a genuine `kill -9` mid-group,
    // after the master committed the dispatch.
    int killWorkerIndex = -1; ///< -1 = none
    bool killAllWorkers = false;
};

/**
 * One parsed fault-plan action (see FaultPlan). `fired` makes every
 * action one-shot so a respawned worker replays the plan afresh
 * (each process parses its own copy from the environment).
 */
struct FaultAction
{
    enum class Kind {
        Kill,            ///< raise(SIGKILL): crash mid-protocol
        Hang,            ///< sleep forever, no heartbeats (hung worker)
        Garbage,         ///< write junk bytes (stream corruption)
        Stall,           ///< sleep stallMs WITH heartbeats (straggler)
        BadHelloVersion, ///< announce a wrong protocol version
        BadHelloHash,    ///< announce a wrong catalog hash
        // Network kinds, executed by the master-side chaos proxy
        // (workers skip them: they script the wire, not the peer).
        Drop,     ///< close the connection mid-frame (reset)
        Truncate, ///< swallow a frame's tail, keep the stream open
        Delay,    ///< stall a frame stallMs in transit (slow network)
        Refuse,   ///< fail the connect/spawn outright
    };
    enum class Site {
        Group,   ///< on receipt of the index-th GroupRequest
        Frame,   ///< on receipt of the index-th frame of any type
        Hello,   ///< before the handshake is sent
        Connect, ///< at connection establishment (network kinds)
    };
    Kind kind = Kind::Kill;
    Site site = Site::Group;
    int index = 0;   ///< 0-based trigger ordinal at the site
    int stallMs = 0; ///< Stall/Delay only
    bool fired = false;

    /** Kinds the chaos proxy executes (workers ignore them). */
    bool
    isNetworkKind() const
    {
        return kind == Kind::Drop || kind == Kind::Truncate ||
               kind == Kind::Delay || kind == Kind::Refuse;
    }
};

/**
 * Scriptable worker fault plan, parsed from FINESSE_DSE_FAULT by the
 * worker main. Grammar: semicolon-separated `action@site` terms,
 *
 *     FINESSE_DSE_FAULT="kill@group:2;hang@group:1;garbage@frame:3;
 *                        stall_ms=500@group:0;bad_hash@hello"
 *
 * where action is kill | hang | garbage | stall_ms=<N> | bad_version
 * | bad_hash | drop | trunc | delay_ms=<N> | refuse and site is
 * group:<N> | frame:<N> | hello | connect. Unparseable specs are
 * fatal (a chaos test with a typo must fail loudly, not silently run
 * fault-free). Worker kinds are executed by the worker that parsed
 * the plan; network kinds by the master-side chaos proxy -- each side
 * keep()s its half, so one spec can script both.
 */
struct FaultPlan
{
    std::vector<FaultAction> actions;

    static FaultPlan parse(const std::string &spec);

    /** First unfired action at @p site/@p index (marks it fired). */
    FaultAction *fire(FaultAction::Site site, int index);

    /** Plan reduced to network-kind (true) or worker-kind actions. */
    FaultPlan keep(bool networkKinds) const;

    bool empty() const { return actions.empty(); }
};

/** Environment variable carrying the worker fault plan. */
constexpr const char *kFaultPlanEnv = "FINESSE_DSE_FAULT";

/**
 * Why a worker's Hello must be rejected; empty string = accepted.
 * (The master's handshake check, exposed for the wire tests.)
 */
std::string helloRejectReason(const wire::Hello &hello);

/**
 * Evaluate @p points for @p curve on @p workers subprocesses; the
 * result vector is index-aligned with @p points and bit-identical to
 * Explorer::evaluateAll on the same requests. With fallbackLocal
 * (default) any survivable fault degrades to in-process evaluation;
 * FatalError is reserved for fallbackLocal=false exhaustion and for a
 * worker-reported deterministic error (which a retry cannot fix).
 */
std::vector<DsePoint>
distributeEvaluate(const std::string &curve,
                   const std::vector<DseRequest> &points, int workers,
                   const DistributorOptions &opts = {});

/**
 * Worker loop: send Hello, then read frames from @p inFd until EOF --
 * GroupRequests are evaluated via Explorer::evaluateAll (serial:
 * process-level parallelism comes from running N workers) under a
 * heartbeat thread, Pings are answered with Pongs -- streaming
 * results to @p outFd. Returns the process exit code (0 on clean EOF).
 */
int runDseWorker(int inFd = 0, int outFd = 1);

/**
 * Network worker: bind @p listenSpec ("host:port"; port 0 =
 * ephemeral), print a `dse-worker listening on host:port` banner on
 * stdout (how tests and scripts discover an ephemeral port), then
 * serve masters one at a time -- accept, run runDseWorker over the
 * socket, and RE-LISTEN when the master disconnects. Serves
 * @p maxAccepts masters before returning (-1 = forever; CI smoke and
 * the unit tests use a finite count for a clean exit).
 */
int runDseWorkerListen(const std::string &listenSpec,
                       int maxAccepts = -1);

/**
 * Loopback-transport worker: connect back to the master's ephemeral
 * listener at @p connectSpec and run the worker loop over the socket.
 */
int runDseWorkerConnect(const std::string &connectSpec);

/**
 * Re-exec shim for binaries that act as their own worker pool: call
 * first thing in main(); when argv[1] == "dse-worker" this runs the
 * worker loop -- over stdin/stdout by default, over a socket with
 * `--listen=host:port` (plus optional `--max-accepts=N`) or
 * `--connect=host:port` -- and returns its exit code to pass to
 * return/exit, std::nullopt otherwise. finesse_cli, the distributed
 * tests and the fig10 bench all dispatch through this, so the default
 * DistributorOptions::workerCommand (self re-exec) always works.
 */
std::optional<int> maybeRunDseWorkerMain(int argc, char **argv);

} // namespace finesse

#endif // FINESSE_DSE_DISTRIBUTOR_H_
