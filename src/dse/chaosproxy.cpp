/**
 * @file
 * Chaos proxy implementation. One forwarder thread per wrapped
 * connection, two directions:
 *
 *   master -> worker: blind byte forwarding (the master is not the
 *   party under test; corrupting its dispatches would just test the
 *   worker's decoder, which the wire fuzz tests already do).
 *
 *   worker -> master: frames are reassembled (complete frames only,
 *   so a fault applies to a whole frame, never an arbitrary byte
 *   split) and forwarded one at a time with the plan's network
 *   actions applied in between.
 *
 * Lifecycle: the master half-closing its socketpair end propagates as
 * closeWrite() to the worker (clean shutdown); the master CLOSING its
 * end makes the forwarder's next pair write fail with EPIPE and the
 * thread exits (hard terminate). Worker EOF shuts the pair down so
 * the master sees EOF exactly as it would without the proxy.
 */
#include "dse/chaosproxy.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "dse/wire.h"

namespace finesse {

namespace {

class ChaosProxyConnection final : public Connection
{
  public:
    ChaosProxyConnection(std::unique_ptr<Connection> inner,
                         FaultPlan plan, std::atomic<int> *faultsFired)
        : inner_(std::move(inner)), plan_(std::move(plan)),
          faultsFired_(faultsFired)
    {
        ignoreSigpipe(); // a torn-down pair must EPIPE, not kill us
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) !=
            0)
            fatal("chaos proxy: socketpair: ", std::strerror(errno));
        masterFd_ = sv[0];
        proxyFd_ = sv[1];
        thread_ = std::thread([this] { pump(); });
    }

    ~ChaosProxyConnection() override { terminate(); }

    int pollFd() const override { return masterFd_; }

    bool
    writeAll(const void *data, size_t n) override
    {
        return masterFd_ >= 0 && writeAllFd(masterFd_, data, n);
    }

    long
    readSome(void *buf, size_t n) override
    {
        return masterFd_ >= 0 ? readSomeFd(masterFd_, buf, n) : 0;
    }

    void
    closeWrite() override
    {
        if (masterFd_ >= 0)
            ::shutdown(masterFd_, SHUT_WR);
    }

    bool
    terminate() override
    {
        // Order matters: the pump must be told to exit BEFORE the
        // join, because a hung worker (hang-fault chaos) never
        // produces the EOF the pump would otherwise wait for. The
        // shutdown wakes its poll; the flag makes it exit outright
        // instead of treating the wakeup as a graceful half-close.
        stop_.store(true, std::memory_order_relaxed);
        if (proxyFd_ >= 0)
            ::shutdown(proxyFd_, SHUT_RDWR);
        closeMasterFd();
        joinPump();
        return inner_ ? inner_->terminate() : false;
    }

    void
    finish() override
    {
        // Half-close ripples through the pump to the worker; the pump
        // exits on the worker's EOF, after which the inner transport
        // can be reaped gracefully.
        closeWrite();
        joinPump();
        closeMasterFd();
        if (inner_)
            inner_->finish();
    }

    std::string
    describe() const override
    {
        return "chaos-proxied " +
               (inner_ ? inner_->describe() : std::string("connection"));
    }

  private:
    void
    closeMasterFd()
    {
        if (masterFd_ >= 0)
            ::close(masterFd_);
        masterFd_ = -1;
    }

    void
    joinPump()
    {
        if (thread_.joinable())
            thread_.join();
        if (proxyFd_ >= 0)
            ::close(proxyFd_);
        proxyFd_ = -1;
    }

    void
    fired()
    {
        if (faultsFired_)
            faultsFired_->fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Apply faults to the complete frames in @p buf and forward them
     * to the master. Returns false when the connection must close
     * (Drop fired or the pair write failed). Consumed bytes are
     * erased from @p buf; an unparseable header flips @p scanning off
     * and flushes everything blind from then on.
     */
    bool
    forwardFrames(std::vector<u8> &buf, bool &scanning)
    {
        size_t pos = 0;
        bool ok = true;
        while (ok) {
            if (!scanning) {
                if (buf.size() > pos)
                    ok = writeAllFd(proxyFd_, buf.data() + pos,
                                    buf.size() - pos);
                pos = buf.size();
                break;
            }
            if (buf.size() - pos < wire::kHeaderBytes)
                break;
            wire::WireReader header(buf.data() + pos,
                                    wire::kHeaderBytes);
            const u32 magic = header.u32v();
            header.u8v(); // type: validated by the real endpoint
            const u32 length = header.u32v();
            if (magic != wire::kMagic || length > wire::kMaxPayload) {
                // The worker is writing junk (its own garbage fault):
                // frame ordinals are meaningless now, go transparent.
                scanning = false;
                continue;
            }
            const size_t frameBytes = wire::kHeaderBytes + length;
            if (buf.size() - pos < frameBytes)
                break; // tail of a frame still in flight
            const u8 *frame = buf.data() + pos;
            FaultAction *fa =
                plan_.fire(FaultAction::Site::Frame, frameIdx_++);
            // The wire can express the network kinds plus Garbage
            // (junk injection); anything else (kill, hang, stall,
            // bad handshakes) only a worker can perform -- skip.
            if (fa && !fa->isNetworkKind() &&
                fa->kind != FaultAction::Kind::Garbage)
                fa = nullptr;
            if (!fa) {
                ok = writeAllFd(proxyFd_, frame, frameBytes);
            } else {
                fired();
                switch (fa->kind) {
                  case FaultAction::Kind::Delay:
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(fa->stallMs));
                    ok = writeAllFd(proxyFd_, frame, frameBytes);
                    break;
                  case FaultAction::Kind::Truncate:
                    // Half the frame arrives, the rest evaporates;
                    // the stream stays up and the NEXT frame's bytes
                    // land where the master expects this frame's
                    // tail -> header desync -> poisoned stream.
                    ok = writeAllFd(proxyFd_, frame, frameBytes / 2);
                    break;
                  case FaultAction::Kind::Drop:
                    // Connection reset mid-frame: half the bytes,
                    // then EOF.
                    writeAllFd(proxyFd_, frame, frameBytes / 2);
                    ok = false;
                    break;
                  default:
                    // Garbage as a NETWORK action: junk injected by
                    // the wire ahead of an otherwise intact frame.
                    {
                        const std::vector<u8> junk(32, 0x5A);
                        ok = writeAllFd(proxyFd_, junk.data(),
                                        junk.size()) &&
                             writeAllFd(proxyFd_, frame, frameBytes);
                    }
                    break;
                }
            }
            pos += frameBytes;
        }
        buf.erase(buf.begin(), buf.begin() + static_cast<long>(pos));
        return ok;
    }

    void
    pump()
    {
        std::vector<u8> chunk(1 << 16);
        std::vector<u8> inbound; // worker->master reassembly
        bool masterOpen = true;  // master->worker direction alive
        bool scanning = true;
        for (;;) {
            pollfd fds[2];
            int n = 0, pairIdx = -1;
            if (masterOpen) {
                fds[n] = {proxyFd_, POLLIN, 0};
                pairIdx = n++;
            }
            const int innerIdx = n;
            fds[n++] = {inner_->pollFd(), POLLIN, 0};
            int rc = ::poll(fds, static_cast<nfds_t>(n), -1);
            if (stop_.load(std::memory_order_relaxed))
                break; // terminate(): exit even if the worker is hung
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (pairIdx >= 0 && fds[pairIdx].revents != 0) {
                const long r =
                    readSomeFd(proxyFd_, chunk.data(), chunk.size());
                if (r == 0 || r == -1) {
                    // Master half-closed (finish) or closed
                    // (terminate): pass the EOF along; results still
                    // flow until the worker closes its end.
                    masterOpen = false;
                    inner_->closeWrite();
                } else if (r > 0 &&
                           !inner_->writeAll(chunk.data(),
                                             static_cast<size_t>(r))) {
                    break; // worker gone; its EOF surfaces below
                }
            }
            if (fds[innerIdx].revents != 0) {
                const long r =
                    inner_->readSome(chunk.data(), chunk.size());
                if (r == kReadAgainFd)
                    continue;
                if (r <= 0)
                    break; // worker EOF/error -> master sees EOF
                inbound.insert(inbound.end(), chunk.data(),
                               chunk.data() + r);
                if (!forwardFrames(inbound, scanning))
                    break; // Drop fired or master is gone
            }
        }
        ::shutdown(proxyFd_, SHUT_RDWR);
    }

    std::unique_ptr<Connection> inner_;
    FaultPlan plan_;
    std::atomic<int> *faultsFired_;
    std::atomic<bool> stop_{false};
    int masterFd_ = -1;
    int proxyFd_ = -1;
    int frameIdx_ = 0; ///< pump-thread only
    std::thread thread_;
};

} // namespace

std::unique_ptr<Connection>
wrapWithChaosProxy(std::unique_ptr<Connection> inner, FaultPlan plan,
                   std::atomic<int> *faultsFired)
{
    return std::make_unique<ChaosProxyConnection>(
        std::move(inner), std::move(plan), faultsFired);
}

} // namespace finesse
