#include "serve/engine.h"

#include <algorithm>

namespace finesse {

namespace {

double
msSince(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

ServeEngine::ServeEngine(const CurveSystem12 &sys,
                         const ServeOptions &opt)
    : sys_(sys), opt_(opt), pool_(opt.jobs)
{
    FINESSE_REQUIRE(opt_.batchSize >= 1, "serve batchSize must be >= 1");
    FINESSE_REQUIRE(opt_.maxQueue >= 1, "serve maxQueue must be >= 1");
    // One lane per pool worker: each lane is a long-running task that
    // owns whole batches end to end, so a verdict never waits behind
    // an unrelated queued task.
    for (int i = 0; i < pool_.size(); ++i)
        pool_.submit([this] { laneLoop(); });
}

ServeEngine::~ServeEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    // pool_ destructor joins the lanes; they drain the queue first so
    // every admitted request still gets its verdict.
}

Admission
ServeEngine::submit(const VerifyRequest &req)
{
    // Reduce outside the lock: scheme -> pairing-product form costs
    // a few G1 scalar muls (KZG) and must not serialize submitters.
    PairingCheck check = reduceToCheck(sys_, req);

    Admission out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        FINESSE_CHECK(!stop_, "submit on stopped ServeEngine");
        if (queue_.size() >= static_cast<size_t>(opt_.maxQueue)) {
            counters_.rejectedBusy++;
            const double backlogBatches =
                double(queue_.size()) / double(opt_.batchSize);
            out.retryAfterMs = std::max(
                1, static_cast<int>(backlogBatches * avgBatchMs_ /
                                    double(pool_.size())));
            return out;
        }
        Pending p;
        p.check = std::move(check);
        p.enqueued = std::chrono::steady_clock::now();
        out.verdict = p.promise.get_future();
        queue_.push_back(std::move(p));
        counters_.submitted++;
        out.admitted = true;
    }
    workCv_.notify_one();
    return out;
}

void
ServeEngine::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drainCv_.wait(lock,
                  [this] { return queue_.empty() && inflight_ == 0; });
}

ServeCounters
ServeEngine::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
ServeEngine::laneLoop()
{
    for (;;) {
        std::vector<Pending> batch;
        u64 seq = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ && drained
            if (!stop_ &&
                queue_.size() < static_cast<size_t>(opt_.batchSize) &&
                opt_.lingerMs > 0) {
                // Partial batch: give stragglers one linger window to
                // fill it (batch fusion is where the throughput is).
                workCv_.wait_for(
                    lock, std::chrono::milliseconds(opt_.lingerMs),
                    [this] {
                        return stop_ ||
                               queue_.size() >=
                                   static_cast<size_t>(opt_.batchSize);
                    });
                if (queue_.empty())
                    continue; // another lane took everything
            }
            const size_t take =
                std::min(queue_.size(),
                         static_cast<size_t>(opt_.batchSize));
            batch.reserve(take);
            for (size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            seq = batchCounter_++;
            inflight_++;
        }
        runBatch(std::move(batch), seq);
    }
}

void
ServeEngine::runBatch(std::vector<Pending> batch, u64 seq)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<PairingCheck> checks;
    checks.reserve(batch.size());
    for (Pending &p : batch)
        checks.push_back(std::move(p.check));

    BatchVerifyStats stats;
    std::vector<bool> verdicts;
    std::exception_ptr error;
    try {
        verdicts = verifyBatch(sys_, checks, opt_.seed ^ (seq * 2 + 1),
                               &stats);
    } catch (...) {
        error = std::current_exception();
    }
    const auto t1 = std::chrono::steady_clock::now();

    for (size_t i = 0; i < batch.size(); ++i) {
        if (error)
            batch[i].promise.set_exception(error);
        else
            batch[i].promise.set_value(verdicts[i] ? Verdict::Accept
                                                   : Verdict::Reject);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        const double batchMs = msSince(t0, t1);
        counters_.batches++;
        counters_.totalBatchMs += batchMs;
        avgBatchMs_ = 0.7 * avgBatchMs_ + 0.3 * batchMs;
        counters_.products += stats.products;
        counters_.pairings += stats.pairings;
        counters_.singleFallbacks += stats.singleChecks;
        counters_.bisectSplits += stats.bisectSplits;
        for (size_t i = 0; i < batch.size(); ++i) {
            counters_.completed++;
            if (!error && verdicts[i])
                counters_.accepted++;
            else if (!error)
                counters_.rejectedInvalid++;
            const double lat = msSince(batch[i].enqueued, t1);
            counters_.totalLatencyMs += lat;
            counters_.maxLatencyMs =
                std::max(counters_.maxLatencyMs, lat);
        }
        inflight_--;
    }
    drainCv_.notify_all();
}

} // namespace finesse
