/**
 * @file
 * Batched pairing verification: the request shapes served by the
 * engine (BLS signatures, KZG openings, Groth16-style zk proofs), the
 * canonical pairing-product form they reduce to, and the
 * random-linear-combination (RLC) batch verifier.
 *
 * Canonical form. Every request reduces to a PairingCheck: a list of
 * (P_i in G1, Q_i in G2) terms with the semantics
 *
 *     accept  <=>  prod_i e(P_i, Q_i) == 1  in GT.
 *
 * Single verification evaluates the product directly (one Miller loop
 * per term, one shared final exponentiation — PairingEngine::
 * pairProduct). Batch verification draws an independent 128-bit
 * scalar r_j per request and checks
 *
 *     prod_j prod_i e([r_j] P_{j,i}, Q_{j,i}) == 1,
 *
 * which holds for all-valid batches and fails with probability
 * ~2^-128 when any request is invalid (the r_j prevent an adversary
 * — or an unlucky pair of bad requests — from cancelling across
 * requests). Before pairing, terms whose G2 points are equal are
 * merged by summing their scaled G1 points: a BLS batch collapses all
 * signature terms onto the shared g2 generator (N+1 Miller loops for
 * N requests), a KZG batch collapses onto {g2, [tau]g2} (2 Miller
 * loops total), a Groth16 batch with a shared verification key onto
 * N+3. One final exponentiation covers the whole batch either way.
 *
 * When a batch fails, verifyBatch() bisects: each half is re-checked
 * as its own RLC batch, recursing down to single verifications, so
 * individual bad requests are pinpointed while all-valid subtrees
 * cost one product each. Verdicts are deterministic and identical to
 * per-request single verification (differential-tested in
 * tests/test_serve.cpp).
 */
#ifndef FINESSE_SERVE_VERIFY_H_
#define FINESSE_SERVE_VERIFY_H_

#include <variant>
#include <vector>

#include "pairing/cache.h"

namespace finesse {

/**
 * BLS short-signature verification (signature in G1, public key in
 * G2): accept iff e(sigma, g2) == e(H(m), pk). The message hash is a
 * precomputed G1 point — hashing is the transport layer's job.
 */
struct BlsRequest
{
    AffinePt<Fp> signature; ///< sigma = [sk] H(m)
    AffinePt<Fp> msgHash;   ///< H(m)
    AffinePt<Fp2> publicKey; ///< pk = [sk] g2
};

/**
 * KZG opening verification: accept iff
 * e(C - [y] g1, g2) == e(pi, [tau] g2 - [z] g2).
 */
struct KzgRequest
{
    AffinePt<Fp> commitment; ///< C = [f(tau)] g1
    BigInt z;                ///< evaluation point
    BigInt y;                ///< claimed evaluation f(z)
    AffinePt<Fp> proof;      ///< pi = [q(tau)] g1
    AffinePt<Fp2> tauG2;     ///< [tau] g2 from the SRS
};

/**
 * Groth16-style verification: accept iff
 * e(A, B) == e(alpha, beta) * e(L, gamma) * e(C, delta).
 */
struct ZkRequest
{
    AffinePt<Fp> proofA, proofC, inputL;
    AffinePt<Fp2> proofB;
    // Verification key.
    AffinePt<Fp> alphaG1;
    AffinePt<Fp2> betaG2, gammaG2, deltaG2;
};

using VerifyRequest = std::variant<BlsRequest, KzgRequest, ZkRequest>;

/** One e(g1, g2) factor of a pairing-product check. */
struct PairTerm
{
    AffinePt<Fp> g1;
    AffinePt<Fp2> g2;
};

/** Canonical form: accept iff prod e(g1_i, g2_i) == 1. */
struct PairingCheck
{
    std::vector<PairTerm> terms;
};

/**
 * Reduce a request to its canonical pairing-product check. Moving an
 * equation side across the == negates its G1 points (pairing
 * bilinearity); KZG additionally folds the [z] g2 shift into the G1
 * side so the G2 bases (g2, [tau] g2) are batch-mergeable constants.
 */
PairingCheck reduceToCheck(const CurveSystem12 &sys,
                           const VerifyRequest &req);

/** Counters of one verifyBatch() call (accumulated by the engine). */
struct BatchVerifyStats
{
    size_t products = 0;     ///< pairing products evaluated (any size)
    size_t pairings = 0;     ///< Miller loops across all products
    size_t singleChecks = 0; ///< per-request fallback verifications
    size_t bisectSplits = 0; ///< batch splits forced by a failure
};

/** Single verification: evaluate the product, compare against 1. */
bool verifySingle(const CurveSystem12 &sys, const PairingCheck &check,
                  BatchVerifyStats *stats = nullptr);

/**
 * One RLC pass over @p checks: true iff (whp) every check holds.
 * @p seed determines the random scalars; any seed yields correct
 * verdicts, a fixed seed yields a reproducible pairing schedule.
 */
bool verifyBatchRLC(const CurveSystem12 &sys,
                    const std::vector<const PairingCheck *> &checks,
                    u64 seed, BatchVerifyStats *stats = nullptr);

/**
 * Per-request verdicts for a batch: one RLC product when all pass,
 * bisection + single-verification fallback otherwise. Verdict i is
 * exactly verifySingle(checks[i]).
 */
std::vector<bool> verifyBatch(const CurveSystem12 &sys,
                              const std::vector<PairingCheck> &checks,
                              u64 seed,
                              BatchVerifyStats *stats = nullptr);

} // namespace finesse

#endif // FINESSE_SERVE_VERIFY_H_
