/**
 * @file
 * The `finesse_cli serve` and `finesse_cli verify-batch` entry
 * points (tools/finesse_cli.cpp stays a thin flag parser).
 *
 * serve — long-running operator loop. Startup warms the front end
 * (one Framework compile; with FINESSE_ARTIFACT_CACHE set a warm
 * server performs zero front-end traces — the banner prints the
 * exact count), then reads newline commands from stdin or from one
 * TCP client (--serve-port):
 *
 *   bls|kzg|zk N [corrupt=i,j]  submit N requests (optionally
 *                               corrupting the given 0-based indices),
 *                               wait, reply with the verdict string;
 *                               bounced submits back off by the
 *                               engine's retry-after hint and resubmit
 *   flood <kind> N              submit without waiting and WITHOUT
 *                               retrying — exercises admission
 *                               backpressure; replies admitted/bounced
 *   stats                       one-line counter snapshot
 *   drain                       block until all admitted verdicts land
 *   quit                        drain and exit 0 (EOF does the same)
 *
 * Replies are single lines starting with `ok`, `stats`, `drained`,
 * `flood` or `err` — greppable from CI and scriptable over a socket.
 *
 * verify-batch — one-shot synchronous mode: build the --workload
 * request mix, run it through the engine, and differential-check
 * every engine verdict against per-request single verification AND
 * against the --corrupt expectation. Any disagreement exits
 * non-zero. This is the identity gate `bench/fig_serve` and CI rely
 * on.
 */
#ifndef FINESSE_SERVE_SERVECLI_H_
#define FINESSE_SERVE_SERVECLI_H_

#include <string>

#include "core/options.h"
#include "serve/engine.h"
#include "serve/workload.h"

namespace finesse {

/** Parsed command-line shape of `serve` / `verify-batch`. */
struct ServeCliOptions
{
    std::string curve = "BN254N";
    ServeOptions engine;       ///< --batch/--queue/--jobs/--linger-ms
    int servePort = -1;        ///< >= 0: accept one TCP client (serve)
    std::string workload = "bls:16"; ///< verify-batch request mix
    std::string corrupt;       ///< verify-batch indices to corrupt
    CompileOptions compile;    ///< warmup compile (config-derived)
};

/** `kind:count,...` over bls|kzg|zk; throws FatalError on junk. */
std::vector<std::pair<RequestKind, int>>
parseWorkloadSpec(const std::string &spec);

int runServeCommand(const ServeCliOptions &opts);
int runVerifyBatchCommand(const ServeCliOptions &opts);

} // namespace finesse

#endif // FINESSE_SERVE_SERVECLI_H_
