/**
 * @file
 * Deterministic synthetic verification workloads for the serving
 * engine: valid-by-construction BLS / KZG / Groth16-style requests
 * with optional corruption, all drawn from one seeded Rng. Used by
 * `finesse_cli serve` / `verify-batch` (the operator-driveable
 * stream), bench/fig_serve and tests — real deployments construct
 * requests from real scheme data instead (see examples/).
 *
 * The factory fixes its long-lived material once per instance (the
 * KZG trusted-setup scalar tau, the Groth16 verification key), so
 * requests of one kind share G2 bases exactly like production
 * traffic against one SRS / one circuit — which is what makes the
 * engine's G2-base merging representative.
 */
#ifndef FINESSE_SERVE_WORKLOAD_H_
#define FINESSE_SERVE_WORKLOAD_H_

#include "serve/verify.h"

namespace finesse {

enum class RequestKind
{
    Bls,
    Kzg,
    Zk,
};

/** Parse "bls" / "kzg" / "zk"; throws FatalError otherwise. */
RequestKind parseRequestKind(const std::string &name);
const char *toString(RequestKind kind);

class WorkloadFactory
{
  public:
    WorkloadFactory(const CurveSystem12 &sys, u64 seed);

    /**
     * Next request of @p kind. A corrupted request tampers exactly
     * one component (BLS: the signature, KZG: the claimed
     * evaluation, zk: proof C) and must verify as Reject.
     */
    VerifyRequest make(RequestKind kind, bool corrupt);

    const CurveSystem12 &system() const { return sys_; }

  private:
    BigInt randScalar();

    const CurveSystem12 &sys_;
    Rng rng_;
    // Per-factory trusted setup (lazily derived from the Rng stream).
    bool setupDone_ = false;
    BigInt tau_;
    AffinePt<Fp2> tauG2_;
    AffinePt<Fp> vkAlphaG1_;
    AffinePt<Fp2> vkBetaG2_, vkGammaG2_, vkDeltaG2_;
    BigInt vkAlpha_, vkBeta_, vkGamma_, vkDelta_;

    void ensureSetup();
};

} // namespace finesse

#endif // FINESSE_SERVE_WORKLOAD_H_
