#include "serve/servecli.h"

#include <unistd.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <thread>

#include "core/framework.h"
#include "support/diskcache.h"
#include "support/socket.h"

namespace finesse {

namespace {

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> out;
    size_t from = 0;
    while (from <= text.size()) {
        size_t at = text.find(sep, from);
        if (at == std::string::npos)
            at = text.size();
        if (at > from)
            out.push_back(text.substr(from, at - from));
        from = at + 1;
    }
    return out;
}

std::set<int>
parseIndexList(const std::string &list)
{
    std::set<int> out;
    for (const std::string &tok : splitOn(list, ',')) {
        size_t consumed = 0;
        int idx = -1;
        try {
            idx = std::stoi(tok, &consumed);
        } catch (...) {
        }
        FINESSE_REQUIRE(consumed == tok.size() && idx >= 0,
                        "bad corrupt index: ", tok);
        out.insert(idx);
    }
    return out;
}

/**
 * One front-end compile before traffic: on a warm artifact cache the
 * traces come off disk and `performed` is ZERO — the serving path
 * then never pays a front-end trace at all.
 */
void
printWarmup(const ServeCliOptions &opts, FILE *to)
{
    const TraceCacheStats before = traceCacheStats();
    Framework fw(opts.curve);
    const CompileResult res = fw.compile(opts.compile);
    const TraceCacheStats after = traceCacheStats();
    const DiskCache *dc = artifactCache();
    std::fprintf(to,
                 "warmup: compiled %zu instrs; traces performed=%zu "
                 "(mem hits=%zu, disk hits=%zu, disk puts=%zu, "
                 "artifact cache %s)\n",
                 res.instrs(),
                 after.tracesPerformed() - before.tracesPerformed(),
                 after.hits - before.hits,
                 after.diskHits - before.diskHits,
                 after.diskPuts - before.diskPuts,
                 dc ? dc->dir().c_str() : "off");
}

void
printStats(FILE *to, const ServeCounters &c)
{
    std::fprintf(to,
                 "stats submitted=%zu rejected_busy=%zu completed=%zu "
                 "accepted=%zu rejected_invalid=%zu batches=%zu "
                 "products=%zu pairings=%zu single_fallbacks=%zu "
                 "bisect_splits=%zu avg_latency_ms=%.3f "
                 "max_latency_ms=%.3f avg_batch_ms=%.3f\n",
                 c.submitted, c.rejectedBusy, c.completed, c.accepted,
                 c.rejectedInvalid, c.batches, c.products, c.pairings,
                 c.singleFallbacks, c.bisectSplits, c.avgLatencyMs(),
                 c.maxLatencyMs,
                 c.batches ? c.totalBatchMs / double(c.batches) : 0.0);
}

/** Submit with client-side backoff: honor retry-after and resubmit. */
Admission
submitWithRetry(ServeEngine &engine, const VerifyRequest &req,
                int *retries)
{
    for (;;) {
        Admission adm = engine.submit(req);
        if (adm.admitted)
            return adm;
        if (retries)
            ++*retries;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(adm.retryAfterMs));
    }
}

/** One `bls|kzg|zk N [corrupt=i,j]` command: submit, wait, report. */
void
runKindCommand(ServeEngine &engine, WorkloadFactory &factory,
               RequestKind kind, std::istringstream &line, FILE *to)
{
    int n = 0;
    line >> n;
    if (n <= 0) {
        std::fprintf(to, "err bad request count\n");
        return;
    }
    std::set<int> corrupt;
    std::string tail;
    if (line >> tail) {
        if (tail.rfind("corrupt=", 0) != 0) {
            std::fprintf(to, "err bad argument: %s\n", tail.c_str());
            return;
        }
        corrupt = parseIndexList(tail.substr(8));
    }
    int retries = 0;
    std::vector<std::future<Verdict>> futures;
    futures.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        futures.push_back(
            submitWithRetry(engine,
                            factory.make(kind, corrupt.count(i) > 0),
                            &retries)
                .verdict);
    }
    std::string verdicts;
    size_t accepted = 0;
    for (auto &f : futures) {
        const bool ok = f.get() == Verdict::Accept;
        accepted += ok;
        verdicts += ok ? '1' : '0';
    }
    std::fprintf(to,
                 "ok kind=%s n=%d accepted=%zu rejected=%zu retries=%d "
                 "verdicts=%s\n",
                 toString(kind), n, accepted,
                 static_cast<size_t>(n) - accepted, retries,
                 verdicts.c_str());
}

/** `flood <kind> N`: no waiting, no backoff — show the bounces. */
void
runFloodCommand(ServeEngine &engine, WorkloadFactory &factory,
                std::istringstream &line, FILE *to)
{
    std::string kindName;
    int n = 0;
    line >> kindName >> n;
    if (kindName.empty() || n <= 0) {
        std::fprintf(to, "err usage: flood <bls|kzg|zk> N\n");
        return;
    }
    const RequestKind kind = parseRequestKind(kindName);
    int admitted = 0, bounced = 0, lastRetryMs = 0;
    for (int i = 0; i < n; ++i) {
        Admission adm = engine.submit(factory.make(kind, false));
        if (adm.admitted) {
            admitted++; // future dropped: verdict still computed
        } else {
            bounced++;
            lastRetryMs = adm.retryAfterMs;
        }
    }
    std::fprintf(to,
                 "flood kind=%s n=%d admitted=%d bounced=%d "
                 "retry_after_ms=%d\n",
                 toString(kind), n, admitted, bounced, lastRetryMs);
}

void
commandLoop(ServeEngine &engine, WorkloadFactory &factory, FILE *in,
            FILE *to)
{
    char *lineBuf = nullptr;
    size_t lineCap = 0;
    while (getline(&lineBuf, &lineCap, in) >= 0) {
        std::istringstream line{std::string(lineBuf)};
        std::string cmd;
        if (!(line >> cmd) || cmd[0] == '#')
            continue;
        try {
            if (cmd == "bls" || cmd == "kzg" || cmd == "zk") {
                runKindCommand(engine, factory, parseRequestKind(cmd),
                               line, to);
            } else if (cmd == "flood") {
                runFloodCommand(engine, factory, line, to);
            } else if (cmd == "stats") {
                printStats(to, engine.counters());
            } else if (cmd == "drain") {
                engine.drain();
                std::fprintf(to, "drained completed=%zu\n",
                             engine.counters().completed);
            } else if (cmd == "quit") {
                break;
            } else {
                std::fprintf(to, "err unknown command: %s\n",
                             cmd.c_str());
            }
        } catch (const std::exception &e) {
            std::fprintf(to, "err %s\n", e.what());
        }
        std::fflush(to);
    }
    free(lineBuf);
}

} // namespace

std::vector<std::pair<RequestKind, int>>
parseWorkloadSpec(const std::string &spec)
{
    std::vector<std::pair<RequestKind, int>> out;
    for (const std::string &tok : splitOn(spec, ',')) {
        const size_t colon = tok.find(':');
        FINESSE_REQUIRE(colon != std::string::npos,
                        "bad workload token (want kind:count): ", tok);
        const RequestKind kind = parseRequestKind(tok.substr(0, colon));
        const std::string countStr = tok.substr(colon + 1);
        size_t consumed = 0;
        int count = -1;
        try {
            count = std::stoi(countStr, &consumed);
        } catch (...) {
        }
        FINESSE_REQUIRE(consumed == countStr.size() && count > 0,
                        "bad workload count: ", tok);
        out.emplace_back(kind, count);
    }
    FINESSE_REQUIRE(!out.empty(), "empty workload spec");
    return out;
}

int
runServeCommand(const ServeCliOptions &opts)
{
    printWarmup(opts, stdout);
    const CurveSystem12 &sys = curveSystem12(opts.curve);
    ServeEngine engine(sys, opts.engine);
    WorkloadFactory factory(sys, opts.engine.seed);
    std::printf("serve ready curve=%s batch=%d queue=%d jobs=%d "
                "linger_ms=%d\n",
                opts.curve.c_str(), opts.engine.batchSize,
                opts.engine.maxQueue, engine.lanes(),
                opts.engine.lingerMs);
    std::fflush(stdout);

    FILE *in = stdin, *to = stdout;
    FILE *sockIn = nullptr, *sockOut = nullptr;
    int listenFd = -1;
    if (opts.servePort >= 0) {
        std::string err;
        int boundPort = 0;
        listenFd = tcpListen(HostPort{"127.0.0.1", opts.servePort}, 1,
                             &err, &boundPort);
        if (listenFd < 0) {
            std::fprintf(stderr, "serve: %s\n", err.c_str());
            return 1;
        }
        // Banner = port-discovery contract, as with dse-worker.
        std::printf("serve listening host=127.0.0.1 port=%d\n",
                    boundPort);
        std::fflush(stdout);
        const int fd = tcpAccept(listenFd, -1, &err);
        if (fd < 0) {
            std::fprintf(stderr, "serve: accept: %s\n", err.c_str());
            ::close(listenFd);
            return 1;
        }
        // Two streams over the one socket: mixing reads and writes on
        // a single "r+" stream without repositioning is UB.
        sockIn = fdopen(fd, "r");
        sockOut = fdopen(dup(fd), "w");
        FINESSE_CHECK(sockIn != nullptr && sockOut != nullptr,
                      "fdopen on accepted socket");
        in = sockIn;
        to = sockOut;
    }

    commandLoop(engine, factory, in, to);
    engine.drain();
    printStats(to, engine.counters());
    std::fflush(to);
    if (sockIn)
        std::fclose(sockIn);
    if (sockOut)
        std::fclose(sockOut);
    if (listenFd >= 0)
        ::close(listenFd);
    if (to != stdout) // mirror the final snapshot for the operator log
        printStats(stdout, engine.counters());
    std::printf("serve exit\n");
    return 0;
}

int
runVerifyBatchCommand(const ServeCliOptions &opts)
{
    const CurveSystem12 &sys = curveSystem12(opts.curve);
    const auto mix = parseWorkloadSpec(opts.workload);
    const std::set<int> corrupt =
        opts.corrupt.empty() ? std::set<int>{}
                             : parseIndexList(opts.corrupt);

    WorkloadFactory factory(sys, opts.engine.seed);
    std::vector<VerifyRequest> requests;
    std::vector<RequestKind> kinds;
    for (const auto &[kind, count] : mix) {
        for (int i = 0; i < count; ++i) {
            const int global = static_cast<int>(requests.size());
            requests.push_back(
                factory.make(kind, corrupt.count(global) > 0));
            kinds.push_back(kind);
        }
    }
    for (const int idx : corrupt) {
        FINESSE_REQUIRE(idx < static_cast<int>(requests.size()),
                        "--corrupt index ", idx, " out of range (n=",
                        requests.size(), ")");
    }

    // Reference verdicts: per-request single verification.
    std::vector<bool> single;
    for (const VerifyRequest &req : requests)
        single.push_back(verifySingle(sys, reduceToCheck(sys, req)));

    ServeEngine engine(sys, opts.engine);
    std::vector<std::future<Verdict>> futures;
    for (const VerifyRequest &req : requests)
        futures.push_back(
            submitWithRetry(engine, req, nullptr).verdict);

    int mismatches = 0;
    size_t accepted = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
        const bool engineOk = futures[i].get() == Verdict::Accept;
        const bool expected = corrupt.count(static_cast<int>(i)) == 0;
        accepted += engineOk;
        if (engineOk != single[i] || engineOk != expected) {
            mismatches++;
            std::fprintf(stderr,
                         "MISMATCH #%zu kind=%s engine=%s single=%s "
                         "expected=%s\n",
                         i, toString(kinds[i]),
                         engineOk ? "accept" : "reject",
                         single[i] ? "accept" : "reject",
                         expected ? "accept" : "reject");
        }
    }
    engine.drain();
    printStats(stdout, engine.counters());
    std::printf("verify-batch %s n=%zu accepted=%zu rejected=%zu "
                "corrupted=%zu\n",
                mismatches ? "MISMATCH" : "OK", requests.size(),
                accepted, requests.size() - accepted, corrupt.size());
    return mismatches ? 1 : 0;
}

} // namespace finesse
