/**
 * @file
 * ServeEngine: the long-running batch-verification engine. Callers
 * submit VerifyRequests; worker lanes on the shared ThreadPool drain
 * a bounded admission queue in batches of up to `batchSize`, verify
 * each batch as ONE random-linear-combination multi-pairing (with
 * bisection fallback pinpointing individual bad requests —
 * serve/verify.h), and fulfill per-request verdict futures.
 *
 * Admission control. The queue is bounded (`maxQueue`): a submit
 * against a full queue is REJECTED immediately with a retry-after
 * hint derived from the observed batch service time — shedding load
 * at the door keeps the latency of admitted requests bounded instead
 * of letting the queue (and every client's tail latency) grow without
 * limit. Clients are expected to back off and resubmit.
 *
 * Batching policy. A lane takes min(batchSize, queue length)
 * requests; when the queue is shorter than a full batch it waits up
 * to `lingerMs` for stragglers before verifying a partial batch —
 * the classic throughput/latency knob (linger 0 = latency-greedy).
 *
 * Determinism. Verdicts equal per-request single verification for
 * every jobs value and any batch composition; only the
 * latency/throughput counters vary with concurrency
 * (tests/test_serve.cpp asserts serial == concurrent verdicts, and
 * the suite runs under TSan in CI).
 */
#ifndef FINESSE_SERVE_ENGINE_H_
#define FINESSE_SERVE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>

#include "serve/verify.h"
#include "support/threadpool.h"

namespace finesse {

/** Engine shape: batching, admission and concurrency knobs. */
struct ServeOptions
{
    int batchSize = 16; ///< max requests fused into one multi-pairing
    int maxQueue = 256; ///< admission bound; beyond it submits bounce
    int jobs = 1;       ///< verifier lanes (resolveJobs semantics)
    int lingerMs = 2;   ///< partial-batch wait for stragglers
    u64 seed = 0x5e55e; ///< base seed of the per-batch RLC scalars
};

/** Per-request outcome. */
enum class Verdict : u8
{
    Accept,
    Reject,
};

/** Monotonic counter snapshot (ServeEngine::counters). */
struct ServeCounters
{
    size_t submitted = 0;      ///< admitted requests
    size_t rejectedBusy = 0;   ///< bounced at the admission queue
    size_t completed = 0;      ///< verdicts delivered
    size_t accepted = 0;       ///< ... of which Accept
    size_t rejectedInvalid = 0; ///< ... of which Reject
    size_t batches = 0;        ///< batches executed
    size_t products = 0;       ///< pairing products evaluated
    size_t pairings = 0;       ///< Miller loops across all products
    size_t singleFallbacks = 0; ///< bisection-leaf single checks
    size_t bisectSplits = 0;   ///< batch splits forced by failures
    double totalLatencyMs = 0; ///< submit -> verdict, summed
    double maxLatencyMs = 0;   ///< worst single request
    double totalBatchMs = 0;   ///< verification wall time, summed

    double
    avgLatencyMs() const
    {
        return completed ? totalLatencyMs / double(completed) : 0.0;
    }
};

/** Outcome of ServeEngine::submit. */
struct Admission
{
    bool admitted = false;
    int retryAfterMs = 0;          ///< backoff hint when bounced
    std::future<Verdict> verdict;  ///< valid iff admitted
};

class ServeEngine
{
  public:
    /** Lanes start immediately on a dedicated ThreadPool. */
    ServeEngine(const CurveSystem12 &sys, const ServeOptions &opt);

    /** Drains the queue, delivers all pending verdicts, joins lanes. */
    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /**
     * Admit one request (non-blocking). On a full queue the request
     * is NOT queued: admitted = false and retryAfterMs estimates when
     * capacity frees up (queue depth x observed batch service time).
     */
    Admission submit(const VerifyRequest &req);

    /** Block until every admitted request has its verdict. */
    void drain();

    ServeCounters counters() const;

    const ServeOptions &options() const { return opt_; }

    /** Verifier lanes actually running (resolveJobs of opt.jobs). */
    int lanes() const { return pool_.size(); }

  private:
    struct Pending
    {
        PairingCheck check;
        std::promise<Verdict> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void laneLoop();
    void runBatch(std::vector<Pending> batch, u64 seq);

    const CurveSystem12 &sys_;
    const ServeOptions opt_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;  ///< queue became non-empty / stop
    std::condition_variable drainCv_; ///< queue emptied / batch done
    std::deque<Pending> queue_;
    int inflight_ = 0; ///< batches currently verifying
    bool stop_ = false;
    u64 batchCounter_ = 0;
    double avgBatchMs_ = 25.0; ///< EWMA service time (retry hints)
    ServeCounters counters_;

    // Last member: lanes must die before any state above.
    ThreadPool pool_;
};

} // namespace finesse

#endif // FINESSE_SERVE_ENGINE_H_
