#include "serve/verify.h"

namespace finesse {

namespace {

/**
 * Evaluate prod e(g1, g2) == 1 for already-scaled terms, merging
 * terms that share a G2 base first: each merge trades one Miller
 * loop for one (much cheaper) G1 Jacobian addition. Quadratic scan
 * over the term list — batches are tens of terms, Miller loops
 * dominate by orders of magnitude.
 */
bool
productIsOne(const CurveSystem12 &sys,
             const std::vector<PairTerm> &terms, BatchVerifyStats *stats)
{
    std::vector<AffinePt<Fp2>> bases;
    std::vector<JacPt<Fp>> sums;
    const FpCtx *fp = &sys.fpCtx();
    for (const PairTerm &t : terms) {
        if (t.g1.infinity || t.g2.infinity)
            continue; // e(O, Q) = e(P, O) = 1
        size_t k = 0;
        for (; k < bases.size(); ++k) {
            if (bases[k].equals(t.g2))
                break;
        }
        if (k == bases.size()) {
            bases.push_back(t.g2);
            sums.push_back(JacPt<Fp>::fromAffine(t.g1, fp));
        } else {
            sums[k] = jacAddAffine(sums[k], t.g1, fp);
        }
    }
    const std::vector<AffinePt<Fp>> merged = jacToAffineBatch(sums, fp);
    std::vector<std::pair<AffinePt<Fp>, AffinePt<Fp2>>> product;
    product.reserve(merged.size());
    for (size_t k = 0; k < merged.size(); ++k) {
        if (!merged[k].infinity)
            product.emplace_back(merged[k], bases[k]);
    }
    if (stats != nullptr)
        stats->pairings += product.size();
    const Fp12 one = Fp12::one(sys.tower().gtCtx());
    return sys.pairProduct(product).equals(one);
}

/** Nonzero 128-bit RLC scalar (far below any catalog group order). */
BigInt
rlcScalar(Rng &rng)
{
    const BigInt r = BigInt::randomBits(rng, 128);
    return r.isZero() ? BigInt(u64{1}) : r;
}

/** Per-sub-batch seed: decorrelate the recursion's RLC draws. */
u64
mixSeed(u64 seed, u64 lo, u64 hi)
{
    u64 x = seed ^ (lo * 0x9e3779b97f4a7c15ull) ^
            (hi * 0xc2b2ae3d27d4eb4full);
    x ^= x >> 29;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 32;
    return x;
}

/** Bisection: fill verdicts[lo, hi) matching single verification. */
void
bisect(const CurveSystem12 &sys, const std::vector<PairingCheck> &checks,
       size_t lo, size_t hi, u64 seed, std::vector<bool> &verdicts,
       BatchVerifyStats *stats)
{
    if (hi - lo == 1) {
        verdicts[lo] = verifySingle(sys, checks[lo], stats);
        return;
    }
    std::vector<const PairingCheck *> sub;
    sub.reserve(hi - lo);
    for (size_t i = lo; i < hi; ++i)
        sub.push_back(&checks[i]);
    if (verifyBatchRLC(sys, sub, mixSeed(seed, lo, hi), stats)) {
        for (size_t i = lo; i < hi; ++i)
            verdicts[i] = true;
        return;
    }
    if (stats != nullptr)
        stats->bisectSplits++;
    const size_t mid = lo + (hi - lo) / 2;
    bisect(sys, checks, lo, mid, seed, verdicts, stats);
    bisect(sys, checks, mid, hi, seed, verdicts, stats);
}

} // namespace

PairingCheck
reduceToCheck(const CurveSystem12 &sys, const VerifyRequest &req)
{
    PairingCheck check;
    if (const auto *bls = std::get_if<BlsRequest>(&req)) {
        // e(sigma, g2) == e(H, pk)  <=>  e(-sigma, g2) e(H, pk) == 1.
        check.terms.push_back({bls->signature.negate(), sys.g2Gen()});
        check.terms.push_back({bls->msgHash, bls->publicKey});
    } else if (const auto *kzg = std::get_if<KzgRequest>(&req)) {
        // e(C - [y]g1, g2) == e(pi, [tau]g2 - [z]g2)
        //   <=>  e(C - [y]g1 + [z]pi, g2) e(-pi, [tau]g2) == 1
        // (the [z]g2 shift moves to the G1 side via bilinearity, so
        // both G2 bases are per-SRS constants the batcher can merge).
        const CurveCtx<Fp> &g1c = sys.g1Curve();
        const AffinePt<Fp> zPi = scalarMul(g1c, kzg->proof, kzg->z);
        const AffinePt<Fp> yG1 =
            scalarMul(g1c, sys.g1Gen(), kzg->y.mod(sys.info().r));
        const AffinePt<Fp> lhs = affineAdd(
            g1c, affineAdd(g1c, kzg->commitment, zPi), yG1.negate());
        check.terms.push_back({lhs, sys.g2Gen()});
        check.terms.push_back({kzg->proof.negate(), kzg->tauG2});
    } else {
        const auto &zk = std::get<ZkRequest>(req);
        // e(A, B) == e(alpha, beta) e(L, gamma) e(C, delta).
        check.terms.push_back({zk.proofA.negate(), zk.proofB});
        check.terms.push_back({zk.alphaG1, zk.betaG2});
        check.terms.push_back({zk.inputL, zk.gammaG2});
        check.terms.push_back({zk.proofC, zk.deltaG2});
    }
    return check;
}

bool
verifySingle(const CurveSystem12 &sys, const PairingCheck &check,
             BatchVerifyStats *stats)
{
    if (stats != nullptr) {
        stats->products++;
        stats->singleChecks++;
    }
    return productIsOne(sys, check.terms, stats);
}

bool
verifyBatchRLC(const CurveSystem12 &sys,
               const std::vector<const PairingCheck *> &checks, u64 seed,
               BatchVerifyStats *stats)
{
    Rng rng(seed);
    const CurveCtx<Fp> &g1c = sys.g1Curve();

    // Scale every term's G1 point by its request's scalar. The
    // Jacobian results convert to affine in ONE batch inversion
    // before the merge (productIsOne consumes affine G1).
    std::vector<JacPt<Fp>> scaled;
    std::vector<const AffinePt<Fp2> *> g2s;
    for (const PairingCheck *check : checks) {
        const BigInt r = rlcScalar(rng);
        for (const PairTerm &t : check->terms) {
            if (t.g1.infinity || t.g2.infinity)
                continue;
            scaled.push_back(scalarMulJac(g1c, t.g1, r));
            g2s.push_back(&t.g2);
        }
    }
    const std::vector<AffinePt<Fp>> affine =
        jacToAffineBatch(scaled, &sys.fpCtx());
    std::vector<PairTerm> terms;
    terms.reserve(affine.size());
    for (size_t i = 0; i < affine.size(); ++i)
        terms.push_back({affine[i], *g2s[i]});
    if (stats != nullptr)
        stats->products++;
    return productIsOne(sys, terms, stats);
}

std::vector<bool>
verifyBatch(const CurveSystem12 &sys,
            const std::vector<PairingCheck> &checks, u64 seed,
            BatchVerifyStats *stats)
{
    std::vector<bool> verdicts(checks.size(), false);
    if (checks.empty())
        return verdicts;
    bisect(sys, checks, 0, checks.size(), seed, verdicts, stats);
    return verdicts;
}

} // namespace finesse
