#include "serve/workload.h"

namespace finesse {

RequestKind
parseRequestKind(const std::string &name)
{
    if (name == "bls")
        return RequestKind::Bls;
    if (name == "kzg")
        return RequestKind::Kzg;
    FINESSE_REQUIRE(name == "zk", "bad request kind: ", name,
                    " (want bls|kzg|zk)");
    return RequestKind::Zk;
}

const char *
toString(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Bls:
        return "bls";
      case RequestKind::Kzg:
        return "kzg";
      case RequestKind::Zk:
        return "zk";
    }
    return "?";
}

WorkloadFactory::WorkloadFactory(const CurveSystem12 &sys, u64 seed)
    : sys_(sys), rng_(seed)
{}

BigInt
WorkloadFactory::randScalar()
{
    return BigInt::randomBelow(rng_, sys_.info().r - BigInt(u64{1})) +
           BigInt(u64{1});
}

void
WorkloadFactory::ensureSetup()
{
    if (setupDone_)
        return;
    setupDone_ = true;
    // KZG SRS tail: [tau] g2.
    tau_ = randScalar();
    tauG2_ = scalarMul(sys_.twistCurve(), sys_.g2Gen(), tau_);
    // Groth16-style verification key.
    vkAlpha_ = randScalar();
    vkBeta_ = randScalar();
    vkGamma_ = randScalar();
    vkDelta_ = randScalar();
    vkAlphaG1_ = scalarMul(sys_.g1Curve(), sys_.g1Gen(), vkAlpha_);
    vkBetaG2_ = scalarMul(sys_.twistCurve(), sys_.g2Gen(), vkBeta_);
    vkGammaG2_ = scalarMul(sys_.twistCurve(), sys_.g2Gen(), vkGamma_);
    vkDeltaG2_ = scalarMul(sys_.twistCurve(), sys_.g2Gen(), vkDelta_);
}

VerifyRequest
WorkloadFactory::make(RequestKind kind, bool corrupt)
{
    ensureSetup();
    const CurveCtx<Fp> &g1c = sys_.g1Curve();
    const CurveCtx<Fp2> &g2c = sys_.twistCurve();
    const BigInt &r = sys_.info().r;

    switch (kind) {
      case RequestKind::Bls: {
        BlsRequest req;
        const BigInt sk = randScalar();
        req.msgHash = sys_.randomG1(rng_);
        req.publicKey = scalarMul(g2c, sys_.g2Gen(), sk);
        req.signature = scalarMul(g1c, req.msgHash, sk);
        if (corrupt)
            req.signature = affineAdd(g1c, req.signature, sys_.g1Gen());
        return req;
      }
      case RequestKind::Kzg: {
        // Synthetic-but-consistent opening built in the exponent:
        // pick q(tau) and z, set pi = [q(tau)] g1 and
        // C = [q(tau)(tau - z) + y] g1, which satisfies
        // e(C - [y]g1, g2) == e(pi, [tau]g2 - [z]g2) identically.
        KzgRequest req;
        const BigInt qTau = randScalar();
        req.z = randScalar();
        req.y = randScalar();
        const BigInt fTau =
            (qTau * (tau_ - req.z) + req.y).mod(r);
        req.commitment = scalarMul(g1c, sys_.g1Gen(), fTau);
        req.proof = scalarMul(g1c, sys_.g1Gen(), qTau);
        req.tauG2 = tauG2_;
        if (corrupt)
            req.y = (req.y + BigInt(u64{1})).mod(r);
        return req;
      }
      case RequestKind::Zk: {
        // Pick a, b, l; solve c so that
        // a b = alpha beta + l gamma + c delta (mod r).
        ZkRequest req;
        const BigInt a = randScalar(), b = randScalar(),
                     l = randScalar();
        BigInt c = ((a * b - vkAlpha_ * vkBeta_ - l * vkGamma_).mod(r) *
                    vkDelta_.invMod(r))
                       .mod(r);
        if (corrupt)
            c = (c + BigInt(u64{1})).mod(r);
        req.proofA = scalarMul(g1c, sys_.g1Gen(), a);
        req.proofB = scalarMul(g2c, sys_.g2Gen(), b);
        req.inputL = scalarMul(g1c, sys_.g1Gen(), l);
        req.proofC = scalarMul(g1c, sys_.g1Gen(), c);
        req.alphaG1 = vkAlphaG1_;
        req.betaG2 = vkBetaG2_;
        req.gammaG2 = vkGammaG2_;
        req.deltaG2 = vkDeltaG2_;
        return req;
      }
    }
    panic("bad RequestKind");
}

} // namespace finesse
