/**
 * @file
 * Artifact-cache integration layer: the binary codec and key schema
 * that connect the persistent content-addressed DiskCache
 * (support/diskcache.h) to the compilation pipeline.
 *
 * Key schema. Every artifact key embeds:
 *
 *  - the semantic identity of the artifact (for front-end traces the
 *    canonical `Framework::traceKey`: curve | TracePart | front-end
 *    pipeline | variants),
 *  - the build/catalog fingerprint `catalogHash()` -- the same FNV-1a
 *    hash the distributed sweep's Hello handshake verifies, so a
 *    catalog change invalidates on-disk artifacts exactly as it
 *    rejects mismatched workers, and
 *  - the artifact codec version, bumped on ANY change to the encoded
 *    byte layout OR to compiler behavior that alters traced modules
 *    (stale traces from an older compiler must read as misses, not
 *    as silently-wrong schedules).
 *
 * Payloads are encoded with the shared bit-exact binary codec
 * (support/bytecodec.h): integers little-endian, doubles as raw
 * IEEE-754 bits, so a cache round trip is indistinguishable from
 * recomputation.
 */
#ifndef FINESSE_CORE_ARTIFACTS_H_
#define FINESSE_CORE_ARTIFACTS_H_

#include <string>
#include <vector>

#include "compiler/passes.h"
#include "ir/ir.h"
#include "support/bytecodec.h"

namespace finesse {

/**
 * Bump on any encoded-layout or trace-affecting compiler change; part
 * of every artifact key, so old entries become unreachable (and are
 * eventually discarded by key-mismatch rejection on hash reuse).
 */
constexpr u32 kArtifactCodecVersion = 1;

/** catalogHash() folded with the codec version: the key fingerprint. */
u64 artifactFingerprint();

/** Disk key of a front-end trace with canonical trace key @p traceKey. */
std::string traceArtifactKey(const std::string &traceKey);

// BigInt <-> bytes (sign + limb vector), shared by the trace codec
// and any future artifact kind.
void putBigInt(ByteWriter &w, const BigInt &v);
BigInt getBigInt(ByteReader &r);

// OptStats <-> bytes. Also reused by the wire protocol's DsePoint
// codec (dse/wire.cpp) -- one definition, bit-identical everywhere.
void putOptStats(ByteWriter &w, const OptStats &s);
OptStats getOptStats(ByteReader &r);

/** Encode a traced+optimized module and its front-end pass stats. */
std::vector<u8> encodeTraceArtifact(const Module &m, const OptStats &stats);

/**
 * Decode a trace artifact. False (with a loud stderr warning) on any
 * malformed payload -- the caller treats it as a miss and re-traces.
 */
bool decodeTraceArtifact(const std::vector<u8> &bytes, Module &m,
                         OptStats &stats);

} // namespace finesse

#endif // FINESSE_CORE_ARTIFACTS_H_
