/**
 * @file
 * Bridge from configuration files to compile options: lets a design
 * point be described declaratively (the paper's YAML-driven flow).
 *
 * Recognized keys:
 *   curve                 catalog curve name (default BN254N)
 *   optimize              bool, run IROpt (default true)
 *   schedule              bool, list scheduling (default true)
 *   part                  full | miller | finalexp
 *   passes                comma-separated pass pipeline (ablation);
 *                         empty = standard (see compiler/pipeline.h)
 *   trace_cache           bool, reuse cached front-end traces (default
 *                         true)
 *   jobs                  sweep worker threads (0 = hardware
 *                         concurrency, 1 = serial; default 0)
 *   dse_workers           sweep worker SUBPROCESSES (multi-process
 *                         fan-out; 0 = in-process on `jobs` threads)
 *   dse.retries           re-dispatches per group after worker deaths
 *   dse.liveness_ms       no-progress kill deadline (0 = env/default)
 *   dse.group_deadline_ms hard per-dispatch deadline (0 = disabled)
 *   dse.hedge_ms          straggler hedging threshold (0 = disabled)
 *   dse.respawns          replacement-worker budget (-1 = 2x width)
 *   dse.fallback_local    evaluate in-process instead of failing when
 *                         retries/pool run out (default true)
 *   dse.transport         pipe | loopback-tcp (worker transport;
 *                         default = FINESSE_DSE_TRANSPORT env / pipe)
 *   dse.hosts             comma-separated host:port remote worker pool
 *                         ("local" pins a local slot; default =
 *                         FINESSE_DSE_HOSTS env / all-local)
 *   dse.connect_ms        remote connect / loopback accept deadline
 *                         (0 = the handshake window)
 *   hw.long_lat, hw.short_lat, hw.inv_lat        itineraries
 *   hw.issue_width, hw.lin_units, hw.banks       datapath shape
 *   hw.fifo, hw.fifo_depth, hw.beta              write-back / affinity
 *   variants.mul<D>       schoolbook | karatsuba      (D = 2,4,6,12,24)
 *   variants.sqr<D>       schoolbook | complex | ch-sqr2 | ch-sqr3
 *   variants.g2_coords    jacobian | projective
 */
#ifndef FINESSE_CORE_OPTIONS_H_
#define FINESSE_CORE_OPTIONS_H_

#include "core/framework.h"
#include "dse/distributor.h"
#include "support/config.h"

namespace finesse {

/** Curve name from a config (default BN254N). */
inline std::string
curveFromConfig(const Config &cfg)
{
    return cfg.getString("curve", "BN254N");
}

/** Build CompileOptions from a parsed config. */
inline CompileOptions
optionsFromConfig(const Config &cfg)
{
    CompileOptions opt;
    opt.optimize = cfg.getBool("optimize", true);
    opt.listSchedule = cfg.getBool("schedule", true);
    opt.passes = parsePassList(cfg.getString("passes", ""));
    opt.useTraceCache = cfg.getBool("trace_cache", true);
    opt.jobs = static_cast<int>(cfg.getInt("jobs", 0));
    FINESSE_REQUIRE(opt.jobs >= 0, "jobs must be >= 0");
    opt.dseWorkers = static_cast<int>(cfg.getInt("dse_workers", 0));
    FINESSE_REQUIRE(opt.dseWorkers >= 0, "dse_workers must be >= 0");

    const std::string part = cfg.getString("part", "full");
    if (part == "miller")
        opt.part = TracePart::MillerOnly;
    else if (part == "finalexp")
        opt.part = TracePart::FinalExpOnly;
    else
        FINESSE_REQUIRE(part == "full", "bad part: ", part);

    opt.hw.longLat = static_cast<int>(cfg.getInt("hw.long_lat", 38));
    opt.hw.shortLat = static_cast<int>(cfg.getInt("hw.short_lat", 8));
    opt.hw.invLat = static_cast<int>(cfg.getInt("hw.inv_lat", 900));
    opt.hw.issueWidth = static_cast<int>(cfg.getInt("hw.issue_width", 1));
    opt.hw.numLinUnits = static_cast<int>(cfg.getInt("hw.lin_units", 1));
    opt.hw.numBanks = static_cast<int>(
        cfg.getInt("hw.banks", opt.hw.issueWidth));
    opt.hw.writebackFifo =
        cfg.getBool("hw.fifo", opt.hw.issueWidth > 1);
    opt.hw.fifoDepth = static_cast<int>(cfg.getInt("hw.fifo_depth", 8));
    opt.hw.beta = cfg.getDouble("hw.beta", 0.05);

    auto parseMul = [](const std::string &v) {
        if (v == "schoolbook")
            return MulVariant::Schoolbook;
        FINESSE_REQUIRE(v == "karatsuba", "bad mul variant: ", v);
        return MulVariant::Karatsuba;
    };
    auto parseSqr = [](const std::string &v) {
        if (v == "schoolbook")
            return SqrVariant::Schoolbook;
        if (v == "ch-sqr2")
            return SqrVariant::CHSqr2;
        if (v == "ch-sqr3")
            return SqrVariant::CHSqr3;
        FINESSE_REQUIRE(v == "complex", "bad sqr variant: ", v);
        return SqrVariant::Complex;
    };
    for (int d : {2, 4, 6, 12, 24}) {
        const std::string mulKey =
            "variants.mul" + std::to_string(d);
        const std::string sqrKey =
            "variants.sqr" + std::to_string(d);
        if (cfg.has(mulKey))
            opt.variants.levels[d].mul =
                parseMul(cfg.getString(mulKey));
        if (cfg.has(sqrKey))
            opt.variants.levels[d].sqr =
                parseSqr(cfg.getString(sqrKey));
    }
    const std::string coords =
        cfg.getString("variants.g2_coords", "jacobian");
    opt.variants.g2Coords = coords == "projective"
                                ? CoordSystem::Projective
                                : CoordSystem::Jacobian;
    opt.variants.cyclotomicSqr = cfg.getBool("variants.cyclo", true);
    return opt;
}

/**
 * Overlay `dse.*` fault-tolerance keys onto @p dopts (fields without a
 * key keep their current value, so callers can pre-seed defaults).
 */
inline void
applyDistributorConfig(const Config &cfg, DistributorOptions &dopts)
{
    dopts.maxGroupRetries = static_cast<int>(
        cfg.getInt("dse.retries", dopts.maxGroupRetries));
    FINESSE_REQUIRE(dopts.maxGroupRetries >= 0,
                    "dse.retries must be >= 0");
    dopts.livenessTimeoutMs = static_cast<int>(
        cfg.getInt("dse.liveness_ms", dopts.livenessTimeoutMs));
    dopts.groupDeadlineMs = static_cast<int>(
        cfg.getInt("dse.group_deadline_ms", dopts.groupDeadlineMs));
    dopts.hedgeAfterMs = static_cast<int>(
        cfg.getInt("dse.hedge_ms", dopts.hedgeAfterMs));
    dopts.maxRespawns = static_cast<int>(
        cfg.getInt("dse.respawns", dopts.maxRespawns));
    dopts.fallbackLocal =
        cfg.getBool("dse.fallback_local", dopts.fallbackLocal);
    const std::string transport = cfg.getString("dse.transport", "");
    if (transport == "pipe")
        dopts.transport = DseTransport::Pipe;
    else if (transport == "loopback-tcp")
        dopts.transport = DseTransport::LoopbackTcp;
    else
        FINESSE_REQUIRE(transport.empty(),
                        "bad dse.transport: ", transport);
    const std::string hosts = cfg.getString("dse.hosts", "");
    if (!hosts.empty()) {
        dopts.hosts.clear();
        size_t from = 0;
        while (from <= hosts.size()) {
            size_t comma = hosts.find(',', from);
            if (comma == std::string::npos)
                comma = hosts.size();
            if (comma > from)
                dopts.hosts.push_back(
                    hosts.substr(from, comma - from));
            from = comma + 1;
        }
    }
    dopts.connectTimeoutMs = static_cast<int>(
        cfg.getInt("dse.connect_ms", dopts.connectTimeoutMs));
}

} // namespace finesse

#endif // FINESSE_CORE_OPTIONS_H_
