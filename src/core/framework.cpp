/**
 * @file
 * Framework implementation: type-erased curve handles over the two
 * tower shapes, the compile pipeline driver, and functional validation.
 */
#include "core/framework.h"

#include <chrono>
#include <map>
#include <mutex>

#include "compiler/codegen.h"
#include "pairing/cache.h"
#include "sim/functional.h"

namespace finesse {

namespace {

/** Flatten an affine G1/G2 pair into the module input convention. */
template <typename TW>
std::vector<BigInt>
flattenPairInputs(const CurveSystem<TW> &sys,
                  const typename CurveSystem<TW>::G1Affine &p,
                  const typename CurveSystem<TW>::G2Affine &q)
{
    std::vector<BigInt> in;
    p.x.toFpCoeffs(in);
    p.y.toFpCoeffs(in);
    q.x.toFpCoeffs(in);
    q.y.toFpCoeffs(in);
    return in;
}

template <typename TW, typename SymTW>
class CurveHandleImpl : public ICurveHandle
{
  public:
    explicit CurveHandleImpl(const CurveSystem<TW> &sys) : sys_(sys) {}

    const CurveInfo &info() const override { return sys_.info(); }
    const PairingPlan &plan() const override { return sys_.plan(); }

    Module
    trace(const VariantConfig &variants, TracePart part, bool optimize,
          OptStats *stats) const override
    {
        Module m = tracePairing<SymTW>(sys_, variants, part);
        OptStats local;
        if (optimize) {
            local = optimizeModule(m);
        } else {
            local.instrsBefore = local.instrsAfter = m.size();
        }
        if (stats)
            *stats = local;
        return m;
    }

    CompileResult
    compile(const CompileOptions &opt) const override
    {
        const auto start = std::chrono::steady_clock::now();
        OptStats stats;
        Module m = trace(opt.variants, opt.part, opt.optimize, &stats);
        CompileResult result =
            runBackend(std::move(m), opt.hw, opt.listSchedule);
        result.opt = stats;
        result.compileSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        result.prog.compileSeconds = result.compileSeconds;
        return result;
    }

    std::vector<BigInt>
    sampleInputs(Rng &rng, TracePart part) const override
    {
        if (part == TracePart::FinalExpOnly) {
            // A Miller-loop output makes the input domain realistic.
            const auto p = sys_.randomG1(rng);
            const auto q = sys_.randomG2(rng);
            const auto f =
                sys_.engine().miller(p.x, p.y, q.x, q.y);
            std::vector<BigInt> in;
            f.toFpCoeffs(in);
            return in;
        }
        const auto p = sys_.randomG1(rng);
        const auto q = sys_.randomG2(rng);
        return flattenPairInputs(sys_, p, q);
    }

    std::vector<BigInt>
    nativeReference(const std::vector<BigInt> &inputs,
                    TracePart part) const override
    {
        using FtT = typename TW::FtT;
        using GtT = typename TW::GtT;
        auto it = inputs.begin();
        std::vector<BigInt> out;
        if (part == TracePart::FinalExpOnly) {
            const GtT f =
                GtT::fromFpCoeffs(sys_.tower().gtCtx(), it);
            FINESSE_CHECK(it == inputs.end());
            sys_.engine().finalExp(f).toFpCoeffs(out);
            return out;
        }
        const Fp xP = Fp::fromFpCoeffs(&sys_.fpCtx(), it);
        const Fp yP = Fp::fromFpCoeffs(&sys_.fpCtx(), it);
        const FtT xQ = FtT::fromFpCoeffs(sys_.tower().ftCtx(), it);
        const FtT yQ = FtT::fromFpCoeffs(sys_.tower().ftCtx(), it);
        FINESSE_CHECK(it == inputs.end());
        if (part == TracePart::MillerOnly) {
            sys_.engine().miller(xP, yP, xQ, yQ).toFpCoeffs(out);
        } else {
            sys_.engine().pair(xP, yP, xQ, yQ).toFpCoeffs(out);
        }
        return out;
    }

  private:
    const CurveSystem<TW> &sys_;
};

} // namespace

CompileResult
runBackend(Module module, const PipelineModel &hw, bool listSchedule)
{
    const auto start = std::chrono::steady_clock::now();
    CompileResult result;
    result.prog.module = std::move(module);
    result.opt.instrsBefore = result.opt.instrsAfter =
        result.prog.module.size();
    result.prog.hw = hw;
    result.prog.banks = assignBanks(result.prog.module, hw);
    result.prog.schedule = scheduleModule(
        result.prog.module, result.prog.banks, hw, listSchedule);
    result.prog.regs = allocateRegisters(
        result.prog.module, result.prog.banks, result.prog.schedule);
    result.binary = encodeProgram(result.prog);
    result.compileSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    result.prog.compileSeconds = result.compileSeconds;
    return result;
}

const ICurveHandle &
curveHandle(const std::string &name)
{
    static std::mutex mtx;
    static std::map<std::string, std::unique_ptr<ICurveHandle>> cache;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = cache.find(name);
    if (it == cache.end()) {
        const CurveDef &def = findCurve(name);
        std::unique_ptr<ICurveHandle> handle;
        if (def.family == CurveFamily::BLS24) {
            handle = std::make_unique<
                CurveHandleImpl<NativeTower24, Tower24<SymFp>>>(
                curveSystem24(name));
        } else {
            handle = std::make_unique<
                CurveHandleImpl<NativeTower12, Tower12<SymFp>>>(
                curveSystem12(name));
        }
        it = cache.emplace(name, std::move(handle)).first;
    }
    return *it->second;
}

ValidationReport
Framework::validate(const CompileResult &result, int vectors,
                    TracePart part, u64 seed) const
{
    ValidationReport report;
    report.vectors = vectors;
    Rng rng(seed);
    FpCtx fp(info().p);
    for (int i = 0; i < vectors; ++i) {
        const auto inputs = handle_->sampleInputs(rng, part);
        const auto want = handle_->nativeReference(inputs, part);
        const auto gotModule =
            runModule(result.prog.module, fp, inputs);
        const auto gotAllocated = runAllocated(result.prog, fp, inputs);
        report.moduleMatches += gotModule == want;
        report.allocatedMatches += gotAllocated == want;
    }
    return report;
}

} // namespace finesse
