/**
 * @file
 * Framework implementation: type-erased curve handles over the two
 * tower shapes, the PassManager-driven compile pipeline, the
 * process-wide front-end trace cache, and functional validation.
 */
#include "core/framework.h"

#include <chrono>
#include <map>
#include <mutex>

#include "compiler/codegen.h"
#include "pairing/cache.h"
#include "sim/functional.h"

namespace finesse {

namespace {

/** Flatten an affine G1/G2 pair into the module input convention. */
template <typename TW>
std::vector<BigInt>
flattenPairInputs(const CurveSystem<TW> &sys,
                  const typename CurveSystem<TW>::G1Affine &p,
                  const typename CurveSystem<TW>::G2Affine &q)
{
    std::vector<BigInt> in;
    p.x.toFpCoeffs(in);
    p.y.toFpCoeffs(in);
    q.x.toFpCoeffs(in);
    q.y.toFpCoeffs(in);
    return in;
}

// ------------------------------------------------- front-end trace cache

/** One cached front-end result: traced + optimized module and stats. */
struct TraceCacheEntry
{
    Module module;
    OptStats stats;
};

std::mutex g_traceMutex;
std::map<std::string, TraceCacheEntry> &
traceCache()
{
    static std::map<std::string, TraceCacheEntry> cache;
    return cache;
}
size_t g_traceHits = 0;
size_t g_traceMisses = 0;

std::string
traceCacheKey(const std::string &curve, const CompileOptions &opt)
{
    std::string key = curve;
    key += '|';
    key += std::to_string(static_cast<int>(opt.part));
    key += '|';
    for (const std::string &n : opt.frontendPasses()) {
        key += n;
        key += ',';
    }
    key += '|';
    key += opt.variants.cacheKey();
    return key;
}

/**
 * Front end with caching: trace + IROpt exactly once per (curve,
 * variants, part, pipeline) key, then clone the module for every
 * caller. The lock is held across the trace so a key is never traced
 * twice.
 */
Module
cachedFrontend(const ICurveHandle &h, const CompileOptions &opt,
               OptStats &statsOut)
{
    auto traceNow = [&] {
        Module m = h.trace(opt.variants, opt.part, false, nullptr);
        statsOut = runFrontendPipeline(m, opt.frontendPasses());
        return m;
    };
    if (!opt.useTraceCache)
        return traceNow();

    const std::string key = traceCacheKey(h.info().def.name, opt);
    std::lock_guard<std::mutex> lock(g_traceMutex);
    auto it = traceCache().find(key);
    if (it == traceCache().end()) {
        ++g_traceMisses;
        // Bound resident memory: cached modules are multi-MB, and a
        // long-lived process sweeping many (curve, variants) keys
        // must not grow without limit. 256 entries comfortably hold a
        // full-variant-space sweep (96 combos) over a couple of
        // curves; beyond that, evict an arbitrary entry (re-tracing
        // is correct, just slower).
        constexpr size_t kMaxEntries = 256;
        if (traceCache().size() >= kMaxEntries)
            traceCache().erase(traceCache().begin());
        TraceCacheEntry entry;
        entry.module = traceNow();
        entry.stats = statsOut;
        it = traceCache().emplace(key, std::move(entry)).first;
    } else {
        ++g_traceHits;
        statsOut = it->second.stats;
    }
    return it->second.module; // clone
}

/**
 * Drive the backend PassManager over a traced module and package the
 * context as a CompileResult, merging the front-end stats in.
 */
CompileResult
runBackendPipeline(Module module, const PipelineModel &hw,
                   bool listSchedule,
                   const std::vector<std::string> &backendPasses,
                   const OptStats &frontendStats)
{
    const auto start = std::chrono::steady_clock::now();
    CompilationContext ctx;
    ctx.prog.module = std::move(module);
    ctx.prog.hw = hw;
    ctx.listSchedule = listSchedule;
    ctx.stats = frontendStats;
    PassManager::fromNames(backendPasses).run(ctx);

    CompileResult result;
    result.prog = std::move(ctx.prog);
    result.binary = std::move(ctx.binary);
    result.opt = std::move(ctx.stats);
    result.compileSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    result.prog.compileSeconds = result.compileSeconds;
    return result;
}

template <typename TW, typename SymTW>
class CurveHandleImpl : public ICurveHandle
{
  public:
    explicit CurveHandleImpl(const CurveSystem<TW> &sys) : sys_(sys) {}

    const CurveInfo &info() const override { return sys_.info(); }
    const PairingPlan &plan() const override { return sys_.plan(); }

    Module
    trace(const VariantConfig &variants, TracePart part, bool optimize,
          OptStats *stats) const override
    {
        Module m = tracePairing<SymTW>(sys_, variants, part);
        const OptStats local = runFrontendPipeline(
            m, optimize ? frontendPassNames()
                        : std::vector<std::string>{});
        if (stats)
            *stats = local;
        return m;
    }

    CompileResult
    compile(const CompileOptions &opt) const override
    {
        const auto start = std::chrono::steady_clock::now();
        OptStats stats;
        Module m = cachedFrontend(*this, opt, stats);
        CompileResult result = runBackendPipeline(
            std::move(m), opt.hw, opt.listSchedule, opt.backendPasses(),
            stats);
        result.compileSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        result.prog.compileSeconds = result.compileSeconds;
        return result;
    }

    std::vector<BigInt>
    sampleInputs(Rng &rng, TracePart part) const override
    {
        if (part == TracePart::FinalExpOnly) {
            // A Miller-loop output makes the input domain realistic.
            const auto p = sys_.randomG1(rng);
            const auto q = sys_.randomG2(rng);
            const auto f =
                sys_.engine().miller(p.x, p.y, q.x, q.y);
            std::vector<BigInt> in;
            f.toFpCoeffs(in);
            return in;
        }
        const auto p = sys_.randomG1(rng);
        const auto q = sys_.randomG2(rng);
        return flattenPairInputs(sys_, p, q);
    }

    std::vector<BigInt>
    nativeReference(const std::vector<BigInt> &inputs,
                    TracePart part) const override
    {
        using FtT = typename TW::FtT;
        using GtT = typename TW::GtT;
        auto it = inputs.begin();
        std::vector<BigInt> out;
        if (part == TracePart::FinalExpOnly) {
            const GtT f =
                GtT::fromFpCoeffs(sys_.tower().gtCtx(), it);
            FINESSE_CHECK(it == inputs.end());
            sys_.engine().finalExp(f).toFpCoeffs(out);
            return out;
        }
        const Fp xP = Fp::fromFpCoeffs(&sys_.fpCtx(), it);
        const Fp yP = Fp::fromFpCoeffs(&sys_.fpCtx(), it);
        const FtT xQ = FtT::fromFpCoeffs(sys_.tower().ftCtx(), it);
        const FtT yQ = FtT::fromFpCoeffs(sys_.tower().ftCtx(), it);
        FINESSE_CHECK(it == inputs.end());
        if (part == TracePart::MillerOnly) {
            sys_.engine().miller(xP, yP, xQ, yQ).toFpCoeffs(out);
        } else {
            sys_.engine().pair(xP, yP, xQ, yQ).toFpCoeffs(out);
        }
        return out;
    }

  private:
    const CurveSystem<TW> &sys_;
};

} // namespace

TraceCacheStats
traceCacheStats()
{
    std::lock_guard<std::mutex> lock(g_traceMutex);
    TraceCacheStats s;
    s.hits = g_traceHits;
    s.misses = g_traceMisses;
    s.entries = traceCache().size();
    return s;
}

void
clearTraceCache()
{
    std::lock_guard<std::mutex> lock(g_traceMutex);
    traceCache().clear();
    g_traceHits = 0;
    g_traceMisses = 0;
}

CompileResult
runBackend(Module module, const PipelineModel &hw, bool listSchedule,
           const std::vector<std::string> &backendPasses)
{
    OptStats stats;
    stats.instrsBefore = stats.instrsAfter = module.size();
    return runBackendPipeline(std::move(module), hw, listSchedule,
                              backendPasses.empty() ? backendPassNames()
                                                    : backendPasses,
                              stats);
}

const ICurveHandle &
curveHandle(const std::string &name)
{
    static std::mutex mtx;
    static std::map<std::string, std::unique_ptr<ICurveHandle>> cache;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = cache.find(name);
    if (it == cache.end()) {
        const CurveDef &def = findCurve(name);
        std::unique_ptr<ICurveHandle> handle;
        if (def.family == CurveFamily::BLS24) {
            handle = std::make_unique<
                CurveHandleImpl<NativeTower24, Tower24<SymFp>>>(
                curveSystem24(name));
        } else {
            handle = std::make_unique<
                CurveHandleImpl<NativeTower12, Tower12<SymFp>>>(
                curveSystem12(name));
        }
        it = cache.emplace(name, std::move(handle)).first;
    }
    return *it->second;
}

ValidationReport
Framework::validate(const CompileResult &result, int vectors,
                    TracePart part, u64 seed) const
{
    ValidationReport report;
    report.vectors = vectors;
    Rng rng(seed);
    FpCtx fp(info().p);
    for (int i = 0; i < vectors; ++i) {
        const auto inputs = handle_->sampleInputs(rng, part);
        const auto want = handle_->nativeReference(inputs, part);
        const auto gotModule =
            runModule(result.prog.module, fp, inputs);
        const auto gotAllocated = runAllocated(result.prog, fp, inputs);
        report.moduleMatches += gotModule == want;
        report.allocatedMatches += gotAllocated == want;
    }
    return report;
}

} // namespace finesse
