/**
 * @file
 * Framework implementation: type-erased curve handles over the two
 * tower shapes, the PassManager-driven compile pipeline, the
 * process-wide front-end trace cache, and functional validation.
 */
#include "core/framework.h"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "compiler/codegen.h"
#include "core/artifacts.h"
#include "pairing/cache.h"
#include "sim/functional.h"
#include "support/diskcache.h"

namespace finesse {

namespace {

/** Flatten an affine G1/G2 pair into the module input convention. */
template <typename TW>
std::vector<BigInt>
flattenPairInputs(const CurveSystem<TW> &sys,
                  const typename CurveSystem<TW>::G1Affine &p,
                  const typename CurveSystem<TW>::G2Affine &q)
{
    std::vector<BigInt> in;
    p.x.toFpCoeffs(in);
    p.y.toFpCoeffs(in);
    q.x.toFpCoeffs(in);
    q.y.toFpCoeffs(in);
    return in;
}

// ------------------------------------------------- front-end trace cache
//
// Sharded by key hash so parallel sweep workers on distinct keys take
// distinct locks, with in-flight coalescing so N workers asking for
// the same key trace it once: the first caller publishes a slot,
// traces OUTSIDE the shard lock, then fills the slot and wakes the
// waiters.

/** One cached front-end result: traced + optimized module and stats. */
struct TraceCacheEntry
{
    Module module;
    OptStats stats;
};

/**
 * Shared state of one cache entry, ready or in flight. Waiters hold a
 * shared_ptr, so eviction or clearTraceCache() can drop the shard's
 * reference while a trace is still being produced or consumed.
 */
struct TraceSlot
{
    std::mutex mutex;
    std::condition_variable cv;
    bool ready = false;
    std::exception_ptr error; ///< set instead of `ready` on failure
    TraceCacheEntry entry;
};

struct TraceShard
{
    std::mutex mutex;
    std::map<std::string, std::shared_ptr<TraceSlot>> slots;
};

constexpr size_t kNumTraceShards = 16;
// Bound resident memory: cached modules are multi-MB, and a
// long-lived process sweeping many (curve, variants) keys must not
// grow without limit. The bound is GLOBAL (not per shard, which would
// evict mid-sweep under hash skew and break the one-trace-per-key
// invariant): 256 entries comfortably hold a full-variant-space sweep
// (96 combos) over a couple of curves. Past the bound, each miss
// evicts an arbitrary ready entry (see evictOverCapacity); re-tracing
// an evicted key is correct, just slower.
constexpr size_t kMaxTraceEntries = 256;
std::atomic<size_t> g_traceCapacity{kMaxTraceEntries};

std::array<TraceShard, kNumTraceShards> &
traceShards()
{
    static std::array<TraceShard, kNumTraceShards> shards;
    return shards;
}

std::atomic<size_t> g_traceHits{0};
std::atomic<size_t> g_traceMisses{0};
std::atomic<size_t> g_traceCoalesced{0};
std::atomic<size_t> g_traceEntries{0}; ///< slots across all shards
std::atomic<size_t> g_traceDiskHits{0};
std::atomic<size_t> g_traceDiskMisses{0};
std::atomic<size_t> g_traceDiskPuts{0};
std::atomic<size_t> g_traceDiskRejects{0};

std::string
traceCacheKey(const std::string &curve, const CompileOptions &opt)
{
    std::string key = curve;
    key += '|';
    key += std::to_string(static_cast<int>(opt.part));
    key += '|';
    for (const std::string &n : opt.frontendPasses()) {
        key += n;
        key += ',';
    }
    key += '|';
    key += opt.variants.cacheKey();
    return key;
}

/**
 * Enforce the global entry bound: while over capacity, scan the
 * shards in index order and drop the first READY entry found.
 * In-flight slots are never evicted (their producers still hold a
 * reference and expect to publish the result to their waiters), so
 * the bound is soft while traces are outstanding; a scan that finds
 * nothing evictable stops rather than spinning. Only one shard lock
 * is held at a time, so this cannot deadlock against other shard
 * users or clearTraceCache()'s ordered multi-lock.
 */
void
evictOverCapacity()
{
    while (g_traceEntries.load(std::memory_order_relaxed) >
           g_traceCapacity.load(std::memory_order_relaxed)) {
        bool evicted = false;
        for (TraceShard &shard : traceShards()) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (auto ev = shard.slots.begin();
                 ev != shard.slots.end(); ++ev) {
                // Keep the slot alive past the erase: the map may
                // hold the last reference, and erasing while its
                // mutex is locked would destroy a locked mutex.
                std::shared_ptr<TraceSlot> victim = ev->second;
                bool evictable = false;
                {
                    std::lock_guard<std::mutex> sl(victim->mutex);
                    evictable = victim->ready;
                }
                if (evictable) {
                    shard.slots.erase(ev);
                    g_traceEntries.fetch_sub(1,
                                             std::memory_order_relaxed);
                    evicted = true;
                    break;
                }
            }
            if (evicted)
                break;
        }
        if (!evicted)
            return; // everything resident is in flight
    }
}

/**
 * Persistent-cache leg of a trace miss: try to load the traced +
 * optimized module from the artifact cache (keyed by the canonical
 * trace key plus the build/catalog fingerprint, core/artifacts.h).
 * An entry that passes the DiskCache checksum but fails to decode is
 * invalidated on disk and counted as a loud reject.
 */
bool
loadTraceArtifact(const std::string &key, TraceCacheEntry &entry)
{
    DiskCache *dc = artifactCache();
    if (!dc)
        return false;
    const std::string diskKey = traceArtifactKey(key);
    std::vector<u8> bytes;
    if (!dc->get(diskKey, bytes)) {
        g_traceDiskMisses.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (!decodeTraceArtifact(bytes, entry.module, entry.stats)) {
        dc->remove(diskKey);
        g_traceDiskRejects.fetch_add(1, std::memory_order_relaxed);
        g_traceDiskMisses.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    g_traceDiskHits.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
storeTraceArtifact(const std::string &key, const TraceCacheEntry &entry)
{
    DiskCache *dc = artifactCache();
    if (!dc)
        return;
    if (dc->put(traceArtifactKey(key),
                encodeTraceArtifact(entry.module, entry.stats)))
        g_traceDiskPuts.fetch_add(1, std::memory_order_relaxed);
}

/**
 * Front end with caching: trace + IROpt exactly once per (curve,
 * variants, part, pipeline) key. Returns a zero-clone handle aliased
 * into the cache slot: the module is shared read-only by every caller
 * (and by the batched DSE engine), and the aliasing shared_ptr keeps
 * it alive across eviction and clearTraceCache(). A missing key is
 * traced with only the slot published (the shard lock is NOT held
 * across the trace), so concurrent requests for other keys proceed
 * and concurrent requests for the same key coalesce onto the
 * in-flight slot.
 */
std::shared_ptr<const Module>
sharedFrontend(const ICurveHandle &h, const CompileOptions &opt,
               OptStats &statsOut)
{
    auto traceNow = [&] {
        Module m = h.trace(opt.variants, opt.part, false, nullptr);
        statsOut = runFrontendPipeline(m, opt.frontendPasses());
        return m;
    };
    if (!opt.useTraceCache)
        return std::make_shared<const Module>(traceNow());

    const std::string key = traceCacheKey(h.info().def.name, opt);
    TraceShard &shard =
        traceShards()[std::hash<std::string>{}(key) % kNumTraceShards];

    std::shared_ptr<TraceSlot> slot;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.slots.find(key);
        if (it == shard.slots.end()) {
            slot = std::make_shared<TraceSlot>();
            shard.slots.emplace(key, slot);
            g_traceEntries.fetch_add(1, std::memory_order_relaxed);
            owner = true;
            g_traceMisses.fetch_add(1, std::memory_order_relaxed);
        } else {
            slot = it->second;
        }
    }

    if (owner)
        evictOverCapacity();

    if (owner) {
        try {
            TraceCacheEntry entry;
            if (loadTraceArtifact(key, entry)) {
                statsOut = entry.stats;
            } else {
                entry.module = traceNow();
                entry.stats = statsOut;
                storeTraceArtifact(key, entry);
            }
            std::lock_guard<std::mutex> sl(slot->mutex);
            slot->entry = std::move(entry);
            slot->ready = true;
            slot->cv.notify_all();
            return {slot, &slot->entry.module}; // shared, no clone
        } catch (...) {
            {
                std::lock_guard<std::mutex> sl(slot->mutex);
                slot->error = std::current_exception();
                slot->cv.notify_all();
            }
            // Unpublish so a later caller retries instead of
            // rereading a poisoned slot forever.
            std::lock_guard<std::mutex> lock(shard.mutex);
            auto it = shard.slots.find(key);
            if (it != shard.slots.end() && it->second == slot) {
                shard.slots.erase(it);
                g_traceEntries.fetch_sub(1, std::memory_order_relaxed);
            }
            throw;
        }
    }

    std::unique_lock<std::mutex> sl(slot->mutex);
    if (!slot->ready && !slot->error) {
        g_traceCoalesced.fetch_add(1, std::memory_order_relaxed);
        slot->cv.wait(sl, [&] { return slot->ready || slot->error; });
    } else {
        g_traceHits.fetch_add(1, std::memory_order_relaxed);
    }
    if (slot->error)
        std::rethrow_exception(slot->error);
    statsOut = slot->entry.stats;
    return {slot, &slot->entry.module}; // shared, no clone
}

/** Owning-copy front end (Framework::compile needs its own module). */
Module
cachedFrontend(const ICurveHandle &h, const CompileOptions &opt,
               OptStats &statsOut)
{
    if (!opt.useTraceCache) {
        Module m = h.trace(opt.variants, opt.part, false, nullptr);
        statsOut = runFrontendPipeline(m, opt.frontendPasses());
        return m;
    }
    return *sharedFrontend(h, opt, statsOut); // clone
}

/**
 * Drive the backend PassManager over a traced module and package the
 * context as a CompileResult, merging the front-end stats in.
 */
CompileResult
runBackendPipeline(Module module, const PipelineModel &hw,
                   bool listSchedule,
                   const std::vector<std::string> &backendPasses,
                   const OptStats &frontendStats)
{
    const auto start = std::chrono::steady_clock::now();
    CompilationContext ctx;
    ctx.prog.module = std::move(module);
    ctx.prog.hw = hw;
    ctx.listSchedule = listSchedule;
    ctx.stats = frontendStats;
    PassManager::fromNames(backendPasses).run(ctx);

    CompileResult result;
    result.prog = std::move(ctx.prog);
    result.binary = std::move(ctx.binary);
    result.opt = std::move(ctx.stats);
    result.compileSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    result.prog.compileSeconds = result.compileSeconds;
    return result;
}

template <typename TW, typename SymTW>
class CurveHandleImpl : public ICurveHandle
{
  public:
    explicit CurveHandleImpl(const CurveSystem<TW> &sys) : sys_(sys) {}

    const CurveInfo &info() const override { return sys_.info(); }
    const PairingPlan &plan() const override { return sys_.plan(); }

    Module
    trace(const VariantConfig &variants, TracePart part, bool optimize,
          OptStats *stats) const override
    {
        Module m = tracePairing<SymTW>(sys_, variants, part);
        const OptStats local = runFrontendPipeline(
            m, optimize ? frontendPassNames()
                        : std::vector<std::string>{});
        if (stats)
            *stats = local;
        return m;
    }

    CompileResult
    compile(const CompileOptions &opt) const override
    {
        const auto start = std::chrono::steady_clock::now();
        OptStats stats;
        Module m = cachedFrontend(*this, opt, stats);
        CompileResult result = runBackendPipeline(
            std::move(m), opt.hw, opt.listSchedule, opt.backendPasses(),
            stats);
        result.compileSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        result.prog.compileSeconds = result.compileSeconds;
        return result;
    }

    std::vector<BigInt>
    sampleInputs(Rng &rng, TracePart part) const override
    {
        if (part == TracePart::FinalExpOnly) {
            // A Miller-loop output makes the input domain realistic.
            const auto p = sys_.randomG1(rng);
            const auto q = sys_.randomG2(rng);
            const auto f =
                sys_.engine().miller(p.x, p.y, q.x, q.y);
            std::vector<BigInt> in;
            f.toFpCoeffs(in);
            return in;
        }
        const auto p = sys_.randomG1(rng);
        const auto q = sys_.randomG2(rng);
        return flattenPairInputs(sys_, p, q);
    }

    std::vector<std::vector<BigInt>>
    sampleInputsBatch(Rng &rng, TracePart part, int n) const override
    {
        // Scalars are drawn in the exact order of n sequential
        // sampleInputs calls (s1_0, s2_0, s1_1, ...), so the RNG
        // stream -- and therefore every sampled point -- is identical
        // to the per-element path; only the affine conversions batch.
        if (part == TracePart::FinalExpOnly || n <= 1)
            return ICurveHandle::sampleInputsBatch(rng, part, n);
        using FtT = typename TW::FtT;
        std::vector<JacPt<Fp>> j1;
        std::vector<JacPt<FtT>> j2;
        j1.reserve(static_cast<size_t>(n));
        j2.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            j1.push_back(sys_.randomG1Jac(rng));
            j2.push_back(sys_.randomG2Jac(rng));
        }
        const auto a1 = jacToAffineBatch(j1, &sys_.fpCtx());
        const auto a2 = jacToAffineBatch(j2, sys_.twistCurve().field);
        std::vector<std::vector<BigInt>> out;
        out.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            out.push_back(flattenPairInputs(sys_, a1[i], a2[i]));
        return out;
    }

    std::vector<BigInt>
    nativeReference(const std::vector<BigInt> &inputs,
                    TracePart part) const override
    {
        using FtT = typename TW::FtT;
        using GtT = typename TW::GtT;
        auto it = inputs.begin();
        std::vector<BigInt> out;
        if (part == TracePart::FinalExpOnly) {
            const GtT f =
                GtT::fromFpCoeffs(sys_.tower().gtCtx(), it);
            FINESSE_CHECK(it == inputs.end());
            sys_.engine().finalExp(f).toFpCoeffs(out);
            return out;
        }
        const Fp xP = Fp::fromFpCoeffs(&sys_.fpCtx(), it);
        const Fp yP = Fp::fromFpCoeffs(&sys_.fpCtx(), it);
        const FtT xQ = FtT::fromFpCoeffs(sys_.tower().ftCtx(), it);
        const FtT yQ = FtT::fromFpCoeffs(sys_.tower().ftCtx(), it);
        FINESSE_CHECK(it == inputs.end());
        if (part == TracePart::MillerOnly) {
            sys_.engine().miller(xP, yP, xQ, yQ).toFpCoeffs(out);
        } else {
            sys_.engine().pair(xP, yP, xQ, yQ).toFpCoeffs(out);
        }
        return out;
    }

  private:
    const CurveSystem<TW> &sys_;
};

} // namespace

size_t
setTraceCacheCapacityForTesting(size_t capacity)
{
    return g_traceCapacity.exchange(
        capacity == 0 ? kMaxTraceEntries : capacity,
        std::memory_order_relaxed);
}

TraceCacheStats
traceCacheStats()
{
    TraceCacheStats s;
    s.hits = g_traceHits.load(std::memory_order_relaxed);
    s.misses = g_traceMisses.load(std::memory_order_relaxed);
    s.coalesced = g_traceCoalesced.load(std::memory_order_relaxed);
    s.diskHits = g_traceDiskHits.load(std::memory_order_relaxed);
    s.diskMisses = g_traceDiskMisses.load(std::memory_order_relaxed);
    s.diskPuts = g_traceDiskPuts.load(std::memory_order_relaxed);
    s.diskRejects = g_traceDiskRejects.load(std::memory_order_relaxed);
    for (TraceShard &shard : traceShards()) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        s.entries += shard.slots.size();
    }
    return s;
}

void
clearTraceCache()
{
    // All shard locks, in index order (the only multi-shard lock
    // site, so the ordering is trivially deadlock-free). A concurrent
    // compile() either completed its lookup before we took the shard
    // (and holds its own shared_ptr to the slot, which stays valid)
    // or will miss afterwards and re-trace.
    std::array<TraceShard, kNumTraceShards> &shards = traceShards();
    std::array<std::unique_lock<std::mutex>, kNumTraceShards> locks;
    for (size_t i = 0; i < kNumTraceShards; ++i)
        locks[i] = std::unique_lock<std::mutex>(shards[i].mutex);
    size_t dropped = 0;
    for (TraceShard &shard : shards) {
        dropped += shard.slots.size();
        shard.slots.clear();
    }
    g_traceEntries.fetch_sub(dropped, std::memory_order_relaxed);
    g_traceHits.store(0, std::memory_order_relaxed);
    g_traceMisses.store(0, std::memory_order_relaxed);
    g_traceCoalesced.store(0, std::memory_order_relaxed);
    g_traceDiskHits.store(0, std::memory_order_relaxed);
    g_traceDiskMisses.store(0, std::memory_order_relaxed);
    g_traceDiskPuts.store(0, std::memory_order_relaxed);
    g_traceDiskRejects.store(0, std::memory_order_relaxed);
}

std::string
Framework::traceKey(const CompileOptions &opt) const
{
    return traceCacheKey(handle_->info().def.name, opt);
}

std::shared_ptr<const Module>
Framework::traceShared(const CompileOptions &opt, OptStats &stats) const
{
    return sharedFrontend(*handle_, opt, stats);
}

CompileResult
runBackend(Module module, const PipelineModel &hw, bool listSchedule,
           const std::vector<std::string> &backendPasses)
{
    OptStats stats;
    stats.instrsBefore = stats.instrsAfter = module.size();
    return runBackendPipeline(std::move(module), hw, listSchedule,
                              backendPasses.empty() ? backendPassNames()
                                                    : backendPasses,
                              stats);
}

const ICurveHandle &
curveHandle(const std::string &name)
{
    static std::mutex mtx;
    static std::map<std::string, std::unique_ptr<ICurveHandle>> cache;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = cache.find(name);
    if (it == cache.end()) {
        const CurveDef &def = findCurve(name);
        std::unique_ptr<ICurveHandle> handle;
        if (def.family == CurveFamily::BLS24) {
            handle = std::make_unique<
                CurveHandleImpl<NativeTower24, Tower24<SymFp>>>(
                curveSystem24(name));
        } else {
            handle = std::make_unique<
                CurveHandleImpl<NativeTower12, Tower12<SymFp>>>(
                curveSystem12(name));
        }
        it = cache.emplace(name, std::move(handle)).first;
    }
    return *it->second;
}

int
Framework::validateModule(const Module &m, int vectors, TracePart part,
                          u64 seed) const
{
    Rng rng(seed);
    FpCtx fp(info().p);
    int matches = 0;
    const auto allInputs =
        handle_->sampleInputsBatch(rng, part, vectors);
    for (int i = 0; i < vectors; ++i) {
        const auto &inputs = allInputs[static_cast<size_t>(i)];
        const auto want = handle_->nativeReference(inputs, part);
        matches += runModule(m, fp, inputs) == want;
    }
    return matches;
}

ValidationReport
Framework::validate(const CompileResult &result, int vectors,
                    TracePart part, u64 seed) const
{
    ValidationReport report;
    report.vectors = vectors;
    Rng rng(seed);
    FpCtx fp(info().p);
    const auto allInputs =
        handle_->sampleInputsBatch(rng, part, vectors);
    for (int i = 0; i < vectors; ++i) {
        const auto &inputs = allInputs[static_cast<size_t>(i)];
        const auto want = handle_->nativeReference(inputs, part);
        const auto gotModule =
            runModule(result.prog.module, fp, inputs);
        const auto gotAllocated = runAllocated(result.prog, fp, inputs);
        report.moduleMatches += gotModule == want;
        report.allocatedMatches += gotAllocated == want;
    }
    return report;
}

} // namespace finesse
