/**
 * @file
 * finesse::Framework - the public facade of the design framework.
 *
 * One Framework instance corresponds to one curve. It drives the full
 * agile flow of the paper: CodeGen (trace) -> IROpt -> BankAlloc ->
 * PackSched -> RegAlloc -> ASM/Link (encode), plus functional
 * cross-validation against the native library and cycle-accurate /
 * area / timing evaluation for the co-design loop.
 *
 * The curve dispatch is type-erased here so that the compiler,
 * simulators, DSE and every benchmark can iterate over all catalog
 * curves uniformly.
 */
#ifndef FINESSE_CORE_FRAMEWORK_H_
#define FINESSE_CORE_FRAMEWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "compiler/backend.h"
#include "compiler/passes.h"
#include "hwmodel/area.h"
#include "isa/encode.h"
#include "pairing/plan.h"
#include "sim/cycle.h"
#include "support/rng.h"

namespace finesse {

/** Options for one compilation (one point in the design space). */
struct CompileOptions
{
    VariantConfig variants;
    PipelineModel hw;
    bool optimize = true;     ///< run IROpt passes
    bool listSchedule = true; ///< Algorithm 2 vs program order ("Init")
    TracePart part = TracePart::Full;
};

/** Everything produced by one compilation. */
struct CompileResult
{
    CompiledProgram prog;
    OptStats opt;
    EncodedProgram binary;
    double compileSeconds = 0.0;

    size_t instrs() const { return prog.module.size(); }
};

/** Functional-validation outcome (simulator vs native library). */
struct ValidationReport
{
    int vectors = 0;
    int moduleMatches = 0;    ///< SSA-level simulation matches
    int allocatedMatches = 0; ///< post-RegAlloc register-file matches

    bool
    allPassed() const
    {
        return moduleMatches == vectors && allocatedMatches == vectors;
    }
};

/** Type-erased per-curve operations. */
class ICurveHandle
{
  public:
    virtual ~ICurveHandle() = default;

    virtual const CurveInfo &info() const = 0;
    virtual const PairingPlan &plan() const = 0;

    /** Trace + optimize + schedule + allocate + encode. */
    virtual CompileResult compile(const CompileOptions &opt) const = 0;

    /** CodeGen + IROpt only (front end). */
    virtual Module trace(const VariantConfig &variants, TracePart part,
                         bool optimize, OptStats *stats) const = 0;

    /** Random valid pairing inputs in the module I/O convention. */
    virtual std::vector<BigInt> sampleInputs(Rng &rng,
                                             TracePart part) const = 0;

    /** Reference computation in the module I/O convention. */
    virtual std::vector<BigInt>
    nativeReference(const std::vector<BigInt> &inputs,
                    TracePart part) const = 0;
};

/** Shared, cached handle for a catalog curve. */
const ICurveHandle &curveHandle(const std::string &name);

/**
 * Back end only: BankAlloc + PackSched + RegAlloc + encode a traced
 * module for one hardware model. Lets DSE sweeps reuse one front-end
 * trace across many hardware configurations.
 */
CompileResult runBackend(Module module, const PipelineModel &hw,
                         bool listSchedule = true);

/** The user-facing framework facade. */
class Framework
{
  public:
    explicit Framework(const std::string &curveName)
        : handle_(&curveHandle(curveName))
    {}

    const CurveInfo &info() const { return handle_->info(); }
    const ICurveHandle &handle() const { return *handle_; }

    /** Run the compilation pipeline. */
    CompileResult
    compile(const CompileOptions &opt = CompileOptions{}) const
    {
        return handle_->compile(opt);
    }

    /** Cross-validate a compiled program against the native library. */
    ValidationReport validate(const CompileResult &result, int vectors,
                              TracePart part = TracePart::Full,
                              u64 seed = 42) const;

    /** Cycle-accurate simulation of a compiled program. */
    CycleStats
    simulate(const CompileResult &result) const
    {
        return simulateCycles(result.prog);
    }

    /** Area report for a compiled program at a core count. */
    AreaReport
    area(const CompileResult &result, int cores = 1) const
    {
        AreaModel model;
        DesignPoint dp;
        dp.fpBits = info().logP();
        dp.longDepth = result.prog.hw.longLat;
        dp.numLinUnits = result.prog.hw.numLinUnits;
        dp.cores = cores;
        dp.imemBits = result.binary.imemBits();
        size_t words = 0;
        for (i32 w : result.prog.regs.maxRegsPerBank)
            words += static_cast<size_t>(w);
        dp.dmemWords = words;
        dp.numBanks = result.prog.banks.numBanks;
        return AreaModel().report(dp);
    }

  private:
    const ICurveHandle *handle_;
};

} // namespace finesse

#endif // FINESSE_CORE_FRAMEWORK_H_
