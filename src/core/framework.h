/**
 * @file
 * finesse::Framework - the public facade of the design framework.
 *
 * One Framework instance corresponds to one curve. It drives the full
 * agile flow of the paper: CodeGen (trace) -> IROpt -> BankAlloc ->
 * PackSched -> RegAlloc -> ASM/Link (encode), plus functional
 * cross-validation against the native library and cycle-accurate /
 * area / timing evaluation for the co-design loop.
 *
 * The curve dispatch is type-erased here so that the compiler,
 * simulators, DSE and every benchmark can iterate over all catalog
 * curves uniformly.
 */
#ifndef FINESSE_CORE_FRAMEWORK_H_
#define FINESSE_CORE_FRAMEWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "compiler/backend.h"
#include "compiler/passes.h"
#include "compiler/pipeline.h"
#include "hwmodel/area.h"
#include "isa/encode.h"
#include "pairing/plan.h"
#include "sim/cycle.h"
#include "support/rng.h"

namespace finesse {

/** Options for one compilation (one point in the design space). */
struct CompileOptions
{
    VariantConfig variants;
    PipelineModel hw;
    bool optimize = true;     ///< run IROpt passes
    bool listSchedule = true; ///< Algorithm 2 vs program order ("Init")
    TracePart part = TracePart::Full;

    /**
     * Explicit pass pipeline (see compiler/pipeline.h). Empty = the
     * standard pipeline. Front-end names ablate IROpt (subject to
     * `optimize`); when any backend name is present, exactly those
     * backend stages run in the given order.
     */
    std::vector<std::string> passes;

    /**
     * Reuse the process-wide front-end trace cache keyed by (curve,
     * variants, part, front-end pipeline): a traced + optimized module
     * is computed once and cloned for each hardware point.
     */
    bool useTraceCache = true;

    /**
     * Worker threads for design-space sweeps (Explorer::evaluateAll
     * and the parallel exploreVariants path). 0 = hardware
     * concurrency, 1 = serial. Does not affect a single compile() and
     * is not part of the trace-cache key.
     */
    int jobs = 0;

    /**
     * Worker SUBPROCESSES for design-space sweeps (the multi-process
     * fan-out, dse/distributor.h). 0 = stay in-process on `jobs`
     * threads; N >= 1 ships trace-key groups to N spawned workers
     * (config key `dse_workers`, CLI flag --dse-workers=N). Results
     * are bit-identical either way. Not part of the trace-cache key.
     */
    int dseWorkers = 0;

    /**
     * Front-end pass names implied by these options. Mirrors
     * backendPasses(): a pass list naming no front-end passes keeps
     * the standard IROpt pipeline (use `optimize = false` to disable
     * the front end entirely).
     */
    std::vector<std::string>
    frontendPasses() const
    {
        validatePasses();
        if (!optimize)
            return {};
        std::vector<std::string> out;
        for (const std::string &n : passes) {
            if (isFrontendPassName(n))
                out.push_back(n);
        }
        if (out.empty())
            return frontendPassNames();
        return out;
    }

    /** Backend stage names implied by these options. */
    std::vector<std::string>
    backendPasses() const
    {
        validatePasses();
        std::vector<std::string> out;
        for (const std::string &n : passes) {
            if (isBackendPassName(n))
                out.push_back(n);
        }
        if (out.empty())
            return backendPassNames();
        return out;
    }

    /**
     * Reject unregistered pass names: a typo'd programmatic list
     * must not silently fall back to the standard pipeline.
     */
    void
    validatePasses() const
    {
        for (const std::string &n : passes) {
            if (!isFrontendPassName(n) && !isBackendPassName(n))
                makePass(n); // fatal() with the known-pass list
        }
    }
};

/** Everything produced by one compilation. */
struct CompileResult
{
    CompiledProgram prog;
    OptStats opt;
    EncodedProgram binary;
    double compileSeconds = 0.0;

    size_t instrs() const { return prog.module.size(); }
};

/** Functional-validation outcome (simulator vs native library). */
struct ValidationReport
{
    int vectors = 0;
    int moduleMatches = 0;    ///< SSA-level simulation matches
    int allocatedMatches = 0; ///< post-RegAlloc register-file matches

    bool
    allPassed() const
    {
        return moduleMatches == vectors && allocatedMatches == vectors;
    }
};

/** Type-erased per-curve operations. */
class ICurveHandle
{
  public:
    virtual ~ICurveHandle() = default;

    virtual const CurveInfo &info() const = 0;
    virtual const PairingPlan &plan() const = 0;

    /** Trace + optimize + schedule + allocate + encode. */
    virtual CompileResult compile(const CompileOptions &opt) const = 0;

    /** CodeGen + IROpt only (front end). */
    virtual Module trace(const VariantConfig &variants, TracePart part,
                         bool optimize, OptStats *stats) const = 0;

    /** Random valid pairing inputs in the module I/O convention. */
    virtual std::vector<BigInt> sampleInputs(Rng &rng,
                                             TracePart part) const = 0;

    /**
     * @p n input sets drawn from the same RNG stream as @p n
     * successive sampleInputs calls (identical vectors), but with the
     * per-point Jacobian-to-affine conversions folded into one batch
     * inversion (Montgomery's trick): 2n field inversions become 2.
     * Validation input generation is the heaviest non-compile part of
     * a sweep's cross-check, and inversion dominates it.
     */
    virtual std::vector<std::vector<BigInt>>
    sampleInputsBatch(Rng &rng, TracePart part, int n) const
    {
        std::vector<std::vector<BigInt>> out;
        out.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            out.push_back(sampleInputs(rng, part));
        return out;
    }

    /** Reference computation in the module I/O convention. */
    virtual std::vector<BigInt>
    nativeReference(const std::vector<BigInt> &inputs,
                    TracePart part) const = 0;
};

/** Shared, cached handle for a catalog curve. */
const ICurveHandle &curveHandle(const std::string &name);

/**
 * Back end only: BankAlloc + PackSched + RegAlloc + encode a traced
 * module for one hardware model, driven through the backend
 * PassManager. Lets DSE sweeps reuse one front-end trace across many
 * hardware configurations. A non-empty @p backendPasses selects a
 * subset/order of the backend stages.
 */
CompileResult runBackend(Module module, const PipelineModel &hw,
                         bool listSchedule = true,
                         const std::vector<std::string> &backendPasses = {});

/**
 * Counters of the process-wide front-end trace cache. The cache is
 * sharded by key hash with one mutex per shard, so concurrent sweep
 * workers on different keys never contend; concurrent requests for
 * the SAME key are coalesced -- the first caller traces, the others
 * block on the in-flight entry instead of tracing redundantly.
 */
struct TraceCacheStats
{
    size_t hits = 0;      ///< ready in-memory entry found
    size_t misses = 0;    ///< in-memory misses (disk consulted if enabled)
    size_t coalesced = 0; ///< waited on another thread's in-flight trace
    size_t entries = 0;   ///< resident cached modules

    // Persistent artifact-cache legs (all zero when
    // $FINESSE_ARTIFACT_CACHE is unset: the disk is never consulted
    // and in-memory behavior is bit-identical to a build without the
    // cache).
    size_t diskHits = 0;    ///< traces loaded from the artifact cache
    size_t diskMisses = 0;  ///< disk consulted, no usable entry
    size_t diskPuts = 0;    ///< freshly-traced modules persisted
    size_t diskRejects = 0; ///< undecodable entries discarded loudly

    /** Front-end traces actually computed (not served by any cache). */
    size_t tracesPerformed() const { return misses - diskHits; }
};

/** Snapshot the trace-cache counters. */
TraceCacheStats traceCacheStats();

/**
 * Test-only: override the global trace-cache entry bound so the
 * eviction path can be exercised without tracing hundreds of keys.
 * 0 restores the built-in default. Returns the previous bound.
 */
size_t setTraceCacheCapacityForTesting(size_t capacity);

/**
 * Drop all cached traces and reset the counters (tests/benches).
 * Safe against concurrent compile() callers: all shard locks are
 * taken in index order, and in-flight traces complete normally for
 * their waiters (the results are simply not retained).
 */
void clearTraceCache();

/** The user-facing framework facade. */
class Framework
{
  public:
    explicit Framework(const std::string &curveName)
        : handle_(&curveHandle(curveName))
    {}

    const CurveInfo &info() const { return handle_->info(); }
    const ICurveHandle &handle() const { return *handle_; }

    /** Run the compilation pipeline. */
    CompileResult
    compile(const CompileOptions &opt = CompileOptions{}) const
    {
        return handle_->compile(opt);
    }

    /**
     * Canonical front-end trace-cache key of @p opt on this curve:
     * (curve, TracePart, front-end pipeline, variants). Two options
     * with equal keys share one cached trace; the batched DSE engine
     * groups design points by exactly this key.
     */
    std::string traceKey(const CompileOptions &opt) const;

    /**
     * Zero-clone handle to the (cached) front-end trace for @p opt.
     * The module is shared read-only with the cache and every other
     * holder -- never mutate it; run the backend against it via the
     * batched engine (compiler/backendprep.h). Fills @p stats with
     * the front-end pass stats. The handle keeps the trace alive
     * across cache eviction and clearTraceCache().
     */
    std::shared_ptr<const Module> traceShared(const CompileOptions &opt,
                                              OptStats &stats) const;

    /** Cross-validate a compiled program against the native library. */
    ValidationReport validate(const CompileResult &result, int vectors,
                              TracePart part = TracePart::Full,
                              u64 seed = 42) const;

    /**
     * Validate a bare SSA module (e.g. an ablation-optimized trace
     * that never went through the backend) against the native
     * library on the functional simulator. Returns the number of
     * matching vectors (== @p vectors when the module is correct).
     */
    int validateModule(const Module &m, int vectors,
                       TracePart part = TracePart::Full,
                       u64 seed = 42) const;

    /** Cycle-accurate simulation of a compiled program. */
    CycleStats
    simulate(const CompileResult &result) const
    {
        return simulateCycles(result.prog);
    }

    /** Area report for a compiled program at a core count. */
    AreaReport
    area(const CompileResult &result, int cores = 1) const
    {
        DesignPoint dp;
        dp.fpBits = info().logP();
        dp.longDepth = result.prog.hw.longLat;
        dp.numLinUnits = result.prog.hw.numLinUnits;
        dp.cores = cores;
        dp.imemBits = result.binary.imemBits();
        size_t words = 0;
        for (i32 w : result.prog.regs.maxRegsPerBank)
            words += static_cast<size_t>(w);
        dp.dmemWords = words;
        dp.numBanks = result.prog.banks.numBanks;
        return AreaModel().report(dp);
    }

  private:
    const ICurveHandle *handle_;
};

} // namespace finesse

#endif // FINESSE_CORE_FRAMEWORK_H_
