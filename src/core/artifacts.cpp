/**
 * @file
 * Artifact codec implementation. Trace payload layout:
 *
 *     u32 magic 'FTRC', u32 codec version
 *     BigInt p; i32 numValues
 *     u32 instCount; (u8 op, i32 dst, i32 a, i32 b) each
 *     u32 inputCount; i32 each
 *     u32 outputCount; i32 each
 *     u32 constCount; (i32 id, BigInt value) each
 *     OptStats (same encoding the DSE wire protocol ships)
 *
 * Decoding validates as it reads (op bytes range-checked, counts
 * bounded by remaining payload, exact-consumption check at the end)
 * and never throws across the API boundary: any malformed input --
 * which the DiskCache checksum already makes rare -- warns loudly and
 * returns false so the caller re-traces.
 */
#include "core/artifacts.h"

#include <cstdio>

#include "curve/catalog.h"

namespace finesse {

namespace {

constexpr u32 kTraceMagic = 0x43525446u; // "FTRC" little-endian

} // namespace

u64
artifactFingerprint()
{
    // Same FNV-1a step the catalog hash itself uses; folding the
    // codec version keeps old-layout entries unreachable after a bump.
    u64 h = catalogHash();
    h ^= kArtifactCodecVersion;
    h *= 1099511628211ull;
    return h;
}

std::string
traceArtifactKey(const std::string &traceKey)
{
    char fp[2 * 8 + 1];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(artifactFingerprint()));
    return "trace|" + std::string(fp) + "|" + traceKey;
}

void
putBigInt(ByteWriter &w, const BigInt &v)
{
    w.boolv(v.isNegative());
    const size_t n = v.limbCount();
    w.u32v(static_cast<u32>(n));
    for (size_t i = 0; i < n; ++i)
        w.u64v(v.limb(i));
}

BigInt
getBigInt(ByteReader &r)
{
    const bool negative = r.boolv();
    const u32 n = r.count(8);
    std::vector<u64> limbs(n);
    for (u32 i = 0; i < n; ++i)
        limbs[i] = r.u64v();
    BigInt v = BigInt::fromLimbs(limbs.data(), limbs.size());
    return negative ? -v : v;
}

void
putOptStats(ByteWriter &w, const OptStats &s)
{
    w.u64v(s.instrsBefore);
    w.u64v(s.instrsAfter);
    w.i32v(s.iterations);
    w.f64v(s.seconds);
    w.u32v(static_cast<u32>(s.passes.size()));
    for (const PassStats &ps : s.passes) {
        w.str(ps.name);
        w.i32v(ps.invocations);
        w.i64v(ps.instrsRemoved);
        w.f64v(ps.seconds);
        w.boolv(ps.frontend);
    }
}

OptStats
getOptStats(ByteReader &r)
{
    OptStats s;
    s.instrsBefore = r.u64v();
    s.instrsAfter = r.u64v();
    s.iterations = r.i32v();
    s.seconds = r.f64v();
    const u32 n = r.count(4 + 4 + 8 + 8 + 1); // minimal PassStats
    for (u32 i = 0; i < n; ++i) {
        PassStats ps;
        ps.name = r.str();
        ps.invocations = r.i32v();
        ps.instrsRemoved = r.i64v();
        ps.seconds = r.f64v();
        ps.frontend = r.boolv();
        s.passes.push_back(std::move(ps));
    }
    return s;
}

std::vector<u8>
encodeTraceArtifact(const Module &m, const OptStats &stats)
{
    ByteWriter w;
    w.u32v(kTraceMagic);
    w.u32v(kArtifactCodecVersion);
    putBigInt(w, m.p);
    w.i32v(m.numValues);
    w.u32v(static_cast<u32>(m.body.size()));
    for (const Inst &inst : m.body) {
        w.u8v(static_cast<u8>(inst.op));
        w.i32v(inst.dst);
        w.i32v(inst.a);
        w.i32v(inst.b);
    }
    w.u32v(static_cast<u32>(m.inputs.size()));
    for (i32 id : m.inputs)
        w.i32v(id);
    w.u32v(static_cast<u32>(m.outputs.size()));
    for (i32 id : m.outputs)
        w.i32v(id);
    w.u32v(static_cast<u32>(m.constants.size()));
    for (const ConstEntry &c : m.constants) {
        w.i32v(c.id);
        putBigInt(w, c.value);
    }
    putOptStats(w, stats);
    return w.take();
}

bool
decodeTraceArtifact(const std::vector<u8> &bytes, Module &m,
                    OptStats &stats)
{
    try {
        ByteReader r(bytes);
        if (r.u32v() != kTraceMagic)
            fatal("trace artifact: bad magic");
        if (r.u32v() != kArtifactCodecVersion)
            fatal("trace artifact: codec version mismatch");
        Module out;
        out.p = getBigInt(r);
        out.numValues = r.i32v();
        const u32 instCount = r.count(1 + 4 + 4 + 4);
        out.body.reserve(instCount);
        for (u32 i = 0; i < instCount; ++i) {
            Inst inst;
            const u8 op = r.u8v();
            if (op > static_cast<u8>(Op::Icv))
                fatal("trace artifact: bad op byte ",
                      static_cast<int>(op));
            inst.op = static_cast<Op>(op);
            inst.dst = r.i32v();
            inst.a = r.i32v();
            inst.b = r.i32v();
            out.body.push_back(inst);
        }
        const u32 inCount = r.count(4);
        for (u32 i = 0; i < inCount; ++i)
            out.inputs.push_back(r.i32v());
        const u32 outCount = r.count(4);
        for (u32 i = 0; i < outCount; ++i)
            out.outputs.push_back(r.i32v());
        const u32 constCount = r.count(4 + 1 + 4);
        for (u32 i = 0; i < constCount; ++i) {
            ConstEntry c;
            c.id = r.i32v();
            c.value = getBigInt(r);
            out.constants.push_back(std::move(c));
        }
        stats = getOptStats(r);
        r.expectEnd();
        m = std::move(out);
        return true;
    } catch (const FatalError &e) {
        std::fprintf(stderr,
                     "finesse: discarding undecodable trace artifact "
                     "(%s)\n",
                     e.what());
        return false;
    }
}

} // namespace finesse
