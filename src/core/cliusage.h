/**
 * @file
 * The single source of truth for finesse_cli's surface: every
 * subcommand and every accepted flag, each with a one-line meaning.
 * `--help` renders these tables verbatim, and tests/test_cli_help.cpp
 * audits them two ways — every table entry must appear in the help
 * output, and every `--flag` / command literal parsed by
 * tools/finesse_cli.cpp (and the dse-worker entry point) must have a
 * table entry. Adding a flag without documenting it here is a test
 * failure, not a doc drift.
 */
#ifndef FINESSE_CORE_CLIUSAGE_H_
#define FINESSE_CORE_CLIUSAGE_H_

#include <cstddef>
#include <string>

namespace finesse {

struct CliDoc
{
    const char *name; ///< as printed; flags keep their =<value> shape
    const char *help; ///< one line of semantics
};

inline constexpr CliDoc kCliCommands[] = {
    {"compile", "trace + optimize + schedule + encode; print statistics"},
    {"validate", "compile, then cross-validate on the functional simulator"},
    {"simulate", "compile, then cycle-accurate simulation"},
    {"area", "compile, then area/timing report (1/4/8 cores)"},
    {"dse", "exhaustive operator-variant sweep on the configured hardware"},
    {"dse-search",
     "seeded Pareto-frontier search over variants x hardware; "
     "deterministic for a fixed --search-seed"},
    {"dse-worker",
     "evaluate DSE groups for a master (pipe via stdin/stdout, or TCP "
     "with --listen); spawned by the sweep, rarely typed by hand"},
    {"disasm", "compile and print the head of the encoded binary"},
    {"deploy",
     "compile and save a program image: finesse_cli deploy <config> "
     "<image-file>"},
    {"exec",
     "execute a saved image on hex inputs: finesse_cli exec "
     "<image-file> 0x12 0x34 ..."},
    {"serve",
     "batch pairing-verification server: reads request commands from "
     "stdin (or one TCP client with --serve-port), fuses admitted "
     "requests into RLC multi-pairings, prints verdicts and counters"},
    {"verify-batch",
     "one-shot synchronous batch verification of a synthetic --workload "
     "mix; exits non-zero if any verdict disagrees with per-request "
     "single verification or with the --corrupt expectation"},
};

inline constexpr CliDoc kCliFlags[] = {
    {"--passes=<list>",
     "comma-separated pass pipeline (ablation): front-end subset of "
     "constfold,zerooneprop,strengthreduce,gvn,dce and/or backend "
     "subset of bankalloc,packsched,regalloc,encode"},
    {"--pass-stats", "print the per-pass instruction/time attribution"},
    {"--no-trace-cache", "disable the front-end trace cache"},
    {"--jobs=N",
     "worker threads: `dse` sweep fan-out and `serve`/`verify-batch` "
     "verifier lanes (0 = hardware concurrency, 1 = serial)"},
    {"--dse-workers=N",
     "run the `dse` sweep on N worker subprocesses (0 = in-process "
     "on --jobs threads)"},
    {"--dse-transport={pipe|loopback-tcp}",
     "transport for locally spawned dse workers (default "
     "FINESSE_DSE_TRANSPORT env / pipe)"},
    {"--dse-hosts=host:port,...",
     "pool of running `dse-worker --listen` peers; the token \"local\" "
     "pins a local slot (default FINESSE_DSE_HOSTS env / all-local)"},
    {"--search-seed=N",
     "RNG seed of the `dse-search` loop (default 1); a fixed seed "
     "gives a bit-identical frontier for any --jobs/--dse-workers"},
    {"--generations=N", "`dse-search` generations (default 8)"},
    {"--population=N", "`dse-search` genomes per generation (default 32)"},
    {"--objective={cycles|throughput|thpt-per-area|area}",
     "scalar winner of `dse-search` (default thpt-per-area)"},
    {"--artifact-cache=DIR",
     "persistent artifact cache at DIR (exported as "
     "FINESSE_ARTIFACT_CACHE so spawned workers share it; empty DIR "
     "disables)"},
    {"--batch=N",
     "`serve`/`verify-batch`: max requests fused into one RLC "
     "multi-pairing (default 16)"},
    {"--queue=N",
     "`serve`: admission-queue bound; a submit against a full queue "
     "is bounced with a retry-after hint (default 256)"},
    {"--linger-ms=N",
     "`serve`: how long a partial batch waits for stragglers before "
     "verifying (default 2; 0 = latency-greedy)"},
    {"--serve-port=N",
     "`serve`: accept one TCP client on 127.0.0.1:N instead of "
     "reading stdin (N=0 picks a free port, printed in the banner)"},
    {"--serve-seed=N",
     "`serve`/`verify-batch`: base seed of the per-batch RLC scalars "
     "and of the synthetic workload generator (default 0x5e55e)"},
    {"--workload=kind:count,...",
     "`verify-batch` request mix over bls|kzg|zk, e.g. "
     "bls:8,kzg:4,zk:4 (default bls:16)"},
    {"--corrupt=<i,j,...>",
     "`verify-batch`: zero-based indices (into the concatenated "
     "--workload stream) to corrupt; these must verify as Reject"},
    {"--listen=host:port",
     "`dse-worker`: serve masters over TCP instead of stdin/stdout "
     "(port 0 = ephemeral, announced in the banner)"},
    {"--connect=host:port",
     "`dse-worker`: dial a waiting master (loopback-tcp transport; "
     "set by the spawner, rarely typed by hand)"},
    {"--max-accepts=N",
     "`dse-worker --listen`: exit after serving N masters (-1 = "
     "forever; keeps chaos tests bounded)"},
    {"--help", "print this help and exit 0"},
};

/** The full help text: one line per command and flag, aligned. */
inline std::string
cliUsageText()
{
    std::string out;
    out += "usage: finesse_cli <command> [config-file] [flags]\n";
    out += "  config-file: `key = value` lines (core/options.h); "
           "omitted = BN254N, paper hardware model\n";
    out += "commands:\n";
    for (const CliDoc &d : kCliCommands) {
        out += "  ";
        out += d.name;
        for (size_t n = std::string(d.name).size(); n < 14; ++n)
            out += ' ';
        out += d.help;
        out += '\n';
    }
    out += "flags:\n";
    for (const CliDoc &d : kCliFlags) {
        out += "  ";
        out += d.name;
        const size_t len = std::string(d.name).size();
        if (len < 26) {
            for (size_t n = len; n < 26; ++n)
                out += ' ';
        } else {
            out += "\n                            ";
        }
        out += d.help;
        out += '\n';
    }
    return out;
}

} // namespace finesse

#endif // FINESSE_CORE_CLIUSAGE_H_
