/**
 * @file
 * Little-endian binary payload codec shared by the DSE wire protocol
 * (dse/wire.h) and the persistent artifact cache (core/artifacts.h).
 *
 * ByteWriter appends fixed-width little-endian integers, doubles as
 * raw IEEE-754 bit patterns (both consumers require BIT-identical
 * round trips -- no text encoding is ever allowed), and strings /
 * vectors as a u32 count followed by the elements. ByteReader is the
 * fully bounds-checked decoder over a borrowed byte range: truncated,
 * oversized or corrupted input throws FatalError -- never undefined
 * behavior -- and element counts are sanity-bounded by the bytes
 * actually present, so a corrupted count can never drive a huge
 * allocation or an out-of-bounds read.
 */
#ifndef FINESSE_SUPPORT_BYTECODEC_H_
#define FINESSE_SUPPORT_BYTECODEC_H_

#include <cstring>
#include <string>
#include <vector>

#include "support/common.h"

namespace finesse {

/** Append-only payload encoder (see file comment for the format). */
class ByteWriter
{
  public:
    void
    u8v(u8 v)
    {
        bytes_.push_back(v);
    }

    void
    u32v(u32 v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void
    u64v(u64 v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void i64v(i64 v) { u64v(static_cast<u64>(v)); }
    void i32v(i32 v) { u32v(static_cast<u32>(v)); }
    void boolv(bool v) { u8v(v ? 1 : 0); }

    /** Raw IEEE-754 bits: bit-identical round trip, NaNs included. */
    void
    f64v(double v)
    {
        u64 bits;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, sizeof bits);
        u64v(bits);
    }

    void
    str(const std::string &s)
    {
        u32v(static_cast<u32>(s.size()));
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    const std::vector<u8> &bytes() const { return bytes_; }
    std::vector<u8> take() { return std::move(bytes_); }

  private:
    std::vector<u8> bytes_;
};

/**
 * Bounds-checked payload decoder over a borrowed byte range. Every
 * accessor validates the remaining length first and throws FatalError
 * on truncation.
 */
class ByteReader
{
  public:
    ByteReader(const u8 *data, size_t size) : data_(data), size_(size) {}
    explicit ByteReader(const std::vector<u8> &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {}

    size_t remaining() const { return size_ - pos_; }

    /** Decoders must consume the payload exactly; call when done. */
    void
    expectEnd() const
    {
        if (pos_ != size_)
            fatal("codec: ", size_ - pos_, " trailing bytes in payload");
    }

    u8
    u8v()
    {
        need(1);
        return data_[pos_++];
    }

    u32
    u32v()
    {
        need(4);
        u32 v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<u32>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    u64
    u64v()
    {
        need(8);
        u64 v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<u64>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    i64 i64v() { return static_cast<i64>(u64v()); }
    i32 i32v() { return static_cast<i32>(u32v()); }

    bool
    boolv()
    {
        const u8 v = u8v();
        if (v > 1)
            fatal("codec: bad bool byte ", static_cast<int>(v));
        return v == 1;
    }

    double
    f64v()
    {
        const u64 bits = u64v();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string
    str()
    {
        const u32 n = u32v();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    /**
     * Element count for a vector whose elements occupy at least
     * @p minElemBytes each: rejects counts the remaining payload
     * cannot possibly hold.
     */
    u32
    count(size_t minElemBytes)
    {
        const u32 n = u32v();
        if (minElemBytes != 0 && n > remaining() / minElemBytes)
            fatal("codec: element count ", n, " exceeds payload");
        return n;
    }

  private:
    void
    need(size_t n) const
    {
        if (n > remaining())
            fatal("codec: truncated payload (need ", n, ", have ",
                  remaining(), ")");
    }

    const u8 *data_;
    size_t size_;
    size_t pos_ = 0;
};

} // namespace finesse

#endif // FINESSE_SUPPORT_BYTECODEC_H_
