/**
 * @file
 * Minimal fixed-width text table printer used by the benchmark harnesses to
 * emit paper-style tables (Table 6, Table 7, ...) on stdout.
 */
#ifndef FINESSE_SUPPORT_TABLE_H_
#define FINESSE_SUPPORT_TABLE_H_

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

namespace finesse {

/** Accumulates rows of strings and prints them with aligned columns. */
class TextTable
{
  public:
    /** Set the header row. */
    void
    header(std::vector<std::string> cells)
    {
        header_ = std::move(cells);
    }

    /** Append a data row. */
    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Render the table to @p os with two-space column separation. */
    void
    print(std::ostream &os = std::cout) const
    {
        std::vector<size_t> widths;
        auto grow = [&](const std::vector<std::string> &cells) {
            if (cells.size() > widths.size())
                widths.resize(cells.size(), 0);
            for (size_t i = 0; i < cells.size(); ++i)
                widths[i] = std::max(widths[i], cells[i].size());
        };
        grow(header_);
        for (const auto &r : rows_)
            grow(r);

        auto emit = [&](const std::vector<std::string> &cells) {
            for (size_t i = 0; i < cells.size(); ++i) {
                os << cells[i];
                if (i + 1 < cells.size())
                    os << std::string(widths[i] - cells[i].size() + 2, ' ');
            }
            os << '\n';
        };
        if (!header_.empty()) {
            emit(header_);
            size_t total = 0;
            for (size_t w : widths)
                total += w + 2;
            os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
        }
        for (const auto &r : rows_)
            emit(r);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace finesse

#endif // FINESSE_SUPPORT_TABLE_H_
