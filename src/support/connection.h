/**
 * @file
 * Transport abstraction of the distributed sweep: the master talks to
 * every worker through a `Connection` -- a byte stream plus identity
 * and kill/reap semantics -- and never cares whether the bytes ride a
 * pipe pair to a forked child or a TCP socket to another host.
 *
 * Three implementations:
 *
 *   - SubprocessConnection: the PR 5/7 pipe transport (fork/exec, the
 *     child's stdin/stdout are the stream; terminate = SIGKILL+reap).
 *   - LoopbackTcpConnection: subprocess lifecycle, socket data path.
 *     The master binds an ephemeral loopback listener, spawns
 *     `<self> dse-worker --connect=127.0.0.1:<port>`, and accepts the
 *     child's connection -- a genuine TCP stream with local kill/reap
 *     identity, so CI exercises the socket path with no remote hosts.
 *   - TcpConnection: a remote `dse-worker --listen=host:port` peer.
 *     terminate() can only close the socket (no pid to signal); the
 *     abandoned remote sees EOF, finishes or discards its group, and
 *     re-listens -- and because its fd is closed master-side, a stale
 *     result can never reach the master, so re-dispatch stays safe.
 *
 * readSome() returns kReadAgainFd when a read would block: the peer
 * is alive, just quiet. Treating that as death is the classic EAGAIN
 * bug this interface exists to centralize away.
 */
#ifndef FINESSE_SUPPORT_CONNECTION_H_
#define FINESSE_SUPPORT_CONNECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "support/socket.h"
#include "support/subprocess.h"

namespace finesse {

/** One master<->worker byte stream with lifecycle semantics. */
class Connection
{
  public:
    virtual ~Connection() = default;

    /** Fd the master poll()s for readability. */
    virtual int pollFd() const = 0;

    /** Whole-buffer write to the worker; false on any real error. */
    virtual bool writeAll(const void *data, size_t n) = 0;

    /**
     * One read from the worker: byte count, 0 on EOF, kReadAgainFd
     * when the read would block (alive, no data), -1 on error.
     */
    virtual long readSome(void *buf, size_t n) = 0;

    /**
     * Half-close the master->worker direction so the worker's next
     * read sees EOF (clean-shutdown signal of the wire protocol); the
     * worker->master direction stays readable.
     */
    virtual void closeWrite() = 0;

    /**
     * Hard stop: SIGKILL + reap a local child, close a remote's
     * socket. Idempotent. Returns true when a local child died by
     * signal (the stats distinguish signaled from exited deaths;
     * remote peers report false -- there is nothing to reap).
     */
    virtual bool terminate() = 0;

    /** Graceful shutdown: closeWrite, then reap/close. Idempotent. */
    virtual void finish() = 0;

    /** Identity for diagnostics: "pid 1234" / "host:port". */
    virtual std::string describe() const = 0;
};

/** Pipe transport: fork/exec @p cmd with @p env overrides. Throws
 *  FatalError when fork/pipe fail (exec failure = child exit 127). */
std::unique_ptr<Connection>
spawnSubprocessConnection(const std::vector<std::string> &cmd,
                          const std::vector<std::string> &env);

/**
 * Loopback TCP transport: spawn @p cmd with `--connect=127.0.0.1:P`
 * appended (P = a fresh ephemeral listener) and accept the child's
 * connection within @p acceptTimeoutMs. Returns nullptr with @p err
 * set on listen/accept failure -- the child, if spawned, is killed
 * and reaped first.
 */
std::unique_ptr<Connection>
spawnLoopbackTcpConnection(const std::vector<std::string> &cmd,
                           const std::vector<std::string> &env,
                           int acceptTimeoutMs, std::string *err);

/**
 * Remote TCP transport: connect to a `dse-worker --listen` peer at
 * @p to within @p connectTimeoutMs. Returns nullptr with @p err set
 * on failure (refused, timeout, resolution).
 */
std::unique_ptr<Connection> connectTcpWorker(const HostPort &to,
                                             int connectTimeoutMs,
                                             std::string *err);

} // namespace finesse

#endif // FINESSE_SUPPORT_CONNECTION_H_
