/**
 * @file
 * Minimal POSIX subprocess with piped stdin/stdout, used by the
 * multi-process DSE distributor to spawn and talk to worker
 * processes. stderr is inherited so worker diagnostics land in the
 * parent's stream. No external dependencies: fork/execve + pipes.
 */
#ifndef FINESSE_SUPPORT_SUBPROCESS_H_
#define FINESSE_SUPPORT_SUBPROCESS_H_

#include <string>
#include <vector>

#include "support/common.h"

namespace finesse {

/**
 * One spawned child process. The parent writes frames to stdinFd()
 * and reads from stdoutFd(). Destruction kills (SIGKILL) and reaps a
 * still-running child; call closeStdin() + wait() for a clean exit.
 */
class Subprocess
{
  public:
    Subprocess() = default;
    ~Subprocess();

    Subprocess(const Subprocess &) = delete;
    Subprocess &operator=(const Subprocess &) = delete;
    Subprocess(Subprocess &&other) noexcept { *this = std::move(other); }
    Subprocess &operator=(Subprocess &&other) noexcept;

    /**
     * Fork + exec @p argv (argv[0] is the executable path; no PATH
     * search). @p extraEnv entries ("KEY=VALUE") OVERRIDE any parent
     * environment entry with the same KEY (getenv returns the first
     * match, so a plain append could never override an inherited
     * value -- the distributor relies on per-worker fault plans
     * shadowing an ambient FINESSE_DSE_FAULT). Throws FatalError when
     * the pipes or fork fail; exec failure in the child surfaces as
     * exit code 127. Spawning also ignores SIGPIPE process-wide
     * (once) so a write to a crashed worker reports EPIPE instead of
     * killing us.
     */
    void spawn(const std::vector<std::string> &argv,
               const std::vector<std::string> &extraEnv = {});

    bool running() const { return pid_ > 0; }
    int pid() const { return pid_; }
    int stdinFd() const { return stdinFd_; }
    int stdoutFd() const { return stdoutFd_; }

    /**
     * Write the whole buffer to the child's stdin; returns false on
     * any error (notably EPIPE after a child crash).
     */
    bool writeAll(const void *data, size_t n);

    /**
     * One blocking read from the child's stdout into @p buf. Returns
     * the byte count, 0 on EOF (child closed / exited), -1 on error.
     */
    long readSome(void *buf, size_t n);

    /** Close our write end; the child sees EOF on its stdin. */
    void closeStdin();

    /** Send a signal (e.g. SIGKILL) to a running child. */
    void kill(int sig);

    /**
     * Reap the child (blocking). Returns the raw waitpid status; use
     * exitedCleanly() for the common check. No-op -1 when not running.
     */
    int wait();

    /** True when @p waitStatus is a normal exit with code 0. */
    static bool exitedCleanly(int waitStatus);

    /** True when @p waitStatus records death by signal. */
    static bool wasSignaled(int waitStatus);

    /** Terminating signal number (0 when not signaled). */
    static int termSignal(int waitStatus);

    /** Exit code of a normal exit (-1 when signaled/not exited). */
    static int exitCode(int waitStatus);

  private:
    void closeFds();

    int pid_ = -1;
    int stdinFd_ = -1;
    int stdoutFd_ = -1;
};

/**
 * Write the whole buffer to @p fd, retrying on EINTR and waiting out
 * EAGAIN/EWOULDBLOCK via poll(POLLOUT); false on any real error
 * (EPIPE included). The one write loop shared by
 * Subprocess::writeAll (master -> worker pipes), the worker's result
 * stream, and the socket transport.
 */
bool writeAllFd(int fd, const void *data, size_t n);

/**
 * readSomeFd returns this when the read would block (EAGAIN on a
 * nonblocking fd): the fd is alive, there is just no data yet.
 * Callers must poll again -- treating it as death loses a healthy
 * worker.
 */
inline constexpr long kReadAgainFd = -2;

/**
 * One read from @p fd: byte count, 0 on EOF, kReadAgainFd when the
 * read would block, -1 on a real error. EINTR is retried internally.
 */
long readSomeFd(int fd, void *buf, size_t n);

/**
 * Ignore SIGPIPE process-wide (idempotent): a peer that died mid-frame
 * must surface as EPIPE from write(), not as a fatal signal. Called by
 * Subprocess::spawn and by worker loops writing to inherited pipes.
 */
void ignoreSigpipe();

/**
 * Absolute path of the running executable (/proc/self/exe); the
 * default worker command re-executes the current binary in worker
 * mode, so masters and workers are always the same build.
 */
std::string selfExePath();

} // namespace finesse

#endif // FINESSE_SUPPORT_SUBPROCESS_H_
