/**
 * @file
 * Common support utilities: fatal-error handling, checked assertions and
 * small formatting helpers shared by every Finesse module.
 *
 * Follows the gem5 convention: panic() marks framework bugs (should never
 * happen), fatal() marks user/configuration errors.
 */
#ifndef FINESSE_SUPPORT_COMMON_H_
#define FINESSE_SUPPORT_COMMON_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace finesse {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u128 = unsigned __int128;

/**
 * Force-inline for short arithmetic kernels whose call overhead rivals
 * their body cost. Use sparingly: per-call-site code growth is real.
 */
#if defined(__GNUC__) || defined(__clang__)
#define FINESSE_FORCE_INLINE inline __attribute__((always_inline))
#else
#define FINESSE_FORCE_INLINE inline
#endif

/** Exception thrown for unrecoverable internal errors (framework bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown for invalid user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

/** Concatenate a variadic message into one string via a string stream. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Abort with a framework-bug diagnostic. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concatMessage(std::forward<Args>(args)...));
}

/** Abort with a user-error diagnostic. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concatMessage(std::forward<Args>(args)...));
}

/** Seconds elapsed since @p start on the steady clock. */
inline double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Internal-invariant check; throws PanicError when violated. */
#define FINESSE_CHECK(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::finesse::panic("check failed: ", #cond, " @ ", __FILE__, ":", \
                             __LINE__, " ", ##__VA_ARGS__);                 \
        }                                                                   \
    } while (0)

/** User-facing validation check; throws FatalError when violated. */
#define FINESSE_REQUIRE(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::finesse::fatal("requirement failed: ", #cond, " ",            \
                             ##__VA_ARGS__);                                \
        }                                                                   \
    } while (0)

} // namespace finesse

#endif // FINESSE_SUPPORT_COMMON_H_
