/**
 * @file
 * Deterministic pseudo-random number generator used across tests,
 * benchmarks and curve setup. A fixed default seed makes every experiment
 * in the repository reproducible run-to-run.
 */
#ifndef FINESSE_SUPPORT_RNG_H_
#define FINESSE_SUPPORT_RNG_H_

#include <cstdint>

#include "support/common.h"

namespace finesse {

/**
 * xoshiro256** generator. Small, fast and statistically strong enough for
 * generating test vectors and random field elements (not for production
 * key material; this repository is a research artifact).
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x46494e4553534531ull) // "FINESSE1"
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        u64 x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next uniformly distributed 64-bit word. */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    u64
    below(u64 bound)
    {
        FINESSE_CHECK(bound != 0);
        // Rejection sampling to avoid modulo bias.
        const u64 threshold = (0 - bound) % bound;
        for (;;) {
            const u64 r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

    u64 state_[4];
};

} // namespace finesse

#endif // FINESSE_SUPPORT_RNG_H_
