/**
 * @file
 * TCP socket layer implementation. The connect path is the
 * deliberately fussy part: socket(SOCK_NONBLOCK) + connect() +
 * poll(POLLOUT) against a deadline recomputed across EINTR, then
 * getsockopt(SO_ERROR) to learn the real outcome -- a POLLOUT wake
 * means "connect finished", not "connect succeeded".
 */
#include "support/socket.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace finesse {

namespace {

using Clock = std::chrono::steady_clock;

void
setErr(std::string *err, const std::string &what)
{
    if (err)
        *err = what;
}

/** Remaining ms until @p deadline; <0 when expired. -1 stays -1. */
int
remainingMs(Clock::time_point deadline, bool infinite)
{
    if (infinite)
        return -1;
    const i64 ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       deadline - Clock::now())
                       .count();
    return ms > 0 ? static_cast<int>(std::min<i64>(ms, 1 << 30)) : 0;
}

/** NODELAY + KEEPALIVE on an established stream; false on error. */
bool
tuneStream(int fd, std::string *err)
{
    int one = 1;
    if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) !=
        0) {
        setErr(err, std::string("setsockopt TCP_NODELAY: ") +
                        std::strerror(errno));
        return false;
    }
    if (::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof one) !=
        0) {
        setErr(err, std::string("setsockopt SO_KEEPALIVE: ") +
                        std::strerror(errno));
        return false;
    }
    return true;
}

bool
setBlocking(int fd, bool blocking, std::string *err)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) {
        setErr(err,
               std::string("fcntl F_GETFL: ") + std::strerror(errno));
        return false;
    }
    const int want =
        blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
    if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
        setErr(err,
               std::string("fcntl F_SETFL: ") + std::strerror(errno));
        return false;
    }
    return true;
}

/** getaddrinfo for a stream socket; nullptr + err on failure. */
addrinfo *
resolve(const HostPort &hp, bool forListen, std::string *err)
{
    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_ADDRCONFIG;
    if (forListen)
        hints.ai_flags |= AI_PASSIVE;
    const std::string service = std::to_string(hp.port);
    addrinfo *res = nullptr;
    const int rc =
        ::getaddrinfo(hp.host.empty() ? nullptr : hp.host.c_str(),
                      service.c_str(), &hints, &res);
    if (rc != 0) {
        setErr(err, "resolve " + hp.describe() + ": " +
                        ::gai_strerror(rc));
        return nullptr;
    }
    return res;
}

} // namespace

std::string
HostPort::describe() const
{
    const bool v6 = host.find(':') != std::string::npos;
    return (v6 ? "[" + host + "]" : host) + ":" + std::to_string(port);
}

HostPort
parseHostPort(const std::string &spec)
{
    HostPort hp;
    size_t colon;
    if (!spec.empty() && spec[0] == '[') {
        // Bracketed IPv6 literal: [::1]:9000.
        const size_t close = spec.find(']');
        if (close == std::string::npos || close + 1 >= spec.size() ||
            spec[close + 1] != ':')
            fatal("bad host:port '", spec, "' (expected [v6]:port)");
        hp.host = spec.substr(1, close - 1);
        colon = close + 1;
    } else {
        colon = spec.rfind(':');
        if (colon == std::string::npos || colon == 0)
            fatal("bad host:port '", spec, "' (expected host:port)");
        hp.host = spec.substr(0, colon);
        // An unbracketed second colon means a bare IPv6 literal, which
        // is ambiguous with the port separator.
        if (hp.host.find(':') != std::string::npos)
            fatal("bad host:port '", spec,
                  "' (bracket IPv6 literals: [addr]:port)");
    }
    const std::string portText = spec.substr(colon + 1);
    char *end = nullptr;
    const long port = std::strtol(portText.c_str(), &end, 10);
    if (portText.empty() || *end != '\0' || port < 0 || port > 65535)
        fatal("bad port '", portText, "' in '", spec, "'");
    hp.port = static_cast<int>(port);
    return hp;
}

int
tcpListen(const HostPort &at, int backlog, std::string *err,
          int *boundPort)
{
    addrinfo *res = resolve(at, true, err);
    if (!res)
        return -1;
    std::string lastErr = "no usable address";
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0) {
            lastErr = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
            ::listen(fd, backlog) != 0) {
            lastErr = std::string("bind/listen ") + at.describe() +
                      ": " + std::strerror(errno);
            ::close(fd);
            fd = -1;
            continue;
        }
        break;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        setErr(err, lastErr);
        return -1;
    }
    if (boundPort) {
        sockaddr_storage ss;
        socklen_t len = sizeof ss;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&ss),
                          &len) != 0) {
            setErr(err, std::string("getsockname: ") +
                            std::strerror(errno));
            ::close(fd);
            return -1;
        }
        if (ss.ss_family == AF_INET)
            *boundPort = ntohs(
                reinterpret_cast<sockaddr_in *>(&ss)->sin_port);
        else
            *boundPort = ntohs(
                reinterpret_cast<sockaddr_in6 *>(&ss)->sin6_port);
    }
    return fd;
}

int
tcpAccept(int listenFd, int timeoutMs, std::string *err)
{
    setErr(err, "");
    const bool infinite = timeoutMs < 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(infinite ? 0
                                                          : timeoutMs);
    for (;;) {
        pollfd pfd = {listenFd, POLLIN, 0};
        const int rc =
            ::poll(&pfd, 1, remainingMs(deadline, infinite));
        if (rc < 0) {
            if (errno == EINTR)
                continue; // deadline recomputed above
            setErr(err, std::string("poll: ") + std::strerror(errno));
            return -1;
        }
        if (rc == 0)
            return -1; // timeout: err stays empty
        const int fd = ::accept4(listenFd, nullptr, nullptr,
                                 SOCK_CLOEXEC);
        if (fd < 0) {
            // The pending connection can evaporate between poll and
            // accept (peer RST) -- go around, it is not an error.
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK || errno == ECONNABORTED)
                continue;
            setErr(err,
                   std::string("accept: ") + std::strerror(errno));
            return -1;
        }
        if (!tuneStream(fd, err)) {
            ::close(fd);
            return -1;
        }
        return fd;
    }
}

int
tcpConnect(const HostPort &to, int timeoutMs, std::string *err)
{
    addrinfo *res = resolve(to, false, err);
    if (!res)
        return -1;
    const bool infinite = timeoutMs < 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(infinite ? 0
                                                          : timeoutMs);
    std::string lastErr = "no usable address";
    int fd = -1;
    for (addrinfo *ai = res; ai && fd < 0; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family,
                      ai->ai_socktype | SOCK_CLOEXEC | SOCK_NONBLOCK,
                      ai->ai_protocol);
        if (fd < 0) {
            lastErr = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        int rc;
        do {
            rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0 && errno == EINPROGRESS) {
            // Nonblocking connect in flight: POLLOUT fires when it
            // RESOLVES; SO_ERROR then says how.
            for (;;) {
                pollfd pfd = {fd, POLLOUT, 0};
                rc = ::poll(&pfd, 1, remainingMs(deadline, infinite));
                if (rc < 0 && errno == EINTR)
                    continue;
                break;
            }
            if (rc == 0) {
                lastErr = "connect " + to.describe() + ": timed out";
                rc = -1;
            } else if (rc > 0) {
                int soerr = 0;
                socklen_t len = sizeof soerr;
                if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr,
                                 &len) != 0)
                    soerr = errno;
                if (soerr == 0) {
                    rc = 0;
                } else {
                    lastErr = "connect " + to.describe() + ": " +
                              std::strerror(soerr);
                    rc = -1;
                }
            } else {
                lastErr =
                    std::string("poll: ") + std::strerror(errno);
            }
        } else if (rc < 0) {
            lastErr = "connect " + to.describe() + ": " +
                      std::strerror(errno);
        }
        if (rc < 0) {
            ::close(fd);
            fd = -1;
        }
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        setErr(err, lastErr);
        return -1;
    }
    if (!setBlocking(fd, true, err) || !tuneStream(fd, err)) {
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace finesse
