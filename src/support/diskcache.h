/**
 * @file
 * Persistent content-addressed artifact cache. One DiskCache instance
 * owns one directory; entries are opaque byte payloads addressed by a
 * caller-chosen string key (the callers fold a build/catalog
 * fingerprint into every key, see core/artifacts.h).
 *
 * Durability and concurrency model:
 *
 *  - put() writes to a unique temporary file in the cache directory
 *    and publishes it with rename(2). Publication is atomic: a reader
 *    (same process, another sweep worker, or a concurrent CI job)
 *    sees either the complete old entry, the complete new entry, or
 *    no entry -- never a torn write. Concurrent writers of the same
 *    key race benignly; last rename wins and both payloads were valid
 *    for the key by construction.
 *
 *  - get() validates everything before trusting a byte: magic, format
 *    version, the embedded copy of the full key (a 64-bit filename
 *    hash collision or a tampered file must not alias another key),
 *    payload length and an FNV-1a checksum. Any mismatch discards the
 *    entry LOUDLY: a warning on stderr, the file unlinked, and the
 *    `rejects` counter bumped. A corrupt cache heals itself; it never
 *    serves corrupt data.
 *
 * The process-wide artifact cache used by the framework/DSE layers is
 * configured from $FINESSE_ARTIFACT_CACHE (or programmatically via
 * configureArtifactCache); unset/empty means disabled and every layer
 * behaves exactly as if the cache did not exist.
 */
#ifndef FINESSE_SUPPORT_DISKCACHE_H_
#define FINESSE_SUPPORT_DISKCACHE_H_

#include <atomic>
#include <string>
#include <vector>

#include "support/common.h"

namespace finesse {

/** Counters of one DiskCache instance (monotonic, thread-safe). */
struct DiskCacheStats
{
    size_t hits = 0;    ///< valid entry served
    size_t misses = 0;  ///< no entry on disk
    size_t puts = 0;    ///< entries published
    size_t rejects = 0; ///< corrupt/mismatched entries discarded
};

class DiskCache
{
  public:
    /** Open (creating if needed) the cache directory @p dir. */
    explicit DiskCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * Look up @p key. True and the payload on a validated hit; false
     * on miss or on a discarded corrupt entry.
     */
    bool get(const std::string &key, std::vector<u8> &payload) const;

    /** Atomically publish @p payload under @p key (tmp + rename). */
    bool put(const std::string &key, const std::vector<u8> &payload) const;

    /** Drop @p key's entry if present (decode-level invalidation). */
    void remove(const std::string &key) const;

    /** Entry file path for @p key (exposed for corruption tests). */
    std::string pathFor(const std::string &key) const;

    DiskCacheStats stats() const;

    /** FNV-1a over a byte range (also the payload checksum function). */
    static u64 fnv1a(const void *data, size_t n);

  private:
    std::string dir_;
    mutable std::atomic<size_t> hits_{0};
    mutable std::atomic<size_t> misses_{0};
    mutable std::atomic<size_t> puts_{0};
    mutable std::atomic<size_t> rejects_{0};
};

/** Environment variable selecting the process-wide cache directory. */
constexpr const char *kArtifactCacheEnv = "FINESSE_ARTIFACT_CACHE";

/**
 * The process-wide artifact cache, or nullptr when disabled. First
 * use reads $FINESSE_ARTIFACT_CACHE; configureArtifactCache overrides
 * at any time. The returned pointer stays valid for the process
 * lifetime even across reconfiguration (benches flip the cache on and
 * off between sweep legs while worker threads may still hold the old
 * pointer).
 */
DiskCache *artifactCache();

/** Point the process-wide cache at @p dir; "" disables it. */
void configureArtifactCache(const std::string &dir);

} // namespace finesse

#endif // FINESSE_SUPPORT_DISKCACHE_H_
