/**
 * @file
 * Minimal configuration-file reader. The paper's toolchain is driven by
 * YAML configuration files; this reader supports the flat subset needed
 * to describe a design point:
 *
 *     # comment
 *     curve = BLS12-381
 *     hw.long_lat = 38
 *     variants.mul12 = karatsuba
 *
 * Keys are dotted strings; values are strings/integers/doubles/bools.
 */
#ifndef FINESSE_SUPPORT_CONFIG_H_
#define FINESSE_SUPPORT_CONFIG_H_

#include <map>
#include <sstream>
#include <string>

#include "support/common.h"

namespace finesse {

/** Flat key/value configuration with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Parse from text; fatal on malformed lines. */
    static Config
    parse(const std::string &text)
    {
        Config cfg;
        std::istringstream in(text);
        std::string line;
        int lineNo = 0;
        while (std::getline(in, line)) {
            ++lineNo;
            const size_t hash = line.find('#');
            if (hash != std::string::npos)
                line.erase(hash);
            const std::string trimmed = trim(line);
            if (trimmed.empty())
                continue;
            const size_t eq = trimmed.find('=');
            FINESSE_REQUIRE(eq != std::string::npos,
                            "config line ", lineNo, ": missing '='");
            const std::string key = trim(trimmed.substr(0, eq));
            const std::string value = trim(trimmed.substr(eq + 1));
            FINESSE_REQUIRE(!key.empty(), "config line ", lineNo,
                            ": empty key");
            cfg.values_[key] = value;
        }
        return cfg;
    }

    bool has(const std::string &key) const { return values_.count(key); }

    std::string
    getString(const std::string &key, const std::string &dflt = "") const
    {
        auto it = values_.find(key);
        return it == values_.end() ? dflt : it->second;
    }

    i64
    getInt(const std::string &key, i64 dflt = 0) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return dflt;
        try {
            return std::stoll(it->second, nullptr, 0);
        } catch (...) {
            fatal("config key '", key, "': not an integer: ",
                  it->second);
        }
    }

    double
    getDouble(const std::string &key, double dflt = 0) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return dflt;
        try {
            return std::stod(it->second);
        } catch (...) {
            fatal("config key '", key, "': not a number: ", it->second);
        }
    }

    bool
    getBool(const std::string &key, bool dflt = false) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return dflt;
        const std::string &v = it->second;
        if (v == "true" || v == "1" || v == "yes" || v == "on")
            return true;
        if (v == "false" || v == "0" || v == "no" || v == "off")
            return false;
        fatal("config key '", key, "': not a boolean: ", v);
    }

    const std::map<std::string, std::string> &entries() const
    {
        return values_;
    }

  private:
    static std::string
    trim(const std::string &s)
    {
        const size_t b = s.find_first_not_of(" \t\r\n");
        if (b == std::string::npos)
            return "";
        const size_t e = s.find_last_not_of(" \t\r\n");
        return s.substr(b, e - b + 1);
    }

    std::map<std::string, std::string> values_;
};

} // namespace finesse

#endif // FINESSE_SUPPORT_CONFIG_H_
