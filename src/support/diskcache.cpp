/**
 * @file
 * DiskCache implementation. Entry file layout (little-endian):
 *
 *     u32 magic   'FART' (0x54524146 on disk)
 *     u32 version kEntryFormatVersion
 *     u32 keyLen;  key bytes        (full key, collision/tamper guard)
 *     u64 checksum                  (FNV-1a over the payload)
 *     u64 payloadLen; payload bytes
 *
 * Readers validate every field against the bytes actually present; a
 * failed check unlinks the entry, warns on stderr, and reads as a
 * miss. Writers never modify a published file in place: a unique tmp
 * file (pid + sequence) is renamed over the entry path, so readers
 * only ever observe complete entries.
 */
#include "support/diskcache.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

#include <memory>
#include <mutex>

namespace finesse {

namespace {

constexpr u32 kEntryMagic = 0x54524146u; // "FART" little-endian
constexpr u32 kEntryFormatVersion = 1;
constexpr size_t kEntryHeaderBytes = 4 + 4 + 4 + 8 + 8;

u32
loadU32(const u8 *p)
{
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<u32>(p[i]) << (8 * i);
    return v;
}

u64
loadU64(const u8 *p)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<u64>(p[i]) << (8 * i);
    return v;
}

void
storeU32(std::vector<u8> &out, u32 v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<u8>(v >> (8 * i)));
}

void
storeU64(std::vector<u8> &out, u64 v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<u8>(v >> (8 * i)));
}

/** Read a whole file; false when it does not exist or cannot be read. */
bool
readFile(const std::string &path, std::vector<u8> &out)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    u8 buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.insert(out.end(), buf, buf + n);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

} // namespace

u64
DiskCache::fnv1a(const void *data, size_t n)
{
    const u8 *p = static_cast<const u8 *>(data);
    u64 h = 14695981039346656037ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

DiskCache::DiskCache(std::string dir) : dir_(std::move(dir))
{
    FINESSE_REQUIRE(!dir_.empty(), "DiskCache: empty directory");
    // mkdir -p, parents included: the cache dir is often a fresh path
    // under a bench/CI working directory.
    std::string prefix;
    for (size_t i = 0; i <= dir_.size(); ++i) {
        if (i == dir_.size() || dir_[i] == '/') {
            prefix = dir_.substr(0, i);
            if (prefix.empty() || prefix == ".")
                continue;
            if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
                fatal("DiskCache: cannot create ", prefix, ": ",
                      std::strerror(errno));
        }
    }
}

std::string
DiskCache::pathFor(const std::string &key) const
{
    // Content address: the filename is a hash of the key; the full
    // key is embedded in the entry and re-checked on read, so a
    // filename collision degrades to alternating overwrites of one
    // slot, never to serving another key's payload.
    char name[2 * 8 + 1];
    std::snprintf(name, sizeof name, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a(key.data(), key.size())));
    return dir_ + "/" + name + ".art";
}

bool
DiskCache::get(const std::string &key, std::vector<u8> &payload) const
{
    const std::string path = pathFor(key);
    std::vector<u8> bytes;
    if (!readFile(path, bytes)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    const char *why = nullptr;
    do {
        if (bytes.size() < kEntryHeaderBytes) {
            why = "truncated header";
            break;
        }
        const u8 *p = bytes.data();
        if (loadU32(p) != kEntryMagic) {
            why = "bad magic";
            break;
        }
        if (loadU32(p + 4) != kEntryFormatVersion) {
            why = "format version mismatch";
            break;
        }
        const u64 keyLen = loadU32(p + 8);
        if (keyLen != key.size() ||
            bytes.size() < kEntryHeaderBytes + keyLen) {
            why = "key mismatch";
            break;
        }
        if (std::memcmp(p + kEntryHeaderBytes, key.data(),
                        key.size()) != 0) {
            why = "key mismatch";
            break;
        }
        const u64 checksum = loadU64(p + 12);
        const u64 payloadLen = loadU64(p + 20);
        if (bytes.size() != kEntryHeaderBytes + keyLen + payloadLen) {
            why = "truncated payload";
            break;
        }
        const u8 *body = p + kEntryHeaderBytes + keyLen;
        if (fnv1a(body, payloadLen) != checksum) {
            why = "checksum mismatch";
            break;
        }
        payload.assign(body, body + payloadLen);
    } while (false);
    if (why) {
        std::fprintf(stderr,
                     "finesse: discarding corrupt artifact %s (%s)\n",
                     path.c_str(), why);
        ::unlink(path.c_str());
        rejects_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
DiskCache::put(const std::string &key, const std::vector<u8> &payload) const
{
    std::vector<u8> bytes;
    bytes.reserve(kEntryHeaderBytes + key.size() + payload.size());
    storeU32(bytes, kEntryMagic);
    storeU32(bytes, kEntryFormatVersion);
    storeU32(bytes, static_cast<u32>(key.size()));
    storeU64(bytes, fnv1a(payload.data(), payload.size()));
    storeU64(bytes, payload.size());
    bytes.insert(bytes.end(), key.begin(), key.end());
    bytes.insert(bytes.end(), payload.begin(), payload.end());

    static std::atomic<u64> seq{0};
    const std::string path = pathFor(key);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "finesse: cannot write artifact %s: %s\n",
                     tmp.c_str(), std::strerror(errno));
        return false;
    }
    const bool wrote =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "finesse: cannot publish artifact %s: %s\n",
                     path.c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    puts_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
DiskCache::remove(const std::string &key) const
{
    ::unlink(pathFor(key).c_str());
}

DiskCacheStats
DiskCache::stats() const
{
    DiskCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.puts = puts_.load(std::memory_order_relaxed);
    s.rejects = rejects_.load(std::memory_order_relaxed);
    return s;
}

// --------------------------------------------- process-wide instance

namespace {

std::mutex g_cacheMutex;
DiskCache *g_cache = nullptr;
bool g_cacheInitialized = false;
// Reconfiguration retires the old instance instead of destroying it:
// sweep threads that grabbed the pointer before the flip keep using a
// valid (if no-longer-current) cache. A handful of leaked instances
// per process is the price of never racing a destructor.
std::vector<std::unique_ptr<DiskCache>> &
retiredCaches()
{
    static std::vector<std::unique_ptr<DiskCache>> v;
    return v;
}

void
setCacheLocked(const std::string &dir)
{
    if (dir.empty()) {
        g_cache = nullptr;
        return;
    }
    retiredCaches().push_back(std::make_unique<DiskCache>(dir));
    g_cache = retiredCaches().back().get();
}

} // namespace

DiskCache *
artifactCache()
{
    std::lock_guard<std::mutex> lock(g_cacheMutex);
    if (!g_cacheInitialized) {
        g_cacheInitialized = true;
        const char *env = std::getenv(kArtifactCacheEnv);
        setCacheLocked(env ? env : "");
    }
    return g_cache;
}

void
configureArtifactCache(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(g_cacheMutex);
    g_cacheInitialized = true;
    setCacheLocked(dir);
}

} // namespace finesse
