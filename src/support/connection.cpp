/**
 * @file
 * Connection implementations. The loopback accept path is the subtle
 * one: the child may die before connecting (exec failure, instant
 * fault plan), so the accept timeout doubles as the failure detector
 * -- on timeout the child is killed and reaped, never leaked.
 */
#include "support/connection.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

namespace finesse {

namespace {

class SubprocessConnection final : public Connection
{
  public:
    SubprocessConnection(const std::vector<std::string> &cmd,
                         const std::vector<std::string> &env)
    {
        proc_.spawn(cmd, env);
    }

    int pollFd() const override { return proc_.stdoutFd(); }

    bool
    writeAll(const void *data, size_t n) override
    {
        return proc_.writeAll(data, n);
    }

    long
    readSome(void *buf, size_t n) override
    {
        return proc_.readSome(buf, n);
    }

    void closeWrite() override { proc_.closeStdin(); }

    bool
    terminate() override
    {
        if (!proc_.running())
            return false;
        proc_.kill(SIGKILL);
        return Subprocess::wasSignaled(proc_.wait());
    }

    void
    finish() override
    {
        if (!proc_.running())
            return;
        proc_.closeStdin();
        proc_.wait();
    }

    std::string
    describe() const override
    {
        std::ostringstream os;
        os << "pipe worker pid " << proc_.pid();
        return os.str();
    }

  private:
    Subprocess proc_;
};

/** Socket data path shared by the loopback and remote transports. */
class SocketStream
{
  public:
    explicit SocketStream(int fd) : fd_(fd) {}

    ~SocketStream() { closeFd(); }

    int fd() const { return fd_; }

    bool
    writeAll(const void *data, size_t n)
    {
        return fd_ >= 0 && writeAllFd(fd_, data, n);
    }

    long
    readSome(void *buf, size_t n)
    {
        return fd_ >= 0 ? readSomeFd(fd_, buf, n) : 0;
    }

    void
    closeWrite()
    {
        if (fd_ >= 0)
            ::shutdown(fd_, SHUT_WR);
    }

    void
    closeFd()
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = -1;
    }

  private:
    int fd_;
};

class LoopbackTcpConnection final : public Connection
{
  public:
    LoopbackTcpConnection(Subprocess proc, int fd)
        : proc_(std::move(proc)), stream_(fd)
    {}

    int pollFd() const override { return stream_.fd(); }

    bool
    writeAll(const void *data, size_t n) override
    {
        return stream_.writeAll(data, n);
    }

    long
    readSome(void *buf, size_t n) override
    {
        return stream_.readSome(buf, n);
    }

    void closeWrite() override { stream_.closeWrite(); }

    bool
    terminate() override
    {
        stream_.closeFd();
        if (!proc_.running())
            return false;
        proc_.kill(SIGKILL);
        return Subprocess::wasSignaled(proc_.wait());
    }

    void
    finish() override
    {
        if (proc_.running()) {
            // EOF on the socket is the worker's shutdown signal, the
            // same contract as EOF on a pipe transport's stdin.
            stream_.closeWrite();
            proc_.wait();
        }
        stream_.closeFd();
    }

    std::string
    describe() const override
    {
        std::ostringstream os;
        os << "loopback-tcp worker pid " << proc_.pid();
        return os.str();
    }

  private:
    Subprocess proc_;
    SocketStream stream_;
};

class TcpConnection final : public Connection
{
  public:
    TcpConnection(int fd, HostPort peer)
        : stream_(fd), peer_(std::move(peer))
    {}

    int pollFd() const override { return stream_.fd(); }

    bool
    writeAll(const void *data, size_t n) override
    {
        return stream_.writeAll(data, n);
    }

    long
    readSome(void *buf, size_t n) override
    {
        return stream_.readSome(buf, n);
    }

    void closeWrite() override { stream_.closeWrite(); }

    bool
    terminate() override
    {
        // No pid to signal on a remote host: closing the socket is
        // the whole kill. The remote sees EOF/EPIPE and re-listens;
        // its in-flight result has nowhere to land, so re-dispatching
        // the group elsewhere cannot double-merge.
        stream_.closeFd();
        return false;
    }

    void
    finish() override
    {
        stream_.closeWrite();
        // Drain until the peer's EOF so its final result write never
        // hits a reset socket; bound by the peer closing in response
        // to our half-close.
        char sink[4096];
        for (;;) {
            const long r = stream_.readSome(sink, sizeof sink);
            if (r == kReadAgainFd)
                continue;
            if (r <= 0)
                break;
        }
        stream_.closeFd();
    }

    std::string
    describe() const override
    {
        return "tcp worker " + peer_.describe();
    }

  private:
    SocketStream stream_;
    HostPort peer_;
};

} // namespace

std::unique_ptr<Connection>
spawnSubprocessConnection(const std::vector<std::string> &cmd,
                          const std::vector<std::string> &env)
{
    return std::make_unique<SubprocessConnection>(cmd, env);
}

std::unique_ptr<Connection>
spawnLoopbackTcpConnection(const std::vector<std::string> &cmd,
                           const std::vector<std::string> &env,
                           int acceptTimeoutMs, std::string *err)
{
    HostPort loop;
    loop.host = "127.0.0.1";
    loop.port = 0;
    int boundPort = 0;
    const int listenFd = tcpListen(loop, 1, err, &boundPort);
    if (listenFd < 0)
        return nullptr;

    std::vector<std::string> argv = cmd;
    argv.push_back("--connect=127.0.0.1:" + std::to_string(boundPort));
    Subprocess proc;
    try {
        proc.spawn(argv, env);
    } catch (const FatalError &e) {
        ::close(listenFd);
        if (err)
            *err = e.what();
        return nullptr;
    }

    const int fd = tcpAccept(listenFd, acceptTimeoutMs, err);
    ::close(listenFd); // one master, one child: the listener is done
    if (fd < 0) {
        if (err && err->empty())
            *err = "loopback worker did not connect within " +
                   std::to_string(acceptTimeoutMs) + "ms";
        proc.kill(SIGKILL);
        proc.wait();
        return nullptr;
    }
    return std::make_unique<LoopbackTcpConnection>(std::move(proc), fd);
}

std::unique_ptr<Connection>
connectTcpWorker(const HostPort &to, int connectTimeoutMs,
                 std::string *err)
{
    const int fd = tcpConnect(to, connectTimeoutMs, err);
    if (fd < 0)
        return nullptr;
    return std::make_unique<TcpConnection>(fd, to);
}

} // namespace finesse
