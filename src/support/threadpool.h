/**
 * @file
 * Fixed-size worker thread pool for the parallel design-space sweeps.
 * No external dependencies: std::thread workers draining one task
 * queue, a futures-based submit(), and a parallelFor() that fans an
 * index range out over the pool with deterministic, index-ordered
 * result placement (workers race over a shared atomic cursor, so the
 * schedule is dynamic but every iteration knows its own index).
 *
 * Nesting a parallelFor inside a pool task is not supported (the
 * inner wait would occupy a worker slot and can deadlock a pool of
 * size 1); the sweep engine only parallelizes the outermost loop.
 */
#ifndef FINESSE_SUPPORT_THREADPOOL_H_
#define FINESSE_SUPPORT_THREADPOOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/common.h"

namespace finesse {

/**
 * Resolve a jobs request to a worker count: n >= 1 is honored as-is,
 * 0 (the CompileOptions/--jobs default) means hardware_concurrency.
 */
inline int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
}

/** Fixed-size worker pool; tasks are drained FIFO. */
class ThreadPool
{
  public:
    /** @p jobs as in resolveJobs(); workers start immediately. */
    explicit ThreadPool(int jobs = 0)
    {
        const int n = resolveJobs(jobs);
        workers_.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }

    int size() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a callable; the future carries its result/exception. */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<decltype(fn())>
    {
        using R = decltype(fn());
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            FINESSE_CHECK(!stop_, "submit on stopped ThreadPool");
            queue_.push([task] { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /**
     * Run fn(i) for every i in [0, count), spread across the pool.
     * Blocks until all iterations finish; the first exception thrown
     * by any iteration is rethrown here (remaining iterations are
     * abandoned, in-flight ones run to completion).
     */
    template <typename Fn>
    void
    parallelFor(size_t count, Fn &&fn)
    {
        if (count == 0)
            return;
        auto next = std::make_shared<std::atomic<size_t>>(0);
        auto failed = std::make_shared<std::atomic<bool>>(false);
        const size_t lanes =
            std::min(count, static_cast<size_t>(size()));
        std::vector<std::future<void>> futs;
        futs.reserve(lanes);
        for (size_t lane = 0; lane < lanes; ++lane) {
            futs.push_back(submit([&fn, next, failed, count] {
                for (size_t i = (*next)++; i < count; i = (*next)++) {
                    if (failed->load(std::memory_order_relaxed))
                        return;
                    try {
                        fn(i);
                    } catch (...) {
                        failed->store(true,
                                      std::memory_order_relaxed);
                        throw;
                    }
                }
            }));
        }
        std::exception_ptr first;
        for (std::future<void> &f : futs) {
            try {
                f.get();
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
                if (stop_ && queue_.empty())
                    return;
                task = std::move(queue_.front());
                queue_.pop();
            }
            task();
        }
    }

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * One-shot convenience: run fn(i) for i in [0, count) on @p jobs
 * workers (resolveJobs semantics). jobs == 1 runs inline on the
 * calling thread -- the serial baseline path spawns no threads.
 */
template <typename Fn>
inline void
parallelFor(size_t count, int jobs, Fn &&fn)
{
    const int n = resolveJobs(jobs);
    if (n <= 1 || count <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    // Never spawn more workers than iterations.
    ThreadPool pool(static_cast<int>(
        std::min<size_t>(static_cast<size_t>(n), count)));
    pool.parallelFor(count, std::forward<Fn>(fn));
}

} // namespace finesse

#endif // FINESSE_SUPPORT_THREADPOOL_H_
