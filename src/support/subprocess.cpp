/**
 * @file
 * POSIX subprocess implementation: pipe + fork + execve, blocking
 * reads/writes with EINTR retry, SIGKILL-on-destruction so a throwing
 * master never leaks worker processes.
 */
#include "support/subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;

namespace finesse {

void
ignoreSigpipe()
{
    static const int once = [] {
        std::signal(SIGPIPE, SIG_IGN);
        return 0;
    }();
    (void)once;
}

bool
writeAllFd(int fd, const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        const long w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Full pipe/socket buffer, not an error: wait for
                // writability and go around. EINTR here just retries
                // the poll.
                pollfd pfd = {fd, POLLOUT, 0};
                (void)::poll(&pfd, 1, -1);
                continue;
            }
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

long
readSomeFd(int fd, void *buf, size_t n)
{
    for (;;) {
        const long r = ::read(fd, buf, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return kReadAgainFd;
        }
        return r;
    }
}

Subprocess &
Subprocess::operator=(Subprocess &&other) noexcept
{
    if (this != &other) {
        if (running()) {
            kill(SIGKILL);
            wait();
        }
        closeFds();
        pid_ = other.pid_;
        stdinFd_ = other.stdinFd_;
        stdoutFd_ = other.stdoutFd_;
        other.pid_ = -1;
        other.stdinFd_ = -1;
        other.stdoutFd_ = -1;
    }
    return *this;
}

Subprocess::~Subprocess()
{
    if (running()) {
        kill(SIGKILL);
        wait();
    }
    closeFds();
}

void
Subprocess::closeFds()
{
    if (stdinFd_ >= 0)
        ::close(stdinFd_);
    if (stdoutFd_ >= 0)
        ::close(stdoutFd_);
    stdinFd_ = -1;
    stdoutFd_ = -1;
}

void
Subprocess::spawn(const std::vector<std::string> &argv,
                  const std::vector<std::string> &extraEnv)
{
    FINESSE_CHECK(!running(), "subprocess already spawned");
    FINESSE_REQUIRE(!argv.empty(), "subprocess: empty argv");
    ignoreSigpipe();

    // O_CLOEXEC is load-bearing: without it every later-spawned
    // sibling inherits these pipe ends across its exec, holds the
    // write ends open, and EOF (the shutdown/crash signal of the
    // wire protocol) never reaches anyone. The child's dup2() onto
    // fds 0/1 clears the flag on the copies it actually uses.
    int inPipe[2];  // master writes -> child stdin
    int outPipe[2]; // child stdout -> master reads
    if (::pipe2(inPipe, O_CLOEXEC) != 0)
        fatal("subprocess: pipe: ", std::strerror(errno));
    if (::pipe2(outPipe, O_CLOEXEC) != 0) {
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        fatal("subprocess: pipe: ", std::strerror(errno));
    }

    // Build argv/envp before fork: no allocation between fork and exec.
    std::vector<char *> argvp;
    argvp.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        argvp.push_back(const_cast<char *>(a.c_str()));
    argvp.push_back(nullptr);

    // extraEnv entries override same-keyed parent entries: getenv in
    // the child returns the FIRST match, so shadowed parent entries
    // must be dropped, not merely preceded.
    const auto envKeyLen = [](const char *e) {
        const char *eq = std::strchr(e, '=');
        return eq ? static_cast<size_t>(eq - e) : std::strlen(e);
    };
    std::vector<char *> envp;
    for (char **e = environ; e && *e; ++e) {
        const size_t keyLen = envKeyLen(*e);
        bool shadowed = false;
        for (const std::string &x : extraEnv) {
            if (envKeyLen(x.c_str()) == keyLen &&
                std::strncmp(x.c_str(), *e, keyLen) == 0) {
                shadowed = true;
                break;
            }
        }
        if (!shadowed)
            envp.push_back(*e);
    }
    for (const std::string &e : extraEnv)
        envp.push_back(const_cast<char *>(e.c_str()));
    envp.push_back(nullptr);

    const int pid = ::fork();
    if (pid < 0) {
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        fatal("subprocess: fork: ", std::strerror(errno));
    }
    if (pid == 0) {
        // Child: wire the pipes to stdin/stdout and exec.
        ::dup2(inPipe[0], STDIN_FILENO);
        ::dup2(outPipe[1], STDOUT_FILENO);
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        ::execve(argvp[0], argvp.data(), envp.data());
        // Exec failed; 127 is the conventional "command not found".
        ::_exit(127);
    }

    ::close(inPipe[0]);
    ::close(outPipe[1]);
    pid_ = pid;
    stdinFd_ = inPipe[1];
    stdoutFd_ = outPipe[0];
}

bool
Subprocess::writeAll(const void *data, size_t n)
{
    return writeAllFd(stdinFd_, data, n);
}

long
Subprocess::readSome(void *buf, size_t n)
{
    return readSomeFd(stdoutFd_, buf, n);
}

void
Subprocess::closeStdin()
{
    if (stdinFd_ >= 0)
        ::close(stdinFd_);
    stdinFd_ = -1;
}

void
Subprocess::kill(int sig)
{
    if (running())
        ::kill(pid_, sig);
}

int
Subprocess::wait()
{
    if (!running())
        return -1;
    int status = 0;
    for (;;) {
        const int r = ::waitpid(pid_, &status, 0);
        if (r < 0 && errno == EINTR)
            continue;
        break;
    }
    pid_ = -1;
    return status;
}

bool
Subprocess::exitedCleanly(int waitStatus)
{
    return WIFEXITED(waitStatus) && WEXITSTATUS(waitStatus) == 0;
}

bool
Subprocess::wasSignaled(int waitStatus)
{
    return WIFSIGNALED(waitStatus);
}

int
Subprocess::termSignal(int waitStatus)
{
    return WIFSIGNALED(waitStatus) ? WTERMSIG(waitStatus) : 0;
}

int
Subprocess::exitCode(int waitStatus)
{
    return WIFEXITED(waitStatus) ? WEXITSTATUS(waitStatus) : -1;
}

std::string
selfExePath()
{
    char buf[4096];
    const long n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        fatal("subprocess: readlink /proc/self/exe: ",
              std::strerror(errno));
    return std::string(buf, static_cast<size_t>(n));
}

} // namespace finesse
