/**
 * @file
 * Minimal TCP socket layer for the distributed sweep's network
 * transport: nonblocking connect() with a hard deadline, accept()
 * with a timeout, and listener setup with ephemeral-port support.
 * Every descriptor is created O_CLOEXEC (a worker exec must never
 * inherit a master's sockets), every accepted/connected stream gets
 * TCP_NODELAY (the wire protocol is small request/response frames;
 * Nagle would serialize dispatch round trips) and SO_KEEPALIVE (a
 * peer that vanishes without FIN eventually surfaces as an error
 * instead of a silent forever-hang), and every call retries EINTR
 * against its deadline instead of failing.
 *
 * Error contract: functions return -1 and fill @p err with a
 * human-readable reason; they never throw (the distributor treats a
 * failed connect as a quarantine event, not a fatal), except
 * parseHostPort, whose malformed input is a configuration error.
 */
#ifndef FINESSE_SUPPORT_SOCKET_H_
#define FINESSE_SUPPORT_SOCKET_H_

#include <string>

#include "support/common.h"

namespace finesse {

/** One "host:port" endpoint of the remote worker pool. */
struct HostPort
{
    std::string host;
    int port = 0; ///< 0 = ephemeral (listeners only)

    std::string describe() const;
};

/**
 * Parse "host:port" (port required, 0..65535; "[v6::addr]:port" for
 * IPv6 literals). Throws FatalError on malformed input -- a typo in a
 * host list must fail loudly, not silently shrink the pool.
 */
HostPort parseHostPort(const std::string &spec);

/**
 * Create a listening TCP socket bound to @p at (SO_REUSEADDR so
 * restarted workers rebind immediately; port 0 binds an ephemeral
 * port). Returns the listener fd, or -1 with @p err set. When
 * @p boundPort is non-null it receives the actual bound port --
 * the ephemeral-port answer tests and the worker's "listening on"
 * banner need.
 */
int tcpListen(const HostPort &at, int backlog, std::string *err,
              int *boundPort = nullptr);

/**
 * Accept one connection from @p listenFd, waiting at most
 * @p timeoutMs (-1 = forever). Returns the tuned (NODELAY/KEEPALIVE/
 * CLOEXEC) stream fd; -1 with @p err EMPTY on timeout, -1 with
 * @p err set on a real error.
 */
int tcpAccept(int listenFd, int timeoutMs, std::string *err);

/**
 * Connect to @p to with a hard deadline of @p timeoutMs: the socket
 * is nonblocking during connect (a black-holed host costs the
 * deadline, not the kernel's multi-minute SYN retry budget) and
 * switched back to blocking once established. Returns the tuned
 * stream fd, or -1 with @p err set (timeout included).
 */
int tcpConnect(const HostPort &to, int timeoutMs, std::string *err);

} // namespace finesse

#endif // FINESSE_SUPPORT_SOCKET_H_
