/**
 * @file
 * Analytic area and timing models for the Finesse hardware architecture
 * (Sec. 3.3). Substitutes for the paper's EDA synthesis feedback in the
 * co-design loop: the loop only consumes scalar (area, critical-path)
 * estimates per configuration, so an analytic model anchored to the
 * paper's published numbers exercises the identical feedback path.
 *
 * Anchors (40 nm LP, from the paper):
 *  - 1-core BN254N: 1.77 mm^2, breakdown IMem 50% / ALU 35% / DMem 15%,
 *    mmul = 89% of the ALU (Fig. 6);
 *  - 8-core: 8.00 mm^2 with shared IMem at 11% (Fig. 6b, Table 6);
 *  - f = 769 MHz at Long = 38 stages (Table 6), critical path floors
 *    for deeper pipelines (Fig. 11);
 *  - 40 nm -> 65 nm scaling: freq x0.55, area x1.5 (Table 6 footnote,
 *    Stillmaker-Baas-style equivalent scaling).
 */
#ifndef FINESSE_HWMODEL_AREA_H_
#define FINESSE_HWMODEL_AREA_H_

#include <algorithm>
#include <cmath>
#include <string>

#include "hwmodel/pipeline.h"

namespace finesse {

/** Technology node for reporting. */
enum class TechNode { N40LP, N65 };

/** Area breakdown of one accelerator configuration (mm^2). */
struct AreaReport
{
    int cores = 1;
    double mmulArea = 0;   ///< per-core modular multiplier
    double aluOther = 0;   ///< per-core linear + inversion units
    double dmemArea = 0;   ///< per-core data memory
    double imemArea = 0;   ///< shared instruction memory
    double otherArea = 0;  ///< control/interconnect margin
    double totalArea = 0;

    double aluArea() const { return mmulArea + aluOther; }
    double pctImem() const { return 100.0 * imemArea / totalArea; }
    double
    pctAlu() const
    {
        return 100.0 * cores * aluArea() / totalArea;
    }
    double
    pctDmem() const
    {
        return 100.0 * cores * dmemArea / totalArea;
    }

    std::string describe() const;
};

/** Configuration inputs for the area/timing models. */
struct DesignPoint
{
    int fpBits = 254;        ///< data width
    int longDepth = 38;      ///< mmul pipeline depth
    int numLinUnits = 1;
    int cores = 1;
    size_t imemBits = 0;     ///< encoded binary size
    size_t dmemWords = 0;    ///< max active registers (all banks)
    int numBanks = 1;
};

/**
 * Analytic area model (Karatsuba-Wallace multiplier recursion + SRAM
 * macros + per-unit logic). All constants are documented calibration
 * values; see file header.
 */
class AreaModel
{
  public:
    /** Leaf multiplier width W (DSP/multiplier-IP granularity). */
    static constexpr int kLeafW = 16;

    // Calibration constants (40 nm LP).
    static constexpr double kNand2Um2 = 0.80;     ///< gate area
    static constexpr double kDspGates = 900;      ///< W x W multiplier
    static constexpr double kWallaceOverhead = 1.10;
    static constexpr double kImemBitUm2 = 0.42;   ///< SRAM incl. periphery
    static constexpr double kDmemBitUm2 = 2.2;    ///< multi-ported RF bit
    static constexpr double kFlopUm2 = 2.4;       ///< pipeline register
    static constexpr double kAdderGatesPerBit = 11.0;
    static constexpr double kKaratsubaAdderOverhead = 0.17; ///< per level
    static constexpr double kControlMargin = 0.03; ///< share of core

    /** mmul area in mm^2 for a given width/depth. */
    double mmulArea(int bits, int depth) const;

    /** Linear + inversion units (per linear-unit count). */
    double aluOtherArea(int bits, int numLinUnits) const;

    /** SRAM area in mm^2 for a bit count. */
    double sramArea(size_t bits) const;

    /** Full report for a design point. */
    AreaReport report(const DesignPoint &dp) const;
};

/** Critical-path / frequency model (Fig. 11). */
class TimingModel
{
  public:
    // 40 nm LP calibration. The work constant places the critical-path
    // knee (where per-stage work meets the wire/setup floor) at depth
    // ~38 for 254-bit multipliers, matching Fig. 11.
    static constexpr double kWorkNsPerLog2Bit = 1.29; ///< mult tree work
    static constexpr double kFloorNs = 1.15;          ///< wire/setup floor
    static constexpr double kMarginNs = 0.10;

    /** Critical path (ns) of the mmul at a given pipeline depth. */
    double
    criticalPathNs(int bits, int depth) const
    {
        const double work =
            kWorkNsPerLog2Bit * std::log2(static_cast<double>(bits)) *
            std::log2(static_cast<double>(bits)) / 2.0;
        const double perStage = work / std::max(depth - 2, 1);
        return std::max(perStage, kFloorNs) + kMarginNs;
    }

    /** Achievable frequency in MHz. */
    double
    frequencyMHz(int bits, int depth) const
    {
        return 1e3 / criticalPathNs(bits, depth);
    }
};

/**
 * FPGA resource model (Xilinx Virtex-7 calibration): logic maps to
 * slices, memories to BRAM, and achievable frequency is a fixed
 * fraction of the ASIC frequency. Calibrated so the BN254N single-core
 * design lands near the paper's 13,928 slices / 153.8 MHz (Table 6).
 */
struct FpgaModel
{
    static constexpr double kGatesPerSlice = 54.0;
    static constexpr double kFreqRatioVsAsic = 0.20;

    /** Occupied slices (logic only; memories map to BRAM). */
    static double
    slices(const AreaReport &r)
    {
        const double logicMm2 =
            r.cores * (r.mmulArea + r.aluOther) + r.otherArea;
        return logicMm2 * 1e6 / AreaModel::kNand2Um2 / kGatesPerSlice;
    }

    static double
    frequencyMHz(int bits, int depth)
    {
        return TimingModel().frequencyMHz(bits, depth) *
               kFreqRatioVsAsic;
    }
};

/** Technology scaling factors (paper's Table 6 normalization). */
struct TechScale
{
    static constexpr double kFreq40to65 = 0.55;
    static constexpr double kArea40to65 = 1.50;

    static double
    scaleFreq(double mhz, TechNode from, TechNode to)
    {
        if (from == to)
            return mhz;
        return from == TechNode::N40LP ? mhz * kFreq40to65
                                       : mhz / kFreq40to65;
    }

    static double
    scaleArea(double mm2, TechNode from, TechNode to)
    {
        if (from == to)
            return mm2;
        return from == TechNode::N40LP ? mm2 * kArea40to65
                                       : mm2 / kArea40to65;
    }
};

} // namespace finesse

#endif // FINESSE_HWMODEL_AREA_H_
