/**
 * @file
 * Area model implementation (Karatsuba-Wallace multiplier recursion).
 */
#include "hwmodel/area.h"

#include <cmath>
#include <sstream>

namespace finesse {

std::string
AreaReport::describe() const
{
    std::ostringstream os;
    os.precision(3);
    os << cores << "-core, " << totalArea << " mm^2 (IMem "
       << pctImem() << "%, ALU " << pctAlu() << "%, DMem " << pctDmem()
       << "%)";
    return os.str();
}

double
AreaModel::mmulArea(int bits, int depth) const
{
    // Karatsuba levels n: smallest n with bits <= 5W * 2^n (the paper's
    // Wallace base units cover [2W, 5W]).
    int n = 0;
    while (bits > 5 * kLeafW * (1 << n))
        ++n;
    const int leafBits = (bits + (1 << n) - 1) >> n;
    const int leafDsps = (leafBits + kLeafW - 1) / kLeafW;
    // Wallace-tree leaf: leafDsps^2 partial products plus compressors.
    const double leafGates =
        leafDsps * leafDsps * kDspGates * kWallaceOverhead;
    double multGates = std::pow(3.0, n) * leafGates;
    multGates *= 1.0 + kKaratsubaAdderOverhead * n;
    // Montgomery: three multiplier instances (operand product + two
    // reduction products, Fig. 5c) + accumulators.
    double gates = 3.0 * multGates + 2.0 * bits * kAdderGatesPerBit;
    double um2 = gates * kNand2Um2;
    // Pipeline registers: ~2*bits flops per stage.
    um2 += static_cast<double>(depth) * 2.0 * bits * kFlopUm2;
    return um2 * 1e-6;
}

double
AreaModel::aluOtherArea(int bits, int numLinUnits) const
{
    // Per linear unit: adder/subtractor/doubler datapath + staging.
    const double linUm2 =
        bits * kAdderGatesPerBit * 3.0 * kNand2Um2 + 8 * bits * kFlopUm2;
    // Inversion unit: iterative, a few adder widths + control.
    const double invUm2 =
        bits * kAdderGatesPerBit * 6.0 * kNand2Um2 + 4 * bits * kFlopUm2;
    return (numLinUnits * linUm2 + invUm2) * 1e-6;
}

double
AreaModel::sramArea(size_t bits) const
{
    return static_cast<double>(bits) * kImemBitUm2 * 1e-6;
}

AreaReport
AreaModel::report(const DesignPoint &dp) const
{
    AreaReport r;
    r.cores = dp.cores;
    r.mmulArea = mmulArea(dp.fpBits, dp.longDepth);
    r.aluOther = aluOtherArea(dp.fpBits, dp.numLinUnits);
    // DMem: three-stage pipelined SRAM (Fig. 5b) -> small fixed
    // register overhead on top of the macro bits.
    const size_t dmemBits = dp.dmemWords * static_cast<size_t>(dp.fpBits);
    r.dmemArea =
        static_cast<double>(dmemBits) * kDmemBitUm2 * 1e-6 * 1.12;
    r.imemArea = sramArea(dp.imemBits) * 1.06;
    const double coreArea = r.mmulArea + r.aluOther + r.dmemArea;
    r.otherArea = (dp.cores * coreArea + r.imemArea) * kControlMargin;
    r.totalArea = dp.cores * coreArea + r.imemArea + r.otherArea;
    return r;
}

} // namespace finesse
