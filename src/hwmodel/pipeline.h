/**
 * @file
 * Parameterized hardware pipeline model (Sec. 3.2/3.3 of the paper).
 * Describes instruction itineraries (Long/Short/Inv latencies), issue
 * width (VLIW), ALU counts, register-bank configuration and the
 * write-back ring buffer (FIFO). Consumed by the scheduler (as
 * constraints) and the cycle-accurate simulator (as timing ground
 * truth); the area/timing models translate the same parameters into
 * silicon estimates for the co-design loop.
 */
#ifndef FINESSE_HWMODEL_PIPELINE_H_
#define FINESSE_HWMODEL_PIPELINE_H_

#include <sstream>
#include <string>

#include "ir/ir.h"
#include "support/common.h"

namespace finesse {

/** Hardware pipeline parameters. */
struct PipelineModel
{
    // Itineraries (cycles).
    int longLat = 38;  ///< fully-pipelined modular multiplier depth
    int shortLat = 8;  ///< linear-unit depth
    int invLat = 900;  ///< iterative inversion unit latency

    // Issue/datapath shape.
    int issueWidth = 1;  ///< ops per VLIW bundle (1 = single issue)
    int numLinUnits = 1; ///< parallel linear (Short) units
    // Paper constraint: at most one mmul unit per core.

    // Register banks.
    int numBanks = 1;
    int readsPerBank = 2;
    int writesPerBank = 1;

    // Write-back ring buffer (the paper's HW2 feature, Table 7).
    bool writebackFifo = false;
    int fifoDepth = 8;

    // Issue-slot affinity tuning parameter (Sec. 3.5).
    double beta = 0.05;

    /** Latency of one op under this model. */
    int
    latency(Op op) const
    {
        switch (unitOf(op)) {
          case UnitClass::Linear:
            return shortLat;
          case UnitClass::Mul:
            return longLat;
          case UnitClass::Inv:
            return invLat;
          case UnitClass::None:
            return 1;
        }
        return 1;
    }

    /** Validate the paper's structural constraints. */
    void
    validate() const
    {
        FINESSE_REQUIRE(longLat > shortLat,
                        "Long latency must exceed Short");
        FINESSE_REQUIRE(issueWidth >= 1 && numLinUnits >= 1);
        FINESSE_REQUIRE(numBanks >= issueWidth,
                        "need at least as many banks as issue width");
        FINESSE_REQUIRE(readsPerBank >= 2 && writesPerBank >= 1,
                        "banks must support 2R1W per cycle");
        FINESSE_REQUIRE(issueWidth == 1 || writebackFifo,
                        "VLIW architectures require write-back FIFOs");
    }

    std::string
    describe() const
    {
        std::ostringstream os;
        os << "L=" << longLat << ",S=" << shortLat << ",W=" << issueWidth
           << ",#Lin=" << numLinUnits << ",banks=" << numBanks
           << (writebackFifo ? ",fifo" : "");
        return os.str();
    }

    /** The paper's default evaluation model: Long=38, Short=8, 2R1W. */
    static PipelineModel
    paperDefault()
    {
        return PipelineModel{};
    }
};

} // namespace finesse

#endif // FINESSE_HWMODEL_PIPELINE_H_
