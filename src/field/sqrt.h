/**
 * @file
 * Generic Tonelli-Shanks square root over any (native) finite field
 * element type. Used by the curve module to sample points on E(Fp) and
 * on the twist E'(Fp^(k/6)). Setup-time only; never traced/compiled.
 */
#ifndef FINESSE_FIELD_SQRT_H_
#define FINESSE_FIELD_SQRT_H_

#include <functional>

#include "bigint/bigint.h"
#include "field/fieldops.h"

namespace finesse {

/**
 * Compute a square root of @p a in a field of order @p q (Tonelli-
 * Shanks). @p sampleNonResidue produces random field elements used to
 * locate a quadratic non-residue.
 *
 * @return true and set @p out when a root exists; false otherwise.
 */
template <typename F>
bool
trySqrt(const F &a, const BigInt &q, const std::function<F()> &sample,
        F &out)
{
    if (a.isZero()) {
        out = a;
        return true;
    }
    const F one = a.oneLike();
    const BigInt qm1 = q - BigInt(u64{1});
    const BigInt legendreExp = qm1 >> 1;
    if (!powBig(a, legendreExp).equals(one))
        return false; // non-residue

    // q - 1 = t * 2^s with t odd.
    BigInt t = qm1;
    int s = 0;
    while (t.isEven()) {
        t = t >> 1;
        ++s;
    }

    // Find a quadratic non-residue z.
    F z = one;
    for (int tries = 0; tries < 256; ++tries) {
        const F cand = sample();
        if (cand.isZero())
            continue;
        if (!powBig(cand, legendreExp).equals(one)) {
            z = cand;
            break;
        }
        FINESSE_CHECK(tries < 255, "no quadratic non-residue found");
    }

    F c = powBig(z, t);
    F x = powBig(a, (t + BigInt(u64{1})) >> 1);
    F b = powBig(a, t);
    int m = s;
    while (!b.equals(one)) {
        // Find least i with b^(2^i) = 1.
        int i = 0;
        F probe = b;
        while (!probe.equals(one)) {
            probe = probe.sqr();
            ++i;
            FINESSE_CHECK(i < m, "Tonelli-Shanks failed to converge");
        }
        F e = c;
        for (int j = 0; j < m - i - 1; ++j)
            e = e.sqr();
        x = x.mul(e);
        c = e.sqr();
        b = b.mul(c);
        m = i;
    }
    out = x;
    return true;
}

} // namespace finesse

#endif // FINESSE_FIELD_SQRT_H_
