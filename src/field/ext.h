/**
 * @file
 * Generic quadratic and cubic extension-field templates. These are the
 * operator kit of the framework: every tower level (Fp2 ... Fp24 along
 * the divisor lattice of 24) is a composition of these two templates.
 *
 * Each arithmetic routine dispatches on the operator variant recorded in
 * its level context (Karatsuba/Schoolbook multiplication, Complex /
 * CH-SQR squarings, Table 5 of the paper). Because the templates are
 * generic over the base element type, the *same* formulas serve:
 *  - the native library (Base bottoms out at finesse::Fp), and
 *  - the compiler's code generation (Base bottoms out at SymFp, which
 *    records Fp-level SSA IR instead of computing).
 * This is the paper's single-source-of-truth co-design abstraction.
 */
#ifndef FINESSE_FIELD_EXT_H_
#define FINESSE_FIELD_EXT_H_

#include <type_traits>
#include <vector>

#include "bigint/bigint.h"
#include "field/fieldops.h"
#include "field/variants.h"
#include "support/common.h"

namespace finesse {

/**
 * Description of the adjoined-element square/cube ("non-residue") that
 * defines an extension level. Three shapes cover all supported towers:
 *  - kSmallInt: nu is a small integer (Fp2 = Fp[u]/(u^2 - q))
 *  - kQuadSmall: nu = n0 + n1*u with small integers over a quadratic base
 *    (Fp6 = Fp2[v]/(v^3 - xi), Fp4 = Fp2[s]/(s^2 - xi))
 *  - kBaseGen: nu is the generator of the base level itself
 *    (Fp12 = Fp6[w]/(w^2 - v); the canonical tower chain)
 */
struct NuDesc
{
    enum class Kind { kSmallInt, kQuadSmall, kBaseGen };

    Kind kind = Kind::kSmallInt;
    i64 n0 = 0;
    i64 n1 = 0;

    static NuDesc
    smallInt(i64 q)
    {
        return {Kind::kSmallInt, q, 0};
    }

    static NuDesc
    quadSmall(i64 a, i64 b)
    {
        return {Kind::kQuadSmall, a, b};
    }

    static NuDesc
    baseGen()
    {
        return {Kind::kBaseGen, 0, 0};
    }
};

template <typename Base>
class QuadExt;
template <typename Base>
class CubicExt;

/** Context of one quadratic extension level. */
template <typename Base>
struct QuadCtx
{
    using BaseCtx = typename Base::Ctx;

    const BaseCtx *base = nullptr;
    NuDesc nu;
    LevelVariants variants;
    int degree = 0;  ///< absolute extension degree over Fp
    Base frobC1;     ///< nu^((p-1)/2): w^p = w * frobC1

    /** x * nu for a base-level element x. */
    Base
    mulByNu(const Base &x) const
    {
        switch (nu.kind) {
          case NuDesc::Kind::kSmallInt:
            return muliSmall(x, nu.n0);
          case NuDesc::Kind::kQuadSmall:
            if constexpr (requires { x.mulBySmallPair(i64{0}, i64{0}); }) {
                return x.mulBySmallPair(nu.n0, nu.n1);
            } else {
                panic("kQuadSmall nu over non-quadratic base");
            }
          case NuDesc::Kind::kBaseGen:
            if constexpr (requires { x.mulByGen(); }) {
                return x.mulByGen();
            } else {
                panic("kBaseGen nu over prime base");
            }
        }
        panic("bad NuDesc");
    }
};

/** Context of one cubic extension level. */
template <typename Base>
struct CubicCtx
{
    using BaseCtx = typename Base::Ctx;

    const BaseCtx *base = nullptr;
    NuDesc nu;
    LevelVariants variants;
    int degree = 0;
    Base frobC1; ///< nu^((p-1)/3): v^p = v * frobC1
    Base frobC2; ///< frobC1^2:     (v^2)^p = v^2 * frobC2

    Base
    mulByNu(const Base &x) const
    {
        switch (nu.kind) {
          case NuDesc::Kind::kSmallInt:
            return muliSmall(x, nu.n0);
          case NuDesc::Kind::kQuadSmall:
            if constexpr (requires { x.mulBySmallPair(i64{0}, i64{0}); }) {
                return x.mulBySmallPair(nu.n0, nu.n1);
            } else {
                panic("kQuadSmall nu over non-quadratic base");
            }
          case NuDesc::Kind::kBaseGen:
            if constexpr (requires { x.mulByGen(); }) {
                return x.mulByGen();
            } else {
                panic("kBaseGen nu over prime base");
            }
        }
        panic("bad NuDesc");
    }
};

/**
 * Quadratic extension Base[w]/(w^2 - nu).
 */
template <typename Base>
class QuadExt
{
  public:
    using Ctx = QuadCtx<Base>;

    QuadExt() = default;

    QuadExt(Base c0, Base c1, const Ctx *ctx)
        : c0_(std::move(c0)), c1_(std::move(c1)), ctx_(ctx)
    {}

    static QuadExt
    zero(const Ctx *ctx)
    {
        return {Base::zero(ctx->base), Base::zero(ctx->base), ctx};
    }

    static QuadExt
    one(const Ctx *ctx)
    {
        return {Base::one(ctx->base), Base::zero(ctx->base), ctx};
    }

    /** The adjoined generator w. */
    static QuadExt
    gen(const Ctx *ctx)
    {
        return {Base::zero(ctx->base), Base::one(ctx->base), ctx};
    }

    QuadExt zeroLike() const { return zero(ctx_); }
    QuadExt oneLike() const { return one(ctx_); }

    const Base &c0() const { return c0_; }
    const Base &c1() const { return c1_; }
    const Ctx *fieldCtx() const { return ctx_; }

    // Linear operations --------------------------------------------------
    QuadExt
    add(const QuadExt &o) const
    {
        return {c0_.add(o.c0_), c1_.add(o.c1_), ctx_};
    }

    QuadExt
    sub(const QuadExt &o) const
    {
        return {c0_.sub(o.c0_), c1_.sub(o.c1_), ctx_};
    }

    QuadExt neg() const { return {c0_.neg(), c1_.neg(), ctx_}; }
    QuadExt dbl() const { return {c0_.dbl(), c1_.dbl(), ctx_}; }
    QuadExt tpl() const { return {c0_.tpl(), c1_.tpl(), ctx_}; }

    QuadExt
    halve() const
    {
        return {c0_.halve(), c1_.halve(), ctx_};
    }

    /** Conjugation w -> -w (the nontrivial automorphism over Base). */
    QuadExt conj() const { return {c0_, c1_.neg(), ctx_}; }

    // Multiplicative operations -------------------------------------------
    QuadExt
    mul(const QuadExt &o) const
    {
        // Lazy reduction: when the base is the prime field and nu is a
        // small integer (the bottom tower level, where every Fp
        // multiplication in the system ultimately lands), fold each
        // output coefficient into one sum-of-products with a single
        // Montgomery reduction:
        //   c0 = a0 b0 + nu a1 b1 ; c1 = a0 b1 + a1 b0
        // 4 wide products + 2 reductions instead of the 3-4 of the
        // variant formulas. Values are identical; the symbolic twin
        // (no kHasSumOfProducts) keeps the variant-dispatched path.
        if constexpr (requires { Base::kHasSumOfProducts; }) {
            if (ctx_->nu.kind == NuDesc::Kind::kSmallInt) {
                const i64 q = ctx_->nu.n0;
                Base r0 = Base::sumOfProducts(
                    ctx_->base, {{&c0_, &o.c0_, 1}, {&c1_, &o.c1_, q}});
                Base r1 = Base::sumOfProducts(
                    ctx_->base, {{&c0_, &o.c1_, 1}, {&c1_, &o.c0_, 1}});
                return {std::move(r0), std::move(r1), ctx_};
            }
        }
        switch (ctx_->variants.mul) {
          case MulVariant::Schoolbook: {
            // c0 = a0 b0 + nu a1 b1 ; c1 = a0 b1 + a1 b0   (4M)
            const Base v0 = c0_.mul(o.c0_);
            const Base v1 = c1_.mul(o.c1_);
            return {v0.add(ctx_->mulByNu(v1)),
                    c0_.mul(o.c1_).add(c1_.mul(o.c0_)), ctx_};
          }
          case MulVariant::Karatsuba: {
            // 3M: v0 = a0 b0, v1 = a1 b1,
            // c1 = (a0+a1)(b0+b1) - v0 - v1, c0 = v0 + nu v1
            const Base v0 = c0_.mul(o.c0_);
            const Base v1 = c1_.mul(o.c1_);
            const Base t = c0_.add(c1_).mul(o.c0_.add(o.c1_));
            return {v0.add(ctx_->mulByNu(v1)), t.sub(v0).sub(v1), ctx_};
          }
        }
        panic("bad MulVariant");
    }

    QuadExt
    sqr() const
    {
        // Lazy squaring at the bottom level: c0 = a0^2 + nu a1^2 is one
        // sum of two wide *squares* (cheaper than wide products) with a
        // single reduction; c1 = 2 a0 a1 is one multiplication.
        if constexpr (requires { Base::kHasSumOfProducts; }) {
            if (ctx_->nu.kind == NuDesc::Kind::kSmallInt) {
                const i64 q = ctx_->nu.n0;
                Base r0 = Base::sumOfProducts(
                    ctx_->base, {{&c0_, &c0_, 1}, {&c1_, &c1_, q}});
                return {std::move(r0), c0_.mul(c1_).dbl(), ctx_};
            }
        }
        switch (ctx_->variants.sqr) {
          case SqrVariant::Complex: {
            // 2M: v0 = a0 a1;
            // c0 = (a0 + a1)(a0 + nu a1) - v0 - nu v0; c1 = 2 v0
            const Base v0 = c0_.mul(c1_);
            const Base t =
                c0_.add(c1_).mul(c0_.add(ctx_->mulByNu(c1_)));
            return {t.sub(v0).sub(ctx_->mulByNu(v0)), v0.dbl(), ctx_};
          }
          case SqrVariant::Schoolbook:
          default: {
            // 2S+1M: c0 = a0^2 + nu a1^2 ; c1 = 2 a0 a1
            const Base s0 = c0_.sqr();
            const Base s1 = c1_.sqr();
            return {s0.add(ctx_->mulByNu(s1)), c0_.mul(c1_).dbl(), ctx_};
          }
        }
    }

    /** Inverse: (a0 - a1 w) / (a0^2 - nu a1^2). Zero maps to zero. */
    QuadExt
    inv() const
    {
        const Base norm = c0_.sqr().sub(ctx_->mulByNu(c1_.sqr()));
        const Base t = norm.inv();
        return {c0_.mul(t), c1_.mul(t).neg(), ctx_};
    }

    /** Frobenius x -> x^p (single application). */
    QuadExt
    frob() const
    {
        return {c0_.frob(), c1_.frob().mul(ctx_->frobC1), ctx_};
    }

    /** Multiply by the own generator w: (a0 + a1 w) w = nu a1 + a0 w. */
    QuadExt
    mulByGen() const
    {
        return {ctx_->mulByNu(c1_), c0_, ctx_};
    }

    /**
     * Multiply by a constant n0 + n1*w with small integer coefficients
     * (used when a higher level's non-residue lives at this level).
     */
    QuadExt
    mulBySmallPair(i64 n0, i64 n1) const
    {
        const Base t0 =
            muliSmall(c0_, n0).add(ctx_->mulByNu(muliSmall(c1_, n1)));
        const Base t1 = muliSmall(c0_, n1).add(muliSmall(c1_, n0));
        return {t0, t1, ctx_};
    }

    /** Scalar multiply coordinates by a base-level element. */
    QuadExt
    scale(const Base &s) const
    {
        return {c0_.mul(s), c1_.mul(s), ctx_};
    }

    /** Multiply every Fp coefficient by an arbitrarily deep scalar. */
    template <typename S>
    QuadExt
    scaleScalar(const S &s) const
    {
        if constexpr (std::is_same_v<S, Base>) {
            return scale(s);
        } else {
            return {c0_.scaleScalar(s), c1_.scaleScalar(s), ctx_};
        }
    }

    // Native-only observers ------------------------------------------------
    bool isZero() const { return c0_.isZero() && c1_.isZero(); }

    bool
    equals(const QuadExt &o) const
    {
        return c0_.equals(o.c0_) && c1_.equals(o.c1_);
    }

    // Coefficient (de)serialization over Fp --------------------------------
    void
    toFpCoeffs(std::vector<BigInt> &out) const
    {
        c0_.toFpCoeffs(out);
        c1_.toFpCoeffs(out);
    }

    template <typename It>
    static QuadExt
    fromFpCoeffs(const Ctx *ctx, It &it)
    {
        Base a = Base::fromFpCoeffs(ctx->base, it);
        Base b = Base::fromFpCoeffs(ctx->base, it);
        return {std::move(a), std::move(b), ctx};
    }

  private:
    Base c0_, c1_;
    const Ctx *ctx_ = nullptr;
};

/**
 * Cubic extension Base[v]/(v^3 - nu).
 */
template <typename Base>
class CubicExt
{
  public:
    using Ctx = CubicCtx<Base>;

    CubicExt() = default;

    CubicExt(Base c0, Base c1, Base c2, const Ctx *ctx)
        : c0_(std::move(c0)), c1_(std::move(c1)), c2_(std::move(c2)),
          ctx_(ctx)
    {}

    static CubicExt
    zero(const Ctx *ctx)
    {
        return {Base::zero(ctx->base), Base::zero(ctx->base),
                Base::zero(ctx->base), ctx};
    }

    static CubicExt
    one(const Ctx *ctx)
    {
        return {Base::one(ctx->base), Base::zero(ctx->base),
                Base::zero(ctx->base), ctx};
    }

    /** The adjoined generator v. */
    static CubicExt
    gen(const Ctx *ctx)
    {
        return {Base::zero(ctx->base), Base::one(ctx->base),
                Base::zero(ctx->base), ctx};
    }

    CubicExt zeroLike() const { return zero(ctx_); }
    CubicExt oneLike() const { return one(ctx_); }

    const Base &c0() const { return c0_; }
    const Base &c1() const { return c1_; }
    const Base &c2() const { return c2_; }
    const Ctx *fieldCtx() const { return ctx_; }

    // Linear operations --------------------------------------------------
    CubicExt
    add(const CubicExt &o) const
    {
        return {c0_.add(o.c0_), c1_.add(o.c1_), c2_.add(o.c2_), ctx_};
    }

    CubicExt
    sub(const CubicExt &o) const
    {
        return {c0_.sub(o.c0_), c1_.sub(o.c1_), c2_.sub(o.c2_), ctx_};
    }

    CubicExt neg() const { return {c0_.neg(), c1_.neg(), c2_.neg(), ctx_}; }
    CubicExt dbl() const { return {c0_.dbl(), c1_.dbl(), c2_.dbl(), ctx_}; }
    CubicExt tpl() const { return {c0_.tpl(), c1_.tpl(), c2_.tpl(), ctx_}; }

    CubicExt
    halve() const
    {
        return {c0_.halve(), c1_.halve(), c2_.halve(), ctx_};
    }

    // Multiplicative operations -------------------------------------------
    CubicExt
    mul(const CubicExt &o) const
    {
        // Lazy reduction over a prime-field base with small-integer nu
        // (v^3 = nu): each output coefficient is one sum-of-products
        // with a single Montgomery reduction (3 reductions total
        // instead of 6-9).
        if constexpr (requires { Base::kHasSumOfProducts; }) {
            if (ctx_->nu.kind == NuDesc::Kind::kSmallInt) {
                const i64 q = ctx_->nu.n0;
                Base r0 = Base::sumOfProducts(ctx_->base,
                                              {{&c0_, &o.c0_, 1},
                                               {&c1_, &o.c2_, q},
                                               {&c2_, &o.c1_, q}});
                Base r1 = Base::sumOfProducts(ctx_->base,
                                              {{&c0_, &o.c1_, 1},
                                               {&c1_, &o.c0_, 1},
                                               {&c2_, &o.c2_, q}});
                Base r2 = Base::sumOfProducts(ctx_->base,
                                              {{&c0_, &o.c2_, 1},
                                               {&c1_, &o.c1_, 1},
                                               {&c2_, &o.c0_, 1}});
                return {std::move(r0), std::move(r1), std::move(r2),
                        ctx_};
            }
        }
        switch (ctx_->variants.mul) {
          case MulVariant::Schoolbook: {
            // 9M with reduction v^3 = nu.
            const Base t00 = c0_.mul(o.c0_);
            const Base t01 = c0_.mul(o.c1_);
            const Base t02 = c0_.mul(o.c2_);
            const Base t10 = c1_.mul(o.c0_);
            const Base t11 = c1_.mul(o.c1_);
            const Base t12 = c1_.mul(o.c2_);
            const Base t20 = c2_.mul(o.c0_);
            const Base t21 = c2_.mul(o.c1_);
            const Base t22 = c2_.mul(o.c2_);
            return {t00.add(ctx_->mulByNu(t12.add(t21))),
                    t01.add(t10).add(ctx_->mulByNu(t22)),
                    t02.add(t11).add(t20), ctx_};
          }
          case MulVariant::Karatsuba: {
            // 6M (Toom/Karatsuba interpolation-free form):
            // v0 = a0 b0, v1 = a1 b1, v2 = a2 b2
            // c0 = v0 + nu ((a1+a2)(b1+b2) - v1 - v2)
            // c1 = (a0+a1)(b0+b1) - v0 - v1 + nu v2
            // c2 = (a0+a2)(b0+b2) - v0 - v2 + v1
            const Base v0 = c0_.mul(o.c0_);
            const Base v1 = c1_.mul(o.c1_);
            const Base v2 = c2_.mul(o.c2_);
            const Base t12 = c1_.add(c2_).mul(o.c1_.add(o.c2_));
            const Base t01 = c0_.add(c1_).mul(o.c0_.add(o.c1_));
            const Base t02 = c0_.add(c2_).mul(o.c0_.add(o.c2_));
            return {v0.add(ctx_->mulByNu(t12.sub(v1).sub(v2))),
                    t01.sub(v0).sub(v1).add(ctx_->mulByNu(v2)),
                    t02.sub(v0).sub(v2).add(v1), ctx_};
          }
        }
        panic("bad MulVariant");
    }

    CubicExt
    sqr() const
    {
        // Lazy squaring: diagonal terms become wide squares, cross terms
        // carry their doubling in the lazy coefficient; 3 reductions.
        if constexpr (requires { Base::kHasSumOfProducts; }) {
            if (ctx_->nu.kind == NuDesc::Kind::kSmallInt) {
                const i64 q = ctx_->nu.n0;
                Base r0 = Base::sumOfProducts(
                    ctx_->base, {{&c0_, &c0_, 1}, {&c1_, &c2_, 2 * q}});
                Base r1 = Base::sumOfProducts(
                    ctx_->base, {{&c0_, &c1_, 2}, {&c2_, &c2_, q}});
                Base r2 = Base::sumOfProducts(
                    ctx_->base, {{&c0_, &c2_, 2}, {&c1_, &c1_, 1}});
                return {std::move(r0), std::move(r1), std::move(r2),
                        ctx_};
            }
        }
        switch (ctx_->variants.sqr) {
          case SqrVariant::CHSqr3: {
            // Chung-Hasan SQR3: 2M + 3S.
            const Base s0 = c0_.sqr();
            const Base s1 = c0_.mul(c1_).dbl();
            const Base s2 = c0_.sub(c1_).add(c2_).sqr();
            const Base s3 = c1_.mul(c2_).dbl();
            const Base s4 = c2_.sqr();
            return {s0.add(ctx_->mulByNu(s3)), s1.add(ctx_->mulByNu(s4)),
                    s1.add(s2).add(s3).sub(s0).sub(s4), ctx_};
          }
          case SqrVariant::CHSqr2: {
            // Chung-Hasan SQR2: 1M + 4S + 2 halvings.
            const Base s0 = c0_.sqr();
            const Base s1 = c0_.add(c1_).add(c2_).sqr();
            const Base s2 = c0_.sub(c1_).add(c2_).sqr();
            const Base s3 = c1_.mul(c2_).dbl();
            const Base s4 = c2_.sqr();
            const Base sumHalf = s1.add(s2).halve();
            const Base diffHalf = s1.sub(s2).halve();
            return {s0.add(ctx_->mulByNu(s3)),
                    diffHalf.sub(s3).add(ctx_->mulByNu(s4)),
                    sumHalf.sub(s0).sub(s4), ctx_};
          }
          case SqrVariant::Schoolbook:
          case SqrVariant::Complex:
          default: {
            // 3S + 3M schoolbook squaring.
            const Base s0 = c0_.sqr();
            const Base s1 = c1_.sqr();
            const Base s2 = c2_.sqr();
            const Base t01 = c0_.mul(c1_).dbl();
            const Base t02 = c0_.mul(c2_).dbl();
            const Base t12 = c1_.mul(c2_).dbl();
            return {s0.add(ctx_->mulByNu(t12)),
                    t01.add(ctx_->mulByNu(s2)), t02.add(s1), ctx_};
          }
        }
    }

    /** Inverse via the adjugate formulas (zero maps to zero). */
    CubicExt
    inv() const
    {
        const Base d0 = c0_.sqr().sub(ctx_->mulByNu(c1_.mul(c2_)));
        const Base d1 = ctx_->mulByNu(c2_.sqr()).sub(c0_.mul(c1_));
        const Base d2 = c1_.sqr().sub(c0_.mul(c2_));
        const Base norm = c0_.mul(d0).add(
            ctx_->mulByNu(c2_.mul(d1).add(c1_.mul(d2))));
        const Base t = norm.inv();
        return {d0.mul(t), d1.mul(t), d2.mul(t), ctx_};
    }

    /** Frobenius x -> x^p. */
    CubicExt
    frob() const
    {
        return {c0_.frob(), c1_.frob().mul(ctx_->frobC1),
                c2_.frob().mul(ctx_->frobC2), ctx_};
    }

    /** Multiply by own generator v: (a0,a1,a2) v = (nu a2, a0, a1). */
    CubicExt
    mulByGen() const
    {
        return {ctx_->mulByNu(c2_), c0_, c1_, ctx_};
    }

    /** Scalar multiply coordinates by a base-level element. */
    CubicExt
    scale(const Base &s) const
    {
        return {c0_.mul(s), c1_.mul(s), c2_.mul(s), ctx_};
    }

    /** Multiply every Fp coefficient by an arbitrarily deep scalar. */
    template <typename S>
    CubicExt
    scaleScalar(const S &s) const
    {
        if constexpr (std::is_same_v<S, Base>) {
            return scale(s);
        } else {
            return {c0_.scaleScalar(s), c1_.scaleScalar(s),
                    c2_.scaleScalar(s), ctx_};
        }
    }

    // Native-only observers ------------------------------------------------
    bool
    isZero() const
    {
        return c0_.isZero() && c1_.isZero() && c2_.isZero();
    }

    bool
    equals(const CubicExt &o) const
    {
        return c0_.equals(o.c0_) && c1_.equals(o.c1_) && c2_.equals(o.c2_);
    }

    void
    toFpCoeffs(std::vector<BigInt> &out) const
    {
        c0_.toFpCoeffs(out);
        c1_.toFpCoeffs(out);
        c2_.toFpCoeffs(out);
    }

    template <typename It>
    static CubicExt
    fromFpCoeffs(const Ctx *ctx, It &it)
    {
        Base a = Base::fromFpCoeffs(ctx->base, it);
        Base b = Base::fromFpCoeffs(ctx->base, it);
        Base c = Base::fromFpCoeffs(ctx->base, it);
        return {std::move(a), std::move(b), std::move(c), ctx};
    }

  private:
    Base c0_, c1_, c2_;
    const Ctx *ctx_ = nullptr;
};

} // namespace finesse

#endif // FINESSE_FIELD_EXT_H_
