/**
 * @file
 * Operator-variant descriptors (Table 5 of the paper). A variant selects
 * the arithmetic decomposition used when one tower level is expressed in
 * terms of the level below (e.g. Karatsuba vs Schoolbook multiplication).
 * The same variant tables drive both the native library and the compiler's
 * lowering, which is how Finesse keeps software and hardware views
 * consistent.
 */
#ifndef FINESSE_FIELD_VARIANTS_H_
#define FINESSE_FIELD_VARIANTS_H_

#include <map>
#include <string>

#include "support/common.h"

namespace finesse {

/** Multiplication decomposition for an extension level. */
enum class MulVariant {
    Schoolbook, ///< quadratic: 4M; cubic: 9M
    Karatsuba,  ///< quadratic: 3M; cubic: 6M
};

/** Squaring decomposition for an extension level. */
enum class SqrVariant {
    Schoolbook, ///< quadratic: 2S+1M; cubic: 3S+3M
    Complex,    ///< quadratic only: 2M
    CHSqr2,     ///< cubic only: Chung-Hasan asymmetric squaring, variant 2
    CHSqr3,     ///< cubic only: Chung-Hasan asymmetric squaring, variant 3
};

/** Point arithmetic coordinate system for curve operators. */
enum class CoordSystem {
    Jacobian,   ///< (X/Z^2, Y/Z^3)
    Projective, ///< homogeneous (X/Z, Y/Z)
};

/** Human-readable variant names (for DSE reports and cache keys). */
inline const char *
toString(MulVariant v)
{
    switch (v) {
      case MulVariant::Schoolbook:
        return "schoolbook";
      case MulVariant::Karatsuba:
        return "karatsuba";
    }
    return "?";
}

inline const char *
toString(SqrVariant v)
{
    switch (v) {
      case SqrVariant::Schoolbook:
        return "schoolbook";
      case SqrVariant::Complex:
        return "complex";
      case SqrVariant::CHSqr2:
        return "ch-sqr2";
      case SqrVariant::CHSqr3:
        return "ch-sqr3";
    }
    return "?";
}

inline const char *
toString(CoordSystem c)
{
    return c == CoordSystem::Jacobian ? "jacobian" : "projective";
}

/** Variant choice for one tower level. */
struct LevelVariants
{
    MulVariant mul = MulVariant::Karatsuba;
    SqrVariant sqr = SqrVariant::Complex; // quadratic default
};

/**
 * Full operator-variant combination: one entry per extension degree
 * (2, 4, 6, 12, 24 as applicable to the curve's tower), plus the G2
 * coordinate system. This is one axis of the co-design space (Sec. 3.6).
 */
struct VariantConfig
{
    std::map<int, LevelVariants> levels;
    CoordSystem g2Coords = CoordSystem::Jacobian;
    /** Granger-Scott squaring in the final-exponentiation hard part
     *  (on by default: part of the paper's operator kit, Sec. 2.1). */
    bool cyclotomicSqr = true;

    /** Variants for degree @p d, defaulting when unspecified. */
    LevelVariants
    level(int d) const
    {
        auto it = levels.find(d);
        if (it != levels.end())
            return it->second;
        LevelVariants lv;
        // Default cubic squaring is CH-SQR3 (degree divisible by 3 over
        // its base means the level is cubic).
        lv.sqr = SqrVariant::Complex;
        return lv;
    }

    /**
     * Stable string key for caching/reporting: every level choice plus
     * the coordinate-system and cyclotomic flags. Two configs with the
     * same key trace to identical modules on any given curve.
     */
    std::string
    cacheKey() const
    {
        std::string s;
        for (const auto &[d, lv] : levels) {
            s += std::to_string(d);
            s += ':';
            s += toString(lv.mul);
            s += '/';
            s += toString(lv.sqr);
            s += ';';
        }
        s += g2Coords == CoordSystem::Jacobian ? "jac" : "proj";
        s += cyclotomicSqr ? "+cyclo" : "-cyclo";
        return s;
    }

    /** All-Karatsuba configuration for the given tower degrees. */
    static VariantConfig
    allKaratsuba(std::initializer_list<int> degrees)
    {
        VariantConfig cfg;
        for (int d : degrees)
            cfg.levels[d] = {MulVariant::Karatsuba, SqrVariant::Complex};
        return cfg;
    }

    /** All-Schoolbook configuration for the given tower degrees. */
    static VariantConfig
    allSchoolbook(std::initializer_list<int> degrees)
    {
        VariantConfig cfg;
        for (int d : degrees)
            cfg.levels[d] = {MulVariant::Schoolbook, SqrVariant::Schoolbook};
        return cfg;
    }
};

} // namespace finesse

#endif // FINESSE_FIELD_VARIANTS_H_
