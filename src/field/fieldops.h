/**
 * @file
 * Generic helpers shared by every field element type (native or
 * symbolic): small-scalar multiplication via linear-op chains and
 * exponentiation by arbitrary big integers. These correspond to the
 * paper's `muli` and `exp` IR operations: both lower to the linear/
 * multiplicative ISA ops at compile time since scalars and exponents are
 * curve constants.
 */
#ifndef FINESSE_FIELD_FIELDOPS_H_
#define FINESSE_FIELD_FIELDOPS_H_

#include <type_traits>
#include <vector>

#include "bigint/bigint.h"
#include "field/fp.h"
#include "support/common.h"

namespace finesse {

/**
 * a * k for a small integer k, expressed with linear operations only
 * (NEG/DBL/TPL/ADD/SUB chains) so that no modular multiplier is spent on
 * constant scaling. Works for any element type.
 */
template <typename F>
F
muliSmall(const F &a, i64 k)
{
    if (k < 0)
        return muliSmall(a, -k).neg();
    switch (k) {
      case 0:
        return a.zeroLike();
      case 1:
        return a;
      case 2:
        return a.dbl();
      case 3:
        return a.tpl();
      case 4:
        return a.dbl().dbl();
      case 5:
        return a.dbl().dbl().add(a);
      case 6:
        return a.tpl().dbl();
      case 8:
        return a.dbl().dbl().dbl();
      case 9:
        return a.tpl().tpl();
      case 12:
        return a.tpl().dbl().dbl();
      default:
        break;
    }
    // Binary double-and-add from the most significant bit.
    F acc = a;
    int top = 63 - __builtin_clzll(static_cast<u64>(k));
    for (int i = top - 1; i >= 0; --i) {
        acc = acc.dbl();
        if ((k >> i) & 1)
            acc = acc.add(a);
    }
    return acc;
}

/**
 * Batch inversion in place (Montgomery's trick) for any element type:
 * one inv() + 3(n-1) muls replace n inversions, with bit-identical
 * results (every intermediate is fully reduced, and the reduced
 * inverse is unique). Zero elements stay zero and are skipped by the
 * product chain. Fp lowers to the residue-level MontCtx::batchInv;
 * tower elements (G2 twist coordinates) run the same trick over their
 * own mul/inv.
 */
template <typename F>
void
batchInvInPlace(std::vector<F> &elems)
{
    if constexpr (std::is_same_v<F, Fp>) {
        Fp::batchInv(elems);
    } else {
        const size_t n = elems.size();
        if (n == 0)
            return;
        std::vector<F> prefix;
        prefix.reserve(n);
        F acc = elems[0].oneLike();
        for (size_t i = 0; i < n; ++i) {
            if (!elems[i].isZero())
                acc = acc.mul(elems[i]);
            prefix.push_back(acc);
        }
        F invAcc = acc.inv();
        for (size_t i = n; i-- > 0;) {
            if (elems[i].isZero())
                continue;
            const F orig = elems[i];
            elems[i] = i == 0 ? invAcc : invAcc.mul(prefix[i - 1]);
            invAcc = invAcc.mul(orig);
        }
    }
}

/** a^e by square-and-multiply for a non-negative big-integer exponent. */
template <typename F>
F
powBig(const F &a, const BigInt &e)
{
    FINESSE_CHECK(!e.isNegative(), "powBig: negative exponent");
    F result = a.oneLike();
    for (int i = e.bitLength(); i-- > 0;) {
        result = result.sqr();
        if (e.bit(i))
            result = result.mul(a);
    }
    return result;
}

} // namespace finesse

#endif // FINESSE_FIELD_FIELDOPS_H_
