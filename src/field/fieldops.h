/**
 * @file
 * Generic helpers shared by every field element type (native or
 * symbolic): small-scalar multiplication via linear-op chains and
 * exponentiation by arbitrary big integers. These correspond to the
 * paper's `muli` and `exp` IR operations: both lower to the linear/
 * multiplicative ISA ops at compile time since scalars and exponents are
 * curve constants.
 */
#ifndef FINESSE_FIELD_FIELDOPS_H_
#define FINESSE_FIELD_FIELDOPS_H_

#include "bigint/bigint.h"
#include "support/common.h"

namespace finesse {

/**
 * a * k for a small integer k, expressed with linear operations only
 * (NEG/DBL/TPL/ADD/SUB chains) so that no modular multiplier is spent on
 * constant scaling. Works for any element type.
 */
template <typename F>
F
muliSmall(const F &a, i64 k)
{
    if (k < 0)
        return muliSmall(a, -k).neg();
    switch (k) {
      case 0:
        return a.zeroLike();
      case 1:
        return a;
      case 2:
        return a.dbl();
      case 3:
        return a.tpl();
      case 4:
        return a.dbl().dbl();
      case 5:
        return a.dbl().dbl().add(a);
      case 6:
        return a.tpl().dbl();
      case 8:
        return a.dbl().dbl().dbl();
      case 9:
        return a.tpl().tpl();
      case 12:
        return a.tpl().dbl().dbl();
      default:
        break;
    }
    // Binary double-and-add from the most significant bit.
    F acc = a;
    int top = 63 - __builtin_clzll(static_cast<u64>(k));
    for (int i = top - 1; i >= 0; --i) {
        acc = acc.dbl();
        if ((k >> i) & 1)
            acc = acc.add(a);
    }
    return acc;
}

/** a^e by square-and-multiply for a non-negative big-integer exponent. */
template <typename F>
F
powBig(const F &a, const BigInt &e)
{
    FINESSE_CHECK(!e.isNegative(), "powBig: negative exponent");
    F result = a.oneLike();
    for (int i = e.bitLength(); i-- > 0;) {
        result = result.sqr();
        if (e.bit(i))
            result = result.mul(a);
    }
    return result;
}

} // namespace finesse

#endif // FINESSE_FIELD_FIELDOPS_H_
