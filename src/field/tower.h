/**
 * @file
 * Tower-field shapes for embedding degrees 12 (BN, BLS12) and 24 (BLS24).
 *
 * A tower is described by serializable parameters (TowerParams: the Fp2
 * non-residue q, the Fp6/Fp4 non-residue xi, and the precomputed
 * Frobenius constants as flat Fp coefficient lists). The generic
 * builders can then instantiate the tower over *any* base element type:
 * the native Fp for computation, or the compiler's symbolic SymFp for IR
 * generation. This mirrors the paper's "constants needed in lowering
 * mappings fit in a small table" abstraction-overhead argument.
 *
 * Tower shapes (canonical chains along the divisor lattice of 24):
 *   k = 12: Fp2 = Fp[u]/(u^2 - q); Fp6 = Fp2[v]/(v^3 - xi);
 *           Fp12 = Fp6[w]/(w^2 - v)
 *   k = 24: Fp2 = Fp[u]/(u^2 - q); Fp4 = Fp2[s]/(s^2 - xi);
 *           Fp12' = Fp4[v]/(v^3 - s); Fp24 = Fp12'[w]/(w^2 - v)
 * In both cases GT = Ft[z]/(z^6 - xi_t) with z = w and Ft = Fp^(k/6),
 * which is the representation the twist/line arithmetic relies on.
 */
#ifndef FINESSE_FIELD_TOWER_H_
#define FINESSE_FIELD_TOWER_H_

#include <array>
#include <vector>

#include "field/ext.h"
#include "field/fp.h"

namespace finesse {

/** Serialized tower description (shape + Frobenius constant tables). */
struct TowerParams
{
    int k = 12; ///< embedding degree: 12 or 24
    BigInt p;   ///< base field modulus
    i64 q = -1; ///< Fp2 non-residue (u^2 = q)
    i64 xi0 = 1, xi1 = 1; ///< xi = xi0 + xi1*u over Fp2

    // Frobenius constants, flattened to Fp coefficients.
    std::vector<BigInt> frobC2;    ///< q^((p-1)/2) in Fp           (1)
    std::vector<BigInt> frobMid1;  ///< k12: xi^((p-1)/3) in Fp2    (2)
                                   ///< k24: xi^((p-1)/2) in Fp2    (2)
    std::vector<BigInt> frobCub1;  ///< k12: unused; k24: s^((p-1)/3)
                                   ///< in Fp4                       (4)
    std::vector<BigInt> frobCub2;  ///< square of the cubic constant
    std::vector<BigInt> frobTop;   ///< v^((p-1)/2) in Fp^(k/2)
};

/**
 * Compute tower parameters natively for embedding degree 12 or 24,
 * validating irreducibility of every level (fatal on bad q/xi choices).
 */
TowerParams computeTowerParams(const BigInt &p, int k, i64 q, i64 xi0,
                               i64 xi1);

/**
 * Search small (q, xi) defining a valid tower for modulus p: the
 * smallest |q| non-residue and the smallest xi = xi0 + xi1*u that is
 * neither a square nor a cube in Fp2.
 */
void searchTowerNonResidues(const BigInt &p, i64 &q, i64 &xi0, i64 &xi1);

/** Embedding-degree 12 tower over base element type FpT. */
template <typename FpT>
struct Tower12
{
    using Fp2T = QuadExt<FpT>;
    using Fp6T = CubicExt<Fp2T>;
    using Fp12T = QuadExt<Fp6T>;
    using BaseT = FpT;
    using FtT = Fp2T;  ///< field of the twist curve (G2 coordinates)
    using GtT = Fp12T; ///< target-group field

    static constexpr int kEmbedding = 12;
    static constexpr int kFtDegree = 2;

    Tower12() = default;
    Tower12(const Tower12 &) = delete;
    Tower12 &operator=(const Tower12 &) = delete;

    const typename FpT::Ctx *fp = nullptr;
    QuadCtx<FpT> fp2;
    CubicCtx<Fp2T> fp6;
    QuadCtx<Fp6T> fp12;
    i64 xi0 = 0, xi1 = 0;

    const typename FpT::Ctx *fpCtx() const { return fp; }
    const typename FtT::Ctx *ftCtx() const { return &fp2; }
    const typename GtT::Ctx *gtCtx() const { return &fp12; }
    const CubicCtx<Fp2T> *cubicCtx() const { return &fp6; }

    /** xi_t with z^6 = xi_t over Ft (the twist constant). */
    FtT
    twistXi() const
    {
        return FtT::one(&fp2).mulBySmallPair(xi0, xi1);
    }

    /** Cheap multiplication by xi_t (small-coefficient linear map). */
    FtT
    mulByXi(const FtT &x) const
    {
        return x.mulBySmallPair(xi0, xi1);
    }

    /** Assemble a GT element from its six z-slot coefficients. */
    GtT
    fromSlots(const std::array<FtT, 6> &s) const
    {
        Fp6T a{s[0], s[2], s[4], &fp6};
        Fp6T b{s[1], s[3], s[5], &fp6};
        return {std::move(a), std::move(b), &fp12};
    }
};

/** Embedding-degree 24 tower over base element type FpT. */
template <typename FpT>
struct Tower24
{
    using Fp2T = QuadExt<FpT>;
    using Fp4T = QuadExt<Fp2T>;
    using Fp12T = CubicExt<Fp4T>;
    using Fp24T = QuadExt<Fp12T>;
    using BaseT = FpT;
    using FtT = Fp4T;
    using GtT = Fp24T;

    static constexpr int kEmbedding = 24;
    static constexpr int kFtDegree = 4;

    Tower24() = default;
    Tower24(const Tower24 &) = delete;
    Tower24 &operator=(const Tower24 &) = delete;

    const typename FpT::Ctx *fp = nullptr;
    QuadCtx<FpT> fp2;
    QuadCtx<Fp2T> fp4;
    CubicCtx<Fp4T> fp12;
    QuadCtx<Fp12T> fp24;
    i64 xi0 = 0, xi1 = 0;

    const typename FpT::Ctx *fpCtx() const { return fp; }
    const typename FtT::Ctx *ftCtx() const { return &fp4; }
    const typename GtT::Ctx *gtCtx() const { return &fp24; }
    const CubicCtx<Fp4T> *cubicCtx() const { return &fp12; }

    /** z^6 = s = generator of Fp4. */
    FtT
    twistXi() const
    {
        return FtT::gen(&fp4);
    }

    /** Cheap multiplication by xi_t = s (coefficient shift). */
    FtT
    mulByXi(const FtT &x) const
    {
        return x.mulByGen();
    }

    GtT
    fromSlots(const std::array<FtT, 6> &s) const
    {
        Fp12T a{s[0], s[2], s[4], &fp12};
        Fp12T b{s[1], s[3], s[5], &fp12};
        return {std::move(a), std::move(b), &fp24};
    }
};

namespace detail {

template <typename F>
F
elemFromCoeffs(const typename F::Ctx *ctx, const std::vector<BigInt> &v)
{
    auto it = v.begin();
    F r = F::fromFpCoeffs(ctx, it);
    FINESSE_CHECK(it == v.end(), "coefficient count mismatch");
    return r;
}

} // namespace detail

/**
 * Build a degree-12 tower over FpT from serialized parameters. FpT may
 * be the native Fp or the compiler's symbolic base type.
 */
template <typename FpT>
void
buildTower(Tower12<FpT> &t, const typename FpT::Ctx *fpctx,
           const TowerParams &prm, const VariantConfig &vc)
{
    FINESSE_CHECK(prm.k == 12);
    t.fp = fpctx;
    t.xi0 = prm.xi0;
    t.xi1 = prm.xi1;

    t.fp2.base = fpctx;
    t.fp2.nu = NuDesc::smallInt(prm.q);
    t.fp2.degree = 2;
    t.fp2.variants = vc.level(2);
    t.fp2.frobC1 = detail::elemFromCoeffs<FpT>(fpctx, prm.frobC2);

    t.fp6.base = &t.fp2;
    t.fp6.nu = NuDesc::quadSmall(prm.xi0, prm.xi1);
    t.fp6.degree = 6;
    t.fp6.variants = vc.level(6);
    if (t.fp6.variants.sqr == SqrVariant::Complex)
        t.fp6.variants.sqr = SqrVariant::CHSqr3; // cubic default
    t.fp6.frobC1 =
        detail::elemFromCoeffs<typename Tower12<FpT>::Fp2T>(&t.fp2,
                                                            prm.frobMid1);
    t.fp6.frobC2 =
        prm.frobCub2.empty()
            ? t.fp6.frobC1.sqr()
            : detail::elemFromCoeffs<typename Tower12<FpT>::Fp2T>(
                  &t.fp2, prm.frobCub2);

    t.fp12.base = &t.fp6;
    t.fp12.nu = NuDesc::baseGen();
    t.fp12.degree = 12;
    t.fp12.variants = vc.level(12);
    t.fp12.frobC1 =
        detail::elemFromCoeffs<typename Tower12<FpT>::Fp6T>(&t.fp6,
                                                            prm.frobTop);
}

/** Build a degree-24 tower over FpT from serialized parameters. */
template <typename FpT>
void
buildTower(Tower24<FpT> &t, const typename FpT::Ctx *fpctx,
           const TowerParams &prm, const VariantConfig &vc)
{
    FINESSE_CHECK(prm.k == 24);
    t.fp = fpctx;
    t.xi0 = prm.xi0;
    t.xi1 = prm.xi1;

    t.fp2.base = fpctx;
    t.fp2.nu = NuDesc::smallInt(prm.q);
    t.fp2.degree = 2;
    t.fp2.variants = vc.level(2);
    t.fp2.frobC1 = detail::elemFromCoeffs<FpT>(fpctx, prm.frobC2);

    t.fp4.base = &t.fp2;
    t.fp4.nu = NuDesc::quadSmall(prm.xi0, prm.xi1);
    t.fp4.degree = 4;
    t.fp4.variants = vc.level(4);
    t.fp4.frobC1 =
        detail::elemFromCoeffs<typename Tower24<FpT>::Fp2T>(&t.fp2,
                                                            prm.frobMid1);

    t.fp12.base = &t.fp4;
    t.fp12.nu = NuDesc::baseGen();
    t.fp12.degree = 12;
    t.fp12.variants = vc.level(12);
    if (t.fp12.variants.sqr == SqrVariant::Complex)
        t.fp12.variants.sqr = SqrVariant::CHSqr3; // cubic default
    t.fp12.frobC1 =
        detail::elemFromCoeffs<typename Tower24<FpT>::Fp4T>(&t.fp4,
                                                            prm.frobCub1);
    t.fp12.frobC2 =
        detail::elemFromCoeffs<typename Tower24<FpT>::Fp4T>(&t.fp4,
                                                            prm.frobCub2);

    t.fp24.base = &t.fp12;
    t.fp24.nu = NuDesc::baseGen();
    t.fp24.degree = 24;
    t.fp24.variants = vc.level(24);
    t.fp24.frobC1 =
        detail::elemFromCoeffs<typename Tower24<FpT>::Fp12T>(&t.fp12,
                                                             prm.frobTop);
}

/** Native tower aliases. */
using NativeTower12 = Tower12<Fp>;
using NativeTower24 = Tower24<Fp>;

using Fp2 = NativeTower12::Fp2T;
using Fp6 = NativeTower12::Fp6T;
using Fp12 = NativeTower12::Fp12T;
using Fp4 = NativeTower24::Fp4T;
using Fp12b = NativeTower24::Fp12T;
using Fp24 = NativeTower24::Fp24T;

/** Apply Frobenius n times (x -> x^(p^n)). */
template <typename F>
F
frobN(F x, int n)
{
    for (int i = 0; i < n; ++i)
        x = x.frob();
    return x;
}

/** Multiply every Fp coefficient of @p x by the base scalar @p s. */
template <typename F, typename S>
F
scaleByFp(const F &x, const S &s)
{
    return x.scaleScalar(s);
}

} // namespace finesse

#endif // FINESSE_FIELD_TOWER_H_
