/**
 * @file
 * Native computation of tower parameters: validation of non-residue
 * choices (irreducibility of every tower level) and precomputation of
 * the Frobenius constant tables that the compiler later treats as
 * lowering constants.
 */
#include "field/tower.h"

#include "field/fieldops.h"

namespace finesse {

namespace {

/** Flatten a native element's Fp coefficients. */
template <typename F>
std::vector<BigInt>
flat(const F &x)
{
    std::vector<BigInt> v;
    x.toFpCoeffs(v);
    return v;
}

} // namespace

TowerParams
computeTowerParams(const BigInt &p, int k, i64 q, i64 xi0, i64 xi1)
{
    FINESSE_REQUIRE(k == 12 || k == 24, "unsupported embedding degree ", k);
    FINESSE_REQUIRE((p % BigInt(u64{6})) == BigInt(u64{1}),
                    "towers require p = 1 mod 6");

    TowerParams prm;
    prm.k = k;
    prm.p = p;
    prm.q = q;
    prm.xi0 = xi0;
    prm.xi1 = xi1;

    FpCtx fp(p);
    const BigInt pm1 = p - BigInt(u64{1});

    // Level Fp2: q must be a quadratic non-residue mod p.
    const BigInt qpow = BigInt(q).mod(p).powMod(pm1 >> 1, p);
    FINESSE_REQUIRE(qpow == pm1, "q = ", q,
                    " is not a quadratic non-residue mod p");
    prm.frobC2 = {qpow};

    QuadCtx<Fp> fp2ctx;
    fp2ctx.base = &fp;
    fp2ctx.nu = NuDesc::smallInt(q);
    fp2ctx.degree = 2;
    fp2ctx.frobC1 = Fp::fromBig(&fp, qpow);

    const Fp2 one2 = Fp2::one(&fp2ctx);
    const Fp2 xi = one2.mulBySmallPair(xi0, xi1);
    const BigInt p2m1 = p * p - BigInt(u64{1});

    if (k == 12) {
        // Fp6 = Fp2[v]/(v^3 - xi) and Fp12 = Fp6[w]/(w^2 - v) need xi to
        // be neither a square nor a cube in Fp2.
        FINESSE_REQUIRE(!powBig(xi, p2m1 >> 1).equals(one2),
                        "xi is a square in Fp2");
        FINESSE_REQUIRE(!powBig(xi, p2m1.divExact(BigInt(u64{3}))).equals(
                            one2),
                        "xi is a cube in Fp2");

        const Fp2 c6 = powBig(xi, pm1.divExact(BigInt(u64{3})));
        prm.frobMid1 = flat(c6);
        prm.frobCub2 = flat(c6.sqr());

        CubicCtx<Fp2> fp6ctx;
        fp6ctx.base = &fp2ctx;
        fp6ctx.nu = NuDesc::quadSmall(xi0, xi1);
        fp6ctx.degree = 6;
        fp6ctx.frobC1 = c6;
        fp6ctx.frobC2 = c6.sqr();

        const Fp6 v = Fp6::gen(&fp6ctx);
        prm.frobTop = flat(powBig(v, pm1 >> 1));
        return prm;
    }

    // k == 24.
    // Fp4 = Fp2[s]/(s^2 - xi): xi must be a non-square in Fp2.
    FINESSE_REQUIRE(!powBig(xi, p2m1 >> 1).equals(one2),
                    "xi is a square in Fp2");
    const Fp2 c4 = powBig(xi, pm1 >> 1);
    prm.frobMid1 = flat(c4);

    QuadCtx<Fp2> fp4ctx;
    fp4ctx.base = &fp2ctx;
    fp4ctx.nu = NuDesc::quadSmall(xi0, xi1);
    fp4ctx.degree = 4;
    fp4ctx.frobC1 = c4;

    // Fp12' = Fp4[v]/(v^3 - s): s must be a non-cube in Fp4.
    const Fp4 s = Fp4::gen(&fp4ctx);
    const Fp4 one4 = Fp4::one(&fp4ctx);
    const BigInt p4m1 = p.pow(4) - BigInt(u64{1});
    FINESSE_REQUIRE(!powBig(s, p4m1.divExact(BigInt(u64{3}))).equals(one4),
                    "s is a cube in Fp4");

    const Fp4 c12 = powBig(s, pm1.divExact(BigInt(u64{3})));
    prm.frobCub1 = flat(c12);
    prm.frobCub2 = flat(c12.sqr());

    CubicCtx<Fp4> fp12ctx;
    fp12ctx.base = &fp4ctx;
    fp12ctx.nu = NuDesc::baseGen();
    fp12ctx.degree = 12;
    fp12ctx.frobC1 = c12;
    fp12ctx.frobC2 = c12.sqr();

    // Fp24 = Fp12'[w]/(w^2 - v): v must be a non-square in Fp12'.
    const Fp12b v = Fp12b::gen(&fp12ctx);
    const Fp12b one12 = Fp12b::one(&fp12ctx);
    const BigInt p12m1 = p.pow(12) - BigInt(u64{1});
    FINESSE_REQUIRE(!powBig(v, p12m1 >> 1).equals(one12),
                    "v is a square in Fp12'");

    prm.frobTop = flat(powBig(v, pm1 >> 1));
    return prm;
}

void
searchTowerNonResidues(const BigInt &p, i64 &q, i64 &xi0, i64 &xi1)
{
    const BigInt pm1 = p - BigInt(u64{1});
    static const i64 qCandidates[] = {-1, -2, -3, -5, 2,  3,
                                      5,  7,  -7, 11, -11};
    for (i64 qc : qCandidates) {
        if (BigInt(qc).mod(p).powMod(pm1 >> 1, p) != pm1)
            continue;
        // xi candidates: small coefficient pairs, preferring 1 + u.
        static const std::pair<i64, i64> xiCandidates[] = {
            {1, 1},  {0, 1}, {1, -1}, {2, 1}, {1, 2}, {3, 1},
            {-1, 1}, {2, 3}, {1, 3},  {4, 1}, {5, 1}, {1, 4}};
        FpCtx fp(p);
        QuadCtx<Fp> fp2ctx;
        fp2ctx.base = &fp;
        fp2ctx.nu = NuDesc::smallInt(qc);
        fp2ctx.degree = 2;
        fp2ctx.frobC1 = Fp::fromBig(&fp, pm1);
        const Fp2 one2 = Fp2::one(&fp2ctx);
        const BigInt p2m1 = p * p - BigInt(u64{1});
        for (auto [a, b] : xiCandidates) {
            const Fp2 xi = one2.mulBySmallPair(a, b);
            if (xi.isZero())
                continue;
            if (powBig(xi, p2m1 >> 1).equals(one2))
                continue; // square
            if (powBig(xi, p2m1.divExact(BigInt(u64{3}))).equals(one2))
                continue; // cube
            q = qc;
            xi0 = a;
            xi1 = b;
            return;
        }
    }
    fatal("no small tower non-residues found for p = ", p.toHexString());
}

} // namespace finesse
