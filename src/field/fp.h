/**
 * @file
 * Native base-field element Fp. This is the "reference library" view of
 * the base field: concrete Montgomery arithmetic, used by the operator
 * kit, the curve/pairing stack and by the functional simulator's
 * cross-validation oracle.
 *
 * The symbolic counterpart (compiler/symfp.h) exposes the identical
 * method surface, so every tower/curve/pairing template can be
 * instantiated either natively (compute values) or symbolically (emit IR).
 */
#ifndef FINESSE_FIELD_FP_H_
#define FINESSE_FIELD_FP_H_

#include <string>

#include "bigint/mont.h"

namespace finesse {

/** Base-field context: Montgomery machinery plus cached constants. */
struct FpCtx
{
    explicit FpCtx(const BigInt &p)
        : mont(p),
          inv2(mont.toMont((p + BigInt(u64{1})) >> 1))
    {}

    MontCtx mont;
    Residue inv2; ///< 1/2 mod p, used by halving variants (CH-SQR2)

    const BigInt &modulus() const { return mont.modulus(); }
    int bits() const { return mont.bits(); }
};

/**
 * Element of the prime field Fp (Montgomery domain).
 *
 * Operations never branch on element values; the same call sequence is
 * valid for the symbolic twin, and the hardware mapping is
 * data-independent (the paper's constant-time property).
 */
class Fp
{
  public:
    using Ctx = FpCtx;

    Fp() = default;

    static Fp
    zero(const Ctx *ctx)
    {
        Fp r;
        r.ctx_ = ctx;
        r.v_ = Residue{};
        return r;
    }

    static Fp
    one(const Ctx *ctx)
    {
        Fp r;
        r.ctx_ = ctx;
        r.v_ = ctx->mont.one();
        return r;
    }

    /** From a standard-domain integer (reduced mod p). */
    static Fp
    fromBig(const Ctx *ctx, const BigInt &v)
    {
        Fp r;
        r.ctx_ = ctx;
        r.v_ = ctx->mont.toMont(v);
        return r;
    }

    static Fp
    fromInt(const Ctx *ctx, i64 v)
    {
        return fromBig(ctx, BigInt(v));
    }

    /** To standard-domain integer in [0, p). */
    BigInt toBig() const { return ctx_->mont.fromMont(v_); }

    const Ctx *fieldCtx() const { return ctx_; }
    const Residue &raw() const { return v_; }

    static Fp
    fromRaw(const Ctx *ctx, const Residue &r)
    {
        Fp f;
        f.ctx_ = ctx;
        f.v_ = r;
        return f;
    }

    // Element-shaped constructors used by generic tower code ------------
    Fp zeroLike() const { return zero(ctx_); }
    Fp oneLike() const { return one(ctx_); }

    // Arithmetic ---------------------------------------------------------
    Fp
    add(const Fp &o) const
    {
        Fp r;
        r.ctx_ = ctx_;
        ctx_->mont.add(r.v_, v_, o.v_);
        return r;
    }

    Fp
    sub(const Fp &o) const
    {
        Fp r;
        r.ctx_ = ctx_;
        ctx_->mont.sub(r.v_, v_, o.v_);
        return r;
    }

    Fp
    neg() const
    {
        Fp r;
        r.ctx_ = ctx_;
        ctx_->mont.neg(r.v_, v_);
        return r;
    }

    /** 2a (hardware DBL). */
    Fp
    dbl() const
    {
        Fp r;
        r.ctx_ = ctx_;
        ctx_->mont.add(r.v_, v_, v_);
        return r;
    }

    /** 3a (hardware TPL). */
    Fp
    tpl() const
    {
        Fp r;
        r.ctx_ = ctx_;
        ctx_->mont.add(r.v_, v_, v_);
        ctx_->mont.add(r.v_, r.v_, v_);
        return r;
    }

    Fp
    mul(const Fp &o) const
    {
        Fp r;
        r.ctx_ = ctx_;
        ctx_->mont.mul(r.v_, v_, o.v_);
        return r;
    }

    Fp
    sqr() const
    {
        Fp r;
        r.ctx_ = ctx_;
        ctx_->mont.sqr(r.v_, v_);
        return r;
    }

    /** Multiplicative inverse (zero maps to zero; hardware INV unit). */
    Fp
    inv() const
    {
        Fp r;
        r.ctx_ = ctx_;
        ctx_->mont.inv(r.v_, v_);
        return r;
    }

    /**
     * Batch inversion in place (Montgomery's trick, MontCtx::batchInv):
     * one inversion + 3(n-1) muls for the whole vector, bit-identical
     * results to per-element inv(). Zero elements stay zero. All
     * elements must share one field context.
     */
    static void
    batchInv(std::vector<Fp> &elems)
    {
        if (elems.empty())
            return;
        const Ctx *ctx = elems[0].ctx_;
        std::vector<Residue> vals(elems.size());
        for (size_t i = 0; i < elems.size(); ++i)
            vals[i] = elems[i].v_;
        ctx->mont.batchInv(vals.data(), vals.data(), vals.size());
        for (size_t i = 0; i < elems.size(); ++i)
            elems[i].v_ = vals[i];
    }

    /** a/2 = a * inv2; maps to a constant multiplication in hardware. */
    Fp
    halve() const
    {
        Fp r;
        r.ctx_ = ctx_;
        ctx_->mont.mul(r.v_, v_, ctx_->inv2);
        return r;
    }

    /** Frobenius on the prime field is the identity. */
    Fp frob() const { return *this; }

    // Lazy reduction ------------------------------------------------------
    /**
     * Marker consumed by the extension templates (field/ext.h): when the
     * base element type advertises this, quadratic/cubic mul and sqr use
     * sumOfProducts to fold several base multiplications into a single
     * Montgomery reduction. The symbolic twin (SymFp) deliberately does
     * NOT define it — IR emission keeps the variant-dispatched formulas.
     */
    static constexpr bool kHasSumOfProducts = true;

    /** One lazy term: coeff * a * b with a small integer coefficient. */
    struct Term
    {
        const Fp *a;
        const Fp *b;
        i64 coeff;
    };

    /**
     * sum_i coeff_i * a_i * b_i with ONE Montgomery reduction instead of
     * one per product (backed by MontKernel wideMul + montRedc). Result
     * is fully reduced; observable values are identical to the eager
     * formula.
     */
    static Fp
    sumOfProducts(const Ctx *ctx, std::initializer_list<Term> terms)
    {
        MontOpTerm raw[8];
        size_t k = 0;
        for (const Term &t : terms) {
            FINESSE_CHECK(k < 8, "sumOfProducts: too many terms");
            raw[k++] = {&t.a->v_, &t.b->v_, t.coeff};
        }
        Fp r;
        r.ctx_ = ctx;
        ctx->mont.sumOfProducts(r.v_, raw, k);
        return r;
    }

    /** Fp-scalar multiplication (bottom of the scaleScalar recursion). */
    Fp scaleScalar(const Fp &s) const { return mul(s); }

    // Coefficient (de)serialization over Fp ------------------------------
    void
    toFpCoeffs(std::vector<BigInt> &out) const
    {
        out.push_back(toBig());
    }

    template <typename It>
    static Fp
    fromFpCoeffs(const Ctx *ctx, It &it)
    {
        return fromBig(ctx, *it++);
    }

    // Native-only observers (not part of the symbolic concept) ----------
    bool isZero() const { return ctx_->mont.isZero(v_); }

    bool
    equals(const Fp &o) const
    {
        return ctx_->mont.equal(v_, o.v_);
    }

    std::string toString() const { return toBig().toHexString(); }

  private:
    Residue v_{};
    const Ctx *ctx_ = nullptr;
};

/** Convenience operators for readable native code. */
inline Fp operator+(const Fp &a, const Fp &b) { return a.add(b); }
inline Fp operator-(const Fp &a, const Fp &b) { return a.sub(b); }
inline Fp operator*(const Fp &a, const Fp &b) { return a.mul(b); }
inline Fp operator-(const Fp &a) { return a.neg(); }

} // namespace finesse

#endif // FINESSE_FIELD_FP_H_
