/**
 * @file
 * Program-image serialization: save/load an encoded accelerator
 * program (instruction words, DMem constant preload, I/O register
 * maps) as a self-contained deployment artifact. This is what would be
 * flashed next to the SystemVerilog accelerator in the paper's flow;
 * here it also decouples compilation from simulation runs.
 *
 * Format: a line-oriented text container ("FINESSE-PROG v1") with
 * hex-encoded sections — stable, diff-able, and endianness-free.
 */
#ifndef FINESSE_ISA_PROGIO_H_
#define FINESSE_ISA_PROGIO_H_

#include <iosfwd>
#include <string>

#include "isa/encode.h"

namespace finesse {

/** Serialize a program image (including the modulus for execution). */
void writeProgram(std::ostream &os, const EncodedProgram &prog,
                  const BigInt &p);

/** Parse a program image; fatal on malformed input. */
EncodedProgram readProgram(std::istream &is, BigInt &pOut);

/** Convenience file wrappers. */
void saveProgramFile(const std::string &path, const EncodedProgram &prog,
                     const BigInt &p);
EncodedProgram loadProgramFile(const std::string &path, BigInt &pOut);

} // namespace finesse

#endif // FINESSE_ISA_PROGIO_H_
