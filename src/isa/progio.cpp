/**
 * @file
 * Program-image serialization implementation.
 */
#include "isa/progio.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace finesse {

namespace {

constexpr const char *kMagic = "FINESSE-PROG v1";

std::string
expectLine(std::istream &is, const char *what)
{
    std::string line;
    FINESSE_REQUIRE(static_cast<bool>(std::getline(is, line)),
                    "program image truncated while reading ", what);
    return line;
}

} // namespace

void
writeProgram(std::ostream &os, const EncodedProgram &prog, const BigInt &p)
{
    os << kMagic << "\n";
    os << "p " << p.toHexString() << "\n";
    os << "shape " << prog.opBits << " " << prog.bankBits << " "
       << prog.regBits << " " << prog.wordBits << " " << prog.issueWidth
       << " " << prog.numBundles << "\n";
    os << "words " << prog.words.size() << "\n";
    os << std::hex;
    for (u64 w : prog.words)
        os << w << "\n";
    os << std::dec;
    os << "consts " << prog.constPool.size() << "\n";
    for (const auto &c : prog.constPool) {
        os << c.loc.bank << " " << c.loc.reg << " "
           << c.value.toHexString() << "\n";
    }
    auto ioSection = [&](const char *name,
                         const std::vector<RegLoc> &regs) {
        os << name << " " << regs.size() << "\n";
        for (const RegLoc &loc : regs)
            os << loc.bank << " " << loc.reg << "\n";
    };
    ioSection("inputs", prog.inputRegs);
    ioSection("outputs", prog.outputRegs);
}

EncodedProgram
readProgram(std::istream &is, BigInt &pOut)
{
    FINESSE_REQUIRE(expectLine(is, "magic") == kMagic,
                    "not a Finesse program image");
    EncodedProgram prog;
    {
        std::istringstream ls(expectLine(is, "modulus"));
        std::string tag, hex;
        ls >> tag >> hex;
        FINESSE_REQUIRE(tag == "p", "expected modulus line");
        pOut = BigInt::fromString(hex);
    }
    {
        std::istringstream ls(expectLine(is, "shape"));
        std::string tag;
        ls >> tag >> prog.opBits >> prog.bankBits >> prog.regBits >>
            prog.wordBits >> prog.issueWidth >> prog.numBundles;
        FINESSE_REQUIRE(tag == "shape" && !ls.fail(),
                        "bad shape line");
    }
    size_t numWords = 0;
    {
        std::istringstream ls(expectLine(is, "words header"));
        std::string tag;
        ls >> tag >> numWords;
        FINESSE_REQUIRE(tag == "words" && !ls.fail(),
                        "bad words header");
    }
    prog.words.reserve(numWords);
    for (size_t i = 0; i < numWords; ++i) {
        std::istringstream ls(expectLine(is, "word"));
        u64 w = 0;
        ls >> std::hex >> w;
        FINESSE_REQUIRE(!ls.fail(), "bad instruction word");
        prog.words.push_back(w);
    }
    size_t numConsts = 0;
    {
        std::istringstream ls(expectLine(is, "consts header"));
        std::string tag;
        ls >> tag >> numConsts;
        FINESSE_REQUIRE(tag == "consts" && !ls.fail(),
                        "bad consts header");
    }
    for (size_t i = 0; i < numConsts; ++i) {
        std::istringstream ls(expectLine(is, "const"));
        EncodedProgram::PoolEntry e;
        std::string hex;
        ls >> e.loc.bank >> e.loc.reg >> hex;
        FINESSE_REQUIRE(!ls.fail(), "bad const entry");
        e.value = BigInt::fromString(hex);
        prog.constPool.push_back(std::move(e));
    }
    auto ioSection = [&](const char *name, std::vector<RegLoc> &regs) {
        std::istringstream ls(expectLine(is, name));
        std::string tag;
        size_t count = 0;
        ls >> tag >> count;
        FINESSE_REQUIRE(tag == name && !ls.fail(), "bad ", name,
                        " header");
        for (size_t i = 0; i < count; ++i) {
            std::istringstream el(expectLine(is, "io entry"));
            RegLoc loc;
            el >> loc.bank >> loc.reg;
            FINESSE_REQUIRE(!el.fail(), "bad io entry");
            regs.push_back(loc);
        }
    };
    ioSection("inputs", prog.inputRegs);
    ioSection("outputs", prog.outputRegs);
    return prog;
}

void
saveProgramFile(const std::string &path, const EncodedProgram &prog,
                const BigInt &p)
{
    std::ofstream os(path);
    FINESSE_REQUIRE(static_cast<bool>(os), "cannot write ", path);
    writeProgram(os, prog, p);
}

EncodedProgram
loadProgramFile(const std::string &path, BigInt &pOut)
{
    std::ifstream is(path);
    FINESSE_REQUIRE(static_cast<bool>(is), "cannot read ", path);
    return readProgram(is, pOut);
}

} // namespace finesse
