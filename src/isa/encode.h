/**
 * @file
 * Binary encoding of compiled programs (the paper's ASM + Link stages).
 * Instruction words are op | dst | src1 | src2 with bank-qualified
 * register fields; the word width adapts (32 or 64 bits) to the
 * register pressure of the program, mirroring the paper's
 * parameterized instruction memory. The encoded size feeds the IMem
 * area model; the constant pool and I/O register maps form the DMem
 * preload image.
 */
#ifndef FINESSE_ISA_ENCODE_H_
#define FINESSE_ISA_ENCODE_H_

#include <string>
#include <vector>

#include "compiler/backend.h"

namespace finesse {

/** A (bank, register) physical location. */
struct RegLoc
{
    i32 bank = 0;
    i32 reg = 0;
};

struct EncodedProgram
{
    int opBits = 5;
    int bankBits = 0;
    int regBits = 0;
    int wordBits = 32;     ///< 32 or 64
    int issueWidth = 1;
    size_t numBundles = 0;
    std::vector<u64> words; ///< bundle-major, issueWidth words/bundle

    struct PoolEntry
    {
        RegLoc loc;
        BigInt value;
    };
    std::vector<PoolEntry> constPool; ///< DMem preload image
    std::vector<RegLoc> inputRegs, outputRegs;

    /** Instruction memory footprint in bits. */
    size_t imemBits() const { return words.size() * wordBits; }

    /** Decode one word (for disassembly and binary-level execution). */
    struct DecodedOp
    {
        Op op;
        RegLoc dst, a, b;
    };
    DecodedOp decode(u64 word) const;

    std::string disassemble(size_t maxWords = 32) const;
};

/**
 * Word-format layout of an encoding without materializing it: field
 * widths, word width and the IMem footprint, including the
 * register-pressure encoding check. encodeProgram() derives its
 * format from exactly this, so the batched DSE path (which only needs
 * imemBits for the area model) and the full encoder cannot disagree.
 */
struct EncodingLayout
{
    int opBits = 5;
    int bankBits = 0;
    int regBits = 0;
    int wordBits = 32; ///< 32 or 64
    size_t numBundles = 0;
    size_t numWords = 0; ///< numBundles x issueWidth

    size_t imemBits() const { return numWords * static_cast<size_t>(wordBits); }
};

EncodingLayout encodingLayout(const BankAssignment &banks,
                              const RegAssignment &regs,
                              const Schedule &sched,
                              const PipelineModel &hw);

/** Encode a compiled program. */
EncodedProgram encodeProgram(const CompiledProgram &prog);

} // namespace finesse

#endif // FINESSE_ISA_ENCODE_H_
