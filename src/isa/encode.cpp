/**
 * @file
 * Instruction encoder/decoder implementation.
 */
#include "isa/encode.h"

#include <iomanip>
#include <sstream>

namespace finesse {

namespace {

int
bitsFor(i32 maxValue)
{
    if (maxValue <= 0)
        return 0;
    int bits = 1;
    while ((i64{1} << bits) <= maxValue)
        ++bits;
    return bits;
}

} // namespace

EncodedProgram::DecodedOp
EncodedProgram::decode(u64 word) const
{
    const int fieldBits = bankBits + regBits;
    const u64 fieldMask = (u64{1} << fieldBits) - 1;
    const u64 regMask = (u64{1} << regBits) - 1;
    DecodedOp d;
    d.op = static_cast<Op>(word >> (3 * fieldBits));
    auto unpack = [&](int slot) {
        const u64 f = (word >> (slot * fieldBits)) & fieldMask;
        return RegLoc{static_cast<i32>(f >> regBits),
                      static_cast<i32>(f & regMask)};
    };
    d.dst = unpack(2);
    d.a = unpack(1);
    d.b = unpack(0);
    return d;
}

std::string
EncodedProgram::disassemble(size_t maxWords) const
{
    std::ostringstream os;
    for (size_t i = 0; i < words.size() && i < maxWords; ++i) {
        const DecodedOp d = decode(words[i]);
        os << std::hex << std::setw(wordBits / 4) << std::setfill('0')
           << words[i] << std::dec << "  " << toString(d.op);
        if (d.op != Op::Nop) {
            os << " r" << d.dst.bank << ":" << d.dst.reg;
            if (arity(d.op) >= 1)
                os << ", r" << d.a.bank << ":" << d.a.reg;
            if (arity(d.op) >= 2)
                os << ", r" << d.b.bank << ":" << d.b.reg;
        }
        os << "\n";
    }
    return os.str();
}

EncodingLayout
encodingLayout(const BankAssignment &banks, const RegAssignment &regs,
               const Schedule &sched, const PipelineModel &hw)
{
    EncodingLayout lay;
    lay.bankBits = bitsFor(banks.numBanks - 1);
    lay.regBits =
        std::max(bitsFor(std::max<i32>(regs.maxRegs() - 1, 1)), 1);
    const int fieldBits = lay.bankBits + lay.regBits;
    lay.wordBits = lay.opBits + 3 * fieldBits <= 32 ? 32 : 64;
    FINESSE_REQUIRE(lay.opBits + 3 * fieldBits <= 64,
                    "register pressure exceeds 64-bit encoding");
    lay.numBundles = sched.bundles.size();
    lay.numWords =
        lay.numBundles * static_cast<size_t>(hw.issueWidth);
    return lay;
}

EncodedProgram
encodeProgram(const CompiledProgram &prog)
{
    const Module &m = prog.module;
    const EncodingLayout lay =
        encodingLayout(prog.banks, prog.regs, prog.schedule, prog.hw);
    EncodedProgram enc;
    enc.issueWidth = prog.hw.issueWidth;
    enc.opBits = lay.opBits;
    enc.bankBits = lay.bankBits;
    enc.regBits = lay.regBits;
    enc.wordBits = lay.wordBits;
    const int fieldBits = enc.bankBits + enc.regBits;

    auto loc = [&](i32 valueId) {
        return RegLoc{prog.banks.bankOf[valueId],
                      prog.regs.regOf[valueId]};
    };
    auto pack = [&](Op op, RegLoc dst, RegLoc a, RegLoc b) {
        auto field = [&](RegLoc r) {
            return (static_cast<u64>(r.bank) << enc.regBits) |
                   static_cast<u64>(r.reg);
        };
        return (static_cast<u64>(op) << (3 * fieldBits)) |
               (field(dst) << (2 * fieldBits)) |
               (field(a) << fieldBits) | field(b);
    };

    enc.numBundles = prog.schedule.bundles.size();
    enc.words.reserve(enc.numBundles * enc.issueWidth);
    for (const Bundle &bundle : prog.schedule.bundles) {
        for (int s = 0; s < enc.issueWidth; ++s) {
            if (s < static_cast<int>(bundle.instIdx.size())) {
                const Inst &inst = m.body[bundle.instIdx[s]];
                const RegLoc a = inst.a >= 0 ? loc(inst.a) : RegLoc{};
                const RegLoc b = inst.b >= 0 ? loc(inst.b) : RegLoc{};
                enc.words.push_back(pack(inst.op, loc(inst.dst), a, b));
            } else {
                enc.words.push_back(pack(Op::Nop, {}, {}, {}));
            }
        }
    }

    for (const auto &c : m.constants)
        enc.constPool.push_back({loc(c.id), c.value});
    for (i32 in : m.inputs)
        enc.inputRegs.push_back(loc(in));
    for (i32 out : m.outputs)
        enc.outputRegs.push_back(loc(out));
    return enc;
}

} // namespace finesse
