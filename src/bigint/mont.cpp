/**
 * @file
 * MontCtx implementation: fixed-width kernel dispatch (construction-time
 * vtable selection), the generic runtime-width CIOS oracle, and binary
 * extended-GCD inversion.
 */
#include "bigint/mont.h"

namespace finesse {

namespace {

/** -m^-1 mod 2^64 via Newton iteration on the low limb. */
u64
negInv64(u64 m)
{
    u64 inv = 1;
    for (int i = 0; i < 6; ++i)
        inv *= 2 - m * inv;
    return ~inv + 1; // -inv
}

/** True when a == 1 over n limbs. */
bool
isOneLimbs(const u64 *a, size_t n)
{
    if (a[0] != 1)
        return false;
    for (size_t i = 1; i < n; ++i) {
        if (a[i])
            return false;
    }
    return true;
}

/** Logical shift right by one bit; @p topBit (0/1) enters the msb. */
void
shr1(u64 *a, size_t n, u64 topBit)
{
    for (size_t i = 0; i + 1 < n; ++i)
        a[i] = (a[i] >> 1) | (a[i + 1] << 63);
    a[n - 1] = (a[n - 1] >> 1) | (topBit << 63);
}

/** x = x / 2 mod p (p odd): add p first when x is odd. */
void
halveMod(u64 *x, const u64 *p, size_t n)
{
    if (x[0] & 1) {
        const u64 carry = limbs::add(x, x, p, n);
        shr1(x, n, carry);
    } else {
        shr1(x, n, 0);
    }
}

/** x = (x - y) mod p for x, y in [0, p). */
void
subMod(u64 *x, const u64 *y, const u64 *p, size_t n)
{
    if (limbs::sub(x, x, y, n))
        limbs::add(x, x, p, n);
}

} // namespace

MontCtx::MontCtx(const BigInt &p) : p_(p)
{
    FINESSE_REQUIRE(p.isOdd() && p > BigInt(u64{2}),
                    "Montgomery modulus must be odd and > 2");
    n_ = (static_cast<size_t>(p.bitLength()) + 63) / 64;
    FINESSE_REQUIRE(n_ <= kMaxLimbs, "modulus too wide: ", p.bitLength(),
                    " bits");
    bits_ = p.bitLength();
    p.toLimbs(pLimbs_.data(), n_);
    n0inv_ = negInv64(pLimbs_[0]);
    vt_ = kernelVTable(n_, pLimbs_[n_ - 1]);
    FINESSE_CHECK(vt_ != nullptr, "no kernel for width ", n_);
    if (n_ == 4 && pLimbs_[n_ - 1] <= kSpareBitTopLimbMax) {
        fast_ = FastPath::kCpp4;
#if FINESSE_HAVE_X86_ADX
        if (cpuHasAdx())
            fast_ = FastPath::kAdx4;
#endif
    }
    (p * p).toLimbs(pSquared_.data(), 2 * n_);

    const BigInt r = BigInt(u64{1}) << static_cast<int>(64 * n_);
    r.mod(p).toLimbs(rModP_.data(), n_);
    (r * r).mod(p).toLimbs(r2ModP_.data(), n_);
}

// Compiled unconditionally (call sites are NDEBUG-gated in the header)
// so TUs built with and without NDEBUG link against the same library.
void
MontCtx::assertTailZero(const Residue &a) const
{
    for (size_t i = n_; i < kMaxLimbs; ++i)
        FINESSE_CHECK(a[i] == 0, "nonzero Residue tail limb ", i,
                      " (active width ", n_, ")");
}

Residue
MontCtx::toMont(const BigInt &v) const
{
    Residue tmp{};
    v.mod(p_).toLimbs(tmp.data(), n_);
    Residue out{};
    mul(out, tmp, r2ModP_);
    return out;
}

BigInt
MontCtx::fromMont(const Residue &a) const
{
    // Multiply by 1 (non-Montgomery) to divide by R.
    Residue oneRaw{};
    oneRaw[0] = 1;
    Residue out{};
    mul(out, a, oneRaw);
    return BigInt::fromLimbs(out.data(), n_);
}

void
MontCtx::addGeneric(Residue &r, const Residue &a, const Residue &b) const
{
    const u64 carry = limbs::add(r.data(), a.data(), b.data(), n_);
    limbs::condSubModulus(r.data(), pLimbs_.data(), n_, carry);
}

void
MontCtx::subGeneric(Residue &r, const Residue &a, const Residue &b) const
{
    const u64 borrow = limbs::sub(r.data(), a.data(), b.data(), n_);
    if (borrow)
        limbs::add(r.data(), r.data(), pLimbs_.data(), n_);
}

void
MontCtx::negGeneric(Residue &r, const Residue &a) const
{
    if (limbs::isZero(a.data(), n_)) {
        limbs::zero(r.data(), n_);
        return;
    }
    limbs::sub(r.data(), pLimbs_.data(), a.data(), n_);
}

void
MontCtx::mulGeneric(Residue &r, const Residue &a, const Residue &b) const
{
    // CIOS: interleaved multiply and Montgomery reduction.
    u64 t[kMaxLimbs + 2] = {0};
    const size_t n = n_;
    for (size_t i = 0; i < n; ++i) {
        // t += a[i] * b
        u64 carry = 0;
        const u64 ai = a[i];
        for (size_t j = 0; j < n; ++j) {
            const u128 s = static_cast<u128>(ai) * b[j] + t[j] + carry;
            t[j] = static_cast<u64>(s);
            carry = static_cast<u64>(s >> 64);
        }
        u128 s = static_cast<u128>(t[n]) + carry;
        t[n] = static_cast<u64>(s);
        t[n + 1] = static_cast<u64>(s >> 64);

        // Reduce: m = t[0] * n0inv; t += m * p; t >>= 64.
        const u64 m = t[0] * n0inv_;
        u128 acc = static_cast<u128>(m) * pLimbs_[0] + t[0];
        carry = static_cast<u64>(acc >> 64);
        for (size_t j = 1; j < n; ++j) {
            acc = static_cast<u128>(m) * pLimbs_[j] + t[j] + carry;
            t[j - 1] = static_cast<u64>(acc);
            carry = static_cast<u64>(acc >> 64);
        }
        s = static_cast<u128>(t[n]) + carry;
        t[n - 1] = static_cast<u64>(s);
        t[n] = t[n + 1] + static_cast<u64>(s >> 64);
        t[n + 1] = 0;
    }
    for (size_t i = 0; i < n; ++i)
        r[i] = t[i];
    limbs::condSubModulus(r.data(), pLimbs_.data(), n, t[n]);
}

void
MontCtx::sumOfProducts(Residue &r, const MontOpTerm *terms,
                       size_t count) const
{
    MontTerm raw[8];
    FINESSE_CHECK(count <= 8, "sumOfProducts: too many terms");
    for (size_t i = 0; i < count; ++i) {
        checkTails(*terms[i].a, *terms[i].b);
        raw[i] = {terms[i].a->data(), terms[i].b->data(), terms[i].coeff};
    }
    vt_->sumOfProducts(r.data(), raw, count, params());
}

void
MontCtx::sumOfProductsGeneric(Residue &r, const MontOpTerm *terms,
                              size_t count) const
{
    // Reduce every product eagerly: the semantics the lazy kernel must
    // reproduce bit-for-bit.
    Residue acc{};
    for (size_t i = 0; i < count; ++i) {
        Residue prod{};
        mulGeneric(prod, *terms[i].a, *terms[i].b);
        i64 c = terms[i].coeff;
        const bool negate = c < 0;
        if (negate)
            c = -c;
        for (i64 rep = 0; rep < c; ++rep) {
            if (negate)
                subGeneric(acc, acc, prod);
            else
                addGeneric(acc, acc, prod);
        }
    }
    r = acc;
}

void
MontCtx::pow(Residue &r, const Residue &a, const BigInt &e) const
{
    FINESSE_REQUIRE(!e.isNegative(), "negative exponent in MontCtx::pow");
    Residue result{};
    limbs::copy(result.data(), rModP_.data(), n_); // Montgomery one
    Residue base{};
    limbs::copy(base.data(), a.data(), n_);
    for (int i = e.bitLength(); i-- > 0;) {
        sqr(result, result);
        if (e.bit(i))
            mul(result, result, base);
    }
    r = result;
}

void
MontCtx::invFermat(Residue &r, const Residue &a) const
{
    pow(r, a, p_ - BigInt(u64{2}));
}

void
MontCtx::inv(Residue &r, const Residue &a) const
{
    checkTail(a);
    if (isZero(a)) {
        limbs::zero(r.data(), n_);
        return;
    }
    // Binary extended GCD on (aR, p) for odd p. Invariants:
    //   x1 * aR == u (mod p),  x2 * aR == v (mod p)
    // so when u (or v) reaches 1, x1 (or x2) is (aR)^-1 = a^-1 R^-1.
    const size_t n = n_;
    const u64 *p = pLimbs_.data();
    u64 u[kMaxLimbs], v[kMaxLimbs], x1[kMaxLimbs], x2[kMaxLimbs];
    limbs::copy(u, a.data(), n);
    limbs::copy(v, p, n);
    limbs::zero(x1, n);
    x1[0] = 1;
    limbs::zero(x2, n);

    while (!isOneLimbs(u, n) && !isOneLimbs(v, n)) {
        while ((u[0] & 1) == 0) {
            shr1(u, n, 0);
            halveMod(x1, p, n);
        }
        while ((v[0] & 1) == 0) {
            shr1(v, n, 0);
            halveMod(x2, p, n);
        }
        if (limbs::cmp(u, v, n) >= 0) {
            limbs::sub(u, u, v, n);
            subMod(x1, x2, p, n);
        } else {
            limbs::sub(v, v, u, n);
            subMod(x2, x1, p, n);
        }
        if (limbs::isZero(u, n) || limbs::isZero(v, n)) {
            // gcd(a, p) != 1 (composite modulus): no inverse exists.
            // Zero is the documented degenerate result.
            limbs::zero(r.data(), n);
            return;
        }
    }

    Residue y{};
    limbs::copy(y.data(), isOneLimbs(u, n) ? x1 : x2, n);
    // y = a^-1 R^-1; two Montgomery multiplications by R^2 yield a^-1 R.
    mul(r, y, r2ModP_);
    mul(r, r, r2ModP_);
}

void
MontCtx::batchInv(Residue *r, const Residue *a, size_t n) const
{
    if (n == 0)
        return;
    // Montgomery's trick. prefix[i] carries the running product of
    // the NONZERO inputs a[0..i]; zeros are skipped so they cannot
    // zero out the whole chain (each still yields inv(0) == 0 below,
    // matching the scalar inv contract).
    std::vector<Residue> prefix(n);
    Residue acc = one();
    for (size_t i = 0; i < n; ++i) {
        if (!isZero(a[i])) {
            // Zero-init: mul only writes the low limbCount() limbs,
            // and these structs get copied whole (acc -> prefix,
            // invAcc -> r[0] below) -- garbage upper limbs would
            // break bit-identity with scalar inv().
            Residue next{};
            mul(next, acc, a[i]);
            acc = next;
        }
        prefix[i] = acc;
    }
    // One inversion of the total product, then walk back: on entry to
    // step i, invAcc is the inverse of the nonzero product a[0..i],
    // so multiplying by the product BEFORE i isolates a[i]^-1. Every
    // intermediate is a fully-reduced residue product, so each result
    // is the unique reduced inverse -- bit-identical to scalar inv.
    Residue invAcc{};
    inv(invAcc, acc);
    for (size_t i = n; i-- > 0;) {
        if (isZero(a[i])) {
            r[i] = Residue{};
            continue;
        }
        const Residue ai = a[i]; // copy first: r may alias a
        if (i == 0) {
            r[i] = invAcc;
        } else {
            r[i] = Residue{};
            mul(r[i], invAcc, prefix[i - 1]);
        }
        Residue next{};
        mul(next, invAcc, ai);
        invAcc = next;
    }
}

} // namespace finesse
