/**
 * @file
 * MontCtx implementation: word-serial CIOS Montgomery multiplication.
 */
#include "bigint/mont.h"

namespace finesse {

namespace {

/** -m^-1 mod 2^64 via Newton iteration on the low limb. */
u64
negInv64(u64 m)
{
    u64 inv = 1;
    for (int i = 0; i < 6; ++i)
        inv *= 2 - m * inv;
    return ~inv + 1; // -inv
}

} // namespace

MontCtx::MontCtx(const BigInt &p) : p_(p)
{
    FINESSE_REQUIRE(p.isOdd() && p > BigInt(u64{2}),
                    "Montgomery modulus must be odd and > 2");
    n_ = (static_cast<size_t>(p.bitLength()) + 63) / 64;
    FINESSE_REQUIRE(n_ <= kMaxLimbs, "modulus too wide: ", p.bitLength(),
                    " bits");
    bits_ = p.bitLength();
    p.toLimbs(pLimbs_.data(), kMaxLimbs);
    n0inv_ = negInv64(pLimbs_[0]);

    const BigInt r = BigInt(u64{1}) << static_cast<int>(64 * n_);
    r.mod(p).toLimbs(rModP_.data(), kMaxLimbs);
    (r * r).mod(p).toLimbs(r2ModP_.data(), kMaxLimbs);
}

Residue
MontCtx::toMont(const BigInt &v) const
{
    Residue tmp{};
    v.mod(p_).toLimbs(tmp.data(), kMaxLimbs);
    Residue out{};
    mul(out, tmp, r2ModP_);
    return out;
}

BigInt
MontCtx::fromMont(const Residue &a) const
{
    // Multiply by 1 (non-Montgomery) to divide by R.
    Residue oneRaw{};
    oneRaw[0] = 1;
    Residue out{};
    mul(out, a, oneRaw);
    return BigInt::fromLimbs(out.data(), n_);
}

void
MontCtx::add(Residue &r, const Residue &a, const Residue &b) const
{
    const u64 carry = limbs::add(r.data(), a.data(), b.data(), n_);
    limbs::condSubModulus(r.data(), pLimbs_.data(), n_, carry);
}

void
MontCtx::sub(Residue &r, const Residue &a, const Residue &b) const
{
    const u64 borrow = limbs::sub(r.data(), a.data(), b.data(), n_);
    if (borrow)
        limbs::add(r.data(), r.data(), pLimbs_.data(), n_);
}

void
MontCtx::neg(Residue &r, const Residue &a) const
{
    if (limbs::isZero(a.data(), n_)) {
        limbs::zero(r.data(), n_);
        return;
    }
    limbs::sub(r.data(), pLimbs_.data(), a.data(), n_);
}

void
MontCtx::mul(Residue &r, const Residue &a, const Residue &b) const
{
    // CIOS: interleaved multiply and Montgomery reduction.
    u64 t[kMaxLimbs + 2] = {0};
    const size_t n = n_;
    for (size_t i = 0; i < n; ++i) {
        // t += a[i] * b
        u64 carry = 0;
        const u64 ai = a[i];
        for (size_t j = 0; j < n; ++j) {
            const u128 s = static_cast<u128>(ai) * b[j] + t[j] + carry;
            t[j] = static_cast<u64>(s);
            carry = static_cast<u64>(s >> 64);
        }
        u128 s = static_cast<u128>(t[n]) + carry;
        t[n] = static_cast<u64>(s);
        t[n + 1] = static_cast<u64>(s >> 64);

        // Reduce: m = t[0] * n0inv; t += m * p; t >>= 64.
        const u64 m = t[0] * n0inv_;
        u128 acc = static_cast<u128>(m) * pLimbs_[0] + t[0];
        carry = static_cast<u64>(acc >> 64);
        for (size_t j = 1; j < n; ++j) {
            acc = static_cast<u128>(m) * pLimbs_[j] + t[j] + carry;
            t[j - 1] = static_cast<u64>(acc);
            carry = static_cast<u64>(acc >> 64);
        }
        s = static_cast<u128>(t[n]) + carry;
        t[n - 1] = static_cast<u64>(s);
        t[n] = t[n + 1] + static_cast<u64>(s >> 64);
        t[n + 1] = 0;
    }
    for (size_t i = 0; i < n; ++i)
        r[i] = t[i];
    for (size_t i = n; i < kMaxLimbs; ++i)
        r[i] = 0;
    limbs::condSubModulus(r.data(), pLimbs_.data(), n, t[n]);
}

void
MontCtx::pow(Residue &r, const Residue &a, const BigInt &e) const
{
    FINESSE_REQUIRE(!e.isNegative(), "negative exponent in MontCtx::pow");
    Residue result = rModP_; // Montgomery one
    Residue base = a;
    for (int i = e.bitLength(); i-- > 0;) {
        mul(result, result, result);
        if (e.bit(i))
            mul(result, result, base);
    }
    r = result;
}

void
MontCtx::inv(Residue &r, const Residue &a) const
{
    pow(r, a, p_ - BigInt(u64{2}));
}

} // namespace finesse
