/**
 * @file
 * Montgomery-domain modular arithmetic context. One MontCtx exists per
 * base field Fp and provides the CIOS multiplication that the paper's
 * mmul hardware unit implements in a Karatsuba-Wallace pipeline.
 *
 * Hot-path arithmetic dispatches through a per-width KernelVTable
 * (bigint/montkernel.h) chosen once at construction, so Fp and the whole
 * pairing tower run fully unrolled fixed-limb kernels with zero per-call
 * width branching. The generic runtime-width loops remain available as
 * *Generic methods — they are the differential oracle for
 * tests/test_montkernel.cpp and the baseline for bench/micro_field_ops.
 *
 * Residue active-width contract: a Residue carries kMaxLimbs of storage
 * but only the low limbCount() limbs are meaningful; the tail is
 * zero-filled at construction (Residue{} / Fp's member initializer) and
 * no operation ever writes beyond the active width, so the tail stays
 * zero for the lifetime of the value. Debug builds assert this on every
 * operand.
 */
#ifndef FINESSE_BIGINT_MONT_H_
#define FINESSE_BIGINT_MONT_H_

#include <array>

#include "bigint/bigint.h"
#include "bigint/limbs.h"
#include "bigint/montkernel.h"

namespace finesse {

/** Raw residue value: fixed storage, runtime active width. */
using Residue = std::array<u64, kMaxLimbs>;

/** One term of a lazy sum-of-products: coeff * a * b, small |coeff|. */
struct MontOpTerm
{
    const Residue *a;
    const Residue *b;
    i64 coeff;
};

/**
 * Montgomery multiplication context for an odd modulus p of at most
 * kMaxLimbs * 64 bits. Values handled by mul/sqr/... are residues in the
 * Montgomery domain (a * R mod p with R = 2^(64n)).
 */
class MontCtx
{
  public:
    /** Build a context for odd modulus @p p (p > 2). */
    explicit MontCtx(const BigInt &p);

    /** Active limb count n. */
    size_t limbCount() const { return n_; }

    /** Modulus as BigInt. */
    const BigInt &modulus() const { return p_; }

    /** Modulus bit length. */
    int bits() const { return bits_; }

    // Domain conversion ------------------------------------------------
    /** Standard integer (mod p) -> Montgomery domain. */
    Residue toMont(const BigInt &v) const;

    /** Montgomery domain -> standard integer in [0, p). */
    BigInt fromMont(const Residue &a) const;

    // Arithmetic (all inputs/outputs in Montgomery domain) --------------
    void
    add(Residue &r, const Residue &a, const Residue &b) const
    {
        checkTails(a, b);
        vt_->add(r.data(), a.data(), b.data(), params());
    }

    void
    sub(Residue &r, const Residue &a, const Residue &b) const
    {
        checkTails(a, b);
        vt_->sub(r.data(), a.data(), b.data(), params());
    }

    void
    neg(Residue &r, const Residue &a) const
    {
        checkTail(a);
        vt_->neg(r.data(), a.data(), params());
    }

    void
    mul(Residue &r, const Residue &a, const Residue &b) const
    {
        checkTails(a, b);
        // Devirtualized fast path for the dominant pairing-curve width
        // (4 limbs, spare top bit): lets the compiler inline the
        // unrolled kernel straight into Fp call sites, skipping the
        // indirect call. On x86-64 with BMI2+ADX the hand-scheduled
        // dual-carry-chain asm kernel is used instead. Other widths
        // still reach their fixed-limb kernel through the vtable.
        switch (fast_) {
#if FINESSE_HAVE_X86_ADX
          case FastPath::kAdx4:
            montMulAdx4(r.data(), a.data(), b.data(), pLimbs_.data(),
                        n0inv_);
            return;
#endif
          case FastPath::kCpp4:
            MontKernel<4>::mulSpareBit(r.data(), a.data(), b.data(),
                                       params());
            return;
          default:
            vt_->mul(r.data(), a.data(), b.data(), params());
        }
    }

    /** Dedicated squaring kernel (cross-product doubling); on the ADX
     *  fast path the asm multiplier outruns the portable squaring. */
    void
    sqr(Residue &r, const Residue &a) const
    {
        checkTail(a);
        switch (fast_) {
#if FINESSE_HAVE_X86_ADX
          case FastPath::kAdx4:
            montMulAdx4(r.data(), a.data(), a.data(), pLimbs_.data(),
                        n0inv_);
            return;
#endif
          case FastPath::kCpp4:
            MontKernel<4>::sqr(r.data(), a.data(), params());
            return;
          default:
            vt_->sqr(r.data(), a.data(), params());
        }
    }

    /**
     * r = sum_i coeff_i * a_i * b_i with a single Montgomery reduction
     * (lazy reduction). Coefficients must be small (|coeff| and their
     * sum comfortably below 2^60); inputs are fully reduced residues and
     * the result is fully reduced.
     */
    void sumOfProducts(Residue &r, const MontOpTerm *terms,
                       size_t count) const;

    /** r = a^e (e is a plain non-negative integer, not a residue). */
    void pow(Residue &r, const Residue &a, const BigInt &e) const;

    /**
     * r = a^-1 via binary extended GCD (zero maps to zero). For a
     * composite modulus and gcd(a, p) != 1 no inverse exists and zero
     * is returned.
     */
    void inv(Residue &r, const Residue &a) const;

    /** Fermat-ladder inverse a^(p-2): the historical path, kept as the
     *  differential oracle for inv (prime p only). */
    void invFermat(Residue &r, const Residue &a) const;

    /**
     * Vectorized batch inversion (Montgomery's trick): r[i] = a[i]^-1
     * for all i with ONE field inversion and 3(n-1) multiplications
     * instead of n inversions. Zero inputs map to zero (matching inv)
     * and are skipped by the product chain, so a zero does not poison
     * the batch. Results are bit-identical to per-element inv (the
     * fully-reduced inverse residue is unique). In-place operation
     * (r == a) is supported.
     */
    void batchInv(Residue *r, const Residue *a, size_t n) const;

    // Generic runtime-width oracle ---------------------------------------
    // One compiled loop serving every width; bit-identical results to
    // the fixed-limb kernels above. Used by differential tests and the
    // micro_field_ops speedup baseline.
    void addGeneric(Residue &r, const Residue &a, const Residue &b) const;
    void subGeneric(Residue &r, const Residue &a, const Residue &b) const;
    void negGeneric(Residue &r, const Residue &a) const;
    void mulGeneric(Residue &r, const Residue &a, const Residue &b) const;

    void
    sqrGeneric(Residue &r, const Residue &a) const
    {
        mulGeneric(r, a, a);
    }

    void sumOfProductsGeneric(Residue &r, const MontOpTerm *terms,
                              size_t count) const;

    /** Montgomery representation of 1. */
    const Residue &one() const { return rModP_; }

    bool isZero(const Residue &a) const
    {
        return limbs::isZero(a.data(), n_);
    }

    bool
    equal(const Residue &a, const Residue &b) const
    {
        return limbs::cmp(a.data(), b.data(), n_) == 0;
    }

  private:
    MontParams
    params() const
    {
        return {pLimbs_.data(), pSquared_.data(), n0inv_};
    }

    void assertTailZero(const Residue &a) const;

#ifndef NDEBUG
    void checkTail(const Residue &a) const { assertTailZero(a); }

    void
    checkTails(const Residue &a, const Residue &b) const
    {
        assertTailZero(a);
        assertTailZero(b);
    }
#else
    void checkTail(const Residue &) const {}
    void checkTails(const Residue &, const Residue &) const {}
#endif

    /** Devirtualized hot paths for 4-limb spare-top-bit moduli. */
    enum class FastPath : u8
    {
        kNone = 0, ///< dispatch through the width vtable
        kCpp4,     ///< header-inline MontKernel<4> spare-bit kernels
        kAdx4,     ///< hand-scheduled x86-64 mulx/adcx/adox kernel
    };

    BigInt p_;
    size_t n_;           ///< active limb count
    int bits_;           ///< modulus bit length
    u64 n0inv_;          ///< -p^-1 mod 2^64
    const KernelVTable *vt_ = nullptr; ///< fixed-width kernel dispatch
    FastPath fast_ = FastPath::kNone;
    Residue pLimbs_{};   ///< modulus limbs
    Residue rModP_{};    ///< R mod p (Montgomery one)
    Residue r2ModP_{};   ///< R^2 mod p (for toMont)
    std::array<u64, 2 * kMaxLimbs> pSquared_{}; ///< p^2 (lazy negatives)
};

} // namespace finesse

#endif // FINESSE_BIGINT_MONT_H_
