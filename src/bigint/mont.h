/**
 * @file
 * Montgomery-domain modular arithmetic context. One MontCtx exists per
 * base field Fp and provides the word-serial CIOS multiplication that the
 * paper's mmul hardware unit implements in a Karatsuba-Wallace pipeline.
 */
#ifndef FINESSE_BIGINT_MONT_H_
#define FINESSE_BIGINT_MONT_H_

#include <array>

#include "bigint/bigint.h"
#include "bigint/limbs.h"

namespace finesse {

/** Raw residue value: fixed storage, runtime active width. */
using Residue = std::array<u64, kMaxLimbs>;

/**
 * Montgomery multiplication context for an odd modulus p of at most
 * kMaxLimbs * 64 bits. Values handled by mul/sqr/... are residues in the
 * Montgomery domain (a * R mod p with R = 2^(64n)).
 */
class MontCtx
{
  public:
    /** Build a context for odd modulus @p p (p > 2). */
    explicit MontCtx(const BigInt &p);

    /** Active limb count n. */
    size_t limbCount() const { return n_; }

    /** Modulus as BigInt. */
    const BigInt &modulus() const { return p_; }

    /** Modulus bit length. */
    int bits() const { return bits_; }

    // Domain conversion ------------------------------------------------
    /** Standard integer (mod p) -> Montgomery domain. */
    Residue toMont(const BigInt &v) const;

    /** Montgomery domain -> standard integer in [0, p). */
    BigInt fromMont(const Residue &a) const;

    // Arithmetic (all inputs/outputs in Montgomery domain) --------------
    void add(Residue &r, const Residue &a, const Residue &b) const;
    void sub(Residue &r, const Residue &a, const Residue &b) const;
    void neg(Residue &r, const Residue &a) const;
    void mul(Residue &r, const Residue &a, const Residue &b) const;
    void sqr(Residue &r, const Residue &a) const { mul(r, a, a); }

    /** r = a^e (e is a plain non-negative integer, not a residue). */
    void pow(Residue &r, const Residue &a, const BigInt &e) const;

    /** r = a^(p-2) = a^-1 for prime p; zero maps to zero. */
    void inv(Residue &r, const Residue &a) const;

    /** Montgomery representation of 1. */
    const Residue &one() const { return rModP_; }

    bool isZero(const Residue &a) const
    {
        return limbs::isZero(a.data(), n_);
    }

    bool
    equal(const Residue &a, const Residue &b) const
    {
        return limbs::cmp(a.data(), b.data(), n_) == 0;
    }

  private:
    BigInt p_;
    size_t n_;           ///< active limb count
    int bits_;           ///< modulus bit length
    u64 n0inv_;          ///< -p^-1 mod 2^64
    Residue pLimbs_{};   ///< modulus limbs
    Residue rModP_{};    ///< R mod p (Montgomery one)
    Residue r2ModP_{};   ///< R^2 mod p (for toMont)
};

} // namespace finesse

#endif // FINESSE_BIGINT_MONT_H_
