/**
 * @file
 * Fixed-limb Montgomery kernels: a MontKernel<N> template family whose
 * loop bounds are compile-time constants, so every curve width gets fully
 * unrolled, allocation-free CIOS multiplication, a dedicated squaring
 * kernel (cross-product doubling), unrolled linear ops, and a split
 * wideMul / montRedc pair that enables lazy (single-reduction)
 * sum-of-products accumulation in the extension tower.
 *
 * MontCtx (bigint/mont.h) selects one KernelVTable per context at
 * construction — a single indirect call per operation replaces the
 * per-iteration runtime-width branching of the generic loop. Moduli
 * whose top limb is <= kSpareBitTopLimbMax (every catalog curve) get
 * the spare-top-bit table, whose fused single-scratch CIOS multiply
 * (mulSpareBit, the gnark "no-carry" shape) drops the overflow-limb
 * bookkeeping entirely. On x86-64 with BMI2+ADX, 4-limb spare-bit
 * contexts additionally bypass the vtable for a hand-scheduled
 * mulx/adcx/adox dual-carry-chain asm kernel (montMulAdx4), selected at
 * context construction via cpuHasAdx(). The generic runtime-width
 * implementation stays in MontCtx as the differential oracle
 * (mulGeneric/sqrGeneric/...); tests/test_montkernel.cpp checks every
 * width 1..kMaxLimbs against it and against BigInt reference
 * arithmetic.
 *
 * Value contract: all kernel entry points take fully reduced Montgomery
 * residues (< p) and produce fully reduced residues, touching only the
 * low N limbs of their destination. Intermediate values inside
 * sumOfProducts may exceed p (that is the point of lazy reduction); the
 * final conditional-subtract loop restores the invariant before the
 * value escapes.
 */
#ifndef FINESSE_BIGINT_MONTKERNEL_H_
#define FINESSE_BIGINT_MONTKERNEL_H_

#include <cstddef>

#include "bigint/limbs.h"
#include "support/common.h"

namespace finesse {

/**
 * Per-modulus constants a kernel needs, passed by reference so the same
 * instantiation serves every context of its width. pSquared (2N limbs,
 * p^2) turns negatively-signed lazy terms into non-negative ones:
 * c * (p^2 - a*b) == -c * a*b (mod p) for residues a, b < p.
 */
struct MontParams
{
    const u64 *p;        ///< modulus, N limbs
    const u64 *pSquared; ///< p^2, 2N limbs
    u64 n0inv;           ///< -p^-1 mod 2^64
};

/** One lazy term: coeff * a * b with a small signed integer coeff. */
struct MontTerm
{
    const u64 *a;
    const u64 *b;
    i64 coeff;
};

/**
 * Fixed-width kernel family. All loops have constexpr trip counts; the
 * compiler unrolls and schedules them per width.
 */
template <size_t N>
struct MontKernel
{
    static_assert(N >= 1 && N <= kMaxLimbs);

    // Linear ops ---------------------------------------------------------

    static void
    add(u64 *r, const u64 *a, const u64 *b, const MontParams &prm)
    {
        u64 carry = 0;
        for (size_t i = 0; i < N; ++i) {
            const u128 t = static_cast<u128>(a[i]) + b[i] + carry;
            r[i] = static_cast<u64>(t);
            carry = static_cast<u64>(t >> 64);
        }
        condSub(r, prm.p, carry);
    }

    static void
    sub(u64 *r, const u64 *a, const u64 *b, const MontParams &prm)
    {
        u64 borrow = 0;
        for (size_t i = 0; i < N; ++i) {
            const u128 t = static_cast<u128>(a[i]) - b[i] - borrow;
            r[i] = static_cast<u64>(t);
            borrow = static_cast<u64>(-(t >> 64)) & 1;
        }
        if (borrow) {
            u64 carry = 0;
            for (size_t i = 0; i < N; ++i) {
                const u128 t = static_cast<u128>(r[i]) + prm.p[i] + carry;
                r[i] = static_cast<u64>(t);
                carry = static_cast<u64>(t >> 64);
            }
        }
    }

    static void
    neg(u64 *r, const u64 *a, const MontParams &prm)
    {
        u64 anyBit = 0;
        for (size_t i = 0; i < N; ++i)
            anyBit |= a[i];
        if (!anyBit) {
            for (size_t i = 0; i < N; ++i)
                r[i] = 0;
            return;
        }
        u64 borrow = 0;
        for (size_t i = 0; i < N; ++i) {
            const u128 t = static_cast<u128>(prm.p[i]) - a[i] - borrow;
            r[i] = static_cast<u64>(t);
            borrow = static_cast<u64>(-(t >> 64)) & 1;
        }
    }

    // Multiplicative ops -------------------------------------------------

    /** r = a * b * R^-1 mod p, fully unrolled CIOS. */
    static void
    mul(u64 *r, const u64 *a, const u64 *b, const MontParams &prm)
    {
        u64 t[N + 2] = {0};
        for (size_t i = 0; i < N; ++i) {
            u64 carry = 0;
            const u64 ai = a[i];
            for (size_t j = 0; j < N; ++j) {
                const u128 s = static_cast<u128>(ai) * b[j] + t[j] + carry;
                t[j] = static_cast<u64>(s);
                carry = static_cast<u64>(s >> 64);
            }
            u128 s = static_cast<u128>(t[N]) + carry;
            t[N] = static_cast<u64>(s);
            t[N + 1] = static_cast<u64>(s >> 64);

            const u64 m = t[0] * prm.n0inv;
            u128 acc = static_cast<u128>(m) * prm.p[0] + t[0];
            carry = static_cast<u64>(acc >> 64);
            for (size_t j = 1; j < N; ++j) {
                acc = static_cast<u128>(m) * prm.p[j] + t[j] + carry;
                t[j - 1] = static_cast<u64>(acc);
                carry = static_cast<u64>(acc >> 64);
            }
            s = static_cast<u128>(t[N]) + carry;
            t[N - 1] = static_cast<u64>(s);
            t[N] = t[N + 1] + static_cast<u64>(s >> 64);
            t[N + 1] = 0;
        }
        for (size_t i = 0; i < N; ++i)
            r[i] = t[i];
        condSub(r, prm.p, t[N]);
    }

    /**
     * r = a * b * R^-1 mod p, CIOS with the spare-top-bit optimization:
     * when p[N-1] <= 2^63 - 2 the running value never exceeds N limbs,
     * so the multiply and reduce passes fuse into one loop over an
     * N-word scratch with no overflow-limb bookkeeping. Callers must
     * check the modulus condition (kernelVTable does).
     */
    static FINESSE_FORCE_INLINE void
    mulSpareBit(u64 *r, const u64 *a, const u64 *b, const MontParams &prm)
    {
        u64 t[N] = {0};
        for (size_t i = 0; i < N; ++i) {
            const u64 ai = a[i];
            u128 s = static_cast<u128>(ai) * b[0] + t[0];
            u64 c = static_cast<u64>(s >> 64);
            const u64 t0 = static_cast<u64>(s);
            const u64 m = t0 * prm.n0inv;
            u128 s2 = static_cast<u128>(m) * prm.p[0] + t0;
            u64 c2 = static_cast<u64>(s2 >> 64);
            for (size_t j = 1; j < N; ++j) {
                s = static_cast<u128>(ai) * b[j] + t[j] + c;
                c = static_cast<u64>(s >> 64);
                s2 = static_cast<u128>(m) * prm.p[j] +
                     static_cast<u64>(s) + c2;
                t[j - 1] = static_cast<u64>(s2);
                c2 = static_cast<u64>(s2 >> 64);
            }
            t[N - 1] = c + c2; // cannot overflow: value stays < 2p < R
        }
        for (size_t i = 0; i < N; ++i)
            r[i] = t[i];
        condSub(r, prm.p, 0);
    }

    /**
     * r = a^2 * R^-1 mod p: dedicated squaring, valid for any modulus.
     * The wide square needs only N(N+1)/2 word products (off-diagonal
     * cross products are doubled by a shift) instead of the N^2 of
     * wideMul, then one streamlined Montgomery reduction whose per-round
     * carry is deferred to the next round's high-limb write (no ripple).
     */
    static FINESSE_FORCE_INLINE void
    sqr(u64 *r, const u64 *a, const MontParams &prm)
    {
        u64 t[2 * N];
        wideSqr(t, a);
        u64 carry2 = 0;
        for (size_t i = 0; i < N; ++i) {
            const u64 m = t[i] * prm.n0inv;
            // j = 0: the low word of m*p[0] + t[i] is zero by choice of
            // m and t[i] is never read again — only the carry matters.
            u64 carry = static_cast<u64>(
                (static_cast<u128>(m) * prm.p[0] + t[i]) >> 64);
            for (size_t j = 1; j < N; ++j) {
                const u128 s =
                    static_cast<u128>(m) * prm.p[j] + t[i + j] + carry;
                t[i + j] = static_cast<u64>(s);
                carry = static_cast<u64>(s >> 64);
            }
            const u128 s =
                static_cast<u128>(t[i + N]) + carry + carry2;
            t[i + N] = static_cast<u64>(s);
            carry2 = static_cast<u64>(s >> 64);
        }
        // Result = t[N..2N) + carry2 * R, and it is < 2p: one
        // conditional subtract restores full reduction.
        for (size_t i = 0; i < N; ++i)
            r[i] = t[i + N];
        condSub(r, prm.p, carry2);
    }

    // Lazy-reduction building blocks --------------------------------------

    /** t[0..2N) = a * b (plain wide product, no reduction). */
    static void
    wideMul(u64 *t, const u64 *a, const u64 *b)
    {
        for (size_t i = 0; i < 2 * N; ++i)
            t[i] = 0;
        for (size_t i = 0; i < N; ++i) {
            u64 carry = 0;
            const u64 ai = a[i];
            for (size_t j = 0; j < N; ++j) {
                const u128 s =
                    static_cast<u128>(ai) * b[j] + t[i + j] + carry;
                t[i + j] = static_cast<u64>(s);
                carry = static_cast<u64>(s >> 64);
            }
            t[i + N] = carry;
        }
    }

    /** t[0..2N) = a^2 via cross-product doubling. */
    static FINESSE_FORCE_INLINE void
    wideSqr(u64 *t, const u64 *a)
    {
        // Off-diagonal products a[i]*a[j], i < j. Row 0 writes its
        // limbs directly, so only the two limbs no row touches need
        // explicit zeroing.
        t[0] = 0;
        t[2 * N - 1] = 0;
        if constexpr (N >= 2) {
            u64 carry = 0;
            const u64 a0 = a[0];
            for (size_t j = 1; j < N; ++j) {
                const u128 s = static_cast<u128>(a0) * a[j] + carry;
                t[j] = static_cast<u64>(s);
                carry = static_cast<u64>(s >> 64);
            }
            t[N] = carry;
        }
        for (size_t i = 1; i + 1 < N; ++i) {
            u64 carry = 0;
            const u64 ai = a[i];
            for (size_t j = i + 1; j < N; ++j) {
                const u128 s =
                    static_cast<u128>(ai) * a[j] + t[i + j] + carry;
                t[i + j] = static_cast<u64>(s);
                carry = static_cast<u64>(s >> 64);
            }
            t[i + N] = carry;
        }
        // Single fused pass: double each limb (1-bit shift) and add the
        // diagonal a[i]^2 straddling limbs 2i, 2i+1.
        u64 shiftCarry = 0;
        u64 addCarry = 0;
        for (size_t i = 0; i < N; ++i) {
            const u128 d = static_cast<u128>(a[i]) * a[i];
            const u64 v0 = t[2 * i];
            const u128 s0 = static_cast<u128>((v0 << 1) | shiftCarry) +
                            static_cast<u64>(d) + addCarry;
            t[2 * i] = static_cast<u64>(s0);
            const u64 v1 = t[2 * i + 1];
            const u128 s1 = static_cast<u128>((v1 << 1) | (v0 >> 63)) +
                            static_cast<u64>(d >> 64) +
                            static_cast<u64>(s0 >> 64);
            t[2 * i + 1] = static_cast<u64>(s1);
            shiftCarry = v1 >> 63;
            addCarry = static_cast<u64>(s1 >> 64);
        }
        // a^2 fits exactly in 2N limbs; the last carry is always zero.
    }

    /**
     * Montgomery-reduce a (2N+2)-limb accumulator in place:
     * r = t * R^-1 mod p, fully reduced. The accumulator may hold any
     * value below 2^64 * p * R (ample for small-coefficient
     * sums-of-products); the trailing conditional-subtract loop runs
     * once per multiple of p left over, i.e. at most sum(|coeff|)+1
     * times.
     */
    static FINESSE_FORCE_INLINE void
    montRedc(u64 *r, u64 *t, const MontParams &prm)
    {
        // Per-round carry out of the t[i+N] write lands exactly where
        // the next round writes (t[i+1+N]), so it is deferred in carry2
        // instead of rippling through the accumulator.
        u64 carry2 = 0;
        for (size_t i = 0; i < N; ++i) {
            const u64 m = t[i] * prm.n0inv;
            // j = 0: only the carry of m*p[0] + t[i] matters (low word
            // is zero by choice of m; t[i] is never read again).
            u64 carry = static_cast<u64>(
                (static_cast<u128>(m) * prm.p[0] + t[i]) >> 64);
            for (size_t j = 1; j < N; ++j) {
                const u128 s =
                    static_cast<u128>(m) * prm.p[j] + t[i + j] + carry;
                t[i + j] = static_cast<u64>(s);
                carry = static_cast<u64>(s >> 64);
            }
            const u128 s =
                static_cast<u128>(t[i + N]) + carry + carry2;
            t[i + N] = static_cast<u64>(s);
            carry2 = static_cast<u64>(s >> 64);
        }
        const u128 sTop = static_cast<u128>(t[2 * N]) + carry2;
        t[2 * N] = static_cast<u64>(sTop);
        t[2 * N + 1] += static_cast<u64>(sTop >> 64);
        // Result = t[N .. 2N+1]; extra limbs hold the multiple-of-p
        // excess. Subtract p until the value drops below p — note the
        // overflow limbs reaching zero does NOT mean the value is
        // reduced (it may still be several multiples of p that happen to
        // fit in N limbs), so the loop must also compare against p. It
        // runs at most sum(|coeff|)+1 times.
        u64 *hi = t + N;
        while ((hi[N] | hi[N + 1]) != 0 || !lessThan(hi, prm.p)) {
            u64 borrow = 0;
            for (size_t i = 0; i < N; ++i) {
                const u128 s =
                    static_cast<u128>(hi[i]) - prm.p[i] - borrow;
                hi[i] = static_cast<u64>(s);
                borrow = static_cast<u64>(-(s >> 64)) & 1;
            }
            const u128 s0 = static_cast<u128>(hi[N]) - borrow;
            hi[N] = static_cast<u64>(s0);
            hi[N + 1] -= static_cast<u64>(-(s0 >> 64)) & 1;
        }
        for (size_t i = 0; i < N; ++i)
            r[i] = hi[i];
    }

    /**
     * r = (sum_i coeff_i * a_i * b_i) * R^-1 mod p with ONE Montgomery
     * reduction. Negative coefficients are folded through
     * |c| * (p^2 - a*b), which is congruent and non-negative. This is
     * the lazy-reduction hook behind Fp::sumOfProducts and the tower's
     * 2-reduction Fp2 multiplication.
     */
    static void
    sumOfProducts(u64 *r, const MontTerm *terms, size_t k,
                  const MontParams &prm)
    {
        u64 acc[2 * N + 2] = {0};
        u64 t[2 * N];
        for (size_t term = 0; term < k; ++term) {
            const i64 c = terms[term].coeff;
            if (c == 0)
                continue;
            if (terms[term].a == terms[term].b)
                wideSqr(t, terms[term].a);
            else
                wideMul(t, terms[term].a, terms[term].b);
            if (c < 0) {
                // t := p^2 - t (non-negative since a, b < p).
                u64 borrow = 0;
                for (size_t i = 0; i < 2 * N; ++i) {
                    const u128 s = static_cast<u128>(prm.pSquared[i]) -
                                   t[i] - borrow;
                    t[i] = static_cast<u64>(s);
                    borrow = static_cast<u64>(-(s >> 64)) & 1;
                }
            }
            const u64 scale =
                c < 0 ? static_cast<u64>(-(c + 1)) + 1 : static_cast<u64>(c);
            scaleAdd(acc, t, scale);
        }
        montRedc(r, acc, prm);
    }

  private:
    /** a < b over N limbs. */
    static bool
    lessThan(const u64 *a, const u64 *b)
    {
        for (size_t i = N; i-- > 0;) {
            if (a[i] != b[i])
                return a[i] < b[i];
        }
        return false;
    }

    /** Subtract p from r once when value = extraCarry * R + r >= p;
     *  callers guarantee value < 2p so one subtract fully reduces. */
    static FINESSE_FORCE_INLINE void
    condSub(u64 *r, const u64 *p, u64 extraCarry)
    {
        if (extraCarry != 0 || !lessThan(r, p)) {
            u64 borrow = 0;
            for (size_t i = 0; i < N; ++i) {
                const u128 s = static_cast<u128>(r[i]) - p[i] - borrow;
                r[i] = static_cast<u64>(s);
                borrow = static_cast<u64>(-(s >> 64)) & 1;
            }
        }
    }

    /** acc[0..2N+2) += scale * t[0..2N) for a small scale factor. */
    static void
    scaleAdd(u64 *acc, const u64 *t, u64 scale)
    {
        if (scale == 1) {
            u64 carry = 0;
            for (size_t i = 0; i < 2 * N; ++i) {
                const u128 s = static_cast<u128>(acc[i]) + t[i] + carry;
                acc[i] = static_cast<u64>(s);
                carry = static_cast<u64>(s >> 64);
            }
            for (size_t i = 2 * N; carry && i < 2 * N + 2; ++i) {
                const u128 s = static_cast<u128>(acc[i]) + carry;
                acc[i] = static_cast<u64>(s);
                carry = static_cast<u64>(s >> 64);
            }
            return;
        }
        u64 mulCarry = 0;
        u64 addCarry = 0;
        for (size_t i = 0; i < 2 * N; ++i) {
            const u128 pm = static_cast<u128>(t[i]) * scale + mulCarry;
            mulCarry = static_cast<u64>(pm >> 64);
            const u128 s = static_cast<u128>(acc[i]) +
                           static_cast<u64>(pm) + addCarry;
            acc[i] = static_cast<u64>(s);
            addCarry = static_cast<u64>(s >> 64);
        }
        u128 s = static_cast<u128>(acc[2 * N]) + mulCarry + addCarry;
        acc[2 * N] = static_cast<u64>(s);
        acc[2 * N + 1] += static_cast<u64>(s >> 64);
    }
};

// x86-64 ADX/BMI2 fast path ----------------------------------------------
//
// Hand-scheduled 4-limb Montgomery multiplication using mulx + the dual
// adcx/adox carry chains those extensions exist for. Inline asm needs no
// compiler ISA flags, so this inlines into baseline-ISA callers; it is
// selected at MontCtx construction only when the CPU reports BMI2 + ADX
// and the modulus has a spare top bit (value < 2p stays in 4 limbs).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FINESSE_HAVE_X86_ADX 1

/** Runtime check for the mulx/adcx/adox instruction set. */
inline bool
cpuHasAdx()
{
    static const bool has =
        __builtin_cpu_supports("bmi2") && __builtin_cpu_supports("adx");
    return has;
}

/**
 * r = a * b * R^-1 mod p for exactly 4 limbs with a spare-top-bit
 * modulus. Same algorithm as MontKernel<4>::mulSpareBit; the multiply
 * and reduce passes of each round run as two independent carry chains
 * (CF via adcx, OF via adox) that retire in parallel.
 */
FINESSE_FORCE_INLINE void
montMulAdx4(u64 *r, const u64 *a, const u64 *b, const u64 *p, u64 n0inv)
{
    __asm__ volatile(
        // Round 0: t = a0 * b (t was zero — plain single carry chain).
        "movq 0(%[a]), %%rdx\n\t"
        "mulxq 0(%[b]), %%r8, %%rcx\n\t"
        "mulxq 8(%[b]), %%rax, %%r13\n\t"
        "addq %%rcx, %%rax\n\t"
        "movq %%rax, %%r9\n\t"
        "mulxq 16(%[b]), %%rax, %%rcx\n\t"
        "adcq %%r13, %%rax\n\t"
        "movq %%rax, %%r10\n\t"
        "mulxq 24(%[b]), %%rax, %%r13\n\t"
        "adcq %%rcx, %%rax\n\t"
        "movq %%rax, %%r11\n\t"
        "adcq $0, %%r13\n\t"
        "movq %%r13, %%r12\n\t"
        // Round 0 reduce: m = t0 * n0inv; t = (t + m*p) >> 64.
        "movq %%r8, %%rdx\n\t"
        "imulq %[n0], %%rdx\n\t"
        "xorl %%eax, %%eax\n\t" // clear CF and OF
        "mulxq 0(%[p]), %%rax, %%rcx\n\t"
        "adcxq %%r8, %%rax\n\t" // low word cancels; keep the carry
        "mulxq 8(%[p]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r9\n\t"
        "adoxq %%rcx, %%r9\n\t"
        "mulxq 16(%[p]), %%rax, %%rcx\n\t"
        "adcxq %%rax, %%r10\n\t"
        "adoxq %%r13, %%r10\n\t"
        "mulxq 24(%[p]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r11\n\t"
        "adoxq %%rcx, %%r11\n\t"
        "movl $0, %%eax\n\t"
        "adcxq %%r13, %%r12\n\t"
        "adoxq %%rax, %%r12\n\t"
        // t now lives in (r9, r10, r11, r12); r8 is free.

        // Round 1: t += a1 * b (dual chain), reduce, shift.
        "movq 8(%[a]), %%rdx\n\t"
        "xorl %%r8d, %%r8d\n\t" // A = 0, clears CF/OF
        "mulxq 0(%[b]), %%rax, %%rcx\n\t"
        "adcxq %%rax, %%r9\n\t"
        "mulxq 8(%[b]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r10\n\t"
        "adoxq %%rcx, %%r10\n\t"
        "mulxq 16(%[b]), %%rax, %%rcx\n\t"
        "adcxq %%rax, %%r11\n\t"
        "adoxq %%r13, %%r11\n\t"
        "mulxq 24(%[b]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r12\n\t"
        "adoxq %%rcx, %%r12\n\t"
        "movl $0, %%eax\n\t"
        "adcxq %%r13, %%r8\n\t"
        "adoxq %%rax, %%r8\n\t"
        "movq %%r9, %%rdx\n\t"
        "imulq %[n0], %%rdx\n\t"
        "xorl %%eax, %%eax\n\t"
        "mulxq 0(%[p]), %%rax, %%rcx\n\t"
        "adcxq %%r9, %%rax\n\t"
        "mulxq 8(%[p]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r10\n\t"
        "adoxq %%rcx, %%r10\n\t"
        "mulxq 16(%[p]), %%rax, %%rcx\n\t"
        "adcxq %%rax, %%r11\n\t"
        "adoxq %%r13, %%r11\n\t"
        "mulxq 24(%[p]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r12\n\t"
        "adoxq %%rcx, %%r12\n\t"
        "movl $0, %%eax\n\t"
        "adcxq %%r13, %%r8\n\t"
        "adoxq %%rax, %%r8\n\t"
        // t = (r10, r11, r12, r8); r9 free.

        // Round 2.
        "movq 16(%[a]), %%rdx\n\t"
        "xorl %%r9d, %%r9d\n\t"
        "mulxq 0(%[b]), %%rax, %%rcx\n\t"
        "adcxq %%rax, %%r10\n\t"
        "mulxq 8(%[b]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r11\n\t"
        "adoxq %%rcx, %%r11\n\t"
        "mulxq 16(%[b]), %%rax, %%rcx\n\t"
        "adcxq %%rax, %%r12\n\t"
        "adoxq %%r13, %%r12\n\t"
        "mulxq 24(%[b]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r8\n\t"
        "adoxq %%rcx, %%r8\n\t"
        "movl $0, %%eax\n\t"
        "adcxq %%r13, %%r9\n\t"
        "adoxq %%rax, %%r9\n\t"
        "movq %%r10, %%rdx\n\t"
        "imulq %[n0], %%rdx\n\t"
        "xorl %%eax, %%eax\n\t"
        "mulxq 0(%[p]), %%rax, %%rcx\n\t"
        "adcxq %%r10, %%rax\n\t"
        "mulxq 8(%[p]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r11\n\t"
        "adoxq %%rcx, %%r11\n\t"
        "mulxq 16(%[p]), %%rax, %%rcx\n\t"
        "adcxq %%rax, %%r12\n\t"
        "adoxq %%r13, %%r12\n\t"
        "mulxq 24(%[p]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r8\n\t"
        "adoxq %%rcx, %%r8\n\t"
        "movl $0, %%eax\n\t"
        "adcxq %%r13, %%r9\n\t"
        "adoxq %%rax, %%r9\n\t"
        // t = (r11, r12, r8, r9); r10 free.

        // Round 3.
        "movq 24(%[a]), %%rdx\n\t"
        "xorl %%r10d, %%r10d\n\t"
        "mulxq 0(%[b]), %%rax, %%rcx\n\t"
        "adcxq %%rax, %%r11\n\t"
        "mulxq 8(%[b]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r12\n\t"
        "adoxq %%rcx, %%r12\n\t"
        "mulxq 16(%[b]), %%rax, %%rcx\n\t"
        "adcxq %%rax, %%r8\n\t"
        "adoxq %%r13, %%r8\n\t"
        "mulxq 24(%[b]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r9\n\t"
        "adoxq %%rcx, %%r9\n\t"
        "movl $0, %%eax\n\t"
        "adcxq %%r13, %%r10\n\t"
        "adoxq %%rax, %%r10\n\t"
        "movq %%r11, %%rdx\n\t"
        "imulq %[n0], %%rdx\n\t"
        "xorl %%eax, %%eax\n\t"
        "mulxq 0(%[p]), %%rax, %%rcx\n\t"
        "adcxq %%r11, %%rax\n\t"
        "mulxq 8(%[p]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r12\n\t"
        "adoxq %%rcx, %%r12\n\t"
        "mulxq 16(%[p]), %%rax, %%rcx\n\t"
        "adcxq %%rax, %%r8\n\t"
        "adoxq %%r13, %%r8\n\t"
        "mulxq 24(%[p]), %%rax, %%r13\n\t"
        "adcxq %%rax, %%r9\n\t"
        "adoxq %%rcx, %%r9\n\t"
        "movl $0, %%eax\n\t"
        "adcxq %%r13, %%r10\n\t"
        "adoxq %%rax, %%r10\n\t"
        // t = (r12, r8, r9, r10), strictly below 2p.

        // Branch-free final reduction: t - p with cmov select.
        "movq %%r12, %%rcx\n\t"
        "movq %%r8, %%rdx\n\t"
        "movq %%r9, %%r13\n\t"
        "movq %%r10, %%r11\n\t"
        "subq 0(%[p]), %%rcx\n\t"
        "sbbq 8(%[p]), %%rdx\n\t"
        "sbbq 16(%[p]), %%r13\n\t"
        "sbbq 24(%[p]), %%r11\n\t"
        "cmovncq %%rcx, %%r12\n\t"
        "cmovncq %%rdx, %%r8\n\t"
        "cmovncq %%r13, %%r9\n\t"
        "cmovncq %%r11, %%r10\n\t"
        "movq %%r12, 0(%[r])\n\t"
        "movq %%r8, 8(%[r])\n\t"
        "movq %%r9, 16(%[r])\n\t"
        "movq %%r10, 24(%[r])\n\t"
        :
        : [r] "r"(r), [a] "r"(a), [b] "r"(b), [p] "r"(p), [n0] "r"(n0inv)
        : "rax", "rcx", "rdx", "r8", "r9", "r10", "r11", "r12", "r13",
          "cc", "memory");
}

#else
#define FINESSE_HAVE_X86_ADX 0
#endif

/**
 * Width-indexed dispatch table. MontCtx resolves its table once at
 * construction (switch on the limb count), after which every field
 * operation is a single indirect call into the unrolled kernel with no
 * per-call width branching.
 */
struct KernelVTable
{
    void (*add)(u64 *, const u64 *, const u64 *, const MontParams &);
    void (*sub)(u64 *, const u64 *, const u64 *, const MontParams &);
    void (*neg)(u64 *, const u64 *, const MontParams &);
    void (*mul)(u64 *, const u64 *, const u64 *, const MontParams &);
    void (*sqr)(u64 *, const u64 *, const MontParams &);
    void (*sumOfProducts)(u64 *, const MontTerm *, size_t,
                          const MontParams &);
};

/**
 * Largest modulus top limb for which the fused spare-top-bit CIOS
 * (MontKernel::mulSpareBit) is sound: the running value must stay below
 * 2p < R, i.e. the modulus needs at least one free bit in its top limb.
 * Every pairing curve modulus in practice qualifies (BN254: 254 bits in
 * 4 limbs, BLS12-381: 381 bits in 6 limbs, ...).
 */
inline constexpr u64 kSpareBitTopLimbMax = (u64{1} << 63) - 2;

namespace detail {

template <size_t N>
inline constexpr KernelVTable kKernelVTable = {
    &MontKernel<N>::add,          &MontKernel<N>::sub,
    &MontKernel<N>::neg,          &MontKernel<N>::mul,
    &MontKernel<N>::sqr,          &MontKernel<N>::sumOfProducts,
};

template <size_t N>
inline constexpr KernelVTable kKernelVTableSpareBit = {
    &MontKernel<N>::add,          &MontKernel<N>::sub,
    &MontKernel<N>::neg,          &MontKernel<N>::mulSpareBit,
    &MontKernel<N>::sqr,          &MontKernel<N>::sumOfProducts,
};

template <size_t N>
inline const KernelVTable *
pickVTable(bool spareTopBit)
{
    return spareTopBit ? &kKernelVTableSpareBit<N> : &kKernelVTable<N>;
}

} // namespace detail

/**
 * Kernel table for an active width n in [1, kMaxLimbs]. @p topLimb is
 * the modulus's most significant limb; when it leaves a spare bit the
 * faster fused CIOS multiplication is selected.
 */
inline const KernelVTable *
kernelVTable(size_t n, u64 topLimb)
{
    const bool spare = topLimb <= kSpareBitTopLimbMax;
    switch (n) {
      case 1: return detail::pickVTable<1>(spare);
      case 2: return detail::pickVTable<2>(spare);
      case 3: return detail::pickVTable<3>(spare);
      case 4: return detail::pickVTable<4>(spare);
      case 5: return detail::pickVTable<5>(spare);
      case 6: return detail::pickVTable<6>(spare);
      case 7: return detail::pickVTable<7>(spare);
      case 8: return detail::pickVTable<8>(spare);
      case 9: return detail::pickVTable<9>(spare);
      case 10: return detail::pickVTable<10>(spare);
      case 11: return detail::pickVTable<11>(spare);
      case 12: return detail::pickVTable<12>(spare);
      case 13: return detail::pickVTable<13>(spare);
      case 14: return detail::pickVTable<14>(spare);
      case 15: return detail::pickVTable<15>(spare);
      case 16: return detail::pickVTable<16>(spare);
      default: return nullptr;
    }
}

static_assert(kMaxLimbs == 16, "extend kernelVTable when widening");

} // namespace finesse

#endif // FINESSE_BIGINT_MONTKERNEL_H_
