/**
 * @file
 * Arbitrary-precision signed integer used throughout curve and pairing
 * setup: parameter derivation (p, r, t from the family polynomial),
 * cofactor computation via Frobenius-trace recurrences, final-exponentiation
 * exponent decomposition, Tonelli-Shanks preparation and primality testing.
 *
 * The hot paths of the library (Fp arithmetic) do not use BigInt; they use
 * the fixed-limb Montgomery kernels in bigint/mont.h.
 */
#ifndef FINESSE_BIGINT_BIGINT_H_
#define FINESSE_BIGINT_BIGINT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "support/common.h"
#include "support/rng.h"

namespace finesse {

/**
 * Limb count of the smaller factor at and below which BigInt
 * multiplication uses the schoolbook loop; above it, operator* switches
 * to Karatsuba. Tuned empirically on x86-64 (crossover sits in the
 * 20-30 limb range; setup-path operands below ~16 limbs never split).
 */
inline constexpr size_t kKaratsubaThresholdLimbs = 24;

/**
 * Sign-magnitude arbitrary-precision integer with 64-bit limbs
 * (little-endian limb order). Value semantics throughout.
 */
class BigInt
{
  public:
    /** Zero. */
    BigInt() = default;

    /** From an unsigned 64-bit value. */
    BigInt(u64 v); // NOLINT(google-explicit-constructor)

    /** From a signed 64-bit value. */
    BigInt(i64 v); // NOLINT(google-explicit-constructor)

    BigInt(int v) : BigInt(static_cast<i64>(v)) {}

    /**
     * Parse from a string. Accepts optional leading '-', "0x" prefix for
     * hexadecimal, decimal otherwise.
     */
    static BigInt fromString(const std::string &text);

    /** From little-endian limb array (unsigned). */
    static BigInt fromLimbs(const u64 *limbs, size_t n);

    /** Uniform random integer in [0, bound). */
    static BigInt randomBelow(Rng &rng, const BigInt &bound);

    /** Uniform random integer with exactly @p bits bits (msb set). */
    static BigInt randomBits(Rng &rng, int bits);

    // Observers ------------------------------------------------------------
    bool isZero() const { return limbs_.empty(); }
    bool isNegative() const { return negative_; }
    bool isOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
    bool isEven() const { return !isOdd(); }

    /** Number of significant bits of the magnitude (0 for zero). */
    int bitLength() const;

    /** Value of bit @p i of the magnitude (0 or 1). */
    int bit(int i) const;

    /** Number of significant limbs. */
    size_t limbCount() const { return limbs_.size(); }

    /** Limb @p i of the magnitude (0 beyond the end). */
    u64 limb(size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }

    /** Copy magnitude into a fixed buffer, zero-padding to @p n limbs. */
    void toLimbs(u64 *out, size_t n) const;

    /** Lowest 64 bits of the magnitude. */
    u64 low64() const { return limb(0); }

    /** Convert to double (approximate, magnitude with sign). */
    double toDouble() const;

    // Arithmetic -----------------------------------------------------------
    BigInt operator-() const;
    BigInt operator+(const BigInt &o) const;
    BigInt operator-(const BigInt &o) const;
    BigInt operator*(const BigInt &o) const;

    /**
     * Quadratic schoolbook product, regardless of operand size. The
     * differential oracle for the Karatsuba path in operator*.
     */
    static BigInt mulSchoolbook(const BigInt &a, const BigInt &b);

    /** Quotient of truncated division (rounds toward zero). */
    BigInt operator/(const BigInt &o) const;

    /** Remainder of truncated division (sign follows the dividend). */
    BigInt operator%(const BigInt &o) const;

    /** Simultaneous quotient/remainder of truncated division. */
    static void divmod(const BigInt &a, const BigInt &b, BigInt &q,
                       BigInt &r);

    /** Euclidean remainder in [0, |m|). */
    BigInt mod(const BigInt &m) const;

    BigInt operator<<(int bits) const;
    BigInt operator>>(int bits) const;

    BigInt &operator+=(const BigInt &o) { return *this = *this + o; }
    BigInt &operator-=(const BigInt &o) { return *this = *this - o; }
    BigInt &operator*=(const BigInt &o) { return *this = *this * o; }

    std::strong_ordering operator<=>(const BigInt &o) const;
    bool operator==(const BigInt &o) const = default;

    /** |this|. */
    BigInt abs() const;

    /** this^e for small unsigned exponent. */
    BigInt pow(u64 e) const;

    /** Modular exponentiation: this^e mod m (m > 0, e >= 0). */
    BigInt powMod(const BigInt &e, const BigInt &m) const;

    /** Greatest common divisor of magnitudes. */
    static BigInt gcd(BigInt a, BigInt b);

    /** Modular inverse in [0, m); fatal if gcd(this, m) != 1. */
    BigInt invMod(const BigInt &m) const;

    /** Floor of the integer square root (requires non-negative value). */
    BigInt isqrt() const;

    /** Exact division; panics when the division has a remainder. */
    BigInt divExact(const BigInt &o) const;

    // Rendering ------------------------------------------------------------
    std::string toString() const;    ///< decimal
    std::string toHexString() const; ///< 0x-prefixed hexadecimal

    /**
     * FNV-1a over sign + magnitude limbs. Lets constant pools be
     * hash-interned (one unordered_map probe per lookup) instead of
     * ordered-map interned (O(log n) BigInt comparisons per lookup).
     */
    size_t
    hashValue() const
    {
        u64 h = 14695981039346656037ull ^
                (negative_ ? 0x9e3779b97f4a7c15ull : 0);
        for (u64 limb : limbs_) {
            h ^= limb;
            h *= 1099511628211ull;
        }
        return static_cast<size_t>(h);
    }

  private:
    static int compareMagnitude(const BigInt &a, const BigInt &b);
    static BigInt addMagnitude(const BigInt &a, const BigInt &b);
    /** Requires |a| >= |b|. */
    static BigInt subMagnitude(const BigInt &a, const BigInt &b);
    void trim();

    std::vector<u64> limbs_; ///< little-endian magnitude, no trailing zeros
    bool negative_ = false;  ///< sign (false for zero)
};

/** Hasher for BigInt-keyed unordered containers (constant interning). */
struct BigIntHash
{
    size_t
    operator()(const BigInt &v) const
    {
        return v.hashValue();
    }
};

/** Deterministic Miller-Rabin + trial-division primality test. */
bool isProbablePrime(const BigInt &n, int rounds = 40);

std::ostream &operator<<(std::ostream &os, const BigInt &v);

} // namespace finesse

#endif // FINESSE_BIGINT_BIGINT_H_
