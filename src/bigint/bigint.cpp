/**
 * @file
 * BigInt implementation. Karatsuba multiplication (schoolbook below
 * kKaratsubaThresholdLimbs) and Knuth Algorithm D division with 64-bit
 * digits; ample for setup-time computations on values up to a few tens
 * of kilobits (p^24 for BLS24-509 is ~12.2 kbit).
 */
#include "bigint/bigint.h"

#include <algorithm>
#include <array>
#include <ostream>
#include <vector>

namespace finesse {

namespace {

/**
 * r[0 .. na+nb) = a * b, schoolbook. @p r must be zero-filled on entry.
 */
void
mulSchoolbookLimbs(u64 *r, const u64 *a, size_t na, const u64 *b, size_t nb)
{
    for (size_t i = 0; i < na; ++i) {
        u64 carry = 0;
        const u64 x = a[i];
        for (size_t j = 0; j < nb; ++j) {
            const u128 t = static_cast<u128>(x) * b[j] + r[i + j] + carry;
            r[i + j] = static_cast<u64>(t);
            carry = static_cast<u64>(t >> 64);
        }
        r[i + nb] = carry;
    }
}

/** r[0 .. rn) += x[0 .. xn); the carry must die inside r. */
void
addInto(u64 *r, size_t rn, const u64 *x, size_t xn)
{
    u64 carry = 0;
    size_t i = 0;
    for (; i < xn; ++i) {
        const u128 s = static_cast<u128>(r[i]) + x[i] + carry;
        r[i] = static_cast<u64>(s);
        carry = static_cast<u64>(s >> 64);
    }
    for (; carry && i < rn; ++i) {
        r[i] += 1;
        carry = r[i] == 0;
    }
    FINESSE_CHECK(carry == 0, "addInto overflow");
}

/** r[0 .. rn) -= x[0 .. xn); requires r >= x as integers. */
void
subInto(u64 *r, size_t rn, const u64 *x, size_t xn)
{
    u64 borrow = 0;
    size_t i = 0;
    for (; i < xn; ++i) {
        const u64 y = x[i];
        const u64 d = r[i] - y;
        const u64 b1 = r[i] < y;
        const u64 d2 = d - borrow;
        const u64 b2 = d < borrow;
        r[i] = d2;
        borrow = b1 | b2;
    }
    for (; borrow && i < rn; ++i) {
        borrow = r[i] == 0;
        r[i] -= 1;
    }
    FINESSE_CHECK(borrow == 0, "subInto underflow");
}

/** Significant-limb count (trailing zeros dropped). */
size_t
sigLimbs(const u64 *a, size_t n)
{
    while (n > 0 && a[n - 1] == 0)
        --n;
    return n;
}

/**
 * r[0 .. na+nb) = a * b. @p r must be zero-filled on entry. Recursive
 * Karatsuba above kKaratsubaThresholdLimbs (measured on the smaller
 * operand), schoolbook below. Unbalanced operands are split along the
 * larger one until the halves can pair up.
 */
void
mulRecLimbs(u64 *r, const u64 *a, size_t na, const u64 *b, size_t nb)
{
    if (na < nb) {
        std::swap(a, b);
        std::swap(na, nb);
    }
    if (nb <= kKaratsubaThresholdLimbs) {
        mulSchoolbookLimbs(r, a, na, b, nb);
        return;
    }
    const size_t m = na / 2;
    if (nb <= m) {
        // b spans only the low split of a: two plain sub-products.
        //   r = a0 * b + (a1 * b) << 64m
        mulRecLimbs(r, a, m, b, nb);
        std::vector<u64> hi(na - m + nb, 0);
        mulRecLimbs(hi.data(), a + m, na - m, b, nb);
        addInto(r + m, na + nb - m, hi.data(), hi.size());
        return;
    }

    // Balanced Karatsuba: a = a1 << 64m | a0, b = b1 << 64m | b0.
    //   z0 = a0 b0, z2 = a1 b1, z1 = (a0+a1)(b0+b1) - z0 - z2
    //   r  = z0 + z1 << 64m + z2 << 128m
    const size_t na1 = na - m;
    const size_t nb1 = nb - m;
    std::vector<u64> z0(2 * m, 0);
    std::vector<u64> z2(na1 + nb1, 0);
    mulRecLimbs(z0.data(), a, m, b, m);
    mulRecLimbs(z2.data(), a + m, na1, b + m, nb1);

    const size_t sal = std::max(m, na1) + 1;
    const size_t sbl = std::max(m, nb1) + 1;
    std::vector<u64> sa(sal, 0);
    std::vector<u64> sb(sbl, 0);
    std::copy(a, a + m, sa.begin());
    addInto(sa.data(), sal, a + m, na1);
    std::copy(b, b + m, sb.begin());
    addInto(sb.data(), sbl, b + m, nb1);

    std::vector<u64> z1(sal + sbl, 0);
    mulRecLimbs(z1.data(), sa.data(), sal, sb.data(), sbl);
    subInto(z1.data(), z1.size(), z0.data(), z0.size());
    subInto(z1.data(), z1.size(), z2.data(), z2.size());

    std::copy(z0.begin(), z0.end(), r);
    std::copy(z2.begin(), z2.end(), r + 2 * m);
    // z1 << 64m fits: z1 = a0 b1 + a1 b0 < 2^(64 (na + nb - m)).
    addInto(r + m, na + nb - m, z1.data(), sigLimbs(z1.data(), z1.size()));
}

} // namespace

BigInt::BigInt(u64 v)
{
    if (v)
        limbs_.push_back(v);
}

BigInt::BigInt(i64 v)
{
    if (v < 0) {
        negative_ = true;
        // Negating INT64_MIN directly is UB; go through u64.
        limbs_.push_back(~static_cast<u64>(v) + 1);
    } else if (v > 0) {
        limbs_.push_back(static_cast<u64>(v));
    }
}

void
BigInt::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
    if (limbs_.empty())
        negative_ = false;
}

BigInt
BigInt::fromString(const std::string &text)
{
    FINESSE_REQUIRE(!text.empty(), "empty integer literal");
    size_t pos = 0;
    bool neg = false;
    if (text[pos] == '-') {
        neg = true;
        ++pos;
    } else if (text[pos] == '+') {
        ++pos;
    }
    BigInt result;
    if (text.size() - pos > 2 && text[pos] == '0' &&
        (text[pos + 1] == 'x' || text[pos + 1] == 'X')) {
        for (pos += 2; pos < text.size(); ++pos) {
            char c = text[pos];
            if (c == '_' || c == '\'')
                continue;
            u64 digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else if (c >= 'A' && c <= 'F')
                digit = c - 'A' + 10;
            else
                fatal("bad hex digit '", c, "' in ", text);
            result = (result << 4) + BigInt(digit);
        }
    } else {
        for (; pos < text.size(); ++pos) {
            char c = text[pos];
            if (c == '_' || c == '\'')
                continue;
            FINESSE_REQUIRE(c >= '0' && c <= '9', "bad decimal digit in ",
                            text);
            result = result * BigInt(u64{10}) + BigInt(u64(c - '0'));
        }
    }
    result.negative_ = neg && !result.isZero();
    return result;
}

BigInt
BigInt::fromLimbs(const u64 *limbs, size_t n)
{
    BigInt r;
    r.limbs_.assign(limbs, limbs + n);
    r.trim();
    return r;
}

BigInt
BigInt::randomBits(Rng &rng, int bits)
{
    FINESSE_CHECK(bits > 0);
    BigInt r;
    const size_t words = (bits + 63) / 64;
    r.limbs_.resize(words);
    for (auto &w : r.limbs_)
        w = rng.next();
    const int top = bits - 64 * static_cast<int>(words - 1);
    // Mask the top limb and force the msb so the result has exactly `bits`
    // bits.
    if (top < 64)
        r.limbs_.back() &= (u64{1} << top) - 1;
    r.limbs_.back() |= u64{1} << (top - 1);
    r.trim();
    return r;
}

BigInt
BigInt::randomBelow(Rng &rng, const BigInt &bound)
{
    FINESSE_CHECK(!bound.isZero() && !bound.isNegative());
    const int bits = bound.bitLength();
    const size_t words = (bits + 63) / 64;
    const int top = bits - 64 * static_cast<int>(words - 1);
    const u64 mask = top >= 64 ? ~u64{0} : ((u64{1} << top) - 1);
    for (;;) {
        BigInt r;
        r.limbs_.resize(words);
        for (auto &w : r.limbs_)
            w = rng.next();
        r.limbs_.back() &= mask;
        r.trim();
        if (compareMagnitude(r, bound) < 0)
            return r;
    }
}

int
BigInt::bitLength() const
{
    if (limbs_.empty())
        return 0;
    const u64 top = limbs_.back();
    return static_cast<int>(limbs_.size() - 1) * 64 +
           (64 - __builtin_clzll(top));
}

int
BigInt::bit(int i) const
{
    if (i < 0)
        return 0;
    const size_t word = static_cast<size_t>(i) / 64;
    if (word >= limbs_.size())
        return 0;
    return (limbs_[word] >> (i % 64)) & 1;
}

void
BigInt::toLimbs(u64 *out, size_t n) const
{
    FINESSE_CHECK(limbs_.size() <= n, "value too wide: ", limbs_.size(),
                  " limbs into ", n);
    for (size_t i = 0; i < n; ++i)
        out[i] = limb(i);
}

double
BigInt::toDouble() const
{
    double v = 0;
    for (size_t i = limbs_.size(); i-- > 0;)
        v = v * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
    return negative_ ? -v : v;
}

int
BigInt::compareMagnitude(const BigInt &a, const BigInt &b)
{
    if (a.limbs_.size() != b.limbs_.size())
        return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
        if (a.limbs_[i] != b.limbs_[i])
            return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
    return 0;
}

BigInt
BigInt::addMagnitude(const BigInt &a, const BigInt &b)
{
    BigInt r;
    const size_t n = std::max(a.limbs_.size(), b.limbs_.size());
    r.limbs_.resize(n + 1, 0);
    u64 carry = 0;
    for (size_t i = 0; i < n; ++i) {
        const u64 x = a.limb(i);
        const u64 y = b.limb(i);
        const u64 s = x + y;
        const u64 c1 = s < x;
        const u64 s2 = s + carry;
        const u64 c2 = s2 < s;
        r.limbs_[i] = s2;
        carry = c1 | c2;
    }
    r.limbs_[n] = carry;
    r.trim();
    return r;
}

BigInt
BigInt::subMagnitude(const BigInt &a, const BigInt &b)
{
    BigInt r;
    r.limbs_.resize(a.limbs_.size(), 0);
    u64 borrow = 0;
    for (size_t i = 0; i < a.limbs_.size(); ++i) {
        const u64 x = a.limb(i);
        const u64 y = b.limb(i);
        const u64 d = x - y;
        const u64 b1 = x < y;
        const u64 d2 = d - borrow;
        const u64 b2 = d < borrow;
        r.limbs_[i] = d2;
        borrow = b1 | b2;
    }
    FINESSE_CHECK(borrow == 0, "subMagnitude underflow");
    r.trim();
    return r;
}

BigInt
BigInt::operator-() const
{
    BigInt r = *this;
    if (!r.isZero())
        r.negative_ = !r.negative_;
    return r;
}

BigInt
BigInt::operator+(const BigInt &o) const
{
    if (negative_ == o.negative_) {
        BigInt r = addMagnitude(*this, o);
        r.negative_ = negative_ && !r.isZero();
        return r;
    }
    const int cmp = compareMagnitude(*this, o);
    if (cmp == 0)
        return BigInt();
    BigInt r = cmp > 0 ? subMagnitude(*this, o) : subMagnitude(o, *this);
    r.negative_ = (cmp > 0 ? negative_ : o.negative_) && !r.isZero();
    return r;
}

BigInt
BigInt::operator-(const BigInt &o) const
{
    return *this + (-o);
}

BigInt
BigInt::operator*(const BigInt &o) const
{
    if (isZero() || o.isZero())
        return BigInt();
    BigInt r;
    r.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    mulRecLimbs(r.limbs_.data(), limbs_.data(), limbs_.size(),
                o.limbs_.data(), o.limbs_.size());
    r.negative_ = negative_ != o.negative_;
    r.trim();
    return r;
}

BigInt
BigInt::mulSchoolbook(const BigInt &a, const BigInt &b)
{
    if (a.isZero() || b.isZero())
        return BigInt();
    BigInt r;
    r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
    mulSchoolbookLimbs(r.limbs_.data(), a.limbs_.data(), a.limbs_.size(),
                       b.limbs_.data(), b.limbs_.size());
    r.negative_ = a.negative_ != b.negative_;
    r.trim();
    return r;
}

void
BigInt::divmod(const BigInt &a, const BigInt &b, BigInt &q, BigInt &r)
{
    FINESSE_REQUIRE(!b.isZero(), "division by zero");
    if (compareMagnitude(a, b) < 0) {
        q = BigInt();
        r = a;
        return;
    }
    if (b.limbs_.size() == 1) {
        // Single-limb fast path.
        const u64 d = b.limbs_[0];
        BigInt quo;
        quo.limbs_.resize(a.limbs_.size());
        u64 rem = 0;
        for (size_t i = a.limbs_.size(); i-- > 0;) {
            const u128 cur = (static_cast<u128>(rem) << 64) | a.limbs_[i];
            quo.limbs_[i] = static_cast<u64>(cur / d);
            rem = static_cast<u64>(cur % d);
        }
        quo.trim();
        quo.negative_ = (a.negative_ != b.negative_) && !quo.isZero();
        q = quo;
        r = BigInt(rem);
        r.negative_ = a.negative_ && !r.isZero();
        return;
    }

    // Knuth Algorithm D. Normalize so the top divisor limb has its msb set.
    const int shift = __builtin_clzll(b.limbs_.back());
    const BigInt u = a.abs() << shift;
    const BigInt v = b.abs() << shift;
    const size_t n = v.limbs_.size();
    const size_t m = u.limbs_.size() - n;

    std::vector<u64> un(u.limbs_);
    un.push_back(0); // extra headroom limb
    const std::vector<u64> &vn = v.limbs_;

    BigInt quo;
    quo.limbs_.assign(m + 1, 0);

    const u64 vTop = vn[n - 1];
    const u64 vNext = vn[n - 2];
    for (size_t j = m + 1; j-- > 0;) {
        // Estimate the quotient digit from the top limbs.
        const u128 numer = (static_cast<u128>(un[j + n]) << 64) | un[j + n - 1];
        u128 qhat = numer / vTop;
        u128 rhat = numer % vTop;
        while (qhat >> 64 ||
               static_cast<u128>(static_cast<u64>(qhat)) * vNext >
                   ((rhat << 64) | un[j + n - 2])) {
            --qhat;
            rhat += vTop;
            if (rhat >> 64)
                break;
        }
        // Multiply-subtract qhat * v from u[j .. j+n].
        u64 qd = static_cast<u64>(qhat);
        u128 borrow = 0;
        u128 carry = 0;
        for (size_t i = 0; i < n; ++i) {
            const u128 p = static_cast<u128>(qd) * vn[i] + carry;
            carry = p >> 64;
            const u64 pl = static_cast<u64>(p);
            const u64 ui = un[i + j];
            const u64 d = ui - pl - static_cast<u64>(borrow);
            borrow = (static_cast<u128>(ui) <
                      static_cast<u128>(pl) + static_cast<u64>(borrow))
                         ? 1
                         : 0;
            un[i + j] = d;
        }
        const u64 uTop = un[j + n];
        const u64 subtrahend = static_cast<u64>(carry) +
                               static_cast<u64>(borrow);
        un[j + n] = uTop - subtrahend;
        if (uTop < subtrahend) {
            // qhat was one too large; add v back.
            --qd;
            u64 c = 0;
            for (size_t i = 0; i < n; ++i) {
                const u64 s = un[i + j] + vn[i];
                const u64 c1 = s < un[i + j];
                const u64 s2 = s + c;
                const u64 c2 = s2 < s;
                un[i + j] = s2;
                c = c1 | c2;
            }
            un[j + n] += c;
        }
        quo.limbs_[j] = qd;
    }

    quo.trim();
    quo.negative_ = (a.negative_ != b.negative_) && !quo.isZero();

    BigInt rem;
    rem.limbs_.assign(un.begin(), un.begin() + n);
    rem.trim();
    rem = rem >> shift;
    rem.negative_ = a.negative_ && !rem.isZero();
    q = quo;
    r = rem;
}

BigInt
BigInt::operator/(const BigInt &o) const
{
    BigInt q, r;
    divmod(*this, o, q, r);
    return q;
}

BigInt
BigInt::operator%(const BigInt &o) const
{
    BigInt q, r;
    divmod(*this, o, q, r);
    return r;
}

BigInt
BigInt::mod(const BigInt &m) const
{
    BigInt r = *this % m;
    if (r.isNegative())
        r = r + m.abs();
    return r;
}

BigInt
BigInt::operator<<(int bits) const
{
    FINESSE_CHECK(bits >= 0);
    if (isZero() || bits == 0)
        return *this;
    const size_t words = static_cast<size_t>(bits) / 64;
    const int rem = bits % 64;
    BigInt r;
    r.negative_ = negative_;
    r.limbs_.assign(limbs_.size() + words + 1, 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        r.limbs_[i + words] |= limbs_[i] << rem;
        if (rem)
            r.limbs_[i + words + 1] = limbs_[i] >> (64 - rem);
    }
    r.trim();
    return r;
}

BigInt
BigInt::operator>>(int bits) const
{
    FINESSE_CHECK(bits >= 0);
    const size_t words = static_cast<size_t>(bits) / 64;
    const int rem = bits % 64;
    if (words >= limbs_.size())
        return BigInt();
    BigInt r;
    r.negative_ = negative_;
    r.limbs_.assign(limbs_.size() - words, 0);
    for (size_t i = 0; i < r.limbs_.size(); ++i) {
        r.limbs_[i] = limbs_[i + words] >> rem;
        if (rem && i + words + 1 < limbs_.size())
            r.limbs_[i] |= limbs_[i + words + 1] << (64 - rem);
    }
    r.trim();
    return r;
}

std::strong_ordering
BigInt::operator<=>(const BigInt &o) const
{
    if (negative_ != o.negative_)
        return negative_ ? std::strong_ordering::less
                         : std::strong_ordering::greater;
    const int cmp = compareMagnitude(*this, o);
    const int signedCmp = negative_ ? -cmp : cmp;
    if (signedCmp < 0)
        return std::strong_ordering::less;
    if (signedCmp > 0)
        return std::strong_ordering::greater;
    return std::strong_ordering::equal;
}

BigInt
BigInt::abs() const
{
    BigInt r = *this;
    r.negative_ = false;
    return r;
}

BigInt
BigInt::pow(u64 e) const
{
    BigInt base = *this;
    BigInt result(u64{1});
    while (e) {
        if (e & 1)
            result = result * base;
        base = base * base;
        e >>= 1;
    }
    return result;
}

BigInt
BigInt::powMod(const BigInt &e, const BigInt &m) const
{
    FINESSE_REQUIRE(!m.isZero() && !m.isNegative(), "bad modulus");
    FINESSE_REQUIRE(!e.isNegative(), "negative exponent");
    BigInt base = mod(m);
    BigInt result(u64{1});
    result = result.mod(m);
    for (int i = e.bitLength(); i-- > 0;) {
        result = (result * result).mod(m);
        if (e.bit(i))
            result = (result * base).mod(m);
    }
    return result;
}

BigInt
BigInt::gcd(BigInt a, BigInt b)
{
    a = a.abs();
    b = b.abs();
    while (!b.isZero()) {
        BigInt r = a % b;
        a = b;
        b = r;
    }
    return a;
}

BigInt
BigInt::invMod(const BigInt &m) const
{
    // Extended Euclid on (a, m).
    BigInt a = mod(m);
    BigInt r0 = m.abs(), r1 = a;
    BigInt s0(u64{0}), s1(u64{1});
    while (!r1.isZero()) {
        BigInt q, r;
        divmod(r0, r1, q, r);
        BigInt s2 = s0 - q * s1;
        r0 = r1;
        r1 = r;
        s0 = s1;
        s1 = s2;
    }
    FINESSE_REQUIRE(r0 == BigInt(u64{1}), "invMod: arguments not coprime");
    return s0.mod(m);
}

BigInt
BigInt::isqrt() const
{
    FINESSE_REQUIRE(!isNegative(), "isqrt of negative value");
    if (isZero())
        return BigInt();
    // Newton iteration with a power-of-two seed above the root.
    BigInt x = BigInt(u64{1}) << ((bitLength() + 1) / 2);
    for (;;) {
        BigInt y = (x + *this / x) >> 1;
        if (y >= x)
            return x;
        x = y;
    }
}

BigInt
BigInt::divExact(const BigInt &o) const
{
    BigInt q, r;
    divmod(*this, o, q, r);
    FINESSE_CHECK(r.isZero(), "divExact with nonzero remainder");
    return q;
}

std::string
BigInt::toString() const
{
    if (isZero())
        return "0";
    std::string digits;
    BigInt v = abs();
    const BigInt ten(u64{10});
    while (!v.isZero()) {
        BigInt q, r;
        divmod(v, ten, q, r);
        digits.push_back(static_cast<char>('0' + r.low64()));
        v = q;
    }
    if (negative_)
        digits.push_back('-');
    std::reverse(digits.begin(), digits.end());
    return digits;
}

std::string
BigInt::toHexString() const
{
    if (isZero())
        return "0x0";
    static const char *hex = "0123456789abcdef";
    std::string out;
    for (size_t i = limbs_.size(); i-- > 0;) {
        for (int nib = 15; nib >= 0; --nib)
            out.push_back(hex[(limbs_[i] >> (nib * 4)) & 0xf]);
    }
    out.erase(0, out.find_first_not_of('0'));
    return (negative_ ? std::string("-0x") : std::string("0x")) + out;
}

bool
isProbablePrime(const BigInt &n, int rounds)
{
    if (n < BigInt(u64{2}))
        return false;
    static const u64 smallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23,
                                      29, 31, 37, 41, 43, 47, 53, 59, 61};
    for (u64 p : smallPrimes) {
        if (n == BigInt(p))
            return true;
        if ((n % BigInt(p)).isZero())
            return false;
    }
    // Write n - 1 = d * 2^s.
    const BigInt nm1 = n - BigInt(u64{1});
    BigInt d = nm1;
    int s = 0;
    while (d.isEven()) {
        d = d >> 1;
        ++s;
    }
    Rng rng(0x4d696c6c65725261ull); // fixed seed: deterministic testing
    for (int round = 0; round < rounds; ++round) {
        const BigInt a =
            BigInt(u64{2}) + BigInt::randomBelow(rng, n - BigInt(u64{4}));
        BigInt x = a.powMod(d, n);
        if (x == BigInt(u64{1}) || x == nm1)
            continue;
        bool composite = true;
        for (int i = 0; i < s - 1; ++i) {
            x = (x * x).mod(n);
            if (x == nm1) {
                composite = false;
                break;
            }
        }
        if (composite)
            return false;
    }
    return true;
}

std::ostream &
operator<<(std::ostream &os, const BigInt &v)
{
    return os << v.toString();
}

} // namespace finesse
