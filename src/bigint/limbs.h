/**
 * @file
 * Fixed-capacity little-endian limb kernels used by the Montgomery context.
 * All functions operate on runtime length @p n (number of active 64-bit
 * limbs) so a single compiled kernel serves every curve width, mirroring
 * the data-width parameterization of the Finesse hardware.
 */
#ifndef FINESSE_BIGINT_LIMBS_H_
#define FINESSE_BIGINT_LIMBS_H_

#include <cstddef>

#include "support/common.h"

namespace finesse {

/** Maximum supported base-field width: 16 limbs = 1024 bits. */
inline constexpr size_t kMaxLimbs = 16;

namespace limbs {

/** r = a + b, returns carry-out. */
inline u64
add(u64 *r, const u64 *a, const u64 *b, size_t n)
{
    u64 carry = 0;
    for (size_t i = 0; i < n; ++i) {
        const u128 t = static_cast<u128>(a[i]) + b[i] + carry;
        r[i] = static_cast<u64>(t);
        carry = static_cast<u64>(t >> 64);
    }
    return carry;
}

/** r = a - b, returns borrow-out (0 or 1). */
inline u64
sub(u64 *r, const u64 *a, const u64 *b, size_t n)
{
    u64 borrow = 0;
    for (size_t i = 0; i < n; ++i) {
        const u128 t = static_cast<u128>(a[i]) - b[i] - borrow;
        r[i] = static_cast<u64>(t);
        borrow = static_cast<u64>(-(t >> 64)) & 1;
    }
    return borrow;
}

/** Compare: -1, 0, 1. */
inline int
cmp(const u64 *a, const u64 *b, size_t n)
{
    for (size_t i = n; i-- > 0;) {
        if (a[i] != b[i])
            return a[i] < b[i] ? -1 : 1;
    }
    return 0;
}

/** r = 0. */
inline void
zero(u64 *r, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        r[i] = 0;
}

/** r = a. */
inline void
copy(u64 *r, const u64 *a, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        r[i] = a[i];
}

/** True when all limbs are zero. */
inline bool
isZero(const u64 *a, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        if (a[i])
            return false;
    }
    return true;
}

/** Conditionally subtract the modulus when r >= m (keeps r in [0, m)). */
inline void
condSubModulus(u64 *r, const u64 *m, size_t n, u64 extraCarry = 0)
{
    if (extraCarry || cmp(r, m, n) >= 0)
        sub(r, r, m, n);
}

} // namespace limbs

} // namespace finesse

#endif // FINESSE_BIGINT_LIMBS_H_
