/**
 * @file
 * Sextic twist order computation (see twist.h).
 */
#include "curve/twist.h"

#include "support/common.h"

namespace finesse {

BigInt
sexticTwistOrder(const BigInt &p, const BigInt &t, int e, const BigInt &r)
{
    // Frobenius trace over F_{p^e}.
    BigInt tPrev(u64{2});
    BigInt tCur = t;
    for (int i = 1; i < e; ++i) {
        BigInt tNext = t * tCur - p * tPrev;
        tPrev = tCur;
        tCur = tNext;
    }
    const BigInt q = p.pow(static_cast<u64>(e));

    // CM equation: 4q = t_e^2 + 3 f^2 (discriminant -3 family).
    const BigInt ff = (BigInt(u64{4}) * q - tCur * tCur)
                          .divExact(BigInt(u64{3}));
    const BigInt f = ff.isqrt();
    FINESSE_CHECK(f * f == ff, "CM equation: (4q - t^2)/3 not a square");

    const BigInt qp1 = q + BigInt(u64{1});
    const BigInt n1 = qp1 - (tCur + BigInt(u64{3}) * f).divExact(
                                BigInt(u64{2}));
    const BigInt n2 = qp1 - (tCur - BigInt(u64{3}) * f).divExact(
                                BigInt(u64{2}));
    const bool ok1 = (n1 % r).isZero();
    const bool ok2 = (n2 % r).isZero();
    FINESSE_CHECK(ok1 || ok2, "neither sextic twist order divisible by r");
    return ok1 ? n1 : n2;
}

} // namespace finesse
