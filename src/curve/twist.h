/**
 * @file
 * Sextic-twist group-order computation from the Frobenius trace
 * recurrence. Generic across BN/BLS families: no per-family cofactor
 * formulas are needed.
 */
#ifndef FINESSE_CURVE_TWIST_H_
#define FINESSE_CURVE_TWIST_H_

#include "bigint/bigint.h"

namespace finesse {

/**
 * Order of the correct sextic twist E'(F_{p^e}) (the one whose order is
 * divisible by r), where E/Fp has trace t and e = k/6.
 *
 * Uses: t_e from the recurrence t_0 = 2, t_1 = t,
 * t_{i+1} = t*t_i - p*t_{i-1}; the CM equation 4p^e = t_e^2 + 3f^2; and
 * the two sextic twist orders p^e + 1 - (t_e +- 3f)/2.
 */
BigInt sexticTwistOrder(const BigInt &p, const BigInt &t, int e,
                        const BigInt &r);

} // namespace finesse

#endif // FINESSE_CURVE_TWIST_H_
