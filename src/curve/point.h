/**
 * @file
 * Elliptic-curve point types and native group arithmetic, generic over
 * the coordinate field (Fp for G1, Fp2/Fp4 for twists). Curves are short
 * Weierstrass y^2 = x^3 + b (a = 0 throughout: BN and BLS families).
 *
 * These are the *setup/reference* operators: branchy, complete, used for
 * generator derivation, cofactor clearing and test oracles. The
 * branch-free Miller-loop step operators (which are also traced by the
 * compiler) live in pairing/engine.h.
 */
#ifndef FINESSE_CURVE_POINT_H_
#define FINESSE_CURVE_POINT_H_

#include <functional>

#include "bigint/bigint.h"
#include "field/fieldops.h"
#include "field/sqrt.h"
#include "support/common.h"

namespace finesse {

/** Curve context: the field and the constant b of y^2 = x^3 + b. */
template <typename F>
struct CurveCtx
{
    const typename F::Ctx *field = nullptr;
    F b;
};

/** Affine point; infinity encoded by the flag. */
template <typename F>
struct AffinePt
{
    F x, y;
    bool infinity = true;

    static AffinePt
    atInfinity()
    {
        return AffinePt{};
    }

    static AffinePt
    make(F px, F py)
    {
        AffinePt p;
        p.x = std::move(px);
        p.y = std::move(py);
        p.infinity = false;
        return p;
    }

    AffinePt
    negate() const
    {
        if (infinity)
            return *this;
        return make(x, y.neg());
    }

    bool
    equals(const AffinePt &o) const
    {
        if (infinity || o.infinity)
            return infinity == o.infinity;
        return x.equals(o.x) && y.equals(o.y);
    }
};

/** Jacobian point (X/Z^2, Y/Z^3); Z = 0 encodes infinity. */
template <typename F>
struct JacPt
{
    F x, y, z;

    static JacPt
    fromAffine(const AffinePt<F> &p, const typename F::Ctx *ctx)
    {
        JacPt j;
        if (p.infinity) {
            j.x = F::one(ctx);
            j.y = F::one(ctx);
            j.z = F::zero(ctx);
        } else {
            j.x = p.x;
            j.y = p.y;
            j.z = F::one(ctx);
        }
        return j;
    }

    bool isInfinity() const { return z.isZero(); }
};

/** True when (x, y) satisfies y^2 = x^3 + b. */
template <typename F>
bool
isOnCurve(const CurveCtx<F> &c, const AffinePt<F> &p)
{
    if (p.infinity)
        return true;
    return p.y.sqr().equals(p.x.sqr().mul(p.x).add(c.b));
}

/** Jacobian doubling (a = 0), complete for the infinity case. */
template <typename F>
JacPt<F>
jacDouble(const JacPt<F> &p)
{
    if (p.isInfinity())
        return p;
    // dbl-2009-l.
    const F a = p.x.sqr();
    const F b = p.y.sqr();
    const F c = b.sqr();
    const F d = p.x.add(b).sqr().sub(a).sub(c).dbl();
    const F e = a.tpl();
    const F f = e.sqr();
    JacPt<F> r;
    r.x = f.sub(d.dbl());
    r.y = e.mul(d.sub(r.x)).sub(muliSmall(c, 8));
    r.z = p.y.mul(p.z).dbl();
    return r;
}

/** Jacobian + affine mixed addition with full special-case handling. */
template <typename F>
JacPt<F>
jacAddAffine(const JacPt<F> &p, const AffinePt<F> &q,
             const typename F::Ctx *ctx)
{
    if (q.infinity)
        return p;
    if (p.isInfinity())
        return JacPt<F>::fromAffine(q, ctx);
    const F z2 = p.z.sqr();
    const F u2 = q.x.mul(z2);
    const F s2 = q.y.mul(z2).mul(p.z);
    const F h = u2.sub(p.x);
    const F rr = s2.sub(p.y);
    if (h.isZero()) {
        if (rr.isZero())
            return jacDouble(p); // P == Q
        JacPt<F> inf;            // P == -Q
        inf.x = F::one(ctx);
        inf.y = F::one(ctx);
        inf.z = F::zero(ctx);
        return inf;
    }
    const F hh = h.sqr();
    const F hhh = hh.mul(h);
    const F v = p.x.mul(hh);
    JacPt<F> out;
    out.x = rr.sqr().sub(hhh).sub(v.dbl());
    out.y = rr.mul(v.sub(out.x)).sub(p.y.mul(hhh));
    out.z = p.z.mul(h);
    return out;
}

/** Jacobian -> affine via one inversion. */
template <typename F>
AffinePt<F>
jacToAffine(const JacPt<F> &p, const typename F::Ctx *ctx)
{
    if (p.isInfinity())
        return AffinePt<F>::atInfinity();
    const F zinv = p.z.inv();
    const F zi2 = zinv.sqr();
    (void)ctx;
    return AffinePt<F>::make(p.x.mul(zi2), p.y.mul(zi2).mul(zinv));
}

/**
 * Batched Jacobian -> affine: all Z inversions fold into one batch
 * inversion (Montgomery's trick, field/fieldops.h). Point-for-point
 * bit-identical to jacToAffine -- batch sampling paths must not
 * perturb any value a sequential path would produce.
 */
template <typename F>
std::vector<AffinePt<F>>
jacToAffineBatch(const std::vector<JacPt<F>> &pts,
                 const typename F::Ctx *ctx)
{
    std::vector<F> zinv;
    zinv.reserve(pts.size());
    for (const JacPt<F> &p : pts)
        zinv.push_back(p.z);
    batchInvInPlace(zinv); // infinity has z == 0, stays 0, unused below
    std::vector<AffinePt<F>> out;
    out.reserve(pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].isInfinity()) {
            out.push_back(AffinePt<F>::atInfinity());
            continue;
        }
        const F zi2 = zinv[i].sqr();
        out.push_back(AffinePt<F>::make(pts[i].x.mul(zi2),
                                        pts[i].y.mul(zi2).mul(zinv[i])));
    }
    (void)ctx;
    return out;
}

/** [n]P in Jacobian form (the affine conversion is the caller's). */
template <typename F>
JacPt<F>
scalarMulJac(const CurveCtx<F> &c, const AffinePt<F> &p, const BigInt &n)
{
    if (n.isZero() || p.infinity)
        return JacPt<F>::fromAffine(AffinePt<F>::atInfinity(), c.field);
    const AffinePt<F> base = n.isNegative() ? p.negate() : p;
    const BigInt e = n.abs();
    JacPt<F> acc = JacPt<F>::fromAffine(AffinePt<F>::atInfinity(), c.field);
    for (int i = e.bitLength(); i-- > 0;) {
        acc = jacDouble(acc);
        if (e.bit(i))
            acc = jacAddAffine(acc, base, c.field);
    }
    return acc;
}

/** Scalar multiplication [n]P (double-and-add; setup/reference only). */
template <typename F>
AffinePt<F>
scalarMul(const CurveCtx<F> &c, const AffinePt<F> &p, const BigInt &n)
{
    return jacToAffine(scalarMulJac(c, p, n), c.field);
}

/** Affine addition (reference oracle for tests). */
template <typename F>
AffinePt<F>
affineAdd(const CurveCtx<F> &c, const AffinePt<F> &p, const AffinePt<F> &q)
{
    JacPt<F> j = JacPt<F>::fromAffine(p, c.field);
    j = jacAddAffine(j, q, c.field);
    return jacToAffine(j, c.field);
}

/**
 * Sample a curve point deterministically: scan x = start, start+1, ...
 * until x^3 + b is a square; pick the lexicographically smaller root.
 * @p makeX maps a counter to a field element (injective on small ints).
 */
template <typename F>
AffinePt<F>
findPoint(const CurveCtx<F> &c, const BigInt &fieldOrder,
          const std::function<F(u64)> &makeX,
          const std::function<F()> &sample, u64 start = 1)
{
    for (u64 i = start; i < start + 100000; ++i) {
        const F x = makeX(i);
        const F rhs = x.sqr().mul(x).add(c.b);
        F y = rhs.zeroLike();
        if (!trySqrt<F>(rhs, fieldOrder, sample, y))
            continue;
        if (y.isZero())
            continue;
        // Canonical root: smaller flattened coefficient vector.
        std::vector<BigInt> a, b;
        y.toFpCoeffs(a);
        y.neg().toFpCoeffs(b);
        if (std::lexicographical_compare(b.begin(), b.end(), a.begin(),
                                         a.end()))
            y = y.neg();
        return AffinePt<F>::make(x, y);
    }
    panic("no curve point found");
}

} // namespace finesse

#endif // FINESSE_CURVE_POINT_H_
