/**
 * @file
 * Curve catalog: the seven pairing-friendly curves of the paper's
 * evaluation (Table 2) across three families, plus family parameter
 * derivation (p, r, t from the family polynomial in x).
 */
#ifndef FINESSE_CURVE_CATALOG_H_
#define FINESSE_CURVE_CATALOG_H_

#include <string>
#include <vector>

#include "bigint/bigint.h"

namespace finesse {

enum class CurveFamily { BN, BLS12, BLS24 };

inline const char *
toString(CurveFamily f)
{
    switch (f) {
      case CurveFamily::BN:
        return "BN";
      case CurveFamily::BLS12:
        return "BLS12";
      case CurveFamily::BLS24:
        return "BLS24";
    }
    return "?";
}

/** Static curve definition (everything else is derived). */
struct CurveDef
{
    std::string name;
    CurveFamily family;
    BigInt x;         ///< family parameter (signed)
    int securityBits; ///< SexTNFS security estimate (recorded, Table 2)
};

/** Derived curve numbers. */
struct CurveInfo
{
    CurveDef def;
    BigInt p, r, t;
    int k = 12;

    int logP() const { return p.bitLength(); }
    int logR() const { return r.bitLength(); }
    int logT() const { return t.abs().bitLength(); }
    int kLogP() const { return k * logP(); }
};

/** Derive p, r, t and k from a curve definition (validates primality). */
CurveInfo deriveCurveInfo(const CurveDef &def);

/** The seven evaluation curves (Table 2). */
const std::vector<CurveDef> &curveCatalog();

/** Look up a catalog curve by name; fatal if unknown. */
const CurveDef &findCurve(const std::string &name);

/**
 * FNV-1a fingerprint of the full curve catalog (names, families,
 * family parameters, security estimates). Exchanged in the distributed
 * sweep's Hello handshake so a master never hands work to a worker
 * built from a different catalog: the trace-key grouping and every
 * derived curve constant would silently diverge.
 */
u64 catalogHash();

} // namespace finesse

#endif // FINESSE_CURVE_CATALOG_H_
