/**
 * @file
 * Curve catalog data and family derivations.
 *
 * Parameter provenance: BN254N (Nogami et al.), BN462 (ISO/AIST), BN638
 * and BLS12-381 / BLS12-446 (literature values) verified by
 * tools/param_search; BLS12-638 and BLS24-509 use parameters generated
 * by the same tool (the published values were not recoverable offline;
 * bit lengths and family shape match Table 2 of the paper exactly).
 */
#include "curve/catalog.h"

#include "support/common.h"

namespace finesse {

CurveInfo
deriveCurveInfo(const CurveDef &def)
{
    CurveInfo info;
    info.def = def;
    const BigInt &x = def.x;
    const BigInt one(u64{1});
    switch (def.family) {
      case CurveFamily::BN: {
        const BigInt x2 = x * x;
        const BigInt x3 = x2 * x;
        const BigInt x4 = x2 * x2;
        info.p = BigInt(u64{36}) * x4 + BigInt(u64{36}) * x3 +
                 BigInt(u64{24}) * x2 + BigInt(u64{6}) * x + one;
        info.t = BigInt(u64{6}) * x2 + one;
        info.r = info.p + one - info.t;
        info.k = 12;
        break;
      }
      case CurveFamily::BLS12: {
        const BigInt x2 = x * x;
        info.r = x2 * x2 - x2 + one;
        info.t = x + one;
        info.p = ((x - one).pow(2) * info.r).divExact(BigInt(u64{3})) + x;
        info.k = 12;
        break;
      }
      case CurveFamily::BLS24: {
        const BigInt x4 = (x * x).pow(2);
        info.r = x4 * x4 - x4 + one;
        info.t = x + one;
        info.p = ((x - one).pow(2) * info.r).divExact(BigInt(u64{3})) + x;
        info.k = 24;
        break;
      }
    }
    FINESSE_REQUIRE(isProbablePrime(info.p), def.name, ": p not prime");
    FINESSE_REQUIRE(isProbablePrime(info.r), def.name, ": r not prime");
    FINESSE_REQUIRE((info.p % BigInt(u64{6})) == one, def.name,
                    ": p != 1 mod 6");
    return info;
}

const std::vector<CurveDef> &
curveCatalog()
{
    static const std::vector<CurveDef> curves = {
        {"BN254N", CurveFamily::BN,
         -BigInt::fromString("0x4080000000000001"), 100},
        {"BN462", CurveFamily::BN,
         BigInt::fromString("0x4001fffffffffffffffffffffbfff"), 130},
        {"BN638", CurveFamily::BN,
         BigInt::fromString("0x3ffffffefffffffffffffff00000000000000001"),
         153},
        {"BLS12-381", CurveFamily::BLS12,
         -BigInt::fromString("0xd201000000010000"), 123},
        {"BLS12-446", CurveFamily::BLS12,
         -BigInt::fromString("0x6008204000000020001"), 130},
        {"BLS12-638", CurveFamily::BLS12,
         -BigInt::fromString("0x60c0321793083d9a9e3ce3a1e31"), 148},
        {"BLS24-509", CurveFamily::BLS24,
         -BigInt::fromString("0x7f90b57fc6ff8"), 192},
    };
    return curves;
}

const CurveDef &
findCurve(const std::string &name)
{
    for (const auto &c : curveCatalog()) {
        if (c.name == name)
            return c;
    }
    fatal("unknown curve: ", name);
}

u64
catalogHash()
{
    // FNV-1a over every field of every CurveDef, in catalog order.
    // Folding in BigInt::hashValue() covers the family parameter; the
    // name bytes cover renames; the order covers reorderings (group
    // ids index into the grouping, which iterates the catalog).
    u64 h = 14695981039346656037ull;
    const auto mix = [&h](u64 v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (const CurveDef &def : curveCatalog()) {
        for (const char c : def.name)
            mix(static_cast<u8>(c));
        mix(static_cast<u64>(def.family));
        mix(def.x.hashValue());
        mix(static_cast<u64>(def.securityBits));
    }
    return h;
}

} // namespace finesse
