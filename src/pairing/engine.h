/**
 * @file
 * Optimal Ate pairing engine, generic over the tower instantiation.
 *
 * The engine is entirely branch-free with respect to *element values*:
 * control flow depends only on the PairingPlan (curve constants), so
 * the identical code path computes pairings natively and, when the
 * tower is instantiated over the symbolic base field, unrolls into the
 * single-basic-block Fp-level SSA trace that the paper's CodeGen stage
 * produces.
 *
 * Formula notes (derived for y^2 = x^3 + b, a = 0, Jacobian coordinates
 * on the twist; lines are scaled by Ft factors, which the final
 * exponentiation kills):
 *   doubling step, T = (X, Y, Z):
 *     lambda' = 3X^2 / (2YZ); scale by Z3*Z^2 (Z3 = 2YZ):
 *     l = (Z3 Z^2 yP) + (-3X^2 Z^2 xP) z + (3X^3 - 2Y^2) z^3
 *   mixed addition step with affine Q2 = (xq, yq):
 *     theta = Y - yq Z^3, H = X - xq Z^2, Z3 = H Z:
 *     l = (Z3 yP) + (-theta xP) z + (theta xq - yq Z3) z^3
 * For M-type twists the same coefficients land in slots (0, 5, 3) with
 * the slot-0 value additionally multiplied by xi.
 */
#ifndef FINESSE_PAIRING_ENGINE_H_
#define FINESSE_PAIRING_ENGINE_H_

#include <array>
#include <vector>

#include "pairing/cyclotomic.h"
#include "pairing/plan.h"

namespace finesse {

template <typename TW>
class PairingEngine
{
  public:
    using FpT = typename TW::BaseT;
    using FtT = typename TW::FtT;
    using GtT = typename TW::GtT;

    /** Twist point in Jacobian coordinates (loop-internal). */
    struct TwistJac
    {
        FtT x, y, z;
    };

    PairingEngine(const TW &tower, const PairingPlan &plan,
                  CoordSystem coords = CoordSystem::Jacobian,
                  bool cycloSqr = false)
        : tower_(tower), plan_(plan), coords_(coords),
          cycloSqr_(cycloSqr)
    {
        auto load = [&](const std::vector<BigInt> &coeffs) {
            auto it = coeffs.begin();
            return FtT::fromFpCoeffs(tower_.ftCtx(), it);
        };
        if (!plan.frobTwX.empty()) {
            cX_ = load(plan.frobTwX);
            cY_ = load(plan.frobTwY);
        }
        if (!plan.frobTwX2.empty()) {
            cX2_ = load(plan.frobTwX2);
            cY2_ = load(plan.frobTwY2);
        }
    }

    /** Full pairing e(P, Q) for affine inputs. */
    GtT
    pair(const FpT &xP, const FpT &yP, const FtT &xQ, const FtT &yQ) const
    {
        return finalExp(miller(xP, yP, xQ, yQ));
    }

    /** One (P, Q) input pair for multi-pairing. */
    struct PairInput
    {
        FpT xP, yP;
        FtT xQ, yQ;
    };

    /**
     * Product of pairings prod_i e(P_i, Q_i) with one shared final
     * exponentiation — the SNARK-verifier workload (Groth16 checks a
     * product of three/four pairings).
     */
    GtT
    pairProduct(const std::vector<PairInput> &inputs) const
    {
        FINESSE_REQUIRE(!inputs.empty(), "empty pairing product");
        GtT f = miller(inputs[0].xP, inputs[0].yP, inputs[0].xQ,
                       inputs[0].yQ);
        for (size_t i = 1; i < inputs.size(); ++i) {
            f = f.mul(miller(inputs[i].xP, inputs[i].yP, inputs[i].xQ,
                             inputs[i].yQ));
        }
        return finalExp(f);
    }

    /** Miller loop (Algorithm 1, lines 5-14). */
    GtT
    miller(const FpT &xP, const FpT &yP, const FtT &xQ, const FtT &yQ) const
    {
        TwistJac T{xQ, yQ, FtT::one(tower_.ftCtx())};
        GtT f = GtT::one(tower_.gtCtx());
        const FtT yQneg = yQ.neg();

        const auto &naf = plan_.loopNaf;
        for (size_t i = 1; i < naf.size(); ++i) {
            f = f.sqr().mul(dblStep(T, xP, yP));
            if (naf[i] == 1)
                f = f.mul(addStep(T, xQ, yQ, xP, yP));
            else if (naf[i] == -1)
                f = f.mul(addStep(T, xQ, yQneg, xP, yP));
        }

        if (plan_.negLoop) {
            f = f.conj();
            T.y = T.y.neg();
        }

        if (plan_.family == CurveFamily::BN) {
            // Q1 = pi(Q), Q2 = -pi^2(Q) extra steps (Algorithm 1, 10-14).
            const FtT x1 = cX_.mul(xQ.frob());
            const FtT y1 = cY_.mul(yQ.frob());
            f = f.mul(addStep(T, x1, y1, xP, yP));
            const FtT x2 = cX2_.mul(xQ);
            const FtT y2 = cY2_.mul(yQ).neg();
            f = f.mul(addStep(T, x2, y2, xP, yP));
        }
        return f;
    }

    /** Final exponentiation f^((p^k - 1)/r). */
    GtT
    finalExp(const GtT &in) const
    {
        // Easy part: f^((p^(k/2) - 1)(p^(k/6) + 1)).
        GtT f = in.conj().mul(in.inv());
        f = frobPow(f, plan_.k / 6).mul(f);
        // Hard part: f^(Phi_k(p)/r) (up to a unit multiple). After the
        // easy part f lies in the cyclotomic subgroup, enabling
        // Granger-Scott squaring when requested.
        if (cycloSqr_) {
            using CubicCtxT =
                std::decay_t<decltype(*tower_.cubicCtx())>;
            const CycloElem<GtT, CubicCtxT> wrapped(
                f, tower_.cubicCtx());
            return hardPart(wrapped).value();
        }
        return hardPart(f);
    }

    /** Hard part on any group-like element (GtT or CycloElem). */
    template <typename G>
    G
    hardPart(const G &f) const
    {
        switch (plan_.hard) {
          case HardPartKind::BNChain:
            return hardChainBN(f, plan_.x);
          case HardPartKind::BLSChain:
            return plan_.k == 12 ? hardChainBLS12(f, plan_.x)
                                 : hardChainBLS24(f, plan_.x);
          case HardPartKind::Digits: {
            G acc = powBig(f, plan_.hardDigits[0]);
            G fp = f;
            for (size_t i = 1; i < plan_.hardDigits.size(); ++i) {
                fp = fp.frob();
                acc = acc.mul(powBig(fp, plan_.hardDigits[i]));
            }
            return acc;
          }
        }
        panic("bad HardPartKind");
    }

    /** Double T and evaluate the tangent line at P. */
    GtT
    dblStep(TwistJac &T, const FpT &xP, const FpT &yP) const
    {
        if (coords_ == CoordSystem::Projective)
            return dblStepProjective(T, xP, yP);
        const FtT A = T.x.sqr();
        const FtT B = T.y.sqr();
        const FtT C = B.sqr();
        const FtT Zsq = T.z.sqr();
        const FtT D = T.x.add(B).sqr().sub(A).sub(C).dbl(); // 4XY^2
        const FtT E = A.tpl();                              // 3X^2
        const FtT F = E.sqr();
        const FtT X3 = F.sub(D.dbl());
        const FtT Y3 = E.mul(D.sub(X3)).sub(muliSmall(C, 8));
        const FtT Z3 = T.y.add(T.z).sqr().sub(B).sub(Zsq); // 2YZ

        const FtT c0 = Z3.mul(Zsq);
        const FtT c1 = E.mul(Zsq).neg();
        const FtT c3 = E.mul(T.x).sub(B.dbl()); // 3X^3 - 2Y^2
        T = {X3, Y3, Z3};
        return lineToGt(c0, c1, c3, xP, yP);
    }

    /** Add affine (xq, yq) into T and evaluate the line at P. */
    GtT
    addStep(TwistJac &T, const FtT &xq, const FtT &yq, const FpT &xP,
            const FpT &yP) const
    {
        if (coords_ == CoordSystem::Projective)
            return addStepProjective(T, xq, yq, xP, yP);
        const FtT Zsq = T.z.sqr();
        const FtT U2 = xq.mul(Zsq);
        const FtT S2 = yq.mul(Zsq).mul(T.z);
        const FtT H = T.x.sub(U2);
        const FtT TH = T.y.sub(S2); // theta
        const FtT HH = H.sqr();
        const FtT HHH = HH.mul(H);
        const FtT X3 = TH.sqr().sub(HH.mul(T.x.add(U2)));
        const FtT Y3 = TH.mul(U2.mul(HH).sub(X3)).sub(S2.mul(HHH));
        const FtT Z3 = H.mul(T.z);

        const FtT c0 = Z3;
        const FtT c1 = TH.neg();
        const FtT c3 = TH.mul(xq).sub(yq.mul(Z3));
        T = {X3, Y3, Z3};
        return lineToGt(c0, c1, c3, xP, yP);
    }

    /**
     * Homogeneous-projective doubling variant (x = X/Z, y = Y/Z).
     * Derivation scales the line by 2YZ^2 (an Ft factor).
     */
    GtT
    dblStepProjective(TwistJac &T, const FpT &xP, const FpT &yP) const
    {
        const FtT A = T.x.sqr().tpl();      // 3X^2
        const FtT ysq = T.y.sqr();
        const FtT B = T.y.mul(T.z).dbl();   // 2YZ
        const FtT t = T.x.mul(ysq).mul(T.z); // XY^2 Z
        const FtT u = ysq.mul(T.z);          // Y^2 Z
        const FtT x3p = A.sqr().sub(muliSmall(t, 8)); // A^2 - 8XY^2 Z
        const FtT X3 = x3p.mul(B);
        const FtT Y3 =
            A.mul(muliSmall(t, 4).sub(x3p)).sub(muliSmall(u.sqr(), 8));
        const FtT Z3 = B.sqr().mul(B);

        const FtT c0 = B.mul(T.z);            // 2YZ^2
        const FtT c1 = A.mul(T.z).neg();      // -3X^2 Z
        const FtT c3 = A.mul(T.x).sub(u.dbl()); // 3X^3 - 2Y^2 Z
        T = {X3, Y3, Z3};
        return lineToGt(c0, c1, c3, xP, yP);
    }

    /** Homogeneous-projective mixed addition variant. */
    GtT
    addStepProjective(TwistJac &T, const FtT &xq, const FtT &yq,
                      const FpT &xP, const FpT &yP) const
    {
        const FtT t = xq.mul(T.z);
        const FtT TH = T.y.sub(yq.mul(T.z)); // theta
        const FtT H = T.x.sub(t);
        const FtT HH = H.sqr();
        const FtT HHH = HH.mul(H);
        const FtT W = TH.sqr().mul(T.z).sub(HH.mul(T.x.add(t)));
        const FtT X3 = H.mul(W);
        const FtT Y3 =
            TH.mul(HH.mul(t).sub(W)).sub(yq.mul(HHH).mul(T.z));
        const FtT Z3 = HHH.mul(T.z);

        const FtT c0 = H;
        const FtT c1 = TH.neg();
        const FtT c3 = TH.mul(xq).sub(yq.mul(H));
        T = {X3, Y3, Z3};
        return lineToGt(c0, c1, c3, xP, yP);
    }

  private:
    /** Place sparse line coefficients into GT slots per twist type. */
    GtT
    lineToGt(const FtT &c0, const FtT &c1, const FtT &c3, const FpT &xP,
             const FpT &yP) const
    {
        const FtT z = FtT::zero(tower_.ftCtx());
        std::array<FtT, 6> slots{z, z, z, z, z, z};
        if (plan_.twist == TwistType::D) {
            slots[0] = c0.scaleScalar(yP);
            slots[1] = c1.scaleScalar(xP);
            slots[3] = c3;
        } else {
            slots[0] = tower_.mulByXi(c0.scaleScalar(yP));
            slots[5] = c1.scaleScalar(xP);
            slots[3] = c3;
        }
        return tower_.fromSlots(slots);
    }

    const TW &tower_;
    const PairingPlan &plan_;
    CoordSystem coords_ = CoordSystem::Jacobian;
    bool cycloSqr_ = false;
    FtT cX_, cY_, cX2_, cY2_;
};

} // namespace finesse

#endif // FINESSE_PAIRING_ENGINE_H_
