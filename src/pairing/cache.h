/**
 * @file
 * Process-wide cache of constructed curve systems. Curve setup involves
 * primality tests, cofactor derivation and tower validation; tests and
 * benchmarks share one instance per curve.
 */
#ifndef FINESSE_PAIRING_CACHE_H_
#define FINESSE_PAIRING_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "pairing/system.h"

namespace finesse {

/**
 * Returns the shared CurveSystem for a k = 12 catalog curve. Guarded
 * by a mutex: parallel sweep workers may race to first use of a
 * curve. Construction happens under the lock (setup is expensive but
 * once per curve per process); references stay valid forever.
 */
inline const CurveSystem12 &
curveSystem12(const std::string &name)
{
    static std::mutex mtx;
    static std::map<std::string, std::unique_ptr<CurveSystem12>> cache;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, std::make_unique<CurveSystem12>(
                                    findCurve(name)))
                 .first;
    }
    return *it->second;
}

/** Returns the shared CurveSystem for a k = 24 catalog curve. */
inline const CurveSystem24 &
curveSystem24(const std::string &name)
{
    static std::mutex mtx;
    static std::map<std::string, std::unique_ptr<CurveSystem24>> cache;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, std::make_unique<CurveSystem24>(
                                    findCurve(name)))
                 .first;
    }
    return *it->second;
}

} // namespace finesse

#endif // FINESSE_PAIRING_CACHE_H_
