/**
 * @file
 * Non-adjacent form (NAF) signed-digit recoding, used for the Miller
 * loop parameter and for cyclotomic exponentiations by the curve
 * parameter x. NAF minimizes the number of nonzero digits, trading
 * additions for cheap conjugations/negations.
 */
#ifndef FINESSE_PAIRING_NAF_H_
#define FINESSE_PAIRING_NAF_H_

#include <algorithm>
#include <vector>

#include "bigint/bigint.h"

namespace finesse {

/**
 * Compute the NAF digits of a non-negative integer, most significant
 * digit first. Digits are in {-1, 0, 1}; the leading digit is 1.
 */
inline std::vector<int>
nafDigits(const BigInt &value)
{
    FINESSE_CHECK(!value.isNegative(), "nafDigits expects |value|");
    std::vector<int> digits; // little-endian during construction
    BigInt v = value;
    const BigInt four(u64{4});
    while (!v.isZero()) {
        if (v.isOdd()) {
            const u64 mod4 = (v % four).low64();
            const int d = mod4 == 1 ? 1 : -1;
            digits.push_back(d);
            v = d == 1 ? v - BigInt(u64{1}) : v + BigInt(u64{1});
        } else {
            digits.push_back(0);
        }
        v = v >> 1;
    }
    std::reverse(digits.begin(), digits.end());
    return digits;
}

/** Plain binary digits (msb first); baseline alternative to NAF. */
inline std::vector<int>
binaryDigits(const BigInt &value)
{
    FINESSE_CHECK(!value.isNegative(), "binaryDigits expects |value|");
    std::vector<int> digits;
    for (int i = value.bitLength(); i-- > 0;)
        digits.push_back(value.bit(i));
    return digits;
}

} // namespace finesse

#endif // FINESSE_PAIRING_NAF_H_
