/**
 * @file
 * CurveSystem: the fully-initialized native pairing system for one
 * catalog curve. Construction derives everything from (family, x):
 * field tower (with validated non-residues), curve constant b, twist
 * type and twist constant, cofactors (via the trace recurrence),
 * deterministic subgroup generators, and the pairing plan (with a
 * setup-verified final-exponentiation chain).
 *
 * This plays the role of the paper's reference libraries (RELIC/MCL):
 * the independent computational oracle against which compiled
 * accelerator programs are cross-validated.
 */
#ifndef FINESSE_PAIRING_SYSTEM_H_
#define FINESSE_PAIRING_SYSTEM_H_

#include <memory>

#include "curve/catalog.h"
#include "curve/point.h"
#include "curve/twist.h"
#include "pairing/engine.h"
#include "support/rng.h"

namespace finesse {

template <typename TW>
class CurveSystem
{
  public:
    using FtT = typename TW::FtT;
    using GtT = typename TW::GtT;
    using G1Affine = AffinePt<Fp>;
    using G2Affine = AffinePt<FtT>;

    explicit CurveSystem(const CurveDef &def,
                         const VariantConfig &vc = VariantConfig{})
        : info_(deriveCurveInfo(def)), fp_(info_.p), setupRng_(0xf1e55e)
    {
        FINESSE_REQUIRE(info_.k == TW::kEmbedding,
                        "tower shape mismatch for ", def.name);
        // Tower.
        searchTowerNonResidues(info_.p, q_, xi0_, xi1_);
        towerPrm_ = computeTowerParams(info_.p, info_.k, q_, xi0_, xi1_);
        buildTower(tower_, &fp_, towerPrm_, vc);

        // G1 curve: find the twist class with #E = p + 1 - t.
        const BigInt n1 = info_.p + BigInt(u64{1}) - info_.t;
        g1Cofactor_ = n1.divExact(info_.r);
        bool found = false;
        for (i64 bc = 1; bc <= 64 && !found; ++bc) {
            g1Curve_ = CurveCtx<Fp>{&fp_, Fp::fromInt(&fp_, bc)};
            found = curveOrderIs(g1Curve_, n1, info_.p, 3);
            if (found)
                b_ = bc;
        }
        FINESSE_REQUIRE(found, "no b <= 64 with #E = p+1-t for ",
                        def.name);

        // G1 generator (deterministic x scan, cofactor cleared).
        g1Gen_ = findGenerator(g1Curve_, info_.p, g1Cofactor_,
                               [&](u64 i) { return Fp::fromInt(&fp_, i); },
                               [&] { return randomFpElem(); });

        // Twist curve: order from the trace recurrence, then pick D/M.
        const int e = info_.k / 6;
        twistOrder_ = sexticTwistOrder(info_.p, info_.t, e, info_.r);
        g2Cofactor_ = twistOrder_.divExact(info_.r);
        const BigInt qe = info_.p.pow(static_cast<u64>(e));
        const FtT bFt = muliSmall(FtT::one(tower_.ftCtx()), b_);
        const FtT xi = tower_.twistXi();
        const CurveCtx<FtT> dTwist{tower_.ftCtx(), bFt.mul(xi.inv())};
        const CurveCtx<FtT> mTwist{tower_.ftCtx(), bFt.mul(xi)};
        if (curveOrderIs(dTwist, twistOrder_, qe, 2)) {
            twistType_ = TwistType::D;
            twistCurve_ = dTwist;
        } else {
            FINESSE_REQUIRE(curveOrderIs(mTwist, twistOrder_, qe, 2),
                            "neither twist has the expected order for ",
                            def.name);
            twistType_ = TwistType::M;
            twistCurve_ = mTwist;
        }

        // G2 generator.
        g2Gen_ = findGenerator(
            twistCurve_, qe, g2Cofactor_,
            [&](u64 i) {
                return muliSmall(FtT::one(tower_.ftCtx()),
                                 static_cast<i64>(i))
                    .add(FtT::gen(tower_.ftCtx()));
            },
            [&] { return randomFtElem(); });

        // Pairing plan + engine.
        plan_ = makePairingPlan(info_, twistType_, tower_);
        engine_ = std::make_unique<PairingEngine<TW>>(tower_, plan_);
    }

    // Accessors ----------------------------------------------------------
    const CurveInfo &info() const { return info_; }
    const TW &tower() const { return tower_; }
    const TowerParams &towerParams() const { return towerPrm_; }
    const PairingPlan &plan() const { return plan_; }
    const PairingEngine<TW> &engine() const { return *engine_; }
    const CurveCtx<Fp> &g1Curve() const { return g1Curve_; }
    const CurveCtx<FtT> &twistCurve() const { return twistCurve_; }
    TwistType twistType() const { return twistType_; }
    i64 b() const { return b_; }
    const G1Affine &g1Gen() const { return g1Gen_; }
    const G2Affine &g2Gen() const { return g2Gen_; }
    const BigInt &g1Cofactor() const { return g1Cofactor_; }
    const BigInt &g2Cofactor() const { return g2Cofactor_; }
    const FpCtx &fpCtx() const { return fp_; }

    // Group sampling -------------------------------------------------------
    // The Jacobian variants defer the affine conversion so batch
    // samplers can fold many Z inversions into one Montgomery-trick
    // batch (jacToAffineBatch); they consume the identical RNG stream.
    JacPt<Fp>
    randomG1Jac(Rng &rng) const
    {
        const BigInt s =
            BigInt::randomBelow(rng, info_.r - BigInt(u64{1})) +
            BigInt(u64{1});
        return scalarMulJac(g1Curve_, g1Gen_, s);
    }

    JacPt<FtT>
    randomG2Jac(Rng &rng) const
    {
        const BigInt s =
            BigInt::randomBelow(rng, info_.r - BigInt(u64{1})) +
            BigInt(u64{1});
        return scalarMulJac(twistCurve_, g2Gen_, s);
    }

    G1Affine
    randomG1(Rng &rng) const
    {
        return jacToAffine(randomG1Jac(rng), &fp_);
    }

    G2Affine
    randomG2(Rng &rng) const
    {
        return jacToAffine(randomG2Jac(rng), twistCurve_.field);
    }

    // Pairing ---------------------------------------------------------------
    GtT
    pair(const G1Affine &p, const G2Affine &q) const
    {
        FINESSE_REQUIRE(!p.infinity && !q.infinity,
                        "pairing inputs must be finite points");
        return engine_->pair(p.x, p.y, q.x, q.y);
    }

    /**
     * Product of pairings prod_i e(P_i, Q_i) sharing one final
     * exponentiation. Terms with a point at infinity contribute
     * e(O, Q) = e(P, O) = 1 and are skipped; an all-infinity (or
     * empty) product is the GT identity. This is the entry point of
     * the batch-verification serving engine (src/serve/): one Miller
     * schedule per finite term, one final exponentiation per product.
     */
    GtT
    pairProduct(
        const std::vector<std::pair<G1Affine, G2Affine>> &terms) const
    {
        std::vector<typename PairingEngine<TW>::PairInput> inputs;
        inputs.reserve(terms.size());
        for (const auto &[p, q] : terms) {
            if (p.infinity || q.infinity)
                continue;
            inputs.push_back({p.x, p.y, q.x, q.y});
        }
        if (inputs.empty())
            return GtT::one(tower_.gtCtx());
        return engine_->pairProduct(inputs);
    }

    /** GT exponentiation (plain square-and-multiply). */
    GtT
    gtPow(const GtT &g, const BigInt &e) const
    {
        return powBig(g, e.mod(info_.r));
    }

  private:
    Fp
    randomFpElem()
    {
        return Fp::fromBig(&fp_, BigInt::randomBelow(setupRng_, info_.p));
    }

    FtT
    randomFtElem()
    {
        std::vector<BigInt> coeffs;
        for (int i = 0; i < TW::kFtDegree; ++i)
            coeffs.push_back(BigInt::randomBelow(setupRng_, info_.p));
        auto it = coeffs.begin();
        return FtT::fromFpCoeffs(tower_.ftCtx(), it);
    }

    /** Check #E = n by testing [n]P = O on several sampled points. */
    template <typename F>
    bool
    curveOrderIs(const CurveCtx<F> &c, const BigInt &n,
                 const BigInt &fieldOrder, int samples)
    {
        for (int k = 0; k < samples; ++k) {
            AffinePt<F> pt;
            try {
                pt = findPoint<F>(
                    c, fieldOrder,
                    [&](u64 i) {
                        if constexpr (std::is_same_v<F, Fp>) {
                            return Fp::fromInt(&fp_, i);
                        } else {
                            return muliSmall(F::one(c.field),
                                             static_cast<i64>(i))
                                .add(F::gen(c.field));
                        }
                    },
                    [&] {
                        if constexpr (std::is_same_v<F, Fp>) {
                            return randomFpElem();
                        } else {
                            return randomFtElem();
                        }
                    },
                    1 + 17 * k);
            } catch (const PanicError &) {
                return false;
            }
            if (!scalarMul(c, pt, n).infinity)
                return false;
        }
        return true;
    }

    /** Deterministic generator: scan x, clear cofactor, check order r. */
    template <typename F, typename MakeX, typename Sample>
    AffinePt<F>
    findGenerator(const CurveCtx<F> &c, const BigInt &fieldOrder,
                  const BigInt &cofactor, MakeX makeXFn, Sample sampleFn)
    {
        const std::function<F(u64)> makeX = makeXFn;
        const std::function<F()> sample = sampleFn;
        for (u64 start = 1; start < 64; ++start) {
            const AffinePt<F> pt =
                findPoint<F>(c, fieldOrder, makeX, sample, start);
            const AffinePt<F> g = scalarMul(c, pt, cofactor);
            if (g.infinity)
                continue;
            FINESSE_CHECK(scalarMul(c, g, info_.r).infinity,
                          "generator has wrong order");
            return g;
        }
        panic("no generator found");
    }

    CurveInfo info_;
    FpCtx fp_;
    Rng setupRng_;
    i64 q_ = -1, xi0_ = 1, xi1_ = 1;
    TowerParams towerPrm_;
    TW tower_;
    i64 b_ = 0;
    CurveCtx<Fp> g1Curve_;
    CurveCtx<FtT> twistCurve_;
    TwistType twistType_ = TwistType::D;
    BigInt twistOrder_, g1Cofactor_, g2Cofactor_;
    G1Affine g1Gen_;
    G2Affine g2Gen_;
    PairingPlan plan_;
    std::unique_ptr<PairingEngine<TW>> engine_;
};

using CurveSystem12 = CurveSystem<NativeTower12>;
using CurveSystem24 = CurveSystem<NativeTower24>;

} // namespace finesse

#endif // FINESSE_PAIRING_SYSTEM_H_
