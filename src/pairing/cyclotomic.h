/**
 * @file
 * Cyclotomic-subgroup squaring (Granger-Scott) — the paper's
 * "operations within the cyclotomic subfield are optimized" final-
 * exponentiation refinement.
 *
 * For f in the cyclotomic subgroup of Fp^(6m) = (Fp^m)[v,w]
 * (w^2 = v, v^3 = xi), squaring costs 3 "Fp^(2m) squarings" (6 base
 * squarings + linear ops) instead of a full extension-field squaring.
 * Works for any tower of shape QuadExt<CubicExt<B>> — both the k = 12
 * (B = Fp2) and k = 24 (B = Fp4) towers.
 *
 * Only valid inside the cyclotomic subgroup (after the easy part of
 * the final exponentiation); correctness there is property-tested
 * against the generic squaring.
 */
#ifndef FINESSE_PAIRING_CYCLOTOMIC_H_
#define FINESSE_PAIRING_CYCLOTOMIC_H_

#include "bigint/bigint.h"
#include "pairing/naf.h"

namespace finesse {

/**
 * Squaring in the cyclotomic subgroup of GtT = QuadExt<CubicExt<B>>.
 * @p cubicCtx is the cubic level context (provides mulByNu = *xi).
 */
template <typename GtT, typename CubicCtxT>
GtT
cyclotomicSqr(const GtT &f, const CubicCtxT &cubicCtx)
{
    using CubicT = std::decay_t<decltype(f.c0())>;
    using B = std::decay_t<decltype(f.c0().c0())>;

    // Slot view (Granger-Scott pairing of coefficients into Fp^(4m)
    // sub-blocks): z0..z5 as in the standard Fp12 implementation.
    const B z0 = f.c0().c0();
    const B z4 = f.c0().c1();
    const B z3 = f.c0().c2();
    const B z2 = f.c1().c0();
    const B z1 = f.c1().c1();
    const B z5 = f.c1().c2();

    // (a + b s)^2 in Fp^(4m) = Fp^(2m)[s]/(s^2 - xi):
    // returns (a^2 + xi b^2, 2ab) computed as complex squaring.
    auto fp4Square = [&](const B &a, const B &b) {
        const B t0 = a.sqr();
        const B t1 = b.sqr();
        const B c0 = cubicCtx.mulByNu(t1).add(t0);
        const B c1 = a.add(b).sqr().sub(t0).sub(t1);
        return std::pair<B, B>(c0, c1);
    };

    auto [t00, t01] = fp4Square(z0, z1);
    // g0' = 3 t00 - 2 z0 ; g1' = 3 t01 + 2 z1.
    const B r0 = t00.sub(z0).dbl().add(t00);
    const B r1 = t01.add(z1).dbl().add(t01);

    // The (z2, z3) and (z4, z5) blocks cross over.
    auto [t10, t11] = fp4Square(z2, z3);
    auto [t20, t21] = fp4Square(z4, z5);

    // g4' = 3 t10 - 2 z4 ; g5' = 3 t11 + 2 z5.
    const B r4 = t10.sub(z4).dbl().add(t10);
    const B r5 = t11.add(z5).dbl().add(t11);

    // g2' = 3 xi t21 + 2 z2 ; g3' = 3 t20 - 2 z3.
    const B xit = cubicCtx.mulByNu(t21);
    const B r2 = xit.add(z2).dbl().add(xit);
    const B r3 = t20.sub(z3).dbl().add(t20);

    const CubicT c0{r0, r4, r3, f.c0().fieldCtx()};
    const CubicT c1{r2, r1, r5, f.c1().fieldCtx()};
    return GtT{c0, c1, f.fieldCtx()};
}

/**
 * Group-like adapter that routes sqr() through cyclotomicSqr so the
 * hard-part chain templates (pairing/chains.h) pick up the fast
 * squaring without modification.
 */
template <typename GtT, typename CubicCtxT>
class CycloElem
{
  public:
    CycloElem(GtT v, const CubicCtxT *cubic)
        : v_(std::move(v)), cubic_(cubic)
    {}

    const GtT &value() const { return v_; }

    CycloElem oneLike() const { return {v_.oneLike(), cubic_}; }
    CycloElem mul(const CycloElem &o) const
    {
        return {v_.mul(o.v_), cubic_};
    }
    CycloElem sqr() const
    {
        return {cyclotomicSqr(v_, *cubic_), cubic_};
    }
    CycloElem conj() const { return {v_.conj(), cubic_}; }
    CycloElem frob() const { return {v_.frob(), cubic_}; }

  private:
    GtT v_;
    const CubicCtxT *cubic_;
};

} // namespace finesse

#endif // FINESSE_PAIRING_CYCLOTOMIC_H_
