/**
 * @file
 * Cyclotomic exponentiation helpers and final-exponentiation hard-part
 * chains for the BN, BLS12 and BLS24 families.
 *
 * Every routine is a template over a group-like type G providing
 * mul/sqr/conj/frob. Three instantiations are used:
 *  - native GT elements (reference pairing),
 *  - symbolic GT elements (compiler trace),
 *  - ExpoSim (exponent arithmetic mod Phi_k(p)), which lets the setup
 *    code *prove* that a chain computes a unit multiple of the hard
 *    exponent Phi_k(p)/r before trusting it.
 *
 * All routines assume their input lies in the cyclotomic subgroup
 * (order Phi_k(p)), where conjugation equals inversion.
 */
#ifndef FINESSE_PAIRING_CHAINS_H_
#define FINESSE_PAIRING_CHAINS_H_

#include "bigint/bigint.h"
#include "pairing/naf.h"

namespace finesse {

/** Apply Frobenius n times using G::frob(). */
template <typename G>
G
frobPow(G f, int n)
{
    for (int i = 0; i < n; ++i)
        f = f.frob();
    return f;
}

/**
 * f^e for a signed exponent, using NAF digits and conjugation for the
 * inverse (cyclotomic subgroup only).
 */
template <typename G>
G
powSigned(const G &f, const BigInt &e)
{
    if (e.isZero())
        return f.oneLike();
    const G fInv = f.conj();
    const std::vector<int> digits = nafDigits(e.abs());
    G acc = digits.front() == 1 ? f : fInv;
    for (size_t i = 1; i < digits.size(); ++i) {
        acc = acc.sqr();
        if (digits[i] == 1)
            acc = acc.mul(f);
        else if (digits[i] == -1)
            acc = acc.mul(fInv);
    }
    return e.isNegative() ? acc.conj() : acc;
}

/**
 * BN hard part (Devegili-Scott-Dahab / Beuchat et al. addition chain).
 * Computes f^(c * (p^4 - p^2 + 1)/r) for a unit c mod r.
 */
template <typename G>
G
hardChainBN(const G &f, const BigInt &x)
{
    const G fx = powSigned(f, x);
    const G fx2 = powSigned(fx, x);
    const G fx3 = powSigned(fx2, x);
    const G fp = f.frob();
    const G fp2 = frobPow(f, 2);
    const G fp3 = frobPow(f, 3);
    const G fxp = fx.frob();
    const G fx2p = fx2.frob();
    const G fx3p = fx3.frob();
    const G fx2p2 = frobPow(fx2, 2);

    const G y0 = fp.mul(fp2).mul(fp3);
    const G y1 = f.conj();
    const G y2 = fx2p2;
    const G y3 = fxp.conj();
    const G y4 = fx.mul(fx2p).conj();
    const G y5 = fx2.conj();
    const G y6 = fx3.mul(fx3p).conj();

    G t0 = y6.sqr().mul(y4).mul(y5);
    G t1 = y3.mul(y5).mul(t0);
    t0 = t0.mul(y2);
    t1 = t1.sqr().mul(t0).sqr();
    G t2 = t1.mul(y1);
    t1 = t1.mul(y0);
    t2 = t2.sqr();
    return t1.mul(t2);
}

/**
 * BLS12 hard part via the Hayashida-Hayasaka-Teruya decomposition:
 * 3 (p^4 - p^2 + 1)/r = (x-1)^2 (x+p) (x^2 + p^2 - 1) + 3.
 */
template <typename G>
G
hardChainBLS12(const G &f, const BigInt &x)
{
    const BigInt xm1 = x - BigInt(u64{1});
    G m = powSigned(powSigned(f, xm1), xm1);      // f^((x-1)^2)
    m = powSigned(m, x).mul(m.frob());            // ^(x+p)
    const G mx = powSigned(powSigned(m, x), x);   // m^(x^2)
    m = mx.mul(frobPow(m, 2)).mul(m.conj());      // ^(x^2 + p^2 - 1)
    return m.mul(f.sqr().mul(f));                 // * f^3
}

/**
 * BLS24 hard part, generalizing the same decomposition:
 * 3 (p^8 - p^4 + 1)/r = (x-1)^2 (x+p) (x^2+p^2) (x^4 + p^4 - 1) + 3.
 */
template <typename G>
G
hardChainBLS24(const G &f, const BigInt &x)
{
    const BigInt xm1 = x - BigInt(u64{1});
    G m = powSigned(powSigned(f, xm1), xm1);      // f^((x-1)^2)
    m = powSigned(m, x).mul(m.frob());            // ^(x+p)
    m = powSigned(powSigned(m, x), x).mul(frobPow(m, 2)); // ^(x^2+p^2)
    G mx = m;
    for (int i = 0; i < 4; ++i)
        mx = powSigned(mx, x);                    // m^(x^4)
    m = mx.mul(frobPow(m, 4)).mul(m.conj());      // ^(x^4 + p^4 - 1)
    return m.mul(f.sqr().mul(f));                 // * f^3
}

/**
 * Exponent simulator: a group-like element whose "value" is the
 * exponent applied to a fixed generator, tracked modulo Phi_k(p). Used
 * to verify hard-part chains numerically at setup.
 */
class ExpoSim
{
  public:
    ExpoSim(BigInt e, const BigInt *phi, const BigInt *p)
        : e_(std::move(e)), phi_(phi), p_(p)
    {}

    const BigInt &exponent() const { return e_; }

    ExpoSim oneLike() const { return {BigInt(), phi_, p_}; }
    ExpoSim mul(const ExpoSim &o) const { return {(e_ + o.e_).mod(*phi_), phi_, p_}; }
    ExpoSim sqr() const { return {(e_ + e_).mod(*phi_), phi_, p_}; }
    ExpoSim conj() const { return {(-e_).mod(*phi_), phi_, p_}; }
    ExpoSim frob() const { return {(e_ * *p_).mod(*phi_), phi_, p_}; }

  private:
    BigInt e_;
    const BigInt *phi_;
    const BigInt *p_;
};

} // namespace finesse

#endif // FINESSE_PAIRING_CHAINS_H_
