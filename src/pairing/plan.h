/**
 * @file
 * PairingPlan: the complete, serializable recipe for one curve's
 * optimal Ate pairing. Everything a PairingEngine needs beyond the
 * tower itself is plain data (NAF digits, twist type, Frobenius-on-twist
 * constants, final-exponentiation strategy), so the same plan drives
 * the native engine and the compiler's symbolic engine.
 */
#ifndef FINESSE_PAIRING_PLAN_H_
#define FINESSE_PAIRING_PLAN_H_

#include <vector>

#include "curve/catalog.h"
#include "field/fieldops.h"
#include "field/tower.h"
#include "pairing/chains.h"
#include "pairing/naf.h"

namespace finesse {

/** Sextic twist type: D (divide, b/xi) or M (multiply, b*xi). */
enum class TwistType { D, M };

inline const char *
toString(TwistType t)
{
    return t == TwistType::D ? "D" : "M";
}

/** Final-exponentiation hard-part strategy. */
enum class HardPartKind {
    BNChain,   ///< Devegili-Scott-Dahab chain (BN family)
    BLSChain,  ///< Hayashida-style (x-1)^2 chains (BLS12/BLS24)
    Digits,    ///< generic base-p digit decomposition (always correct)
};

inline const char *
toString(HardPartKind k)
{
    switch (k) {
      case HardPartKind::BNChain:
        return "bn-chain";
      case HardPartKind::BLSChain:
        return "bls-chain";
      case HardPartKind::Digits:
        return "digits";
    }
    return "?";
}

/** Complete pairing recipe (plain data; see file comment). */
struct PairingPlan
{
    CurveFamily family = CurveFamily::BN;
    int k = 12;
    BigInt x;       ///< curve family parameter (signed)
    BigInt p, r;
    bool negLoop = false;      ///< Miller loop parameter is negative
    std::vector<int> loopNaf;  ///< NAF of |6x+2| (BN) or |x| (BLS)
    TwistType twist = TwistType::D;

    // Frobenius-on-twist constants (flattened Ft coefficients):
    // Q1 = (cX * sigma(x'), cY * sigma(y')) and Q2 = pi^2(Q) via
    // (cX2 * x', cY2 * y') (k = 12 only, where sigma^2 = id on Ft).
    std::vector<BigInt> frobTwX, frobTwY, frobTwX2, frobTwY2;

    HardPartKind hard = HardPartKind::Digits;
    std::vector<BigInt> hardDigits; ///< base-p digits, little-endian
};

/**
 * Verify that a hard-part chain computes f^(c * Phi_k(p)/r) with c a
 * unit mod r, by running the chain on exponents mod Phi_k(p).
 */
template <typename ChainFn>
bool
verifyHardChain(ChainFn chain, const BigInt &p, const BigInt &r,
                const BigInt &x, int k)
{
    const BigInt pk2 = p.pow(static_cast<u64>(k / 6) * 2);
    const BigInt pk6 = p.pow(static_cast<u64>(k / 6));
    const BigInt phi = pk2 - pk6 + BigInt(u64{1}); // Phi_k(p)
    const BigInt hard = phi.divExact(r);

    const ExpoSim f(BigInt(u64{1}), &phi, &p);
    const ExpoSim result = chain(f, x);
    const BigInt e = result.exponent();
    if (e.isZero())
        return false;
    // e must be a multiple of hard = phi/r ...
    if (!(e % hard).isZero())
        return false;
    // ... with a cofactor that is a unit mod r.
    const BigInt c = e.divExact(hard);
    return !(c % r).isZero() ? BigInt::gcd(c, r) == BigInt(u64{1}) : false;
}

/**
 * Build the pairing plan for a curve. @p tower is the *native* tower
 * (used to evaluate the Frobenius-on-twist constants).
 */
template <typename TW>
PairingPlan
makePairingPlan(const CurveInfo &info, TwistType twist, const TW &tower)
{
    using FtT = typename TW::FtT;

    PairingPlan plan;
    plan.family = info.def.family;
    plan.k = info.k;
    plan.x = info.def.x;
    plan.p = info.p;
    plan.r = info.r;

    // Miller loop parameter.
    BigInt u;
    if (plan.family == CurveFamily::BN) {
        u = BigInt(u64{6}) * plan.x + BigInt(u64{2});
    } else {
        u = plan.x;
    }
    plan.negLoop = u.isNegative();
    plan.loopNaf = nafDigits(u.abs());
    plan.twist = twist;

    // Frobenius-on-twist constants.
    const FtT xi = tower.twistXi();
    const BigInt pm1 = info.p - BigInt(u64{1});
    FtT cX, cY;
    if (twist == TwistType::D) {
        cX = powBig(xi, pm1.divExact(BigInt(u64{3})));
        cY = powBig(xi, pm1 >> 1);
    } else {
        cX = powBig(xi, pm1.divExact(BigInt(u64{3}))).inv();
        cY = powBig(xi, pm1 >> 1).inv();
    }
    cX.toFpCoeffs(plan.frobTwX);
    cY.toFpCoeffs(plan.frobTwY);
    if (info.k == 12) {
        const BigInt p2m1 = info.p * info.p - BigInt(u64{1});
        FtT cX2, cY2;
        if (twist == TwistType::D) {
            cX2 = powBig(xi, p2m1.divExact(BigInt(u64{3})));
            cY2 = powBig(xi, p2m1 >> 1);
        } else {
            cX2 = powBig(xi, p2m1.divExact(BigInt(u64{3}))).inv();
            cY2 = powBig(xi, p2m1 >> 1).inv();
        }
        cX2.toFpCoeffs(plan.frobTwX2);
        cY2.toFpCoeffs(plan.frobTwY2);
    }

    // Final exponentiation: prefer the family chain when it verifies.
    bool chainOk = false;
    switch (plan.family) {
      case CurveFamily::BN:
        chainOk = verifyHardChain(
            [](const ExpoSim &f, const BigInt &xx) {
                return hardChainBN(f, xx);
            },
            info.p, info.r, plan.x, info.k);
        plan.hard = chainOk ? HardPartKind::BNChain : HardPartKind::Digits;
        break;
      case CurveFamily::BLS12:
        chainOk = verifyHardChain(
            [](const ExpoSim &f, const BigInt &xx) {
                return hardChainBLS12(f, xx);
            },
            info.p, info.r, plan.x, info.k);
        plan.hard = chainOk ? HardPartKind::BLSChain : HardPartKind::Digits;
        break;
      case CurveFamily::BLS24:
        chainOk = verifyHardChain(
            [](const ExpoSim &f, const BigInt &xx) {
                return hardChainBLS24(f, xx);
            },
            info.p, info.r, plan.x, info.k);
        plan.hard = chainOk ? HardPartKind::BLSChain : HardPartKind::Digits;
        break;
    }

    // Generic digit fallback data (always present; also used by tests).
    const int e6 = info.k / 6;
    const BigInt phi = info.p.pow(static_cast<u64>(e6) * 2) -
                       info.p.pow(static_cast<u64>(e6)) + BigInt(u64{1});
    BigInt hard = phi.divExact(info.r);
    while (!hard.isZero()) {
        BigInt q, rem;
        BigInt::divmod(hard, info.p, q, rem);
        plan.hardDigits.push_back(rem);
        hard = q;
    }
    return plan;
}

} // namespace finesse

#endif // FINESSE_PAIRING_PLAN_H_
