/**
 * @file
 * CodeGen: trace the optimal Ate pairing into an Fp-level SSA Module by
 * instantiating the tower + pairing-engine templates over the symbolic
 * base field. Input convention: [xP, yP, xQ coeffs..., yQ coeffs...]
 * (affine, Ft coefficients flattened over Fp); output: the k Fp
 * coefficients of the GT result.
 */
#ifndef FINESSE_COMPILER_CODEGEN_H_
#define FINESSE_COMPILER_CODEGEN_H_

#include "compiler/symfp.h"
#include "pairing/engine.h"
#include "pairing/system.h"

namespace finesse {

/** Build an Ft element whose Fp leaves come from @p supply. */
template <typename F, typename Supply>
F
buildFromLeaves(const typename F::Ctx *ctx, Supply &supply)
{
    if constexpr (std::is_same_v<F, SymFp>) {
        return supply();
    } else if constexpr (requires(F f) { f.c2(); }) {
        using Base = std::decay_t<decltype(std::declval<F>().c0())>;
        Base a = buildFromLeaves<Base>(ctx->base, supply);
        Base b = buildFromLeaves<Base>(ctx->base, supply);
        Base c = buildFromLeaves<Base>(ctx->base, supply);
        return F{std::move(a), std::move(b), std::move(c), ctx};
    } else {
        using Base = std::decay_t<decltype(std::declval<F>().c0())>;
        Base a = buildFromLeaves<Base>(ctx->base, supply);
        Base b = buildFromLeaves<Base>(ctx->base, supply);
        return F{std::move(a), std::move(b), ctx};
    }
}

/**
 * Trace the pairing of @p sys into a Module. @p SymTW must be the
 * symbolic twin of the native tower (Tower12<SymFp> for Tower12<Fp>).
 */
template <typename SymTW, typename NativeTW>
Module
tracePairing(const CurveSystem<NativeTW> &sys, const VariantConfig &vc,
             TracePart part = TracePart::Full)
{
    TraceBuilder tb(sys.info().p);
    SymFp::Ctx sctx{&tb};

    SymTW symTower;
    buildTower(symTower, &sctx, sys.towerParams(), vc);

    PairingEngine<SymTW> engine(symTower, sys.plan(), vc.g2Coords,
                                vc.cyclotomicSqr);

    auto supply = [&] { return SymFp{tb.input(), &sctx}; };

    using FtS = typename SymTW::FtT;
    using GtS = typename SymTW::GtT;

    GtS result = GtS::one(symTower.gtCtx());
    if (part == TracePart::FinalExpOnly) {
        GtS f = buildFromLeaves<GtS>(symTower.gtCtx(), supply);
        result = engine.finalExp(f);
    } else {
        const SymFp xP = supply();
        const SymFp yP = supply();
        const FtS xQ = buildFromLeaves<FtS>(symTower.ftCtx(), supply);
        const FtS yQ = buildFromLeaves<FtS>(symTower.ftCtx(), supply);
        result = part == TracePart::MillerOnly
                     ? engine.miller(xP, yP, xQ, yQ)
                     : engine.pair(xP, yP, xQ, yQ);
    }

    forEachLeaf(result, [&](const SymFp &leaf) { tb.output(leaf.id()); });
    Module m = tb.finish();
    m.verify();
    return m;
}

/** Convenience dispatchers for the two tower shapes. */
inline Module
tracePairing12(const CurveSystem<NativeTower12> &sys,
               const VariantConfig &vc, TracePart part = TracePart::Full)
{
    return tracePairing<Tower12<SymFp>>(sys, vc, part);
}

inline Module
tracePairing24(const CurveSystem<NativeTower24> &sys,
               const VariantConfig &vc, TracePart part = TracePart::Full)
{
    return tracePairing<Tower24<SymFp>>(sys, vc, part);
}

} // namespace finesse

#endif // FINESSE_COMPILER_CODEGEN_H_
