/**
 * @file
 * Batched backend evaluation: the hardware-independent per-trace
 * artifact (TracePrep), the reusable per-worker buffer set
 * (BackendScratch), and the allocation-free backend point runner.
 *
 * A DSE sweep evaluates many (hardware model, schedule mode) points
 * against one cached front-end trace. The classic path re-derived the
 * identical def-use/dependence graph from the Module for every point
 * and churned through per-point allocations; here the graph is built
 * exactly once per trace (TracePrep, immutable, shared read-only by
 * every worker) and all per-point working state lives in a
 * BackendScratch that is reset -- never reallocated -- between
 * points. The engines are byte-identical to the legacy Module-walking
 * reference (scheduleModuleReference / allocateRegisters), which is
 * kept as the oracle (tests/test_backend_props.cpp,
 * bench/fig_backend.cpp).
 */
#ifndef FINESSE_COMPILER_BACKENDPREP_H_
#define FINESSE_COMPILER_BACKENDPREP_H_

#include <utility>
#include <vector>

#include "compiler/backend.h"
#include "compiler/ports.h"

namespace finesse {

/**
 * Immutable, hardware-independent prep of one front-end trace:
 * defining instruction per value, in-body dependence counts, a CSR
 * users table (users listed in body order, exactly the order the
 * legacy per-point vectors produced), and per-instruction unit/arity
 * classes. Computed once per cached trace; shared read-only by all
 * design points of that trace.
 */
struct TracePrep
{
    i32 numValues = 0;
    size_t numInstrs = 0;
    std::vector<i32> defInst; ///< per value id: body index or -1
    std::vector<int> deps;    ///< per body index: # in-body operand deps
    std::vector<i32> userStart; ///< CSR offsets, size numValues + 1
    std::vector<i32> userList;  ///< CSR payload: user body indices
    std::vector<u8> unit;       ///< UnitClass per body index
    std::vector<u8> numReads;   ///< register-operand arity per body index
    size_t mulInstrs = 0;       ///< countUnit(Mul), precomputed
    size_t linInstrs = 0;       ///< countUnit(Linear), precomputed

    /** Users of value @p v (body indices, body order). */
    std::pair<const i32 *, const i32 *>
    usersOf(i32 v) const
    {
        return {userList.data() + userStart[static_cast<size_t>(v)],
                userList.data() + userStart[static_cast<size_t>(v) + 1]};
    }
};

/** Build the prep for @p m (one O(body) pass set). */
TracePrep buildTracePrep(const Module &m);

/** Backend artifacts of one (trace, hw) point; the module is shared,
 *  not owned. The encoded binary is summarized by its layout (word
 *  width / IMem bits) -- exactly what the area model consumes -- so a
 *  sweep point never materializes instruction words or clones the
 *  constant pool. */
struct BackendPoint
{
    BankAssignment banks;
    Schedule schedule;
    RegAssignment regs;
    int wordBits = 0;
    size_t imemBits = 0;
    double seconds = 0.0; ///< backend wall time for this point
    // Per-stage wall times, pipeline order (for --pass-stats rows).
    double bankallocSeconds = 0.0;
    double packschedSeconds = 0.0;
    double regallocSeconds = 0.0;
    double encodeSeconds = 0.0;
};

/**
 * Reusable per-worker working set for backend runs: scheduler
 * priority/ready/leftover/heap buffers, register-allocator liveness
 * and expiry buffers, simulator replay buffers, and the dense port
 * trackers. Every buffer is reset with its capacity retained, so a
 * warmed-up worker evaluates a design point with near-zero heap
 * traffic. One scratch per worker thread; never shared concurrently.
 */
struct BackendScratch
{
    // Scheduler.
    std::vector<i64> readyAt, prio, earliest;
    std::vector<int> deps;
    std::vector<std::pair<i64, i32>> pending; ///< binary min-heap
    std::vector<i32> ready, leftover;
    PortTracker ports;
    // Register allocator.
    std::vector<i64> lastUse, defPos;
    std::vector<i32> expiryStart, expiryCursor, expiryList;
    std::vector<std::vector<i32>> freeList;
    std::vector<i32> nextReg;
    // Cycle simulator.
    std::vector<i64> simReadyAt;
    std::vector<PortOp> pops;
    PortTracker simPorts;
    // Reused per-point result (for sweeps that consume metrics only).
    BackendPoint point;
};

/** BankAlloc into a reused assignment (same result as assignBanks). */
void assignBanksInto(const Module &m, const PipelineModel &hw,
                     BankAssignment &out);

/**
 * PackSched against a shared TracePrep: the batched-engine overload of
 * scheduleModule. Byte-identical schedules to the legacy reference for
 * both init (program-order) and list scheduling; zero graph
 * rebuilding, and all working state in @p scratch. @p sched is
 * overwritten in place, reusing its buffers.
 */
void scheduleModule(const Module &m, const TracePrep &prep,
                    const BankAssignment &banks, const PipelineModel &hw,
                    bool useListScheduling, BackendScratch &scratch,
                    Schedule &sched);

/**
 * RegAlloc with scratch-resident liveness/expiry buffers (counting-
 * sorted expiry buckets replace the legacy std::map). Byte-identical
 * register assignment to allocateRegisters.
 */
void allocateRegistersInto(const Module &m, const BankAssignment &banks,
                           const Schedule &sched, BackendScratch &scratch,
                           RegAssignment &out);

/**
 * One full backend point: BankAlloc + PackSched + RegAlloc + encoding
 * layout (word width, IMem bits -- the encode-stage outputs the DSE
 * metrics actually consume, including the register-pressure encoding
 * check). Writes into @p out, reusing its buffers.
 */
void runBackendPoint(const Module &m, const TracePrep &prep,
                     const PipelineModel &hw, bool listSchedule,
                     BackendScratch &scratch, BackendPoint &out);

} // namespace finesse

#endif // FINESSE_COMPILER_BACKENDPREP_H_
