/**
 * @file
 * Symbolic base-field element and trace builder: the compiler's CodeGen
 * stage. SymFp mirrors the exact method surface of the native Fp, so
 * instantiating the tower/curve/pairing templates over SymFp executes
 * the *same algorithms* while recording a straight-line Fp-level SSA
 * trace instead of computing values. Loop bounds are curve constants,
 * so the recorded trace is the fully-unrolled single basic block the
 * paper's compiler operates on.
 *
 * The builder always emits "literature-level" code (dense operation
 * streams, constants interned in the pool); all data-flow optimization
 * (constant/zero propagation, GVN, DCE, strength reduction) happens in
 * the IROpt passes so that the paper's Init -> Opt comparison (Table 7)
 * is reproducible.
 */
#ifndef FINESSE_COMPILER_SYMFP_H_
#define FINESSE_COMPILER_SYMFP_H_

#include <map>
#include <vector>

#include "field/fp.h"
#include "ir/ir.h"

namespace finesse {

/** Records an SSA trace of Fp operations. */
class TraceBuilder
{
  public:
    explicit TraceBuilder(const BigInt &p) : p_(p) {}

    /** Allocate a fresh SSA id. */
    i32
    fresh()
    {
        return numValues_++;
    }

    /** Intern a constant (deduplicated by value). */
    i32
    constant(const BigInt &v)
    {
        const BigInt reduced = v.mod(p_);
        auto it = constIds_.find(reduced);
        if (it != constIds_.end())
            return it->second;
        const i32 id = fresh();
        constIds_.emplace(reduced, id);
        constants_.push_back({id, reduced});
        return id;
    }

    /** Declare a program input; returns the ICV-converted value id. */
    i32
    input()
    {
        const i32 raw = fresh();
        inputs_.push_back(raw);
        return emit(Op::Icv, raw);
    }

    /** Declare a program output; emits the CVT conversion. */
    void
    output(i32 id)
    {
        outputs_.push_back(emit(Op::Cvt, id));
    }

    /** Emit an instruction, returning the destination id. */
    i32
    emit(Op op, i32 a, i32 b = -1)
    {
        const i32 dst = fresh();
        body_.push_back({op, dst, a, b});
        return dst;
    }

    /** Finish and return the module. */
    Module
    finish()
    {
        Module m;
        m.p = p_;
        m.numValues = numValues_;
        m.body = std::move(body_);
        m.inputs = std::move(inputs_);
        m.outputs = std::move(outputs_);
        m.constants = std::move(constants_);
        return m;
    }

    const BigInt &modulus() const { return p_; }

    /** 1/2 mod p (for halve). */
    BigInt
    halfConst() const
    {
        return (p_ + BigInt(u64{1})) >> 1;
    }

  private:
    BigInt p_;
    i32 numValues_ = 0;
    std::vector<Inst> body_;
    std::vector<i32> inputs_, outputs_;
    std::vector<ConstEntry> constants_;
    std::map<BigInt, i32> constIds_;
};

/**
 * Symbolic Fp element: a value id plus the builder. Implements the
 * identical concept as finesse::Fp (see field/fp.h).
 */
class SymFp
{
  public:
    /** Per-trace context (plays the role of FpCtx). */
    struct Ctx
    {
        TraceBuilder *tb = nullptr;
    };

    SymFp() = default;
    SymFp(i32 id, const Ctx *ctx) : id_(id), ctx_(ctx) {}

    static SymFp
    zero(const Ctx *ctx)
    {
        return {ctx->tb->constant(BigInt()), ctx};
    }

    static SymFp
    one(const Ctx *ctx)
    {
        return {ctx->tb->constant(BigInt(u64{1})), ctx};
    }

    static SymFp
    fromBig(const Ctx *ctx, const BigInt &v)
    {
        return {ctx->tb->constant(v), ctx};
    }

    static SymFp
    fromInt(const Ctx *ctx, i64 v)
    {
        return fromBig(ctx, BigInt(v));
    }

    SymFp zeroLike() const { return zero(ctx_); }
    SymFp oneLike() const { return one(ctx_); }

    i32 id() const { return id_; }
    const Ctx *fieldCtx() const { return ctx_; }

    // Arithmetic: each call records one instruction. -----------------------
    SymFp add(const SymFp &o) const { return wrap(Op::Add, id_, o.id_); }
    SymFp sub(const SymFp &o) const { return wrap(Op::Sub, id_, o.id_); }
    SymFp neg() const { return wrap(Op::Neg, id_); }
    SymFp dbl() const { return wrap(Op::Dbl, id_); }
    SymFp tpl() const { return wrap(Op::Tpl, id_); }
    SymFp mul(const SymFp &o) const { return wrap(Op::Mul, id_, o.id_); }
    SymFp sqr() const { return wrap(Op::Sqr, id_); }
    SymFp inv() const { return wrap(Op::Inv, id_); }

    SymFp
    halve() const
    {
        const i32 c = ctx_->tb->constant(ctx_->tb->halfConst());
        return wrap(Op::Mul, id_, c);
    }

    /** Frobenius on Fp is the identity (no instruction emitted). */
    SymFp frob() const { return *this; }

    SymFp scaleScalar(const SymFp &s) const { return mul(s); }

    // Coefficient loading (constants only, mirrors Fp). --------------------
    template <typename It>
    static SymFp
    fromFpCoeffs(const Ctx *ctx, It &it)
    {
        return fromBig(ctx, *it++);
    }

  private:
    SymFp
    wrap(Op op, i32 a, i32 b = -1) const
    {
        return {ctx_->tb->emit(op, a, b), ctx_};
    }

    i32 id_ = -1;
    const Ctx *ctx_ = nullptr;
};

/** Visit every SymFp leaf of a tower element (for output collection). */
template <typename F, typename Fn>
void
forEachLeaf(const F &x, Fn &&fn)
{
    if constexpr (requires { x.id(); }) {
        fn(x);
    } else if constexpr (requires { x.c2(); }) {
        forEachLeaf(x.c0(), fn);
        forEachLeaf(x.c1(), fn);
        forEachLeaf(x.c2(), fn);
    } else {
        forEachLeaf(x.c0(), fn);
        forEachLeaf(x.c1(), fn);
    }
}

} // namespace finesse

#endif // FINESSE_COMPILER_SYMFP_H_
