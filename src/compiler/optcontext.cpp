/**
 * @file
 * OptContext implementation: single build of the use-count / def-use /
 * replacement / constant-pool tables, dirty-bitset pass scans, eager
 * use forwarding, engine-native DCE and the one-shot compaction, plus
 * the worklist fixpoint driver used by PassManager for front-end
 * groups.
 */
#include "compiler/optcontext.h"

#include <bit>
#include <chrono>

#include "support/common.h"

namespace finesse {

namespace {

using Clock = std::chrono::steady_clock;

/** Output slot k <-> negative user encoding in the def-use table. */
inline i32
encodeOutputUser(size_t slot)
{
    return -static_cast<i32>(slot) - 1;
}

inline size_t
decodeOutputUser(i32 user)
{
    return static_cast<size_t>(-user - 1);
}

} // namespace

OptContext::OptContext(Module &m, size_t rewriterSlots)
    : m_(&m), bodySize_(m.body.size())
{
    const size_t nv = static_cast<size_t>(m.numValues);
    alive_.assign(bodySize_, 1);
    constAlive_.assign(m.constants.size(), 1);

    // Reserve headroom so the interning growth path rarely reallocates
    // (constant folding typically adds a few percent of new ids).
    const size_t slack = nv + nv / 8 + 16;
    useCount_.reserve(slack);
    defOf_.reserve(slack);
    rep_.reserve(slack);
    constIdx_.reserve(slack);
    ovHead_.reserve(slack);
    useCount_.assign(nv, 0);
    defOf_.assign(nv, -1);
    rep_.assign(nv, -1);
    constIdx_.assign(nv, -1);
    ovHead_.assign(nv, -1);

    internMap_.reserve(m.constants.size() * 2 + 16);
    for (size_t i = 0; i < m.constants.size(); ++i) {
        const ConstEntry &c = m.constants[i];
        constIdx_[static_cast<size_t>(c.id)] = static_cast<i32>(i);
        internMap_.emplace(c.value, c.id);
        // Re-checked at dce time: initially unreferenced entries are
        // purged by the first dce scan, like the reference sweep.
        constCandidates_.push_back(c.id);
    }

    // CSR def-use: count, prefix-sum, fill (useLen_ doubles as the
    // per-value fill cursor and ends up as the live prefix length).
    csrValues_ = nv;
    useStart_.assign(nv + 1, 0);
    for (const Inst &inst : m.body) {
        forEachOperand(inst, [&](const i32 &x) {
            ++useStart_[static_cast<size_t>(x) + 1];
        });
    }
    for (i32 out : m.outputs)
        ++useStart_[static_cast<size_t>(out) + 1];
    for (size_t v = 0; v < nv; ++v)
        useStart_[v + 1] += useStart_[v];
    useEntries_.assign(static_cast<size_t>(useStart_[nv]), -1);
    useLen_.assign(nv, 0);
    for (size_t i = 0; i < bodySize_; ++i) {
        const Inst &inst = m.body[i];
        defOf_[static_cast<size_t>(inst.dst)] = static_cast<i32>(i);
        forEachOperand(inst, [&](const i32 &x) {
            const size_t v = static_cast<size_t>(x);
            useEntries_[static_cast<size_t>(useStart_[v]) +
                        static_cast<size_t>(useLen_[v]++)] =
                static_cast<i32>(i);
            ++useCount_[v];
        });
    }
    for (size_t k = 0; k < m.outputs.size(); ++k) {
        const size_t v = static_cast<size_t>(m.outputs[k]);
        useEntries_[static_cast<size_t>(useStart_[v]) +
                    static_cast<size_t>(useLen_[v]++)] =
            encodeOutputUser(k);
        ++useCount_[v];
    }

    // All-ones dirty sets: round 1 == the reference engine's first
    // full sweeps.
    const size_t words = (bodySize_ + 63) / 64;
    std::vector<u64> allDirty(words, ~u64{0});
    if (bodySize_ % 64 != 0 && words > 0)
        allDirty[words - 1] = (u64{1} << (bodySize_ % 64)) - 1;
    slotDirty_.assign(rewriterSlots, allDirty);
    dceDirty_ = allDirty;
}

const BigInt *
OptContext::constOf(i32 id) const
{
    const i32 ci = constIdx_[static_cast<size_t>(id)];
    return ci < 0 ? nullptr
                  : &m_->constants[static_cast<size_t>(ci)].value;
}

i32
OptContext::internConst(const BigInt &v)
{
    auto [it, inserted] = internMap_.try_emplace(v, 0);
    if (!inserted)
        return it->second;
    const i32 id = m_->numValues++;
    it->second = id;
    m_->constants.push_back({id, v});
    constAlive_.push_back(1);
    useCount_.push_back(0);
    defOf_.push_back(-1);
    rep_.push_back(-1);
    ovHead_.push_back(-1);
    constIdx_.push_back(static_cast<i32>(m_->constants.size()) - 1);
    // In case no surviving use materializes (dce re-checks the count).
    constCandidates_.push_back(id);
    return id;
}

i32
OptContext::resolve(i32 id)
{
    return resolveRep(rep_, id);
}

void
OptContext::decUse(i32 id)
{
    const size_t v = static_cast<size_t>(id);
    if (--useCount_[v] != 0)
        return;
    const i32 def = defOf_[v];
    if (def >= 0) {
        dceDirty_[static_cast<size_t>(def) / 64] |=
            u64{1} << (static_cast<size_t>(def) % 64);
    } else if (constIdx_[v] >= 0) {
        constCandidates_.push_back(id);
    }
}

void
OptContext::addUse(i32 id, i32 user)
{
    const size_t v = static_cast<size_t>(id);
    ++useCount_[v];
    if (v < csrValues_) {
        const size_t cap = static_cast<size_t>(useStart_[v + 1]) -
                           static_cast<size_t>(useStart_[v]);
        if (static_cast<size_t>(useLen_[v]) < cap) {
            useEntries_[static_cast<size_t>(useStart_[v]) +
                        static_cast<size_t>(useLen_[v]++)] = user;
            return;
        }
    }
    ovPool_.push_back({user, ovHead_[v]});
    ovHead_[v] = static_cast<i32>(ovPool_.size()) - 1;
}

void
OptContext::markDirtyAllSlots(size_t idx)
{
    const size_t w = idx / 64;
    const u64 bit = u64{1} << (idx % 64);
    for (std::vector<u64> &set : slotDirty_)
        set[w] |= bit;
}

void
OptContext::forwardUses(i32 from, i32 to)
{
    const size_t v = static_cast<size_t>(from);
    auto handleUser = [&](i32 user) {
        if (user >= 0) {
            const size_t u = static_cast<size_t>(user);
            if (!alive_[u])
                return; // stale entry of a tombstoned instruction
            Inst &in = m_->body[u];
            bool touched = false;
            forEachOperand(in, [&](i32 &x) {
                if (x == from) {
                    x = to;
                    addUse(to, user);
                    touched = true;
                }
            });
            if (touched)
                markDirtyAllSlots(u);
        } else {
            const size_t slot = decodeOutputUser(user);
            if (m_->outputs[slot] == from) {
                m_->outputs[slot] = to;
                addUse(to, user);
            }
        }
    };

    if (v < csrValues_) {
        const size_t start = static_cast<size_t>(useStart_[v]);
        const size_t len = static_cast<size_t>(useLen_[v]);
        for (size_t k = 0; k < len; ++k)
            handleUser(useEntries_[start + k]);
        useLen_[v] = 0;
    }
    // Index-based walk: addUse() may grow ovPool_ (for `to`) while we
    // iterate `from`'s chain.
    for (i32 o = ovHead_[v]; o >= 0;) {
        const i32 next = ovPool_[static_cast<size_t>(o)].next;
        handleUser(ovPool_[static_cast<size_t>(o)].user);
        o = next;
    }
    ovHead_[v] = -1;
    useCount_[v] = 0;
}

void
OptContext::elideInst(size_t idx, i32 replacement)
{
    FINESSE_CHECK(alive_[idx], "elideInst on a tombstoned instruction");
    Inst &inst = m_->body[idx];
    const i32 dst = inst.dst;
    const i32 target = resolve(replacement);
    FINESSE_CHECK(target != dst, "elideInst: self-replacement of %",
                  dst);
    alive_[idx] = 0;
    ++scanRemoved_;
    forEachOperand(inst, [&](i32 &x) { decUse(x); });
    rep_[static_cast<size_t>(dst)] = target;
    forwardUses(dst, target);
}

void
OptContext::applyRewrite(size_t idx, const Inst &before)
{
    Inst &now = m_->body[idx];
    // Move the use bookkeeping from the old operand multiset to the
    // new one. Transient zero counts are harmless: dce re-checks every
    // candidate when it runs.
    forEachOperand(before, [&](const i32 &x) { decUse(x); });
    forEachOperand(now, [&](i32 &x) {
        addUse(x, static_cast<i32>(idx));
    });
    markDirtyAllSlots(idx);
    ++scanRewrites_;
}

OptContext::ScanResult
OptContext::scanRewriter(size_t slot, InstRewriter &rw)
{
    scanRemoved_ = 0;
    scanRewrites_ = 0;
    std::vector<u64> &bits = slotDirty_[slot];
    size_t w = 0;
    while (w < bits.size()) {
        const u64 word = bits[w];
        if (!word) {
            ++w;
            continue;
        }
        const unsigned b =
            static_cast<unsigned>(std::countr_zero(word));
        bits[w] = word & (word - 1);
        const size_t idx = w * 64 + b;
        if (!alive_[idx])
            continue;
        Inst &inst = m_->body[idx];
        const Inst before = inst;
        const i32 repl = rw.simplifyAt(*this, inst, idx);
        if (repl >= 0) {
            inst = before; // keep counts exact if a rewrite preceded
            elideInst(idx, repl);
        } else if (!(inst == before)) {
            applyRewrite(idx, before);
        }
        // Re-read bits[w]: processing may have dirtied instructions
        // ahead of the cursor within this very word.
    }
    ScanResult r;
    r.instsRemoved = scanRemoved_;
    r.changed = scanRemoved_ > 0 || scanRewrites_ > 0;
    return r;
}

OptContext::ScanResult
OptContext::scanDce()
{
    scanRemoved_ = 0;
    // Descending over defs whose use count hit zero; tombstoning an
    // instruction can zero its operands' counts, whose (earlier) defs
    // the scan then reaches naturally -- a backward liveness sweep
    // restricted to the affected region.
    size_t w = dceDirty_.size();
    while (w-- > 0) {
        while (true) {
            const u64 word = dceDirty_[w];
            if (!word)
                break;
            const unsigned b =
                63u - static_cast<unsigned>(std::countl_zero(word));
            dceDirty_[w] &= ~(u64{1} << b);
            const size_t idx = w * 64 + b;
            if (!alive_[idx])
                continue;
            Inst &inst = m_->body[idx];
            if (useCount_[static_cast<size_t>(inst.dst)] != 0)
                continue;
            alive_[idx] = 0;
            ++scanRemoved_;
            forEachOperand(inst, [&](i32 &x) { decUse(x); });
        }
    }

    // Purge constant-pool entries with no remaining uses -- and drop
    // them from the intern map, so a later fold of the same value
    // allocates a fresh id exactly like the reference engine (whose
    // per-sweep maps are rebuilt from the post-dce pool).
    size_t constsRemoved = 0;
    for (i32 cid : constCandidates_) {
        const size_t v = static_cast<size_t>(cid);
        const i32 ci = constIdx_[v];
        if (ci < 0 || useCount_[v] != 0)
            continue;
        constAlive_[static_cast<size_t>(ci)] = 0;
        internMap_.erase(m_->constants[static_cast<size_t>(ci)].value);
        constIdx_[v] = -1;
        ++constsRemoved;
    }
    constCandidates_.clear();

    ScanResult r;
    r.instsRemoved = scanRemoved_;
    r.changed = scanRemoved_ > 0 || constsRemoved > 0;
    return r;
}

size_t
OptContext::compact()
{
    return m_->compact(alive_, constAlive_);
}

int
runFrontendWorklist(CompilationContext &ctx,
                    const std::vector<Pass *> &group)
{
    struct Slot
    {
        Pass *pass;
        InstRewriter *rw;
        size_t rwSlot;
        PassStats *stats;
    };
    std::vector<Slot> slots;
    slots.reserve(group.size());
    size_t rewriterSlots = 0;
    for (Pass *p : group) {
        FINESSE_CHECK(p->isFrontend(),
                      "worklist group contains backend pass ",
                      p->name());
        InstRewriter *rw = p->instRewriter();
        FINESSE_CHECK(rw || p->name() == "dce",
                      "front-end pass without a worklist hook: ",
                      p->name());
        slots.push_back({p, rw, rw ? rewriterSlots++ : 0, nullptr});
    }

    OptContext oc(ctx.module(), rewriterSlots);

    // Create every PassStats entry first (pipeline order, identical to
    // the sweep engine's first-invocation order), THEN take pointers:
    // ensurePassStats appends and can reallocate the vector.
    for (const Slot &s : slots)
        ensurePassStats(ctx.stats, s.pass->name(), true);
    for (Slot &s : slots)
        s.stats = &ensurePassStats(ctx.stats, s.pass->name(), true);

    for (Slot &s : slots) {
        if (s.rw)
            s.rw->beginRun(oc);
    }

    int rounds = 0;
    bool changed = true;
    while (changed && rounds < PassManager::kMaxFixpointIters) {
        ++rounds;
        changed = false;
        for (Slot &s : slots) {
            const auto start = Clock::now();
            const OptContext::ScanResult r =
                s.rw ? oc.scanRewriter(s.rwSlot, *s.rw) : oc.scanDce();
            const double dt = secondsSince(start);
            s.stats->invocations += 1;
            s.stats->instrsRemoved += static_cast<i64>(r.instsRemoved);
            s.stats->seconds += dt;
            ctx.stats.seconds += dt;
            changed |= r.changed;
        }
    }
    ctx.stats.iterations += rounds;
    oc.compact();
    return rounds;
}

} // namespace finesse
