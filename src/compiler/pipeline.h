/**
 * @file
 * Staged compilation pipeline: a CompilationContext shared by every
 * stage and a PassManager that runs named Pass objects over it.
 *
 * The front end (IROpt) is five discrete passes -- constfold,
 * zerooneprop, strengthreduce, gvn, dce -- that the manager iterates
 * to a fixpoint as a group; the backend stages of the paper --
 * bankalloc, packsched, regalloc, encode -- are passes over the same
 * context, so any pipeline subset is composable (ablation studies,
 * Table 7 per-pass attribution) and the DSE loop can rerun just the
 * hardware-dependent tail against a cached front-end trace.
 */
#ifndef FINESSE_COMPILER_PIPELINE_H_
#define FINESSE_COMPILER_PIPELINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/backend.h"
#include "compiler/passes.h"
#include "isa/encode.h"

namespace finesse {

class InstRewriter; // worklist hook of the front-end passes (optcontext.h)

/**
 * Everything one compilation owns, shared by all passes. The front-end
 * passes rewrite prog.module; the backend stages fill in the bank,
 * schedule, register and binary artifacts and flag what has been
 * computed so later stages can validate their prerequisites.
 */
struct CompilationContext
{
    CompiledProgram prog;   ///< module + hw model + backend artifacts
    EncodedProgram binary;  ///< ASM/Link output (encode pass)
    OptStats stats;         ///< per-pass + aggregate accounting
    bool listSchedule = true; ///< Algorithm 2 vs program order ("Init")

    // Prerequisite flags maintained by the backend passes.
    bool hasBanks = false;
    bool hasSchedule = false;
    bool hasRegs = false;
    bool hasBinary = false;

    Module &module() { return prog.module; }
    const Module &module() const { return prog.module; }
};

/** One named compilation stage. */
class Pass
{
  public:
    virtual ~Pass() = default;

    virtual std::string_view name() const = 0;

    /** Front-end passes are iterated to a fixpoint as a group. */
    virtual bool isFrontend() const = 0;

    /**
     * Run one full sweep on the context; returns true when anything
     * changed. Backend stages run this exactly once; for front-end
     * passes this is the reference sweep engine (the worklist engine
     * drives instRewriter() instead).
     */
    virtual bool run(CompilationContext &ctx) = 0;

    /**
     * Worklist hook for the single-build OptContext engine. Non-null
     * for every rewriting front-end pass; null for backend stages and
     * for dce (which the engine implements natively on its use-count
     * table).
     */
    virtual InstRewriter *instRewriter() { return nullptr; }
};

/**
 * Ordered pass pipeline with per-pass instrumentation. Contiguous
 * front-end passes form a group that is iterated (up to
 * kMaxFixpointIters rounds) until no pass reports a change; backend
 * passes run exactly once, in order. Each invocation records
 * instruction deltas, round counts and wall time into
 * CompilationContext::stats.
 *
 * Front-end groups run on the single-build OptContext worklist engine
 * (compiler/optcontext.h): one shared use-count / replacement /
 * constant-pool build per group run, with per-round scans visiting
 * only instructions whose operands changed. runSweep() drives the
 * legacy whole-body sweep engine instead -- the reference
 * implementation the worklist engine is benchmarked and
 * byte-identity-tested against.
 */
class PassManager
{
  public:
    static constexpr int kMaxFixpointIters = 8;

    PassManager &add(std::unique_ptr<Pass> pass);
    PassManager &add(const std::string &name); ///< by registry name

    size_t size() const { return passes_.size(); }
    std::vector<std::string> names() const;

    /** Run the pipeline (worklist engine for front-end groups). */
    void run(CompilationContext &ctx);

    /** Run with the legacy per-sweep front-end engine (reference). */
    void runSweep(CompilationContext &ctx);

    /** The five IROpt passes in canonical order. */
    static PassManager standardFrontend();
    /** The four backend stages in canonical order. */
    static PassManager standardBackend();
    /** Arbitrary pipeline; fatal() on an unknown pass name. */
    static PassManager fromNames(const std::vector<std::string> &names);

  private:
    void runImpl(CompilationContext &ctx, bool worklist);
    bool invoke(Pass &pass, CompilationContext &ctx);

    std::vector<std::unique_ptr<Pass>> passes_;
};

/** Canonical front-end pass names, pipeline order. */
const std::vector<std::string> &frontendPassNames();
/** Canonical backend stage names, pipeline order. */
const std::vector<std::string> &backendPassNames();
/** True if @p name is a registered front-end pass. */
bool isFrontendPassName(const std::string &name);
/** True if @p name is a registered backend stage. */
bool isBackendPassName(const std::string &name);

/** Construct a front-end pass by name (nullptr if unknown). */
std::unique_ptr<Pass> makeFrontendPass(const std::string &name);
/** Construct a backend stage by name (nullptr if unknown). */
std::unique_ptr<Pass> makeBackendPass(const std::string &name);
/** Construct any registered pass; fatal() on an unknown name. */
std::unique_ptr<Pass> makePass(const std::string &name);

/**
 * Parse a comma-separated pass list ("constfold,gvn,dce"); validates
 * every name against the registry. Empty input -> empty list (which
 * callers treat as "the standard pipeline").
 */
std::vector<std::string> parsePassList(const std::string &csv);

/**
 * Run a front-end pipeline over @p m in place and return its stats
 * (aggregate counters plus one PassStats per named pass). An empty
 * @p names runs nothing but still fills the aggregate counters.
 */
OptStats runFrontendPipeline(Module &m,
                             const std::vector<std::string> &names);

/**
 * Same pipeline on the legacy sweep-until-fixpoint engine: every
 * sweep of every pass re-walks the whole body and rebuilds the
 * constant-pool maps. Kept as the reference implementation --
 * bench/fig_opt and tests/test_optcontext check the worklist engine
 * produces byte-identical modules and matching per-pass stats.
 */
OptStats runFrontendPipelineSweep(Module &m,
                                  const std::vector<std::string> &names);

/**
 * Find-or-append the PassStats entry for @p name in @p stats
 * (first-invocation order, the order the pipeline reports).
 * The reference is invalidated by the next ensurePassStats call.
 */
PassStats &ensurePassStats(OptStats &stats, std::string_view name,
                           bool frontend);

} // namespace finesse

#endif // FINESSE_COMPILER_PIPELINE_H_
