/**
 * @file
 * The five IROpt front-end passes: constant folding, zero/one
 * propagation, strength reduction, global value numbering and dead
 * code elimination.
 *
 * Each rewriting pass states its simplification rules exactly once,
 * against the engine-neutral RewriteEnv (compiler/optcontext.h), and
 * is driven by either engine:
 *
 *  - the single-build OptContext worklist engine (the default --
 *    PassManager::run), via InstRewriter::simplifyAt;
 *  - the legacy sweep engine kept here as the reference
 *    implementation (RewritePass::run, PassManager::runSweep): every
 *    sweep re-walks the body, rebuilds the constant maps and resolves
 *    operands through a per-sweep replacement table.
 *
 * optimizeModule() is the classic one-call wrapper over the standard
 * front-end pipeline.
 */
#include "compiler/passes.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "compiler/optcontext.h"
#include "compiler/pipeline.h"
#include "support/common.h"

namespace finesse {

namespace {

/** Hash key for value numbering. */
struct VnKey
{
    Op op;
    i32 a, b;

    bool
    operator==(const VnKey &o) const
    {
        return op == o.op && a == o.a && b == o.b;
    }
};

struct VnKeyHash
{
    size_t
    operator()(const VnKey &k) const
    {
        return std::hash<u64>()((static_cast<u64>(k.op) << 56) ^
                                (static_cast<u64>(static_cast<u32>(k.a))
                                 << 28) ^
                                static_cast<u64>(static_cast<u32>(k.b)));
    }
};

/** Commutativity canonicalization shared by both GVN engines. */
VnKey
canonicalVnKey(const Inst &inst)
{
    VnKey key{inst.op, inst.a, inst.b};
    if (inst.op == Op::Add || inst.op == Op::Mul) {
        if (key.a > key.b)
            std::swap(key.a, key.b);
    }
    return key;
}

/**
 * Legacy sweep engine shared by the rewriting passes, and the
 * reference the OptContext worklist engine is validated against. One
 * sweep walks the body in order, resolves operands through the
 * replacements made earlier in the same sweep (path-compressed
 * union-find), and asks the concrete pass to simplify each
 * instruction: a non-negative return elides the instruction in favor
 * of an existing value id; simplify() may also rewrite the op in
 * place (strength reduction). The per-sweep constant maps implement
 * RewriteEnv for the shared rules.
 */
class RewritePass : public Pass, public InstRewriter, public RewriteEnv
{
  public:
    bool isFrontend() const override { return true; }

    InstRewriter *instRewriter() override { return this; }

    bool
    run(CompilationContext &ctx) override
    {
        Module &m = ctx.module();
        m_ = &m;
        rep_.assign(static_cast<size_t>(m.numValues), -1);
        constVal_.clear();
        constIds_.clear();
        for (const auto &c : m.constants) {
            constVal_[c.id] = c.value;
            constIds_[c.value] = c.id;
        }
        beginSweep(m);

        bool changed = false;
        std::vector<Inst> newBody;
        newBody.reserve(m.body.size());
        for (const Inst &raw : m.body) {
            Inst inst = raw;
            forEachOperand(inst, [&](i32 &x) { x = resolve(x); });

            const i32 replacement = simplify(*this, inst);
            if (replacement >= 0) {
                rep_[inst.dst] = replacement;
                changed = true;
                continue;
            }
            changed |= inst.op != raw.op;
            newBody.push_back(inst);
        }
        for (auto &out : m.outputs)
            out = resolve(out);
        m.body = std::move(newBody);
        m_ = nullptr;
        return changed;
    }

    // Worklist-engine hook: same rules, OptContext as the environment.
    i32
    simplifyAt(OptContext &ctx, Inst &inst, size_t) override
    {
        return simplify(ctx, inst);
    }

    // RewriteEnv over the per-sweep maps (legacy engine).
    const BigInt *
    constOf(i32 id) const override
    {
        auto it = constVal_.find(id);
        return it == constVal_.end() ? nullptr : &it->second;
    }

    i32
    internConst(const BigInt &v) override
    {
        auto it = constIds_.find(v);
        if (it != constIds_.end())
            return it->second;
        const i32 id = m_->numValues++;
        rep_.push_back(-1);
        m_->constants.push_back({id, v});
        constVal_[id] = v;
        constIds_[v] = id;
        return id;
    }

    const BigInt &modulus() const override { return m_->p; }

  protected:
    /** Per-sweep setup hook (e.g. clearing the GVN table). */
    virtual void beginSweep(Module &) {}

    /**
     * Try to simplify @p inst (which may be rewritten in place) using
     * @p env for constant queries/interning. Returns a replacement
     * value id when the instruction can be elided entirely, -1
     * otherwise. Shared verbatim by both engines.
     */
    virtual i32 simplify(RewriteEnv &env, Inst &inst) = 0;

    /** Path-compressed replacement lookup (amortized O(1) chains). */
    i32 resolve(i32 id) { return resolveRep(rep_, id); }

  private:
    Module *m_ = nullptr;
    std::vector<i32> rep_;
    std::unordered_map<i32, BigInt> constVal_;
    std::map<BigInt, i32> constIds_;
};

/** constfold: evaluate instructions whose operands are all constant. */
class ConstFoldPass final : public RewritePass
{
  public:
    std::string_view name() const override { return "constfold"; }

  protected:
    i32
    simplify(RewriteEnv &env, Inst &inst) override
    {
        const int n = arity(inst.op);
        const BigInt *ca = n >= 1 ? env.constOf(inst.a) : nullptr;
        const BigInt *cb = n >= 2 ? env.constOf(inst.b) : nullptr;
        if (!ca || (n >= 2 && !cb))
            return -1;

        const BigInt &p = env.modulus();
        switch (inst.op) {
          case Op::Add:
            return env.internConst((*ca + *cb).mod(p));
          case Op::Sub:
            return env.internConst((*ca - *cb).mod(p));
          case Op::Mul:
            return env.internConst((*ca * *cb).mod(p));
          case Op::Sqr:
            return env.internConst((*ca * *ca).mod(p));
          case Op::Neg:
            return env.internConst((-*ca).mod(p));
          case Op::Dbl:
            return env.internConst((*ca + *ca).mod(p));
          case Op::Tpl:
            return env.internConst((*ca + *ca + *ca).mod(p));
          case Op::Inv:
            return env.internConst(ca->isZero() ? BigInt()
                                                : ca->invMod(p));
          case Op::Cvt:
          case Op::Icv:
          case Op::Nop:
            return -1;
        }
        return -1;
    }
};

/**
 * zerooneprop: algebraic identities around the ring units -- x+0, x-0,
 * x*1, x*0, x-x and 0-x. Recovers the literature's manual sparse
 * multiplication optimizations once line evaluations feed Fp^k
 * arithmetic with structural zeros/ones (Table 7 discussion).
 */
class ZeroOnePropPass final : public RewritePass
{
  public:
    std::string_view name() const override { return "zerooneprop"; }

  protected:
    i32
    simplify(RewriteEnv &env, Inst &inst) override
    {
        const int n = arity(inst.op);
        const BigInt *ca = n >= 1 ? env.constOf(inst.a) : nullptr;
        const BigInt *cb = n >= 2 ? env.constOf(inst.b) : nullptr;
        static const BigInt one(u64{1});

        switch (inst.op) {
          case Op::Add:
            if (ca && ca->isZero())
                return inst.b;
            if (cb && cb->isZero())
                return inst.a;
            return -1;
          case Op::Sub:
            if (cb && cb->isZero())
                return inst.a;
            if (inst.a == inst.b)
                return env.internConst(BigInt());
            if (ca && ca->isZero()) {
                inst.op = Op::Neg;
                inst.a = inst.b;
                inst.b = -1;
            }
            return -1;
          case Op::Mul:
            if ((ca && ca->isZero()) || (cb && cb->isZero()))
                return env.internConst(BigInt());
            if (ca && *ca == one)
                return inst.b;
            if (cb && *cb == one)
                return inst.a;
            return -1;
          default:
            return -1;
        }
    }
};

/**
 * strengthreduce: demote Long-unit multiplications to cheaper forms --
 * mul by 2/3/p-1 -> DBL/TPL/NEG, mul(x, x) -> SQR, add(x, x) -> DBL.
 */
class StrengthReducePass final : public RewritePass
{
  public:
    std::string_view name() const override { return "strengthreduce"; }

    void
    beginRun(OptContext &ctx) override
    {
        pm1_ = ctx.modulus() - BigInt(u64{1});
    }

  protected:
    void
    beginSweep(Module &m) override
    {
        pm1_ = m.p - BigInt(u64{1});
    }

    i32
    simplify(RewriteEnv &env, Inst &inst) override
    {
        const int n = arity(inst.op);
        const BigInt *ca = n >= 1 ? env.constOf(inst.a) : nullptr;
        const BigInt *cb = n >= 2 ? env.constOf(inst.b) : nullptr;
        static const BigInt two(u64{2});
        static const BigInt three(u64{3});

        switch (inst.op) {
          case Op::Add:
            if (inst.a == inst.b) {
                inst.op = Op::Dbl;
                inst.b = -1;
            }
            return -1;
          case Op::Mul: {
            auto reduce = [&](const BigInt &c, i32 other) {
                if (c == two) {
                    inst.op = Op::Dbl;
                    inst.a = other;
                    inst.b = -1;
                    return true;
                }
                if (c == three) {
                    inst.op = Op::Tpl;
                    inst.a = other;
                    inst.b = -1;
                    return true;
                }
                if (c == pm1_) {
                    inst.op = Op::Neg;
                    inst.a = other;
                    inst.b = -1;
                    return true;
                }
                return false;
            };
            if (ca && reduce(*ca, inst.b))
                return -1;
            if (cb && reduce(*cb, inst.a))
                return -1;
            if (inst.a == inst.b) {
                inst.op = Op::Sqr;
                inst.b = -1;
            }
            return -1;
          }
          default:
            return -1;
        }
    }

  private:
    BigInt pm1_; ///< p - 1, cached once per sweep/run
};

/**
 * gvn: global value numbering with commutativity canonicalization.
 *
 * Legacy engine: the table is rebuilt every sweep in program order, so
 * the leader of a key is its earliest alive occurrence. Worklist
 * engine: one persistent table for the whole run, validated lazily --
 * an entry whose instruction died or changed key is overwritten, and a
 * dirty instruction whose key now collides with a LATER leader takes
 * the leadership over (the later duplicate is elided), preserving the
 * earliest-occurrence invariant and hence byte-identical results.
 */
class GvnPass final : public RewritePass
{
  public:
    std::string_view name() const override { return "gvn"; }

    void
    beginRun(OptContext &) override
    {
        wl_.clear();
    }

    i32
    simplifyAt(OptContext &ctx, Inst &inst, size_t idx) override
    {
        const VnKey key = canonicalVnKey(inst);
        auto [it, inserted] =
            wl_.try_emplace(key, static_cast<i32>(idx));
        if (inserted)
            return -1;
        const size_t leader = static_cast<size_t>(it->second);
        if (leader == idx)
            return -1;
        if (!ctx.isAlive(leader) ||
            !(canonicalVnKey(ctx.instAt(leader)) == key)) {
            it->second = static_cast<i32>(idx); // stale entry
            return -1;
        }
        if (leader < idx)
            return ctx.instAt(leader).dst;
        // This instruction is the earlier occurrence: it takes the
        // leadership and the previous (later) holder is elided --
        // exactly what the reference sweep does when it reaches it.
        const i32 mine = inst.dst;
        it->second = static_cast<i32>(idx);
        ctx.elideInst(leader, mine);
        return -1;
    }

  protected:
    void beginSweep(Module &) override { vn_.clear(); }

    i32
    simplify(RewriteEnv &, Inst &inst) override
    {
        const VnKey key = canonicalVnKey(inst);
        auto it = vn_.find(key);
        if (it != vn_.end())
            return it->second;
        vn_.emplace(key, inst.dst);
        return -1;
    }

  private:
    std::unordered_map<VnKey, i32, VnKeyHash> vn_; ///< per sweep
    std::unordered_map<VnKey, i32, VnKeyHash> wl_; ///< per group run
};

/**
 * dce: backward liveness from the outputs; drops dead instructions and
 * now-unreferenced constant-pool entries. The worklist engine
 * implements this natively on its use-count table (OptContext::scanDce),
 * so no InstRewriter hook is exposed; this sweep is the reference.
 */
class DcePass final : public Pass
{
  public:
    std::string_view name() const override { return "dce"; }

    bool isFrontend() const override { return true; }

    bool
    run(CompilationContext &ctx) override
    {
        Module &m = ctx.module();
        std::vector<u8> live(static_cast<size_t>(m.numValues), 0);
        for (i32 out : m.outputs)
            live[static_cast<size_t>(out)] = 1;
        std::vector<Inst> kept;
        kept.reserve(m.body.size());
        for (size_t i = m.body.size(); i-- > 0;) {
            const Inst &inst = m.body[i];
            if (!live[static_cast<size_t>(inst.dst)])
                continue;
            forEachOperand(inst, [&](const i32 &x) {
                live[static_cast<size_t>(x)] = 1;
            });
            kept.push_back(inst);
        }
        std::reverse(kept.begin(), kept.end());

        std::vector<ConstEntry> usedConsts;
        for (const auto &c : m.constants) {
            if (live[static_cast<size_t>(c.id)])
                usedConsts.push_back(c);
        }

        const bool changed = kept.size() != m.body.size() ||
                             usedConsts.size() != m.constants.size();
        m.body = std::move(kept);
        m.constants = std::move(usedConsts);
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
makeFrontendPass(const std::string &name)
{
    if (name == "constfold")
        return std::make_unique<ConstFoldPass>();
    if (name == "zerooneprop")
        return std::make_unique<ZeroOnePropPass>();
    if (name == "strengthreduce")
        return std::make_unique<StrengthReducePass>();
    if (name == "gvn")
        return std::make_unique<GvnPass>();
    if (name == "dce")
        return std::make_unique<DcePass>();
    return nullptr;
}

OptStats
optimizeModule(Module &m)
{
    return runFrontendPipeline(m, frontendPassNames());
}

} // namespace finesse
