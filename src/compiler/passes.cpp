/**
 * @file
 * The five IROpt front-end passes as discrete Pass objects over a
 * shared rewrite engine: constant folding, zero/one propagation,
 * strength reduction, global value numbering and dead code
 * elimination. The PassManager (compiler/pipeline.cpp) iterates them
 * to a fixpoint; optimizeModule() is the classic one-call wrapper.
 */
#include "compiler/passes.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "compiler/pipeline.h"
#include "support/common.h"

namespace finesse {

namespace {

/** Hash key for value numbering. */
struct VnKey
{
    Op op;
    i32 a, b;

    bool
    operator==(const VnKey &o) const
    {
        return op == o.op && a == o.a && b == o.b;
    }
};

struct VnKeyHash
{
    size_t
    operator()(const VnKey &k) const
    {
        return std::hash<u64>()((static_cast<u64>(k.op) << 56) ^
                                (static_cast<u64>(static_cast<u32>(k.a))
                                 << 28) ^
                                static_cast<u64>(static_cast<u32>(k.b)));
    }
};

/**
 * Shared forward-rewrite engine. One sweep walks the body in order,
 * resolves operands through the replacements made earlier in the same
 * sweep, and asks the concrete pass to simplify each instruction:
 * a non-negative return elides the instruction in favor of an existing
 * value id; simplify() may also rewrite the op in place (strength
 * reduction). Constant tracking and interning are provided for the
 * passes that fold values.
 */
class RewritePass : public Pass
{
  public:
    bool isFrontend() const override { return true; }

    bool
    run(CompilationContext &ctx) override
    {
        Module &m = ctx.module();
        m_ = &m;
        rep_.assign(static_cast<size_t>(m.numValues), -1);
        constVal_.clear();
        constIds_.clear();
        for (const auto &c : m.constants) {
            constVal_[c.id] = c.value;
            constIds_[c.value] = c.id;
        }
        beginSweep(m);

        bool changed = false;
        std::vector<Inst> newBody;
        newBody.reserve(m.body.size());
        for (const Inst &raw : m.body) {
            Inst inst = raw;
            if (arity(inst.op) >= 1)
                inst.a = resolve(inst.a);
            if (arity(inst.op) >= 2)
                inst.b = resolve(inst.b);

            const i32 replacement = simplify(inst);
            if (replacement >= 0) {
                rep_[inst.dst] = replacement;
                changed = true;
                continue;
            }
            changed |= inst.op != raw.op;
            newBody.push_back(inst);
        }
        for (auto &out : m.outputs)
            out = resolve(out);
        m.body = std::move(newBody);
        m_ = nullptr;
        return changed;
    }

  protected:
    /** Per-sweep setup hook (e.g. clearing the GVN table). */
    virtual void beginSweep(Module &) {}

    /**
     * Try to simplify @p inst (which may be rewritten in place).
     * Returns a replacement value id when the instruction can be
     * elided entirely, -1 otherwise.
     */
    virtual i32 simplify(Inst &inst) = 0;

    i32
    resolve(i32 id) const
    {
        while (id >= 0 && rep_[static_cast<size_t>(id)] >= 0)
            id = rep_[static_cast<size_t>(id)];
        return id;
    }

    bool
    constOf(i32 id, BigInt &out) const
    {
        auto it = constVal_.find(id);
        if (it == constVal_.end())
            return false;
        out = it->second;
        return true;
    }

    /** Intern @p v into the constant pool, reusing an existing id. */
    i32
    internConst(const BigInt &v)
    {
        auto it = constIds_.find(v);
        if (it != constIds_.end())
            return it->second;
        const i32 id = m_->numValues++;
        rep_.push_back(-1);
        m_->constants.push_back({id, v});
        constVal_[id] = v;
        constIds_[v] = id;
        return id;
    }

    const BigInt &modulus() const { return m_->p; }

  private:
    Module *m_ = nullptr;
    std::vector<i32> rep_;
    std::unordered_map<i32, BigInt> constVal_;
    std::map<BigInt, i32> constIds_;
};

/** constfold: evaluate instructions whose operands are all constant. */
class ConstFoldPass final : public RewritePass
{
  public:
    const std::string &
    name() const override
    {
        static const std::string n = "constfold";
        return n;
    }

  protected:
    i32
    simplify(Inst &inst) override
    {
        const BigInt &p = modulus();
        BigInt ca, cb;
        const bool aConst = arity(inst.op) >= 1 && constOf(inst.a, ca);
        const bool bConst = arity(inst.op) >= 2 && constOf(inst.b, cb);
        if (!aConst || (arity(inst.op) >= 2 && !bConst))
            return -1;

        switch (inst.op) {
          case Op::Add:
            return internConst((ca + cb).mod(p));
          case Op::Sub:
            return internConst((ca - cb).mod(p));
          case Op::Mul:
            return internConst((ca * cb).mod(p));
          case Op::Sqr:
            return internConst((ca * ca).mod(p));
          case Op::Neg:
            return internConst((-ca).mod(p));
          case Op::Dbl:
            return internConst((ca + ca).mod(p));
          case Op::Tpl:
            return internConst((ca + ca + ca).mod(p));
          case Op::Inv:
            return internConst(ca.isZero() ? BigInt() : ca.invMod(p));
          case Op::Cvt:
          case Op::Icv:
          case Op::Nop:
            return -1;
        }
        return -1;
    }
};

/**
 * zerooneprop: algebraic identities around the ring units -- x+0, x-0,
 * x*1, x*0, x-x and 0-x. Recovers the literature's manual sparse
 * multiplication optimizations once line evaluations feed Fp^k
 * arithmetic with structural zeros/ones (Table 7 discussion).
 */
class ZeroOnePropPass final : public RewritePass
{
  public:
    const std::string &
    name() const override
    {
        static const std::string n = "zerooneprop";
        return n;
    }

  protected:
    i32
    simplify(Inst &inst) override
    {
        BigInt ca, cb;
        const bool aConst = arity(inst.op) >= 1 && constOf(inst.a, ca);
        const bool bConst = arity(inst.op) >= 2 && constOf(inst.b, cb);
        const BigInt one(u64{1});

        switch (inst.op) {
          case Op::Add:
            if (aConst && ca.isZero())
                return inst.b;
            if (bConst && cb.isZero())
                return inst.a;
            return -1;
          case Op::Sub:
            if (bConst && cb.isZero())
                return inst.a;
            if (inst.a == inst.b)
                return internConst(BigInt());
            if (aConst && ca.isZero()) {
                inst.op = Op::Neg;
                inst.a = inst.b;
                inst.b = -1;
            }
            return -1;
          case Op::Mul:
            if ((aConst && ca.isZero()) || (bConst && cb.isZero()))
                return internConst(BigInt());
            if (aConst && ca == one)
                return inst.b;
            if (bConst && cb == one)
                return inst.a;
            return -1;
          default:
            return -1;
        }
    }
};

/**
 * strengthreduce: demote Long-unit multiplications to cheaper forms --
 * mul by 2/3/p-1 -> DBL/TPL/NEG, mul(x, x) -> SQR, add(x, x) -> DBL.
 */
class StrengthReducePass final : public RewritePass
{
  public:
    const std::string &
    name() const override
    {
        static const std::string n = "strengthreduce";
        return n;
    }

  protected:
    i32
    simplify(Inst &inst) override
    {
        BigInt ca, cb;
        const bool aConst = arity(inst.op) >= 1 && constOf(inst.a, ca);
        const bool bConst = arity(inst.op) >= 2 && constOf(inst.b, cb);

        switch (inst.op) {
          case Op::Add:
            if (inst.a == inst.b) {
                inst.op = Op::Dbl;
                inst.b = -1;
            }
            return -1;
          case Op::Mul: {
            const BigInt pm1 = modulus() - BigInt(u64{1});
            auto reduce = [&](const BigInt &c, i32 other) {
                if (c == BigInt(u64{2})) {
                    inst.op = Op::Dbl;
                    inst.a = other;
                    inst.b = -1;
                    return true;
                }
                if (c == BigInt(u64{3})) {
                    inst.op = Op::Tpl;
                    inst.a = other;
                    inst.b = -1;
                    return true;
                }
                if (c == pm1) {
                    inst.op = Op::Neg;
                    inst.a = other;
                    inst.b = -1;
                    return true;
                }
                return false;
            };
            if (aConst && reduce(ca, inst.b))
                return -1;
            if (bConst && reduce(cb, inst.a))
                return -1;
            if (inst.a == inst.b) {
                inst.op = Op::Sqr;
                inst.b = -1;
            }
            return -1;
          }
          default:
            return -1;
        }
    }
};

/** gvn: global value numbering with commutativity canonicalization. */
class GvnPass final : public RewritePass
{
  public:
    const std::string &
    name() const override
    {
        static const std::string n = "gvn";
        return n;
    }

  protected:
    void beginSweep(Module &) override { vn_.clear(); }

    i32
    simplify(Inst &inst) override
    {
        VnKey key{inst.op, inst.a, inst.b};
        if (inst.op == Op::Add || inst.op == Op::Mul) {
            if (key.a > key.b)
                std::swap(key.a, key.b);
        }
        auto it = vn_.find(key);
        if (it != vn_.end())
            return it->second;
        vn_.emplace(key, inst.dst);
        return -1;
    }

  private:
    std::unordered_map<VnKey, i32, VnKeyHash> vn_;
};

/**
 * dce: backward liveness from the outputs; drops dead instructions and
 * now-unreferenced constant-pool entries.
 */
class DcePass final : public Pass
{
  public:
    const std::string &
    name() const override
    {
        static const std::string n = "dce";
        return n;
    }

    bool isFrontend() const override { return true; }

    bool
    run(CompilationContext &ctx) override
    {
        Module &m = ctx.module();
        std::vector<u8> live(static_cast<size_t>(m.numValues), 0);
        for (i32 out : m.outputs)
            live[static_cast<size_t>(out)] = 1;
        std::vector<Inst> kept;
        kept.reserve(m.body.size());
        for (size_t i = m.body.size(); i-- > 0;) {
            const Inst &inst = m.body[i];
            if (!live[static_cast<size_t>(inst.dst)])
                continue;
            if (arity(inst.op) >= 1)
                live[static_cast<size_t>(inst.a)] = 1;
            if (arity(inst.op) >= 2)
                live[static_cast<size_t>(inst.b)] = 1;
            kept.push_back(inst);
        }
        std::reverse(kept.begin(), kept.end());

        std::vector<ConstEntry> usedConsts;
        for (const auto &c : m.constants) {
            if (live[static_cast<size_t>(c.id)])
                usedConsts.push_back(c);
        }

        const bool changed = kept.size() != m.body.size() ||
                             usedConsts.size() != m.constants.size();
        m.body = std::move(kept);
        m.constants = std::move(usedConsts);
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
makeFrontendPass(const std::string &name)
{
    if (name == "constfold")
        return std::make_unique<ConstFoldPass>();
    if (name == "zerooneprop")
        return std::make_unique<ZeroOnePropPass>();
    if (name == "strengthreduce")
        return std::make_unique<StrengthReducePass>();
    if (name == "gvn")
        return std::make_unique<GvnPass>();
    if (name == "dce")
        return std::make_unique<DcePass>();
    return nullptr;
}

OptStats
optimizeModule(Module &m)
{
    return runFrontendPipeline(m, frontendPassNames());
}

} // namespace finesse
