/**
 * @file
 * IROpt implementation. One fused forward pass (constant folding,
 * identity/zero rules, strength reduction, GVN) followed by backward
 * DCE, iterated to a fixpoint.
 */
#include "compiler/passes.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "support/common.h"

namespace finesse {

namespace {

/** Hash key for value numbering. */
struct VnKey
{
    Op op;
    i32 a, b;

    bool
    operator==(const VnKey &o) const
    {
        return op == o.op && a == o.a && b == o.b;
    }
};

struct VnKeyHash
{
    size_t
    operator()(const VnKey &k) const
    {
        return std::hash<u64>()((static_cast<u64>(k.op) << 56) ^
                                (static_cast<u64>(static_cast<u32>(k.a))
                                 << 28) ^
                                static_cast<u64>(static_cast<u32>(k.b)));
    }
};

class Optimizer
{
  public:
    explicit Optimizer(Module &m) : m_(m) {}

    bool
    runOnce()
    {
        rep_.assign(m_.numValues, -1);
        constVal_.clear();
        constIds_.clear();
        vn_.clear();
        for (const auto &c : m_.constants) {
            constVal_[c.id] = c.value;
            constIds_[c.value] = c.id;
        }

        std::vector<Inst> newBody;
        newBody.reserve(m_.body.size());
        for (const Inst &raw : m_.body) {
            Inst inst = raw;
            if (arity(inst.op) >= 1)
                inst.a = resolve(inst.a);
            if (arity(inst.op) >= 2)
                inst.b = resolve(inst.b);

            const i32 replacement = simplify(inst);
            if (replacement >= 0) {
                rep_[inst.dst] = replacement;
                continue;
            }
            // GVN with commutativity canonicalization.
            VnKey key{inst.op, inst.a, inst.b};
            if (inst.op == Op::Add || inst.op == Op::Mul) {
                if (key.a > key.b)
                    std::swap(key.a, key.b);
            }
            auto it = vn_.find(key);
            if (it != vn_.end()) {
                rep_[inst.dst] = it->second;
                continue;
            }
            vn_.emplace(key, inst.dst);
            newBody.push_back(inst);
        }

        for (auto &out : m_.outputs)
            out = resolve(out);

        // Dead code elimination (backward liveness from outputs).
        std::vector<u8> live(m_.numValues, 0);
        for (i32 out : m_.outputs)
            live[out] = 1;
        std::vector<Inst> kept;
        kept.reserve(newBody.size());
        for (size_t i = newBody.size(); i-- > 0;) {
            const Inst &inst = newBody[i];
            if (!live[inst.dst])
                continue;
            if (arity(inst.op) >= 1)
                live[inst.a] = 1;
            if (arity(inst.op) >= 2)
                live[inst.b] = 1;
            kept.push_back(inst);
        }
        std::reverse(kept.begin(), kept.end());

        // Drop now-unreferenced constants from the pool.
        std::vector<ConstEntry> usedConsts;
        for (const auto &c : m_.constants) {
            if (live[c.id])
                usedConsts.push_back(c);
        }

        const bool changed = kept.size() != m_.body.size() ||
                             usedConsts.size() != m_.constants.size();
        m_.body = std::move(kept);
        m_.constants = std::move(usedConsts);
        return changed;
    }

  private:
    i32
    resolve(i32 id)
    {
        while (id >= 0 && rep_[id] >= 0)
            id = rep_[id];
        return id;
    }

    bool
    constOf(i32 id, BigInt &out) const
    {
        auto it = constVal_.find(id);
        if (it == constVal_.end())
            return false;
        out = it->second;
        return true;
    }

    i32
    internConst(const BigInt &v)
    {
        auto it = constIds_.find(v);
        if (it != constIds_.end())
            return it->second;
        const i32 id = m_.numValues++;
        rep_.push_back(-1);
        m_.constants.push_back({id, v});
        constVal_[id] = v;
        constIds_[v] = id;
        return id;
    }

    /**
     * Try to simplify @p inst (which may be rewritten in place for
     * strength reduction). Returns a replacement value id when the
     * instruction can be elided entirely, -1 otherwise.
     */
    i32
    simplify(Inst &inst)
    {
        const BigInt &p = m_.p;
        BigInt ca, cb;
        const bool aConst = arity(inst.op) >= 1 && constOf(inst.a, ca);
        const bool bConst = arity(inst.op) >= 2 && constOf(inst.b, cb);

        switch (inst.op) {
          case Op::Add:
            if (aConst && ca.isZero())
                return inst.b;
            if (bConst && cb.isZero())
                return inst.a;
            if (aConst && bConst)
                return internConst((ca + cb).mod(p));
            if (inst.a == inst.b) {
                inst.op = Op::Dbl;
                inst.b = -1;
            }
            return -1;
          case Op::Sub:
            if (bConst && cb.isZero())
                return inst.a;
            if (inst.a == inst.b)
                return internConst(BigInt());
            if (aConst && bConst)
                return internConst((ca - cb).mod(p));
            if (aConst && ca.isZero()) {
                inst.op = Op::Neg;
                inst.a = inst.b;
                inst.b = -1;
            }
            return -1;
          case Op::Mul: {
            if ((aConst && ca.isZero()) || (bConst && cb.isZero()))
                return internConst(BigInt());
            if (aConst && ca == BigInt(u64{1}))
                return inst.b;
            if (bConst && cb == BigInt(u64{1}))
                return inst.a;
            if (aConst && bConst)
                return internConst((ca * cb).mod(p));
            // Strength reduction on small constants.
            const BigInt pm1 = p - BigInt(u64{1});
            auto strengthReduce = [&](const BigInt &c, i32 other) {
                if (c == BigInt(u64{2})) {
                    inst.op = Op::Dbl;
                    inst.a = other;
                    inst.b = -1;
                    return true;
                }
                if (c == BigInt(u64{3})) {
                    inst.op = Op::Tpl;
                    inst.a = other;
                    inst.b = -1;
                    return true;
                }
                if (c == pm1) {
                    inst.op = Op::Neg;
                    inst.a = other;
                    inst.b = -1;
                    return true;
                }
                return false;
            };
            if (aConst && strengthReduce(ca, inst.b))
                return -1;
            if (bConst && strengthReduce(cb, inst.a))
                return -1;
            if (inst.a == inst.b) {
                inst.op = Op::Sqr;
                inst.b = -1;
            }
            return -1;
          }
          case Op::Sqr:
            if (aConst)
                return internConst((ca * ca).mod(p));
            return -1;
          case Op::Neg:
            if (aConst)
                return internConst((-ca).mod(p));
            return -1;
          case Op::Dbl:
            if (aConst)
                return internConst((ca + ca).mod(p));
            return -1;
          case Op::Tpl:
            if (aConst)
                return internConst((ca + ca + ca).mod(p));
            return -1;
          case Op::Inv:
            if (aConst)
                return internConst(ca.isZero() ? BigInt()
                                               : ca.invMod(p));
            return -1;
          case Op::Cvt:
          case Op::Icv:
          case Op::Nop:
            return -1;
        }
        return -1;
    }

    Module &m_;
    std::vector<i32> rep_;
    std::unordered_map<i32, BigInt> constVal_;
    std::map<BigInt, i32> constIds_;
    std::unordered_map<VnKey, i32, VnKeyHash> vn_;
};

} // namespace

OptStats
optimizeModule(Module &m)
{
    OptStats stats;
    stats.instrsBefore = m.body.size();
    Optimizer opt(m);
    for (int iter = 0; iter < 8; ++iter) {
        ++stats.iterations;
        if (!opt.runOnce())
            break;
    }
    stats.instrsAfter = m.body.size();
    m.verify();
    return stats;
}

} // namespace finesse
