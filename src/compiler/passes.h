/**
 * @file
 * IROpt: SSA data-flow optimization passes (Sec. 3.5, "IROpt").
 *  - constant propagation / folding (with the Frobenius constant tables
 *    already interned by CodeGen),
 *  - zero/one propagation, which automatically recovers the manual
 *    "dense x sparse" Fp^k multiplication optimizations of the
 *    literature (Table 7 discussion),
 *  - strength reduction (mul-by-small-constant -> DBL/TPL/NEG,
 *    mul(a, a) -> SQR),
 *  - global value numbering using commutativity on finite fields,
 *  - dead code elimination.
 * Passes iterate to a fixpoint.
 */
#ifndef FINESSE_COMPILER_PASSES_H_
#define FINESSE_COMPILER_PASSES_H_

#include "ir/ir.h"

namespace finesse {

/** Result counters for reporting (Table 7). */
struct OptStats
{
    size_t instrsBefore = 0;
    size_t instrsAfter = 0;
    int iterations = 0;

    double
    reductionPct() const
    {
        if (instrsBefore == 0)
            return 0.0;
        return 100.0 *
               (static_cast<double>(instrsBefore) -
                static_cast<double>(instrsAfter)) /
               static_cast<double>(instrsBefore);
    }
};

/** Run the full IROpt pipeline in place. */
OptStats optimizeModule(Module &m);

} // namespace finesse

#endif // FINESSE_COMPILER_PASSES_H_
