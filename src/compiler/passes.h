/**
 * @file
 * IROpt: SSA data-flow optimization passes (Sec. 3.5, "IROpt").
 *  - constant propagation / folding (with the Frobenius constant tables
 *    already interned by CodeGen),
 *  - zero/one propagation, which automatically recovers the manual
 *    "dense x sparse" Fp^k multiplication optimizations of the
 *    literature (Table 7 discussion),
 *  - strength reduction (mul-by-small-constant -> DBL/TPL/NEG,
 *    mul(a, a) -> SQR),
 *  - global value numbering using commutativity on finite fields,
 *  - dead code elimination.
 *
 * Each optimization is a discrete Pass (see compiler/pipeline.h)
 * registered in a PassManager; the front-end group iterates to a
 * fixpoint. This header holds the per-pass and aggregate statistics
 * (Table 7) plus the classic one-call entry point.
 */
#ifndef FINESSE_COMPILER_PASSES_H_
#define FINESSE_COMPILER_PASSES_H_

#include <string>
#include <string_view>
#include <vector>

#include "ir/ir.h"

namespace finesse {

/** Per-pass accounting recorded by the PassManager. */
struct PassStats
{
    std::string name;
    int invocations = 0;       ///< times the pass ran (fixpoint sweeps)
    i64 instrsRemoved = 0;     ///< total instruction delta across sweeps
    double seconds = 0.0;      ///< wall time spent inside the pass
    bool frontend = true;      ///< IROpt pass vs backend stage
};

/** Result counters for reporting (Table 7). */
struct OptStats
{
    size_t instrsBefore = 0;
    size_t instrsAfter = 0;
    int iterations = 0;        ///< front-end fixpoint sweeps
    double seconds = 0.0;      ///< wall time across all passes
    std::vector<PassStats> passes; ///< pipeline order, front end first

    double
    reductionPct() const
    {
        if (instrsBefore == 0)
            return 0.0;
        return 100.0 *
               (static_cast<double>(instrsBefore) -
                static_cast<double>(instrsAfter)) /
               static_cast<double>(instrsBefore);
    }

    /** Share of the input program removed by one named pass. */
    double
    passReductionPct(std::string_view name) const
    {
        const PassStats *ps = pass(name);
        if (!ps || instrsBefore == 0)
            return 0.0;
        return 100.0 * static_cast<double>(ps->instrsRemoved) /
               static_cast<double>(instrsBefore);
    }

    /** Stats entry for a named pass, nullptr when it never ran. */
    const PassStats *
    pass(std::string_view name) const
    {
        for (const PassStats &ps : passes) {
            if (ps.name == name)
                return &ps;
        }
        return nullptr;
    }

    /** Sum of per-pass instruction deltas (== before - after). */
    i64
    totalRemoved() const
    {
        i64 sum = 0;
        for (const PassStats &ps : passes)
            sum += ps.instrsRemoved;
        return sum;
    }
};

/**
 * Run the full IROpt pipeline in place (ConstFold, ZeroOneProp,
 * StrengthReduce, GVN, DCE iterated to a fixpoint). Equivalent to
 * running the standard front-end PassManager of compiler/pipeline.h.
 */
OptStats optimizeModule(Module &m);

} // namespace finesse

#endif // FINESSE_COMPILER_PASSES_H_
