/**
 * @file
 * PassManager implementation plus the four backend stages (BankAlloc,
 * PackSched, RegAlloc, encode) as passes over the CompilationContext.
 */
#include "compiler/pipeline.h"

#include <chrono>

#include "compiler/optcontext.h"
#include "support/common.h"

namespace finesse {

namespace {

using Clock = std::chrono::steady_clock;

/** bankalloc: residual (modulo) value -> register-bank assignment. */
class BankAllocPass final : public Pass
{
  public:
    std::string_view name() const override { return "bankalloc"; }

    bool isFrontend() const override { return false; }

    bool
    run(CompilationContext &ctx) override
    {
        ctx.prog.banks = assignBanks(ctx.module(), ctx.prog.hw);
        ctx.hasBanks = true;
        return true;
    }
};

/** packsched: Algorithm 2 list scheduling (or program order). */
class PackSchedPass final : public Pass
{
  public:
    std::string_view name() const override { return "packsched"; }

    bool isFrontend() const override { return false; }

    bool
    run(CompilationContext &ctx) override
    {
        FINESSE_CHECK(ctx.hasBanks,
                      "packsched requires bankalloc in the pipeline");
        ctx.prog.schedule = scheduleModule(ctx.module(), ctx.prog.banks,
                                           ctx.prog.hw,
                                           ctx.listSchedule);
        ctx.hasSchedule = true;
        return true;
    }
};

/** regalloc: linear-scan allocation in schedule order. */
class RegAllocPass final : public Pass
{
  public:
    std::string_view name() const override { return "regalloc"; }

    bool isFrontend() const override { return false; }

    bool
    run(CompilationContext &ctx) override
    {
        FINESSE_CHECK(ctx.hasBanks && ctx.hasSchedule,
                      "regalloc requires bankalloc + packsched");
        ctx.prog.regs = allocateRegisters(ctx.module(), ctx.prog.banks,
                                          ctx.prog.schedule);
        ctx.hasRegs = true;
        return true;
    }
};

/** encode: ASM + Link into the parameterized binary format. */
class EncodePass final : public Pass
{
  public:
    std::string_view name() const override { return "encode"; }

    bool isFrontend() const override { return false; }

    bool
    run(CompilationContext &ctx) override
    {
        FINESSE_CHECK(ctx.hasBanks && ctx.hasSchedule && ctx.hasRegs,
                      "encode requires the full backend prefix");
        ctx.binary = encodeProgram(ctx.prog);
        ctx.hasBinary = true;
        return true;
    }
};

} // namespace

const std::vector<std::string> &
frontendPassNames()
{
    static const std::vector<std::string> names = {
        "constfold", "zerooneprop", "strengthreduce", "gvn", "dce"};
    return names;
}

const std::vector<std::string> &
backendPassNames()
{
    static const std::vector<std::string> names = {
        "bankalloc", "packsched", "regalloc", "encode"};
    return names;
}

bool
isFrontendPassName(const std::string &name)
{
    for (const std::string &n : frontendPassNames()) {
        if (n == name)
            return true;
    }
    return false;
}

bool
isBackendPassName(const std::string &name)
{
    for (const std::string &n : backendPassNames()) {
        if (n == name)
            return true;
    }
    return false;
}

std::unique_ptr<Pass>
makeBackendPass(const std::string &name)
{
    if (name == "bankalloc")
        return std::make_unique<BankAllocPass>();
    if (name == "packsched")
        return std::make_unique<PackSchedPass>();
    if (name == "regalloc")
        return std::make_unique<RegAllocPass>();
    if (name == "encode")
        return std::make_unique<EncodePass>();
    return nullptr;
}

std::unique_ptr<Pass>
makePass(const std::string &name)
{
    if (auto p = makeFrontendPass(name))
        return p;
    if (auto p = makeBackendPass(name))
        return p;
    fatal("unknown compiler pass: '", name, "' (known: ",
          "constfold, zerooneprop, strengthreduce, gvn, dce, ",
          "bankalloc, packsched, regalloc, encode)");
}

std::vector<std::string>
parsePassList(const std::string &csv)
{
    std::vector<std::string> names;
    std::string cur;
    auto flush = [&] {
        if (!cur.empty()) {
            makePass(cur); // validates the name
            names.push_back(cur);
            cur.clear();
        }
    };
    for (char c : csv) {
        if (c == ',') {
            flush();
        } else if (c != ' ' && c != '\t') {
            cur += c;
        }
    }
    flush();
    return names;
}

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
    return *this;
}

PassManager &
PassManager::add(const std::string &name)
{
    return add(makePass(name));
}

std::vector<std::string>
PassManager::names() const
{
    std::vector<std::string> out;
    out.reserve(passes_.size());
    for (const auto &p : passes_)
        out.emplace_back(p->name());
    return out;
}

PassStats &
ensurePassStats(OptStats &stats, std::string_view name, bool frontend)
{
    for (PassStats &ps : stats.passes) {
        if (ps.name == name)
            return ps;
    }
    PassStats ps;
    ps.name = name;
    ps.frontend = frontend;
    stats.passes.push_back(std::move(ps));
    return stats.passes.back();
}

bool
PassManager::invoke(Pass &pass, CompilationContext &ctx)
{
    PassStats *entry =
        &ensurePassStats(ctx.stats, pass.name(), pass.isFrontend());

    const size_t before = ctx.module().size();
    const auto start = Clock::now();
    const bool changed = pass.run(ctx);
    const double dt = secondsSince(start);
    const size_t after = ctx.module().size();

    entry->invocations += 1;
    entry->instrsRemoved +=
        static_cast<i64>(before) - static_cast<i64>(after);
    entry->seconds += dt;
    ctx.stats.seconds += dt;
    return changed;
}

void
PassManager::run(CompilationContext &ctx)
{
    runImpl(ctx, /*worklist=*/true);
}

void
PassManager::runSweep(CompilationContext &ctx)
{
    runImpl(ctx, /*worklist=*/false);
}

void
PassManager::runImpl(CompilationContext &ctx, bool worklist)
{
    size_t i = 0;
    while (i < passes_.size()) {
        if (!passes_[i]->isFrontend()) {
            invoke(*passes_[i], ctx);
            ++i;
            continue;
        }
        // Contiguous front-end group: iterate to a fixpoint.
        size_t j = i;
        while (j < passes_.size() && passes_[j]->isFrontend())
            ++j;
        if (worklist) {
            std::vector<Pass *> group;
            group.reserve(j - i);
            for (size_t k = i; k < j; ++k)
                group.push_back(passes_[k].get());
            runFrontendWorklist(ctx, group);
        } else {
            for (int iter = 0; iter < kMaxFixpointIters; ++iter) {
                ++ctx.stats.iterations;
                bool changed = false;
                for (size_t k = i; k < j; ++k)
                    changed |= invoke(*passes_[k], ctx);
                if (!changed)
                    break;
            }
        }
        i = j;
    }
}

PassManager
PassManager::standardFrontend()
{
    PassManager pm;
    for (const std::string &n : frontendPassNames())
        pm.add(n);
    return pm;
}

PassManager
PassManager::standardBackend()
{
    PassManager pm;
    for (const std::string &n : backendPassNames())
        pm.add(n);
    return pm;
}

PassManager
PassManager::fromNames(const std::vector<std::string> &names)
{
    PassManager pm;
    for (const std::string &n : names)
        pm.add(n);
    return pm;
}

namespace {

OptStats
runFrontendImpl(Module &m, const std::vector<std::string> &names,
                bool worklist)
{
    CompilationContext ctx;
    ctx.prog.module = std::move(m);
    ctx.stats.instrsBefore = ctx.module().size();
    if (!names.empty()) {
        for (const std::string &n : names) {
            FINESSE_CHECK(isFrontendPassName(n),
                          "not a front-end pass: ", n);
        }
        PassManager pm = PassManager::fromNames(names);
        if (worklist)
            pm.run(ctx);
        else
            pm.runSweep(ctx);
        ctx.module().verify();
    }
    ctx.stats.instrsAfter = ctx.module().size();
    m = std::move(ctx.prog.module);
    return ctx.stats;
}

} // namespace

OptStats
runFrontendPipeline(Module &m, const std::vector<std::string> &names)
{
    return runFrontendImpl(m, names, /*worklist=*/true);
}

OptStats
runFrontendPipelineSweep(Module &m,
                         const std::vector<std::string> &names)
{
    return runFrontendImpl(m, names, /*worklist=*/false);
}

} // namespace finesse
