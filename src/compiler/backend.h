/**
 * @file
 * Compiler backend stages (Sec. 3.5): BankAlloc, PackSched (Algorithm 2
 * with issue-slot affinity), RegAlloc, and the compiled-program
 * container handed to the encoder and the simulators.
 */
#ifndef FINESSE_COMPILER_BACKEND_H_
#define FINESSE_COMPILER_BACKEND_H_

#include <vector>

#include "hwmodel/pipeline.h"
#include "ir/ir.h"

namespace finesse {

/** Value -> register bank assignment. */
struct BankAssignment
{
    std::vector<i32> bankOf; ///< per value id
    int numBanks = 1;

    bool operator==(const BankAssignment &) const = default;
};

/**
 * Residual (modulo) bank assignment: the paper's baseline strategy.
 */
BankAssignment assignBanks(const Module &m, const PipelineModel &hw);

/** One issue slot: up to issueWidth instruction indexes. */
struct Bundle
{
    std::vector<i32> instIdx; ///< indexes into Module::body

    bool operator==(const Bundle &) const = default;
};

/** Static schedule: ordered bundles plus estimated timing. */
struct Schedule
{
    std::vector<Bundle> bundles;
    std::vector<i64> issueCycle;   ///< per body index, scheduler estimate
    i64 estimatedCycles = 0;       ///< completion estimate
    size_t numInstrs = 0;

    double
    estimatedIpc() const
    {
        return estimatedCycles
                   ? static_cast<double>(numInstrs) /
                         static_cast<double>(estimatedCycles)
                   : 0.0;
    }

    bool operator==(const Schedule &) const = default;
};

/**
 * PackSched. When @p useListScheduling is false the schedule is plain
 * program order (one instruction per bundle): the "Init" baseline.
 * Otherwise: top-down list scheduling over the dependence DAG with
 * issue-slot affinity ordering and greedy constraint-checked packing
 * (Algorithm 2). Runs on the dense batched engine
 * (compiler/backendprep.h) with a per-call prep/scratch; sweeps that
 * evaluate many hardware points against one trace should build the
 * TracePrep once and call the prep overload directly.
 */
Schedule scheduleModule(const Module &m, const BankAssignment &banks,
                        const PipelineModel &hw, bool useListScheduling);

/**
 * Reference oracle: the legacy Module-walking scheduler (per-call
 * dependence-graph rebuild, ordered-map LegacyPortTracker). Kept
 * byte-identical to scheduleModule by the identity tests
 * (tests/test_backend_props.cpp) and bench/fig_backend.
 */
Schedule scheduleModuleReference(const Module &m,
                                 const BankAssignment &banks,
                                 const PipelineModel &hw,
                                 bool useListScheduling);

/** Register assignment within banks. */
struct RegAssignment
{
    std::vector<i32> regOf;          ///< per value id (index within bank)
    std::vector<i32> maxRegsPerBank; ///< high-water mark per bank

    i32
    maxRegs() const
    {
        i32 m = 0;
        for (i32 v : maxRegsPerBank)
            m = std::max(m, v);
        return m;
    }

    bool operator==(const RegAssignment &) const = default;
};

/**
 * RegAlloc: linear-scan (liveness-interval) allocation in schedule
 * order with per-bank free lists. Constants are pinned for the whole
 * program (they are preloaded into DMem).
 */
RegAssignment allocateRegisters(const Module &m, const BankAssignment &banks,
                                const Schedule &sched);

/** Everything the encoder/simulators need about one compilation. */
struct CompiledProgram
{
    Module module;
    BankAssignment banks;
    Schedule schedule;
    RegAssignment regs;
    PipelineModel hw;
    double compileSeconds = 0.0;
};

} // namespace finesse

#endif // FINESSE_COMPILER_BACKEND_H_
