/**
 * @file
 * Batched backend engine implementation: TracePrep construction and
 * the allocation-free scheduling / register-allocation / layout run
 * over a shared trace. Mirrors the legacy reference implementations in
 * backend.cpp line for line where scheduling decisions are made -- the
 * identity tests and bench/fig_backend enforce byte-equality.
 */
#include "compiler/backendprep.h"

#include <algorithm>
#include <chrono>

#include "isa/encode.h"

namespace finesse {

TracePrep
buildTracePrep(const Module &m)
{
    TracePrep prep;
    const size_t n = m.body.size();
    prep.numValues = m.numValues;
    prep.numInstrs = n;

    prep.defInst.assign(static_cast<size_t>(m.numValues), -1);
    for (size_t i = 0; i < n; ++i)
        prep.defInst[static_cast<size_t>(m.body[i].dst)] =
            static_cast<i32>(i);

    prep.deps.assign(n, 0);
    prep.unit.resize(n);
    prep.numReads.resize(n);
    prep.userStart.assign(static_cast<size_t>(m.numValues) + 1, 0);
    for (size_t i = 0; i < n; ++i) {
        const Inst &inst = m.body[i];
        const UnitClass u = unitOf(inst.op);
        prep.unit[i] = static_cast<u8>(u);
        prep.numReads[i] = static_cast<u8>(arity(inst.op));
        prep.mulInstrs += u == UnitClass::Mul;
        prep.linInstrs += u == UnitClass::Linear;
        if (arity(inst.op) >= 1 && prep.defInst[inst.a] >= 0) {
            prep.deps[i]++;
            prep.userStart[static_cast<size_t>(inst.a) + 1]++;
        }
        if (arity(inst.op) >= 2 && prep.defInst[inst.b] >= 0) {
            prep.deps[i]++;
            prep.userStart[static_cast<size_t>(inst.b) + 1]++;
        }
    }
    for (size_t v = 0; v < static_cast<size_t>(m.numValues); ++v)
        prep.userStart[v + 1] += prep.userStart[v];
    prep.userList.resize(
        static_cast<size_t>(prep.userStart[m.numValues]));
    // Fill in body order (cursor per value), matching the order the
    // legacy per-point users[] vectors were appended in.
    std::vector<i32> cursor(prep.userStart.begin(),
                            prep.userStart.end() - 1);
    for (size_t i = 0; i < n; ++i) {
        const Inst &inst = m.body[i];
        if (arity(inst.op) >= 1 && prep.defInst[inst.a] >= 0)
            prep.userList[static_cast<size_t>(cursor[inst.a]++)] =
                static_cast<i32>(i);
        if (arity(inst.op) >= 2 && prep.defInst[inst.b] >= 0)
            prep.userList[static_cast<size_t>(cursor[inst.b]++)] =
                static_cast<i32>(i);
    }
    return prep;
}

void
assignBanksInto(const Module &m, const PipelineModel &hw,
                BankAssignment &out)
{
    out.numBanks = hw.numBanks;
    out.bankOf.resize(static_cast<size_t>(m.numValues));
    for (i32 v = 0; v < m.numValues; ++v)
        out.bankOf[static_cast<size_t>(v)] = v % hw.numBanks;
}

namespace {

using PendEntry = std::pair<i64, i32>;

/** Append into @p sched.bundles reusing retained Bundle capacity. */
Bundle &
nextBundle(Schedule &sched, size_t &used)
{
    if (used == sched.bundles.size())
        sched.bundles.emplace_back();
    Bundle &b = sched.bundles[used++];
    b.instIdx.clear();
    return b;
}

} // namespace

void
scheduleModule(const Module &m, const TracePrep &prep,
               const BankAssignment &banks, const PipelineModel &hw,
               bool useListScheduling, BackendScratch &scratch,
               Schedule &sched)
{
    hw.validate();
    const size_t n = m.body.size();
    FINESSE_CHECK(prep.numInstrs == n &&
                      prep.numValues == m.numValues,
                  "TracePrep does not match module");

    sched.numInstrs = n;
    sched.issueCycle.assign(n, 0);
    sched.estimatedCycles = 0;
    size_t usedBundles = 0;

    std::vector<i64> &readyAt = scratch.readyAt;
    readyAt.assign(static_cast<size_t>(m.numValues), 0);
    PortTracker &ports = scratch.ports;
    ports.reset(hw);

    if (!useListScheduling) {
        // "Init" baseline: program order, single instruction per
        // bundle, in-order issue with interlock stalls.
        i64 cycle = 0;
        for (size_t i = 0; i < n; ++i) {
            const Inst &inst = m.body[i];
            const PortOp pop = makePortOp(inst, banks.bankOf);
            i64 t = cycle;
            if (prep.numReads[i] >= 1)
                t = std::max(t, readyAt[inst.a]);
            if (prep.numReads[i] >= 2)
                t = std::max(t, readyAt[inst.b]);
            while (!ports.tryIssue(pop, t, false))
                ++t;
            ports.tryIssue(pop, t, true);
            sched.issueCycle[i] = t;
            readyAt[inst.dst] = t + hw.latency(inst.op);
            nextBundle(sched, usedBundles)
                .instIdx.push_back(static_cast<i32>(i));
            cycle = t + 1;
        }
        i64 done = 0;
        for (i32 out : m.outputs)
            done = std::max(done, readyAt[out]);
        sched.estimatedCycles = done;
        sched.bundles.resize(usedBundles);
        return;
    }

    // ---- Algorithm 2: affinity list scheduling with greedy packing,
    // against the shared dependence graph (no per-point rebuild).
    std::vector<int> &deps = scratch.deps;
    deps.assign(prep.deps.begin(), prep.deps.end());

    // Critical-path priority (latency-weighted height).
    std::vector<i64> &prio = scratch.prio;
    prio.assign(n, 0);
    for (size_t i = n; i-- > 0;) {
        const Inst &inst = m.body[i];
        i64 best = hw.latency(inst.op);
        const auto [ub, ue] = prep.usersOf(inst.dst);
        for (const i32 *u = ub; u != ue; ++u)
            best = std::max(best, hw.latency(inst.op) + prio[*u]);
        prio[i] = best;
    }

    const double longRatio =
        static_cast<double>(prep.mulInstrs) /
        static_cast<double>(std::max<size_t>(n, 1));
    const int period = std::max(hw.longLat - hw.shortLat, 1);

    // Issue-slot affinity (Sec. 3.5):
    // Affinity(T) := (T mod (m-n))/(m-n) <= #Long/#Instr + beta.
    auto longAffinity = [&](i64 cycle) {
        const double frac =
            static_cast<double>(cycle % period) / period;
        return frac <= longRatio + hw.beta;
    };

    // Min-heap on (earliest cycle, body index): identical pop order to
    // the reference priority_queue (keys are unique, so the minimum --
    // and therefore the pop sequence -- is fully determined).
    std::vector<PendEntry> &pending = scratch.pending;
    pending.clear();
    const auto heapGreater = std::greater<PendEntry>{};
    auto heapPush = [&](PendEntry e) {
        pending.push_back(e);
        std::push_heap(pending.begin(), pending.end(), heapGreater);
    };
    auto heapPop = [&] {
        std::pop_heap(pending.begin(), pending.end(), heapGreater);
        pending.pop_back();
    };

    std::vector<i64> &earliest = scratch.earliest;
    earliest.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (deps[i] == 0)
            heapPush({0, static_cast<i32>(i)});
    }

    std::vector<i32> &ready = scratch.ready;
    std::vector<i32> &leftover = scratch.leftover;
    ready.clear();
    leftover.clear();
    size_t remaining = n;
    i64 cycle = 0;

    while (remaining > 0) {
        while (!pending.empty() && pending.front().first <= cycle) {
            ready.push_back(pending.front().second);
            heapPop();
        }
        if (ready.empty()) {
            FINESSE_CHECK(!pending.empty(), "scheduler deadlock");
            cycle = std::max(cycle + 1, pending.front().first);
            continue;
        }

        // sortByAffinity (Algorithm 2 line 9).
        const bool wantLong = longAffinity(cycle);
        std::sort(ready.begin(), ready.end(), [&](i32 x, i32 y) {
            const bool lx = prep.unit[static_cast<size_t>(x)] ==
                            static_cast<u8>(UnitClass::Mul);
            const bool ly = prep.unit[static_cast<size_t>(y)] ==
                            static_cast<u8>(UnitClass::Mul);
            if (lx != ly)
                return wantLong ? lx > ly : lx < ly;
            if (prio[x] != prio[y])
                return prio[x] > prio[y];
            return x < y;
        });

        // Greedy constraint-checked packing (solveMaxValidInstrPack).
        Bundle &bundle = nextBundle(sched, usedBundles);
        leftover.clear();
        for (i32 idx : ready) {
            bool issuedHere = false;
            if (static_cast<int>(bundle.instIdx.size()) < hw.issueWidth) {
                const Inst &inst = m.body[idx];
                const PortOp pop = makePortOp(inst, banks.bankOf);
                if (ports.tryIssue(pop, cycle, true)) {
                    bundle.instIdx.push_back(idx);
                    sched.issueCycle[idx] = cycle;
                    readyAt[inst.dst] = cycle + hw.latency(inst.op);
                    const auto [ub, ue] = prep.usersOf(inst.dst);
                    for (const i32 *u = ub; u != ue; ++u) {
                        earliest[*u] =
                            std::max(earliest[*u], readyAt[inst.dst]);
                        if (--deps[*u] == 0)
                            heapPush({earliest[*u], *u});
                    }
                    --remaining;
                    issuedHere = true;
                }
            }
            if (!issuedHere)
                leftover.push_back(idx);
        }
        ready.swap(leftover);
        if (bundle.instIdx.empty())
            --usedBundles; // reference only keeps non-empty bundles
        ++cycle;
    }

    i64 done = 0;
    for (i32 out : m.outputs)
        done = std::max(done, readyAt[out]);
    sched.estimatedCycles = done;
    sched.bundles.resize(usedBundles);
}

void
allocateRegistersInto(const Module &m, const BankAssignment &banks,
                      const Schedule &sched, BackendScratch &scratch,
                      RegAssignment &ra)
{
    ra.regOf.assign(static_cast<size_t>(m.numValues), -1);
    ra.maxRegsPerBank.assign(static_cast<size_t>(banks.numBanks), 0);

    // Liveness in schedule order.
    std::vector<i64> &lastUse = scratch.lastUse;
    std::vector<i64> &defPos = scratch.defPos;
    lastUse.assign(static_cast<size_t>(m.numValues), -1);
    defPos.assign(static_cast<size_t>(m.numValues), -1);
    i64 pos = 0;
    for (const Bundle &b : sched.bundles) {
        for (i32 idx : b.instIdx) {
            const Inst &inst = m.body[idx];
            if (arity(inst.op) >= 1)
                lastUse[inst.a] = pos;
            if (arity(inst.op) >= 2)
                lastUse[inst.b] = pos;
            defPos[inst.dst] = pos;
        }
        ++pos;
    }
    for (i32 out : m.outputs)
        lastUse[out] = pos + 1; // outputs stay live to the end
    // Values defined but never read die at their definition point.
    for (const Bundle &b : sched.bundles) {
        for (i32 idx : b.instIdx) {
            const i32 d = m.body[idx].dst;
            if (lastUse[d] < 0)
                lastUse[d] = defPos[d];
        }
    }

    if (static_cast<int>(scratch.freeList.size()) < banks.numBanks)
        scratch.freeList.resize(static_cast<size_t>(banks.numBanks));
    for (int b = 0; b < banks.numBanks; ++b)
        scratch.freeList[static_cast<size_t>(b)].clear();
    std::vector<std::vector<i32>> &freeList = scratch.freeList;
    std::vector<i32> &nextReg = scratch.nextReg;
    nextReg.assign(static_cast<size_t>(banks.numBanks), 0);

    auto allocate = [&](i32 v) {
        const i32 bank = banks.bankOf[v];
        i32 reg;
        if (!freeList[bank].empty()) {
            reg = freeList[bank].back();
            freeList[bank].pop_back();
        } else {
            reg = nextReg[bank]++;
            ra.maxRegsPerBank[bank] =
                std::max(ra.maxRegsPerBank[bank], reg + 1);
        }
        ra.regOf[v] = reg;
    };

    // Constants and inputs are resident from program start; constants
    // are pinned (preloaded into DMem with the binary).
    for (const auto &c : m.constants) {
        lastUse[c.id] = pos + 1;
        allocate(c.id);
    }
    for (i32 in : m.inputs) {
        if (lastUse[in] < 0)
            lastUse[in] = 0;
        allocate(in);
    }

    // Expiry buckets by lastUse position, counting-sorted: ascending
    // key, ascending value id within a key -- exactly the iteration
    // order of the reference std::map<i64, std::vector<i32>>.
    const size_t numBuckets = static_cast<size_t>(pos) + 1;
    std::vector<i32> &expiryStart = scratch.expiryStart;
    std::vector<i32> &expiryCursor = scratch.expiryCursor;
    std::vector<i32> &expiryList = scratch.expiryList;
    expiryStart.assign(numBuckets + 1, 0);
    for (i32 v = 0; v < m.numValues; ++v) {
        if (ra.regOf[v] >= 0)
            continue; // constants/inputs handled above
        if (lastUse[v] >= 0 && lastUse[v] <= pos)
            expiryStart[static_cast<size_t>(lastUse[v]) + 1]++;
    }
    for (size_t b = 0; b < numBuckets; ++b)
        expiryStart[b + 1] += expiryStart[b];
    expiryCursor.assign(expiryStart.begin(), expiryStart.end() - 1);
    expiryList.resize(static_cast<size_t>(expiryStart[numBuckets]));
    for (i32 v = 0; v < m.numValues; ++v) {
        if (ra.regOf[v] >= 0)
            continue;
        if (lastUse[v] >= 0 && lastUse[v] <= pos)
            expiryList[static_cast<size_t>(
                expiryCursor[static_cast<size_t>(lastUse[v])]++)] = v;
    }

    i64 freed = 0; // next expiry bucket to release
    pos = 0;
    for (const Bundle &b : sched.bundles) {
        while (freed < pos) {
            const size_t fb = static_cast<size_t>(freed);
            for (i32 i = expiryStart[fb]; i < expiryStart[fb + 1]; ++i) {
                const i32 v = expiryList[static_cast<size_t>(i)];
                if (ra.regOf[v] >= 0)
                    freeList[banks.bankOf[v]].push_back(ra.regOf[v]);
            }
            ++freed;
        }
        for (i32 idx : b.instIdx)
            allocate(m.body[idx].dst);
        ++pos;
    }
}

void
runBackendPoint(const Module &m, const TracePrep &prep,
                const PipelineModel &hw, bool listSchedule,
                BackendScratch &scratch, BackendPoint &out)
{
    using Clock = std::chrono::steady_clock;
    auto since = [](Clock::time_point t0) {
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };
    const auto start = Clock::now();
    assignBanksInto(m, hw, out.banks);
    out.bankallocSeconds = since(start);
    const auto tSched = Clock::now();
    scheduleModule(m, prep, out.banks, hw, listSchedule, scratch,
                   out.schedule);
    out.packschedSeconds = since(tSched);
    const auto tRegs = Clock::now();
    allocateRegistersInto(m, out.banks, out.schedule, scratch, out.regs);
    out.regallocSeconds = since(tRegs);
    const auto tEnc = Clock::now();
    const EncodingLayout layout =
        encodingLayout(out.banks, out.regs, out.schedule, hw);
    out.wordBits = layout.wordBits;
    out.imemBits = layout.imemBits();
    out.encodeSeconds = since(tEnc);
    out.seconds = since(start);
}

} // namespace finesse
