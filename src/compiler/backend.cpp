/**
 * @file
 * Backend implementation: BankAlloc, the PackSched (Algorithm 2)
 * reference oracle, and RegAlloc. The production scheduleModule runs
 * on the dense batched engine (compiler/backendprep.h); the legacy
 * Module-walking implementation below is kept byte-identical as the
 * reference the dense engine is tested and benchmarked against.
 */
#include "compiler/backend.h"

#include <algorithm>
#include <map>
#include <queue>

#include "compiler/backendprep.h"
#include "compiler/ports.h"

namespace finesse {

BankAssignment
assignBanks(const Module &m, const PipelineModel &hw)
{
    BankAssignment ba;
    ba.numBanks = hw.numBanks;
    ba.bankOf.resize(m.numValues);
    for (i32 v = 0; v < m.numValues; ++v)
        ba.bankOf[v] = v % hw.numBanks;
    return ba;
}

Schedule
scheduleModule(const Module &m, const BankAssignment &banks,
               const PipelineModel &hw, bool useListScheduling)
{
    const TracePrep prep = buildTracePrep(m);
    BackendScratch scratch;
    Schedule sched;
    scheduleModule(m, prep, banks, hw, useListScheduling, scratch,
                   sched);
    return sched;
}

Schedule
scheduleModuleReference(const Module &m, const BankAssignment &banks,
                        const PipelineModel &hw, bool useListScheduling)
{
    hw.validate();
    const size_t n = m.body.size();

    Schedule sched;
    sched.numInstrs = n;
    sched.issueCycle.assign(n, 0);

    std::vector<i64> readyAt(m.numValues, 0);
    std::vector<i32> defInst(m.numValues, -1);
    for (size_t i = 0; i < n; ++i)
        defInst[m.body[i].dst] = static_cast<i32>(i);

    if (!useListScheduling) {
        // "Init" baseline: program order, single instruction per
        // bundle, in-order issue with interlock stalls.
        LegacyPortTracker ports(hw);
        sched.bundles.reserve(n);
        i64 cycle = 0;
        for (size_t i = 0; i < n; ++i) {
            const Inst &inst = m.body[i];
            const PortOp pop = makePortOp(inst, banks.bankOf);
            i64 t = cycle;
            if (arity(inst.op) >= 1)
                t = std::max(t, readyAt[inst.a]);
            if (arity(inst.op) >= 2)
                t = std::max(t, readyAt[inst.b]);
            while (!ports.tryIssue(pop, t, false))
                ++t;
            ports.tryIssue(pop, t, true);
            sched.issueCycle[i] = t;
            readyAt[inst.dst] = t + hw.latency(inst.op);
            sched.bundles.push_back({{static_cast<i32>(i)}});
            cycle = t + 1;
        }
        i64 done = 0;
        for (i32 out : m.outputs)
            done = std::max(done, readyAt[out]);
        sched.estimatedCycles = done;
        return sched;
    }

    // ---- Algorithm 2: affinity list scheduling with greedy packing ----
    // Use counts first, so every users[] vector is sized in one
    // allocation instead of growing geometrically (this loop runs for
    // every backend compile of a sweep).
    std::vector<int> deps(n, 0);
    std::vector<u32> useCount(m.numValues, 0);
    for (size_t i = 0; i < n; ++i) {
        const Inst &inst = m.body[i];
        if (arity(inst.op) >= 1 && defInst[inst.a] >= 0)
            ++useCount[inst.a];
        if (arity(inst.op) >= 2 && defInst[inst.b] >= 0)
            ++useCount[inst.b];
    }
    std::vector<std::vector<i32>> users(m.numValues);
    for (i32 v = 0; v < m.numValues; ++v) {
        if (useCount[v] > 0)
            users[v].reserve(useCount[v]);
    }
    for (size_t i = 0; i < n; ++i) {
        const Inst &inst = m.body[i];
        if (arity(inst.op) >= 1 && defInst[inst.a] >= 0) {
            deps[i]++;
            users[inst.a].push_back(static_cast<i32>(i));
        }
        if (arity(inst.op) >= 2 && defInst[inst.b] >= 0) {
            deps[i]++;
            users[inst.b].push_back(static_cast<i32>(i));
        }
    }

    // Critical-path priority (latency-weighted height).
    std::vector<i64> prio(n, 0);
    for (size_t i = n; i-- > 0;) {
        const Inst &inst = m.body[i];
        i64 best = hw.latency(inst.op);
        for (i32 u : users[m.body[i].dst])
            best = std::max(best, hw.latency(inst.op) + prio[u]);
        prio[i] = best;
    }

    const double longRatio =
        static_cast<double>(m.countUnit(UnitClass::Mul)) /
        static_cast<double>(std::max<size_t>(n, 1));
    const int period = std::max(hw.longLat - hw.shortLat, 1);

    // Issue-slot affinity (Sec. 3.5):
    // Affinity(T) := (T mod (m-n))/(m-n) <= #Long/#Instr + beta.
    auto longAffinity = [&](i64 cycle) {
        const double frac =
            static_cast<double>(cycle % period) / period;
        return frac <= longRatio + hw.beta;
    };

    using PendEntry = std::pair<i64, i32>;
    std::priority_queue<PendEntry, std::vector<PendEntry>,
                        std::greater<>> pending;
    std::vector<i64> earliest(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (deps[i] == 0)
            pending.push({0, static_cast<i32>(i)});
    }

    LegacyPortTracker ports(hw);
    std::vector<i32> ready;
    std::vector<i32> leftover; // reused across cycles (no realloc)
    ready.reserve(64);
    leftover.reserve(64);
    sched.bundles.reserve(
        n / static_cast<size_t>(std::max(hw.issueWidth, 1)) + 1);
    size_t remaining = n;
    i64 cycle = 0;

    while (remaining > 0) {
        while (!pending.empty() && pending.top().first <= cycle) {
            ready.push_back(pending.top().second);
            pending.pop();
        }
        if (ready.empty()) {
            FINESSE_CHECK(!pending.empty(), "scheduler deadlock");
            cycle = std::max(cycle + 1, pending.top().first);
            continue;
        }

        // sortByAffinity (Algorithm 2 line 9).
        const bool wantLong = longAffinity(cycle);
        std::sort(ready.begin(), ready.end(), [&](i32 x, i32 y) {
            const bool lx = unitOf(m.body[x].op) == UnitClass::Mul;
            const bool ly = unitOf(m.body[y].op) == UnitClass::Mul;
            if (lx != ly)
                return wantLong ? lx > ly : lx < ly;
            if (prio[x] != prio[y])
                return prio[x] > prio[y];
            return x < y;
        });

        // Greedy constraint-checked packing (solveMaxValidInstrPack).
        Bundle bundle;
        leftover.clear();
        for (i32 idx : ready) {
            bool issuedHere = false;
            if (static_cast<int>(bundle.instIdx.size()) < hw.issueWidth) {
                const Inst &inst = m.body[idx];
                const PortOp pop = makePortOp(inst, banks.bankOf);
                if (ports.tryIssue(pop, cycle, true)) {
                    bundle.instIdx.push_back(idx);
                    sched.issueCycle[idx] = cycle;
                    readyAt[inst.dst] = cycle + hw.latency(inst.op);
                    for (i32 u : users[inst.dst]) {
                        earliest[u] =
                            std::max(earliest[u], readyAt[inst.dst]);
                        if (--deps[u] == 0)
                            pending.push({earliest[u], u});
                    }
                    --remaining;
                    issuedHere = true;
                }
            }
            if (!issuedHere)
                leftover.push_back(idx);
        }
        ready.swap(leftover);
        if (!bundle.instIdx.empty())
            sched.bundles.push_back(std::move(bundle));
        ++cycle;
    }

    i64 done = 0;
    for (i32 out : m.outputs)
        done = std::max(done, readyAt[out]);
    sched.estimatedCycles = done;
    return sched;
}

RegAssignment
allocateRegisters(const Module &m, const BankAssignment &banks,
                  const Schedule &sched)
{
    RegAssignment ra;
    ra.regOf.assign(m.numValues, -1);
    ra.maxRegsPerBank.assign(banks.numBanks, 0);

    // Liveness in schedule order.
    std::vector<i64> lastUse(m.numValues, -1);
    std::vector<i64> defPos(m.numValues, -1);
    i64 pos = 0;
    for (const Bundle &b : sched.bundles) {
        for (i32 idx : b.instIdx) {
            const Inst &inst = m.body[idx];
            if (arity(inst.op) >= 1)
                lastUse[inst.a] = pos;
            if (arity(inst.op) >= 2)
                lastUse[inst.b] = pos;
            defPos[inst.dst] = pos;
        }
        ++pos;
    }
    for (i32 out : m.outputs)
        lastUse[out] = pos + 1; // outputs stay live to the end
    // Values defined but never read die at their definition point.
    for (const Bundle &b : sched.bundles) {
        for (i32 idx : b.instIdx) {
            const i32 d = m.body[idx].dst;
            if (lastUse[d] < 0)
                lastUse[d] = defPos[d];
        }
    }

    std::vector<std::vector<i32>> freeList(banks.numBanks);
    std::vector<i32> nextReg(banks.numBanks, 0);

    auto allocate = [&](i32 v) {
        const i32 bank = banks.bankOf[v];
        i32 reg;
        if (!freeList[bank].empty()) {
            reg = freeList[bank].back();
            freeList[bank].pop_back();
        } else {
            reg = nextReg[bank]++;
            ra.maxRegsPerBank[bank] =
                std::max(ra.maxRegsPerBank[bank], reg + 1);
        }
        ra.regOf[v] = reg;
    };

    // Constants and inputs are resident from program start; constants
    // are pinned (preloaded into DMem with the binary).
    for (const auto &c : m.constants) {
        lastUse[c.id] = pos + 1;
        allocate(c.id);
    }
    for (i32 in : m.inputs) {
        if (lastUse[in] < 0)
            lastUse[in] = 0;
        allocate(in);
    }

    std::map<i64, std::vector<i32>> expiry;
    for (i32 v = 0; v < m.numValues; ++v) {
        if (ra.regOf[v] >= 0)
            continue; // constants/inputs handled above
        if (lastUse[v] >= 0 && lastUse[v] <= pos)
            expiry[lastUse[v]].push_back(v);
    }

    pos = 0;
    for (const Bundle &b : sched.bundles) {
        auto it = expiry.begin();
        while (it != expiry.end() && it->first < pos) {
            for (i32 v : it->second) {
                if (ra.regOf[v] >= 0)
                    freeList[banks.bankOf[v]].push_back(ra.regOf[v]);
            }
            it = expiry.erase(it);
        }
        for (i32 idx : b.instIdx)
            allocate(m.body[idx].dst);
        ++pos;
    }
    return ra;
}

} // namespace finesse
