/**
 * @file
 * Shared structural-hazard tracker: per-cycle unit usage, register-bank
 * read ports, and the write-back reservation table with optional FIFO
 * deferral. Used by both the scheduler (to build feasible bundles) and
 * the cycle-accurate simulator (as the timing ground truth), so the
 * two views of the pipeline model can never diverge.
 */
#ifndef FINESSE_COMPILER_PORTS_H_
#define FINESSE_COMPILER_PORTS_H_

#include <map>
#include <vector>

#include "hwmodel/pipeline.h"

namespace finesse {

/** One op with its resolved bank usage. */
struct PortOp
{
    Op op;
    i32 readBanks[2] = {-1, -1};
    int numReads = 0;
    i32 dstBank = 0;
};

class PortTracker
{
  public:
    explicit PortTracker(const PipelineModel &hw) : hw_(hw) {}

    /** Check whether @p op can issue at @p cycle; optionally reserve. */
    bool
    tryIssue(const PortOp &op, i64 cycle, bool commit)
    {
        const UnitClass unit = unitOf(op.op);
        CycleUse &use = cycleUse_[cycle];
        if (use.total >= hw_.issueWidth)
            return false;
        if (unit == UnitClass::Mul && use.longOps >= 1)
            return false;
        if (unit == UnitClass::Linear && use.shortOps >= hw_.numLinUnits)
            return false;
        if (unit == UnitClass::Inv && use.invOps >= 1)
            return false;

        for (int i = 0; i < op.numReads; ++i) {
            int needed = 0;
            for (int j = 0; j < op.numReads; ++j)
                needed += op.readBanks[j] == op.readBanks[i];
            if (readsAt(cycle, op.readBanks[i]) + needed >
                hw_.readsPerBank) {
                return false;
            }
        }

        const i64 slot = writebackSlot(op, cycle);
        if (slot < 0)
            return false;

        if (commit) {
            use.total++;
            if (unit == UnitClass::Mul)
                use.longOps++;
            else if (unit == UnitClass::Linear)
                use.shortOps++;
            else if (unit == UnitClass::Inv)
                use.invOps++;
            for (int i = 0; i < op.numReads; ++i)
                readUse_[{cycle, op.readBanks[i]}]++;
            writeUse_[{slot, op.dstBank}]++;
            maxFifoDefer_ = std::max(
                maxFifoDefer_, slot - (cycle + hw_.latency(op.op)));
        }
        return true;
    }

    /** Aggregate feasibility of a whole bundle at @p cycle. */
    bool
    canIssueBundle(const std::vector<PortOp> &ops, i64 cycle)
    {
        if (static_cast<int>(ops.size()) > hw_.issueWidth)
            return false;
        int longOps = 0, shortOps = 0, invOps = 0;
        std::map<i32, int> reads;
        std::map<std::pair<i64, i32>, int> writes;
        const CycleUse &use = cycleUse_[cycle];
        if (use.total + static_cast<int>(ops.size()) > hw_.issueWidth)
            return false;
        for (const PortOp &op : ops) {
            switch (unitOf(op.op)) {
              case UnitClass::Mul:
                ++longOps;
                break;
              case UnitClass::Linear:
                ++shortOps;
                break;
              case UnitClass::Inv:
                ++invOps;
                break;
              case UnitClass::None:
                break;
            }
            for (int i = 0; i < op.numReads; ++i)
                reads[op.readBanks[i]]++;
            // Write-back feasibility considering this bundle's writes.
            const i64 wb = cycle + hw_.latency(op.op);
            const int window = hw_.writebackFifo ? hw_.fifoDepth : 0;
            i64 slot = -1;
            for (i64 c = wb; c <= wb + window; ++c) {
                if (writesAt(c, op.dstBank) + writes[{c, op.dstBank}] <
                    hw_.writesPerBank) {
                    slot = c;
                    break;
                }
            }
            if (slot < 0)
                return false;
            writes[{slot, op.dstBank}]++;
        }
        if (use.longOps + longOps > 1)
            return false;
        if (use.shortOps + shortOps > hw_.numLinUnits)
            return false;
        if (use.invOps + invOps > 1)
            return false;
        for (auto &[bank, cnt] : reads) {
            if (readsAt(cycle, bank) + cnt > hw_.readsPerBank)
                return false;
        }
        return true;
    }

    /** Commit a whole (pre-checked) bundle. */
    void
    commitBundle(const std::vector<PortOp> &ops, i64 cycle)
    {
        for (const PortOp &op : ops) {
            const bool ok = tryIssue(op, cycle, true);
            FINESSE_CHECK(ok, "bundle commit failed after check");
        }
    }

    i64 maxFifoDefer() const { return maxFifoDefer_; }

  private:
    struct CycleUse
    {
        int total = 0, longOps = 0, shortOps = 0, invOps = 0;
    };

    int
    readsAt(i64 cycle, i32 bank) const
    {
        auto it = readUse_.find({cycle, bank});
        return it == readUse_.end() ? 0 : it->second;
    }

    int
    writesAt(i64 cycle, i32 bank) const
    {
        auto it = writeUse_.find({cycle, bank});
        return it == writeUse_.end() ? 0 : it->second;
    }

    i64
    writebackSlot(const PortOp &op, i64 cycle) const
    {
        const i64 wb = cycle + hw_.latency(op.op);
        const int window = hw_.writebackFifo ? hw_.fifoDepth : 0;
        for (i64 c = wb; c <= wb + window; ++c) {
            if (writesAt(c, op.dstBank) < hw_.writesPerBank)
                return c;
        }
        return -1;
    }

    const PipelineModel &hw_;
    std::map<i64, CycleUse> cycleUse_;
    std::map<std::pair<i64, i32>, int> readUse_;
    std::map<std::pair<i64, i32>, int> writeUse_;
    i64 maxFifoDefer_ = 0;
};

/** Build the PortOp view of one instruction. */
inline PortOp
makePortOp(const Inst &inst, const std::vector<i32> &bankOf)
{
    PortOp op;
    op.op = inst.op;
    if (arity(inst.op) >= 1)
        op.readBanks[op.numReads++] = bankOf[inst.a];
    if (arity(inst.op) >= 2)
        op.readBanks[op.numReads++] = bankOf[inst.b];
    op.dstBank = bankOf[inst.dst];
    return op;
}

} // namespace finesse

#endif // FINESSE_COMPILER_PORTS_H_
