/**
 * @file
 * Shared structural-hazard tracker: per-cycle unit usage, register-bank
 * read ports, and the write-back reservation table with optional FIFO
 * deferral. Used by both the scheduler (to build feasible bundles) and
 * the cycle-accurate simulator (as the timing ground truth), so the
 * two views of the pipeline model can never diverge.
 *
 * Two implementations share the same interface:
 *
 *  - PortTracker: the production tracker. Dense ring-buffer state
 *    sized from the pipeline model -- one CycleUse slot and one
 *    read/write counter row per cycle of the reservation window
 *    (max op latency + FIFO-defer horizon) -- with lazy per-slot
 *    invalidation, so an issue attempt costs a handful of array
 *    indexes instead of ordered-map lookups. Resettable in place for
 *    reuse across the backend runs of a sweep (no reallocation).
 *  - LegacyPortTracker: the original std::map-based tracker, kept as
 *    the reference oracle the dense tracker is identity-tested
 *    against (tests/test_backend_props.cpp, bench/fig_backend.cpp).
 *
 * Correctness of the ring buffer relies on the drivers' probe cycles
 * being monotonically non-decreasing (true for the init scheduler,
 * the list scheduler and the simulator replay loop): a slot whose tag
 * mismatches the probed cycle can only hold data from a cycle at
 * least one full window in the past, never the future.
 */
#ifndef FINESSE_COMPILER_PORTS_H_
#define FINESSE_COMPILER_PORTS_H_

#include <algorithm>
#include <map>
#include <vector>

#include "hwmodel/pipeline.h"

namespace finesse {

/** One op with its resolved bank usage. */
struct PortOp
{
    Op op;
    i32 readBanks[2] = {-1, -1};
    int numReads = 0;
    i32 dstBank = 0;
};

/** Dense, resettable production tracker (see file header). */
class PortTracker
{
  public:
    PortTracker() = default;

    explicit PortTracker(const PipelineModel &hw) { reset(hw); }

    /**
     * (Re)bind to a pipeline model and clear all reservations. Buffers
     * are resized only when the window/bank geometry grows, so a
     * scratch-resident tracker is reused allocation-free across the
     * points of a hardware sweep.
     */
    void
    reset(const PipelineModel &hw)
    {
        hw_ = &hw;
        const int maxLat =
            std::max({hw.longLat, hw.shortLat, hw.invLat, 1});
        const int fifoWindow = hw.writebackFifo ? hw.fifoDepth : 0;
        window_ = static_cast<size_t>(maxLat + fifoWindow + 1);
        banks_ = static_cast<size_t>(hw.numBanks);
        use_.assign(window_, CycleSlot{});
        readTag_.assign(window_, -1);
        writeTag_.assign(window_, -1);
        readCnt_.resize(window_ * banks_);  // rows gated by tags
        writeCnt_.resize(window_ * banks_); // (cleared on first touch)
        bundleReads_.assign(banks_, 0);
        bundleWrites_.assign(window_ * banks_, 0);
        touchedBundleReads_.clear();
        touchedBundleWrites_.clear();
        maxFifoDefer_ = 0;
    }

    /** Check whether @p op can issue at @p cycle; optionally reserve. */
    bool
    tryIssue(const PortOp &op, i64 cycle, bool commit)
    {
        const UnitClass unit = unitOf(op.op);
        const CycleSlot use = useAt(cycle);
        if (use.total >= hw_->issueWidth)
            return false;
        if (unit == UnitClass::Mul && use.longOps >= 1)
            return false;
        if (unit == UnitClass::Linear && use.shortOps >= hw_->numLinUnits)
            return false;
        if (unit == UnitClass::Inv && use.invOps >= 1)
            return false;

        for (int i = 0; i < op.numReads; ++i) {
            int needed = 0;
            for (int j = 0; j < op.numReads; ++j)
                needed += op.readBanks[j] == op.readBanks[i];
            if (readsAt(cycle, op.readBanks[i]) + needed >
                hw_->readsPerBank) {
                return false;
            }
        }

        const i64 slot = writebackSlot(op, cycle);
        if (slot < 0)
            return false;

        if (commit) {
            CycleSlot &u = touchUse(cycle);
            u.total++;
            if (unit == UnitClass::Mul)
                u.longOps++;
            else if (unit == UnitClass::Linear)
                u.shortOps++;
            else if (unit == UnitClass::Inv)
                u.invOps++;
            for (int i = 0; i < op.numReads; ++i)
                ++readRow(cycle)[op.readBanks[i]];
            ++writeRow(slot)[op.dstBank];
            maxFifoDefer_ = std::max(
                maxFifoDefer_, slot - (cycle + hw_->latency(op.op)));
        }
        return true;
    }

    /**
     * Aggregate feasibility of a whole bundle at @p cycle. The
     * per-call accumulators live in member scratch (cleared from a
     * touched-entry list, so a call costs O(bundle), not O(window)).
     */
    bool
    canIssueBundle(const std::vector<PortOp> &ops, i64 cycle)
    {
        if (static_cast<int>(ops.size()) > hw_->issueWidth)
            return false;
        for (i32 bank : touchedBundleReads_)
            bundleReads_[static_cast<size_t>(bank)] = 0;
        touchedBundleReads_.clear();
        for (size_t f : touchedBundleWrites_)
            bundleWrites_[f] = 0;
        touchedBundleWrites_.clear();

        int longOps = 0, shortOps = 0, invOps = 0;
        const CycleSlot use = useAt(cycle);
        if (use.total + static_cast<int>(ops.size()) > hw_->issueWidth)
            return false;
        for (const PortOp &op : ops) {
            switch (unitOf(op.op)) {
              case UnitClass::Mul:
                ++longOps;
                break;
              case UnitClass::Linear:
                ++shortOps;
                break;
              case UnitClass::Inv:
                ++invOps;
                break;
              case UnitClass::None:
                break;
            }
            for (int i = 0; i < op.numReads; ++i) {
                const auto bank = static_cast<size_t>(op.readBanks[i]);
                if (bundleReads_[bank]++ == 0)
                    touchedBundleReads_.push_back(op.readBanks[i]);
            }
            // Write-back feasibility considering this bundle's writes.
            const i64 wb = cycle + hw_->latency(op.op);
            const int window = hw_->writebackFifo ? hw_->fifoDepth : 0;
            i64 slot = -1;
            for (i64 c = wb; c <= wb + window; ++c) {
                if (writesAt(c, op.dstBank) +
                        bundleWrites_[flat(c, op.dstBank)] <
                    hw_->writesPerBank) {
                    slot = c;
                    break;
                }
            }
            if (slot < 0)
                return false;
            const size_t f = flat(slot, op.dstBank);
            if (bundleWrites_[f]++ == 0)
                touchedBundleWrites_.push_back(f);
        }
        if (use.longOps + longOps > 1)
            return false;
        if (use.shortOps + shortOps > hw_->numLinUnits)
            return false;
        if (use.invOps + invOps > 1)
            return false;
        for (i32 bank : touchedBundleReads_) {
            if (readsAt(cycle, bank) +
                    bundleReads_[static_cast<size_t>(bank)] >
                hw_->readsPerBank) {
                return false;
            }
        }
        return true;
    }

    /** Commit a whole (pre-checked) bundle. */
    void
    commitBundle(const std::vector<PortOp> &ops, i64 cycle)
    {
        for (const PortOp &op : ops) {
            const bool ok = tryIssue(op, cycle, true);
            FINESSE_CHECK(ok, "bundle commit failed after check");
        }
    }

    i64 maxFifoDefer() const { return maxFifoDefer_; }

  private:
    struct CycleSlot
    {
        i64 cycle = -1; ///< which cycle this slot currently represents
        int total = 0, longOps = 0, shortOps = 0, invOps = 0;
    };

    size_t idx(i64 cycle) const
    {
        return static_cast<size_t>(cycle) % window_;
    }

    size_t flat(i64 cycle, i32 bank) const
    {
        return idx(cycle) * banks_ + static_cast<size_t>(bank);
    }

    CycleSlot
    useAt(i64 cycle) const
    {
        const CycleSlot &s = use_[idx(cycle)];
        if (s.cycle == cycle)
            return s;
        CycleSlot fresh;
        fresh.cycle = cycle;
        return fresh;
    }

    CycleSlot &
    touchUse(i64 cycle)
    {
        CycleSlot &s = use_[idx(cycle)];
        if (s.cycle != cycle) {
            s = CycleSlot{};
            s.cycle = cycle;
        }
        return s;
    }

    int
    readsAt(i64 cycle, i32 bank) const
    {
        const size_t w = idx(cycle);
        return readTag_[w] == cycle
                   ? readCnt_[w * banks_ + static_cast<size_t>(bank)]
                   : 0;
    }

    int
    writesAt(i64 cycle, i32 bank) const
    {
        const size_t w = idx(cycle);
        return writeTag_[w] == cycle
                   ? writeCnt_[w * banks_ + static_cast<size_t>(bank)]
                   : 0;
    }

    /** Row of read counters for @p cycle, cleared on first touch. */
    int *
    readRow(i64 cycle)
    {
        const size_t w = idx(cycle);
        if (readTag_[w] != cycle) {
            std::fill_n(readCnt_.begin() +
                            static_cast<ptrdiff_t>(w * banks_),
                        banks_, 0);
            readTag_[w] = cycle;
        }
        return readCnt_.data() + w * banks_;
    }

    int *
    writeRow(i64 cycle)
    {
        const size_t w = idx(cycle);
        if (writeTag_[w] != cycle) {
            std::fill_n(writeCnt_.begin() +
                            static_cast<ptrdiff_t>(w * banks_),
                        banks_, 0);
            writeTag_[w] = cycle;
        }
        return writeCnt_.data() + w * banks_;
    }

    i64
    writebackSlot(const PortOp &op, i64 cycle) const
    {
        const i64 wb = cycle + hw_->latency(op.op);
        const int window = hw_->writebackFifo ? hw_->fifoDepth : 0;
        for (i64 c = wb; c <= wb + window; ++c) {
            if (writesAt(c, op.dstBank) < hw_->writesPerBank)
                return c;
        }
        return -1;
    }

    const PipelineModel *hw_ = nullptr;
    size_t window_ = 0;
    size_t banks_ = 0;
    std::vector<CycleSlot> use_;
    std::vector<i64> readTag_, writeTag_;
    std::vector<int> readCnt_, writeCnt_;
    // canIssueBundle per-call accumulators (reset via touched lists).
    std::vector<int> bundleReads_;
    std::vector<int> bundleWrites_;
    std::vector<i32> touchedBundleReads_;
    std::vector<size_t> touchedBundleWrites_;
    i64 maxFifoDefer_ = 0;
};

/**
 * Reference tracker: ordered-map reservation tables, one fresh pair of
 * std::maps per canIssueBundle call. Semantically identical to
 * PortTracker by construction; kept as the oracle for identity tests
 * and the reference arm of bench/fig_backend.
 */
class LegacyPortTracker
{
  public:
    explicit LegacyPortTracker(const PipelineModel &hw) : hw_(hw) {}

    /** Check whether @p op can issue at @p cycle; optionally reserve. */
    bool
    tryIssue(const PortOp &op, i64 cycle, bool commit)
    {
        const UnitClass unit = unitOf(op.op);
        CycleUse &use = cycleUse_[cycle];
        if (use.total >= hw_.issueWidth)
            return false;
        if (unit == UnitClass::Mul && use.longOps >= 1)
            return false;
        if (unit == UnitClass::Linear && use.shortOps >= hw_.numLinUnits)
            return false;
        if (unit == UnitClass::Inv && use.invOps >= 1)
            return false;

        for (int i = 0; i < op.numReads; ++i) {
            int needed = 0;
            for (int j = 0; j < op.numReads; ++j)
                needed += op.readBanks[j] == op.readBanks[i];
            if (readsAt(cycle, op.readBanks[i]) + needed >
                hw_.readsPerBank) {
                return false;
            }
        }

        const i64 slot = writebackSlot(op, cycle);
        if (slot < 0)
            return false;

        if (commit) {
            use.total++;
            if (unit == UnitClass::Mul)
                use.longOps++;
            else if (unit == UnitClass::Linear)
                use.shortOps++;
            else if (unit == UnitClass::Inv)
                use.invOps++;
            for (int i = 0; i < op.numReads; ++i)
                readUse_[{cycle, op.readBanks[i]}]++;
            writeUse_[{slot, op.dstBank}]++;
            maxFifoDefer_ = std::max(
                maxFifoDefer_, slot - (cycle + hw_.latency(op.op)));
        }
        return true;
    }

    /** Aggregate feasibility of a whole bundle at @p cycle. */
    bool
    canIssueBundle(const std::vector<PortOp> &ops, i64 cycle)
    {
        if (static_cast<int>(ops.size()) > hw_.issueWidth)
            return false;
        int longOps = 0, shortOps = 0, invOps = 0;
        std::map<i32, int> reads;
        std::map<std::pair<i64, i32>, int> writes;
        const CycleUse &use = cycleUse_[cycle];
        if (use.total + static_cast<int>(ops.size()) > hw_.issueWidth)
            return false;
        for (const PortOp &op : ops) {
            switch (unitOf(op.op)) {
              case UnitClass::Mul:
                ++longOps;
                break;
              case UnitClass::Linear:
                ++shortOps;
                break;
              case UnitClass::Inv:
                ++invOps;
                break;
              case UnitClass::None:
                break;
            }
            for (int i = 0; i < op.numReads; ++i)
                reads[op.readBanks[i]]++;
            // Write-back feasibility considering this bundle's writes.
            const i64 wb = cycle + hw_.latency(op.op);
            const int window = hw_.writebackFifo ? hw_.fifoDepth : 0;
            i64 slot = -1;
            for (i64 c = wb; c <= wb + window; ++c) {
                if (writesAt(c, op.dstBank) + writes[{c, op.dstBank}] <
                    hw_.writesPerBank) {
                    slot = c;
                    break;
                }
            }
            if (slot < 0)
                return false;
            writes[{slot, op.dstBank}]++;
        }
        if (use.longOps + longOps > 1)
            return false;
        if (use.shortOps + shortOps > hw_.numLinUnits)
            return false;
        if (use.invOps + invOps > 1)
            return false;
        for (auto &[bank, cnt] : reads) {
            if (readsAt(cycle, bank) + cnt > hw_.readsPerBank)
                return false;
        }
        return true;
    }

    /** Commit a whole (pre-checked) bundle. */
    void
    commitBundle(const std::vector<PortOp> &ops, i64 cycle)
    {
        for (const PortOp &op : ops) {
            const bool ok = tryIssue(op, cycle, true);
            FINESSE_CHECK(ok, "bundle commit failed after check");
        }
    }

    i64 maxFifoDefer() const { return maxFifoDefer_; }

  private:
    struct CycleUse
    {
        int total = 0, longOps = 0, shortOps = 0, invOps = 0;
    };

    int
    readsAt(i64 cycle, i32 bank) const
    {
        auto it = readUse_.find({cycle, bank});
        return it == readUse_.end() ? 0 : it->second;
    }

    int
    writesAt(i64 cycle, i32 bank) const
    {
        auto it = writeUse_.find({cycle, bank});
        return it == writeUse_.end() ? 0 : it->second;
    }

    i64
    writebackSlot(const PortOp &op, i64 cycle) const
    {
        const i64 wb = cycle + hw_.latency(op.op);
        const int window = hw_.writebackFifo ? hw_.fifoDepth : 0;
        for (i64 c = wb; c <= wb + window; ++c) {
            if (writesAt(c, op.dstBank) < hw_.writesPerBank)
                return c;
        }
        return -1;
    }

    const PipelineModel &hw_;
    std::map<i64, CycleUse> cycleUse_;
    std::map<std::pair<i64, i32>, int> readUse_;
    std::map<std::pair<i64, i32>, int> writeUse_;
    i64 maxFifoDefer_ = 0;
};

/** Build the PortOp view of one instruction. */
inline PortOp
makePortOp(const Inst &inst, const std::vector<i32> &bankOf)
{
    PortOp op;
    op.op = inst.op;
    if (arity(inst.op) >= 1)
        op.readBanks[op.numReads++] = bankOf[inst.a];
    if (arity(inst.op) >= 2)
        op.readBanks[op.numReads++] = bankOf[inst.b];
    op.dstBank = bankOf[inst.dst];
    return op;
}

} // namespace finesse

#endif // FINESSE_COMPILER_PORTS_H_
