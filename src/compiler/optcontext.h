/**
 * @file
 * Single-build OptContext: the worklist front-end optimizer.
 *
 * The legacy engine (RewritePass::run in compiler/passes.cpp) re-walks
 * the entire unrolled SSA body on every sweep of every pass and
 * rebuilds the constant-pool maps from scratch each time. OptContext
 * is built ONCE per front-end group run and shared by every pass in
 * the group:
 *
 *  - dense per-value use counts plus a CSR def-use table (overflow
 *    chains absorb uses that migrate between values, so nothing is
 *    reallocated mid-run),
 *  - a path-compressed replacement (union-find) table for elided
 *    values,
 *  - a hash-interned constant pool (one unordered_map<BigInt, id>
 *    for the whole run),
 *  - one dirty bitset per pass: a scan visits only instructions whose
 *    operands or opcode changed since that pass last saw them, in
 *    program order, so a converged round costs a word-scan instead of
 *    a body re-walk.
 *
 * Elided instructions are tombstoned in place and their uses forwarded
 * eagerly; the body and constant pool are compacted exactly once at
 * group end (Module::compact). Dead-code elimination is engine-native:
 * a descending scan over defs whose use count dropped to zero,
 * mirroring the reference backward-liveness sweep.
 *
 * The engine is event-equivalent to the sweep engine by construction
 * (a clean instruction's visit is a no-op, so skipping it changes
 * nothing): final modules are byte-identical and per-pass PassStats
 * deltas match for any `--passes` subset. bench/fig_opt and
 * tests/test_optcontext enforce this against runFrontendPipelineSweep.
 */
#ifndef FINESSE_COMPILER_OPTCONTEXT_H_
#define FINESSE_COMPILER_OPTCONTEXT_H_

#include <unordered_map>
#include <vector>

#include "compiler/pipeline.h"
#include "ir/ir.h"

namespace finesse {

class OptContext;

/**
 * Path-compressed lookup in a replacement (union-find) table:
 * rep[id] is the replacing value id or -1 for a root. Shared by both
 * front-end engines so their chain semantics cannot diverge.
 */
inline i32
resolveRep(std::vector<i32> &rep, i32 id)
{
    if (id < 0 || rep[static_cast<size_t>(id)] < 0)
        return id;
    i32 root = id;
    while (rep[static_cast<size_t>(root)] >= 0)
        root = rep[static_cast<size_t>(root)];
    while (rep[static_cast<size_t>(id)] >= 0) {
        const i32 next = rep[static_cast<size_t>(id)];
        rep[static_cast<size_t>(id)] = root;
        id = next;
    }
    return root;
}

/**
 * Constant-tracking environment shared by both front-end engines, so
 * each pass states its rewrite rules exactly once (byte-identity of
 * the two engines starts with literally shared rules).
 */
class RewriteEnv
{
  public:
    virtual ~RewriteEnv() = default;

    /**
     * Pool value of @p id, nullptr when it is not a constant. The
     * pointer is only valid until the next internConst() call (the
     * worklist engine hands out pointers into the module's constant
     * vector, which interning can reallocate) -- rules must finish
     * reading operand constants before they intern the result.
     */
    virtual const BigInt *constOf(i32 id) const = 0;

    /** Intern @p v into the constant pool, reusing an existing id. */
    virtual i32 internConst(const BigInt &v) = 0;

    virtual const BigInt &modulus() const = 0;
};

/** Worklist hook implemented by the rewriting front-end passes. */
class InstRewriter
{
  public:
    virtual ~InstRewriter() = default;

    /** Called once per group run, before any scan. */
    virtual void beginRun(OptContext &) {}

    /**
     * Try to simplify the instruction at body index @p idx. Operands
     * arrive fully resolved; the pass may rewrite op/operands in
     * place. Returns a replacement value id to elide the instruction,
     * -1 to keep it.
     */
    virtual i32 simplifyAt(OptContext &ctx, Inst &inst, size_t idx) = 0;
};

/** Shared single-build state of one front-end group run. */
class OptContext final : public RewriteEnv
{
  public:
    /** Builds every table in one pass over @p m. */
    OptContext(Module &m, size_t rewriterSlots);

    Module &module() { return *m_; }

    // RewriteEnv --------------------------------------------------------
    const BigInt *constOf(i32 id) const override;
    i32 internConst(const BigInt &v) override;
    const BigInt &modulus() const override { return m_->p; }

    // Queries (used by the incremental GVN) -----------------------------
    const Inst &instAt(size_t idx) const { return m_->body[idx]; }
    bool isAlive(size_t idx) const { return alive_[idx] != 0; }

    /**
     * Resolve @p id through the replacement table with path
     * compression. Stored operands are forwarded eagerly, so chains
     * only arise from replacement targets that were themselves elided
     * later; resolve() keeps those walks amortized O(1).
     */
    i32 resolve(i32 id);

    /**
     * Tombstone body[idx] in favor of existing value @p replacement:
     * records the replacement, eagerly forwards every use (instruction
     * operands and module outputs) and marks the affected instructions
     * dirty for every pass. Attributed to the scan in progress.
     */
    void elideInst(size_t idx, i32 replacement);

    /** Outcome of one pass scan. */
    struct ScanResult
    {
        bool changed = false;      ///< any elision/rewrite/removal
        size_t instsRemoved = 0;   ///< body instructions tombstoned
    };

    /** Ascending scan of @p rw's dirty instructions. */
    ScanResult scanRewriter(size_t slot, InstRewriter &rw);

    /**
     * Dead-code scan: descending walk of defs whose use count hit
     * zero (cascading), then a purge of unreferenced constant-pool
     * entries. Matches the reference backward-liveness DCE sweep.
     */
    ScanResult scanDce();

    /** One-shot tombstone compaction; call exactly once, at group end. */
    size_t compact();

  private:
    void decUse(i32 id);
    void addUse(i32 id, i32 user);
    void forwardUses(i32 from, i32 to);
    void applyRewrite(size_t idx, const Inst &before);
    void markDirtyAllSlots(size_t idx);

    Module *m_;
    size_t bodySize_;

    std::vector<u8> alive_;      ///< body tombstones
    std::vector<u8> constAlive_; ///< constant-pool tombstones

    // Dense per-value-id tables (grow only via internConst).
    std::vector<i32> useCount_; ///< uses from alive insts + outputs
    std::vector<i32> defOf_;    ///< defining body index, -1 for others
    std::vector<i32> rep_;      ///< union-find replacement, -1 = root
    std::vector<i32> constIdx_; ///< index into constants, -1 otherwise

    // Def-use: CSR pool sized from the initial operands, plus
    // per-value overflow chains for uses that migrate to a new value
    // (no reallocation of the CSR mid-run). Entries are hints: stale
    // ones (dead user, operand moved on) are skipped and dropped when
    // the value is forwarded. user >= 0 is a body index, user < 0
    // encodes module output slot -(user + 1).
    std::vector<i32> useStart_; ///< CSR offsets (initial ids + 1)
    std::vector<i32> useLen_;   ///< live CSR prefix per value
    std::vector<i32> useEntries_;
    struct OverflowUse
    {
        i32 user;
        i32 next;
    };
    std::vector<i32> ovHead_; ///< per-value overflow chain head
    std::vector<OverflowUse> ovPool_;
    size_t csrValues_; ///< ids covered by the CSR (initial numValues)

    // One dirty bitset per rewriter slot + one for dce; all-ones at
    // build so round 1 replicates the full sweeps of the reference
    // engine.
    std::vector<std::vector<u64>> slotDirty_;
    std::vector<u64> dceDirty_;
    std::vector<i32> constCandidates_; ///< ids to re-check at dce time

    std::unordered_map<BigInt, i32, BigIntHash> internMap_;

    // Per-scan accounting (reset by each scan* call).
    size_t scanRemoved_ = 0;
    size_t scanRewrites_ = 0;
};

/**
 * Drive a contiguous front-end pass group over ctx.module() with the
 * worklist engine: rounds of per-pass scans until a clean round or
 * PassManager::kMaxFixpointIters, per-pass PassStats accounting
 * identical to the sweep engine's, then one compaction. Returns the
 * number of rounds executed.
 */
int runFrontendWorklist(CompilationContext &ctx,
                        const std::vector<Pass *> &group);

} // namespace finesse

#endif // FINESSE_COMPILER_OPTCONTEXT_H_
