/**
 * @file
 * Binary-level functional simulator: decodes and executes an encoded
 * program image (instruction words + DMem preload + I/O register map)
 * with no access to compiler metadata. This is the deepest level of
 * the validation stack: it catches encoding bugs that the SSA- and
 * register-file-level simulators cannot see.
 */
#ifndef FINESSE_SIM_BINARY_H_
#define FINESSE_SIM_BINARY_H_

#include <vector>

#include "field/fp.h"
#include "isa/encode.h"

namespace finesse {

/** Execute an encoded binary; inputs/outputs as standard integers. */
std::vector<BigInt> runEncoded(const EncodedProgram &prog, const FpCtx &fp,
                               const std::vector<BigInt> &inputs);

} // namespace finesse

#endif // FINESSE_SIM_BINARY_H_
