/**
 * @file
 * Cycle-accurate simulator implementation. Issue rules are shared with
 * the scheduler through compiler/ports.h, so simulated timing and
 * scheduled timing can only diverge through in-order head-of-line
 * blocking, which this simulator models explicitly. One template
 * replay loop serves both trackers: the dense production PortTracker
 * (optionally running out of a sweep worker's BackendScratch) and the
 * LegacyPortTracker reference oracle.
 */
#include "sim/cycle.h"

#include "compiler/backendprep.h"
#include "compiler/ports.h"

namespace finesse {

namespace {

template <typename Tracker>
CycleStats
replay(const Module &m, const BankAssignment &banks,
       const Schedule &sched, const PipelineModel &hw, i64 windowStart,
       i64 windowLen, Tracker &ports, std::vector<i64> &readyAt,
       std::vector<PortOp> &pops)
{
    CycleStats stats;
    stats.instrs = m.body.size();

    readyAt.assign(static_cast<size_t>(m.numValues), 0);

    i64 cycle = 0;
    i64 lastWriteback = 0;

    for (const Bundle &bundle : sched.bundles) {
        // Dependence stall: every op's operands must be ready.
        i64 t = cycle;
        pops.clear();
        for (i32 idx : bundle.instIdx) {
            const Inst &inst = m.body[idx];
            if (arity(inst.op) >= 1)
                t = std::max(t, readyAt[inst.a]);
            if (arity(inst.op) >= 2)
                t = std::max(t, readyAt[inst.b]);
            pops.push_back(makePortOp(inst, banks.bankOf));
        }
        // Structural stall: ports/units/write-back.
        while (!ports.canIssueBundle(pops, t))
            ++t;
        ports.commitBundle(pops, t);

        stats.bubbles += t - cycle;
        for (i32 idx : bundle.instIdx) {
            const Inst &inst = m.body[idx];
            readyAt[inst.dst] = t + hw.latency(inst.op);
            lastWriteback = std::max(lastWriteback, readyAt[inst.dst]);
        }

        if (t >= windowStart && t < windowStart + windowLen) {
            IssueSample s{t, 0, 0, 0};
            for (i32 idx : bundle.instIdx) {
                switch (unitOf(m.body[idx].op)) {
                  case UnitClass::Mul:
                    s.longOps++;
                    break;
                  case UnitClass::Linear:
                    s.shortOps++;
                    break;
                  case UnitClass::Inv:
                    s.invOps++;
                    break;
                  case UnitClass::None:
                    break;
                }
            }
            stats.window.push_back(s);
        }

        stats.issueCycles = t;
        cycle = t + 1;
    }

    i64 done = lastWriteback;
    for (i32 out : m.outputs)
        done = std::max(done, readyAt[out]);
    stats.totalCycles = done;
    stats.maxFifoDefer = ports.maxFifoDefer();
    return stats;
}

} // namespace

CycleStats
simulateCycles(const Module &m, const BankAssignment &banks,
               const Schedule &sched, const PipelineModel &hw,
               i64 windowStart, i64 windowLen, BackendScratch *scratch)
{
    if (scratch) {
        scratch->simPorts.reset(hw);
        return replay(m, banks, sched, hw, windowStart, windowLen,
                      scratch->simPorts, scratch->simReadyAt,
                      scratch->pops);
    }
    PortTracker ports(hw);
    std::vector<i64> readyAt;
    std::vector<PortOp> pops;
    return replay(m, banks, sched, hw, windowStart, windowLen, ports,
                  readyAt, pops);
}

CycleStats
simulateCycles(const CompiledProgram &prog, i64 windowStart,
               i64 windowLen)
{
    return simulateCycles(prog.module, prog.banks, prog.schedule,
                          prog.hw, windowStart, windowLen, nullptr);
}

CycleStats
simulateCyclesReference(const CompiledProgram &prog, i64 windowStart,
                        i64 windowLen)
{
    LegacyPortTracker ports(prog.hw);
    std::vector<i64> readyAt;
    std::vector<PortOp> pops;
    return replay(prog.module, prog.banks, prog.schedule, prog.hw,
                  windowStart, windowLen, ports, readyAt, pops);
}

} // namespace finesse
