/**
 * @file
 * Functional simulator implementation.
 */
#include "sim/functional.h"

namespace finesse {

namespace {

Fp
evalOp(Op op, const Fp &a, const Fp &b)
{
    switch (op) {
      case Op::Add:
        return a.add(b);
      case Op::Sub:
        return a.sub(b);
      case Op::Neg:
        return a.neg();
      case Op::Dbl:
        return a.dbl();
      case Op::Tpl:
        return a.tpl();
      case Op::Mul:
        return a.mul(b);
      case Op::Sqr:
        return a.sqr();
      case Op::Inv:
        return a.inv();
      case Op::Cvt:
      case Op::Icv:
        // Domain conversions are value-preserving in this model.
        return a;
      case Op::Nop:
        return a;
    }
    panic("bad op");
}

} // namespace

std::vector<BigInt>
runModule(const Module &m, const FpCtx &fp, const std::vector<BigInt> &inputs)
{
    FINESSE_REQUIRE(inputs.size() == m.inputs.size(),
                    "input count mismatch: got ", inputs.size(), " want ",
                    m.inputs.size());
    std::vector<Fp> vals(m.numValues, Fp::zero(&fp));
    for (const auto &c : m.constants)
        vals[c.id] = Fp::fromBig(&fp, c.value);
    for (size_t i = 0; i < inputs.size(); ++i)
        vals[m.inputs[i]] = Fp::fromBig(&fp, inputs[i]);
    for (const Inst &inst : m.body) {
        const Fp &a = inst.a >= 0 ? vals[inst.a] : vals[0];
        const Fp &b = inst.b >= 0 ? vals[inst.b] : vals[0];
        vals[inst.dst] = evalOp(inst.op, a, b);
    }
    std::vector<BigInt> out;
    out.reserve(m.outputs.size());
    for (i32 o : m.outputs)
        out.push_back(vals[o].toBig());
    return out;
}

std::vector<BigInt>
runAllocated(const CompiledProgram &prog, const FpCtx &fp,
             const std::vector<BigInt> &inputs)
{
    const Module &m = prog.module;
    FINESSE_REQUIRE(inputs.size() == m.inputs.size(),
                    "input count mismatch");

    // Register file: banks x registers.
    const int numBanks = prog.banks.numBanks;
    std::vector<std::vector<Fp>> regs(numBanks);
    for (int b = 0; b < numBanks; ++b)
        regs[b].assign(
            std::max<i32>(prog.regs.maxRegsPerBank[b], 1),
            Fp::zero(&fp));

    auto regRef = [&](i32 valueId) -> Fp & {
        const i32 bank = prog.banks.bankOf[valueId];
        const i32 reg = prog.regs.regOf[valueId];
        FINESSE_CHECK(reg >= 0, "value %", valueId, " has no register");
        return regs[bank][reg];
    };

    // Preload constants and inputs (DMem initial image).
    for (const auto &c : m.constants)
        regRef(c.id) = Fp::fromBig(&fp, c.value);
    for (size_t i = 0; i < inputs.size(); ++i)
        regRef(m.inputs[i]) = Fp::fromBig(&fp, inputs[i]);

    // Execute bundles in schedule order. Within a bundle all reads
    // happen before any write (hardware issue semantics).
    for (const Bundle &bundle : prog.schedule.bundles) {
        std::vector<Fp> results;
        results.reserve(bundle.instIdx.size());
        for (i32 idx : bundle.instIdx) {
            const Inst &inst = m.body[idx];
            const Fp a =
                inst.a >= 0 ? regRef(inst.a) : Fp::zero(&fp);
            const Fp b =
                inst.b >= 0 ? regRef(inst.b) : Fp::zero(&fp);
            results.push_back(evalOp(inst.op, a, b));
        }
        for (size_t i = 0; i < bundle.instIdx.size(); ++i)
            regRef(m.body[bundle.instIdx[i]].dst) = results[i];
    }

    std::vector<BigInt> out;
    out.reserve(m.outputs.size());
    for (i32 o : m.outputs)
        out.push_back(regRef(o).toBig());
    return out;
}

} // namespace finesse
