/**
 * @file
 * Binary-level simulator implementation.
 */
#include "sim/binary.h"

namespace finesse {

std::vector<BigInt>
runEncoded(const EncodedProgram &prog, const FpCtx &fp,
           const std::vector<BigInt> &inputs)
{
    FINESSE_REQUIRE(inputs.size() == prog.inputRegs.size(),
                    "input count mismatch");

    // Size the register file from the encoding field widths.
    const size_t banks = size_t{1} << prog.bankBits;
    const size_t regs = size_t{1} << prog.regBits;
    std::vector<std::vector<Fp>> rf(
        banks, std::vector<Fp>(regs, Fp::zero(&fp)));

    auto at = [&](RegLoc loc) -> Fp & {
        FINESSE_CHECK(static_cast<size_t>(loc.bank) < banks &&
                      static_cast<size_t>(loc.reg) < regs,
                      "register out of range");
        return rf[loc.bank][loc.reg];
    };

    for (const auto &entry : prog.constPool)
        at(entry.loc) = Fp::fromBig(&fp, entry.value);
    for (size_t i = 0; i < inputs.size(); ++i)
        at(prog.inputRegs[i]) = Fp::fromBig(&fp, inputs[i]);

    // Execute bundle by bundle; within a bundle reads precede writes.
    const size_t width = static_cast<size_t>(prog.issueWidth);
    for (size_t base = 0; base < prog.words.size(); base += width) {
        struct Pending
        {
            RegLoc dst;
            Fp value;
        };
        std::vector<Pending> writes;
        for (size_t s = 0; s < width; ++s) {
            const auto d = prog.decode(prog.words[base + s]);
            if (d.op == Op::Nop)
                continue;
            const Fp a = at(d.a);
            const Fp b = at(d.b);
            Fp r = a;
            switch (d.op) {
              case Op::Add: r = a.add(b); break;
              case Op::Sub: r = a.sub(b); break;
              case Op::Neg: r = a.neg(); break;
              case Op::Dbl: r = a.dbl(); break;
              case Op::Tpl: r = a.tpl(); break;
              case Op::Mul: r = a.mul(b); break;
              case Op::Sqr: r = a.sqr(); break;
              case Op::Inv: r = a.inv(); break;
              case Op::Cvt:
              case Op::Icv: r = a; break;
              case Op::Nop: break;
            }
            writes.push_back({d.dst, r});
        }
        for (const Pending &w : writes)
            at(w.dst) = w.value;
    }

    std::vector<BigInt> out;
    out.reserve(prog.outputRegs.size());
    for (RegLoc loc : prog.outputRegs)
        out.push_back(at(loc).toBig());
    return out;
}

} // namespace finesse
