/**
 * @file
 * Single-cycle functional simulator (Sec. 3.4). Executes a compiled
 * program's instruction semantics with real modular arithmetic and is
 * cross-validated against the native pairing library, mirroring the
 * paper's validation against RELIC/MCL/MIRACL.
 *
 * Two execution levels:
 *  - runModule: interprets the SSA Module directly (validates CodeGen
 *    and IROpt);
 *  - runAllocated: executes in schedule order through the allocated
 *    register file (validates PackSched + RegAlloc + encoding: any
 *    illegal register reuse or mis-scheduled dependence corrupts the
 *    result).
 */
#ifndef FINESSE_SIM_FUNCTIONAL_H_
#define FINESSE_SIM_FUNCTIONAL_H_

#include <vector>

#include "compiler/backend.h"
#include "field/fp.h"

namespace finesse {

/** Execute the SSA module; inputs/outputs as standard-domain integers. */
std::vector<BigInt> runModule(const Module &m, const FpCtx &fp,
                              const std::vector<BigInt> &inputs);

/** Execute through the register file of a fully compiled program. */
std::vector<BigInt> runAllocated(const CompiledProgram &prog,
                                 const FpCtx &fp,
                                 const std::vector<BigInt> &inputs);

} // namespace finesse

#endif // FINESSE_SIM_FUNCTIONAL_H_
