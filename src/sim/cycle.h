/**
 * @file
 * Cycle-accurate simulator (Sec. 3.4): replays a compiled schedule
 * against the pipeline model (in-order issue, instruction latencies,
 * data dependences, bank read ports, write-back conflicts / FIFO) and
 * reports cycle counts, IPC, bubbles, and the issue-queue occupancy
 * trace used by the Figure 9 waterfall.
 */
#ifndef FINESSE_SIM_CYCLE_H_
#define FINESSE_SIM_CYCLE_H_

#include <array>
#include <vector>

#include "compiler/backend.h"

namespace finesse {

/** Per-cycle issue record inside the sampled window. */
struct IssueSample
{
    i64 cycle;
    int longOps = 0, shortOps = 0, invOps = 0;
};

struct CycleStats
{
    i64 totalCycles = 0;   ///< completion (last write-back of outputs)
    i64 issueCycles = 0;   ///< cycle of the last issued bundle
    size_t instrs = 0;
    i64 bubbles = 0;       ///< issue cycles with no instruction issued
    i64 maxFifoDefer = 0;  ///< worst write-back deferral observed

    std::vector<IssueSample> window; ///< sampled issue trace (Fig. 9)

    double
    ipc() const
    {
        return totalCycles ? static_cast<double>(instrs) /
                                 static_cast<double>(totalCycles)
                           : 0.0;
    }
};

struct BackendScratch; // compiler/backendprep.h

/**
 * Replay @p prog on its pipeline model. @p windowStart / @p windowLen
 * select the sampled issue-trace window (cycles).
 */
CycleStats simulateCycles(const CompiledProgram &prog,
                          i64 windowStart = 10000, i64 windowLen = 64);

/**
 * Piece-wise overload for the batched DSE path: simulates a schedule
 * against a shared, read-only module without requiring an owning
 * CompiledProgram. A non-null @p scratch reuses that worker's replay
 * buffers and dense port tracker (reset, not reallocated).
 */
CycleStats simulateCycles(const Module &m, const BankAssignment &banks,
                          const Schedule &sched, const PipelineModel &hw,
                          i64 windowStart = 10000, i64 windowLen = 64,
                          BackendScratch *scratch = nullptr);

/**
 * Reference replay on the LegacyPortTracker oracle (identity tests
 * only; production simulation uses the dense tracker -- the same one
 * the scheduler issues against, so the two views cannot diverge).
 */
CycleStats simulateCyclesReference(const CompiledProgram &prog,
                                   i64 windowStart = 10000,
                                   i64 windowLen = 64);

} // namespace finesse

#endif // FINESSE_SIM_CYCLE_H_
