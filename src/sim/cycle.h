/**
 * @file
 * Cycle-accurate simulator (Sec. 3.4): replays a compiled schedule
 * against the pipeline model (in-order issue, instruction latencies,
 * data dependences, bank read ports, write-back conflicts / FIFO) and
 * reports cycle counts, IPC, bubbles, and the issue-queue occupancy
 * trace used by the Figure 9 waterfall.
 */
#ifndef FINESSE_SIM_CYCLE_H_
#define FINESSE_SIM_CYCLE_H_

#include <array>
#include <vector>

#include "compiler/backend.h"

namespace finesse {

/** Per-cycle issue record inside the sampled window. */
struct IssueSample
{
    i64 cycle;
    int longOps = 0, shortOps = 0, invOps = 0;
};

struct CycleStats
{
    i64 totalCycles = 0;   ///< completion (last write-back of outputs)
    i64 issueCycles = 0;   ///< cycle of the last issued bundle
    size_t instrs = 0;
    i64 bubbles = 0;       ///< issue cycles with no instruction issued
    i64 maxFifoDefer = 0;  ///< worst write-back deferral observed

    std::vector<IssueSample> window; ///< sampled issue trace (Fig. 9)

    double
    ipc() const
    {
        return totalCycles ? static_cast<double>(instrs) /
                                 static_cast<double>(totalCycles)
                           : 0.0;
    }
};

/**
 * Replay @p prog on its pipeline model. @p windowStart / @p windowLen
 * select the sampled issue-trace window (cycles).
 */
CycleStats simulateCycles(const CompiledProgram &prog,
                          i64 windowStart = 10000, i64 windowLen = 64);

} // namespace finesse

#endif // FINESSE_SIM_CYCLE_H_
