/**
 * @file
 * High-level typed IR over algebraic objects (Table 4 of the paper):
 * operations on fp / fpd / ep / epd values with explicit cross-level
 * lowering (Figure 4). The production compiler pipeline lowers directly
 * to the Fp level by re-tracing the shared formula templates
 * (compiler/codegen.h); this HIR materializes the intermediate levels
 * for inspection, tooling and documentation — the "clear
 * representations" of the paper's abstraction system.
 */
#ifndef FINESSE_IR_HIR_H_
#define FINESSE_IR_HIR_H_

#include <string>
#include <vector>

#include "field/variants.h"
#include "support/common.h"

namespace finesse {

/** Value type: field element of extension dimension dim over Fp, or a
 *  curve point with coordinates in that field. */
struct HirType
{
    enum class Kind { Field, Point };

    Kind kind = Kind::Field;
    int dim = 1; ///< extension dimension over Fp (1 = fp)

    std::string
    name() const
    {
        const std::string base =
            (kind == Kind::Field ? "fp" : "ep");
        return dim == 1 ? base : base + std::to_string(dim);
    }

    bool
    operator==(const HirType &o) const
    {
        return kind == o.kind && dim == o.dim;
    }
};

/** Table 4 operations. */
enum class HirOp {
    Add,  ///< field addition            (fp-like, fp-like)
    Sub,  ///< field subtraction         (fp-like, fp-like)
    MulI, ///< field scalar multiply     (int, fp-like)
    Mul,  ///< field multiplication      (fp-like, fp-like)
    Sqr,  ///< field squaring            (fp-like)
    Exp,  ///< field exponentiation      (fp-like, int)
    Adj,  ///< multiply by adjoined el.  (fpd)
    Conj, ///< conjugate w.r.t. adjoined (fpd)
    Frob, ///< Frobenius endomorphism    (fp-like, int)
    PAdd, ///< curve point addition      (ep-like, ep-like)
    PMul, ///< curve scalar multiply     (int, ep-like)
};

const char *toString(HirOp op);

/** One HIR instruction in SSA form. */
struct HirInst
{
    HirOp op;
    i32 dst = -1;
    i32 a = -1, b = -1;
    i64 imm = 0; ///< scalar for MulI/Exp/Frob/PMul
};

/** A straight-line HIR block. */
struct HirModule
{
    std::vector<HirType> valueTypes; ///< per value id
    std::vector<HirInst> body;
    std::vector<i32> inputs;
    std::vector<i32> outputs;

    i32
    newValue(HirType t)
    {
        valueTypes.push_back(t);
        return static_cast<i32>(valueTypes.size() - 1);
    }

    i32
    input(HirType t)
    {
        const i32 v = newValue(t);
        inputs.push_back(v);
        return v;
    }

    i32
    emit(HirOp op, HirType resultType, i32 a, i32 b = -1, i64 imm = 0)
    {
        const i32 dst = newValue(resultType);
        body.push_back({op, dst, a, b, imm});
        return dst;
    }

    /** Paper-style textual rendering (Figure 4). */
    std::string print() const;

    /** Type-check all instructions; panics on violations. */
    void verify() const;
};

/**
 * Lower every dimension-@p dim field operation one tower level down a
 * quadratic extension (dim -> dim/2), splitting each dim-valued SSA
 * value into two dim/2-valued coefficients and expanding mul/sqr with
 * the selected operator variant (the Figure 4 "map_lowering" step).
 * Other instructions pass through unchanged.
 */
HirModule lowerQuadLevel(const HirModule &m, int dim,
                         const LevelVariants &variants);

} // namespace finesse

#endif // FINESSE_IR_HIR_H_
