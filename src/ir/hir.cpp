/**
 * @file
 * HIR printing, verification and quadratic-level lowering.
 */
#include "ir/hir.h"

#include <map>
#include <sstream>

namespace finesse {

const char *
toString(HirOp op)
{
    switch (op) {
      case HirOp::Add: return "add";
      case HirOp::Sub: return "sub";
      case HirOp::MulI: return "muli";
      case HirOp::Mul: return "mul";
      case HirOp::Sqr: return "sqr";
      case HirOp::Exp: return "exp";
      case HirOp::Adj: return "adj";
      case HirOp::Conj: return "conj";
      case HirOp::Frob: return "frob";
      case HirOp::PAdd: return "padd";
      case HirOp::PMul: return "pmul";
    }
    return "?";
}

std::string
HirModule::print() const
{
    std::ostringstream os;
    for (const HirInst &inst : body) {
        const HirType &rt = valueTypes[inst.dst];
        os << "%" << inst.dst << " = " << rt.name() << "."
           << toString(inst.op) << "(";
        bool first = true;
        auto arg = [&](i32 v) {
            if (!first)
                os << ", ";
            os << "%" << v << ": " << valueTypes[v].name();
            first = false;
        };
        if (inst.op == HirOp::MulI || inst.op == HirOp::PMul) {
            os << inst.imm;
            first = false;
        }
        if (inst.a >= 0)
            arg(inst.a);
        if (inst.b >= 0)
            arg(inst.b);
        if (inst.op == HirOp::Exp || inst.op == HirOp::Frob)
            os << ", " << inst.imm;
        os << ") -> " << rt.name() << "\n";
    }
    return os.str();
}

void
HirModule::verify() const
{
    auto fieldLike = [&](i32 v) {
        FINESSE_CHECK(v >= 0 &&
                      static_cast<size_t>(v) < valueTypes.size());
        FINESSE_CHECK(valueTypes[v].kind == HirType::Kind::Field,
                      "field operand expected");
    };
    for (const HirInst &inst : body) {
        switch (inst.op) {
          case HirOp::Add:
          case HirOp::Sub:
          case HirOp::Mul:
            fieldLike(inst.a);
            fieldLike(inst.b);
            FINESSE_CHECK(valueTypes[inst.a].dim ==
                          valueTypes[inst.b].dim);
            break;
          case HirOp::Sqr:
          case HirOp::MulI:
          case HirOp::Exp:
          case HirOp::Adj:
          case HirOp::Conj:
          case HirOp::Frob:
            fieldLike(inst.a);
            break;
          case HirOp::PAdd:
            FINESSE_CHECK(valueTypes[inst.a].kind ==
                          HirType::Kind::Point);
            FINESSE_CHECK(valueTypes[inst.b].kind ==
                          HirType::Kind::Point);
            break;
          case HirOp::PMul:
            FINESSE_CHECK(valueTypes[inst.a].kind ==
                          HirType::Kind::Point);
            break;
        }
    }
}

HirModule
lowerQuadLevel(const HirModule &m, int dim, const LevelVariants &variants)
{
    FINESSE_REQUIRE(dim % 2 == 0, "quadratic lowering needs even dim");
    const int half = dim / 2;
    const HirType halfT{HirType::Kind::Field, half};

    HirModule out;
    // Map: old value -> (c0, c1) at the lower level, or passthrough id.
    std::map<i32, std::pair<i32, i32>> split;
    std::map<i32, i32> passthrough;

    auto mapIn = [&](i32 v) {
        const HirType &t = m.valueTypes[v];
        if (t.kind == HirType::Kind::Field && t.dim == dim) {
            if (!split.count(v)) {
                // Inputs split lazily.
                const i32 c0 = out.input(halfT);
                const i32 c1 = out.input(halfT);
                split[v] = {c0, c1};
            }
            return;
        }
        if (!passthrough.count(v)) {
            const i32 nv = out.input(t);
            passthrough[v] = nv;
        }
    };
    for (i32 v : m.inputs)
        mapIn(v);

    auto lo = [&](i32 v) { return split.at(v); };

    for (const HirInst &inst : m.body) {
        const HirType &rt = m.valueTypes[inst.dst];
        const bool atLevel =
            rt.kind == HirType::Kind::Field && rt.dim == dim;
        if (!atLevel) {
            // Pass through (operands must not be at the lowered level).
            HirInst copy = inst;
            auto remap = [&](i32 v) {
                if (v < 0)
                    return v;
                if (passthrough.count(v))
                    return passthrough.at(v);
                return v; // defined earlier in `out` with same id: re-emit
            };
            copy.a = remap(copy.a);
            copy.b = remap(copy.b);
            copy.dst = out.newValue(rt);
            passthrough[inst.dst] = copy.dst;
            out.body.push_back(copy);
            continue;
        }

        auto emit = [&](HirOp op, i32 a, i32 b = -1, i64 imm = 0) {
            return out.emit(op, halfT, a, b, imm);
        };
        std::pair<i32, i32> res;
        switch (inst.op) {
          case HirOp::Add: {
            auto [a0, a1] = lo(inst.a);
            auto [b0, b1] = lo(inst.b);
            res = {emit(HirOp::Add, a0, b0), emit(HirOp::Add, a1, b1)};
            break;
          }
          case HirOp::Sub: {
            auto [a0, a1] = lo(inst.a);
            auto [b0, b1] = lo(inst.b);
            res = {emit(HirOp::Sub, a0, b0), emit(HirOp::Sub, a1, b1)};
            break;
          }
          case HirOp::MulI: {
            auto [a0, a1] = lo(inst.a);
            res = {emit(HirOp::MulI, a0, -1, inst.imm),
                   emit(HirOp::MulI, a1, -1, inst.imm)};
            break;
          }
          case HirOp::Conj: {
            auto [a0, a1] = lo(inst.a);
            res = {a0, emit(HirOp::MulI, a1, -1, -1)};
            break;
          }
          case HirOp::Adj: {
            // (a0 + a1 w) * w = adj(a1) + a0 w  (w^2 = lower adjoined).
            auto [a0, a1] = lo(inst.a);
            res = {emit(HirOp::Adj, a1), a0};
            break;
          }
          case HirOp::Mul: {
            auto [a0, a1] = lo(inst.a);
            auto [b0, b1] = lo(inst.b);
            if (variants.mul == MulVariant::Karatsuba) {
                const i32 t0 = emit(HirOp::Add, a0, a1);
                const i32 t1 = emit(HirOp::Add, b0, b1);
                const i32 m0 = emit(HirOp::Mul, a0, b0);
                const i32 m1 = emit(HirOp::Mul, a1, b1);
                const i32 m2 = emit(HirOp::Mul, t0, t1);
                const i32 t2 = emit(HirOp::Add, m0, m1);
                const i32 m1a = emit(HirOp::Adj, m1);
                res = {emit(HirOp::Add, m0, m1a),
                       emit(HirOp::Sub, m2, t2)};
            } else {
                const i32 m00 = emit(HirOp::Mul, a0, b0);
                const i32 m11 = emit(HirOp::Mul, a1, b1);
                const i32 m01 = emit(HirOp::Mul, a0, b1);
                const i32 m10 = emit(HirOp::Mul, a1, b0);
                res = {emit(HirOp::Add, m00, emit(HirOp::Adj, m11)),
                       emit(HirOp::Add, m01, m10)};
            }
            break;
          }
          case HirOp::Sqr: {
            auto [a0, a1] = lo(inst.a);
            if (variants.sqr == SqrVariant::Complex) {
                const i32 v0 = emit(HirOp::Mul, a0, a1);
                const i32 s = emit(HirOp::Add, a0, a1);
                const i32 t = emit(HirOp::Add, a0, emit(HirOp::Adj, a1));
                const i32 st = emit(HirOp::Mul, s, t);
                const i32 sub1 = emit(HirOp::Sub, st, v0);
                res = {emit(HirOp::Sub, sub1, emit(HirOp::Adj, v0)),
                       emit(HirOp::MulI, v0, -1, 2)};
            } else {
                const i32 s0 = emit(HirOp::Sqr, a0);
                const i32 s1 = emit(HirOp::Sqr, a1);
                const i32 v = emit(HirOp::Mul, a0, a1);
                res = {emit(HirOp::Add, s0, emit(HirOp::Adj, s1)),
                       emit(HirOp::MulI, v, -1, 2)};
            }
            break;
          }
          default:
            panic("unsupported HIR op for quadratic lowering: ",
                  toString(inst.op));
        }
        split[inst.dst] = res;
    }

    for (i32 v : m.outputs) {
        const HirType &t = m.valueTypes[v];
        if (t.kind == HirType::Kind::Field && t.dim == dim) {
            out.outputs.push_back(split.at(v).first);
            out.outputs.push_back(split.at(v).second);
        } else {
            out.outputs.push_back(passthrough.at(v));
        }
    }
    out.verify();
    return out;
}

} // namespace finesse
