/**
 * @file
 * Module printing and structural verification.
 */
#include "ir/ir.h"

#include <sstream>

#include "support/common.h"

namespace finesse {

size_t
Module::compact(const std::vector<u8> &instAlive,
                const std::vector<u8> &constAlive)
{
    FINESSE_CHECK(instAlive.size() == body.size(),
                  "compact: instAlive/body size mismatch");
    FINESSE_CHECK(constAlive.size() == constants.size(),
                  "compact: constAlive/constants size mismatch");
    size_t w = 0;
    for (size_t i = 0; i < body.size(); ++i) {
        if (instAlive[i])
            body[w++] = body[i];
    }
    const size_t removed = body.size() - w;
    body.resize(w);

    size_t cw = 0;
    for (size_t i = 0; i < constants.size(); ++i) {
        if (constAlive[i]) {
            if (cw != i)
                constants[cw] = std::move(constants[i]);
            ++cw;
        }
    }
    constants.resize(cw);
    return removed;
}

std::string
Module::print(size_t maxInstrs) const
{
    std::ostringstream os;
    os << "module: " << body.size() << " instrs, " << numValues
       << " values, " << constants.size() << " constants, "
       << inputs.size() << " inputs, " << outputs.size() << " outputs\n";
    for (size_t i = 0; i < body.size() && i < maxInstrs; ++i) {
        const Inst &inst = body[i];
        os << "  %" << inst.dst << " = " << toString(inst.op);
        if (inst.a >= 0)
            os << " %" << inst.a;
        if (inst.b >= 0)
            os << " %" << inst.b;
        os << "\n";
    }
    if (body.size() > maxInstrs)
        os << "  ... (" << body.size() - maxInstrs << " more)\n";
    return os.str();
}

void
Module::verify() const
{
    std::vector<u8> defined(numValues, 0);
    for (const auto &c : constants) {
        FINESSE_CHECK(c.id >= 0 && c.id < numValues, "const id range");
        FINESSE_CHECK(!defined[c.id], "constant redefined");
        defined[c.id] = 1;
    }
    for (i32 in : inputs) {
        FINESSE_CHECK(in >= 0 && in < numValues, "input id range");
        FINESSE_CHECK(!defined[in], "input redefined");
        defined[in] = 1;
    }
    for (const auto &inst : body) {
        const int n = arity(inst.op);
        FINESSE_CHECK(n < 1 || (inst.a >= 0 && inst.a < numValues),
                      "operand a range");
        FINESSE_CHECK(n < 2 || (inst.b >= 0 && inst.b < numValues),
                      "operand b range");
        FINESSE_CHECK(n < 1 || defined[inst.a], "use before def: %",
                      inst.a);
        FINESSE_CHECK(n < 2 || defined[inst.b], "use before def: %",
                      inst.b);
        FINESSE_CHECK(inst.dst >= 0 && inst.dst < numValues, "dst range");
        FINESSE_CHECK(!defined[inst.dst], "SSA violation: %", inst.dst);
        defined[inst.dst] = 1;
    }
    for (i32 out : outputs)
        FINESSE_CHECK(out >= 0 && out < numValues && defined[out],
                      "undefined output %", out);
}

} // namespace finesse
