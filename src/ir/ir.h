/**
 * @file
 * Fp-level SSA intermediate representation.
 *
 * After CodeGen fully unrolls the pairing (loop bounds are curve
 * constants), a program is one straight-line basic block of Fp
 * operations in SSA form, exactly the representation the paper's
 * compiler pipeline operates on. Values are dense integer ids; the
 * constant pool and the input/output maps make a Module self-contained
 * and executable by the functional simulator.
 */
#ifndef FINESSE_IR_IR_H_
#define FINESSE_IR_IR_H_

#include <string>
#include <vector>

#include "bigint/bigint.h"

namespace finesse {

/** Which part of the pairing a trace covers. */
enum class TracePart { Full, MillerOnly, FinalExpOnly };

/** Machine operations of the Fp-level ISA (Sec. 3.2 of the paper). */
enum class Op : u8 {
    Nop,
    // Linear operations (Short pipeline unit).
    Neg,
    Dbl,
    Tpl,
    Add,
    Sub,
    // Multiplicative operations (Long pipeline unit).
    Sqr,
    Mul,
    // Inverse (iterative unit).
    Inv,
    // I/O format conversions (Short).
    Cvt,
    Icv,
};

/** Unit class an op executes on. */
enum class UnitClass { Linear, Mul, Inv, None };

inline UnitClass
unitOf(Op op)
{
    switch (op) {
      case Op::Neg:
      case Op::Dbl:
      case Op::Tpl:
      case Op::Add:
      case Op::Sub:
      case Op::Cvt:
      case Op::Icv:
        return UnitClass::Linear;
      case Op::Sqr:
      case Op::Mul:
        return UnitClass::Mul;
      case Op::Inv:
        return UnitClass::Inv;
      case Op::Nop:
        return UnitClass::None;
    }
    return UnitClass::None;
}

inline const char *
toString(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Neg: return "neg";
      case Op::Dbl: return "dbl";
      case Op::Tpl: return "tpl";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Sqr: return "sqr";
      case Op::Mul: return "mul";
      case Op::Inv: return "inv";
      case Op::Cvt: return "cvt";
      case Op::Icv: return "icv";
    }
    return "?";
}

/** Number of register operands read by an op. */
inline int
arity(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
        return 2;
      case Op::Nop:
        return 0;
      default:
        return 1;
    }
}

/** One SSA instruction: dst = op(a, b). Unused operands are -1. */
struct Inst
{
    Op op = Op::Nop;
    i32 dst = -1;
    i32 a = -1;
    i32 b = -1;

    bool operator==(const Inst &) const = default;
};

/**
 * Visit the register operands an instruction actually reads, by
 * reference and arity-aware, so rewrite engines can update operand
 * slots without duplicating the arity switch at every site.
 */
template <typename InstT, typename Fn>
inline void
forEachOperand(InstT &inst, Fn &&fn)
{
    const int n = arity(inst.op);
    if (n >= 1)
        fn(inst.a);
    if (n >= 2)
        fn(inst.b);
}

/** A constant-pool entry. */
struct ConstEntry
{
    i32 id;
    BigInt value;

    bool operator==(const ConstEntry &) const = default;
};

/** Straight-line SSA program over Fp. */
struct Module
{
    BigInt p;              ///< base field modulus
    i32 numValues = 0;     ///< total SSA ids (constants+inputs+defs)
    std::vector<Inst> body;
    std::vector<i32> inputs;      ///< raw input ids (pre-ICV)
    std::vector<i32> outputs;     ///< output ids (post-CVT)
    std::vector<ConstEntry> constants;

    /** Instruction count (excluding nothing; constants are not instrs). */
    size_t size() const { return body.size(); }

    /** Count instructions by unit class. */
    size_t
    countUnit(UnitClass u) const
    {
        size_t n = 0;
        for (const auto &inst : body)
            n += unitOf(inst.op) == u;
        return n;
    }

    size_t
    countOp(Op op) const
    {
        size_t n = 0;
        for (const auto &inst : body)
            n += inst.op == op;
        return n;
    }

    /**
     * Drop tombstoned instructions and constant-pool entries in one
     * stable in-place pass each (the optimizer's single compaction at
     * pipeline end). @p instAlive / @p constAlive are parallel to
     * body / constants; returns the number of instructions removed.
     */
    size_t compact(const std::vector<u8> &instAlive,
                   const std::vector<u8> &constAlive);

    /** Render a (possibly truncated) textual listing. */
    std::string print(size_t maxInstrs = 64) const;

    /**
     * Structural validation: SSA single assignment, operands defined
     * before use, arity respected, outputs defined. Panics on failure.
     */
    void verify() const;

    /** Structural identity: same body, I/O maps and constant pool. */
    bool operator==(const Module &) const = default;
};

} // namespace finesse

#endif // FINESSE_IR_IR_H_
