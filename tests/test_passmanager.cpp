/**
 * @file
 * PassManager-layer tests: registry and pipeline composition, pass
 * ordering, per-pass attribution (deltas sum to the aggregate
 * reduction), single-pass ablation correctness against the native
 * reference, backend prerequisite enforcement, and the hit/miss
 * semantics of the process-wide front-end trace cache (one trace per
 * (curve, variants, part) across a full-catalog DSE sweep).
 */
#include <gtest/gtest.h>

#include "dse/explorer.h"
#include "sim/functional.h"

namespace finesse {
namespace {

// ------------------------------------------------------ registry/ordering

TEST(PassRegistry, StandardPipelineOrder)
{
    EXPECT_EQ(frontendPassNames(),
              (std::vector<std::string>{"constfold", "zerooneprop",
                                        "strengthreduce", "gvn", "dce"}));
    EXPECT_EQ(backendPassNames(),
              (std::vector<std::string>{"bankalloc", "packsched",
                                        "regalloc", "encode"}));
    EXPECT_EQ(PassManager::standardFrontend().names(),
              frontendPassNames());
    EXPECT_EQ(PassManager::standardBackend().names(),
              backendPassNames());
    for (const std::string &n : frontendPassNames()) {
        EXPECT_TRUE(isFrontendPassName(n));
        EXPECT_FALSE(isBackendPassName(n));
        EXPECT_TRUE(makePass(n)->isFrontend());
    }
    for (const std::string &n : backendPassNames())
        EXPECT_FALSE(makePass(n)->isFrontend());
}

TEST(PassRegistry, ParsePassListValidates)
{
    EXPECT_EQ(parsePassList(""), std::vector<std::string>{});
    EXPECT_EQ(parsePassList("gvn,dce"),
              (std::vector<std::string>{"gvn", "dce"}));
    EXPECT_EQ(parsePassList(" constfold , dce "),
              (std::vector<std::string>{"constfold", "dce"}));
    EXPECT_THROW(parsePassList("gvn,bogus"), FatalError);
    EXPECT_THROW(makePass("nope"), FatalError);
}

TEST(PassRegistry, CompileOptionsSplitPipeline)
{
    CompileOptions opt;
    EXPECT_EQ(opt.frontendPasses(), frontendPassNames());
    EXPECT_EQ(opt.backendPasses(), backendPassNames());

    opt.passes = {"gvn", "dce"};
    EXPECT_EQ(opt.frontendPasses(),
              (std::vector<std::string>{"gvn", "dce"}));
    EXPECT_EQ(opt.backendPasses(), backendPassNames());

    opt.passes = {"dce", "bankalloc", "packsched"};
    EXPECT_EQ(opt.backendPasses(),
              (std::vector<std::string>{"bankalloc", "packsched"}));

    // A backend-only list keeps the standard front end (symmetric
    // with a frontend-only list keeping the standard backend).
    opt.passes = {"bankalloc", "packsched", "regalloc", "encode"};
    EXPECT_EQ(opt.frontendPasses(), frontendPassNames());

    opt.optimize = false;
    EXPECT_EQ(opt.frontendPasses(), std::vector<std::string>{});
}

// --------------------------------------------------------- small modules

/** out = (a*0) + (b*1) + (a-a) + 2*b -- every pass has work to do. */
Module
smallModule()
{
    Module m;
    m.p = BigInt::fromString("1000003");
    auto id = [&] { return m.numValues++; };
    const i32 c0 = id(), c1 = id(), c2 = id();
    m.constants = {{c0, BigInt()}, {c1, BigInt(u64{1})},
                   {c2, BigInt(u64{2})}};
    const i32 aRaw = id(), bRaw = id();
    m.inputs = {aRaw, bRaw};
    const i32 a = id();
    m.body.push_back({Op::Icv, a, aRaw, -1});
    const i32 b = id();
    m.body.push_back({Op::Icv, b, bRaw, -1});
    const i32 t0 = id();
    m.body.push_back({Op::Mul, t0, a, c0});
    const i32 t1 = id();
    m.body.push_back({Op::Mul, t1, b, c1});
    const i32 t2 = id();
    m.body.push_back({Op::Sub, t2, a, a});
    const i32 t3 = id();
    m.body.push_back({Op::Mul, t3, c2, b});
    const i32 t4 = id();
    m.body.push_back({Op::Add, t4, t0, t1});
    const i32 t5 = id();
    m.body.push_back({Op::Add, t5, t4, t2});
    const i32 t6 = id();
    m.body.push_back({Op::Add, t6, t5, t3});
    const i32 out = id();
    m.body.push_back({Op::Cvt, out, t6, -1});
    m.outputs = {out};
    m.verify();
    return m;
}

TEST(PassPipeline, SinglePassSubsetsPreserveSemantics)
{
    const std::vector<std::vector<std::string>> subsets = {
        {"constfold"},      {"zerooneprop"}, {"strengthreduce"},
        {"gvn"},            {"dce"},         {"zerooneprop", "dce"},
        {"gvn", "dce"},     frontendPassNames(),
    };
    for (const auto &names : subsets) {
        Module m = smallModule();
        FpCtx fp(m.p);
        const auto want =
            runModule(m, fp, {BigInt(u64{5}), BigInt(u64{7})});
        const OptStats stats = runFrontendPipeline(m, names);
        EXPECT_LE(stats.instrsAfter, stats.instrsBefore);
        EXPECT_EQ(stats.totalRemoved(),
                  static_cast<i64>(stats.instrsBefore) -
                      static_cast<i64>(stats.instrsAfter));
        const auto got =
            runModule(m, fp, {BigInt(u64{5}), BigInt(u64{7})});
        EXPECT_EQ(got, want) << "subset failed";
    }
}

TEST(PassPipeline, EachPassAttributedOnSmallModule)
{
    Module m = smallModule();
    const OptStats stats = runFrontendPipeline(m, frontendPassNames());
    EXPECT_EQ(m.size(), 4u); // Icv(b) + Dbl + Add + Cvt
    // zerooneprop elides the three identities, dce sweeps the dead Icv.
    ASSERT_NE(stats.pass("zerooneprop"), nullptr);
    EXPECT_GT(stats.pass("zerooneprop")->instrsRemoved, 0);
    ASSERT_NE(stats.pass("dce"), nullptr);
    EXPECT_GT(stats.pass("dce")->instrsRemoved, 0);
    // strengthreduce rewrites mul-by-2 in place: no count delta.
    ASSERT_NE(stats.pass("strengthreduce"), nullptr);
    EXPECT_EQ(m.countOp(Op::Dbl), 1u);
    EXPECT_EQ(m.countOp(Op::Mul), 0u);
    // Per-pass deltas sum to the aggregate reduction.
    EXPECT_EQ(stats.totalRemoved(),
              static_cast<i64>(stats.instrsBefore) -
                  static_cast<i64>(stats.instrsAfter));
    EXPECT_GE(stats.iterations, 1);
    for (const PassStats &ps : stats.passes)
        EXPECT_EQ(ps.invocations, stats.iterations) << ps.name;
}

TEST(PassPipeline, BackendPrerequisitesEnforced)
{
    // packsched without bankalloc must fail loudly, not misbehave.
    EXPECT_THROW(
        runBackend(smallModule(), PipelineModel{}, true, {"packsched"}),
        PanicError);
    EXPECT_THROW(runBackend(smallModule(), PipelineModel{}, true,
                            {"bankalloc", "regalloc"}),
                 PanicError);
    // A backend prefix is a valid ablation: no regs/binary computed.
    const CompileResult partial = runBackend(
        smallModule(), PipelineModel{}, true, {"bankalloc", "packsched"});
    EXPECT_GT(partial.prog.schedule.bundles.size(), 0u);
    EXPECT_TRUE(partial.binary.words.empty());
}

// ----------------------------------------------- whole-pairing pipeline

TEST(PassPipeline, PerPassDeltasSumToAggregateOnPairing)
{
    Framework fw("BN254N");
    CompileOptions opt;
    opt.useTraceCache = false;
    const CompileResult res = fw.compile(opt);
    const OptStats &st = res.opt;
    EXPECT_GT(st.instrsBefore, st.instrsAfter);
    EXPECT_EQ(st.totalRemoved(),
              static_cast<i64>(st.instrsBefore) -
                  static_cast<i64>(st.instrsAfter));
    // All five front-end passes and all four backend stages reported.
    for (const std::string &n : frontendPassNames()) {
        ASSERT_NE(st.pass(n), nullptr) << n;
        EXPECT_TRUE(st.pass(n)->frontend);
        EXPECT_GT(st.pass(n)->invocations, 0) << n;
    }
    for (const std::string &n : backendPassNames()) {
        ASSERT_NE(st.pass(n), nullptr) << n;
        EXPECT_FALSE(st.pass(n)->frontend);
        EXPECT_EQ(st.pass(n)->invocations, 1) << n;
        EXPECT_EQ(st.pass(n)->instrsRemoved, 0) << n;
    }
    // The bulk of IROpt's win comes from zero/one propagation + DCE
    // (sparse-multiplication recovery, Table 7).
    EXPECT_GT(st.passReductionPct("zerooneprop") +
                  st.passReductionPct("dce") +
                  st.passReductionPct("gvn") +
                  st.passReductionPct("constfold"),
              2.0);
}

TEST(PassPipeline, AblationSubsetsValidateAgainstNative)
{
    Framework fw("BN254N");
    const std::vector<std::vector<std::string>> subsets = {
        {"dce"},
        {"constfold", "dce"},
        {"zerooneprop", "strengthreduce", "dce"},
        {"gvn", "dce"},
    };
    size_t fullOpt;
    {
        CompileOptions opt;
        const CompileResult res = fw.compile(opt);
        fullOpt = res.instrs();
    }
    for (const auto &names : subsets) {
        CompileOptions opt;
        opt.passes = names;
        const CompileResult res = fw.compile(opt);
        // Ablated pipelines optimize less (or equally) aggressively...
        EXPECT_GE(res.instrs(), fullOpt);
        // ...but must still compute the pairing.
        const ValidationReport rep = fw.validate(res, 1);
        EXPECT_TRUE(rep.allPassed()) << "subset size " << names.size();
    }
}

// ------------------------------------------------------------ trace cache

TEST(TraceCache, HitMissSemantics)
{
    clearTraceCache();
    Framework fw("BN254N");
    CompileOptions opt;

    const CompileResult first = fw.compile(opt);
    TraceCacheStats s = traceCacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.entries, 1u);

    // Same options: hit.
    const CompileResult second = fw.compile(opt);
    s = traceCacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);

    // Different hardware model: front end reused, backend re-run.
    CompileOptions widened = opt;
    widened.hw.issueWidth = 2;
    widened.hw.numBanks = 2;
    widened.hw.numLinUnits = 2;
    widened.hw.writebackFifo = true;
    const CompileResult wide = fw.compile(widened);
    s = traceCacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 2u);
    EXPECT_LT(wide.prog.schedule.estimatedCycles,
              first.prog.schedule.estimatedCycles);

    // Different trace part / variants / pipeline: new keys.
    CompileOptions miller = opt;
    miller.part = TracePart::MillerOnly;
    fw.compile(miller);
    CompileOptions schoolbook = opt;
    schoolbook.variants.levels[2].mul = MulVariant::Schoolbook;
    fw.compile(schoolbook);
    CompileOptions ablated = opt;
    ablated.passes = {"gvn", "dce"};
    fw.compile(ablated);
    s = traceCacheStats();
    EXPECT_EQ(s.misses, 4u);
    EXPECT_EQ(s.entries, 4u);

    // Cache off: counters untouched, result identical.
    CompileOptions uncached = opt;
    uncached.useTraceCache = false;
    const CompileResult fresh = fw.compile(uncached);
    s = traceCacheStats();
    EXPECT_EQ(s.misses, 4u);
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(fresh.instrs(), first.instrs());
    EXPECT_EQ(fresh.binary.words, first.binary.words);

    // Cached recompiles agree with each other bit-for-bit.
    EXPECT_EQ(first.instrs(), second.instrs());
    EXPECT_EQ(first.binary.words, second.binary.words);
    EXPECT_EQ(first.opt.reductionPct(), second.opt.reductionPct());
}

TEST(TraceCache, FullCatalogDseSweepTracesOncePerKey)
{
    clearTraceCache();
    // The Fig. 10-style sweep: every catalog curve against several
    // pipeline models. The front end must run exactly once per
    // (curve, variants, part) key regardless of how many hardware
    // points are evaluated.
    std::vector<PipelineModel> models;
    {
        PipelineModel deep; // single-issue L=38/S=8
        models.push_back(deep);
        PipelineModel shallow;
        shallow.longLat = 8;
        shallow.shortLat = 2;
        models.push_back(shallow);
        PipelineModel vliw;
        vliw.longLat = 8;
        vliw.shortLat = 2;
        vliw.issueWidth = 2;
        vliw.numBanks = 2;
        vliw.numLinUnits = 2;
        vliw.writebackFifo = true;
        models.push_back(vliw);
    }

    size_t curves = 0;
    for (const CurveDef &def : curveCatalog()) {
        ++curves;
        Explorer ex(def.name);
        for (const PipelineModel &hw : models) {
            CompileOptions opt;
            opt.hw = hw;
            const DsePoint p = ex.evaluate(opt, 1, def.name);
            EXPECT_GT(p.cycles, 0);
            EXPECT_GT(p.instrs, 0u);
        }
    }

    const TraceCacheStats s = traceCacheStats();
    EXPECT_EQ(s.misses, curves); // exactly one front-end trace per key
    EXPECT_EQ(s.hits, curves * (models.size() - 1));
    EXPECT_EQ(s.entries, curves);
}

TEST(TraceCache, StatsSurviveCacheHits)
{
    clearTraceCache();
    Framework fw("BLS12-381");
    CompileOptions opt;
    const CompileResult miss = fw.compile(opt);
    const CompileResult hit = fw.compile(opt);
    // Front-end attribution is preserved on the cached path.
    EXPECT_EQ(miss.opt.instrsBefore, hit.opt.instrsBefore);
    EXPECT_EQ(miss.opt.instrsAfter, hit.opt.instrsAfter);
    for (const std::string &n : frontendPassNames()) {
        ASSERT_NE(hit.opt.pass(n), nullptr);
        EXPECT_EQ(hit.opt.pass(n)->instrsRemoved,
                  miss.opt.pass(n)->instrsRemoved);
    }
}

} // namespace
} // namespace finesse
