/**
 * @file
 * Hardware model tests: area-model monotonicity and calibration
 * anchors, timing-model knee placement, technology scaling, and the
 * FPGA mapping.
 */
#include <gtest/gtest.h>

#include "hwmodel/area.h"

namespace finesse {
namespace {

TEST(AreaModel, MmulMonotoneInWidth)
{
    AreaModel am;
    double prev = 0;
    for (int bits : {128, 254, 381, 462, 509, 638}) {
        const double a = am.mmulArea(bits, 38);
        EXPECT_GT(a, prev) << bits;
        prev = a;
    }
}

TEST(AreaModel, MmulSubQuadraticViaKaratsuba)
{
    // Doubling the width should cost clearly less than 4x (the
    // Karatsuba-Wallace recursion is ~3x per doubling).
    AreaModel am;
    const double a254 = am.mmulArea(254, 38);
    const double a508 = am.mmulArea(508, 38);
    EXPECT_LT(a508, 3.9 * a254);
    EXPECT_GT(a508, 1.8 * a254);
}

TEST(AreaModel, CalibrationAnchorsBN254)
{
    // Fig. 6 anchors: mmul dominates the ALU; the single-core total
    // sits in the paper's neighborhood for the measured program sizes.
    AreaModel am;
    const double mmul = am.mmulArea(254, 38);
    EXPECT_GT(mmul, 0.35);
    EXPECT_LT(mmul, 0.75); // paper: ~0.55 mm^2 (89% of a 0.62 ALU)
    const double other = am.aluOtherArea(254, 1);
    EXPECT_GT(mmul / (mmul + other), 0.80);
}

TEST(AreaModel, SharedImemAmortization)
{
    AreaModel am;
    DesignPoint dp;
    dp.fpBits = 254;
    dp.imemBits = 84000 * 32;
    dp.dmemWords = 440;
    dp.cores = 1;
    const AreaReport one = am.report(dp);
    dp.cores = 8;
    const AreaReport eight = am.report(dp);
    // IMem percentage must fall sharply with cores (Fig. 6).
    EXPECT_GT(one.pctImem(), 40.0);
    EXPECT_LT(eight.pctImem(), 20.0);
    // 8 cores cost much less than 8x the single-core area.
    EXPECT_LT(eight.totalArea, 5.0 * one.totalArea);
    EXPECT_EQ(one.imemArea, eight.imemArea);
}

TEST(TimingModel, KneeNearDepth38For254Bit)
{
    TimingModel tm;
    // Critical path decreases with depth then floors.
    double prev = 1e9;
    int knee = 0;
    for (int d = 8; d <= 50; ++d) {
        const double cp = tm.criticalPathNs(254, d);
        EXPECT_LE(cp, prev + 1e-9);
        if (knee == 0 && cp <= tm.kFloorNs + tm.kMarginNs + 1e-9)
            knee = d;
        prev = cp;
    }
    EXPECT_GE(knee, 30);
    EXPECT_LE(knee, 42); // paper finds the optimum at 38
    // Frequency at the knee is in the paper's range (769-833 MHz).
    EXPECT_NEAR(tm.frequencyMHz(254, 38), 800.0, 60.0);
}

TEST(TimingModel, WiderMultipliersAreSlower)
{
    TimingModel tm;
    EXPECT_GT(tm.criticalPathNs(638, 20), tm.criticalPathNs(254, 20));
}

TEST(TechScale, RoundTripAndTable6Anchors)
{
    const double f40 = 800.0;
    const double f65 =
        TechScale::scaleFreq(f40, TechNode::N40LP, TechNode::N65);
    EXPECT_NEAR(f65, 440.0, 1.0); // paper: 769 -> 423 (x0.55)
    EXPECT_NEAR(TechScale::scaleFreq(f65, TechNode::N65,
                                     TechNode::N40LP),
                f40, 1e-9);
    const double a40 = 8.0;
    EXPECT_NEAR(TechScale::scaleArea(a40, TechNode::N40LP,
                                     TechNode::N65),
                12.0, 1e-9); // paper: 8.00 -> 12.0
}

TEST(FpgaModel, SliceCalibration)
{
    // The BN254N 1-core design should land in the low five digits of
    // slices (paper: 13,928) and ~150-170 MHz.
    AreaModel am;
    DesignPoint dp;
    dp.fpBits = 254;
    dp.imemBits = 84000 * 32;
    dp.dmemWords = 440;
    dp.cores = 1;
    const AreaReport r = am.report(dp);
    const double slices = FpgaModel::slices(r);
    EXPECT_GT(slices, 8000);
    EXPECT_LT(slices, 22000);
    EXPECT_NEAR(FpgaModel::frequencyMHz(254, 38), 160.0, 30.0);
}

TEST(PipelineModelChecks, LatencyTable)
{
    PipelineModel hw;
    EXPECT_EQ(hw.latency(Op::Mul), hw.longLat);
    EXPECT_EQ(hw.latency(Op::Sqr), hw.longLat);
    EXPECT_EQ(hw.latency(Op::Add), hw.shortLat);
    EXPECT_EQ(hw.latency(Op::Icv), hw.shortLat);
    EXPECT_EQ(hw.latency(Op::Inv), hw.invLat);
}

} // namespace
} // namespace finesse
