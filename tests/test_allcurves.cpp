/**
 * @file
 * End-to-end sweep: for every catalog curve, compile the full pairing
 * and cross-validate the compiled program against the native library
 * (SSA level and register-file level). This is the strongest
 * whole-framework guarantee in the suite.
 */
#include <gtest/gtest.h>

#include "core/framework.h"

namespace finesse {
namespace {

class AllCurvesEndToEnd : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AllCurvesEndToEnd, CompileSimulateValidate)
{
    Framework fw(GetParam());
    const CompileResult res = fw.compile(CompileOptions{});

    // Structure.
    EXPECT_GT(res.instrs(), 10000u);
    EXPECT_EQ(res.prog.module.outputs.size(),
              static_cast<size_t>(fw.info().k));
    EXPECT_EQ(res.prog.module.countOp(Op::Inv), 1u);

    // Timing sanity.
    const CycleStats sim = fw.simulate(res);
    EXPECT_GT(sim.ipc(), 0.85);

    // Functional correctness vs the native oracle.
    const ValidationReport rep = fw.validate(res, 1);
    EXPECT_TRUE(rep.allPassed()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Catalog, AllCurvesEndToEnd,
                         ::testing::Values("BN254N", "BN462", "BN638",
                                           "BLS12-381", "BLS12-446",
                                           "BLS12-638", "BLS24-509"),
                         [](const auto &info) {
                             std::string s = info.param;
                             for (char &c : s) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return s;
                         });

} // namespace
} // namespace finesse
