/**
 * @file
 * DSE tests: variant-space enumeration, two-stage (trace + backend)
 * evaluation consistency, objective scoring, and the co-design
 * crossover that motivates the whole framework (Sec. 2.2).
 */
#include <gtest/gtest.h>

#include "dse/explorer.h"

namespace finesse {
namespace {

TEST(Dse, VariantSpaceSizes)
{
    Explorer ex("BN254N");
    // k = 12 tower: 3 levels x 2 mul choices (mul-only).
    EXPECT_EQ(ex.variantSpace(true).size(), 8u);
    // Full space: (2 mul x 2 sqr) x (2 x 3 cubic) x (2 x 2) = 96.
    EXPECT_EQ(ex.variantSpace(false).size(), 96u);
    EXPECT_EQ(ex.towerDegrees(), (std::vector<int>{2, 6, 12}));
}

TEST(Dse, PresetsAreDistinct)
{
    Explorer ex("BN254N");
    const auto karat = ex.allKaratsuba();
    const auto school = ex.allSchoolbook();
    const auto manual = ex.manualHeuristic();
    EXPECT_NE(karat.level(2).mul, school.level(2).mul);
    // Manual: schoolbook at the bottom, karatsuba on top.
    EXPECT_EQ(manual.level(2).mul, MulVariant::Schoolbook);
    EXPECT_EQ(manual.level(12).mul, MulVariant::Karatsuba);
}

TEST(Dse, TwoStageEvaluationMatchesMonolithic)
{
    Explorer ex("BN254N");
    CompileOptions opt;
    const DsePoint direct = ex.evaluate(opt, 1, "direct");
    const Module m = ex.framework().handle().trace(
        opt.variants, TracePart::Full, true, nullptr);
    const DsePoint staged = ex.evaluateModule(m, opt.hw, 1, "staged");
    EXPECT_EQ(direct.cycles, staged.cycles);
    EXPECT_EQ(direct.instrs, staged.instrs);
    EXPECT_DOUBLE_EQ(direct.areaMm2, staged.areaMm2);
}

TEST(Dse, ObjectiveScoring)
{
    DsePoint a;
    a.cycles = 100;
    a.throughputOps = 10;
    a.thptPerArea = 5;
    a.areaMm2 = 2;
    DsePoint b;
    b.cycles = 50;
    b.throughputOps = 5;
    b.thptPerArea = 10;
    b.areaMm2 = 1;
    EXPECT_GT(Explorer::score(b, Objective::MinCycles),
              Explorer::score(a, Objective::MinCycles));
    EXPECT_GT(Explorer::score(a, Objective::MaxThroughput),
              Explorer::score(b, Objective::MaxThroughput));
    EXPECT_GT(Explorer::score(b, Objective::MaxThptPerArea),
              Explorer::score(a, Objective::MaxThptPerArea));
    EXPECT_GT(Explorer::score(b, Objective::MinArea),
              Explorer::score(a, Objective::MinArea));
}

TEST(Dse, KaratsubaCrossoverBetweenArchitectures)
{
    // The Sec. 2.2 motivating experiment, on BN254N for speed:
    // schoolbook-at-Fp2 helps single-issue; all-Karatsuba helps when
    // linear ops are cheap/parallel.
    Explorer ex("BN254N");
    const Module mKarat = ex.framework().handle().trace(
        ex.allKaratsuba(), TracePart::Full, true, nullptr);
    VariantConfig noKaratLow = ex.allKaratsuba();
    noKaratLow.levels[2].mul = MulVariant::Schoolbook;
    const Module mMixed = ex.framework().handle().trace(
        noKaratLow, TracePart::Full, true, nullptr);

    PipelineModel single; // L=38/S=8 single issue
    PipelineModel wide;
    wide.longLat = 8;
    wide.shortLat = 2;
    wide.issueWidth = 5;
    wide.numLinUnits = 4;
    wide.numBanks = 5;
    wide.writebackFifo = true;

    const i64 karatSingle =
        ex.evaluateModule(mKarat, single, 1, "ks").cycles;
    const i64 mixedSingle =
        ex.evaluateModule(mMixed, single, 1, "ms").cycles;
    const i64 karatWide =
        ex.evaluateModule(mKarat, wide, 1, "kw").cycles;
    const i64 mixedWide =
        ex.evaluateModule(mMixed, wide, 1, "mw").cycles;

    // Mixed wins on single issue; Karatsuba catches up (or wins) with
    // parallel linear units.
    EXPECT_LT(mixedSingle, karatSingle);
    EXPECT_LT(static_cast<double>(karatWide) / mixedWide,
              static_cast<double>(karatSingle) / mixedSingle);
}

TEST(Dse, Fig10ModelsValid)
{
    for (const PipelineModel &m : fig10HardwareModels())
        m.validate();
    EXPECT_EQ(fig10HardwareModels().size(), 5u);
}

} // namespace
} // namespace finesse
