/**
 * @file
 * Unit and property tests for the BigInt substrate and Montgomery context.
 */
#include <gtest/gtest.h>

#include "bigint/bigint.h"
#include "bigint/mont.h"
#include "support/rng.h"

namespace finesse {
namespace {

TEST(BigInt, ConstructAndRender)
{
    EXPECT_EQ(BigInt().toString(), "0");
    EXPECT_EQ(BigInt(u64{42}).toString(), "42");
    EXPECT_EQ(BigInt(i64{-42}).toString(), "-42");
    EXPECT_EQ(BigInt::fromString("123456789012345678901234567890").toString(),
              "123456789012345678901234567890");
    EXPECT_EQ(BigInt::fromString("-987").toString(), "-987");
    EXPECT_EQ(BigInt::fromString("0xff").toString(), "255");
    EXPECT_EQ(BigInt::fromString("0xff").toHexString(), "0xff");
    EXPECT_EQ(BigInt::fromString("-0x10").toString(), "-16");
}

TEST(BigInt, AdditionSigns)
{
    const BigInt a = BigInt::fromString("1000000000000000000000");
    const BigInt b = BigInt::fromString("999999999999999999999");
    EXPECT_EQ((a - b).toString(), "1");
    EXPECT_EQ((b - a).toString(), "-1");
    EXPECT_EQ((a + (-a)).toString(), "0");
    EXPECT_EQ(((-a) + (-b)).toString(), "-1999999999999999999999");
}

TEST(BigInt, MulKnownValue)
{
    const BigInt a = BigInt::fromString("123456789123456789123456789");
    const BigInt b = BigInt::fromString("987654321987654321");
    EXPECT_EQ((a * b).toString(),
              "121932631356500531469135800347203169112635269");
}

TEST(BigInt, KaratsubaMatchesSchoolbook)
{
    // Randomized differential across widths spanning the Karatsuba
    // threshold, including heavily unbalanced operand pairs.
    Rng rng(41);
    const int edge = static_cast<int>(kKaratsubaThresholdLimbs) * 64;
    const int sizes[] = {1,        63,       64,       65,
                         edge - 1, edge,     edge + 1, 2 * edge,
                         3 * edge, 4 * edge, 8 * edge};
    for (int abits : sizes) {
        for (int bbits : sizes) {
            BigInt a = BigInt::randomBits(rng, abits);
            BigInt b = BigInt::randomBits(rng, bbits);
            if (rng.below(2))
                a = -a;
            if (rng.below(2))
                b = -b;
            EXPECT_EQ(a * b, BigInt::mulSchoolbook(a, b))
                << abits << "x" << bbits;
        }
    }
    // All-ones operands maximize carry propagation in the z1 combine.
    const BigInt ones = (BigInt(u64{1}) << (4 * edge)) - BigInt(u64{1});
    EXPECT_EQ(ones * ones, BigInt::mulSchoolbook(ones, ones));
    EXPECT_EQ(ones * BigInt(u64{1}), ones);
    EXPECT_EQ((ones * BigInt()).toString(), "0");
}

TEST(BigInt, ShiftRoundTrip)
{
    const BigInt a = BigInt::fromString("0xdeadbeefcafebabe1234567890");
    for (int s : {1, 7, 63, 64, 65, 129, 200}) {
        EXPECT_EQ(((a << s) >> s), a) << "shift " << s;
    }
    EXPECT_EQ((BigInt(u64{1}) << 128).bitLength(), 129);
}

TEST(BigInt, DivmodProperty)
{
    Rng rng(7);
    for (int iter = 0; iter < 500; ++iter) {
        const int abits = 1 + static_cast<int>(rng.below(700));
        const int bbits = 1 + static_cast<int>(rng.below(700));
        BigInt a = BigInt::randomBits(rng, abits);
        BigInt b = BigInt::randomBits(rng, bbits);
        if (rng.below(2))
            a = -a;
        if (rng.below(2))
            b = -b;
        BigInt q, r;
        BigInt::divmod(a, b, q, r);
        EXPECT_EQ(q * b + r, a);
        EXPECT_LT(r.abs(), b.abs());
        // Truncated division: remainder sign follows dividend.
        if (!r.isZero()) {
            EXPECT_EQ(r.isNegative(), a.isNegative());
        }
    }
}

TEST(BigInt, DivmodHardCarryCases)
{
    // Divisor with top limb 0xffff... exercises the qhat correction path.
    const BigInt b = (BigInt(u64{1}) << 128) - BigInt(u64{1});
    const BigInt a = (BigInt(u64{1}) << 256) - BigInt(u64{1});
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);

    const BigInt c = (BigInt(u64{1}) << 192);
    BigInt::divmod(c, b, q, r);
    EXPECT_EQ(q * b + r, c);
    EXPECT_LT(r, b);
}

TEST(BigInt, ModEuclidean)
{
    const BigInt m(u64{7});
    EXPECT_EQ(BigInt(i64{-1}).mod(m).toString(), "6");
    EXPECT_EQ(BigInt(i64{-14}).mod(m).toString(), "0");
    EXPECT_EQ(BigInt(u64{15}).mod(m).toString(), "1");
}

TEST(BigInt, PowMod)
{
    const BigInt p = BigInt::fromString("1000000007");
    const BigInt a(u64{2});
    EXPECT_EQ(a.powMod(BigInt(u64{10}), p).toString(), "1024");
    // Fermat: a^(p-1) = 1 mod p
    EXPECT_EQ(a.powMod(p - BigInt(u64{1}), p).toString(), "1");
}

TEST(BigInt, GcdInvMod)
{
    Rng rng(11);
    const BigInt p = BigInt::fromString(
        "0x30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47");
    for (int i = 0; i < 50; ++i) {
        const BigInt a = BigInt::randomBelow(rng, p - 1) + 1;
        const BigInt inv = a.invMod(p);
        EXPECT_EQ((a * inv).mod(p).toString(), "1");
    }
    EXPECT_EQ(BigInt::gcd(BigInt(u64{48}), BigInt(u64{36})).toString(), "12");
}

TEST(BigInt, Isqrt)
{
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        const BigInt a = BigInt::randomBits(rng, 1 + rng.below(500));
        const BigInt s = a.isqrt();
        EXPECT_LE(s * s, a);
        EXPECT_GT((s + 1) * (s + 1), a);
    }
    EXPECT_EQ(BigInt(u64{144}).isqrt().toString(), "12");
    EXPECT_EQ(BigInt(u64{145}).isqrt().toString(), "12");
}

TEST(BigInt, PrimalityKnownValues)
{
    EXPECT_TRUE(isProbablePrime(BigInt(u64{2})));
    EXPECT_TRUE(isProbablePrime(BigInt(u64{65537})));
    EXPECT_FALSE(isProbablePrime(BigInt(u64{1})));
    EXPECT_FALSE(isProbablePrime(BigInt(u64{65536})));
    // BN254 (SNARK) modulus is prime.
    EXPECT_TRUE(isProbablePrime(BigInt::fromString(
        "218882428718392752222464057452572750885483644004160343436982041865"
        "75808495617")));
    // A 256-bit Carmichael-ish composite: product of two primes.
    const BigInt c = BigInt::fromString("1000000007") *
                     BigInt::fromString("1000000009");
    EXPECT_FALSE(isProbablePrime(c));
}

TEST(BigInt, DivExact)
{
    const BigInt a = BigInt::fromString("123456789123456789");
    EXPECT_EQ((a * BigInt(u64{3})).divExact(BigInt(u64{3})), a);
    EXPECT_THROW(BigInt(u64{10}).divExact(BigInt(u64{3})), PanicError);
}

TEST(Mont, RoundTrip)
{
    const BigInt p = BigInt::fromString(
        "0x2523648240000001ba344d80000000086121000000000013a700000000000013");
    MontCtx ctx(p);
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        const BigInt v = BigInt::randomBelow(rng, p);
        EXPECT_EQ(ctx.fromMont(ctx.toMont(v)), v);
    }
}

TEST(Mont, MulMatchesBigInt)
{
    const BigInt p = BigInt::fromString(
        "0x2523648240000001ba344d80000000086121000000000013a700000000000013");
    MontCtx ctx(p);
    Rng rng(19);
    for (int i = 0; i < 200; ++i) {
        const BigInt a = BigInt::randomBelow(rng, p);
        const BigInt b = BigInt::randomBelow(rng, p);
        Residue r{};
        ctx.mul(r, ctx.toMont(a), ctx.toMont(b));
        EXPECT_EQ(ctx.fromMont(r), (a * b).mod(p));
    }
}

TEST(Mont, AddSubNeg)
{
    const BigInt p = (BigInt(u64{1}) << 127) - BigInt(u64{1}); // Mersenne
    ASSERT_TRUE(isProbablePrime(p));
    MontCtx ctx(p);
    Rng rng(23);
    for (int i = 0; i < 200; ++i) {
        const BigInt a = BigInt::randomBelow(rng, p);
        const BigInt b = BigInt::randomBelow(rng, p);
        Residue r{};
        ctx.add(r, ctx.toMont(a), ctx.toMont(b));
        EXPECT_EQ(ctx.fromMont(r), (a + b).mod(p));
        ctx.sub(r, ctx.toMont(a), ctx.toMont(b));
        EXPECT_EQ(ctx.fromMont(r), (a - b).mod(p));
        ctx.neg(r, ctx.toMont(a));
        EXPECT_EQ(ctx.fromMont(r), (-a).mod(p));
    }
}

TEST(Mont, PowAndInv)
{
    const BigInt p = BigInt::fromString(
        "0x2523648240000001ba344d80000000086121000000000013a700000000000013");
    MontCtx ctx(p);
    Rng rng(29);
    for (int i = 0; i < 20; ++i) {
        const BigInt a = BigInt::randomBelow(rng, p - 1) + 1;
        const BigInt e = BigInt::randomBelow(rng, p);
        Residue r{};
        ctx.pow(r, ctx.toMont(a), e);
        EXPECT_EQ(ctx.fromMont(r), a.powMod(e, p));
        ctx.inv(r, ctx.toMont(a));
        EXPECT_EQ(ctx.fromMont(r), a.invMod(p));
    }
}

TEST(Mont, WideModulus1024Bit)
{
    // 1024-bit prime exercises the full kMaxLimbs width.
    BigInt p = (BigInt(u64{1}) << 1023);
    // Find the next number == 3 mod 4 that is prime (deterministic search).
    p = p + BigInt(u64{3});
    while (!isProbablePrime(p))
        p = p + BigInt(u64{4});
    MontCtx ctx(p);
    EXPECT_EQ(ctx.limbCount(), 16u);
    Rng rng(31);
    const BigInt a = BigInt::randomBelow(rng, p);
    const BigInt b = BigInt::randomBelow(rng, p);
    Residue r{};
    ctx.mul(r, ctx.toMont(a), ctx.toMont(b));
    EXPECT_EQ(ctx.fromMont(r), (a * b).mod(p));
}

TEST(Mont, RejectsBadModulus)
{
    EXPECT_THROW(MontCtx(BigInt(u64{10})), FatalError);
    EXPECT_THROW(MontCtx(BigInt(u64{1}) << 1030), FatalError);
}

} // namespace
} // namespace finesse
