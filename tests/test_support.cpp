/**
 * @file
 * Support-layer tests: RNG determinism and bounds, table printer,
 * panic/fatal machinery, and remaining BigInt accessors.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "bigint/bigint.h"
#include "support/common.h"
#include "support/rng.h"
#include "support/table.h"

namespace finesse {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng c(43);
    EXPECT_NE(Rng(42).next(), c.next());
}

TEST(Rng, BelowIsInRangeAndCoversSmallDomains)
{
    Rng rng(7);
    bool seen[5] = {};
    for (int i = 0; i < 500; ++i) {
        const u64 v = rng.below(5);
        ASSERT_LT(v, 5u);
        seen[v] = true;
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
    // nextDouble in [0, 1).
    for (int i = 0; i < 100; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(PanicFatal, ThrowDistinctTypes)
{
    EXPECT_THROW(panic("x"), PanicError);
    EXPECT_THROW(fatal("y"), FatalError);
    try {
        fatal("value was ", 42, " not ", 43);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
    }
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"a", "long-header"});
    t.row({"xxxxxx", "1"});
    t.row({"y", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    // Header separator present; rows aligned on column starts.
    EXPECT_NE(out.find("---"), std::string::npos);
    const size_t col2InRow1 = out.find("1");
    const size_t col2InRow2 = out.find("2");
    const size_t line1Start = out.find("xxxxxx");
    const size_t line2Start = out.find("y", out.find("1"));
    EXPECT_EQ(col2InRow1 - line1Start, col2InRow2 - line2Start);
}

TEST(BigIntAccessors, LimbsAndDouble)
{
    const BigInt v = BigInt::fromString("0x123456789abcdef0fedcba98");
    EXPECT_EQ(v.limb(0), 0x9abcdef0fedcba98ull);
    EXPECT_EQ(v.limb(1), 0x12345678ull);
    EXPECT_EQ(v.limb(7), 0u);
    EXPECT_EQ(v.limbCount(), 2u);
    EXPECT_EQ(v.low64(), 0x9abcdef0fedcba98ull);
    EXPECT_NEAR(BigInt(u64{1000}).toDouble(), 1000.0, 1e-9);
    EXPECT_NEAR(BigInt(i64{-1000}).toDouble(), -1000.0, 1e-9);
    // toLimbs round trip.
    u64 buf[4];
    v.toLimbs(buf, 4);
    EXPECT_EQ(BigInt::fromLimbs(buf, 4), v);
}

TEST(BigIntAccessors, BitsAndParity)
{
    const BigInt v(u64{0b1011});
    EXPECT_EQ(v.bit(0), 1);
    EXPECT_EQ(v.bit(1), 1);
    EXPECT_EQ(v.bit(2), 0);
    EXPECT_EQ(v.bit(3), 1);
    EXPECT_EQ(v.bit(100), 0);
    EXPECT_TRUE(v.isOdd());
    EXPECT_TRUE(BigInt(u64{4}).isEven());
    EXPECT_TRUE(BigInt().isEven());
    EXPECT_EQ(v.bitLength(), 4);
    EXPECT_EQ(BigInt().bitLength(), 0);
}

TEST(BigIntPow, SmallExponents)
{
    EXPECT_EQ(BigInt(u64{3}).pow(0), BigInt(u64{1}));
    EXPECT_EQ(BigInt(u64{3}).pow(5), BigInt(u64{243}));
    EXPECT_EQ((-BigInt(u64{2})).pow(3), BigInt(i64{-8}));
}

} // namespace
} // namespace finesse
