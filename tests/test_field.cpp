/**
 * @file
 * Tests for the extension-field operator kit: field axioms on every
 * tower level, equivalence of all operator variants, Frobenius
 * correctness, and tower parameter validation.
 */
#include <gtest/gtest.h>

#include "field/fieldops.h"
#include "field/sqrt.h"
#include "field/tower.h"
#include "support/rng.h"

namespace finesse {
namespace {

// BN254 (SNARK / Nogami flavor irrelevant here: any p = 1 mod 6 prime
// with a valid tower works for field-level tests).
const char *kP254 =
    "0x2523648240000001ba344d80000000086121000000000013a700000000000013";

class FieldTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        p_ = BigInt::fromString(kP254);
        fp_ = std::make_unique<FpCtx>(p_);
        i64 q, x0, x1;
        searchTowerNonResidues(p_, q, x0, x1);
        prm_ = computeTowerParams(p_, 12, q, x0, x1);
        tower_ = std::make_unique<NativeTower12>();
        buildTower(*tower_, fp_.get(), prm_, VariantConfig{});
    }

    Fp
    randFp()
    {
        return Fp::fromBig(fp_.get(), BigInt::randomBelow(rng_, p_));
    }

    Fp2
    randFp2()
    {
        return {randFp(), randFp(), &tower_->fp2};
    }

    Fp6
    randFp6()
    {
        return {randFp2(), randFp2(), randFp2(), &tower_->fp6};
    }

    Fp12
    randFp12()
    {
        return {randFp6(), randFp6(), &tower_->fp12};
    }

    BigInt p_;
    std::unique_ptr<FpCtx> fp_;
    TowerParams prm_;
    std::unique_ptr<NativeTower12> tower_;
    Rng rng_{101};
};

TEST_F(FieldTest, FpBasics)
{
    const Fp a = randFp();
    const Fp b = randFp();
    EXPECT_TRUE(a.add(b).equals(b.add(a)));
    EXPECT_TRUE(a.sub(a).isZero());
    EXPECT_TRUE(a.dbl().equals(a.add(a)));
    EXPECT_TRUE(a.tpl().equals(a.add(a).add(a)));
    EXPECT_TRUE(a.mul(a.inv()).equals(Fp::one(fp_.get())));
    EXPECT_TRUE(a.halve().dbl().equals(a));
    EXPECT_TRUE(muliSmall(a, 7).equals(
        a.add(a).add(a).add(a).add(a).add(a).add(a)));
    EXPECT_TRUE(muliSmall(a, -5).equals(muliSmall(a, 5).neg()));
    EXPECT_TRUE(muliSmall(a, 0).isZero());
}

/**
 * batchInvInPlace must match per-element inv() exactly on every
 * element, with zeros passing through untouched.
 */
template <typename F>
void
checkBatchInv(const std::vector<F> &elems)
{
    std::vector<F> batch = elems;
    batchInvInPlace(batch);
    ASSERT_EQ(batch.size(), elems.size());
    for (size_t i = 0; i < elems.size(); ++i) {
        if (elems[i].isZero())
            EXPECT_TRUE(batch[i].isZero()) << "index " << i;
        else
            EXPECT_TRUE(batch[i].equals(elems[i].inv())) << "index " << i;
    }
}

TEST_F(FieldTest, BatchInvMatchesScalarInvAllLevels)
{
    checkBatchInv(std::vector<Fp>{});
    checkBatchInv(std::vector<Fp>{randFp()});

    // Fp lowers to the residue-level MontCtx::batchInv; zeros
    // sprinkled through the batch must not poison the product chain.
    std::vector<Fp> fps;
    for (int i = 0; i < 17; ++i)
        fps.push_back(randFp());
    fps[0] = fps[0].zeroLike();
    fps[9] = fps[9].zeroLike();
    checkBatchInv(fps);
    checkBatchInv(std::vector<Fp>(4, fps[0].zeroLike()));

    // Tower levels run the generic Montgomery trick over their own
    // mul/inv (the G2 twist-coordinate path).
    std::vector<Fp2> f2;
    for (int i = 0; i < 9; ++i)
        f2.push_back(randFp2());
    f2[4] = f2[4].zeroLike();
    checkBatchInv(f2);

    std::vector<Fp6> f6;
    for (int i = 0; i < 5; ++i)
        f6.push_back(randFp6());
    checkBatchInv(f6);

    std::vector<Fp12> f12;
    for (int i = 0; i < 5; ++i)
        f12.push_back(randFp12());
    f12[0] = f12[0].zeroLike();
    f12[4] = f12[4].zeroLike();
    checkBatchInv(f12);
}

template <typename F>
void
checkFieldAxioms(const F &a, const F &b, const F &c)
{
    // Commutativity / associativity / distributivity.
    EXPECT_TRUE(a.mul(b).equals(b.mul(a)));
    EXPECT_TRUE(a.mul(b.mul(c)).equals(a.mul(b).mul(c)));
    EXPECT_TRUE(a.mul(b.add(c)).equals(a.mul(b).add(a.mul(c))));
    // Squaring consistency.
    EXPECT_TRUE(a.sqr().equals(a.mul(a)));
    // Inverse.
    EXPECT_TRUE(a.mul(a.inv()).equals(a.oneLike()));
    // Linear ops.
    EXPECT_TRUE(a.dbl().equals(a.add(a)));
    EXPECT_TRUE(a.tpl().equals(a.add(a).add(a)));
    EXPECT_TRUE(a.halve().dbl().equals(a));
    EXPECT_TRUE(a.neg().add(a).isZero());
}

TEST_F(FieldTest, Fp2Axioms)
{
    for (int i = 0; i < 10; ++i)
        checkFieldAxioms(randFp2(), randFp2(), randFp2());
}

TEST_F(FieldTest, Fp6Axioms)
{
    for (int i = 0; i < 5; ++i)
        checkFieldAxioms(randFp6(), randFp6(), randFp6());
}

TEST_F(FieldTest, Fp12Axioms)
{
    for (int i = 0; i < 3; ++i)
        checkFieldAxioms(randFp12(), randFp12(), randFp12());
}

TEST_F(FieldTest, VariantEquivalenceQuadratic)
{
    // The same product under every (mul, sqr) variant combination.
    NativeTower12 alt;
    VariantConfig cfg;
    cfg.levels[2] = {MulVariant::Schoolbook, SqrVariant::Schoolbook};
    cfg.levels[6] = {MulVariant::Schoolbook, SqrVariant::Schoolbook};
    cfg.levels[12] = {MulVariant::Schoolbook, SqrVariant::Schoolbook};
    buildTower(alt, fp_.get(), prm_, cfg);

    for (int i = 0; i < 10; ++i) {
        const Fp2 a = randFp2();
        const Fp2 b = randFp2();
        const Fp2 aAlt{a.c0(), a.c1(), &alt.fp2};
        const Fp2 bAlt{b.c0(), b.c1(), &alt.fp2};
        EXPECT_TRUE(a.mul(b).equals(
            Fp2{aAlt.mul(bAlt).c0(), aAlt.mul(bAlt).c1(), &tower_->fp2}));
        EXPECT_TRUE(a.sqr().equals(
            Fp2{aAlt.sqr().c0(), aAlt.sqr().c1(), &tower_->fp2}));
    }
}

TEST_F(FieldTest, VariantEquivalenceCubic)
{
    for (auto sqrVar :
         {SqrVariant::Schoolbook, SqrVariant::CHSqr2, SqrVariant::CHSqr3}) {
        for (auto mulVar : {MulVariant::Schoolbook, MulVariant::Karatsuba}) {
            NativeTower12 alt;
            VariantConfig cfg;
            cfg.levels[6] = {mulVar, sqrVar};
            buildTower(alt, fp_.get(), prm_, cfg);
            for (int i = 0; i < 5; ++i) {
                const Fp6 a = randFp6();
                const Fp6 b = randFp6();
                const Fp6 aAlt{Fp2{a.c0().c0(), a.c0().c1(), &alt.fp2},
                               Fp2{a.c1().c0(), a.c1().c1(), &alt.fp2},
                               Fp2{a.c2().c0(), a.c2().c1(), &alt.fp2},
                               &alt.fp6};
                const Fp6 bAlt{Fp2{b.c0().c0(), b.c0().c1(), &alt.fp2},
                               Fp2{b.c1().c0(), b.c1().c1(), &alt.fp2},
                               Fp2{b.c2().c0(), b.c2().c1(), &alt.fp2},
                               &alt.fp6};
                std::vector<BigInt> want, got;
                a.mul(b).toFpCoeffs(want);
                aAlt.mul(bAlt).toFpCoeffs(got);
                EXPECT_EQ(want, got);
                want.clear();
                got.clear();
                a.sqr().toFpCoeffs(want);
                aAlt.sqr().toFpCoeffs(got);
                EXPECT_EQ(want, got)
                    << "sqr variant " << toString(sqrVar);
            }
        }
    }
}

TEST_F(FieldTest, FrobeniusMatchesPowP)
{
    // frob(x) must equal x^p on every level.
    const Fp2 a2 = randFp2();
    EXPECT_TRUE(a2.frob().equals(powBig(a2, p_)));
    const Fp6 a6 = randFp6();
    EXPECT_TRUE(a6.frob().equals(powBig(a6, p_)));
    const Fp12 a12 = randFp12();
    EXPECT_TRUE(a12.frob().equals(powBig(a12, p_)));
    // frob^12 = identity on Fp12.
    EXPECT_TRUE(frobN(a12, 12).equals(a12));
    // frob is a ring homomorphism.
    const Fp12 b12 = randFp12();
    EXPECT_TRUE(a12.mul(b12).frob().equals(a12.frob().mul(b12.frob())));
}

TEST_F(FieldTest, ConjugateIsFrob6)
{
    // On Fp12, conjugation over Fp6 equals x -> x^(p^6).
    const Fp12 a = randFp12();
    EXPECT_TRUE(a.conj().equals(frobN(a, 6)));
    // x * conj(x) lands in Fp6 (c1 = 0).
    EXPECT_TRUE(a.mul(a.conj()).c1().isZero());
}

TEST_F(FieldTest, MulByGenMatchesExplicitGen)
{
    const Fp6 a = randFp6();
    EXPECT_TRUE(a.mulByGen().equals(a.mul(Fp6::gen(&tower_->fp6))));
    const Fp2 b = randFp2();
    EXPECT_TRUE(b.mulByGen().equals(b.mul(Fp2::gen(&tower_->fp2))));
    const Fp12 c = randFp12();
    EXPECT_TRUE(c.mulByGen().equals(c.mul(Fp12::gen(&tower_->fp12))));
}

TEST_F(FieldTest, MulBySmallPair)
{
    const Fp2 a = randFp2();
    const Fp2 xi = Fp2::one(&tower_->fp2).mulBySmallPair(prm_.xi0, prm_.xi1);
    EXPECT_TRUE(a.mulBySmallPair(prm_.xi0, prm_.xi1).equals(a.mul(xi)));
}

TEST_F(FieldTest, ScaleScalar)
{
    const Fp s = randFp();
    const Fp12 a = randFp12();
    std::vector<BigInt> coeffs;
    a.toFpCoeffs(coeffs);
    const Fp12 scaled = a.scaleScalar(s);
    std::vector<BigInt> got;
    scaled.toFpCoeffs(got);
    for (size_t i = 0; i < coeffs.size(); ++i) {
        EXPECT_EQ(got[i],
                  (coeffs[i] * s.toBig()).mod(p_));
    }
}

TEST_F(FieldTest, FromSlotsBasis)
{
    // fromSlots must agree with explicit powers of the generator z = w.
    std::array<Fp2, 6> slots;
    for (auto &s : slots)
        s = Fp2::zero(&tower_->fp2);
    const Fp2 val = randFp2();
    for (int slot = 0; slot < 6; ++slot) {
        for (auto &s : slots)
            s = Fp2::zero(&tower_->fp2);
        slots[slot] = val;
        const Fp12 dense = tower_->fromSlots(slots);
        // Build z^slot * embed(val) explicitly.
        Fp12 z = Fp12::gen(&tower_->fp12);
        Fp12 acc = tower_->fromSlots(
            {val, Fp2::zero(&tower_->fp2), Fp2::zero(&tower_->fp2),
             Fp2::zero(&tower_->fp2), Fp2::zero(&tower_->fp2),
             Fp2::zero(&tower_->fp2)});
        for (int i = 0; i < slot; ++i)
            acc = acc.mul(z);
        EXPECT_TRUE(dense.equals(acc)) << "slot " << slot;
    }
}

TEST_F(FieldTest, PowBigMatchesRepeatedMul)
{
    const Fp2 a = randFp2();
    Fp2 acc = Fp2::one(&tower_->fp2);
    for (int i = 0; i < 13; ++i)
        acc = acc.mul(a);
    EXPECT_TRUE(powBig(a, BigInt(u64{13})).equals(acc));
    EXPECT_TRUE(powBig(a, BigInt()).equals(Fp2::one(&tower_->fp2)));
}

TEST_F(FieldTest, SqrtFp)
{
    std::function<Fp()> sample = [&] { return randFp(); };
    for (int i = 0; i < 20; ++i) {
        const Fp a = randFp();
        const Fp sq = a.sqr();
        Fp root;
        ASSERT_TRUE(trySqrt<Fp>(sq, p_, sample, root));
        EXPECT_TRUE(root.sqr().equals(sq));
    }
    // Non-residues must be rejected: q from the tower params is one.
    const Fp nr = Fp::fromInt(fp_.get(), prm_.q);
    Fp root;
    EXPECT_FALSE(trySqrt<Fp>(nr, p_, sample, root));
}

TEST_F(FieldTest, SqrtFp2)
{
    std::function<Fp2()> sample = [&] { return randFp2(); };
    const BigInt order = p_ * p_;
    int found = 0;
    for (int i = 0; i < 10; ++i) {
        const Fp2 a = randFp2();
        const Fp2 sq = a.sqr();
        Fp2 root = Fp2::zero(&tower_->fp2);
        ASSERT_TRUE(trySqrt<Fp2>(sq, order, sample, root));
        EXPECT_TRUE(root.sqr().equals(sq));
        ++found;
    }
    EXPECT_EQ(found, 10);
}

TEST_F(FieldTest, TowerParamValidationRejectsBadResidues)
{
    // q = 1 is always a square: must be rejected.
    EXPECT_THROW(computeTowerParams(p_, 12, 1, 1, 1), FatalError);
}

TEST(FieldTower24, BuildAndAxioms)
{
    // Search a small BLS24-ish prime for cheap Fp24 checks: x = 1 mod 3,
    // p = (x-1)^2 (x^8 - x^4 + 1) / 3 + x prime and 1 mod 6.
    BigInt p, r;
    bool found = false;
    for (u64 base = (u64{1} << 16); base < (u64{1} << 16) + 3000 && !found;
         ++base) {
        const BigInt x = -BigInt(base);
        if (!(x.mod(BigInt(u64{3})) == BigInt(u64{1})))
            continue;
        const BigInt x4 = (x * x).pow(2);
        r = x4 * x4 - x4 + BigInt(u64{1});
        const BigInt cand =
            ((x - BigInt(u64{1})).pow(2) * r).divExact(BigInt(u64{3})) + x;
        if (cand.mod(BigInt(u64{6})) == BigInt(u64{1}) &&
            isProbablePrime(cand)) {
            p = cand;
            found = true;
        }
    }
    ASSERT_TRUE(found);

    FpCtx fp(p);
    i64 q, x0, x1;
    searchTowerNonResidues(p, q, x0, x1);
    const TowerParams prm = computeTowerParams(p, 24, q, x0, x1);
    NativeTower24 t;
    buildTower(t, &fp, prm, VariantConfig{});

    Rng rng(7);
    auto randFp = [&] { return Fp::fromBig(&fp, BigInt::randomBelow(rng, p)); };
    auto randFp2 = [&] { return Fp2{randFp(), randFp(), &t.fp2}; };
    auto randFp4 = [&] { return Fp4{randFp2(), randFp2(), &t.fp4}; };
    auto randFp12 = [&] {
        return Fp12b{randFp4(), randFp4(), randFp4(), &t.fp12};
    };
    auto randFp24 = [&] { return Fp24{randFp12(), randFp12(), &t.fp24}; };

    for (int i = 0; i < 3; ++i)
        checkFieldAxioms(randFp24(), randFp24(), randFp24());

    const Fp24 a = randFp24();
    EXPECT_TRUE(a.frob().equals(powBig(a, p)));
    EXPECT_TRUE(frobN(a, 24).equals(a));
    EXPECT_TRUE(a.conj().equals(frobN(a, 12)));
}

} // namespace
} // namespace finesse
// Appended edge-case coverage -------------------------------------------

namespace finesse {
namespace {

TEST_F(FieldTest, InverseOfZeroIsZeroEverywhere)
{
    // Fermat inversion maps 0 -> 0; the tower formulas must preserve
    // that convention (the hardware INV unit does the same).
    EXPECT_TRUE(Fp::zero(fp_.get()).inv().isZero());
    EXPECT_TRUE(Fp2::zero(&tower_->fp2).inv().isZero());
    EXPECT_TRUE(Fp6::zero(&tower_->fp6).inv().isZero());
    EXPECT_TRUE(Fp12::zero(&tower_->fp12).inv().isZero());
}

TEST_F(FieldTest, OneIsMultiplicativeIdentity)
{
    const Fp12 a = randFp12();
    EXPECT_TRUE(a.mul(Fp12::one(&tower_->fp12)).equals(a));
    EXPECT_TRUE(Fp12::one(&tower_->fp12).inv().equals(
        Fp12::one(&tower_->fp12)));
}

TEST_F(FieldTest, CoeffSerializationRoundTrip)
{
    const Fp12 a = randFp12();
    std::vector<BigInt> coeffs;
    a.toFpCoeffs(coeffs);
    ASSERT_EQ(coeffs.size(), 12u);
    auto it = coeffs.begin();
    const Fp12 back = Fp12::fromFpCoeffs(&tower_->fp12, it);
    EXPECT_TRUE(back.equals(a));
    EXPECT_EQ(it, coeffs.end());
}

TEST_F(FieldTest, GenHasCorrectMinimalPolynomial)
{
    // w^2 = v (the cubic generator), v^3 = xi.
    const Fp12 w = Fp12::gen(&tower_->fp12);
    const Fp12 wSquared = w.sqr();
    const Fp6 v = Fp6::gen(&tower_->fp6);
    EXPECT_TRUE(wSquared.c0().equals(v));
    EXPECT_TRUE(wSquared.c1().isZero());
    const Fp6 vCubed = v.sqr().mul(v);
    const Fp2 xi =
        Fp2::one(&tower_->fp2).mulBySmallPair(prm_.xi0, prm_.xi1);
    EXPECT_TRUE(vCubed.c0().equals(xi));
    EXPECT_TRUE(vCubed.c1().isZero() && vCubed.c2().isZero());
}

TEST_F(FieldTest, FrobeniusFixedFieldIsFp)
{
    // frob fixes exactly Fp-embedded elements.
    const Fp s = randFp();
    const Fp12 embedded = Fp12::one(&tower_->fp12).scaleScalar(s);
    EXPECT_TRUE(embedded.frob().equals(embedded));
}


TEST(FieldTower24, VariantEquivalenceAllLevels)
{
    // Same arithmetic under swapped variants at every k = 24 level.
    const BigInt x = -BigInt(u64{65558}); // from BuildAndAxioms search
    const BigInt x4 = (x * x).pow(2);
    const BigInt r = x4 * x4 - x4 + BigInt(u64{1});
    BigInt p =
        ((x - BigInt(u64{1})).pow(2) * r).divExact(BigInt(u64{3})) + x;
    if (!isProbablePrime(p) || !(p.mod(BigInt(u64{6})) == BigInt(u64{1}))) {
        // Fall back to a search if the fixed seed value is not prime.
        for (u64 base = 1 << 16;; ++base) {
            const BigInt xx = -BigInt(base);
            if (!(xx.mod(BigInt(u64{3})) == BigInt(u64{1})))
                continue;
            const BigInt xx4 = (xx * xx).pow(2);
            const BigInt rr = xx4 * xx4 - xx4 + BigInt(u64{1});
            const BigInt cand =
                ((xx - BigInt(u64{1})).pow(2) * rr)
                    .divExact(BigInt(u64{3})) +
                xx;
            if (cand.mod(BigInt(u64{6})) == BigInt(u64{1}) &&
                isProbablePrime(cand)) {
                p = cand;
                break;
            }
        }
    }
    FpCtx fp(p);
    i64 q, x0, x1;
    searchTowerNonResidues(p, q, x0, x1);
    const TowerParams prm = computeTowerParams(p, 24, q, x0, x1);

    NativeTower24 base;
    buildTower(base, &fp, prm, VariantConfig{});
    VariantConfig alt = VariantConfig::allSchoolbook({2, 4, 12, 24});
    NativeTower24 school;
    buildTower(school, &fp, prm, alt);

    Rng rng(61);
    auto randCoeffs = [&](int n) {
        std::vector<BigInt> v;
        for (int i = 0; i < n; ++i)
            v.push_back(BigInt::randomBelow(rng, p));
        return v;
    };
    for (int iter = 0; iter < 3; ++iter) {
        const auto ca = randCoeffs(24);
        const auto cb = randCoeffs(24);
        auto ia = ca.begin();
        auto ib = cb.begin();
        const Fp24 a1 = Fp24::fromFpCoeffs(&base.fp24, ia);
        const Fp24 b1 = Fp24::fromFpCoeffs(&base.fp24, ib);
        ia = ca.begin();
        ib = cb.begin();
        const Fp24 a2 = Fp24::fromFpCoeffs(&school.fp24, ia);
        const Fp24 b2 = Fp24::fromFpCoeffs(&school.fp24, ib);
        std::vector<BigInt> want, got;
        a1.mul(b1).toFpCoeffs(want);
        a2.mul(b2).toFpCoeffs(got);
        EXPECT_EQ(want, got);
        want.clear();
        got.clear();
        a1.sqr().toFpCoeffs(want);
        a2.sqr().toFpCoeffs(got);
        EXPECT_EQ(want, got);
        want.clear();
        got.clear();
        a1.inv().toFpCoeffs(want);
        a2.inv().toFpCoeffs(got);
        EXPECT_EQ(want, got);
    }
}

} // namespace
} // namespace finesse
