/**
 * @file
 * Wire-protocol tests: canonical round trips (re-encoding a decoded
 * message reproduces the input bytes, so every field -- doubles as
 * raw bit patterns included -- survives the wire), frame assembly
 * from fragmented streams, and adversarial decode robustness: every
 * truncation and random mutation of a valid payload must either
 * decode or throw FatalError -- never crash, over-allocate or read
 * out of bounds. This suite is part of the asan-ubsan CI job, which
 * is what turns "never UB" from a comment into a checked property.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include <sys/socket.h>
#include <unistd.h>

#include "curve/catalog.h"
#include "dse/distributor.h"
#include "dse/wire.h"
#include "support/rng.h"
#include "support/subprocess.h"

namespace finesse {
namespace {

using namespace wire;

/** A request exercising every serialized CompileOptions field. */
DseRequest
richRequest()
{
    DseRequest req;
    req.label = "probe/one";
    req.cores = 4;
    req.opt.variants.levels[2] = {MulVariant::Karatsuba,
                                  SqrVariant::Complex};
    req.opt.variants.levels[6] = {MulVariant::Schoolbook,
                                  SqrVariant::CHSqr2};
    req.opt.variants.levels[12] = {MulVariant::Karatsuba,
                                   SqrVariant::CHSqr3};
    req.opt.variants.g2Coords = CoordSystem::Projective;
    req.opt.variants.cyclotomicSqr = false;
    req.opt.hw.longLat = 8;
    req.opt.hw.shortLat = 2;
    req.opt.hw.invLat = 901;
    req.opt.hw.issueWidth = 3;
    req.opt.hw.numLinUnits = 2;
    req.opt.hw.numBanks = 3;
    req.opt.hw.writebackFifo = true;
    req.opt.hw.fifoDepth = 16;
    req.opt.hw.beta = 0.07125;
    req.opt.optimize = true;
    req.opt.listSchedule = false;
    req.opt.part = TracePart::MillerOnly;
    req.opt.passes = {"constfold", "gvn", "dce"};
    req.opt.useTraceCache = false;
    req.opt.jobs = 7;
    return req;
}

/** A result point with adversarial doubles (NaN, denormal, -0.0). */
DsePoint
richPoint()
{
    DsePoint p;
    p.label = "pt \"quoted\"";
    p.variants.levels[2] = {MulVariant::Schoolbook,
                            SqrVariant::Schoolbook};
    p.hw.issueWidth = 2;
    p.hw.numBanks = 2;
    p.hw.writebackFifo = true;
    p.cores = 8;
    p.instrs = 123456;
    p.mulInstrs = 4242;
    p.linInstrs = 99;
    p.cycles = -1; // i64 sign round trip
    p.ipc = std::numeric_limits<double>::quiet_NaN();
    p.areaMm2 = -0.0;
    p.freqMHz = std::numeric_limits<double>::denorm_min();
    p.criticalPathNs = 1.0 / 3.0;
    p.latencyUs = std::numeric_limits<double>::infinity();
    p.throughputOps = 1e300;
    p.thptPerArea = 5e-324;
    p.compileSeconds = 0.25;
    p.opt.instrsBefore = 1000;
    p.opt.instrsAfter = 600;
    p.opt.iterations = 3;
    p.opt.seconds = 0.125;
    PassStats ps;
    ps.name = "gvn";
    ps.invocations = 2;
    ps.instrsRemoved = -7;
    ps.seconds = 0.5;
    ps.frontend = true;
    p.opt.passes = {ps, ps};
    p.opt.passes[1].name = "packsched";
    p.opt.passes[1].frontend = false;
    return p;
}

GroupRequest
sampleRequest()
{
    GroupRequest msg;
    msg.curve = "BLS12-381";
    msg.groupId = 0x1122334455667788ull;
    msg.requests = {richRequest(), DseRequest{}};
    return msg;
}

GroupResult
sampleResult()
{
    GroupResult msg;
    msg.groupId = 42;
    msg.points = {richPoint(), DsePoint{}};
    return msg;
}

std::vector<u8>
payloadOf(const std::vector<u8> &frame)
{
    return std::vector<u8>(frame.begin() +
                               static_cast<std::ptrdiff_t>(kHeaderBytes),
                           frame.end());
}

// ------------------------------------------------------- round trips

TEST(Wire, GroupRequestRoundTripsByteIdentically)
{
    const GroupRequest msg = sampleRequest();
    const std::vector<u8> frame = encodeGroupRequest(msg);
    const GroupRequest decoded = decodeGroupRequest(payloadOf(frame));

    EXPECT_EQ(decoded.curve, msg.curve);
    EXPECT_EQ(decoded.groupId, msg.groupId);
    ASSERT_EQ(decoded.requests.size(), msg.requests.size());
    EXPECT_EQ(decoded.requests[0].label, msg.requests[0].label);
    EXPECT_EQ(decoded.requests[0].opt.variants.cacheKey(),
              msg.requests[0].opt.variants.cacheKey());
    EXPECT_EQ(decoded.requests[0].opt.passes,
              msg.requests[0].opt.passes);
    EXPECT_EQ(decoded.requests[0].opt.part, msg.requests[0].opt.part);

    // The canonical-encoding check subsumes field-by-field equality:
    // every bit of every field survived the wire.
    EXPECT_EQ(encodeGroupRequest(decoded), frame);
}

TEST(Wire, GroupResultRoundTripsByteIdentically)
{
    const GroupResult msg = sampleResult();
    const std::vector<u8> frame = encodeGroupResult(msg);
    const GroupResult decoded = decodeGroupResult(payloadOf(frame));

    ASSERT_EQ(decoded.points.size(), msg.points.size());
    EXPECT_EQ(decoded.points[0].label, msg.points[0].label);
    EXPECT_EQ(decoded.points[0].cycles, msg.points[0].cycles);
    EXPECT_TRUE(std::isnan(decoded.points[0].ipc));
    EXPECT_TRUE(std::signbit(decoded.points[0].areaMm2));
    ASSERT_EQ(decoded.points[0].opt.passes.size(), 2u);
    EXPECT_EQ(decoded.points[0].opt.passes[1].name, "packsched");

    EXPECT_EQ(encodeGroupResult(decoded), frame);
}

TEST(Wire, WorkerErrorRoundTrips)
{
    WorkerError err;
    err.groupId = 9;
    err.message = "unknown curve: X25519";
    const std::vector<u8> frame = encodeWorkerError(err);
    const WorkerError decoded = decodeWorkerError(payloadOf(frame));
    EXPECT_EQ(decoded.groupId, err.groupId);
    EXPECT_EQ(decoded.message, err.message);
    EXPECT_EQ(encodeWorkerError(decoded), frame);
}

TEST(Wire, HelloRoundTripsByteIdentically)
{
    Hello msg;
    msg.version = kProtocolVersion;
    msg.catalogHash = 0xfeedfacecafebeefull;
    const std::vector<u8> frame = encodeHello(msg);
    const Hello decoded = decodeHello(payloadOf(frame));
    EXPECT_EQ(decoded.version, msg.version);
    EXPECT_EQ(decoded.catalogHash, msg.catalogHash);
    EXPECT_EQ(encodeHello(decoded), frame);
}

TEST(Wire, PingPongRoundTripByteIdentically)
{
    Ping ping;
    ping.seq = 0x1122334455667788ull;
    const std::vector<u8> pingFrame = encodePing(ping);
    const Ping pingBack = decodePing(payloadOf(pingFrame));
    EXPECT_EQ(pingBack.seq, ping.seq);
    EXPECT_EQ(encodePing(pingBack), pingFrame);

    Pong pong;
    pong.seq = ~0ull; // heartbeats use 0; probes echo any value
    const std::vector<u8> pongFrame = encodePong(pong);
    const Pong pongBack = decodePong(payloadOf(pongFrame));
    EXPECT_EQ(pongBack.seq, pong.seq);
    EXPECT_EQ(encodePong(pongBack), pongFrame);
}

TEST(Wire, HelloRejectReasonGatesVersionAndCatalogHash)
{
    // The master-side admission check behind the handshake: a worker
    // announcing the compiled-in version AND catalog fingerprint is
    // admitted (empty reason); either field off by one bit names the
    // mismatch. This is what rejects heterogeneous pools at spawn.
    wire::Hello ok;
    ok.version = kProtocolVersion;
    ok.catalogHash = catalogHash();
    EXPECT_TRUE(helloRejectReason(ok).empty());

    wire::Hello wrongVersion = ok;
    wrongVersion.version ^= 1;
    EXPECT_FALSE(helloRejectReason(wrongVersion).empty());

    wire::Hello wrongHash = ok;
    wrongHash.catalogHash ^= 1;
    EXPECT_FALSE(helloRejectReason(wrongHash).empty());
}

// ---------------------------------------------------- frame assembly

TEST(Wire, FrameBufferReassemblesByteDribbledStream)
{
    // Two frames delivered one byte at a time: exactly two frames pop
    // out, each with the right payload, no matter how reads fragment.
    const std::vector<u8> a = encodeGroupRequest(sampleRequest());
    const std::vector<u8> b = encodeGroupResult(sampleResult());
    std::vector<u8> stream = a;
    stream.insert(stream.end(), b.begin(), b.end());

    FrameBuffer buf;
    std::vector<Frame> got;
    Frame f;
    for (u8 byte : stream) {
        buf.append(&byte, 1);
        while (buf.next(f))
            got.push_back(f);
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].type, FrameType::GroupRequest);
    EXPECT_EQ(got[1].type, FrameType::GroupResult);
    EXPECT_EQ(got[0].payload, payloadOf(a));
    EXPECT_EQ(got[1].payload, payloadOf(b));
    EXPECT_EQ(buf.pendingBytes(), 0u);
}

TEST(Wire, FrameBufferRejectsBadMagic)
{
    std::vector<u8> frame = encodeWorkerError({0, "x"});
    frame[0] ^= 0xff;
    FrameBuffer buf;
    buf.append(frame.data(), frame.size());
    Frame f;
    EXPECT_THROW(buf.next(f), FatalError);
}

TEST(Wire, FrameBufferRejectsUnknownType)
{
    std::vector<u8> frame = encodeWorkerError({0, "x"});
    frame[4] = 0x7f; // type byte
    FrameBuffer buf;
    buf.append(frame.data(), frame.size());
    Frame f;
    EXPECT_THROW(buf.next(f), FatalError);
}

TEST(Wire, FrameBufferAcceptsHandshakeAndLivenessTypes)
{
    // The protocol-2 types (Hello=4, Ping=5, Pong=6) assemble like any
    // frame; one past the last known type is rejected -- the guard
    // must track the enum, not stay pinned at WorkerError.
    const std::vector<std::vector<u8>> frames = {
        encodeHello({kProtocolVersion, 7}), encodePing({1}),
        encodePong({1})};
    FrameBuffer buf;
    for (const std::vector<u8> &fr : frames)
        buf.append(fr.data(), fr.size());
    Frame f;
    ASSERT_TRUE(buf.next(f));
    EXPECT_EQ(f.type, FrameType::Hello);
    ASSERT_TRUE(buf.next(f));
    EXPECT_EQ(f.type, FrameType::Ping);
    ASSERT_TRUE(buf.next(f));
    EXPECT_EQ(f.type, FrameType::Pong);
    EXPECT_FALSE(buf.next(f));

    std::vector<u8> bad = encodePong({1});
    bad[4] = static_cast<u8>(FrameType::Pong) + 1;
    FrameBuffer rejecting;
    rejecting.append(bad.data(), bad.size());
    EXPECT_THROW(rejecting.next(f), FatalError);
}

TEST(Wire, FrameBufferRejectsOversizedLength)
{
    // Header claims a payload beyond kMaxPayload: must be rejected
    // up front, not buffered toward a 4 GiB allocation.
    std::vector<u8> frame = encodeWorkerError({0, "x"});
    const u32 huge = static_cast<u32>(kMaxPayload) + 1;
    for (int i = 0; i < 4; ++i)
        frame[5 + static_cast<size_t>(i)] =
            static_cast<u8>(huge >> (8 * i));
    FrameBuffer buf;
    buf.append(frame.data(), frame.size());
    Frame f;
    EXPECT_THROW(buf.next(f), FatalError);
}

TEST(Wire, FrameBufferHonorsLoweredPayloadCap)
{
    // The handshake hardening: before a peer's Hello is validated the
    // master caps its frame buffer at a few KB, so a forged length
    // prefix cannot drive a large allocation. A frame whose header
    // claims more than the cap is rejected AT HEADER-DECODE TIME --
    // the poison fires even though none of the payload ever arrives.
    std::vector<u8> frame = encodeWorkerError({0, "x"});
    const u32 claimed = 8192;
    for (int i = 0; i < 4; ++i)
        frame[5 + static_cast<size_t>(i)] =
            static_cast<u8>(claimed >> (8 * i));

    FrameBuffer capped;
    capped.maxPayload(4096);
    capped.append(frame.data(), wire::kHeaderBytes); // header only
    Frame f;
    EXPECT_THROW(capped.next(f), FatalError);

    // The same header under the default cap just waits for its bytes.
    FrameBuffer uncapped;
    uncapped.append(frame.data(), wire::kHeaderBytes);
    EXPECT_FALSE(uncapped.next(f));
}

TEST(Wire, FrameBufferCapCannotExceedProtocolMax)
{
    // maxPayload clamps to kMaxPayload: a caller cannot accidentally
    // re-open the 4 GiB allocation hole by passing a huge cap.
    std::vector<u8> frame = encodeWorkerError({0, "x"});
    const u32 huge = static_cast<u32>(kMaxPayload) + 1;
    for (int i = 0; i < 4; ++i)
        frame[5 + static_cast<size_t>(i)] =
            static_cast<u8>(huge >> (8 * i));
    FrameBuffer buf;
    buf.maxPayload(~size_t{0});
    buf.append(frame.data(), frame.size());
    Frame f;
    EXPECT_THROW(buf.next(f), FatalError);
}

TEST(Wire, FramesSurviveASocketpairInArbitraryFragments)
{
    // The same reassembly property as the byte-dribble test, but
    // through a real AF_UNIX stream socket with the production fd
    // helpers (writeAllFd / readSomeFd) -- the path every socket
    // transport shares. Writes are fragmented at prime-ish sizes so
    // reads observe arbitrary splits.
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    const std::vector<u8> a = encodeGroupRequest(sampleRequest());
    const std::vector<u8> b = encodeGroupResult(sampleResult());
    std::vector<u8> stream = a;
    stream.insert(stream.end(), b.begin(), b.end());

    FrameBuffer buf;
    std::vector<Frame> got;
    Frame f;
    u8 chunk[64];
    size_t sent = 0;
    while (sent < stream.size()) {
        const size_t n = std::min<size_t>(37, stream.size() - sent);
        ASSERT_TRUE(writeAllFd(sv[0], stream.data() + sent, n));
        sent += n;
        for (;;) {
            // Drain what the socket has buffered; the writer end is
            // this same thread, so a short read just means "caught up".
            const long r = readSomeFd(sv[1], chunk, sizeof chunk);
            ASSERT_GT(r, 0);
            buf.append(chunk, static_cast<size_t>(r));
            while (buf.next(f))
                got.push_back(f);
            if (static_cast<size_t>(r) < sizeof chunk)
                break;
        }
    }
    ::close(sv[0]);
    ::close(sv[1]);

    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].type, FrameType::GroupRequest);
    EXPECT_EQ(got[1].type, FrameType::GroupResult);
    EXPECT_EQ(got[0].payload, payloadOf(a));
    EXPECT_EQ(got[1].payload, payloadOf(b));
    EXPECT_EQ(buf.pendingBytes(), 0u);
}

TEST(Wire, FrameBufferWaitsOnIncompleteFrame)
{
    const std::vector<u8> frame = encodeGroupRequest(sampleRequest());
    FrameBuffer buf;
    buf.append(frame.data(), frame.size() - 1);
    Frame f;
    EXPECT_FALSE(buf.next(f));
    EXPECT_GT(buf.pendingBytes(), 0u);
    buf.append(frame.data() + frame.size() - 1, 1);
    EXPECT_TRUE(buf.next(f));
    EXPECT_EQ(buf.pendingBytes(), 0u);
}

// ------------------------------------------------- decode robustness

/**
 * Decoding arbitrary bytes must either succeed or throw FatalError;
 * anything else (crash, OOB read, huge allocation) fails the test --
 * and the asan-ubsan CI job catches the silent variants.
 */
template <typename Decoder>
void
expectNoUb(const std::vector<u8> &payload, Decoder decode)
{
    try {
        decode(payload);
    } catch (const FatalError &) {
        // Rejected cleanly: the expected outcome for junk.
    }
}

TEST(Wire, EveryTruncationOfValidPayloadsIsRejectedCleanly)
{
    const std::vector<u8> req =
        payloadOf(encodeGroupRequest(sampleRequest()));
    for (size_t n = 0; n < req.size(); ++n) {
        std::vector<u8> cut(req.begin(),
                            req.begin() + static_cast<std::ptrdiff_t>(n));
        EXPECT_THROW(decodeGroupRequest(cut), FatalError)
            << "prefix " << n << " of " << req.size();
    }

    const std::vector<u8> res =
        payloadOf(encodeGroupResult(sampleResult()));
    for (size_t n = 0; n < res.size(); ++n) {
        std::vector<u8> cut(res.begin(),
                            res.begin() + static_cast<std::ptrdiff_t>(n));
        EXPECT_THROW(decodeGroupResult(cut), FatalError)
            << "prefix " << n << " of " << res.size();
    }

    const std::vector<u8> hello = payloadOf(
        encodeHello({kProtocolVersion, 0xfeedfacecafebeefull}));
    for (size_t n = 0; n < hello.size(); ++n) {
        std::vector<u8> cut(
            hello.begin(),
            hello.begin() + static_cast<std::ptrdiff_t>(n));
        EXPECT_THROW(decodeHello(cut), FatalError)
            << "prefix " << n << " of " << hello.size();
    }

    const std::vector<u8> ping =
        payloadOf(encodePing({0x1122334455667788ull}));
    for (size_t n = 0; n < ping.size(); ++n) {
        std::vector<u8> cut(
            ping.begin(), ping.begin() + static_cast<std::ptrdiff_t>(n));
        EXPECT_THROW(decodePing(cut), FatalError)
            << "prefix " << n << " of " << ping.size();
        EXPECT_THROW(decodePong(cut), FatalError)
            << "prefix " << n << " of " << ping.size();
    }
}

TEST(Wire, HandshakeAndLivenessTrailingGarbageIsRejected)
{
    std::vector<u8> hello =
        payloadOf(encodeHello({kProtocolVersion, 1}));
    hello.push_back(0);
    EXPECT_THROW(decodeHello(hello), FatalError);

    std::vector<u8> pong = payloadOf(encodePong({1}));
    pong.push_back(0);
    EXPECT_THROW(decodePong(pong), FatalError);
}

TEST(Wire, TrailingGarbageIsRejected)
{
    std::vector<u8> req = payloadOf(encodeGroupRequest(sampleRequest()));
    req.push_back(0);
    EXPECT_THROW(decodeGroupRequest(req), FatalError);
}

TEST(Wire, SingleByteMutationFuzz)
{
    // Flip random bytes of valid payloads: decode must never
    // misbehave. (Many mutations still decode -- e.g. a flipped bit
    // inside a double -- which is fine; the property under test is
    // "no UB on corrupted input", not "all corruption detected".)
    Rng rng(0xD15E);
    const std::vector<u8> req =
        payloadOf(encodeGroupRequest(sampleRequest()));
    const std::vector<u8> res =
        payloadOf(encodeGroupResult(sampleResult()));
    for (int iter = 0; iter < 2000; ++iter) {
        std::vector<u8> mut = (iter & 1) ? req : res;
        const size_t pos = rng.below(mut.size());
        mut[pos] ^= static_cast<u8>(1 + rng.below(255));
        if (iter & 1)
            expectNoUb(mut, [](const std::vector<u8> &p) {
                decodeGroupRequest(p);
            });
        else
            expectNoUb(mut, [](const std::vector<u8> &p) {
                decodeGroupResult(p);
            });
    }
}

TEST(Wire, RandomBytesFuzz)
{
    // Pure noise payloads of varied sizes, plus noise with a valid
    // length-looking prefix: reject or decode, never UB.
    Rng rng(0xF00D);
    for (int iter = 0; iter < 2000; ++iter) {
        std::vector<u8> junk(rng.below(256));
        for (u8 &b : junk)
            b = static_cast<u8>(rng.below(256));
        expectNoUb(junk, [](const std::vector<u8> &p) {
            decodeGroupRequest(p);
        });
        expectNoUb(junk, [](const std::vector<u8> &p) {
            decodeGroupResult(p);
        });
        expectNoUb(junk, [](const std::vector<u8> &p) {
            decodeWorkerError(p);
        });
        expectNoUb(junk, [](const std::vector<u8> &p) { decodeHello(p); });
        expectNoUb(junk, [](const std::vector<u8> &p) { decodePing(p); });
        expectNoUb(junk, [](const std::vector<u8> &p) { decodePong(p); });
    }
}

TEST(Wire, HugeElementCountsAreRejectedWithoutAllocating)
{
    // A payload whose request count claims 2^32-1 entries but carries
    // no bytes: the count bound must reject it before any reserve.
    WireWriter w;
    w.str("BN254N");
    w.u64v(1);
    w.u32v(0xffffffffu);
    EXPECT_THROW(decodeGroupRequest(w.bytes()), FatalError);

    WireWriter w2;
    w2.u64v(1);
    w2.u32v(0xfffffff0u);
    EXPECT_THROW(decodeGroupResult(w2.bytes()), FatalError);
}

} // namespace
} // namespace finesse
