/**
 * @file
 * Property tests for NAF / binary recoding.
 */
#include <gtest/gtest.h>

#include "pairing/naf.h"
#include "support/rng.h"

namespace finesse {
namespace {

BigInt
reconstruct(const std::vector<int> &digits)
{
    BigInt v;
    for (int d : digits) {
        v = v << 1;
        if (d == 1)
            v = v + BigInt(u64{1});
        else if (d == -1)
            v = v - BigInt(u64{1});
    }
    return v;
}

class NafProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(NafProperty, ReconstructsAndNonAdjacent)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 50; ++iter) {
        const BigInt v = BigInt::randomBits(rng, GetParam());
        const auto digits = nafDigits(v);
        EXPECT_EQ(reconstruct(digits), v);
        // Non-adjacency: no two consecutive nonzero digits.
        for (size_t i = 1; i < digits.size(); ++i) {
            EXPECT_FALSE(digits[i] != 0 && digits[i - 1] != 0)
                << "adjacent nonzeros at " << i;
        }
        // Leading digit is 1; length <= bits + 1.
        EXPECT_EQ(digits.front(), 1);
        EXPECT_LE(digits.size(),
                  static_cast<size_t>(v.bitLength()) + 1);
        // NAF has at most ~1/3 nonzero density (allow slack).
        size_t nonzero = 0;
        for (int d : digits)
            nonzero += d != 0;
        EXPECT_LE(nonzero, digits.size() / 2 + 2);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, NafProperty,
                         ::testing::Values(8, 62, 64, 127, 254, 509));

TEST(Naf, SmallKnownValues)
{
    // 7 = 8 - 1 -> 1 0 0 -1
    EXPECT_EQ(nafDigits(BigInt(u64{7})),
              (std::vector<int>{1, 0, 0, -1}));
    // 1 -> 1
    EXPECT_EQ(nafDigits(BigInt(u64{1})), (std::vector<int>{1}));
    // 12 = 1100b -> 1 1 0 0 has adjacency; NAF: 10-100 (16-4)
    EXPECT_EQ(nafDigits(BigInt(u64{12})),
              (std::vector<int>{1, 0, -1, 0, 0}));
}

TEST(Naf, BinaryDigits)
{
    Rng rng(3);
    const BigInt v = BigInt::randomBits(rng, 100);
    const auto digits = binaryDigits(v);
    EXPECT_EQ(reconstruct(digits), v);
    EXPECT_EQ(digits.size(), static_cast<size_t>(v.bitLength()));
}

} // namespace
} // namespace finesse
