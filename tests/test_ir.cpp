/**
 * @file
 * IR structural tests: verifier catches SSA violations, printer
 * renders, op metadata (arity, unit classes) is consistent, and the
 * encoder's field-width adaptation behaves.
 */
#include <gtest/gtest.h>

#include "core/framework.h"
#include "ir/ir.h"

namespace finesse {
namespace {

Module
tinyModule()
{
    Module m;
    m.p = BigInt::fromString("101");
    const i32 raw = m.numValues++;
    m.inputs = {raw};
    const i32 a = m.numValues++;
    m.body.push_back({Op::Icv, a, raw, -1});
    const i32 b = m.numValues++;
    m.body.push_back({Op::Sqr, b, a, -1});
    const i32 out = m.numValues++;
    m.body.push_back({Op::Cvt, out, b, -1});
    m.outputs = {out};
    return m;
}

TEST(IrVerify, AcceptsWellFormed)
{
    Module m = tinyModule();
    EXPECT_NO_THROW(m.verify());
}

TEST(IrVerify, RejectsUseBeforeDef)
{
    Module m = tinyModule();
    m.body[1].a = m.body[1].dst; // self-reference
    EXPECT_THROW(m.verify(), PanicError);
}

TEST(IrVerify, RejectsDoubleDef)
{
    Module m = tinyModule();
    m.body[2].dst = m.body[1].dst;
    EXPECT_THROW(m.verify(), PanicError);
}

TEST(IrVerify, RejectsUndefinedOutput)
{
    Module m = tinyModule();
    m.outputs.push_back(m.numValues++); // never defined
    EXPECT_THROW(m.verify(), PanicError);
}

TEST(IrVerify, RejectsOutOfRangeOperand)
{
    Module m = tinyModule();
    m.body[1].a = 999;
    EXPECT_THROW(m.verify(), PanicError);
}

TEST(IrMeta, ArityAndUnits)
{
    EXPECT_EQ(arity(Op::Add), 2);
    EXPECT_EQ(arity(Op::Mul), 2);
    EXPECT_EQ(arity(Op::Sqr), 1);
    EXPECT_EQ(arity(Op::Nop), 0);
    EXPECT_EQ(unitOf(Op::Mul), UnitClass::Mul);
    EXPECT_EQ(unitOf(Op::Sqr), UnitClass::Mul);
    EXPECT_EQ(unitOf(Op::Tpl), UnitClass::Linear);
    EXPECT_EQ(unitOf(Op::Inv), UnitClass::Inv);
    EXPECT_EQ(unitOf(Op::Nop), UnitClass::None);
    // Every op has a printable name.
    for (int i = 0; i <= static_cast<int>(Op::Icv); ++i)
        EXPECT_STRNE(toString(static_cast<Op>(i)), "?");
}

TEST(IrPrint, RendersAndTruncates)
{
    Module m = tinyModule();
    const std::string full = m.print(100);
    EXPECT_NE(full.find("sqr"), std::string::npos);
    const std::string cut = m.print(1);
    EXPECT_NE(cut.find("more"), std::string::npos);
}

TEST(IrStats, CountsByUnit)
{
    Module m = tinyModule();
    EXPECT_EQ(m.countUnit(UnitClass::Mul), 1u);
    EXPECT_EQ(m.countUnit(UnitClass::Linear), 2u); // icv + cvt
    EXPECT_EQ(m.countOp(Op::Sqr), 1u);
}

TEST(Encoding, WidthAdaptsToRegisterPressure)
{
    // Tiny module: fits a 32-bit word.
    Module m = tinyModule();
    const CompileResult small = runBackend(m, PipelineModel{}, true);
    EXPECT_EQ(small.binary.wordBits, 32);

    // A module with thousands of simultaneously-live values forces
    // wide register fields.
    Module big;
    big.p = BigInt::fromString("101");
    const i32 raw = big.numValues++;
    big.inputs = {raw};
    const i32 a = big.numValues++;
    big.body.push_back({Op::Icv, a, raw, -1});
    std::vector<i32> vals{a};
    for (int i = 0; i < 3000; ++i) {
        const i32 d = big.numValues++;
        big.body.push_back({Op::Add, d, vals.back(), a});
        vals.push_back(d);
    }
    // Sum everything so all values stay live to the end.
    i32 acc = vals[0];
    for (size_t i = 1; i < vals.size(); ++i) {
        const i32 d = big.numValues++;
        big.body.push_back({Op::Add, d, acc, vals[i]});
        acc = d;
    }
    const i32 out = big.numValues++;
    big.body.push_back({Op::Cvt, out, acc, -1});
    big.outputs = {out};
    big.verify();
    // Program order keeps every value live across the creation phase
    // (list scheduling would interleave and collapse the pressure).
    const CompileResult wide = runBackend(big, PipelineModel{}, false);
    EXPECT_GT(wide.prog.regs.maxRegs(), 512);
    EXPECT_EQ(wide.binary.wordBits, 64);
}

} // namespace
} // namespace finesse
