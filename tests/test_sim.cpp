/**
 * @file
 * Simulator unit tests: latency laws of the cycle-accurate model on
 * hand-built programs, FIFO write-back behavior, binary-level
 * execution, and failure injection (bit flips in the binary must be
 * observable — the paper's fault-injection discussion).
 */
#include <gtest/gtest.h>

#include "core/framework.h"
#include "sim/binary.h"
#include "sim/cycle.h"
#include "sim/functional.h"

namespace finesse {
namespace {

const char *kP = "0x2523648240000001ba344d80000000086121000000000013"
                 "a700000000000013";

/** Build a chain: out = (((a*a)*a)...*a), n muls deep. */
Module
mulChain(int n)
{
    Module m;
    m.p = BigInt::fromString(kP);
    const i32 raw = m.numValues++;
    m.inputs = {raw};
    i32 cur = m.numValues++;
    m.body.push_back({Op::Icv, cur, raw, -1});
    for (int i = 0; i < n; ++i) {
        const i32 next = m.numValues++;
        m.body.push_back({Op::Mul, next, cur, cur});
        cur = next;
    }
    const i32 out = m.numValues++;
    m.body.push_back({Op::Cvt, out, cur, -1});
    m.outputs = {out};
    m.verify();
    return m;
}

CompiledProgram
compileModule(Module m, const PipelineModel &hw, bool sched = true)
{
    CompileResult res = runBackend(std::move(m), hw, sched);
    return res.prog;
}

TEST(CycleSim, DependentChainPaysFullLatency)
{
    PipelineModel hw;
    hw.longLat = 38;
    hw.shortLat = 8;
    const int n = 10;
    const CompiledProgram prog = compileModule(mulChain(n), hw);
    const CycleStats stats = simulateCycles(prog);
    // icv (8) + n serial muls (38 each) + cvt (8); issue gaps only.
    EXPECT_GE(stats.totalCycles, n * 38);
    EXPECT_LE(stats.totalCycles, n * 38 + 3 * 8 + 8);
}

TEST(CycleSim, IndependentMulsPipeline)
{
    // 20 independent muls: one per cycle through the pipelined mmul.
    Module m;
    m.p = BigInt::fromString(kP);
    const i32 raw = m.numValues++;
    m.inputs = {raw};
    const i32 a = m.numValues++;
    m.body.push_back({Op::Icv, a, raw, -1});
    std::vector<i32> prods;
    for (int i = 0; i < 20; ++i) {
        const i32 d = m.numValues++;
        m.body.push_back({Op::Mul, d, a, a});
        prods.push_back(d);
    }
    // Reduce so nothing is dead (a balanced-ish add chain).
    i32 acc = prods[0];
    for (size_t i = 1; i < prods.size(); ++i) {
        const i32 d = m.numValues++;
        m.body.push_back({Op::Add, d, acc, prods[i]});
        acc = d;
    }
    const i32 out = m.numValues++;
    m.body.push_back({Op::Cvt, out, acc, -1});
    m.outputs = {out};
    m.verify();

    PipelineModel hw;
    const CompiledProgram prog = compileModule(std::move(m), hw);
    const CycleStats stats = simulateCycles(prog);
    // All muls issue back-to-back: far less than serial n*38.
    EXPECT_LT(stats.totalCycles, 20 * 38 / 2);
}

TEST(CycleSim, WritebackConflictNeedsFifoOrStall)
{
    // A Long and a Short writing the same bank can collide at
    // write-back (issued longLat - shortLat cycles apart).
    Module m;
    m.p = BigInt::fromString(kP);
    const i32 raw = m.numValues++;
    m.inputs = {raw};
    const i32 a = m.numValues++;
    m.body.push_back({Op::Icv, a, raw, -1});
    const i32 mul = m.numValues++;
    m.body.push_back({Op::Mul, mul, a, a});
    // 40 filler shorts; one will land on the mul's write-back cycle.
    i32 cur = a;
    for (int i = 0; i < 40; ++i) {
        const i32 d = m.numValues++;
        m.body.push_back({Op::Add, d, cur, a});
        cur = d;
    }
    const i32 join = m.numValues++;
    m.body.push_back({Op::Add, join, cur, mul});
    const i32 out = m.numValues++;
    m.body.push_back({Op::Cvt, out, join, -1});
    m.outputs = {out};
    m.verify();

    PipelineModel noFifo;
    noFifo.writebackFifo = false;
    PipelineModel fifo;
    fifo.writebackFifo = true;
    const CycleStats a1 =
        simulateCycles(compileModule(m, noFifo, false));
    const CycleStats a2 = simulateCycles(compileModule(m, fifo, false));
    EXPECT_LE(a2.totalCycles, a1.totalCycles);
}

TEST(CycleSim, InvLatencyDominates)
{
    Module m;
    m.p = BigInt::fromString(kP);
    const i32 raw = m.numValues++;
    m.inputs = {raw};
    const i32 a = m.numValues++;
    m.body.push_back({Op::Icv, a, raw, -1});
    const i32 inv = m.numValues++;
    m.body.push_back({Op::Inv, inv, a, -1});
    const i32 out = m.numValues++;
    m.body.push_back({Op::Cvt, out, inv, -1});
    m.outputs = {out};

    PipelineModel hw;
    hw.invLat = 700;
    const CycleStats stats = simulateCycles(compileModule(m, hw));
    EXPECT_GE(stats.totalCycles, 700);
    EXPECT_LE(stats.totalCycles, 700 + 40);
}

TEST(FunctionalSim, HandProgram)
{
    // out = (a + b)^2 - a*b
    Module m;
    m.p = BigInt::fromString("101");
    const i32 ra = m.numValues++, rb = m.numValues++;
    m.inputs = {ra, rb};
    const i32 a = m.numValues++;
    m.body.push_back({Op::Icv, a, ra, -1});
    const i32 b = m.numValues++;
    m.body.push_back({Op::Icv, b, rb, -1});
    const i32 s = m.numValues++;
    m.body.push_back({Op::Add, s, a, b});
    const i32 sq = m.numValues++;
    m.body.push_back({Op::Sqr, sq, s, -1});
    const i32 ab = m.numValues++;
    m.body.push_back({Op::Mul, ab, a, b});
    const i32 d = m.numValues++;
    m.body.push_back({Op::Sub, d, sq, ab});
    const i32 out = m.numValues++;
    m.body.push_back({Op::Cvt, out, d, -1});
    m.outputs = {out};
    m.verify();

    FpCtx fp(m.p);
    // a=5, b=7: (12)^2 - 35 = 109 = 8 mod 101
    const auto got = runModule(m, fp, {BigInt(u64{5}), BigInt(u64{7})});
    EXPECT_EQ(got[0], BigInt(u64{8}));
}

TEST(BinarySim, MatchesRegisterFileSimOnPairing)
{
    Framework fw("BN254N");
    const CompileResult res = fw.compile(CompileOptions{});
    Rng rng(5);
    FpCtx fp(fw.info().p);
    const auto inputs =
        fw.handle().sampleInputs(rng, TracePart::Full);
    const auto want =
        fw.handle().nativeReference(inputs, TracePart::Full);
    const auto got = runEncoded(res.binary, fp, inputs);
    EXPECT_EQ(got, want);
}

TEST(BinarySim, FaultInjectionIsObservable)
{
    // Flip one bit in an instruction word: the output must change (or
    // decoding must hit an illegal register) for >= most positions.
    Framework fw("BN254N");
    CompileOptions opt;
    opt.part = TracePart::MillerOnly; // cheaper program
    const CompileResult res = fw.compile(opt);
    Rng rng(6);
    FpCtx fp(fw.info().p);
    const auto inputs =
        fw.handle().sampleInputs(rng, TracePart::MillerOnly);
    const auto want = runEncoded(res.binary, fp, inputs);

    int observed = 0;
    const int kTrials = 12;
    for (int t = 0; t < kTrials; ++t) {
        EncodedProgram mutant = res.binary;
        const size_t w = rng.below(mutant.words.size() / 2); // live half
        const int bit = static_cast<int>(rng.below(mutant.wordBits));
        mutant.words[w] ^= u64{1} << bit;
        try {
            const auto got = runEncoded(mutant, fp, inputs);
            if (got != want)
                ++observed;
        } catch (const PanicError &) {
            ++observed; // illegal register = detected
        } catch (const FatalError &) {
            ++observed;
        }
    }
    // Some flips can be silent (e.g. landing in a dead nop field), but
    // the majority must be observable.
    EXPECT_GE(observed, kTrials / 2);
}

TEST(CycleSim, TimingIsInputIndependent)
{
    // The paper's constant-time claim: cycle counts depend only on the
    // program, never on data. Our simulator is structurally
    // data-independent; assert the invariant holds across programs for
    // two different compiles of the same options.
    Framework fw("BLS12-381");
    const CompileResult a = fw.compile(CompileOptions{});
    const CompileResult b = fw.compile(CompileOptions{});
    EXPECT_EQ(simulateCycles(a.prog).totalCycles,
              simulateCycles(b.prog).totalCycles);
}

} // namespace
} // namespace finesse
