/**
 * @file
 * Parallel DSE tests: thread-pool semantics, the determinism contract
 * of Explorer::evaluateAll / exploreVariants (bit-identical results
 * for every jobs value), and the concurrency behavior of the sharded
 * front-end trace cache (one trace per key under contention, in-flight
 * coalescing, clearTraceCache vs concurrent compiles).
 *
 * These tests are the ThreadSanitizer workload of the CI tsan job.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "dse/explorer.h"
#include "support/threadpool.h"

namespace finesse {
namespace {

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, ResolveJobs)
{
    EXPECT_EQ(resolveJobs(1), 1);
    EXPECT_EQ(resolveJobs(7), 7);
    EXPECT_GE(resolveJobs(0), 1); // hardware concurrency, >= 1
}

TEST(ThreadPool, SubmitReturnsFutures)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 32; ++i)
        futs.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> seen(kCount);
    for (auto &s : seen)
        s.store(0);
    ThreadPool pool(8);
    pool.parallelFor(kCount, [&](size_t i) { seen[i].fetch_add(1); });
    for (size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(seen[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForPropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](size_t i) {
                                      ++ran;
                                      if (i == 3)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    EXPECT_GE(ran.load(), 1);
}

TEST(ThreadPool, FreeParallelForRunsInlineWhenSerial)
{
    // jobs == 1 must not spawn threads: the body observes one
    // consistent thread id (trivially true inline; this documents the
    // contract more than it checks the implementation).
    const auto self = std::this_thread::get_id();
    parallelFor(16, 1, [&](size_t) {
        EXPECT_EQ(std::this_thread::get_id(), self);
    });
}

// -------------------------------------------- determinism of the sweep

/** All deterministic DsePoint fields (everything but wall times). */
void
expectSamePoint(const DsePoint &a, const DsePoint &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.mulInstrs, b.mulInstrs);
    EXPECT_EQ(a.linInstrs, b.linInstrs);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.variants.cacheKey(), b.variants.cacheKey());
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.areaMm2, b.areaMm2);
    EXPECT_DOUBLE_EQ(a.freqMHz, b.freqMHz);
    EXPECT_DOUBLE_EQ(a.criticalPathNs, b.criticalPathNs);
    EXPECT_DOUBLE_EQ(a.latencyUs, b.latencyUs);
    EXPECT_DOUBLE_EQ(a.throughputOps, b.throughputOps);
    EXPECT_DOUBLE_EQ(a.thptPerArea, b.thptPerArea);
}

TEST(ParallelDse, EvaluateAllMatchesSerialAcrossJobs)
{
    Explorer ex("BN254N");
    // Mul-variant space x two pipeline shapes = 16 points.
    std::vector<PipelineModel> models;
    models.emplace_back(); // single-issue deep
    {
        PipelineModel vliw;
        vliw.longLat = 8;
        vliw.shortLat = 2;
        vliw.issueWidth = 3;
        vliw.numLinUnits = 2;
        vliw.numBanks = 3;
        vliw.writebackFifo = true;
        models.push_back(vliw);
    }
    std::vector<DseRequest> reqs;
    for (const VariantConfig &cfg : ex.variantSpace(true)) {
        for (const PipelineModel &hw : models) {
            DseRequest req;
            req.opt.variants = cfg;
            req.opt.hw = hw;
            req.label = "pt";
            reqs.push_back(std::move(req));
        }
    }

    const std::vector<DsePoint> serial = ex.evaluateAll(reqs, 1);
    ASSERT_EQ(serial.size(), reqs.size());
    for (int jobs : {2, 8}) {
        const std::vector<DsePoint> par = ex.evaluateAll(reqs, jobs);
        ASSERT_EQ(par.size(), serial.size()) << "jobs " << jobs;
        for (size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE("jobs " + std::to_string(jobs) + " point " +
                         std::to_string(i));
            expectSamePoint(serial[i], par[i]);
        }
    }
}

TEST(ParallelDse, GroupedEvaluateAllMatchesUngroupedAcrossJobs)
{
    // The batched engine (grouped by trace key, shared TracePrep,
    // per-worker scratch) against the pre-batching per-point oracle
    // (every point clones the cached trace and runs the full backend
    // PassManager): deterministic fields must be bit-identical for
    // every jobs value. This test is part of the TSan workload -- the
    // grouped path shares immutable trace/prep state across workers.
    Explorer ex("BN254N");
    std::vector<PipelineModel> models;
    models.emplace_back(); // single-issue deep
    {
        PipelineModel vliw;
        vliw.longLat = 8;
        vliw.shortLat = 2;
        vliw.issueWidth = 3;
        vliw.numLinUnits = 2;
        vliw.numBanks = 3;
        vliw.writebackFifo = true;
        models.push_back(vliw);
    }
    std::vector<DseRequest> reqs;
    for (const VariantConfig &cfg : ex.variantSpace(true)) {
        for (const PipelineModel &hw : models) {
            for (bool listSched : {true, false}) {
                DseRequest req;
                req.opt.variants = cfg;
                req.opt.hw = hw;
                req.opt.listSchedule = listSched;
                req.label = "pt";
                reqs.push_back(std::move(req));
            }
        }
    }

    const std::vector<DsePoint> ref = ex.evaluateAllUngrouped(reqs, 1);
    ASSERT_EQ(ref.size(), reqs.size());
    for (int jobs : {1, 2, 8}) {
        const std::vector<DsePoint> got = ex.evaluateAll(reqs, jobs);
        ASSERT_EQ(got.size(), ref.size()) << "jobs " << jobs;
        for (size_t i = 0; i < ref.size(); ++i) {
            SCOPED_TRACE("jobs " + std::to_string(jobs) + " point " +
                         std::to_string(i));
            expectSamePoint(ref[i], got[i]);
        }
    }
}

TEST(ParallelDse, ExploreVariantsSameBestPointAcrossJobs)
{
    Explorer ex("BN254N");
    CompileOptions base;
    base.jobs = 1;
    const DsePoint serialBest =
        ex.exploreVariants(base, Objective::MinCycles, true);
    for (int jobs : {2, 8}) {
        base.jobs = jobs;
        const DsePoint best =
            ex.exploreVariants(base, Objective::MinCycles, true);
        SCOPED_TRACE("jobs " + std::to_string(jobs));
        expectSamePoint(serialBest, best);
    }
}

// ------------------------------------------------ sharded trace cache

TEST(TraceCacheConcurrency, SameKeyTracesOnceAndCoalesces)
{
    clearTraceCache();
    constexpr int kThreads = 6;
    ThreadPool pool(kThreads);
    std::vector<std::future<CompileResult>> futs;
    for (int i = 0; i < kThreads; ++i) {
        futs.push_back(pool.submit([] {
            Framework fw("BN254N");
            return fw.compile(CompileOptions{});
        }));
    }
    std::vector<CompileResult> results;
    for (auto &f : futs)
        results.push_back(f.get());

    const TraceCacheStats s = traceCacheStats();
    EXPECT_EQ(s.misses, 1u); // one front-end trace, ever
    EXPECT_EQ(s.hits + s.coalesced, static_cast<size_t>(kThreads - 1));
    EXPECT_EQ(s.entries, 1u);
    for (const CompileResult &r : results) {
        EXPECT_EQ(r.instrs(), results[0].instrs());
        EXPECT_EQ(r.binary.words, results[0].binary.words);
    }
}

TEST(TraceCacheConcurrency, FullCatalogConcurrentSweepTracesOncePerKey)
{
    clearTraceCache();
    // The Fig. 10-style sweep, fanned out: every catalog curve against
    // several pipeline models, all compiling concurrently. The front
    // end must run exactly once per (curve, variants, part) key no
    // matter how the workers interleave -- concurrent same-key
    // requests coalesce instead of re-tracing.
    std::vector<PipelineModel> models;
    {
        PipelineModel deep; // single-issue L=38/S=8
        models.push_back(deep);
        PipelineModel shallow;
        shallow.longLat = 8;
        shallow.shortLat = 2;
        models.push_back(shallow);
        PipelineModel vliw;
        vliw.longLat = 8;
        vliw.shortLat = 2;
        vliw.issueWidth = 2;
        vliw.numBanks = 2;
        vliw.numLinUnits = 2;
        vliw.writebackFifo = true;
        models.push_back(vliw);
    }

    struct Job
    {
        std::string curve;
        PipelineModel hw;
    };
    std::vector<Job> jobs;
    std::set<std::string> curves;
    for (const CurveDef &def : curveCatalog()) {
        curves.insert(def.name);
        for (const PipelineModel &hw : models)
            jobs.push_back({def.name, hw});
    }

    std::vector<size_t> instrs(jobs.size(), 0);
    ThreadPool pool(8);
    pool.parallelFor(jobs.size(), [&](size_t i) {
        Framework fw(jobs[i].curve);
        CompileOptions opt;
        opt.hw = jobs[i].hw;
        instrs[i] = fw.compile(opt).instrs();
    });

    for (size_t i = 0; i < jobs.size(); ++i)
        EXPECT_GT(instrs[i], 0u) << jobs[i].curve;

    const TraceCacheStats s = traceCacheStats();
    EXPECT_EQ(s.misses, curves.size()); // one trace per key
    EXPECT_EQ(s.hits + s.coalesced,
              curves.size() * (models.size() - 1));
    EXPECT_EQ(s.entries, curves.size());
}

TEST(TraceCacheConcurrency, EvictionAtCapacityStaysBoundedAndCorrect)
{
    clearTraceCache();
    const size_t prevCap = setTraceCacheCapacityForTesting(2);
    // Six distinct front-end keys (the pass list is part of the key)
    // against a bound of 2: every miss past the bound must evict a
    // ready entry -- concurrently, so the shared_ptr hand-off in the
    // eviction path runs under contention (and under TSan in CI).
    const std::vector<std::vector<std::string>> passLists = {
        {"constfold"},          {"gvn"},
        {"dce"},                {"constfold", "dce"},
        {"gvn", "dce"},         {"constfold", "gvn", "dce"},
    };
    std::vector<size_t> instrs(passLists.size(), 0);
    ThreadPool pool(4);
    pool.parallelFor(passLists.size(), [&](size_t i) {
        Framework fw("BN254N");
        CompileOptions opt;
        opt.part = TracePart::FinalExpOnly; // cheap trace
        opt.passes = passLists[i];
        instrs[i] = fw.compile(opt).instrs();
    });
    for (size_t i = 0; i < passLists.size(); ++i)
        EXPECT_GT(instrs[i], 0u) << "pass list " << i;

    const TraceCacheStats s = traceCacheStats();
    EXPECT_EQ(s.misses, passLists.size()); // all distinct keys
    // The bound is soft while traces are in flight (in-flight slots
    // are never evicted), but tasks 5 and 6 each start only after
    // their worker published a ready entry, so each of those misses
    // is guaranteed to find and evict at least one ready victim:
    // at most 6 - 2 entries can remain.
    EXPECT_LE(s.entries, 4u);

    setTraceCacheCapacityForTesting(prevCap);
    clearTraceCache();
}

TEST(TraceCacheConcurrency, ClearIsSafeAgainstConcurrentCompiles)
{
    clearTraceCache();
    // Compilers race a clearer: every compile must still return a
    // valid, identical program (a dropped cache entry means re-trace,
    // never a torn read).
    constexpr int kCompilers = 4;
    std::atomic<bool> done{false};
    ThreadPool pool(kCompilers + 1);
    std::vector<std::future<bool>> futs;
    for (int t = 0; t < kCompilers; ++t) {
        futs.push_back(pool.submit([] {
            Framework fw("BN254N");
            size_t want = 0;
            for (int i = 0; i < 3; ++i) {
                const CompileResult res = fw.compile(CompileOptions{});
                if (want == 0)
                    want = res.instrs();
                if (res.instrs() != want || res.instrs() == 0)
                    return false;
            }
            return true;
        }));
    }
    auto clearer = pool.submit([&] {
        while (!done.load()) {
            clearTraceCache();
            std::this_thread::yield();
        }
    });
    for (auto &f : futs)
        EXPECT_TRUE(f.get());
    done.store(true);
    clearer.get();

    // Counters were reset by the clearer mid-flight, so only sanity
    // holds: a final snapshot is coherent and non-negative by type.
    const TraceCacheStats s = traceCacheStats();
    EXPECT_LE(s.entries, 1u);
}

} // namespace
} // namespace finesse
