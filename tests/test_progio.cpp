/**
 * @file
 * Program-image serialization tests: round trip, binary-level
 * execution of a reloaded image, and malformed-input rejection.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "core/framework.h"
#include "isa/progio.h"
#include "sim/binary.h"

namespace finesse {
namespace {

TEST(ProgIo, RoundTripExecutes)
{
    Framework fw("BN254N");
    CompileOptions opt;
    opt.part = TracePart::MillerOnly;
    const CompileResult res = fw.compile(opt);

    std::stringstream buf;
    writeProgram(buf, res.binary, fw.info().p);

    BigInt p;
    const EncodedProgram loaded = readProgram(buf, p);
    EXPECT_EQ(p, fw.info().p);
    EXPECT_EQ(loaded.words, res.binary.words);
    EXPECT_EQ(loaded.wordBits, res.binary.wordBits);
    EXPECT_EQ(loaded.constPool.size(), res.binary.constPool.size());
    EXPECT_EQ(loaded.inputRegs.size(), res.binary.inputRegs.size());

    // The reloaded image computes the same Miller loop.
    Rng rng(9);
    FpCtx fp(p);
    const auto inputs =
        fw.handle().sampleInputs(rng, TracePart::MillerOnly);
    const auto want =
        fw.handle().nativeReference(inputs, TracePart::MillerOnly);
    EXPECT_EQ(runEncoded(loaded, fp, inputs), want);
}

TEST(ProgIo, RejectsMalformed)
{
    BigInt p;
    std::stringstream notMagic("HELLO\n");
    EXPECT_THROW(readProgram(notMagic, p), FatalError);

    std::stringstream truncated("FINESSE-PROG v1\np 0x65\n");
    EXPECT_THROW(readProgram(truncated, p), FatalError);

    std::stringstream badShape(
        "FINESSE-PROG v1\np 0x65\nshape x y\n");
    EXPECT_THROW(readProgram(badShape, p), FatalError);
}

} // namespace
} // namespace finesse
