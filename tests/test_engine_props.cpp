/**
 * @file
 * Pairing-engine property tests: the Miller-loop step operators must
 * agree with the generic curve group law (Jacobian and projective
 * variants), lines must vanish on the points they pass through, and
 * twist/untwist consistency must hold.
 */
#include <gtest/gtest.h>

#include "pairing/cache.h"

namespace finesse {
namespace {

using Engine = PairingEngine<NativeTower12>;

class EngineProps : public ::testing::TestWithParam<const char *>
{
  protected:
    const CurveSystem12 &sys() { return curveSystem12(GetParam()); }
};

TEST_P(EngineProps, DblStepMatchesGroupLaw)
{
    const auto &s = sys();
    Rng rng(71);
    for (auto coords : {CoordSystem::Jacobian, CoordSystem::Projective}) {
        PairingEngine<NativeTower12> eng(s.tower(), s.plan(), coords);
        const auto Q = s.randomG2(rng);
        Engine::TwistJac T{Q.x, Q.y, Fp2::one(s.tower().ftCtx())};
        const auto P = s.randomG1(rng);
        (void)eng.dblStep(T, P.x, P.y);

        // Normalize T back to affine under the coordinate system.
        AffinePt<Fp2> got;
        if (coords == CoordSystem::Jacobian) {
            const Fp2 zi = T.z.inv();
            const Fp2 zi2 = zi.sqr();
            got = AffinePt<Fp2>::make(T.x.mul(zi2),
                                      T.y.mul(zi2).mul(zi));
        } else {
            const Fp2 zi = T.z.inv();
            got = AffinePt<Fp2>::make(T.x.mul(zi), T.y.mul(zi));
        }
        const auto want = affineAdd(s.twistCurve(), Q, Q);
        EXPECT_TRUE(got.equals(want))
            << GetParam() << " " << toString(coords);
    }
}

TEST_P(EngineProps, AddStepMatchesGroupLaw)
{
    const auto &s = sys();
    Rng rng(73);
    for (auto coords : {CoordSystem::Jacobian, CoordSystem::Projective}) {
        PairingEngine<NativeTower12> eng(s.tower(), s.plan(), coords);
        const auto Q1 = s.randomG2(rng);
        const auto Q2 = s.randomG2(rng);
        Engine::TwistJac T{Q1.x, Q1.y, Fp2::one(s.tower().ftCtx())};
        const auto P = s.randomG1(rng);
        (void)eng.addStep(T, Q2.x, Q2.y, P.x, P.y);

        AffinePt<Fp2> got;
        if (coords == CoordSystem::Jacobian) {
            const Fp2 zi = T.z.inv();
            const Fp2 zi2 = zi.sqr();
            got = AffinePt<Fp2>::make(T.x.mul(zi2),
                                      T.y.mul(zi2).mul(zi));
        } else {
            const Fp2 zi = T.z.inv();
            got = AffinePt<Fp2>::make(T.x.mul(zi), T.y.mul(zi));
        }
        const auto want = affineAdd(s.twistCurve(), Q1, Q2);
        EXPECT_TRUE(got.equals(want))
            << GetParam() << " " << toString(coords);
    }
}

TEST_P(EngineProps, LineVanishesThroughThePoints)
{
    // The add-step line through T = Q1 and Q2, evaluated at a G1 point
    // that is "on the line" in the pairing sense, is checked
    // indirectly: the Miller value of [2]Q computed via two different
    // routes must produce the same pairing (consistency of lines is
    // already covered by bilinearity); here we check the cheap
    // algebraic identity l(P) != 0 for random P (lines only vanish on
    // the curve points themselves).
    const auto &s = sys();
    Rng rng(79);
    PairingEngine<NativeTower12> eng(s.tower(), s.plan());
    const auto Q = s.randomG2(rng);
    Engine::TwistJac T{Q.x, Q.y, Fp2::one(s.tower().ftCtx())};
    const auto P = s.randomG1(rng);
    const Fp12 l = eng.dblStep(T, P.x, P.y);
    EXPECT_FALSE(l.isZero());
}

TEST_P(EngineProps, MillerValueDependsOnBothInputs)
{
    const auto &s = sys();
    Rng rng(83);
    const auto P1 = s.randomG1(rng);
    const auto P2 = s.randomG1(rng);
    const auto Q = s.randomG2(rng);
    const auto f1 = s.engine().miller(P1.x, P1.y, Q.x, Q.y);
    const auto f2 = s.engine().miller(P2.x, P2.y, Q.x, Q.y);
    EXPECT_FALSE(f1.equals(f2));
}

TEST_P(EngineProps, ProjectiveAndJacobianGiveSamePairing)
{
    const auto &s = sys();
    Rng rng(89);
    PairingEngine<NativeTower12> jac(s.tower(), s.plan(),
                                     CoordSystem::Jacobian);
    PairingEngine<NativeTower12> proj(s.tower(), s.plan(),
                                      CoordSystem::Projective);
    const auto P = s.randomG1(rng);
    const auto Q = s.randomG2(rng);
    // Miller values may differ (different line scalings in proper
    // subfields), but final pairings must agree.
    EXPECT_TRUE(jac.pair(P.x, P.y, Q.x, Q.y)
                    .equals(proj.pair(P.x, P.y, Q.x, Q.y)));
}

INSTANTIATE_TEST_SUITE_P(Curves, EngineProps,
                         ::testing::Values("BN254N", "BLS12-381"),
                         [](const auto &info) {
                             std::string s = info.param;
                             for (char &c : s) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return s;
                         });

TEST(EngineTwist, UntwistFrobeniusConstantsConsistent)
{
    // psi(Q1) == pi(psi(Q)) is equivalent to: the engine's Q1 lies on
    // the twist and [r]Q1 = O (it is again a G2 point).
    const auto &s = curveSystem12("BN254N");
    Rng rng(97);
    const auto Q = s.randomG2(rng);
    const PairingPlan &plan = s.plan();
    auto load = [&](const std::vector<BigInt> &v) {
        auto it = v.begin();
        return Fp2::fromFpCoeffs(s.tower().ftCtx(), it);
    };
    const Fp2 cX = load(plan.frobTwX);
    const Fp2 cY = load(plan.frobTwY);
    const auto Q1 = AffinePt<Fp2>::make(cX.mul(Q.x.frob()),
                                        cY.mul(Q.y.frob()));
    EXPECT_TRUE(isOnCurve(s.twistCurve(), Q1));
    EXPECT_TRUE(scalarMul(s.twistCurve(), Q1, s.info().r).infinity);
    // And psi-frobenius has order dividing k: applying it k times is
    // the identity on the twist point.
    auto applyPsiFrob = [&](AffinePt<Fp2> pt) {
        return AffinePt<Fp2>::make(cX.mul(pt.x.frob()),
                                   cY.mul(pt.y.frob()));
    };
    AffinePt<Fp2> cur = Q;
    for (int i = 0; i < 12; ++i)
        cur = applyPsiFrob(cur);
    EXPECT_TRUE(cur.equals(Q));
}

TEST(EngineInputs, RejectsInfinity)
{
    const auto &s = curveSystem12("BN254N");
    EXPECT_THROW(s.pair(AffinePt<Fp>::atInfinity(), s.g2Gen()),
                 FatalError);
}

} // namespace
} // namespace finesse
