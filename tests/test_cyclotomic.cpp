/**
 * @file
 * Cyclotomic squaring tests: agreement with the generic squaring
 * inside the cyclotomic subgroup (both tower shapes), disagreement
 * outside it (the precondition matters), and chain integration.
 */
#include <gtest/gtest.h>

#include "core/framework.h"
#include "pairing/cache.h"
#include "pairing/cyclotomic.h"

namespace finesse {
namespace {

TEST(Cyclotomic, MatchesGenericSquaringInSubgroupK12)
{
    const auto &sys = curveSystem12("BN254N");
    Rng rng(51);
    for (int i = 0; i < 4; ++i) {
        const auto P = sys.randomG1(rng);
        const auto Q = sys.randomG2(rng);
        const Fp12 e = sys.pair(P, Q); // order-r subgroup element
        const Fp12 fast = cyclotomicSqr(e, sys.tower().fp6);
        EXPECT_TRUE(fast.equals(e.sqr()));
        // Iterated squarings stay consistent.
        Fp12 a = e, b = e;
        for (int j = 0; j < 5; ++j) {
            a = cyclotomicSqr(a, sys.tower().fp6);
            b = b.sqr();
        }
        EXPECT_TRUE(a.equals(b));
    }
}

TEST(Cyclotomic, MatchesGenericSquaringInSubgroupK24)
{
    const auto &sys = curveSystem24("BLS24-509");
    Rng rng(53);
    const auto P = sys.randomG1(rng);
    const auto Q = sys.randomG2(rng);
    const Fp24 e = sys.pair(P, Q);
    const Fp24 fast = cyclotomicSqr(e, sys.tower().fp12);
    EXPECT_TRUE(fast.equals(e.sqr()));
}

TEST(Cyclotomic, RequiresSubgroupMembership)
{
    // For a random (non-cyclotomic) element the shortcut must differ.
    const auto &sys = curveSystem12("BN254N");
    Rng rng(55);
    std::vector<BigInt> coeffs;
    for (int i = 0; i < 12; ++i)
        coeffs.push_back(BigInt::randomBelow(rng, sys.info().p));
    auto it = coeffs.begin();
    const Fp12 f = Fp12::fromFpCoeffs(sys.tower().gtCtx(), it);
    EXPECT_FALSE(
        cyclotomicSqr(f, sys.tower().fp6).equals(f.sqr()));
}

TEST(Cyclotomic, CycloElemChainMatchesPlainChain)
{
    // Running the BN hard-part chain through the CycloElem adapter
    // must produce the identical result.
    const auto &sys = curveSystem12("BN254N");
    Rng rng(57);
    const auto P = sys.randomG1(rng);
    const auto Q = sys.randomG2(rng);
    const Fp12 m = sys.engine().miller(P.x, P.y, Q.x, Q.y);
    // Easy part by hand (puts us in the cyclotomic subgroup).
    Fp12 f = m.conj().mul(m.inv());
    f = frobPow(f, 2).mul(f);

    const Fp12 plain = hardChainBN(f, sys.info().def.x);
    using CE = CycloElem<Fp12, CubicCtx<Fp2>>;
    const CE wrapped(f, &sys.tower().fp6);
    const Fp12 fast = hardChainBN(wrapped, sys.info().def.x).value();
    EXPECT_TRUE(fast.equals(plain));
}

TEST(Cyclotomic, ReducesLongOpsInTraces)
{
    // When the engine is told to use cyclotomic squaring, the compiled
    // final exponentiation must contain fewer Long (mul/sqr) ops.
    Framework fw("BN254N");
    CompileOptions plain;
    plain.part = TracePart::FinalExpOnly;
    plain.variants.cyclotomicSqr = false;
    CompileOptions cyclo = plain;
    cyclo.variants.cyclotomicSqr = true;
    const auto a = fw.compile(plain);
    const auto b = fw.compile(cyclo);
    EXPECT_LT(b.prog.module.countUnit(UnitClass::Mul),
              a.prog.module.countUnit(UnitClass::Mul));
    // And it still validates against the native reference.
    EXPECT_TRUE(fw.validate(b, 1, TracePart::FinalExpOnly).allPassed());
}

TEST(Cyclotomic, FullPairingWithCycloSqrValidates)
{
    Framework fw("BLS12-381");
    CompileOptions opt;
    opt.variants.cyclotomicSqr = true;
    const auto res = fw.compile(opt);
    EXPECT_TRUE(fw.validate(res, 1).allPassed());
}

} // namespace
} // namespace finesse
