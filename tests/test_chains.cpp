/**
 * @file
 * Final-exponentiation chain tests: ExpoSim algebra, exponent
 * verification of the family chains for every catalog curve, signed
 * cyclotomic exponentiation, and multi-pairing products.
 */
#include <gtest/gtest.h>

#include "pairing/cache.h"

namespace finesse {
namespace {

TEST(ExpoSim, BasicAlgebra)
{
    const BigInt phi = BigInt::fromString("1000003");
    const BigInt p = BigInt::fromString("97");
    ExpoSim one(BigInt(u64{1}), &phi, &p);
    EXPECT_EQ(one.sqr().exponent(), BigInt(u64{2}));
    EXPECT_EQ(one.mul(one.sqr()).exponent(), BigInt(u64{3}));
    EXPECT_EQ(one.conj().exponent(), phi - BigInt(u64{1}));
    EXPECT_EQ(one.frob().exponent(), p);
    EXPECT_EQ(one.frob().frob().exponent(), (p * p).mod(phi));
    EXPECT_EQ(one.oneLike().exponent(), BigInt());
}

TEST(ExpoSim, PowSignedMatchesExponentArithmetic)
{
    const BigInt phi = BigInt::fromString("100000000000000000039");
    const BigInt p = BigInt::fromString("9999999999971");
    ExpoSim f(BigInt(u64{1}), &phi, &p);
    Rng rng(17);
    for (int i = 0; i < 20; ++i) {
        BigInt e = BigInt::randomBits(rng, 40);
        if (rng.below(2))
            e = -e;
        EXPECT_EQ(powSigned(f, e).exponent(), e.mod(phi));
    }
}

class ChainPerCurve : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ChainPerCurve, HardPartChainVerifies)
{
    const CurveInfo info = deriveCurveInfo(findCurve(GetParam()));
    bool ok = false;
    switch (info.def.family) {
      case CurveFamily::BN:
        ok = verifyHardChain(
            [](const ExpoSim &f, const BigInt &x) {
                return hardChainBN(f, x);
            },
            info.p, info.r, info.def.x, info.k);
        break;
      case CurveFamily::BLS12:
        ok = verifyHardChain(
            [](const ExpoSim &f, const BigInt &x) {
                return hardChainBLS12(f, x);
            },
            info.p, info.r, info.def.x, info.k);
        break;
      case CurveFamily::BLS24:
        ok = verifyHardChain(
            [](const ExpoSim &f, const BigInt &x) {
                return hardChainBLS24(f, x);
            },
            info.p, info.r, info.def.x, info.k);
        break;
    }
    EXPECT_TRUE(ok) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllCurves, ChainPerCurve,
                         ::testing::Values("BN254N", "BN462", "BN638",
                                           "BLS12-381", "BLS12-446",
                                           "BLS12-638", "BLS24-509"),
                         [](const auto &info) {
                             std::string s = info.param;
                             for (char &c : s) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return s;
                         });

TEST(CyclotomicPow, PowSignedNativeMatchesPowBig)
{
    const auto &sys = curveSystem12("BN254N");
    Rng rng(31);
    const auto P = sys.randomG1(rng);
    const auto Q = sys.randomG2(rng);
    // Pairing output lies in the order-r subgroup (cyclotomic), where
    // conj is inversion.
    const auto e = sys.pair(P, Q);
    const BigInt k = BigInt::randomBits(rng, 60);
    EXPECT_TRUE(powSigned(e, k).equals(powBig(e, k)));
    // Negative exponent: f^-k = conj(f^k).
    EXPECT_TRUE(powSigned(e, -k).equals(powBig(e, k).conj()));
    // And conj really inverts in the subgroup.
    EXPECT_TRUE(e.mul(e.conj()).equals(Fp12::one(sys.tower().gtCtx())));
}

TEST(MultiPairing, ProductMatchesIndividualPairings)
{
    const auto &sys = curveSystem12("BN254N");
    Rng rng(33);
    using Engine = PairingEngine<NativeTower12>;
    std::vector<Engine::PairInput> inputs;
    Fp12 expect = Fp12::one(sys.tower().gtCtx());
    for (int i = 0; i < 3; ++i) {
        const auto P = sys.randomG1(rng);
        const auto Q = sys.randomG2(rng);
        inputs.push_back({P.x, P.y, Q.x, Q.y});
        expect = expect.mul(sys.pair(P, Q));
    }
    const Fp12 got = sys.engine().pairProduct(inputs);
    EXPECT_TRUE(got.equals(expect));
}

TEST(MultiPairing, BilinearCancellation)
{
    // e(P, Q) * e(-P, Q) = 1: the classic product check.
    const auto &sys = curveSystem12("BLS12-381");
    Rng rng(35);
    const auto P = sys.randomG1(rng);
    const auto Q = sys.randomG2(rng);
    const auto negP = P.negate();
    using Engine = PairingEngine<NativeTower12>;
    std::vector<Engine::PairInput> inputs = {
        {P.x, P.y, Q.x, Q.y}, {negP.x, negP.y, Q.x, Q.y}};
    EXPECT_TRUE(sys.engine().pairProduct(inputs).equals(
        Fp12::one(sys.tower().gtCtx())));
}

TEST(FinalExp, DigitsDecompositionIsExact)
{
    for (const char *name : {"BN254N", "BLS12-381"}) {
        const auto &sys = curveSystem12(name);
        const PairingPlan &plan = sys.plan();
        // Reassemble the hard exponent from base-p digits.
        BigInt acc;
        for (size_t i = plan.hardDigits.size(); i-- > 0;)
            acc = acc * plan.p + plan.hardDigits[i];
        const int e6 = plan.k / 6;
        const BigInt phi = plan.p.pow(u64(e6) * 2) -
                           plan.p.pow(u64(e6)) + BigInt(u64{1});
        EXPECT_EQ(acc, phi.divExact(plan.r)) << name;
    }
}

} // namespace
} // namespace finesse
