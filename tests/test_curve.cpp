/**
 * @file
 * Curve-module tests: group laws (associativity, commutativity,
 * inverses, scalar distributivity), infinity handling, twist-order
 * derivation, and deterministic generator construction.
 */
#include <gtest/gtest.h>

#include "pairing/cache.h"

namespace finesse {
namespace {

class CurveGroupLaw : public ::testing::TestWithParam<const char *>
{
  protected:
    const CurveSystem12 &sys() { return curveSystem12(GetParam()); }
};

TEST_P(CurveGroupLaw, G1Axioms)
{
    const auto &s = sys();
    Rng rng(11);
    const auto &c = s.g1Curve();
    const auto P = s.randomG1(rng);
    const auto Q = s.randomG1(rng);
    const auto R = s.randomG1(rng);

    // Closure + commutativity + associativity.
    EXPECT_TRUE(isOnCurve(c, affineAdd(c, P, Q)));
    EXPECT_TRUE(affineAdd(c, P, Q).equals(affineAdd(c, Q, P)));
    EXPECT_TRUE(affineAdd(c, affineAdd(c, P, Q), R)
                    .equals(affineAdd(c, P, affineAdd(c, Q, R))));
    // Identity and inverse.
    EXPECT_TRUE(affineAdd(c, P, AffinePt<Fp>::atInfinity()).equals(P));
    EXPECT_TRUE(affineAdd(c, P, P.negate()).infinity);
    // Doubling consistency.
    EXPECT_TRUE(affineAdd(c, P, P).equals(
        scalarMul(c, P, BigInt(u64{2}))));
}

TEST_P(CurveGroupLaw, ScalarMulProperties)
{
    const auto &s = sys();
    Rng rng(13);
    const auto &c = s.g1Curve();
    const auto P = s.randomG1(rng);
    const BigInt &r = s.info().r;
    const BigInt a = BigInt::randomBelow(rng, r);
    const BigInt b = BigInt::randomBelow(rng, r);

    // [a+b]P = [a]P + [b]P.
    EXPECT_TRUE(scalarMul(c, P, (a + b).mod(r))
                    .equals(affineAdd(c, scalarMul(c, P, a),
                                      scalarMul(c, P, b))));
    // [a][b]P = [ab]P.
    EXPECT_TRUE(scalarMul(c, scalarMul(c, P, a), b)
                    .equals(scalarMul(c, P, (a * b).mod(r))));
    // [-a]P = -[a]P; [0]P = O; [r]P = O.
    EXPECT_TRUE(scalarMul(c, P, -a).equals(scalarMul(c, P, a).negate()));
    EXPECT_TRUE(scalarMul(c, P, BigInt()).infinity);
    EXPECT_TRUE(scalarMul(c, P, r).infinity);
}

TEST_P(CurveGroupLaw, G2Axioms)
{
    const auto &s = sys();
    Rng rng(17);
    const auto &c = s.twistCurve();
    const auto P = s.randomG2(rng);
    const auto Q = s.randomG2(rng);
    EXPECT_TRUE(isOnCurve(c, P));
    EXPECT_TRUE(isOnCurve(c, affineAdd(c, P, Q)));
    EXPECT_TRUE(affineAdd(c, P, P.negate()).infinity);
    EXPECT_TRUE(scalarMul(c, P, s.info().r).infinity);
}

INSTANTIATE_TEST_SUITE_P(Curves, CurveGroupLaw,
                         ::testing::Values("BN254N", "BLS12-381"),
                         [](const auto &info) {
                             std::string s = info.param;
                             for (char &c : s) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return s;
                         });

TEST(CurveSetup, DeterministicGenerators)
{
    // Two constructions of the same curve yield identical generators.
    const CurveDef &def = findCurve("BN254N");
    CurveSystem12 a(def);
    CurveSystem12 b(def);
    EXPECT_TRUE(a.g1Gen().x.toBig() == b.g1Gen().x.toBig());
    EXPECT_TRUE(a.g1Gen().y.toBig() == b.g1Gen().y.toBig());
    std::vector<BigInt> ax, bx;
    a.g2Gen().x.toFpCoeffs(ax);
    b.g2Gen().x.toFpCoeffs(bx);
    EXPECT_EQ(ax, bx);
}

TEST(CurveSetup, TwistOrderIdentities)
{
    // #E(Fp) * #E'(Fp^e)-candidates satisfy the CM relation; we verify
    // via the implementation's own invariants across families.
    for (const char *name : {"BN254N", "BLS12-381", "BLS12-446"}) {
        const auto &s = curveSystem12(name);
        const BigInt n1 = s.info().p + BigInt(u64{1}) - s.info().t;
        EXPECT_EQ(s.g1Cofactor() * s.info().r, n1) << name;
        // G2 cofactor: h2 * r = #E'(Fp2); sanity via a random point.
        Rng rng(3);
        const auto Q = s.randomG2(rng);
        EXPECT_TRUE(
            scalarMul(s.twistCurve(), Q, s.g2Cofactor() * s.info().r)
                .infinity)
            << name;
    }
}

TEST(CurveSetup, BnG1CofactorIsOne)
{
    EXPECT_EQ(curveSystem12("BN254N").g1Cofactor(), BigInt(u64{1}));
    EXPECT_EQ(curveSystem12("BN462").g1Cofactor(), BigInt(u64{1}));
}

TEST(CurveSetup, BlsG1CofactorFormula)
{
    // BLS12: h1 = (x-1)^2 / 3.
    const auto &s = curveSystem12("BLS12-381");
    const BigInt x = s.info().def.x;
    EXPECT_EQ(s.g1Cofactor(),
              ((x - BigInt(u64{1})).pow(2)).divExact(BigInt(u64{3})));
}

TEST(CurveSetup, FindPointRejectsNonCurve)
{
    // findPoint only returns points satisfying the curve equation.
    const auto &s = curveSystem12("BN254N");
    Rng rng(23);
    for (int i = 0; i < 3; ++i) {
        const auto P = s.randomG1(rng);
        EXPECT_TRUE(isOnCurve(s.g1Curve(), P));
        // Perturbed y must fail the equation.
        const auto bad =
            AffinePt<Fp>::make(P.x, P.y.add(Fp::one(&s.fpCtx())));
        EXPECT_FALSE(isOnCurve(s.g1Curve(), bad));
    }
}

TEST(JacobianConversion, RoundTrip)
{
    const auto &s = curveSystem12("BN254N");
    Rng rng(29);
    const auto P = s.randomG1(rng);
    auto j = JacPt<Fp>::fromAffine(P, &s.fpCtx());
    // Scale Z arbitrarily: same point.
    const Fp z = Fp::fromInt(&s.fpCtx(), 7);
    j.x = j.x.mul(z.sqr());
    j.y = j.y.mul(z.sqr().mul(z));
    j.z = j.z.mul(z);
    EXPECT_TRUE(jacToAffine(j, &s.fpCtx()).equals(P));
}

TEST(JacobianConversion, BatchMatchesSequential)
{
    // jacToAffineBatch folds all Z inversions into one Montgomery-
    // trick batch; it must be point-for-point identical to the
    // sequential jacToAffine, including infinity entries (Z == 0).
    const auto &s = curveSystem12("BN254N");
    Rng rng(31);

    std::vector<JacPt<Fp>> j1;
    j1.push_back(JacPt<Fp>::fromAffine(AffinePt<Fp>::atInfinity(),
                                       &s.fpCtx()));
    for (int i = 0; i < 9; ++i)
        j1.push_back(s.randomG1Jac(rng));
    j1.insert(j1.begin() + 5, j1[0]);
    const auto b1 = jacToAffineBatch(j1, &s.fpCtx());
    ASSERT_EQ(b1.size(), j1.size());
    for (size_t i = 0; i < j1.size(); ++i) {
        const auto seq = jacToAffine(j1[i], &s.fpCtx());
        ASSERT_EQ(b1[i].infinity, seq.infinity) << "index " << i;
        if (!seq.infinity)
            EXPECT_TRUE(b1[i].equals(seq)) << "index " << i;
    }

    // G2: tower coordinates drive the generic field-level batch.
    std::vector<JacPt<Fp2>> j2;
    for (int i = 0; i < 6; ++i)
        j2.push_back(s.randomG2Jac(rng));
    const auto b2 = jacToAffineBatch(j2, s.twistCurve().field);
    ASSERT_EQ(b2.size(), j2.size());
    for (size_t i = 0; i < j2.size(); ++i)
        EXPECT_TRUE(
            b2[i].equals(jacToAffine(j2[i], s.twistCurve().field)));
}

} // namespace
} // namespace finesse
