/**
 * @file
 * Batched pairing-verification serving engine (src/serve/):
 * RLC batch correctness (accept iff all valid), bisection isolation
 * of individual bad requests, differential identity against
 * per-request single verification across all three request kinds,
 * G2-base merge economy (Miller-loop counts), and the ServeEngine's
 * serial == concurrent verdict contract plus admission-queue
 * backpressure. The whole file is TSan-clean (CI runs it under
 * -DFINESSE_SANITIZE=thread).
 */
#include <gtest/gtest.h>

#include "serve/engine.h"
#include "serve/workload.h"

using namespace finesse;

namespace {

constexpr const char *kCurve = "BN254N";

std::vector<PairingCheck>
makeChecks(WorkloadFactory &factory, RequestKind kind, int n,
           const std::vector<int> &corrupt)
{
    std::vector<PairingCheck> checks;
    for (int i = 0; i < n; ++i) {
        const bool bad = std::find(corrupt.begin(), corrupt.end(), i) !=
                         corrupt.end();
        checks.push_back(
            reduceToCheck(factory.system(), factory.make(kind, bad)));
    }
    return checks;
}

} // namespace

TEST(ServeVerify, BatchOfNAcceptsIffAllValid)
{
    const auto &sys = curveSystem12(kCurve);
    WorkloadFactory factory(sys, 101);
    for (const RequestKind kind :
         {RequestKind::Bls, RequestKind::Kzg, RequestKind::Zk}) {
        BatchVerifyStats stats;
        const auto checks = makeChecks(factory, kind, 6, {});
        const auto verdicts = verifyBatch(sys, checks, 7, &stats);
        for (size_t i = 0; i < verdicts.size(); ++i)
            EXPECT_TRUE(verdicts[i]) << toString(kind) << " #" << i;
        // All-valid: ONE RLC product, no fallback, no splits.
        EXPECT_EQ(stats.products, 1u);
        EXPECT_EQ(stats.singleChecks, 0u);
        EXPECT_EQ(stats.bisectSplits, 0u);

        BatchVerifyStats badStats;
        const auto badChecks = makeChecks(factory, kind, 6, {2});
        const auto badVerdicts =
            verifyBatch(sys, badChecks, 7, &badStats);
        for (size_t i = 0; i < badVerdicts.size(); ++i)
            EXPECT_EQ(badVerdicts[i], i != 2)
                << toString(kind) << " #" << i;
        EXPECT_GE(badStats.bisectSplits, 1u);
    }
}

TEST(ServeVerify, BisectionIsolatesSingleBadRequest)
{
    const auto &sys = curveSystem12(kCurve);
    WorkloadFactory factory(sys, 202);
    // One corrupted signature among 8: the fallback must pinpoint it
    // while whole all-valid subtrees clear in one product each.
    BatchVerifyStats stats;
    const auto checks = makeChecks(factory, RequestKind::Bls, 8, {5});
    const auto verdicts = verifyBatch(sys, checks, 99, &stats);
    for (size_t i = 0; i < verdicts.size(); ++i)
        EXPECT_EQ(verdicts[i], i != 5) << "#" << i;
    // Bisection cost: the root fails, then log2(8) levels of splits;
    // well under the 8 singles a naive fallback would run.
    EXPECT_GE(stats.bisectSplits, 3u);
    EXPECT_LE(stats.singleChecks, 2u);
}

TEST(ServeVerify, RlcDifferentialAgainstSingles)
{
    const auto &sys = curveSystem12(kCurve);
    WorkloadFactory factory(sys, 303);
    for (const RequestKind kind :
         {RequestKind::Bls, RequestKind::Kzg, RequestKind::Zk}) {
        const auto checks = makeChecks(factory, kind, 6, {1, 4});
        std::vector<bool> singles;
        for (const PairingCheck &c : checks)
            singles.push_back(verifySingle(sys, c));
        for (const u64 seed : {1ull, 42ull, 0xdeadbeefull}) {
            const auto batched = verifyBatch(sys, checks, seed);
            ASSERT_EQ(batched.size(), singles.size());
            for (size_t i = 0; i < singles.size(); ++i)
                EXPECT_EQ(batched[i], singles[i])
                    << toString(kind) << " #" << i << " seed " << seed;
        }
    }
}

TEST(ServeVerify, G2BaseMergeEconomy)
{
    const auto &sys = curveSystem12(kCurve);
    WorkloadFactory factory(sys, 404);
    // BLS: N pk terms + 1 merged g2 term.
    {
        BatchVerifyStats stats;
        verifyBatch(sys, makeChecks(factory, RequestKind::Bls, 8, {}),
                    5, &stats);
        EXPECT_EQ(stats.pairings, 9u);
    }
    // KZG against one SRS: everything merges onto {g2, [tau]g2}.
    {
        BatchVerifyStats stats;
        verifyBatch(sys, makeChecks(factory, RequestKind::Kzg, 8, {}),
                    5, &stats);
        EXPECT_EQ(stats.pairings, 2u);
    }
    // Groth16 with one vk: N (A,B) terms + 3 merged vk terms.
    {
        BatchVerifyStats stats;
        verifyBatch(sys, makeChecks(factory, RequestKind::Zk, 8, {}), 5,
                    &stats);
        EXPECT_EQ(stats.pairings, 11u);
    }
}

TEST(ServeVerify, EmptyAndInfinityEdges)
{
    const auto &sys = curveSystem12(kCurve);
    EXPECT_TRUE(verifyBatch(sys, {}, 1).empty());
    // A vacuous check (all terms infinity) is the empty product == 1.
    PairingCheck vacuous;
    vacuous.terms.push_back(
        {AffinePt<Fp>::atInfinity(), sys.g2Gen()});
    vacuous.terms.push_back(
        {sys.g1Gen(), AffinePt<Fp2>::atInfinity()});
    EXPECT_TRUE(verifySingle(sys, vacuous));
    std::vector<PairingCheck> batch{vacuous, vacuous};
    const auto verdicts = verifyBatch(sys, batch, 3);
    EXPECT_TRUE(verdicts[0] && verdicts[1]);
}

TEST(ServeEngineTest, SerialEqualsConcurrentVerdicts)
{
    const auto &sys = curveSystem12(kCurve);
    // Fixed mixed workload with a known corruption pattern; the
    // verdict vector must be identical for every jobs value (batch
    // composition differs with scheduling, verdicts must not).
    const int n = 24;
    std::vector<bool> expected;
    std::vector<VerifyRequest> requests;
    {
        WorkloadFactory factory(sys, 515);
        const RequestKind kinds[] = {RequestKind::Bls, RequestKind::Kzg,
                                     RequestKind::Zk};
        for (int i = 0; i < n; ++i) {
            const bool bad = i % 7 == 3;
            requests.push_back(factory.make(kinds[i % 3], bad));
            expected.push_back(!bad);
        }
    }
    for (const int jobs : {1, 2, 8}) {
        ServeOptions opt;
        opt.jobs = jobs;
        opt.batchSize = 5; // force partial + multi-batch paths
        opt.lingerMs = 1;
        ServeEngine engine(sys, opt);
        std::vector<std::future<Verdict>> futures;
        for (const VerifyRequest &req : requests) {
            Admission adm = engine.submit(req);
            ASSERT_TRUE(adm.admitted) << "jobs " << jobs;
            futures.push_back(std::move(adm.verdict));
        }
        for (int i = 0; i < n; ++i) {
            EXPECT_EQ(futures[i].get() == Verdict::Accept, expected[i])
                << "jobs " << jobs << " #" << i;
        }
        engine.drain();
        const ServeCounters c = engine.counters();
        EXPECT_EQ(c.submitted, static_cast<size_t>(n));
        EXPECT_EQ(c.completed, static_cast<size_t>(n));
        EXPECT_EQ(c.accepted + c.rejectedInvalid,
                  static_cast<size_t>(n));
        EXPECT_EQ(c.rejectedInvalid, 3u); // i in {3, 10, 17}
        EXPECT_GE(c.batches, static_cast<size_t>(n / 5));
        EXPECT_GT(c.totalLatencyMs, 0.0);
    }
}

TEST(ServeEngineTest, BackpressureBouncesAndRecovers)
{
    const auto &sys = curveSystem12(kCurve);
    WorkloadFactory factory(sys, 616);
    ServeOptions opt;
    opt.jobs = 1;
    opt.batchSize = 2;
    opt.maxQueue = 2;
    opt.lingerMs = 0;
    ServeEngine engine(sys, opt);
    // Submitting is microseconds, verifying a batch is milliseconds:
    // a tight submit loop must overrun a 2-deep queue long before the
    // single lane drains 200 requests.
    bool bounced = false;
    int admitted = 0;
    std::vector<std::future<Verdict>> futures;
    for (int i = 0; i < 200 && !bounced; ++i) {
        Admission adm =
            engine.submit(factory.make(RequestKind::Bls, false));
        if (adm.admitted) {
            admitted++;
            futures.push_back(std::move(adm.verdict));
        } else {
            bounced = true;
            EXPECT_GE(adm.retryAfterMs, 1);
        }
    }
    ASSERT_TRUE(bounced) << "queue never filled after 200 submits";
    engine.drain();
    EXPECT_GE(engine.counters().rejectedBusy, 1u);
    // After the drain there is capacity again: the retry succeeds.
    Admission retry =
        engine.submit(factory.make(RequestKind::Bls, false));
    ASSERT_TRUE(retry.admitted);
    EXPECT_EQ(retry.verdict.get(), Verdict::Accept);
    for (auto &f : futures)
        EXPECT_EQ(f.get(), Verdict::Accept);
    engine.drain(); // counters land after promises; wait for the batch
    const ServeCounters c = engine.counters();
    EXPECT_EQ(c.completed, static_cast<size_t>(admitted) + 1);
    EXPECT_EQ(c.rejectedInvalid, 0u);
}
