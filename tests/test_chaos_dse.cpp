/**
 * @file
 * Chaos-injection suite for the fault-tolerant distributed sweep:
 * scripted worker faults (FINESSE_DSE_FAULT plans -- crash, hang,
 * stream corruption, stalls, handshake mismatches) against the
 * master's liveness deadlines, retry/backoff, hedging, elastic
 * respawn and local-fallback machinery. The determinism contract is
 * asserted throughout: for any survivable fault plan the sweep
 * returns results BIT-identical to Explorer::evaluateAll.
 *
 * Every test pins explicit per-slot fault plans (which shadow any
 * ambient FINESSE_DSE_FAULT from CI's chaos matrix), so the asserted
 * counters are deterministic here even when the rest of the test run
 * is executing under ambient chaos.
 *
 * Like test_distributed_dse, this binary is its own worker pool:
 * main() dispatches argv[1] == "dse-worker" into the worker loop
 * before gtest sees the command line.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "dse/distributor.h"
#include "dse/explorer.h"

namespace finesse {
namespace {

/** Deterministic DsePoint fields, doubles compared bit-exactly. */
void
expectSamePoint(const DsePoint &a, const DsePoint &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.mulInstrs, b.mulInstrs);
    EXPECT_EQ(a.linInstrs, b.linInstrs);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.variants.cacheKey(), b.variants.cacheKey());
    EXPECT_EQ(a.hw.describe(), b.hw.describe());
    EXPECT_TRUE(a.ipc == b.ipc);
    EXPECT_TRUE(a.areaMm2 == b.areaMm2);
    EXPECT_TRUE(a.freqMHz == b.freqMHz);
    EXPECT_TRUE(a.latencyUs == b.latencyUs);
    EXPECT_TRUE(a.throughputOps == b.throughputOps);
    EXPECT_TRUE(a.thptPerArea == b.thptPerArea);
}

void
expectSamePoints(const std::vector<DsePoint> &ref,
                 const std::vector<DsePoint> &got)
{
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSamePoint(ref[i], got[i]);
    }
}

/**
 * Three trace-key groups (distinct variant configs) of two hardware
 * models each, on the cheap final-exponentiation-only trace: enough
 * groups for re-dispatch/hedging to have somewhere to go, small
 * enough that the chaos matrix stays fast.
 */
std::vector<DseRequest>
smallRequests(const Explorer &ex)
{
    std::vector<PipelineModel> models;
    models.emplace_back();
    {
        PipelineModel vliw;
        vliw.longLat = 8;
        vliw.shortLat = 2;
        vliw.issueWidth = 3;
        vliw.numLinUnits = 2;
        vliw.numBanks = 3;
        vliw.writebackFifo = true;
        models.push_back(vliw);
    }
    std::vector<DseRequest> reqs;
    const std::vector<VariantConfig> cfgs = {
        ex.allSchoolbook(), ex.allKaratsuba(), ex.manualHeuristic()};
    for (const VariantConfig &cfg : cfgs) {
        for (const PipelineModel &hw : models) {
            DseRequest req;
            req.opt.part = TracePart::FinalExpOnly;
            req.opt.variants = cfg;
            req.opt.hw = hw;
            req.label = "chaos";
            reqs.push_back(std::move(req));
        }
    }
    return reqs;
}

TEST(ChaosDse, FaultPlanParsesTheFullGrammar)
{
    const FaultPlan plan = FaultPlan::parse(
        "kill@group:2;hang@group:1;garbage@frame:3;"
        "stall_ms=500@group:0;bad_version@hello;bad_hash@hello");
    ASSERT_EQ(plan.actions.size(), 6u);

    EXPECT_EQ(plan.actions[0].kind, FaultAction::Kind::Kill);
    EXPECT_EQ(plan.actions[0].site, FaultAction::Site::Group);
    EXPECT_EQ(plan.actions[0].index, 2);

    EXPECT_EQ(plan.actions[1].kind, FaultAction::Kind::Hang);
    EXPECT_EQ(plan.actions[1].index, 1);

    EXPECT_EQ(plan.actions[2].kind, FaultAction::Kind::Garbage);
    EXPECT_EQ(plan.actions[2].site, FaultAction::Site::Frame);
    EXPECT_EQ(plan.actions[2].index, 3);

    EXPECT_EQ(plan.actions[3].kind, FaultAction::Kind::Stall);
    EXPECT_EQ(plan.actions[3].stallMs, 500);
    EXPECT_EQ(plan.actions[3].index, 0);

    EXPECT_EQ(plan.actions[4].kind,
              FaultAction::Kind::BadHelloVersion);
    EXPECT_EQ(plan.actions[4].site, FaultAction::Site::Hello);
    EXPECT_EQ(plan.actions[5].kind, FaultAction::Kind::BadHelloHash);

    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse(";;").empty());
}

TEST(ChaosDse, FaultPlanParsesTheNetworkGrammar)
{
    const FaultPlan plan = FaultPlan::parse(
        "drop@frame:2;trunc@frame:1;delay_ms=250@frame:0;"
        "refuse@connect;refuse@connect:3");
    ASSERT_EQ(plan.actions.size(), 5u);

    EXPECT_EQ(plan.actions[0].kind, FaultAction::Kind::Drop);
    EXPECT_EQ(plan.actions[0].site, FaultAction::Site::Frame);
    EXPECT_EQ(plan.actions[0].index, 2);

    EXPECT_EQ(plan.actions[1].kind, FaultAction::Kind::Truncate);

    EXPECT_EQ(plan.actions[2].kind, FaultAction::Kind::Delay);
    EXPECT_EQ(plan.actions[2].stallMs, 250);

    EXPECT_EQ(plan.actions[3].kind, FaultAction::Kind::Refuse);
    EXPECT_EQ(plan.actions[3].site, FaultAction::Site::Connect);
    EXPECT_EQ(plan.actions[3].index, 0); // bare connect = attempt 0
    EXPECT_EQ(plan.actions[4].index, 3);

    for (const FaultAction &fa : plan.actions)
        EXPECT_TRUE(fa.isNetworkKind());
    EXPECT_FALSE(FaultPlan::parse("kill@group:0")
                     .actions[0]
                     .isNetworkKind());
}

TEST(ChaosDse, FaultPlanKeepSplitsWorkerAndNetworkKinds)
{
    // One spec scripting both sides: keep(false) is the worker's half,
    // keep(true) the chaos proxy's -- together they partition the plan.
    const FaultPlan plan = FaultPlan::parse(
        "kill@group:1;drop@frame:2;stall_ms=10@group:0;refuse@connect");
    const FaultPlan worker = plan.keep(false);
    const FaultPlan network = plan.keep(true);
    ASSERT_EQ(worker.actions.size(), 2u);
    EXPECT_EQ(worker.actions[0].kind, FaultAction::Kind::Kill);
    EXPECT_EQ(worker.actions[1].kind, FaultAction::Kind::Stall);
    ASSERT_EQ(network.actions.size(), 2u);
    EXPECT_EQ(network.actions[0].kind, FaultAction::Kind::Drop);
    EXPECT_EQ(network.actions[1].kind, FaultAction::Kind::Refuse);
    EXPECT_EQ(worker.actions.size() + network.actions.size(),
              plan.actions.size());
}

TEST(ChaosDse, FaultPlanRejectsJunk)
{
    EXPECT_THROW(FaultPlan::parse("kill"), FatalError);
    EXPECT_THROW(FaultPlan::parse("boom@group:1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("kill@group:x"), FatalError);
    EXPECT_THROW(FaultPlan::parse("kill@group:-1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("stall_ms=@group:0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("kill@nowhere:3"), FatalError);
    EXPECT_THROW(FaultPlan::parse("delay_ms=@frame:0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("refuse@connect:x"), FatalError);
}

TEST(ChaosDse, FaultActionsFireOnce)
{
    FaultPlan plan = FaultPlan::parse("kill@group:1");
    EXPECT_EQ(plan.fire(FaultAction::Site::Group, 0), nullptr);
    FaultAction *fa = plan.fire(FaultAction::Site::Group, 1);
    ASSERT_NE(fa, nullptr);
    EXPECT_EQ(fa->kind, FaultAction::Kind::Kill);
    EXPECT_EQ(plan.fire(FaultAction::Site::Group, 1), nullptr);
}

TEST(ChaosDse, HungWorkerIsTimedOutKilledAndRedispatched)
{
    // The ROADMAP's founding complaint: a hung worker delivers no EOF,
    // so PR 5's infinite poll() would wedge forever. Slot 0 hangs on
    // its first group WITHOUT heartbeats; the master must hit its
    // liveness deadline, SIGKILL + reap the worker, re-dispatch the
    // group, and still return bit-identical results.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"hang@group:0", ""};
    opts.livenessTimeoutMs = 1000;
    opts.pingIntervalMs = 300; // probe the silent worker first
    opts.hedgeAfterMs = 0;     // isolate the timeout path
    opts.maxRespawns = 0;      // a replacement would hang again
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_GE(stats.timeoutKills, 1);
    EXPECT_GE(stats.redispatches, 1);
    EXPECT_GE(stats.workerDeaths, 1);
    EXPECT_GE(stats.pingsSent, 1); // probed before the deadline
    EXPECT_EQ(stats.fallbackGroups, 0);
}

TEST(ChaosDse, GroupDeadlineKillsAHeartbeatingButStuckWorker)
{
    // Slot 0 stalls far beyond the group deadline WITH heartbeats: the
    // liveness clock alone would never fire, only the hard per-group
    // deadline catches a live-but-stuck worker.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"stall_ms=30000@group:0", ""};
    opts.livenessTimeoutMs = 60000;
    opts.groupDeadlineMs = 700;
    opts.hedgeAfterMs = 0;
    opts.maxRespawns = 0;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_GE(stats.timeoutKills, 1);
    EXPECT_GE(stats.redispatches, 1);
    EXPECT_GE(stats.pongsReceived, 1); // it WAS heartbeating
}

TEST(ChaosDse, StragglerIsHedgedToAnIdleWorker)
{
    // Slot 0 stalls (with heartbeats) long enough that slot 1 drains
    // the backlog and goes idle: the master speculatively re-dispatches
    // the straggling group, the idle worker's result wins, and the
    // loser is retired at shutdown. No deaths required.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"stall_ms=30000@group:0", ""};
    opts.livenessTimeoutMs = 60000;
    opts.hedgeAfterMs = 200;
    opts.maxRespawns = 0;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_GE(stats.hedges, 1);
    EXPECT_EQ(stats.timeoutKills, 0);
    EXPECT_EQ(stats.redispatches, 0);
}

TEST(ChaosDse, AllWorkersDeadFallsBackToLocalEvaluation)
{
    // Every worker and every replacement crashes on its first group;
    // retries exhaust. Where PR 5 called fatal(), fallbackLocal now
    // finishes the sweep in-process -- correct results, no throw.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"kill@group:0"};
    opts.maxGroupRetries = 1;
    opts.maxRespawns = 1;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_GE(stats.fallbackGroups, 1);
    EXPECT_GE(stats.workerDeaths, 2);
}

TEST(ChaosDse, BadHelloVersionIsRejectedAtSpawn)
{
    // Both slots announce a wrong protocol version: the master rejects
    // them before dispatching anything and, with no admissible pool,
    // completes the sweep locally.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"bad_version@hello"};
    opts.maxRespawns = 0;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_GE(stats.handshakeFailures, 1);
    EXPECT_EQ(stats.dispatches, 0); // rejected before ANY dispatch
    EXPECT_EQ(static_cast<size_t>(stats.fallbackGroups),
              stats.groups);
}

TEST(ChaosDse, BadCatalogHashWorkerIsRejectedOthersFinish)
{
    // Slot 0 announces a wrong curve-catalog hash (a heterogeneous
    // build); slot 1 is clean and does all the work.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"bad_hash@hello", ""};
    opts.maxRespawns = 0;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_GE(stats.handshakeFailures, 1);
    EXPECT_EQ(stats.fallbackGroups, 0); // slot 1 carried the sweep
}

TEST(ChaosDse, MismatchedPoolWithoutFallbackThrows)
{
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    DistributorOptions opts;
    opts.workerFaultPlans = {"bad_version@hello"};
    opts.maxRespawns = 0;
    opts.fallbackLocal = false;
    EXPECT_THROW(ex.evaluateAllDistributed(reqs, 2, opts),
                 FatalError);
}

TEST(ChaosDse, CrashedWorkersAreRespawnedAndFinishTheSweep)
{
    // A single-slot pool whose worker crashes on its SECOND group:
    // each incarnation completes one group and dies, so only elastic
    // respawn (not fallback) can finish the sweep. Deterministic
    // bookkeeping: 3 groups, each incarnation does one.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"kill@group:1"};
    opts.maxRespawns = 3;
    opts.hedgeAfterMs = 0;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 1, opts);
    expectSamePoints(ref, got);
    EXPECT_EQ(stats.respawns, 2);
    EXPECT_EQ(stats.workerDeaths, 2);
    EXPECT_EQ(stats.redispatches, 2);
    EXPECT_EQ(stats.fallbackGroups, 0);
    EXPECT_EQ(stats.workersSpawned, 3); // 1 initial + 2 respawns
}

TEST(ChaosDse, GarbageStreamPoisonsTheWorkerNotTheSweep)
{
    // Slot 0 answers its first group with unparseable junk: the master
    // must poison exactly that worker, re-dispatch, and survive.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"garbage@group:0", ""};
    opts.maxRespawns = 0;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_GE(stats.workerDeaths, 1);
    EXPECT_GE(stats.redispatches, 1);
}

// ------------------------------------------------- network faults

TEST(ChaosDse, DelayedFramesAreHarmless)
{
    // delay_ms on the Hello frame: the handshake arrives late but
    // inside its window. Pure-latency faults must cost nothing --
    // no deaths, no retries, identical bits -- and the injection
    // counter proves the proxy actually held the frame.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"", ""}; // pin slots fault-free
    opts.networkFaultPlans = {"delay_ms=200@frame:0", ""};
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_EQ(stats.networkFaultsInjected, 1);
    EXPECT_EQ(stats.workerDeaths, 0);
    EXPECT_EQ(stats.redispatches, 0);
}

TEST(ChaosDse, DroppedConnectionMidFrameIsRedispatched)
{
    // drop@frame:1: the proxy forwards half a frame then closes --
    // a connection reset mid-result. The master sees EOF inside a
    // frame, declares the worker dead and re-dispatches; slot 1
    // (fault-free) carries the sweep.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"", ""};
    opts.networkFaultPlans = {"drop@frame:1", ""};
    opts.maxRespawns = 0; // a respawn would replay the drop
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_GE(stats.networkFaultsInjected, 1);
    EXPECT_GE(stats.workerDeaths, 1);
    EXPECT_GE(stats.redispatches, 1);
}

TEST(ChaosDse, TruncatedFrameDesyncsAndPoisonsTheStream)
{
    // trunc@frame:1: half a frame arrives and the stream KEEPS
    // flowing, so the next frame's bytes land where the tail should
    // be -- a header desync the master must treat as poison, not
    // crash on.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"", ""};
    opts.networkFaultPlans = {"trunc@frame:1", ""};
    opts.livenessTimeoutMs = 1500; // desync may read as silence
    opts.maxRespawns = 0;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_GE(stats.networkFaultsInjected, 1);
    EXPECT_GE(stats.workerDeaths, 1);
}

TEST(ChaosDse, GarbageOnTheWireIsPoisonNotProtocol)
{
    // garbage as a NETWORK action: the proxy injects junk ahead of an
    // intact frame -- wire corruption between two healthy endpoints,
    // the case worker-side garbage cannot express.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"", ""};
    opts.networkFaultPlans = {"garbage@frame:1", ""};
    opts.maxRespawns = 0;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_GE(stats.workerDeaths, 1);
}

TEST(ChaosDse, RefusedConnectIsRetriedBySpawnMachinery)
{
    // refuse@connect fires once per SLOT (persistent across
    // respawns, unlike frame faults): slot 0's first spawn is
    // refused, its replacement connects fine. No work is lost --
    // the refusal happens before any dispatch.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.workerFaultPlans = {"", ""};
    opts.networkFaultPlans = {"refuse@connect", ""};
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_EQ(stats.networkFaultsInjected, 1);
    EXPECT_GE(stats.respawns, 1);
    EXPECT_EQ(stats.workerDeaths, 0);
    EXPECT_EQ(stats.redispatches, 0);
}

TEST(ChaosDse, AmbientPlanSplitsAcrossWorkerAndProxy)
{
    // One ambient FINESSE_DSE_FAULT scripting BOTH sides: the master
    // lifts the network-kind term into its proxy, the worker executes
    // only the worker-kind term. Both must demonstrably fire.
    const char *prev = std::getenv(kFaultPlanEnv);
    const std::string saved = prev ? prev : "";
    ASSERT_EQ(setenv(kFaultPlanEnv,
                     "delay_ms=150@frame:0;kill@group:1", 1),
              0);

    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);

    if (prev)
        ASSERT_EQ(setenv(kFaultPlanEnv, saved.c_str(), 1), 0);
    else
        ASSERT_EQ(unsetenv(kFaultPlanEnv), 0);

    expectSamePoints(ref, got);
    EXPECT_GE(stats.networkFaultsInjected, 1); // proxy ran the delay
    EXPECT_GE(stats.workerDeaths, 1);          // worker ran the kill
}

TEST(ChaosDse, NetworkFaultMatrixIsBitIdenticalOnBothTransports)
{
    // The tentpole's acceptance sweep: every network fault plan, on
    // BOTH transports (the proxy interposes on pipes and sockets
    // alike), must leave the results bit-identical to the in-process
    // engine. Survivability comes from re-dispatch + respawn +
    // fallbackLocal; determinism from the evaluation path.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    const std::vector<std::string> plans = {
        "drop@frame:1",
        "trunc@frame:1",
        "delay_ms=100@frame:0",
        "garbage@frame:1",
        "refuse@connect",
        "drop@frame:0", // the Hello itself dies mid-frame
    };
    for (const DseTransport transport :
         {DseTransport::Pipe, DseTransport::LoopbackTcp}) {
        for (const std::string &plan : plans) {
            SCOPED_TRACE(
                (transport == DseTransport::Pipe ? "pipe "
                                                 : "loopback-tcp ") +
                plan);
            DistributorStats stats;
            DistributorOptions opts;
            opts.stats = &stats;
            opts.transport = transport;
            opts.workerFaultPlans = {"", ""};
            opts.networkFaultPlans = {plan};
            opts.livenessTimeoutMs = 1500;
            opts.maxGroupRetries = 2;
            const std::vector<DsePoint> got =
                ex.evaluateAllDistributed(reqs, 2, opts);
            expectSamePoints(ref, got);
            EXPECT_GE(stats.networkFaultsInjected, 1);
        }
    }
}

TEST(ChaosDse, BitIdenticalForWorkerMatrixUnderFaultMatrix)
{
    // The determinism contract, survivable-fault edition: workers in
    // {1, 2, 4} x a plan matrix covering crash, hang, corruption and
    // compound faults must all return bit-identical results (elastic
    // respawn + retries + fallbackLocal guarantee completion).
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = smallRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    const std::vector<std::string> plans = {
        "kill@group:1",
        "hang@group:0",
        "garbage@frame:0",
        "stall_ms=300@group:0;kill@group:2",
    };
    for (const std::string &plan : plans) {
        for (int workers : {1, 2, 4}) {
            SCOPED_TRACE(plan + " workers=" +
                         std::to_string(workers));
            DistributorStats stats;
            DistributorOptions opts;
            opts.stats = &stats;
            opts.workerFaultPlans = {plan};
            opts.livenessTimeoutMs = 1000;
            opts.maxGroupRetries = 2;
            const std::vector<DsePoint> got =
                ex.evaluateAllDistributed(reqs, workers, opts);
            expectSamePoints(ref, got);
        }
    }
}

} // namespace
} // namespace finesse

/**
 * Worker-aware main: the distributor's default worker command
 * re-executes this binary with argv[1] == "dse-worker"; everything
 * else goes to gtest (this file links GTest::gtest, not gtest_main).
 */
int
main(int argc, char **argv)
{
    if (const std::optional<int> rc =
            finesse::maybeRunDseWorkerMain(argc, argv))
        return *rc;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
