/**
 * @file
 * The --help audit: finesse_cli's help output is generated from the
 * core/cliusage.h tables, and this test closes the loop from both
 * sides. Table -> help: every documented command and flag must be
 * printed. Source -> help: every `--flag` string literal the CLI
 * sources actually parse (tools/finesse_cli.cpp plus the dse-worker
 * entry point in src/dse/distributor.cpp) must appear in the help
 * output — so adding a flag without documenting it is a test
 * failure, not silent drift.
 *
 * The audited binary is the real installed target
 * ($<TARGET_FILE:finesse_cli> via FINESSE_CLI_PATH), not a re-link
 * of the parser.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/cliusage.h"

using namespace finesse;

namespace {

std::string
runCommand(const std::string &cmd, int *exitCode)
{
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    std::string out;
    char buf[4096];
    size_t got;
    while ((got = fread(buf, 1, sizeof buf, pipe)) > 0)
        out.append(buf, got);
    const int status = pclose(pipe);
    *exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return out;
}

std::string
helpOutput()
{
    static std::string cached; // one exec of the binary for the suite
    if (cached.empty()) {
        int rc = -1;
        cached = runCommand(std::string(FINESSE_CLI_PATH) + " --help",
                            &rc);
        EXPECT_EQ(rc, 0) << "--help must exit 0";
    }
    return cached;
}

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/**
 * Every quoted `"--flag..."` literal in @p source, with any =value
 * shape stripped: what the parser matches is the part up to the '='.
 */
std::set<std::string>
extractFlagLiterals(const std::string &source)
{
    std::set<std::string> flags;
    for (size_t at = source.find("\"--"); at != std::string::npos;
         at = source.find("\"--", at + 1)) {
        const size_t end = source.find('"', at + 1);
        if (end == std::string::npos)
            break;
        std::string flag = source.substr(at + 1, end - at - 1);
        const size_t eq = flag.find('=');
        if (eq != std::string::npos)
            flag = flag.substr(0, eq);
        // Skip prose that merely mentions a flag mid-string.
        if (flag.find(' ') == std::string::npos)
            flags.insert(flag);
    }
    return flags;
}

/** Every `command == "name"` literal: the dispatched subcommands. */
std::set<std::string>
extractCommandLiterals(const std::string &source)
{
    std::set<std::string> commands;
    const std::string needle = "command == \"";
    for (size_t at = source.find(needle); at != std::string::npos;
         at = source.find(needle, at + 1)) {
        const size_t from = at + needle.size();
        const size_t end = source.find('"', from);
        if (end == std::string::npos)
            break;
        commands.insert(source.substr(from, end - from));
    }
    return commands;
}

} // namespace

TEST(CliHelp, EveryDocumentedCommandIsPrinted)
{
    const std::string help = helpOutput();
    for (const CliDoc &d : kCliCommands) {
        EXPECT_NE(help.find(d.name), std::string::npos)
            << "command missing from --help: " << d.name;
        EXPECT_NE(help.find(d.help), std::string::npos)
            << "help line missing for: " << d.name;
    }
}

TEST(CliHelp, EveryDocumentedFlagIsPrinted)
{
    const std::string help = helpOutput();
    for (const CliDoc &d : kCliFlags) {
        const std::string name(d.name);
        const std::string flag = name.substr(0, name.find('='));
        EXPECT_NE(help.find(flag), std::string::npos)
            << "flag missing from --help: " << flag;
        EXPECT_NE(help.find(d.help), std::string::npos)
            << "help line missing for: " << flag;
    }
}

TEST(CliHelp, EveryParsedFlagIsDocumented)
{
    const std::string help = helpOutput();
    const std::set<std::string> parsed = [&] {
        std::set<std::string> all =
            extractFlagLiterals(readFile(FINESSE_CLI_SOURCE));
        for (const std::string &f :
             extractFlagLiterals(readFile(FINESSE_DSE_WORKER_SOURCE)))
            all.insert(f);
        return all;
    }();
    ASSERT_GE(parsed.size(), 20u) << "flag extraction went blind";
    for (const std::string &flag : parsed) {
        if (flag == "--") // the unknown-flag catch-all prefix test
            continue;
        EXPECT_NE(help.find(flag), std::string::npos)
            << "flag parsed by the CLI but absent from --help: "
            << flag;
    }
}

TEST(CliHelp, EveryDispatchedCommandIsDocumented)
{
    const std::string help = helpOutput();
    const std::set<std::string> dispatched =
        extractCommandLiterals(readFile(FINESSE_CLI_SOURCE));
    ASSERT_GE(dispatched.size(), 10u) << "command extraction went blind";
    for (const std::string &cmd : dispatched) {
        bool documented = false;
        for (const CliDoc &d : kCliCommands)
            documented = documented || cmd == d.name;
        EXPECT_TRUE(documented)
            << "command dispatched by the CLI but undocumented: "
            << cmd;
        EXPECT_NE(help.find(cmd), std::string::npos);
    }
}

TEST(CliHelp, UsageErrorsAndHelpExitCodes)
{
    int rc = -1;
    runCommand(std::string(FINESSE_CLI_PATH) + " --no-such-flag 2>&1",
               &rc);
    EXPECT_NE(rc, 0) << "unknown flag must be a usage error";
    const std::string err = runCommand(
        std::string(FINESSE_CLI_PATH) + " 2>&1", &rc);
    EXPECT_EQ(rc, 2) << "bare invocation prints usage, exits 2";
    EXPECT_NE(err.find("usage: finesse_cli"), std::string::npos);
    EXPECT_NE(err.find("--help"), std::string::npos);
}
