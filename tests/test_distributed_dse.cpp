/**
 * @file
 * Multi-process sweep tests: Explorer::evaluateAllDistributed must be
 * BIT-identical to evaluateAll for workers in {1, 2, 4} -- across a
 * mixed request set, across the full curve catalog, and under a
 * worker killed with SIGKILL mid-group (the re-dispatch path). Also
 * covers bounded-retry exhaustion and worker-side deterministic
 * errors.
 *
 * This binary is its own worker pool: main() dispatches argv[1] ==
 * "dse-worker" into the worker loop before gtest sees the command
 * line, so the distributor's default self-re-exec worker command
 * works unchanged. The suite also runs in the tsan CI job (the
 * master's poll loop and the in-worker batched engine under TSan).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "curve/catalog.h"
#include "dse/distributor.h"
#include "dse/explorer.h"
#include "support/socket.h"
#include "support/subprocess.h"

namespace finesse {
namespace {

/**
 * CI's chaos legs rerun this suite with an ambient FINESSE_DSE_FAULT
 * plan in the environment (workers crash/hang/corrupt on a script).
 * The identity contract must hold regardless -- that is the point of
 * the rerun -- but exact counter values (deaths, spawns, retries) are
 * only deterministic fault-free, so those asserts gate on this.
 */
bool
ambientFaults()
{
    return std::getenv(kFaultPlanEnv) != nullptr;
}

/**
 * All deterministic DsePoint fields. Doubles compared EXACTLY (==,
 * not near): they cross the wire as raw bit patterns and the worker
 * runs the same code on the same inputs, so every bit must match.
 * Wall times (compileSeconds, per-pass seconds) are exempt -- they
 * are measurements, not results.
 */
void
expectSamePoint(const DsePoint &a, const DsePoint &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.mulInstrs, b.mulInstrs);
    EXPECT_EQ(a.linInstrs, b.linInstrs);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.variants.cacheKey(), b.variants.cacheKey());
    EXPECT_EQ(a.hw.describe(), b.hw.describe());
    EXPECT_TRUE(a.ipc == b.ipc);
    EXPECT_TRUE(a.areaMm2 == b.areaMm2);
    EXPECT_TRUE(a.freqMHz == b.freqMHz);
    EXPECT_TRUE(a.criticalPathNs == b.criticalPathNs);
    EXPECT_TRUE(a.latencyUs == b.latencyUs);
    EXPECT_TRUE(a.throughputOps == b.throughputOps);
    EXPECT_TRUE(a.thptPerArea == b.thptPerArea);

    // Front-end attribution crosses the wire too: aggregate counters
    // and the deterministic per-pass columns must survive bit-exactly.
    EXPECT_EQ(a.opt.instrsBefore, b.opt.instrsBefore);
    EXPECT_EQ(a.opt.instrsAfter, b.opt.instrsAfter);
    EXPECT_EQ(a.opt.iterations, b.opt.iterations);
    ASSERT_EQ(a.opt.passes.size(), b.opt.passes.size());
    for (size_t i = 0; i < a.opt.passes.size(); ++i) {
        EXPECT_EQ(a.opt.passes[i].name, b.opt.passes[i].name);
        EXPECT_EQ(a.opt.passes[i].invocations,
                  b.opt.passes[i].invocations);
        EXPECT_EQ(a.opt.passes[i].instrsRemoved,
                  b.opt.passes[i].instrsRemoved);
        EXPECT_EQ(a.opt.passes[i].frontend, b.opt.passes[i].frontend);
    }
}

void
expectSamePoints(const std::vector<DsePoint> &ref,
                 const std::vector<DsePoint> &got)
{
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSamePoint(ref[i], got[i]);
    }
}

/**
 * Mixed request set on BN254N: several trace keys (variants x part),
 * several hardware models per key, a legacy-path request (trace cache
 * disabled -> singleton group) and a backend ablation.
 */
std::vector<DseRequest>
mixedRequests(const Explorer &ex)
{
    std::vector<PipelineModel> models;
    models.emplace_back(); // single-issue deep
    {
        PipelineModel vliw;
        vliw.longLat = 8;
        vliw.shortLat = 2;
        vliw.issueWidth = 3;
        vliw.numLinUnits = 2;
        vliw.numBanks = 3;
        vliw.writebackFifo = true;
        models.push_back(vliw);
    }

    std::vector<DseRequest> reqs;
    const std::vector<VariantConfig> cfgs = {
        ex.allKaratsuba(), ex.allSchoolbook(), ex.manualHeuristic()};
    for (const VariantConfig &cfg : cfgs) {
        for (const PipelineModel &hw : models) {
            DseRequest req;
            req.opt.variants = cfg;
            req.opt.hw = hw;
            req.cores = 2;
            req.label = "grid";
            reqs.push_back(std::move(req));
        }
    }
    {
        // Distinct trace key via part + a cheap trace.
        DseRequest req;
        req.opt.part = TracePart::FinalExpOnly;
        req.label = "finalexp";
        reqs.push_back(std::move(req));
    }
    {
        // Legacy per-point path: no trace cache -> singleton group.
        DseRequest req;
        req.opt.useTraceCache = false;
        req.label = "legacy";
        reqs.push_back(std::move(req));
    }
    return reqs;
}

TEST(DistributedDse, MatchesEvaluateAllForWorkers124)
{
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = mixedRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    for (int workers : {1, 2, 4}) {
        SCOPED_TRACE("workers " + std::to_string(workers));
        DistributorStats stats;
        DistributorOptions opts;
        opts.stats = &stats;
        const std::vector<DsePoint> got =
            ex.evaluateAllDistributed(reqs, workers, opts);
        expectSamePoints(ref, got);
        EXPECT_GT(stats.groups, 1u);
        if (!ambientFaults()) {
            EXPECT_EQ(stats.workerDeaths, 0);
            EXPECT_EQ(stats.redispatches, 0);
            EXPECT_LE(stats.workersSpawned, workers);
        }
    }
}

TEST(DistributedDse, LoopbackTcpTransportMatchesEvaluateAll)
{
    // The identity contract is transport-independent: the same sweep
    // over loopback-TCP sockets (master listens on an ephemeral
    // 127.0.0.1 port, each worker dials back with --connect) must
    // produce the same bits as the pipe transport and the in-process
    // engine, for every pool width.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = mixedRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    for (int workers : {1, 2, 4}) {
        SCOPED_TRACE("workers " + std::to_string(workers));
        DistributorStats stats;
        DistributorOptions opts;
        opts.stats = &stats;
        opts.transport = DseTransport::LoopbackTcp;
        const std::vector<DsePoint> got =
            ex.evaluateAllDistributed(reqs, workers, opts);
        expectSamePoints(ref, got);
        if (!ambientFaults()) {
            EXPECT_EQ(stats.workerDeaths, 0);
            EXPECT_EQ(stats.redispatches, 0);
        }
    }
}

/**
 * Spawn `<self> dse-worker --listen=127.0.0.1:0` and return its
 * address, parsed from the stdout banner (the ephemeral-port
 * discovery contract). @p maxAccepts bounds the server's lifetime so
 * wait() below returns.
 */
HostPort
spawnListenWorker(Subprocess &worker, int maxAccepts)
{
    worker.spawn({selfExePath(), "dse-worker", "--listen=127.0.0.1:0",
                  "--max-accepts=" + std::to_string(maxAccepts)},
                 {});
    std::string banner;
    char c;
    while (banner.find('\n') == std::string::npos &&
           worker.readSome(&c, 1) == 1)
        banner.push_back(c);
    const std::string prefix = "dse-worker listening on ";
    EXPECT_EQ(banner.rfind(prefix, 0), 0u) << banner;
    return parseHostPort(banner.substr(
        prefix.size(), banner.size() - prefix.size() - 1));
}

TEST(DistributedDse, RemoteListenWorkerPoolMatchesEvaluateAll)
{
    // End-to-end remote transport: two genuinely separate listen
    // workers (spawned the way an operator would start them, NOT by
    // the distributor) serve a mixed pool alongside one pinned local
    // slot. Identity must hold and all three slots must be used.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = mixedRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    Subprocess workerA, workerB;
    const HostPort a = spawnListenWorker(workerA, 1);
    const HostPort b = spawnListenWorker(workerB, 1);
    ASSERT_GT(a.port, 0);
    ASSERT_GT(b.port, 0);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.hosts = {a.describe(), b.describe(), "local"};
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 3, opts);
    expectSamePoints(ref, got);
    if (!ambientFaults()) {
        EXPECT_EQ(stats.remoteConnects, 2);
        EXPECT_EQ(stats.remoteConnectFailures, 0);
        EXPECT_EQ(stats.workerDeaths, 0);
    }
    // max-accepts=1: both servers exit cleanly once the master is
    // done with them -- which also proves the master disconnected.
    EXPECT_EQ(workerA.wait(), 0);
    EXPECT_EQ(workerB.wait(), 0);
}

TEST(DistributedDse, AllRemoteHostsDeadDegradesToLocalWorkers)
{
    // Every pool entry points at a port that refuses instantly
    // (bind-then-close guarantees nothing listens). The sweep must
    // quarantine both hosts, refill the slots with local workers and
    // still return identical bits -- the "losing every remote
    // degrades to the PR 7 local path" contract.
    std::string err;
    int deadPort = 0;
    HostPort loop;
    loop.host = "127.0.0.1";
    const int probe = tcpListen(loop, 1, &err, &deadPort);
    ASSERT_GE(probe, 0) << err;
    ASSERT_EQ(::close(probe), 0);

    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = mixedRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    const std::string dead =
        "127.0.0.1:" + std::to_string(deadPort);
    opts.hosts = {dead, dead};
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    EXPECT_GE(stats.remoteConnectFailures, 2);
    EXPECT_GE(stats.hostQuarantines, 2);
    EXPECT_GE(stats.remoteDegraded, 2);
    EXPECT_EQ(stats.remoteConnects, 0);
}

TEST(DistributedDse, QuarantinedHostStaysEmptyWithoutDegrade)
{
    // remoteDegradeToLocal=false: a dead remote's slot must NOT
    // refill locally. With fallbackLocal the sweep still completes
    // in-process -- results identical, zero workers ever spawned.
    std::string err;
    int deadPort = 0;
    HostPort loop;
    loop.host = "127.0.0.1";
    const int probe = tcpListen(loop, 1, &err, &deadPort);
    ASSERT_GE(probe, 0) << err;
    ASSERT_EQ(::close(probe), 0);

    Explorer ex("BN254N");
    std::vector<DseRequest> reqs;
    reqs.emplace_back();
    reqs.back().opt.part = TracePart::FinalExpOnly;
    reqs.back().label = "solo";
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.hosts = {"127.0.0.1:" + std::to_string(deadPort)};
    opts.remoteDegradeToLocal = false;
    opts.maxRespawns = 2;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 1, opts);
    expectSamePoints(ref, got);
    EXPECT_EQ(stats.remoteDegraded, 0);
    EXPECT_EQ(stats.workersSpawned, 0);
    EXPECT_GE(stats.fallbackGroups, 1);
}

TEST(DistributedDse, MatchesEvaluateAllAcrossFullCatalog)
{
    // Every catalog curve, two hardware models against the default
    // variants (one trace key per curve -> one group per curve, the
    // cheapest full-catalog crossing). Two workers split the groups.
    for (const CurveDef &def : curveCatalog()) {
        SCOPED_TRACE(def.name);
        Explorer ex(def.name);
        std::vector<DseRequest> reqs;
        for (int lin : {1, 2}) {
            DseRequest req;
            req.opt.hw.longLat = 8;
            req.opt.hw.shortLat = 2;
            req.opt.hw.issueWidth = lin > 1 ? lin + 1 : 1;
            req.opt.hw.numLinUnits = lin;
            req.opt.hw.numBanks = req.opt.hw.issueWidth;
            req.opt.hw.writebackFifo = lin > 1;
            req.label = def.name;
            reqs.push_back(std::move(req));
        }
        const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);
        const std::vector<DsePoint> got =
            ex.evaluateAllDistributed(reqs, 2);
        expectSamePoints(ref, got);
    }
}

TEST(DistributedDse, Kill9MidGroupRedispatchesAndStaysIdentical)
{
    // Worker 0 raises SIGKILL on receipt of its first group -- after
    // the master committed the dispatch, i.e. genuinely mid-group.
    // The master must detect the death, re-dispatch that group to the
    // surviving worker, and still return bit-identical results.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = mixedRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.killWorkerIndex = 0;
    opts.maxRespawns = 0; // a replacement would replay the kill plan
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    if (!ambientFaults()) {
        EXPECT_EQ(stats.workersSpawned, 2);
        EXPECT_EQ(stats.workerDeaths, 1);
        EXPECT_EQ(stats.redispatches, 1);
        EXPECT_EQ(stats.workersSignaled, 1);
    }
}

TEST(DistributedDse, AllWorkersDeadFailsWithBoundedRetries)
{
    // Every worker (and every replacement: respawns inherit the slot
    // plan) kills itself on its first group. With fallbackLocal off,
    // the sweep must terminate with an error -- no infinite
    // re-spawn/re-dispatch -- and the retry counter must stay within
    // its bound. (The fallbackLocal=true flavor of this scenario --
    // correct results instead of an error -- lives in test_chaos_dse.)
    Explorer ex("BN254N");
    std::vector<DseRequest> reqs;
    reqs.emplace_back();
    reqs.back().label = "doomed";

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.killAllWorkers = true;
    opts.maxGroupRetries = 5;
    opts.fallbackLocal = false;
    EXPECT_THROW(ex.evaluateAllDistributed(reqs, 2, opts), FatalError);
    EXPECT_GE(stats.workerDeaths, 1);
    EXPECT_LE(stats.redispatches, opts.maxGroupRetries);
}

TEST(DistributedDse, WorkerSideErrorPropagatesWithoutRetry)
{
    // An unknown curve is a deterministic failure: the worker reports
    // it over the wire (WorkerError frame) and the master propagates
    // instead of burning retries on it. The request disables the
    // trace cache so the master never needs the curve handle itself
    // (singleton group) -- the error must travel the wire.
    std::vector<DseRequest> reqs;
    reqs.emplace_back();
    reqs.back().opt.useTraceCache = false;
    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    EXPECT_THROW(distributeEvaluate("NOT-A-CURVE", reqs, 1, opts),
                 FatalError);
    if (!ambientFaults())
        EXPECT_EQ(stats.redispatches, 0);
}

TEST(DistributedDse, EmptyRequestListReturnsEmpty)
{
    Explorer ex("BN254N");
    EXPECT_TRUE(ex.evaluateAllDistributed({}, 4).empty());
}

TEST(DistributedDse, MoreWorkersThanGroupsIsFine)
{
    Explorer ex("BN254N");
    std::vector<DseRequest> reqs;
    reqs.emplace_back();
    reqs.back().opt.part = TracePart::FinalExpOnly;
    reqs.back().label = "solo";
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);
    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 8, opts);
    expectSamePoints(ref, got);
    if (!ambientFaults())
        EXPECT_EQ(stats.workersSpawned, 1); // capped at group count
}

TEST(DistributedDse, ExploreVariantsDistributedFindsSameBest)
{
    Explorer ex("BN254N");
    CompileOptions base;
    base.jobs = 1;
    const DsePoint serialBest =
        ex.exploreVariants(base, Objective::MinCycles, true);
    base.dseWorkers = 2;
    const DsePoint distBest =
        ex.exploreVariants(base, Objective::MinCycles, true);
    expectSamePoint(serialBest, distBest);
}

} // namespace
} // namespace finesse

/**
 * Worker-aware main: the distributor's default worker command
 * re-executes this binary with argv[1] == "dse-worker"; everything
 * else goes to gtest (this file links GTest::gtest, not gtest_main).
 */
int
main(int argc, char **argv)
{
    if (const std::optional<int> rc =
            finesse::maybeRunDseWorkerMain(argc, argv))
        return *rc;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
