/**
 * @file
 * Multi-process sweep tests: Explorer::evaluateAllDistributed must be
 * BIT-identical to evaluateAll for workers in {1, 2, 4} -- across a
 * mixed request set, across the full curve catalog, and under a
 * worker killed with SIGKILL mid-group (the re-dispatch path). Also
 * covers bounded-retry exhaustion and worker-side deterministic
 * errors.
 *
 * This binary is its own worker pool: main() dispatches argv[1] ==
 * "dse-worker" into the worker loop before gtest sees the command
 * line, so the distributor's default self-re-exec worker command
 * works unchanged. The suite also runs in the tsan CI job (the
 * master's poll loop and the in-worker batched engine under TSan).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "curve/catalog.h"
#include "dse/distributor.h"
#include "dse/explorer.h"

namespace finesse {
namespace {

/**
 * CI's chaos legs rerun this suite with an ambient FINESSE_DSE_FAULT
 * plan in the environment (workers crash/hang/corrupt on a script).
 * The identity contract must hold regardless -- that is the point of
 * the rerun -- but exact counter values (deaths, spawns, retries) are
 * only deterministic fault-free, so those asserts gate on this.
 */
bool
ambientFaults()
{
    return std::getenv(kFaultPlanEnv) != nullptr;
}

/**
 * All deterministic DsePoint fields. Doubles compared EXACTLY (==,
 * not near): they cross the wire as raw bit patterns and the worker
 * runs the same code on the same inputs, so every bit must match.
 * Wall times (compileSeconds, per-pass seconds) are exempt -- they
 * are measurements, not results.
 */
void
expectSamePoint(const DsePoint &a, const DsePoint &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.mulInstrs, b.mulInstrs);
    EXPECT_EQ(a.linInstrs, b.linInstrs);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.variants.cacheKey(), b.variants.cacheKey());
    EXPECT_EQ(a.hw.describe(), b.hw.describe());
    EXPECT_TRUE(a.ipc == b.ipc);
    EXPECT_TRUE(a.areaMm2 == b.areaMm2);
    EXPECT_TRUE(a.freqMHz == b.freqMHz);
    EXPECT_TRUE(a.criticalPathNs == b.criticalPathNs);
    EXPECT_TRUE(a.latencyUs == b.latencyUs);
    EXPECT_TRUE(a.throughputOps == b.throughputOps);
    EXPECT_TRUE(a.thptPerArea == b.thptPerArea);

    // Front-end attribution crosses the wire too: aggregate counters
    // and the deterministic per-pass columns must survive bit-exactly.
    EXPECT_EQ(a.opt.instrsBefore, b.opt.instrsBefore);
    EXPECT_EQ(a.opt.instrsAfter, b.opt.instrsAfter);
    EXPECT_EQ(a.opt.iterations, b.opt.iterations);
    ASSERT_EQ(a.opt.passes.size(), b.opt.passes.size());
    for (size_t i = 0; i < a.opt.passes.size(); ++i) {
        EXPECT_EQ(a.opt.passes[i].name, b.opt.passes[i].name);
        EXPECT_EQ(a.opt.passes[i].invocations,
                  b.opt.passes[i].invocations);
        EXPECT_EQ(a.opt.passes[i].instrsRemoved,
                  b.opt.passes[i].instrsRemoved);
        EXPECT_EQ(a.opt.passes[i].frontend, b.opt.passes[i].frontend);
    }
}

void
expectSamePoints(const std::vector<DsePoint> &ref,
                 const std::vector<DsePoint> &got)
{
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSamePoint(ref[i], got[i]);
    }
}

/**
 * Mixed request set on BN254N: several trace keys (variants x part),
 * several hardware models per key, a legacy-path request (trace cache
 * disabled -> singleton group) and a backend ablation.
 */
std::vector<DseRequest>
mixedRequests(const Explorer &ex)
{
    std::vector<PipelineModel> models;
    models.emplace_back(); // single-issue deep
    {
        PipelineModel vliw;
        vliw.longLat = 8;
        vliw.shortLat = 2;
        vliw.issueWidth = 3;
        vliw.numLinUnits = 2;
        vliw.numBanks = 3;
        vliw.writebackFifo = true;
        models.push_back(vliw);
    }

    std::vector<DseRequest> reqs;
    const std::vector<VariantConfig> cfgs = {
        ex.allKaratsuba(), ex.allSchoolbook(), ex.manualHeuristic()};
    for (const VariantConfig &cfg : cfgs) {
        for (const PipelineModel &hw : models) {
            DseRequest req;
            req.opt.variants = cfg;
            req.opt.hw = hw;
            req.cores = 2;
            req.label = "grid";
            reqs.push_back(std::move(req));
        }
    }
    {
        // Distinct trace key via part + a cheap trace.
        DseRequest req;
        req.opt.part = TracePart::FinalExpOnly;
        req.label = "finalexp";
        reqs.push_back(std::move(req));
    }
    {
        // Legacy per-point path: no trace cache -> singleton group.
        DseRequest req;
        req.opt.useTraceCache = false;
        req.label = "legacy";
        reqs.push_back(std::move(req));
    }
    return reqs;
}

TEST(DistributedDse, MatchesEvaluateAllForWorkers124)
{
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = mixedRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    for (int workers : {1, 2, 4}) {
        SCOPED_TRACE("workers " + std::to_string(workers));
        DistributorStats stats;
        DistributorOptions opts;
        opts.stats = &stats;
        const std::vector<DsePoint> got =
            ex.evaluateAllDistributed(reqs, workers, opts);
        expectSamePoints(ref, got);
        EXPECT_GT(stats.groups, 1u);
        if (!ambientFaults()) {
            EXPECT_EQ(stats.workerDeaths, 0);
            EXPECT_EQ(stats.redispatches, 0);
            EXPECT_LE(stats.workersSpawned, workers);
        }
    }
}

TEST(DistributedDse, MatchesEvaluateAllAcrossFullCatalog)
{
    // Every catalog curve, two hardware models against the default
    // variants (one trace key per curve -> one group per curve, the
    // cheapest full-catalog crossing). Two workers split the groups.
    for (const CurveDef &def : curveCatalog()) {
        SCOPED_TRACE(def.name);
        Explorer ex(def.name);
        std::vector<DseRequest> reqs;
        for (int lin : {1, 2}) {
            DseRequest req;
            req.opt.hw.longLat = 8;
            req.opt.hw.shortLat = 2;
            req.opt.hw.issueWidth = lin > 1 ? lin + 1 : 1;
            req.opt.hw.numLinUnits = lin;
            req.opt.hw.numBanks = req.opt.hw.issueWidth;
            req.opt.hw.writebackFifo = lin > 1;
            req.label = def.name;
            reqs.push_back(std::move(req));
        }
        const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);
        const std::vector<DsePoint> got =
            ex.evaluateAllDistributed(reqs, 2);
        expectSamePoints(ref, got);
    }
}

TEST(DistributedDse, Kill9MidGroupRedispatchesAndStaysIdentical)
{
    // Worker 0 raises SIGKILL on receipt of its first group -- after
    // the master committed the dispatch, i.e. genuinely mid-group.
    // The master must detect the death, re-dispatch that group to the
    // surviving worker, and still return bit-identical results.
    Explorer ex("BN254N");
    const std::vector<DseRequest> reqs = mixedRequests(ex);
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.killWorkerIndex = 0;
    opts.maxRespawns = 0; // a replacement would replay the kill plan
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 2, opts);
    expectSamePoints(ref, got);
    if (!ambientFaults()) {
        EXPECT_EQ(stats.workersSpawned, 2);
        EXPECT_EQ(stats.workerDeaths, 1);
        EXPECT_EQ(stats.redispatches, 1);
        EXPECT_EQ(stats.workersSignaled, 1);
    }
}

TEST(DistributedDse, AllWorkersDeadFailsWithBoundedRetries)
{
    // Every worker (and every replacement: respawns inherit the slot
    // plan) kills itself on its first group. With fallbackLocal off,
    // the sweep must terminate with an error -- no infinite
    // re-spawn/re-dispatch -- and the retry counter must stay within
    // its bound. (The fallbackLocal=true flavor of this scenario --
    // correct results instead of an error -- lives in test_chaos_dse.)
    Explorer ex("BN254N");
    std::vector<DseRequest> reqs;
    reqs.emplace_back();
    reqs.back().label = "doomed";

    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    opts.killAllWorkers = true;
    opts.maxGroupRetries = 5;
    opts.fallbackLocal = false;
    EXPECT_THROW(ex.evaluateAllDistributed(reqs, 2, opts), FatalError);
    EXPECT_GE(stats.workerDeaths, 1);
    EXPECT_LE(stats.redispatches, opts.maxGroupRetries);
}

TEST(DistributedDse, WorkerSideErrorPropagatesWithoutRetry)
{
    // An unknown curve is a deterministic failure: the worker reports
    // it over the wire (WorkerError frame) and the master propagates
    // instead of burning retries on it. The request disables the
    // trace cache so the master never needs the curve handle itself
    // (singleton group) -- the error must travel the wire.
    std::vector<DseRequest> reqs;
    reqs.emplace_back();
    reqs.back().opt.useTraceCache = false;
    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    EXPECT_THROW(distributeEvaluate("NOT-A-CURVE", reqs, 1, opts),
                 FatalError);
    if (!ambientFaults())
        EXPECT_EQ(stats.redispatches, 0);
}

TEST(DistributedDse, EmptyRequestListReturnsEmpty)
{
    Explorer ex("BN254N");
    EXPECT_TRUE(ex.evaluateAllDistributed({}, 4).empty());
}

TEST(DistributedDse, MoreWorkersThanGroupsIsFine)
{
    Explorer ex("BN254N");
    std::vector<DseRequest> reqs;
    reqs.emplace_back();
    reqs.back().opt.part = TracePart::FinalExpOnly;
    reqs.back().label = "solo";
    const std::vector<DsePoint> ref = ex.evaluateAll(reqs, 1);
    DistributorStats stats;
    DistributorOptions opts;
    opts.stats = &stats;
    const std::vector<DsePoint> got =
        ex.evaluateAllDistributed(reqs, 8, opts);
    expectSamePoints(ref, got);
    if (!ambientFaults())
        EXPECT_EQ(stats.workersSpawned, 1); // capped at group count
}

TEST(DistributedDse, ExploreVariantsDistributedFindsSameBest)
{
    Explorer ex("BN254N");
    CompileOptions base;
    base.jobs = 1;
    const DsePoint serialBest =
        ex.exploreVariants(base, Objective::MinCycles, true);
    base.dseWorkers = 2;
    const DsePoint distBest =
        ex.exploreVariants(base, Objective::MinCycles, true);
    expectSamePoint(serialBest, distBest);
}

} // namespace
} // namespace finesse

/**
 * Worker-aware main: the distributor's default worker command
 * re-executes this binary with argv[1] == "dse-worker"; everything
 * else goes to gtest (this file links GTest::gtest, not gtest_main).
 */
int
main(int argc, char **argv)
{
    if (const std::optional<int> rc =
            finesse::maybeRunDseWorkerMain(argc, argv))
        return *rc;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
