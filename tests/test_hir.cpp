/**
 * @file
 * HIR tests: Table 4 typing rules, Figure 4 lowering (fp12.mul to fp6
 * level under both variants), and semantic equivalence of the lowered
 * program against the native tower by interpretation.
 */
#include <gtest/gtest.h>

#include "field/tower.h"
#include "ir/hir.h"
#include "support/rng.h"

namespace finesse {
namespace {

/** Interpreter for fp6-level HIR over the native tower. */
class Fp6Interp
{
  public:
    explicit Fp6Interp(const NativeTower12 &t) : t_(t) {}

    std::vector<Fp6>
    run(const HirModule &m, const std::vector<Fp6> &inputs)
    {
        std::vector<Fp6> vals(m.valueTypes.size(),
                              Fp6::zero(&t_.fp6));
        FINESSE_CHECK(inputs.size() == m.inputs.size());
        for (size_t i = 0; i < inputs.size(); ++i)
            vals[m.inputs[i]] = inputs[i];
        for (const HirInst &inst : m.body) {
            const Fp6 &a = vals[inst.a];
            switch (inst.op) {
              case HirOp::Add:
                vals[inst.dst] = a.add(vals[inst.b]);
                break;
              case HirOp::Sub:
                vals[inst.dst] = a.sub(vals[inst.b]);
                break;
              case HirOp::Mul:
                vals[inst.dst] = a.mul(vals[inst.b]);
                break;
              case HirOp::Sqr:
                vals[inst.dst] = a.sqr();
                break;
              case HirOp::MulI:
                vals[inst.dst] = muliSmall(a, inst.imm);
                break;
              case HirOp::Adj:
                vals[inst.dst] = a.mulByGen();
                break;
              default:
                panic("unexpected op in fp6 interp");
            }
        }
        std::vector<Fp6> out;
        for (i32 o : m.outputs)
            out.push_back(vals[o]);
        return out;
    }

  private:
    const NativeTower12 &t_;
};

class HirTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        p_ = BigInt::fromString(
            "0x2523648240000001ba344d80000000086121000000000013"
            "a700000000000013");
        fp_ = std::make_unique<FpCtx>(p_);
        i64 q, x0, x1;
        searchTowerNonResidues(p_, q, x0, x1);
        prm_ = computeTowerParams(p_, 12, q, x0, x1);
        tower_ = std::make_unique<NativeTower12>();
        buildTower(*tower_, fp_.get(), prm_, VariantConfig{});
    }

    Fp6
    randFp6()
    {
        std::vector<BigInt> c;
        for (int i = 0; i < 6; ++i)
            c.push_back(BigInt::randomBelow(rng_, p_));
        auto it = c.begin();
        return Fp6::fromFpCoeffs(&tower_->fp6, it);
    }

    BigInt p_;
    std::unique_ptr<FpCtx> fp_;
    TowerParams prm_;
    std::unique_ptr<NativeTower12> tower_;
    Rng rng_{404};
};

HirModule
fp12MulModule()
{
    HirModule m;
    const HirType fp12{HirType::Kind::Field, 12};
    const i32 a = m.input(fp12);
    const i32 b = m.input(fp12);
    m.outputs.push_back(m.emit(HirOp::Mul, fp12, a, b));
    m.verify();
    return m;
}

TEST_F(HirTest, Fig4KaratsubaShape)
{
    const HirModule lowered = lowerQuadLevel(
        fp12MulModule(), 12, {MulVariant::Karatsuba, SqrVariant::Complex});
    // Figure 4: 3 muls, 4 adds, 1 sub, 1 adj at the fp6 level.
    int muls = 0, adds = 0, subs = 0, adjs = 0;
    for (const HirInst &inst : lowered.body) {
        muls += inst.op == HirOp::Mul;
        adds += inst.op == HirOp::Add;
        subs += inst.op == HirOp::Sub;
        adjs += inst.op == HirOp::Adj;
    }
    EXPECT_EQ(muls, 3);
    EXPECT_EQ(adds, 4);
    EXPECT_EQ(subs, 1);
    EXPECT_EQ(adjs, 1);
    EXPECT_EQ(lowered.outputs.size(), 2u);
    // The printed form matches the paper's style.
    EXPECT_NE(lowered.print().find("fp6.mul"), std::string::npos);
    EXPECT_NE(lowered.print().find("fp6.adj"), std::string::npos);
}

TEST_F(HirTest, LoweredSemanticsMatchNativeTower)
{
    for (auto variant : {MulVariant::Karatsuba, MulVariant::Schoolbook}) {
        const HirModule lowered = lowerQuadLevel(
            fp12MulModule(), 12, {variant, SqrVariant::Complex});
        Fp6Interp interp(*tower_);
        const Fp6 a0 = randFp6(), a1 = randFp6();
        const Fp6 b0 = randFp6(), b1 = randFp6();
        const auto out = interp.run(lowered, {a0, a1, b0, b1});
        ASSERT_EQ(out.size(), 2u);
        const Fp12 a{a0, a1, &tower_->fp12};
        const Fp12 b{b0, b1, &tower_->fp12};
        const Fp12 want = a.mul(b);
        EXPECT_TRUE(want.c0().equals(out[0])) << toString(variant);
        EXPECT_TRUE(want.c1().equals(out[1])) << toString(variant);
    }
}

TEST_F(HirTest, SqrAndLinearLowering)
{
    HirModule m;
    const HirType fp12{HirType::Kind::Field, 12};
    const i32 a = m.input(fp12);
    const i32 b = m.input(fp12);
    const i32 s = m.emit(HirOp::Sqr, fp12, a);
    const i32 d = m.emit(HirOp::Sub, fp12, s, b);
    const i32 j = m.emit(HirOp::Adj, fp12, d);
    const i32 c = m.emit(HirOp::Conj, fp12, j);
    const i32 t = m.emit(HirOp::MulI, fp12, c, -1, 5);
    m.outputs.push_back(t);
    m.verify();

    for (auto sqrVar : {SqrVariant::Complex, SqrVariant::Schoolbook}) {
        const HirModule lowered =
            lowerQuadLevel(m, 12, {MulVariant::Karatsuba, sqrVar});
        Fp6Interp interp(*tower_);
        const Fp6 a0 = randFp6(), a1 = randFp6();
        const Fp6 b0 = randFp6(), b1 = randFp6();
        const auto out = interp.run(lowered, {a0, a1, b0, b1});
        const Fp12 av{a0, a1, &tower_->fp12};
        const Fp12 bv{b0, b1, &tower_->fp12};
        const Fp12 want =
            muliSmall(av.sqr().sub(bv).mulByGen().conj(), 5);
        EXPECT_TRUE(want.c0().equals(out[0]));
        EXPECT_TRUE(want.c1().equals(out[1]));
    }
}

TEST(HirTyping, VerifyRejectsIllTyped)
{
    HirModule m;
    const HirType fp12{HirType::Kind::Field, 12};
    const HirType fp2{HirType::Kind::Field, 2};
    const i32 a = m.input(fp12);
    const i32 b = m.input(fp2);
    m.emit(HirOp::Add, fp12, a, b); // dimension mismatch
    EXPECT_THROW(m.verify(), PanicError);
}

TEST(HirTyping, PointOps)
{
    HirModule m;
    const HirType ep2{HirType::Kind::Point, 2};
    const i32 p = m.input(ep2);
    const i32 q = m.input(ep2);
    const i32 s = m.emit(HirOp::PAdd, ep2, p, q);
    const i32 t = m.emit(HirOp::PMul, ep2, s, -1, 12345);
    m.outputs.push_back(t);
    m.verify();
    EXPECT_NE(m.print().find("ep2.padd"), std::string::npos);
    EXPECT_NE(m.print().find("ep2.pmul"), std::string::npos);
}

} // namespace
} // namespace finesse
