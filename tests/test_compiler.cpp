/**
 * @file
 * Compiler pipeline tests: CodeGen tracing, IROpt passes, scheduling,
 * register allocation, encoding, and end-to-end functional
 * cross-validation of compiled pairing programs against the native
 * library (the paper's validation flow).
 */
#include <gtest/gtest.h>

#include "core/framework.h"
#include "sim/functional.h"

namespace finesse {
namespace {

// ---------------------------------------------------------------- passes

Module
smallModule()
{
    // A tiny hand-built module: out = (a*0) + (b*1) + (a-a) + 2*b.
    Module m;
    m.p = BigInt::fromString("1000003");
    auto id = [&] { return m.numValues++; };
    const i32 c0 = id(), c1 = id(), c2 = id();
    m.constants = {{c0, BigInt()}, {c1, BigInt(u64{1})},
                   {c2, BigInt(u64{2})}};
    const i32 aRaw = id(), bRaw = id();
    m.inputs = {aRaw, bRaw};
    const i32 a = id();
    m.body.push_back({Op::Icv, a, aRaw, -1});
    const i32 b = id();
    m.body.push_back({Op::Icv, b, bRaw, -1});
    const i32 t0 = id();
    m.body.push_back({Op::Mul, t0, a, c0}); // a*0 = 0
    const i32 t1 = id();
    m.body.push_back({Op::Mul, t1, b, c1}); // b*1 = b
    const i32 t2 = id();
    m.body.push_back({Op::Sub, t2, a, a}); // 0
    const i32 t3 = id();
    m.body.push_back({Op::Mul, t3, c2, b}); // 2b -> Dbl
    const i32 t4 = id();
    m.body.push_back({Op::Add, t4, t0, t1}); // 0 + b = b
    const i32 t5 = id();
    m.body.push_back({Op::Add, t5, t4, t2}); // b + 0 = b
    const i32 t6 = id();
    m.body.push_back({Op::Add, t6, t5, t3}); // b + 2b
    const i32 out = id();
    m.body.push_back({Op::Cvt, out, t6, -1});
    m.outputs = {out};
    m.verify();
    return m;
}

TEST(Passes, FoldsIdentitiesAndStrengthReduces)
{
    Module m = smallModule();
    const size_t before = m.size();
    const OptStats stats = optimizeModule(m);
    EXPECT_EQ(stats.instrsBefore, before);
    EXPECT_LT(m.size(), before);
    // Expect: Icv(b) + Dbl + Add + Cvt = 4 instructions (the Icv of
    // input a is dead once a*0 and a-a fold away).
    EXPECT_EQ(m.size(), 4u);
    EXPECT_EQ(m.countOp(Op::Dbl), 1u);
    EXPECT_EQ(m.countOp(Op::Mul), 0u);

    // Semantics preserved: out = 3b.
    FpCtx fp(m.p);
    const auto got = runModule(m, fp, {BigInt(u64{5}), BigInt(u64{7})});
    EXPECT_EQ(got[0], BigInt(u64{21}));
}

TEST(Passes, GvnUsesCommutativity)
{
    Module m;
    m.p = BigInt::fromString("1000003");
    auto id = [&] { return m.numValues++; };
    const i32 aRaw = id(), bRaw = id();
    m.inputs = {aRaw, bRaw};
    const i32 a = id();
    m.body.push_back({Op::Icv, a, aRaw, -1});
    const i32 b = id();
    m.body.push_back({Op::Icv, b, bRaw, -1});
    const i32 ab = id();
    m.body.push_back({Op::Mul, ab, a, b});
    const i32 ba = id();
    m.body.push_back({Op::Mul, ba, b, a}); // same value by commutativity
    const i32 s = id();
    m.body.push_back({Op::Add, s, ab, ba});
    const i32 out = id();
    m.body.push_back({Op::Cvt, out, s, -1});
    m.outputs = {out};

    optimizeModule(m);
    EXPECT_EQ(m.countOp(Op::Mul), 1u);
    // add(x, x) got strength-reduced to dbl.
    EXPECT_EQ(m.countOp(Op::Dbl), 1u);
}

// --------------------------------------------------------------- codegen

TEST(Codegen, TraceShapeBN254N)
{
    Framework fw("BN254N");
    CompileOptions opt;
    opt.optimize = false;
    opt.listSchedule = false;
    const CompileResult res = fw.compile(opt);
    const Module &m = res.prog.module;
    // I/O convention: 2 Fp coords for P + 2*2 for Q; 12 outputs.
    EXPECT_EQ(m.inputs.size(), 6u);
    EXPECT_EQ(m.outputs.size(), 12u);
    // Tens of thousands of instructions (paper: 62.7k before opt).
    EXPECT_GT(m.size(), 20000u);
    EXPECT_LT(m.size(), 400000u);
    EXPECT_GT(m.countUnit(UnitClass::Mul), 5000u);
    EXPECT_EQ(m.countOp(Op::Inv), 1u); // single inversion (Jacobian)
}

TEST(Codegen, OptReducesInstructions)
{
    Framework fw("BN254N");
    CompileOptions init;
    init.optimize = false;
    init.listSchedule = false;
    CompileOptions optd;
    optd.optimize = true;
    optd.listSchedule = true;
    const auto a = fw.compile(init);
    const auto b = fw.compile(optd);
    EXPECT_LT(b.instrs(), a.instrs());
    const double reduction =
        100.0 * (1.0 - static_cast<double>(b.instrs()) /
                           static_cast<double>(a.instrs()));
    // Paper reports 8.5-16.4% across curves; accept a generous band.
    EXPECT_GT(reduction, 2.0);
    EXPECT_LT(reduction, 45.0);
}

// ----------------------------------------------- functional validation

TEST(Validation, CompiledPairingMatchesNativeBN254N)
{
    Framework fw("BN254N");
    const CompileResult res = fw.compile(CompileOptions{});
    const ValidationReport rep = fw.validate(res, 2);
    EXPECT_TRUE(rep.allPassed())
        << "module " << rep.moduleMatches << "/" << rep.vectors
        << " allocated " << rep.allocatedMatches << "/" << rep.vectors;
}

TEST(Validation, InitBaselineAlsoCorrect)
{
    Framework fw("BN254N");
    CompileOptions opt;
    opt.optimize = false;
    opt.listSchedule = false;
    const CompileResult res = fw.compile(opt);
    const ValidationReport rep = fw.validate(res, 1);
    EXPECT_TRUE(rep.allPassed());
}

TEST(Validation, VariantsAllCorrect)
{
    Framework fw("BLS12-381");
    for (auto mul : {MulVariant::Schoolbook, MulVariant::Karatsuba}) {
        CompileOptions opt;
        opt.variants.levels[2] = {mul, SqrVariant::Complex};
        opt.variants.levels[6] = {mul, SqrVariant::CHSqr3};
        opt.variants.levels[12] = {mul, SqrVariant::Complex};
        const CompileResult res = fw.compile(opt);
        const ValidationReport rep = fw.validate(res, 1);
        EXPECT_TRUE(rep.allPassed()) << toString(mul);
    }
}

TEST(Validation, ProjectiveCoordinatesCorrect)
{
    Framework fw("BN254N");
    CompileOptions opt;
    opt.variants.g2Coords = CoordSystem::Projective;
    const CompileResult res = fw.compile(opt);
    const ValidationReport rep = fw.validate(res, 1);
    EXPECT_TRUE(rep.allPassed());
}

TEST(Validation, MillerAndFinalExpParts)
{
    Framework fw("BN254N");
    for (TracePart part :
         {TracePart::MillerOnly, TracePart::FinalExpOnly}) {
        CompileOptions opt;
        opt.part = part;
        const CompileResult res = fw.compile(opt);
        const ValidationReport rep = fw.validate(res, 1, part);
        EXPECT_TRUE(rep.allPassed()) << static_cast<int>(part);
    }
}

// ------------------------------------------------------------ scheduling

TEST(Scheduling, ListSchedulingLiftsIpc)
{
    Framework fw("BN254N");
    CompileOptions init;
    init.optimize = true;
    init.listSchedule = false;
    CompileOptions opt;
    opt.optimize = true;
    opt.listSchedule = true;
    const auto a = fw.compile(init);
    const auto b = fw.compile(opt);
    const CycleStats sa = fw.simulate(a);
    const CycleStats sb = fw.simulate(b);
    // Paper: IPC 0.19 -> 0.87 on the default model.
    EXPECT_LT(sa.ipc(), 0.45);
    EXPECT_GT(sb.ipc(), 0.70);
    EXPECT_GT(sb.ipc(), 2.0 * sa.ipc());
}

TEST(Scheduling, SimulatorAgreesWithSchedulerEstimate)
{
    Framework fw("BN254N");
    const CompileResult res = fw.compile(CompileOptions{});
    const CycleStats sim = fw.simulate(res);
    const double est =
        static_cast<double>(res.prog.schedule.estimatedCycles);
    const double act = static_cast<double>(sim.totalCycles);
    EXPECT_NEAR(act / est, 1.0, 0.02);
}

TEST(Scheduling, FifoModelReducesWritebackStalls)
{
    Framework fw("BN254N");
    CompileOptions hw1;
    hw1.hw.writebackFifo = false;
    CompileOptions hw2;
    hw2.hw.writebackFifo = true;
    const auto a = fw.compile(hw1);
    const auto b = fw.compile(hw2);
    const CycleStats sa = fw.simulate(a);
    const CycleStats sb = fw.simulate(b);
    EXPECT_LE(sb.totalCycles, sa.totalCycles);
}

// --------------------------------------------------------------- backend

TEST(Backend, RegisterAllocationBounded)
{
    Framework fw("BN254N");
    const CompileResult res = fw.compile(CompileOptions{});
    // Max live registers should be far below total values.
    EXPECT_LT(static_cast<size_t>(res.prog.regs.maxRegs()),
              res.prog.module.numValues / 4);
    EXPECT_GT(res.prog.regs.maxRegs(), 16);
}

TEST(Backend, EncodingRoundTrip)
{
    Framework fw("BN254N");
    const CompileResult res = fw.compile(CompileOptions{});
    const EncodedProgram &enc = res.binary;
    EXPECT_EQ(enc.numBundles, res.prog.schedule.bundles.size());
    EXPECT_GT(enc.imemBits(), 0u);
    // Decode each word; op must match the scheduled instruction.
    size_t w = 0;
    for (const Bundle &bundle : res.prog.schedule.bundles) {
        for (int s = 0; s < enc.issueWidth; ++s, ++w) {
            const auto d = enc.decode(enc.words[w]);
            if (s < static_cast<int>(bundle.instIdx.size())) {
                const Inst &inst = res.prog.module.body[bundle.instIdx[s]];
                ASSERT_EQ(d.op, inst.op) << "word " << w;
            } else {
                ASSERT_EQ(d.op, Op::Nop);
            }
        }
        if (w > 4096 * static_cast<size_t>(enc.issueWidth))
            break; // spot check is enough
    }
    EXPECT_FALSE(enc.disassemble(8).empty());
}

// ------------------------------------------------------------------ VLIW

TEST(Vliw, WiderIssueReducesCycles)
{
    Framework fw("BN254N");
    CompileOptions narrow; // 1-wide
    CompileOptions wide;
    wide.hw.issueWidth = 2;
    wide.hw.numBanks = 2;
    wide.hw.numLinUnits = 2;
    wide.hw.writebackFifo = true;
    const auto a = fw.compile(narrow);
    const auto b = fw.compile(wide);
    EXPECT_LT(fw.simulate(b).totalCycles, fw.simulate(a).totalCycles);
    // And the wide program still computes the right answer.
    EXPECT_TRUE(fw.validate(b, 1).allPassed());
}


TEST(Validation, BLS24VariantsCorrect)
{
    // Non-default variants on the k = 24 tower (Miller only for speed).
    Framework fw("BLS24-509");
    CompileOptions opt;
    opt.part = TracePart::MillerOnly;
    opt.variants.levels[2] = {MulVariant::Schoolbook,
                              SqrVariant::Schoolbook};
    opt.variants.levels[4] = {MulVariant::Schoolbook,
                              SqrVariant::Complex};
    opt.variants.levels[12] = {MulVariant::Karatsuba,
                               SqrVariant::CHSqr2};
    opt.variants.levels[24] = {MulVariant::Karatsuba,
                               SqrVariant::Complex};
    // Note: MillerOnly outputs are only comparable when the compiled
    // coordinate system matches the native reference's (Jacobian):
    // Miller values differ by subfield line-scaling factors across
    // coordinate systems (the final exponentiation kills them).
    const CompileResult res = fw.compile(opt);
    EXPECT_TRUE(fw.validate(res, 1, TracePart::MillerOnly).allPassed());
}

} // namespace
} // namespace finesse
