/**
 * @file
 * Backend property tests over randomly generated SSA modules and a
 * parameterized sweep of hardware models: every (module, model) pair
 * must schedule to a functionally equivalent program, respect SSA
 * structure after register allocation, and keep register pressure
 * consistent with the recorded high-water marks.
 */
#include <gtest/gtest.h>

#include "compiler/backendprep.h"
#include "compiler/passes.h"
#include "core/framework.h"
#include "sim/binary.h"
#include "sim/functional.h"
#include "support/rng.h"

namespace finesse {
namespace {

/** Random straight-line SSA module over a small prime. */
Module
randomModule(Rng &rng, int numInputs, int numOps)
{
    Module m;
    m.p = BigInt::fromString("0x1000000000000000000000000000000d1");
    std::vector<i32> live;
    for (int i = 0; i < numInputs; ++i) {
        const i32 raw = m.numValues++;
        m.inputs.push_back(raw);
        const i32 conv = m.numValues++;
        m.body.push_back({Op::Icv, conv, raw, -1});
        live.push_back(conv);
    }
    // A few constants.
    for (u64 c : {u64{3}, u64{17}, u64{0x123456}}) {
        const i32 id = m.numValues++;
        m.constants.push_back({id, BigInt(c)});
        live.push_back(id);
    }
    const Op ops[] = {Op::Add, Op::Sub, Op::Mul, Op::Sqr, Op::Neg,
                      Op::Dbl, Op::Tpl, Op::Add, Op::Mul};
    for (int i = 0; i < numOps; ++i) {
        const Op op = ops[rng.below(sizeof(ops) / sizeof(ops[0]))];
        const i32 a = live[rng.below(live.size())];
        const i32 b = live[rng.below(live.size())];
        const i32 dst = m.numValues++;
        m.body.push_back(
            {op, dst, a, arity(op) >= 2 ? b : -1});
        live.push_back(dst);
    }
    // A handful of outputs from the live tail.
    for (int i = 0; i < 4; ++i) {
        const i32 v = live[live.size() - 1 - rng.below(8)];
        const i32 out = m.numValues++;
        m.body.push_back({Op::Cvt, out, v, -1});
        m.outputs.push_back(out);
    }
    m.verify();
    return m;
}

struct HwCase
{
    const char *name;
    int issueWidth, linUnits, banks, longLat, shortLat;
    bool fifo;
};

class BackendProperty : public ::testing::TestWithParam<HwCase>
{
};

TEST_P(BackendProperty, ScheduledProgramsStayCorrect)
{
    const HwCase &hc = GetParam();
    PipelineModel hw;
    hw.issueWidth = hc.issueWidth;
    hw.numLinUnits = hc.linUnits;
    hw.numBanks = hc.banks;
    hw.longLat = hc.longLat;
    hw.shortLat = hc.shortLat;
    hw.writebackFifo = hc.fifo;

    Rng rng(0xabc + hc.issueWidth * 131 + hc.banks);
    for (int trial = 0; trial < 8; ++trial) {
        Module m = randomModule(rng, 3, 120 + int(rng.below(200)));
        FpCtx fp(m.p);
        std::vector<BigInt> inputs;
        for (size_t i = 0; i < m.inputs.size(); ++i)
            inputs.push_back(BigInt::randomBelow(rng, m.p));
        const auto want = runModule(m, fp, inputs);

        for (bool listSched : {false, true}) {
            const CompileResult res = runBackend(m, hw, listSched);
            // 1. Functional equivalence through the register file.
            EXPECT_EQ(runAllocated(res.prog, fp, inputs), want)
                << hc.name << " listSched=" << listSched;
            // 2. ... and through the encoded binary.
            EXPECT_EQ(runEncoded(res.binary, fp, inputs), want)
                << hc.name << " (binary)";
            // 3. Every instruction scheduled exactly once.
            size_t scheduled = 0;
            for (const Bundle &b : res.prog.schedule.bundles) {
                scheduled += b.instIdx.size();
                EXPECT_LE(b.instIdx.size(),
                          static_cast<size_t>(hw.issueWidth));
            }
            EXPECT_EQ(scheduled, m.body.size());
            // 4. Register indexes within the recorded high-water mark.
            for (i32 v = 0; v < m.numValues; ++v) {
                if (res.prog.regs.regOf[v] < 0)
                    continue;
                const i32 bank = res.prog.banks.bankOf[v];
                EXPECT_LT(res.prog.regs.regOf[v],
                          res.prog.regs.maxRegsPerBank[bank]);
            }
            // 5. Cycle simulation terminates with sane numbers.
            const CycleStats sim = simulateCycles(res.prog);
            EXPECT_GE(sim.totalCycles,
                      static_cast<i64>(m.body.size() /
                                       std::max(hw.issueWidth, 1)));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Models, BackendProperty,
    ::testing::Values(
        HwCase{"single", 1, 1, 1, 38, 8, false},
        HwCase{"single_fifo", 1, 1, 1, 38, 8, true},
        HwCase{"shallow", 1, 1, 1, 8, 2, false},
        HwCase{"vliw2", 2, 2, 2, 38, 8, true},
        HwCase{"vliw3", 3, 2, 3, 8, 2, true},
        HwCase{"vliw5", 5, 4, 5, 8, 2, true},
        HwCase{"manybanks", 2, 2, 8, 38, 8, true}),
    [](const ::testing::TestParamInfo<HwCase> &info) {
        return info.param.name;
    });

/**
 * Full identity check of one (module, hw, mode) point: the dense
 * batched engine (TracePrep + BackendScratch + dense PortTracker)
 * must reproduce the legacy Module-walking reference -- schedule
 * (issueCycle, bundles, estimatedCycles), register assignment,
 * encoding layout and cycle-simulation results (dense tracker vs
 * legacy map tracker) -- bit for bit.
 */
void
expectEnginesIdentical(const Module &m, const TracePrep &prep,
                       const PipelineModel &hw, bool listSched,
                       BackendScratch &scratch, const char *what)
{
    SCOPED_TRACE(std::string(what) +
                 (listSched ? " listSched" : " init"));
    // Prep invariants: defInst names each value's defining body index
    // and numReads mirrors op arity.
    for (size_t i = 0; i < m.body.size(); ++i) {
        EXPECT_EQ(m.body[prep.defInst[m.body[i].dst]].dst,
                  m.body[i].dst);
        EXPECT_EQ(int(prep.numReads[i]), arity(m.body[i].op));
        EXPECT_EQ(UnitClass(prep.unit[i]), unitOf(m.body[i].op));
    }
    const BankAssignment banks = assignBanks(m, hw);
    const Schedule ref = scheduleModuleReference(m, banks, hw, listSched);
    const RegAssignment refRegs = allocateRegisters(m, banks, ref);

    // Wrapper entry point (per-call prep).
    EXPECT_EQ(scheduleModule(m, banks, hw, listSched), ref);

    // Batched entry point (shared prep, reused scratch).
    BackendPoint bp;
    runBackendPoint(m, prep, hw, listSched, scratch, bp);
    EXPECT_EQ(bp.banks, banks);
    EXPECT_EQ(bp.schedule, ref);
    EXPECT_EQ(bp.regs, refRegs);

    CompiledProgram prog;
    prog.module = m;
    prog.banks = banks;
    prog.schedule = ref;
    prog.regs = refRegs;
    prog.hw = hw;
    EXPECT_EQ(bp.imemBits, encodeProgram(prog).imemBits());

    // Cycle simulation: legacy map tracker vs dense tracker, both the
    // standalone and the scratch-reusing entry points.
    const CycleStats simRef = simulateCyclesReference(prog);
    const CycleStats simDense = simulateCycles(prog);
    const CycleStats simScratch = simulateCycles(
        m, bp.banks, bp.schedule, hw, 10000, 64, &scratch);
    for (const CycleStats *sim : {&simDense, &simScratch}) {
        EXPECT_EQ(sim->totalCycles, simRef.totalCycles);
        EXPECT_EQ(sim->issueCycles, simRef.issueCycles);
        EXPECT_EQ(sim->bubbles, simRef.bubbles);
        EXPECT_EQ(sim->maxFifoDefer, simRef.maxFifoDefer);
        EXPECT_EQ(sim->instrs, simRef.instrs);
    }
}

TEST_P(BackendProperty, DenseEngineMatchesReferenceOracle)
{
    const HwCase &hc = GetParam();
    PipelineModel hw;
    hw.issueWidth = hc.issueWidth;
    hw.numLinUnits = hc.linUnits;
    hw.numBanks = hc.banks;
    hw.longLat = hc.longLat;
    hw.shortLat = hc.shortLat;
    hw.writebackFifo = hc.fifo;

    Rng rng(0x5eed + hc.issueWidth * 17 + hc.banks);
    BackendScratch scratch; // reused across trials, like a sweep worker
    for (int trial = 0; trial < 6; ++trial) {
        const Module m =
            randomModule(rng, 3, 150 + int(rng.below(250)));
        const TracePrep prep = buildTracePrep(m);
        for (bool listSched : {false, true})
            expectEnginesIdentical(m, prep, hw, listSched, scratch,
                                   hc.name);
    }
}

TEST(BackendEngineIdentity, CatalogTracesScheduleIdentically)
{
    // Catalog-wide: every curve's optimized full-pairing trace,
    // against a deep single-issue model and a VLIW model, in both
    // scheduling modes, with one scratch reused throughout (the sweep
    // worker pattern). Traces come from the process-wide cache, so
    // repeats across the test binary stay cheap.
    PipelineModel vliw;
    vliw.longLat = 8;
    vliw.shortLat = 2;
    vliw.issueWidth = 3;
    vliw.numLinUnits = 2;
    vliw.numBanks = 3;
    vliw.writebackFifo = true;

    BackendScratch scratch;
    for (const CurveDef &def : curveCatalog()) {
        Framework fw(def.name);
        OptStats stats;
        const std::shared_ptr<const Module> trace =
            fw.traceShared(CompileOptions{}, stats);
        const TracePrep prep = buildTracePrep(*trace);
        EXPECT_EQ(prep.mulInstrs, trace->countUnit(UnitClass::Mul));
        EXPECT_EQ(prep.linInstrs, trace->countUnit(UnitClass::Linear));
        for (const PipelineModel &hw : {PipelineModel{}, vliw}) {
            for (bool listSched : {false, true})
                expectEnginesIdentical(*trace, prep, hw, listSched,
                                       scratch, def.name.c_str());
        }
    }
}

TEST(BackendEngineIdentity, InvOpsAndDeepFifoWindows)
{
    // Inversion latency (900 cycles) forces the widest reservation
    // window the dense tracker sizes; make sure a module with Inv ops
    // still matches the reference in both modes.
    Module m;
    m.p = BigInt::fromString("0x1000000000000000000000000000000d1");
    std::vector<i32> live;
    for (int i = 0; i < 2; ++i) {
        const i32 raw = m.numValues++;
        m.inputs.push_back(raw);
        const i32 conv = m.numValues++;
        m.body.push_back({Op::Icv, conv, raw, -1});
        live.push_back(conv);
    }
    Rng rng(0x111);
    const Op ops[] = {Op::Add, Op::Mul, Op::Inv, Op::Sub, Op::Sqr,
                      Op::Inv, Op::Dbl};
    for (int i = 0; i < 120; ++i) {
        const Op op = ops[rng.below(sizeof(ops) / sizeof(ops[0]))];
        const i32 a = live[rng.below(live.size())];
        const i32 b = live[rng.below(live.size())];
        const i32 dst = m.numValues++;
        m.body.push_back({op, dst, a, arity(op) >= 2 ? b : -1});
        live.push_back(dst);
    }
    const i32 out = m.numValues++;
    m.body.push_back({Op::Cvt, out, live.back(), -1});
    m.outputs.push_back(out);
    m.verify();

    PipelineModel fifo;
    fifo.issueWidth = 2;
    fifo.numLinUnits = 2;
    fifo.numBanks = 2;
    fifo.writebackFifo = true;
    fifo.fifoDepth = 16;

    const TracePrep prep = buildTracePrep(m);
    BackendScratch scratch;
    for (const PipelineModel &hw : {PipelineModel{}, fifo}) {
        for (bool listSched : {false, true})
            expectEnginesIdentical(m, prep, hw, listSched, scratch,
                                   "inv");
    }
}

TEST(BackendEdge, EmptyishModule)
{
    // Smallest legal program: one input copied to the output.
    Module m;
    m.p = BigInt::fromString("101");
    const i32 raw = m.numValues++;
    m.inputs = {raw};
    const i32 conv = m.numValues++;
    m.body.push_back({Op::Icv, conv, raw, -1});
    const i32 out = m.numValues++;
    m.body.push_back({Op::Cvt, out, conv, -1});
    m.outputs = {out};
    const CompileResult res = runBackend(m, PipelineModel{}, true);
    FpCtx fp(m.p);
    EXPECT_EQ(runAllocated(res.prog, fp, {BigInt(u64{42})}),
              (std::vector<BigInt>{BigInt(u64{42})}));
}

TEST(BackendEdge, RejectsInvalidModel)
{
    PipelineModel hw;
    hw.issueWidth = 4;
    hw.numBanks = 2; // fewer banks than issue width: invalid
    hw.writebackFifo = true;
    EXPECT_THROW(hw.validate(), FatalError);
    PipelineModel hw2;
    hw2.issueWidth = 2; // VLIW without FIFO: invalid
    hw2.numBanks = 2;
    hw2.writebackFifo = false;
    EXPECT_THROW(hw2.validate(), FatalError);
    PipelineModel hw3;
    hw3.longLat = 4;
    hw3.shortLat = 8; // Long must exceed Short
    EXPECT_THROW(hw3.validate(), FatalError);
}


TEST(OptimizerProperty, PreservesSemanticsOnRandomModules)
{
    // IROpt must never change program meaning, whatever it folds.
    Rng rng(0xdead);
    for (int trial = 0; trial < 12; ++trial) {
        Module m = randomModule(rng, 4, 150 + int(rng.below(250)));
        FpCtx fp(m.p);
        std::vector<BigInt> inputs;
        for (size_t i = 0; i < m.inputs.size(); ++i)
            inputs.push_back(BigInt::randomBelow(rng, m.p));
        const auto want = runModule(m, fp, inputs);
        Module optimized = m;
        const OptStats stats = optimizeModule(optimized);
        EXPECT_LE(stats.instrsAfter, stats.instrsBefore);
        EXPECT_EQ(runModule(optimized, fp, inputs), want)
            << "trial " << trial;
    }
}

TEST(OptimizerProperty, Idempotent)
{
    Rng rng(0xbeef);
    Module m = randomModule(rng, 3, 200);
    optimizeModule(m);
    const size_t once = m.size();
    optimizeModule(m);
    EXPECT_EQ(m.size(), once);
}

TEST(SchedulerProperty, Deterministic)
{
    Rng rng(0xfeed);
    Module m = randomModule(rng, 3, 200);
    PipelineModel hw;
    hw.issueWidth = 2;
    hw.numBanks = 2;
    hw.numLinUnits = 2;
    hw.writebackFifo = true;
    const CompileResult a = runBackend(m, hw, true);
    const CompileResult b = runBackend(m, hw, true);
    EXPECT_EQ(a.prog.schedule.estimatedCycles,
              b.prog.schedule.estimatedCycles);
    EXPECT_EQ(a.binary.words, b.binary.words);
}

} // namespace
} // namespace finesse
