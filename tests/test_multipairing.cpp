/**
 * @file
 * Compiled multi-pairing: trace a product of two pairings with a
 * shared final exponentiation (the SNARK-verifier workload), compile
 * it through the full backend and cross-validate against the native
 * engine. Demonstrates that the tracing CodeGen generalizes beyond the
 * single-pairing entry point.
 */
#include <gtest/gtest.h>

#include "compiler/codegen.h"
#include "core/framework.h"
#include "pairing/cache.h"
#include "sim/functional.h"

namespace finesse {
namespace {

using SymEngine = PairingEngine<Tower12<SymFp>>;
using NatEngine = PairingEngine<NativeTower12>;

Module
traceTwoPairingProduct(const CurveSystem12 &sys)
{
    TraceBuilder tb(sys.info().p);
    SymFp::Ctx sctx{&tb};
    Tower12<SymFp> tower;
    buildTower(tower, &sctx, sys.towerParams(), VariantConfig{});
    SymEngine engine(tower, sys.plan());

    auto supply = [&] { return SymFp{tb.input(), &sctx}; };
    using FtS = Tower12<SymFp>::FtT;
    std::vector<SymEngine::PairInput> inputs;
    for (int i = 0; i < 2; ++i) {
        const SymFp xP = supply();
        const SymFp yP = supply();
        const FtS xQ = buildFromLeaves<FtS>(tower.ftCtx(), supply);
        const FtS yQ = buildFromLeaves<FtS>(tower.ftCtx(), supply);
        inputs.push_back({xP, yP, xQ, yQ});
    }
    const auto result = engine.pairProduct(inputs);
    forEachLeaf(result, [&](const SymFp &leaf) { tb.output(leaf.id()); });
    Module m = tb.finish();
    m.verify();
    return m;
}

TEST(MultiPairingCompile, TwoPairingProductValidates)
{
    const auto &sys = curveSystem12("BN254N");
    Module m = traceTwoPairingProduct(sys);
    EXPECT_EQ(m.inputs.size(), 12u); // 2 x (2 + 4) coordinates
    EXPECT_EQ(m.outputs.size(), 12u);

    const OptStats stats = optimizeModule(m);
    EXPECT_LT(stats.instrsAfter, stats.instrsBefore);

    const CompileResult res = runBackend(m, PipelineModel{}, true);

    // Native reference.
    Rng rng(404);
    const auto P1 = sys.randomG1(rng);
    const auto Q1 = sys.randomG2(rng);
    const auto P2 = sys.randomG1(rng);
    const auto Q2 = sys.randomG2(rng);
    std::vector<BigInt> inputs;
    P1.x.toFpCoeffs(inputs);
    P1.y.toFpCoeffs(inputs);
    Q1.x.toFpCoeffs(inputs);
    Q1.y.toFpCoeffs(inputs);
    P2.x.toFpCoeffs(inputs);
    P2.y.toFpCoeffs(inputs);
    Q2.x.toFpCoeffs(inputs);
    Q2.y.toFpCoeffs(inputs);

    std::vector<NatEngine::PairInput> natInputs = {
        {P1.x, P1.y, Q1.x, Q1.y}, {P2.x, P2.y, Q2.x, Q2.y}};
    std::vector<BigInt> want;
    sys.engine().pairProduct(natInputs).toFpCoeffs(want);

    FpCtx fp(sys.info().p);
    EXPECT_EQ(runModule(res.prog.module, fp, inputs), want);
    EXPECT_EQ(runAllocated(res.prog, fp, inputs), want);
}

TEST(MultiPairingCompile, SharedFinalExpIsCheaperThanTwoPairings)
{
    const auto &sys = curveSystem12("BN254N");
    Module product = traceTwoPairingProduct(sys);
    optimizeModule(product);

    Framework fw("BN254N");
    const CompileResult single = fw.compile(CompileOptions{});
    // One shared final exponentiation: well below 2x a full pairing.
    EXPECT_LT(product.size(), 2 * single.instrs() * 85 / 100);
}

} // namespace
} // namespace finesse
