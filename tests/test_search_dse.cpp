/**
 * @file
 * Determinism contract of the seeded Pareto search (dse/search.h):
 * a fixed --search-seed must yield a BIT-identical frontier for any
 * jobs / dse-workers split and for cold vs warm artifact cache. Also
 * covers the frontier's structural invariants (mutual non-dominance,
 * genome/point pairing) and the warm-run "no front-end trace"
 * guarantee.
 *
 * Like test_distributed_dse, this binary is its own worker pool:
 * main() dispatches argv[1] == "dse-worker" into the worker loop
 * before gtest sees the command line, so the distributor's default
 * self-re-exec worker command works unchanged.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dse/distributor.h"
#include "dse/explorer.h"
#include "dse/search.h"
#include "support/diskcache.h"

namespace finesse {
namespace {

/** Small but non-trivial search: a few dozen unique evaluations. */
SearchOptions
quickOptions()
{
    SearchOptions sopt;
    sopt.seed = 42;
    sopt.generations = 3;
    sopt.population = 8;
    sopt.seedGridCorners = false; // keep the eval count small
    return sopt;
}

/** Runs the quick search with the given dispatch knobs. */
SearchResult
runQuick(Explorer &ex, int jobs, int dseWorkers)
{
    SearchOptions sopt = quickOptions();
    sopt.base.jobs = jobs;
    sopt.base.dseWorkers = dseWorkers;
    ParetoSearch search(ex, SearchSpace::standard(ex), sopt);
    return search.run();
}

void
expectSameFrontier(const SearchResult &a, const SearchResult &b)
{
    EXPECT_EQ(frontierFingerprint(a.frontier),
              frontierFingerprint(b.frontier));
    ASSERT_EQ(a.frontier.size(), b.frontier.size());
    for (size_t i = 0; i < a.frontier.size(); ++i) {
        const DsePoint &pa = a.frontier[i];
        const DsePoint &pb = b.frontier[i];
        EXPECT_EQ(pa.label, pb.label);
        EXPECT_EQ(pa.cycles, pb.cycles);
        // Doubles exactly: same code, same inputs, raw bits on the
        // wire and in the cache -- every bit must match.
        EXPECT_EQ(pa.areaMm2, pb.areaMm2);
        EXPECT_EQ(pa.throughputOps, pb.throughputOps);
        EXPECT_EQ(pa.thptPerArea, pb.thptPerArea);
    }
    EXPECT_EQ(a.stats.evaluatedUnique, b.stats.evaluatedUnique);
}

/** rm -rf + disabled artifact cache around a test body. */
struct CacheOff
{
    CacheOff()
    {
        unsetenv(kArtifactCacheEnv);
        configureArtifactCache("");
    }
    ~CacheOff()
    {
        unsetenv(kArtifactCacheEnv);
        configureArtifactCache("");
    }
};

void
freshDir(const std::string &dir)
{
    const std::string cmd = "rm -rf '" + dir + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
}

TEST(SearchDeterminism, BitIdenticalAcrossJobs)
{
    CacheOff off;
    Explorer ex("BN254N");
    clearTraceCache();
    const SearchResult r1 = runQuick(ex, 1, 0);
    const SearchResult r2 = runQuick(ex, 2, 0);
    const SearchResult r8 = runQuick(ex, 8, 0);
    ASSERT_FALSE(r1.frontier.empty());
    expectSameFrontier(r1, r2);
    expectSameFrontier(r1, r8);
}

TEST(SearchDeterminism, BitIdenticalAcrossDseWorkers)
{
    CacheOff off;
    Explorer ex("BN254N");
    clearTraceCache();
    const SearchResult inproc = runQuick(ex, 1, 0);
    for (const int workers : {1, 2, 4}) {
        const SearchResult dist = runQuick(ex, 1, workers);
        expectSameFrontier(inproc, dist);
    }
}

TEST(SearchDeterminism, WarmCacheIsIdenticalAndTraceFree)
{
    CacheOff off;
    const std::string dir = "search_test_cache";
    freshDir(dir);
    Explorer ex("BN254N");

    clearTraceCache();
    const SearchResult cold = runQuick(ex, 1, 0); // cache disabled

    configureArtifactCache(dir);
    clearTraceCache();
    const SearchResult prime = runQuick(ex, 1, 0);
    EXPECT_EQ(prime.stats.pointCacheHits, 0u);
    EXPECT_EQ(prime.stats.pointCachePuts, prime.stats.evaluatedUnique);
    expectSameFrontier(cold, prime);

    // Warm: every point is an artifact hit, so the front end never
    // runs -- no traces, no disk writes, zero point misses.
    clearTraceCache();
    const SearchResult warm = runQuick(ex, 1, 0);
    expectSameFrontier(cold, warm);
    EXPECT_EQ(warm.stats.pointCacheHits, warm.stats.evaluatedUnique);
    EXPECT_EQ(warm.stats.pointCachePuts, 0u);
    const TraceCacheStats tc = traceCacheStats();
    EXPECT_EQ(tc.tracesPerformed(), 0u);
    EXPECT_EQ(tc.diskPuts, 0u);

    configureArtifactCache("");
    freshDir(dir);
}

TEST(SearchFrontier, MutuallyNonDominatedAndPaired)
{
    CacheOff off;
    Explorer ex("BN254N");
    clearTraceCache();
    const SearchResult r = runQuick(ex, 1, 0);
    ASSERT_FALSE(r.frontier.empty());
    ASSERT_EQ(r.frontier.size(), r.frontierGenomes.size());
    for (size_t i = 0; i < r.frontier.size(); ++i) {
        EXPECT_EQ(r.frontier[i].label, r.frontierGenomes[i].key());
        for (size_t j = 0; j < r.frontier.size(); ++j) {
            if (i == j)
                continue;
            EXPECT_FALSE(
                weaklyDominates(r.frontier[i], r.frontier[j]))
                << r.frontier[i].label << " dominates "
                << r.frontier[j].label;
        }
    }
    // The frontier is its own Pareto frontier (idempotence).
    EXPECT_EQ(paretoFrontier(r.frontier).size(), r.frontier.size());
    // The scalar winner scores at least as well as every frontier
    // point under the configured objective.
    for (const DsePoint &p : r.frontier)
        EXPECT_GE(Explorer::score(r.best, Objective::MaxThptPerArea),
                  Explorer::score(p, Objective::MaxThptPerArea));
}

TEST(SearchFrontier, CoversSeededGridCorners)
{
    CacheOff off;
    Explorer ex("BN254N");
    clearTraceCache();

    // With grid-corner seeding on, every fig10 hardware model x mul
    // mask is evaluated in generation 0, so the searched frontier
    // must weakly dominate the frontier of that sub-grid.
    SearchOptions sopt = quickOptions();
    sopt.generations = 1;
    sopt.seedGridCorners = true;
    sopt.base.jobs = 1;
    ParetoSearch search(ex, SearchSpace::standard(ex), sopt);
    const SearchResult r = search.run();
    ASSERT_FALSE(r.frontier.empty());
    EXPECT_TRUE(frontierCovers(r.frontier, r.frontier));
    EXPECT_GE(r.stats.evaluatedUnique,
              fig10HardwareModels().size());
}

} // namespace
} // namespace finesse

int
main(int argc, char **argv)
{
    if (const std::optional<int> rc =
            finesse::maybeRunDseWorkerMain(argc, argv))
        return *rc;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
